package kglids

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"kglids/internal/cleaning"
	"kglids/internal/dataframe"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
	"kglids/internal/profiler"
	"kglids/internal/transform"
)

// bootstrapFixture builds a small platform with a lake and a pipeline
// corpus, shared by the public-API tests.
func bootstrapFixture(t testing.TB) (*Platform, *lakegen.Benchmark) {
	t.Helper()
	lake := lakegen.Generate(lakegen.Spec{
		Name: "api", Families: 4, TablesPerFamily: 3, NoiseTables: 3,
		RowsPerTable: 60, QueryTables: 4, Seed: 91,
	})
	var tables []Table
	for _, df := range lake.Tables {
		tables = append(tables, Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	// The fixture tables are tiny (60 rows), so use a recall-oriented
	// content threshold (paper §3.3: "lower similarity thresholds might be
	// used when high recall is desirable").
	plat := Bootstrap(Options{Theta: 0.70}, tables)
	// Pipelines over the first two tables.
	var datasets []pipegen.Dataset
	for _, df := range lake.Tables[:2] {
		datasets = append(datasets, pipegen.FrameDataset(lake.Dataset[df.Name], df, df.Columns()[0]))
	}
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 20, Datasets: datasets, Seed: 92})
	scripts := make([]Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)
	return plat, lake
}

func TestBootstrapAndStats(t *testing.T) {
	plat, lake := bootstrapFixture(t)
	stats := plat.Stats()
	if stats.Tables != len(lake.Tables) || stats.Triples == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.NamedGraphs < 20 {
		t.Errorf("named graphs = %d, want >= 20 pipelines", stats.NamedGraphs)
	}
}

func TestSearchAndUnionableFlow(t *testing.T) {
	plat, lake := bootstrapFixture(t)
	// The Section 5 walkthrough: search, then unionable columns.
	q := lake.QueryTables[0]
	hits := plat.SearchKeywords([][]string{{strings.TrimSuffix(q, ".csv")}})
	if len(hits) == 0 {
		t.Fatal("keyword search found nothing")
	}
	results, err := plat.UnionableTables(lake.Dataset[q]+"/"+q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no unionable tables")
	}
	cols := plat.FindUnionableColumns(TableResult{Table: hits[0].Table}, results[0])
	if len(cols) == 0 {
		t.Error("no unionable columns between query and top hit")
	}
	// A join path requires content-similar columns; family members share
	// raw values, so at least one unionable hit must be reachable.
	found := false
	for _, r := range results {
		if len(plat.GetPathToTable(TableResult{Table: hits[0].Table}, r, 2)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no join path to any unionable table")
	}
}

func TestLibraryAPIs(t *testing.T) {
	plat, _ := bootstrapFixture(t)
	top, err := plat.GetTopKLibrariesUsed(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Library != "pandas" {
		t.Fatalf("top libraries = %+v", top)
	}
	byTask, err := plat.GetTopUsedLibraries(5, "classification")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTask) == 0 {
		t.Error("task-filtered libraries empty")
	}
	hits := plat.GetPipelinesCallingLibraries("pandas.read_csv", "sklearn.model_selection.train_test_split")
	if len(hits) == 0 {
		t.Error("no pipelines matched the conjunctive call query")
	}
}

func TestAdHocQuery(t *testing.T) {
	plat, _ := bootstrapFixture(t)
	res, err := plat.Query(`SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0]["n"].AsInt(); n == 0 {
		t.Error("SPARQL count = 0")
	}
}

func nullDF() *DataFrame {
	df := dataframe.New("api_clean")
	s := &dataframe.Series{Name: "v"}
	for i, raw := range []string{"1", "", "3", "4", "", "6", "7", "8"} {
		_ = i
		s.Cells = append(s.Cells, dataframe.ParseCell(raw))
	}
	df.AddColumn(s)
	y := &dataframe.Series{Name: "target"}
	for i := 0; i < 8; i++ {
		y.Cells = append(y.Cells, dataframe.NumberCell(float64(i%2)))
	}
	df.AddColumn(y)
	return df
}

func trainedPlatform(t testing.TB) *Platform {
	plat, _ := bootstrapFixture(t)
	p := profiler.New()
	var cexamples []cleaning.Example
	var sexamples []transform.ScalerExample
	var uexamples []transform.UnaryExample
	for i := 0; i < 12; i++ {
		task := lakegen.GenerateTask(lakegen.TaskSpec{
			ID: 700 + i, Name: "t", Rows: 80, NumFeatures: 3, Classes: 2,
			NullRate: 0.1, Seed: int64(93 + i),
		})
		cexamples = append(cexamples, cleaning.Example{
			Embedding: cleaning.MissingValueEmbedding(p, task.Frame),
			Op:        cleaning.Ops[i%len(cleaning.Ops)],
		})
		sexamples = append(sexamples, transform.ScalerExample{
			Embedding: transform.TableEmbedding(p, task.Frame),
			Op:        transform.Scalers[i%len(transform.Scalers)],
		})
		cp := p.ProfileColumn("t", "t", task.Frame.ColumnAt(0))
		uexamples = append(uexamples, transform.UnaryExample{
			Embedding: cp.Embed,
			Op:        transform.Unaries[i%len(transform.Unaries)],
		})
	}
	plat.TrainCleaningModel(cexamples)
	plat.TrainTransformModels(sexamples, uexamples)
	return plat
}

func TestCleaningAPIs(t *testing.T) {
	plat := trainedPlatform(t)
	df := nullDF()
	recs := plat.RecommendCleaningOperations(df)
	if len(recs) != 5 {
		t.Fatalf("recommendations = %d", len(recs))
	}
	cleaned, err := plat.ApplyCleaningOperations(recs[0].Op, df)
	if err != nil {
		t.Fatal(err)
	}
	if cleaned.NullCount() != 0 {
		t.Error("nulls remain after recommended op")
	}
}

func TestTransformationAPIs(t *testing.T) {
	plat := trainedPlatform(t)
	df := nullDF()
	scalers, unaries := plat.RecommendTransformations(df, "target")
	if len(scalers) != 3 {
		t.Fatalf("scaler recs = %d", len(scalers))
	}
	if len(unaries) == 0 {
		t.Error("no unary recommendations")
	}
	out, err := plat.ApplyTransformations(df, "target")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != df.NumRows() {
		t.Error("transform changed row count")
	}
}

func TestUntrainedRecommendersReturnNil(t *testing.T) {
	plat, _ := bootstrapFixture(t)
	if plat.RecommendCleaningOperations(nullDF()) != nil {
		t.Error("untrained cleaning recommender should return nil")
	}
	s, u := plat.RecommendTransformations(nullDF(), "target")
	if s != nil || u != nil {
		t.Error("untrained transform recommender should return nil")
	}
	if plat.RecommendMLModels(nullDF()) != nil {
		t.Error("untrained automl should return nil")
	}
}

func TestAutoMLAPIs(t *testing.T) {
	plat, _ := bootstrapFixture(t)
	plat.TrainAutoML(true)
	task := lakegen.GenerateTask(lakegen.TaskSpec{
		ID: 800, Name: "api_automl", Rows: 250, NumFeatures: 5, Classes: 2, Seed: 95,
	})
	models := plat.RecommendMLModels(task.Frame)
	if len(models) == 0 {
		t.Fatal("no model recommendations")
	}
	params := plat.RecommendHyperparameters(task.Frame, models[0].Classifier)
	if params == nil {
		t.Log("no hyperparameters mined for top model (acceptable for sparse corpus)")
	}
	res, err := plat.AutoML(task.Frame, "target", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 <= 0 || res.Trials == 0 {
		t.Errorf("automl result = %+v", res)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	plat, lake := bootstrapFixture(t)
	path := filepath.Join(t.TempDir(), "plat.kgs")
	if err := plat.Save(path); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Stats(), plat.Stats(); got != want {
		t.Fatalf("stats after reload:\n got %+v\nwant %+v", got, want)
	}
	q := lake.QueryTables[0]
	want, err := plat.UnionableTables(lake.Dataset[q]+"/"+q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.UnionableTables(lake.Dataset[q]+"/"+q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unionable top-k after reload:\n got %v\nwant %v", got, want)
	}
	if !reflect.DeepEqual(
		restored.SearchKeywords([][]string{{strings.TrimSuffix(q, ".csv")}}),
		plat.SearchKeywords([][]string{{strings.TrimSuffix(q, ".csv")}}),
	) {
		t.Fatal("keyword search differs after reload")
	}
	// Pipelines were persisted as scripts: library discovery still works.
	top, err := restored.GetTopKLibrariesUsed(5)
	if err != nil || len(top) == 0 {
		t.Fatalf("libraries after reload = %v, %v", top, err)
	}
}

func TestSnapshotLoadFasterThanBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	lake := lakegen.Generate(lakegen.Spec{
		Name: "speed", Families: 6, TablesPerFamily: 4, NoiseTables: 8,
		RowsPerTable: 1000, QueryTables: 5, Seed: 96,
	})
	var tables []Table
	for _, df := range lake.Tables {
		tables = append(tables, Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	start := time.Now()
	plat := Bootstrap(Options{}, tables)
	bootstrap := time.Since(start)
	path := filepath.Join(t.TempDir(), "plat.kgs")
	if err := plat.Save(path); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := Open(path); err != nil {
		t.Fatal(err)
	}
	load := time.Since(start)
	// Measured ~20x on this lake; assert a conservative 4x so loaded CI
	// machines don't flake.
	if load*4 > bootstrap {
		t.Errorf("snapshot load %v not significantly faster than bootstrap %v", load, bootstrap)
	}
	t.Logf("bootstrap %v, load %v (%.1fx)", bootstrap, load, float64(bootstrap)/float64(load))
}

func TestSimilarTables(t *testing.T) {
	plat, lake := bootstrapFixture(t)
	hits := plat.SimilarTables(lake.Tables[0], 3)
	if len(hits) == 0 {
		t.Fatal("no similar tables")
	}
	if hits[0].Score < 0.99 {
		t.Errorf("self similarity = %v", hits[0].Score)
	}
}
