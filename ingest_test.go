package kglids

// Tests for live incremental ingestion: after any sequence of add, update,
// and remove mutations, the platform must be indistinguishable — graph
// statistics, similarity search, SPARQL — from a fresh Bootstrap over the
// final table set. This is the correctness bar of the ingest subsystem.

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"kglids/internal/lakegen"
)

var ingestSpec = lakegen.Spec{
	Name: "ingest", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
	RowsPerTable: 60, QueryTables: 4, Seed: 31,
}

func ingestLakeTables(t testing.TB) ([]Table, *lakegen.Benchmark) {
	t.Helper()
	b := lakegen.Generate(ingestSpec)
	var tables []Table
	for _, df := range b.Tables {
		tables = append(tables, Table{Dataset: b.Dataset[df.Name], Frame: df})
	}
	return tables, b
}

// sparqlProbe returns the sorted values of a single-variable query.
func sparqlProbe(t *testing.T, p *Platform, q, v string) []string {
	t.Helper()
	res, err := p.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, row[v].Value)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIncrementalIngestEquivalence drives a scripted add → add → update →
// remove sequence through the live mutation path and checks the result is
// equivalent to a fresh Bootstrap over the final tables: same Stats, same
// top-k similarity, same SPARQL answers — and the same after a snapshot
// round-trip of the mutated platform.
func TestIncrementalIngestEquivalence(t *testing.T) {
	tables, bench := ingestLakeTables(t)
	n := len(tables)
	base, extra := tables[:n-2], tables[n-2:]

	// Mutated platform: bootstrap the base lake, then add the two held-out
	// tables in separate jobs, update one of them with changed content, and
	// remove one of the original base tables.
	inc := Bootstrap(Options{}, base)
	if _, err := inc.AddTables(extra[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AddTables(extra[1:]); err != nil {
		t.Fatal(err)
	}
	updated := Table{Dataset: extra[0].Dataset, Frame: extra[0].Frame.Head(30)}
	if ids, err := inc.AddTables([]Table{updated}); err != nil || len(ids) != 1 {
		t.Fatalf("update: ids=%v err=%v", ids, err)
	}
	removedID := base[0].Dataset + "/" + base[0].Frame.Name
	if err := inc.RemoveTable(removedID); err != nil {
		t.Fatal(err)
	}
	if inc.HasTable(removedID) {
		t.Fatalf("%s still present after removal", removedID)
	}

	// Reference platform: fresh Bootstrap over the final table set.
	final := append([]Table{}, base[1:]...)
	final = append(final, updated, extra[1])
	fresh := Bootstrap(Options{}, final)

	if got, want := inc.Stats(), fresh.Stats(); got != want {
		t.Errorf("stats diverge:\n incremental %+v\n fresh       %+v", got, want)
	}

	// Top-k similarity (exact index) for every benchmark query table still
	// in the lake.
	for _, q := range bench.QueryTables {
		qid := bench.Dataset[q] + "/" + q
		if !fresh.HasTable(qid) {
			continue
		}
		var frame *DataFrame
		for _, tb := range final {
			if tb.Dataset+"/"+tb.Frame.Name == qid {
				frame = tb.Frame
			}
		}
		gotHits := inc.SimilarTables(frame, 5)
		wantHits := fresh.SimilarTables(frame, 5)
		if len(gotHits) != len(wantHits) {
			t.Fatalf("query %s: %d hits vs %d", qid, len(gotHits), len(wantHits))
		}
		for i := range gotHits {
			if gotHits[i].Name != wantHits[i].Name || math.Abs(gotHits[i].Score-wantHits[i].Score) > 1e-12 {
				t.Errorf("query %s hit %d: incremental %s(%v) vs fresh %s(%v)",
					qid, i, gotHits[i].Name, gotHits[i].Score, wantHits[i].Name, wantHits[i].Score)
			}
		}
	}

	// SPARQL probes over tables, columns, and similarity edges.
	probes := []struct{ q, v string }{
		{`SELECT ?t WHERE { ?t a kglids:Table . }`, "t"},
		{`SELECT ?c WHERE { ?c a kglids:Column . }`, "c"},
		{`SELECT ?b WHERE { ?a kglids:contentSimilarity ?b . }`, "b"},
	}
	for _, pr := range probes {
		got := sparqlProbe(t, inc, pr.q, pr.v)
		want := sparqlProbe(t, fresh, pr.q, pr.v)
		if !equalStrings(got, want) {
			t.Errorf("probe %q: %d rows incremental vs %d fresh", pr.q, len(got), len(want))
		}
	}

	// The mutated platform must snapshot and reload cleanly, preserving
	// equivalence.
	path := filepath.Join(t.TempDir(), "ingested.kgs")
	if err := inc.Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reloaded.Stats(), fresh.Stats(); got != want {
		t.Errorf("reloaded stats diverge:\n reloaded %+v\n fresh    %+v", got, want)
	}
}

// TestIngestAfterSnapshotKeepsThresholds checks that a platform restored
// from a snapshot of a custom-threshold bootstrap scores incremental
// similarity with those same thresholds (they are persisted in the CONF
// section), keeping the fresh-bootstrap equivalence guarantee.
func TestIngestAfterSnapshotKeepsThresholds(t *testing.T) {
	tables, _ := ingestLakeTables(t)
	n := len(tables)
	opts := Options{Theta: 0.70} // permissive: more content edges than default
	base, extra := tables[:n-1], tables[n-1:]

	orig := Bootstrap(opts, base)
	path := filepath.Join(t.TempDir(), "thresholds.kgs")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reloaded.AddTables(extra); err != nil {
		t.Fatal(err)
	}

	fresh := Bootstrap(opts, tables)
	if got, want := reloaded.Stats(), fresh.Stats(); got != want {
		t.Errorf("stats diverge after snapshot+ingest:\n reloaded %+v\n fresh    %+v", got, want)
	}
}

// TestRemoveTableErrors covers the failure modes of the mutation API.
func TestRemoveTableErrors(t *testing.T) {
	tables, _ := ingestLakeTables(t)
	plat := Bootstrap(Options{}, tables[:3])
	if err := plat.RemoveTable("nope/none.csv"); err == nil {
		t.Error("removing an unknown table should error")
	}
	if _, err := plat.AddTables([]Table{{Dataset: "d", Frame: nil}}); err == nil {
		t.Error("nil frame should error")
	}
	if _, err := plat.AddTables([]Table{
		{Dataset: tables[0].Dataset, Frame: tables[0].Frame},
		{Dataset: tables[0].Dataset, Frame: tables[0].Frame},
	}); err == nil {
		t.Error("duplicate IDs in one batch should error")
	}
}

// TestRemoveLastTableOfDataset checks that dataset-level triples disappear
// with their last member table (they are shared across the per-table named
// graphs of the dataset's tables).
func TestRemoveLastTableOfDataset(t *testing.T) {
	tables, _ := ingestLakeTables(t)
	plat := Bootstrap(Options{}, tables)

	// Group IDs by dataset to find a dataset and all its tables.
	byDataset := map[string][]string{}
	for _, tb := range tables {
		byDataset[tb.Dataset] = append(byDataset[tb.Dataset], tb.Dataset+"/"+tb.Frame.Name)
	}
	var victim string
	for ds := range byDataset {
		victim = ds
		break
	}
	before := plat.Stats().Datasets
	for _, id := range byDataset[victim] {
		if err := plat.RemoveTable(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := plat.Stats().Datasets; got != before-1 {
		t.Errorf("datasets = %d after removing all of %q, want %d", got, victim, before-1)
	}
	res, err := plat.Query(`SELECT ?d WHERE { ?d a kglids:Dataset . }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row["d"].Local() == victim {
			t.Errorf("dataset %q still in graph after all tables removed", victim)
		}
	}
}

// TestQueryCacheInvalidatedByIngest: repeated identical queries are served
// from the platform's SPARQL result cache until a live mutation
// (AddTables/RemoveTable) bumps the store generation, after which results
// reflect the mutation instead of the cached state.
func TestQueryCacheInvalidatedByIngest(t *testing.T) {
	tables, _ := ingestLakeTables(t)
	plat := Bootstrap(Options{}, tables[:len(tables)-1])
	const q = `SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table . }`

	count := func() int64 {
		res, err := plat.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := res.Rows[0]["n"].AsInt()
		return n
	}
	before := count()
	count() // second run must be a cache hit
	stats := plat.Core().Discovery.CacheStats()
	if stats.Hits == 0 {
		t.Fatalf("repeated query did not hit the cache: %+v", stats)
	}

	if _, err := plat.AddTables(tables[len(tables)-1:]); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != before+1 {
		t.Fatalf("count after ingest = %d, want %d (stale cache?)", got, before+1)
	}
	id := tables[len(tables)-1].Dataset + "/" + tables[len(tables)-1].Frame.Name
	if err := plat.RemoveTable(id); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != before {
		t.Fatalf("count after removal = %d, want %d (stale cache?)", got, before)
	}
}
