// Command kglids-profiler runs KGLiDS Data Profiling (Algorithm 2) over a
// connector source and emits one column profile per line as JSON — the
// profile documents the KG construction consumes.
//
// Usage:
//
//	kglids-profiler -source URI [-breakdown] [-chunk-rows N] [-reservoir N]
//	kglids-profiler -lake DIR   [-breakdown]
//
// -source accepts any registered connector URI (dir://, jsonl://,
// http://, https://, lakegen://); -lake DIR is shorthand for dir://DIR.
// Tables stream through the one-pass profiler in bounded memory, so the
// lake never has to fit in RAM. For dir:// the layout is
// lake/<dataset>/<table>.csv; bare CSVs directly under the lake
// directory form a dataset named after the directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"

	"kglids/internal/connector"
	"kglids/internal/embed"
	"kglids/internal/profiler"
)

func main() {
	lakeDir := flag.String("lake", "", "data lake directory (shorthand for -source dir://DIR)")
	source := flag.String("source", "", "connector URI to profile (dir://, jsonl://, http://, lakegen://)")
	breakdown := flag.Bool("breakdown", false, "print the fine-grained type breakdown instead of profiles")
	chunkRows := flag.Int("chunk-rows", 0, "rows per streamed chunk (0 = connector default)")
	reservoir := flag.Int("reservoir", 0, "per-column sample reservoir size (0 = profiler default)")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	uri := *source
	if uri == "" && *lakeDir != "" {
		uri = "dir://" + *lakeDir
	}
	if uri == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	src, err := connector.OpenWith(uri, connector.Options{ChunkRows: *chunkRows})
	if err != nil {
		logger.Error("opening source failed", "uri", uri, "err", err)
		os.Exit(1)
	}
	p := profiler.New()
	p.ReservoirSize = *reservoir
	profiles, tableErrs, err := p.ProfileSource(ctx, src)
	if err != nil {
		logger.Error("profiling source failed", "uri", uri, "err", err)
		os.Exit(1)
	}
	for id, terr := range tableErrs {
		logger.Warn("skipping unreadable table", "table", id, "err", terr)
	}
	if len(profiles) == 0 {
		logger.Error("no readable tables in source", "uri", uri)
		os.Exit(1)
	}
	if *breakdown {
		bd := profiler.TypeBreakdown(profiles)
		for _, t := range embed.AllTypes {
			fmt.Printf("%-20s %d\n", t, bd[t])
		}
		return
	}
	for _, cp := range profiles {
		data, err := cp.JSON()
		if err != nil {
			logger.Error("encoding profile failed", "err", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	}
}
