// Command kglids-profiler runs KGLiDS Data Profiling (Algorithm 2) over a
// directory of CSV files and emits one column profile per line as JSON —
// the profile documents the KG construction consumes.
//
// Usage:
//
//	kglids-profiler -lake DIR [-breakdown]
//
// The directory layout is lake/<dataset>/<table>.csv; bare CSVs directly
// under the lake directory form a dataset named after the directory.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/profiler"
)

func main() {
	lakeDir := flag.String("lake", "", "data lake directory (required)")
	breakdown := flag.Bool("breakdown", false, "print the fine-grained type breakdown instead of profiles")
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *lakeDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	var tables []profiler.Table
	err := filepath.Walk(*lakeDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".csv") {
			return err
		}
		df, err := dataframe.ReadCSVFile(path)
		if err != nil {
			logger.Warn("skipping unreadable CSV", "path", path, "err", err)
			return nil
		}
		dataset := filepath.Base(filepath.Dir(path))
		tables = append(tables, profiler.Table{Dataset: dataset, Frame: df})
		return nil
	})
	if err != nil {
		logger.Error("lake walk failed", "err", err)
		os.Exit(1)
	}
	if len(tables) == 0 {
		logger.Error("no CSV files under lake", "lake", *lakeDir)
		os.Exit(1)
	}
	p := profiler.New()
	profiles := p.ProfileAll(tables)
	if *breakdown {
		bd := profiler.TypeBreakdown(profiles)
		for _, t := range embed.AllTypes {
			fmt.Printf("%-20s %d\n", t, bd[t])
		}
		return
	}
	for _, cp := range profiles {
		data, err := cp.JSON()
		if err != nil {
			logger.Error("encoding profile failed", "err", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	}
}
