// Command kglids-server exposes a bootstrapped KGLiDS platform over HTTP:
// a SPARQL endpoint plus the predefined discovery operations, mirroring
// the KGLiDS Interfaces in service form (paper Section 5).
//
// Endpoints:
//
//	GET /stats                         LiDS graph statistics
//	GET /sparql?query=...              ad-hoc SPARQL (JSON rows)
//	GET /search?q=kw1,kw2              keyword search (one conjunction)
//	GET /unionable?table=ds/t.csv&k=5  top-k unionable tables
//	GET /libraries?k=10                top-k libraries
//
// Usage:
//
//	kglids-server -lake DIR [-addr :8080]
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"kglids"
	"kglids/internal/dataframe"
)

func main() {
	lakeDir := flag.String("lake", "", "data lake directory of CSV files (required)")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	if *lakeDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	var tables []kglids.Table
	err := filepath.Walk(*lakeDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".csv") {
			return err
		}
		df, err := dataframe.ReadCSVFile(path)
		if err != nil {
			return nil
		}
		tables = append(tables, kglids.Table{Dataset: filepath.Base(filepath.Dir(path)), Frame: df})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("bootstrapping over %d tables...", len(tables))
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	stats := plat.Stats()
	log.Printf("LiDS graph ready: %d triples, %d similarity edges", stats.Triples, stats.SimilarityEdges)

	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			log.Printf("encode: %v", err)
		}
	}
	http.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, plat.Stats())
	})
	http.HandleFunc("/sparql", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		if q == "" {
			http.Error(w, "missing query", http.StatusBadRequest)
			return
		}
		res, err := plat.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rows := make([]map[string]string, len(res.Rows))
		for i, b := range res.Rows {
			row := map[string]string{}
			for v, t := range b {
				row[v] = t.Value
			}
			rows[i] = row
		}
		writeJSON(w, map[string]any{"vars": res.Vars, "rows": rows})
	})
	http.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		kws := strings.Split(r.URL.Query().Get("q"), ",")
		writeJSON(w, plat.SearchKeywords([][]string{kws}))
	})
	http.HandleFunc("/unionable", func(w http.ResponseWriter, r *http.Request) {
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		res, err := plat.UnionableTables(r.URL.Query().Get("table"), k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, res)
	})
	http.HandleFunc("/libraries", func(w http.ResponseWriter, r *http.Request) {
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		res, err := plat.GetTopKLibrariesUsed(k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, res)
	})
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, nil))
}
