// Command kglids-server exposes a KGLiDS platform over HTTP: the
// versioned /api/v1 surface (stable DTOs, cursor pagination, generation
// ETags, SPARQL 1.1 protocol — consumed through the typed client in
// package kglids/client) plus the frozen legacy routes, mirroring the
// KGLiDS Interfaces in service form (paper Section 5). See
// docs/SERVER_API.md for the endpoint reference.
//
// The platform comes from one of three sources:
//
//   - -lake DIR      bootstrap from a directory of CSV files (profile,
//     build the LiDS graph, index embeddings) — minutes for large lakes;
//   - -source URI    bootstrap by streaming a lake connector (dir://,
//     jsonl://, http(s)://, lakegen://) through the one-pass profiler in
//     bounded memory — the lake never has to fit in RAM, and the
//     resulting graph is equivalent to the -lake path over the same data;
//   - -snapshot FILE load a snapshot previously written with
//     -save-snapshot (or kglids.Platform.Save) — milliseconds, with
//     query results identical to the bootstrap that produced it.
//
// Usage:
//
//	kglids-server -lake DIR [-save-snapshot FILE] [-addr :8080]
//	kglids-server -source dir:///data/lake [-chunk-rows N] [-reservoir N]
//	kglids-server -snapshot FILE [-addr :8080]
//	kglids-server -lake DIR -ingest [-ingest-workers N] [-ingest-queue N]
//	kglids-server -lake DIR -debug-addr :9090 [-pprof] [-slow-query-ms 250]
//	kglids-server -replica -follow http://primary:8080 [-replica-poll 500ms]
//
// -replica serves a read-only follower: it boots from a snapshot (a local
// -snapshot file when given, otherwise streamed from the primary's
// /api/v1/snapshot), then tails the primary's mutation changelog, applying
// each record in sequence so reads converge on the primary's state with
// bounded staleness. Mutations are rejected with 405; /healthz reports
// role "replica" with the applied generation and replication lag. The
// primary side needs no flag: every non-replica server keeps a bounded
// changelog (-changelog-retention tunes it) and serves /api/v1/changelog.
//
// -save-snapshot persists the platform after it is ready (from either
// source), so the next start can skip bootstrapping.
//
// -ingest enables live mutation: POST /ingest submits tables that an
// asynchronous worker pool profiles and splices into the serving graph,
// DELETE /tables/{id} retracts a table, and GET /jobs reports job states —
// no restart, no re-bootstrap. On shutdown queued jobs drain before the
// process exits (and before -save-snapshot runs, when given, so the saved
// snapshot reflects every accepted job).
//
// -debug-addr starts a second listener serving the diagnostics surface —
// /metrics (Prometheus text exposition), /debug/vars (expvar), and with
// -pprof the runtime profiles under /debug/pprof — kept off the public
// API address so operators can firewall it separately. -slow-query-ms
// logs any SPARQL query slower than the threshold with its per-stage
// breakdown. See docs/OBSERVABILITY.md.
//
// Logs are structured (log/slog): -log-format json emits one JSON object
// per line for ingestion into log pipelines, -log-level sets the floor.
//
// -edge-block-size and -edge-candidates tune the blocked similarity-edge
// pipeline used by bootstrap and every ingest delta (see
// docs/ARCHITECTURE.md, "Schema construction at scale"). They move time
// and memory around without ever changing the resulting edge set.
//
// -query-workers sets the width of morsel-driven parallel SPARQL
// execution (and the discovery scoring fan-out). The default 0 uses one
// worker per CPU; 1 selects the serial executor. Any width returns the
// same results — parallelism only changes latency.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/dataframe"
	"kglids/internal/ingest"
	"kglids/internal/server"
)

func main() {
	lakeDir := flag.String("lake", "", "data lake directory of CSV files (bootstrap source)")
	source := flag.String("source", "", "connector URI to bootstrap by streaming (dir://, jsonl://, http://, lakegen://)")
	chunkRows := flag.Int("chunk-rows", 0, "streaming connectors: rows per chunk (0 = default)")
	reservoir := flag.Int("reservoir", 0, "streaming profiler: per-column sample reservoir size (0 = default)")
	snapshotPath := flag.String("snapshot", "", "snapshot file to load instead of bootstrapping")
	saveSnapshot := flag.String("save-snapshot", "", "write the ready platform to this snapshot file")
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request deadline")
	ingestMode := flag.Bool("ingest", false, "enable live mutation endpoints (POST /ingest, DELETE /tables/{id})")
	ingestWorkers := flag.Int("ingest-workers", 2, "ingestion worker pool size")
	ingestQueue := flag.Int("ingest-queue", 64, "bounded ingestion job queue size")
	edgeBlockSize := flag.Int("edge-block-size", 0, "similarity pipeline: largest same-type column block compared exhaustively (0 = default)")
	edgeCandidates := flag.Int("edge-candidates", 0, "similarity pipeline: target pre-filter candidates per column (0 = default)")
	accessLog := flag.Bool("access-log", true, "log one structured line per request (request ID, route, status, bytes, duration)")
	debugAddr := flag.String("debug-addr", "", "listen address for the diagnostics mux (/metrics, /debug/vars); empty disables it")
	pprofFlag := flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof on the diagnostics mux (needs -debug-addr)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log SPARQL queries slower than this many milliseconds with their stage breakdown (0 disables)")
	queryWorkers := flag.Int("query-workers", 0, "parallel SPARQL execution width (0 = number of CPUs, 1 = serial)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	replicaMode := flag.Bool("replica", false, "serve as a read-only replica following a primary (needs -follow)")
	follow := flag.String("follow", "", "primary base URL to follow in -replica mode (e.g. http://primary:8080)")
	replicaPoll := flag.Duration("replica-poll", 500*time.Millisecond, "replica: at-head changelog poll interval (the idle staleness bound)")
	changelogRetention := flag.Int("changelog-retention", 0, "primary: quad-weighted changelog retention budget (0 = default)")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kglids-server:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *replicaMode && *follow == "" {
		fmt.Fprintln(os.Stderr, "kglids-server: -replica needs -follow PRIMARY_URL")
		flag.Usage()
		os.Exit(2)
	}
	if *lakeDir == "" && *snapshotPath == "" && *source == "" && !*replicaMode {
		fmt.Fprintln(os.Stderr, "kglids-server: need -lake DIR, -source URI, or -snapshot FILE")
		flag.Usage()
		os.Exit(2)
	}

	var primary *client.Client
	if *replicaMode {
		if primary, err = client.New(*follow); err != nil {
			logger.Error("startup failed", "err", err)
			os.Exit(1)
		}
	}

	var plat *kglids.Platform
	if *replicaMode {
		// A replica boots from a snapshot — a local file when one is given
		// and loadable, otherwise streamed from the primary — and then
		// tails the primary's changelog from the snapshot's position.
		plat, err = replicaPlatform(logger, primary, *snapshotPath)
	} else {
		plat, err = ready(logger, bootSources{
			lakeDir:        *lakeDir,
			source:         *source,
			snapshotPath:   *snapshotPath,
			edgeBlockSize:  *edgeBlockSize,
			edgeCandidates: *edgeCandidates,
			chunkRows:      *chunkRows,
			reservoir:      *reservoir,
		})
	}
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if *slowQueryMS > 0 {
		plat.SetSlowQuery(time.Duration(*slowQueryMS) * time.Millisecond)
	}
	if *queryWorkers > 0 {
		plat.SetQueryWorkers(*queryWorkers)
	}
	stats := plat.Stats()
	logger.Info("LiDS graph ready",
		"triples", stats.Triples, "tables", stats.Tables, "similarity_edges", stats.SimilarityEdges)

	if !*replicaMode {
		// Every primary keeps a bounded mutation changelog so replicas can
		// attach at any time (GET /api/v1/changelog). The budget bounds
		// memory; snapshot saves advance the compaction floor.
		plat.EnableChangelog(*changelogRetention)
	}

	var manager *ingest.Manager
	if *ingestMode && *replicaMode {
		logger.Warn("-ingest ignored in -replica mode; replicas are read-only")
	} else if *ingestMode {
		manager = ingest.New(plat.Core(), ingest.Options{Workers: *ingestWorkers, QueueSize: *ingestQueue})
		logger.Info("live ingestion enabled", "workers", *ingestWorkers, "queue", *ingestQueue)
	}

	saveIfAsked := func() {
		if *saveSnapshot == "" {
			return
		}
		start := time.Now()
		if err := plat.Save(*saveSnapshot); err != nil {
			logger.Error("snapshot save failed", "path", *saveSnapshot, "err", err)
			return
		}
		logger.Info("snapshot saved", "path", *saveSnapshot,
			"duration", time.Since(start).Round(time.Millisecond).String())
	}
	saveIfAsked()

	srvOpts := server.Options{
		RequestTimeout: *timeout,
		Ingest:         manager,
		Logger:         logger,
		AccessLog:      *accessLog,
		ReadOnly:       *replicaMode,
	}

	// In replica mode, tail the primary's changelog in the background for
	// the life of the process; reads keep serving throughout, so staleness
	// is bounded by apply latency plus the poll interval.
	followCtx, stopFollow := context.WithCancel(context.Background())
	defer stopFollow()
	if *replicaMode {
		tracker := kglids.NewReplicaTracker()
		srvOpts.Replica = tracker
		follower := &client.Follower{
			Client: primary,
			Cursor: plat.ChangelogPosition(),
			Poll:   *replicaPoll,
			Apply: func(e client.ChangeEntry) error {
				if err := plat.ApplyChange(e.Kind, e.Generation, e.Payload); err != nil {
					return err
				}
				tracker.ObserveApplied(plat.Generation(), e.TS)
				return nil
			},
			OnProgress: func(cursor, head uint64) {
				if cursor >= head {
					tracker.ObserveAtHead()
				}
			},
		}
		logger.Info("following primary", "primary", *follow,
			"cursor", follower.Cursor, "poll", replicaPoll.String())
		go func() {
			err := follower.Run(followCtx)
			switch {
			case errors.Is(err, context.Canceled):
				// Normal shutdown.
			case errors.Is(err, client.ErrCursorGone):
				logger.Error("replica cursor lost to primary compaction; restart to re-seed from a fresh snapshot", "err", err)
				os.Exit(1)
			case err != nil:
				logger.Error("replication failed; restart to re-seed from a fresh snapshot", "err", err)
				os.Exit(1)
			}
		}()
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(plat, srvOpts),
		// The handler enforces its own per-request deadline; these bound
		// slow or stalled clients at the connection level.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 10*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           server.NewDebugHandler(plat, *pprofFlag),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("diagnostics on", "addr", *debugAddr, "pprof", *pprofFlag)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	} else if *pprofFlag {
		logger.Warn("-pprof has no effect without -debug-addr")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		stopFollow()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if debugSrv != nil {
			if err := debugSrv.Shutdown(ctx); err != nil {
				logger.Warn("debug shutdown", "err", err)
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	}()

	logger.Info("serving", "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	<-done

	if manager != nil {
		// Stop accepting mutations and drain queued jobs, then persist the
		// final state if a snapshot path was given — accepted jobs must not
		// vanish on restart. The drain happens before the save, so the
		// snapshot's changelog position covers every accepted mutation: a
		// follower resuming from the saved snapshot sees no gap.
		logger.Info("draining ingestion jobs")
		manager.Close()
		if !*replicaMode {
			logger.Info("changelog tail flushed", "position", plat.ChangelogPosition())
		}
		saveIfAsked()
	}
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// replicaPlatform boots a follower's platform: from a local snapshot file
// when one is given and loadable, otherwise by streaming the primary's
// current snapshot over /api/v1/snapshot. Either way the platform carries
// the changelog position to resume tailing from.
func replicaPlatform(logger *slog.Logger, primary *client.Client, snapshotPath string) (*kglids.Platform, error) {
	if snapshotPath != "" {
		plat, err := kglids.Open(snapshotPath)
		switch {
		case err == nil:
			logger.Info("replica booted from local snapshot", "path", snapshotPath,
				"position", plat.ChangelogPosition())
			return plat, nil
		case errors.Is(err, os.ErrNotExist):
			logger.Info("local snapshot absent; fetching from primary", "path", snapshotPath)
		default:
			logger.Warn("local snapshot unusable; fetching from primary", "path", snapshotPath, "err", err)
		}
	}
	start := time.Now()
	body, err := primary.Snapshot(context.Background())
	if err != nil {
		return nil, fmt.Errorf("fetch snapshot from primary: %w", err)
	}
	defer body.Close()
	plat, err := kglids.Read(body)
	if err != nil {
		return nil, fmt.Errorf("load primary snapshot: %w", err)
	}
	logger.Info("replica booted from primary snapshot",
		"position", plat.ChangelogPosition(),
		"duration", time.Since(start).Round(time.Millisecond).String())
	return plat, nil
}

// bootSources carries the platform-source flags into ready.
type bootSources struct {
	lakeDir        string
	source         string
	snapshotPath   string
	edgeBlockSize  int
	edgeCandidates int
	chunkRows      int
	reservoir      int
}

// ready produces a serving-ready platform, preferring the snapshot fast
// path when several sources are given, then the streaming connector,
// then the in-memory lake walk. The edge-tuning knobs apply to the
// bootstrap similarity build and to every later ingest delta; snapshots
// persist thresholds but not tuning, so they are re-applied after a load.
func ready(logger *slog.Logger, b bootSources) (*kglids.Platform, error) {
	if b.snapshotPath != "" {
		if b.lakeDir != "" || b.source != "" {
			logger.Info("multiple platform sources given; loading snapshot", "path", b.snapshotPath)
		}
		start := time.Now()
		plat, err := kglids.Open(b.snapshotPath)
		if err != nil {
			return nil, err
		}
		plat.SetEdgeTuning(b.edgeBlockSize, b.edgeCandidates)
		logger.Info("snapshot loaded (no re-profiling)", "path", b.snapshotPath,
			"duration", time.Since(start).Round(time.Millisecond).String())
		return plat, nil
	}

	opts := kglids.Options{
		EdgeBlockSize:  b.edgeBlockSize,
		EdgeCandidates: b.edgeCandidates,
		ChunkRows:      b.chunkRows,
		ReservoirSize:  b.reservoir,
	}
	if b.source != "" {
		if b.lakeDir != "" {
			logger.Info("both -lake and -source given; streaming the connector", "uri", b.source)
		}
		logger.Info("bootstrapping from connector", "uri", b.source)
		start := time.Now()
		plat, failed, err := kglids.BootstrapSource(context.Background(), opts, b.source)
		if err != nil {
			return nil, err
		}
		for id, ferr := range failed {
			logger.Warn("skipping unreadable table", "table", id, "err", ferr)
		}
		logger.Info("bootstrap finished",
			"duration", time.Since(start).Round(time.Millisecond).String())
		return plat, nil
	}

	tables, err := readLake(logger, b.lakeDir)
	if err != nil {
		return nil, err
	}
	logger.Info("bootstrapping", "tables", len(tables))
	start := time.Now()
	plat := kglids.Bootstrap(opts, tables)
	logger.Info("bootstrap finished",
		"duration", time.Since(start).Round(time.Millisecond).String())
	return plat, nil
}

// readLake walks dir for CSV files; each becomes a table whose dataset is
// its parent directory name. Unreadable files are skipped with a warning.
func readLake(logger *slog.Logger, dir string) ([]kglids.Table, error) {
	var tables []kglids.Table
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".csv") {
			return err
		}
		df, err := dataframe.ReadCSVFile(path)
		if err != nil {
			logger.Warn("skipping unreadable table", "path", path, "err", err)
			return nil
		}
		tables = append(tables, kglids.Table{Dataset: filepath.Base(filepath.Dir(path)), Frame: df})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("no readable CSV tables under %s", dir)
	}
	return tables, nil
}
