// Command kglids-server exposes a KGLiDS platform over HTTP: the
// versioned /api/v1 surface (stable DTOs, cursor pagination, generation
// ETags, SPARQL 1.1 protocol — consumed through the typed client in
// package kglids/client) plus the frozen legacy routes, mirroring the
// KGLiDS Interfaces in service form (paper Section 5). See
// docs/SERVER_API.md for the endpoint reference.
//
// The platform comes from one of two sources:
//
//   - -lake DIR      bootstrap from a directory of CSV files (profile,
//     build the LiDS graph, index embeddings) — minutes for large lakes;
//   - -snapshot FILE load a snapshot previously written with
//     -save-snapshot (or kglids.Platform.Save) — milliseconds, with
//     query results identical to the bootstrap that produced it.
//
// Usage:
//
//	kglids-server -lake DIR [-save-snapshot FILE] [-addr :8080]
//	kglids-server -snapshot FILE [-addr :8080]
//	kglids-server -lake DIR -ingest [-ingest-workers N] [-ingest-queue N]
//
// -save-snapshot persists the platform after it is ready (from either
// source), so the next start can skip bootstrapping.
//
// -ingest enables live mutation: POST /ingest submits tables that an
// asynchronous worker pool profiles and splices into the serving graph,
// DELETE /tables/{id} retracts a table, and GET /jobs reports job states —
// no restart, no re-bootstrap. On shutdown queued jobs drain before the
// process exits (and before -save-snapshot runs, when given, so the saved
// snapshot reflects every accepted job).
//
// -edge-block-size and -edge-candidates tune the blocked similarity-edge
// pipeline used by bootstrap and every ingest delta (see
// docs/ARCHITECTURE.md, "Schema construction at scale"). They move time
// and memory around without ever changing the resulting edge set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"kglids"
	"kglids/internal/dataframe"
	"kglids/internal/ingest"
	"kglids/internal/server"
)

func main() {
	lakeDir := flag.String("lake", "", "data lake directory of CSV files (bootstrap source)")
	snapshotPath := flag.String("snapshot", "", "snapshot file to load instead of bootstrapping")
	saveSnapshot := flag.String("save-snapshot", "", "write the ready platform to this snapshot file")
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request deadline")
	ingestMode := flag.Bool("ingest", false, "enable live mutation endpoints (POST /ingest, DELETE /tables/{id})")
	ingestWorkers := flag.Int("ingest-workers", 2, "ingestion worker pool size")
	ingestQueue := flag.Int("ingest-queue", 64, "bounded ingestion job queue size")
	edgeBlockSize := flag.Int("edge-block-size", 0, "similarity pipeline: largest same-type column block compared exhaustively (0 = default)")
	edgeCandidates := flag.Int("edge-candidates", 0, "similarity pipeline: target pre-filter candidates per column (0 = default)")
	accessLog := flag.Bool("access-log", true, "log one line per request (method, path, status, duration, request ID)")
	flag.Parse()
	if *lakeDir == "" && *snapshotPath == "" {
		fmt.Fprintln(os.Stderr, "kglids-server: need -lake DIR or -snapshot FILE")
		flag.Usage()
		os.Exit(2)
	}

	plat, err := ready(*lakeDir, *snapshotPath, *edgeBlockSize, *edgeCandidates)
	if err != nil {
		log.Fatal(err)
	}
	stats := plat.Stats()
	log.Printf("LiDS graph ready: %d triples, %d tables, %d similarity edges",
		stats.Triples, stats.Tables, stats.SimilarityEdges)

	var manager *ingest.Manager
	if *ingestMode {
		manager = ingest.New(plat.Core(), ingest.Options{Workers: *ingestWorkers, QueueSize: *ingestQueue})
		log.Printf("live ingestion enabled: %d workers, queue of %d", *ingestWorkers, *ingestQueue)
	}

	saveIfAsked := func() {
		if *saveSnapshot == "" {
			return
		}
		start := time.Now()
		if err := plat.Save(*saveSnapshot); err != nil {
			log.Printf("snapshot save: %v", err)
			return
		}
		log.Printf("snapshot saved to %s in %v", *saveSnapshot, time.Since(start).Round(time.Millisecond))
	}
	saveIfAsked()

	srvOpts := server.Options{RequestTimeout: *timeout, Ingest: manager}
	if *accessLog {
		srvOpts.Logf = log.Printf
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(plat, srvOpts),
		// The handler enforces its own per-request deadline; these bound
		// slow or stalled clients at the connection level.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 10*time.Second,
		IdleTimeout:       120 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done

	if manager != nil {
		// Stop accepting mutations and drain queued jobs, then persist the
		// final state if a snapshot path was given — accepted jobs must not
		// vanish on restart.
		log.Print("draining ingestion jobs...")
		manager.Close()
		saveIfAsked()
	}
}

// ready produces a serving-ready platform, preferring the snapshot fast
// path when both sources are given. The edge-tuning knobs apply to the
// bootstrap similarity build and to every later ingest delta; snapshots
// persist thresholds but not tuning, so they are re-applied after a load.
func ready(lakeDir, snapshotPath string, edgeBlockSize, edgeCandidates int) (*kglids.Platform, error) {
	if snapshotPath != "" {
		if lakeDir != "" {
			log.Printf("both -lake and -snapshot given; loading snapshot %s", snapshotPath)
		}
		start := time.Now()
		plat, err := kglids.Open(snapshotPath)
		if err != nil {
			return nil, err
		}
		plat.SetEdgeTuning(edgeBlockSize, edgeCandidates)
		log.Printf("snapshot %s loaded in %v (no re-profiling)",
			snapshotPath, time.Since(start).Round(time.Millisecond))
		return plat, nil
	}

	tables, err := readLake(lakeDir)
	if err != nil {
		return nil, err
	}
	log.Printf("bootstrapping over %d tables...", len(tables))
	start := time.Now()
	plat := kglids.Bootstrap(kglids.Options{
		EdgeBlockSize:  edgeBlockSize,
		EdgeCandidates: edgeCandidates,
	}, tables)
	log.Printf("bootstrap finished in %v", time.Since(start).Round(time.Millisecond))
	return plat, nil
}

// readLake walks dir for CSV files; each becomes a table whose dataset is
// its parent directory name. Unreadable files are skipped with a warning.
func readLake(dir string) ([]kglids.Table, error) {
	var tables []kglids.Table
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".csv") {
			return err
		}
		df, err := dataframe.ReadCSVFile(path)
		if err != nil {
			log.Printf("skipping %s: %v", path, err)
			return nil
		}
		tables = append(tables, kglids.Table{Dataset: filepath.Base(filepath.Dir(path)), Frame: df})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("no readable CSV tables under %s", dir)
	}
	return tables, nil
}
