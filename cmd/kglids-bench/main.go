// Command kglids-bench regenerates the paper's tables and figures
// (Section 6) over the synthetic workload replicas and prints them in the
// paper's layout.
//
// Usage:
//
//	kglids-bench [-pipelines N] [-training N] [experiment ...]
//
// Experiments: table1 table2 figure5 figure6 figure4 table3 table4 table5
// figure7 table6 figure8 figure9, or "all" (default). Table 2 / Figure 5
// share one run, as do Table 3 / Table 4 / Figure 4 and Table 5 /
// Figure 7 and Table 6 / Figure 8.
package main

import (
	"flag"
	"fmt"
	"os"

	"kglids/internal/experiments"
)

func main() {
	pipelines := flag.Int("pipelines", 300, "corpus size for abstraction/AutoML experiments")
	training := flag.Int("training", 24, "training datasets for the cleaning/transformation GNNs")
	flag.Parse()

	want := map[string]bool{}
	if flag.NArg() == 0 {
		want["all"] = true
	}
	for _, a := range flag.Args() {
		want[a] = true
	}
	run := func(names ...string) bool {
		if want["all"] {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	if run("table1") {
		fmt.Println(experiments.FormatTable1(experiments.RunTable1()))
	}
	if run("table2", "figure5") {
		runs := experiments.RunTable2AndFigure5(experiments.Specs())
		fmt.Println(experiments.FormatTable2(runs))
		fmt.Println(experiments.FormatFigure5(runs))
	}
	if run("figure6") {
		fmt.Println(experiments.FormatFigure6(experiments.RunFigure6()))
	}
	if run("table3", "table4", "figure4") {
		r := experiments.RunAbstraction(*pipelines)
		fmt.Println(experiments.FormatFigure4(r))
		fmt.Println(experiments.FormatTable3(r))
		fmt.Println(experiments.FormatTable4(r))
	}
	if run("table5", "figure7") {
		rows := experiments.RunTable5(*training)
		fmt.Println(experiments.FormatTable5(rows))
		fmt.Println(experiments.FormatFigure7(rows))
	}
	if run("table6", "figure8") {
		rows := experiments.RunTable6(*training)
		fmt.Println(experiments.FormatTable6(rows))
		fmt.Println(experiments.FormatFigure8(rows))
	}
	if run("figure9") {
		fmt.Println(experiments.FormatFigure9(experiments.RunFigure9(*pipelines)))
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}
}
