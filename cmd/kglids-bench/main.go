// Command kglids-bench regenerates the paper's tables and figures
// (Section 6) over the synthetic workload replicas and prints them in the
// paper's layout, and runs the repo's standing evaluation.
//
// Usage:
//
//	kglids-bench [-pipelines N] [-training N] [-snapshot F] [-save-snapshot F]
//	             [-query-workers N] [experiment ...]
//	kglids-bench eval [-quick] [-out F] [-compare OLD.json] [-against NEW.json]
//	                  [-quality-tolerance T] [-perf-tolerance T] [-concurrency N]
//	                  [-demote IN.json]
//	kglids-bench checkmetrics [-require FAMILY]... <file|url|->
//
// Experiments: table1 table2 figure5 figure6 figure4 table3 table4 table5
// figure7 table6 figure8 figure9 snapshot ingest sparql server edges
// connectors replicas, or "all" (default). Table 2 / Figure 5 share one
// run, as do Table 3 / Table 4 / Figure 4 and Table 5 / Figure 7 and
// Table 6 / Figure 8.
//
// The snapshot experiment measures persist-once/serve-many startup; the
// ingest experiment measures live mutation vs re-bootstrap; the sparql
// experiment quantifies the ID-space query engine against the term-space
// reference and the morsel-parallel executor against the serial oracle
// (-query-workers sets the measured width); the server experiment drives
// /api/v1 end-to-end through the
// typed client; the edges experiment measures the blocked similarity-edge
// pipeline against the exhaustive oracle; the connectors experiment
// streams a generated lake 10x larger than its resident chunk budget
// through the one-pass profiler against the materialize-then-profile
// path, proving byte-identical profiles in bounded memory; the replicas
// experiment boots read replicas off the primary's snapshot + changelog
// stream, measures aggregate read throughput at 1..N followers, and times
// a live mutation's convergence across all of them. All seven live in
// internal/experiments and feed the eval trajectory.
//
// The eval subcommand is the standing evaluation harness: it scores
// discovery quality (precision/recall/F1 against constructed ground truth)
// for the platform and the vendored baselines through one shared
// interface, runs the seven perf experiments, and writes a versioned
// BENCH_<date>.json trajectory at the current directory. -compare diffs a
// previous trajectory against the fresh run (or against -against without
// running) and exits non-zero on any regression beyond tolerance; -demote
// writes a deliberately regressed copy of a trajectory so CI can prove the
// gate fails when it should. See docs/BENCHMARKS.md.
//
// The checkmetrics subcommand validates a Prometheus text exposition
// (file, URL, or stdin) and optionally asserts named families are
// present; CI uses it to smoke-test a live kglids-server /metrics
// endpoint. See docs/OBSERVABILITY.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"kglids"
	"kglids/internal/experiments"
	"kglids/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "eval" {
		os.Exit(evalMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "checkmetrics" {
		os.Exit(checkMetricsMain(os.Args[2:]))
	}

	pipelines := flag.Int("pipelines", 300, "corpus size for abstraction/AutoML experiments")
	training := flag.Int("training", 24, "training datasets for the cleaning/transformation GNNs")
	snapshotPath := flag.String("snapshot", "", "snapshot experiment: load this file instead of bootstrapping")
	saveSnapshot := flag.String("save-snapshot", "", "snapshot experiment: keep the saved snapshot at this path")
	queryWorkers := flag.Int("query-workers", 0, "sparql experiment: parallel execution width (0 = number of CPUs)")
	quick := flag.Bool("quick", false, "connectors experiment: CI-scale lake")
	flag.Parse()

	want := map[string]bool{}
	if flag.NArg() == 0 {
		want["all"] = true
	}
	for _, a := range flag.Args() {
		want[a] = true
	}
	run := func(names ...string) bool {
		if want["all"] {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	if run("table1") {
		fmt.Println(experiments.FormatTable1(experiments.RunTable1()))
	}
	if run("table2", "figure5") {
		runs := experiments.RunTable2AndFigure5(experiments.Specs())
		fmt.Println(experiments.FormatTable2(runs))
		fmt.Println(experiments.FormatFigure5(runs))
	}
	if run("figure6") {
		fmt.Println(experiments.FormatFigure6(experiments.RunFigure6()))
	}
	if run("table3", "table4", "figure4") {
		r := experiments.RunAbstraction(*pipelines)
		fmt.Println(experiments.FormatFigure4(r))
		fmt.Println(experiments.FormatTable3(r))
		fmt.Println(experiments.FormatTable4(r))
	}
	if run("table5", "figure7") {
		rows := experiments.RunTable5(*training)
		fmt.Println(experiments.FormatTable5(rows))
		fmt.Println(experiments.FormatFigure7(rows))
	}
	if run("table6", "figure8") {
		rows := experiments.RunTable6(*training)
		fmt.Println(experiments.FormatTable6(rows))
		fmt.Println(experiments.FormatFigure8(rows))
	}
	if run("figure9") {
		fmt.Println(experiments.FormatFigure9(experiments.RunFigure9(*pipelines)))
	}
	if run("snapshot") {
		if err := runSnapshot(*snapshotPath, *saveSnapshot); err != nil {
			fmt.Fprintln(os.Stderr, "snapshot experiment:", err)
			os.Exit(1)
		}
	}
	if run("ingest") {
		if err := runIngest(); err != nil {
			fmt.Fprintln(os.Stderr, "ingest experiment:", err)
			os.Exit(1)
		}
	}
	if run("sparql") {
		report, err := experiments.RunSPARQLPerf(experiments.PerfOptions{QueryWorkers: *queryWorkers})
		if err := printJSON("SPARQL: ID-space compiled engine vs term-space reference (serving replica)", report, err); err != nil {
			fmt.Fprintln(os.Stderr, "sparql experiment:", err)
			os.Exit(1)
		}
	}
	if run("server") {
		report, err := experiments.RunServerPerf(experiments.PerfOptions{})
		if err := printJSON("Server: end-to-end /api/v1 latency via the typed client (loopback)", report, err); err != nil {
			fmt.Fprintln(os.Stderr, "server experiment:", err)
			os.Exit(1)
		}
	}
	if run("edges") {
		report, err := experiments.RunEdgesPerf(experiments.PerfOptions{})
		if err := printJSON("Edges: blocked/candidate-pruned similarity pipeline vs exhaustive (wide lakes)", report, err); err != nil {
			fmt.Fprintln(os.Stderr, "edges experiment:", err)
			os.Exit(1)
		}
	}
	if run("connectors") {
		report, err := experiments.RunConnectorsPerf(experiments.PerfOptions{Quick: *quick})
		if err := printJSON("Connectors: streaming one-pass profiler vs materialize-then-profile (lakegen:// lake)", report, err); err != nil {
			fmt.Fprintln(os.Stderr, "connectors experiment:", err)
			os.Exit(1)
		}
	}
	if run("replicas") {
		report, err := experiments.RunReplicasPerf(experiments.PerfOptions{Quick: *quick})
		if err := printJSON("Replicas: snapshot-seeded followers tailing the changelog (read scaling + convergence)", report, err); err != nil {
			fmt.Fprintln(os.Stderr, "replicas experiment:", err)
			os.Exit(1)
		}
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}
}

// printJSON prints a heading and an experiment report as indented JSON.
func printJSON[T any](heading string, report T, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(heading)
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runSnapshot times bootstrap vs snapshot load over the serving replica,
// or, with loadPath set, just times loading an existing snapshot file.
func runSnapshot(loadPath, savePath string) error {
	fmt.Println("Snapshot: persist-once/serve-many startup (serving replica, 1000-row tables)")

	if loadPath != "" {
		start := time.Now()
		plat, err := kglids.Open(loadPath)
		if err != nil {
			return err
		}
		s := plat.Stats()
		fmt.Printf("  loaded %s in %v: %d triples, %d tables, %d similarity edges\n",
			loadPath, time.Since(start).Round(time.Millisecond), s.Triples, s.Tables, s.SimilarityEdges)
		return nil
	}

	res, err := experiments.RunSnapshotPerf(experiments.PerfOptions{SnapshotSavePath: savePath})
	if err != nil {
		return err
	}
	fmt.Printf("  tables %d | bootstrap %.0fms | save %.0fms | load %.0fms | file %.1f MiB | speedup %.0fx\n",
		res.Tables, res.BootstrapMS, res.SaveMS, res.LoadMS, res.FileMiB, res.Speedup)
	if savePath != "" {
		fmt.Printf("  snapshot kept at %s (reuse with -snapshot %s)\n", savePath, savePath)
	}
	return nil
}

// runIngest times absorbing one new table incrementally versus re-
// bootstrapping the whole lake.
func runIngest() error {
	fmt.Println("Ingest: live incremental ingestion vs full re-bootstrap (serving replica)")
	res, err := experiments.RunIngestPerf(experiments.PerfOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("  tables %d | incremental add of 1 table %.0fms | re-bootstrap of %d tables %.0fms | speedup %.0fx\n",
		res.Tables, res.IncrementalMS, res.Tables, res.RebootstrapMS, res.Speedup)
	return nil
}

// evalMain is the `kglids-bench eval` entry point. Exit codes: 0 success,
// 1 regression detected or run failure, 2 usage error.
func evalMain(args []string) int {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	quick := fs.Bool("quick", false, "CI-scale lakes and repetition counts")
	out := fs.String("out", "", "trajectory output path (default BENCH_<YYYY-MM-DD>.json)")
	compare := fs.String("compare", "", "gate: old trajectory file to compare the fresh run against")
	against := fs.String("against", "", "with -compare: diff OLD against this file instead of running the eval")
	qualityTol := fs.Float64("quality-tolerance", experiments.DefaultTolerance().Quality,
		"max allowed absolute drop in precision/recall/F1")
	perfTol := fs.Float64("perf-tolerance", experiments.DefaultTolerance().Perf,
		"max allowed fractional slowdown on perf medians; <= 0 disables perf gating")
	concurrency := fs.Int("concurrency", 1, "experiments run at once (1 for trustworthy timings)")
	demote := fs.String("demote", "", "write a deliberately regressed copy of this trajectory to -out and exit")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "eval: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return 2
	}
	tol := experiments.Tolerance{Quality: *qualityTol, Perf: *perfTol}

	if *demote != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "eval: -demote requires -out")
			return 2
		}
		t, err := readTrajectory(*demote)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			return 1
		}
		if err := writeTrajectory(*out, experiments.Demote(t)); err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			return 1
		}
		fmt.Printf("eval: wrote regressed copy of %s to %s\n", *demote, *out)
		return 0
	}

	if *against != "" {
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "eval: -against requires -compare")
			return 2
		}
		old, err := readTrajectory(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			return 1
		}
		fresh, err := readTrajectory(*against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			return 1
		}
		return reportCompare(*compare, *against, old, fresh, tol)
	}

	started := time.Now()
	t, err := experiments.RunEval(experiments.EvalOptions{
		Quick:       *quick,
		Concurrency: *concurrency,
		GitSHA:      gitSHA(),
		GeneratedAt: started,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "eval:", err)
		return 1
	}
	path := *out
	if path == "" {
		path = "BENCH_" + started.UTC().Format("2006-01-02") + ".json"
	}
	if err := writeTrajectory(path, t); err != nil {
		fmt.Fprintln(os.Stderr, "eval:", err)
		return 1
	}
	fmt.Print(experiments.FormatTrajectory(t))
	fmt.Printf("%s in %v -> %s\n", experiments.EvalSummary(t), time.Since(started).Round(time.Second), path)

	if *compare != "" {
		old, err := readTrajectory(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			return 1
		}
		return reportCompare(*compare, path, old, t, tol)
	}
	return 0
}

// checkMetricsMain is the `kglids-bench checkmetrics` entry point: it
// validates a Prometheus text exposition — from a file, an http(s) URL,
// or stdin ("-") — against the 0.0.4 structural rules (TYPE lines,
// histogram bucket monotonicity, label escaping) and optionally requires
// named metric families to be present. CI boots kglids-server with
// -debug-addr and points this at /metrics so a malformed or empty
// exposition fails the build. Exit codes: 0 valid, 1 invalid or
// unreadable, 2 usage error.
func checkMetricsMain(args []string) int {
	fs := flag.NewFlagSet("checkmetrics", flag.ExitOnError)
	var require requiredFamilies
	fs.Var(&require, "require", "metric family that must be present (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kglids-bench checkmetrics [-require FAMILY]... <file|url|->")
		return 2
	}
	src := fs.Arg(0)

	var data []byte
	var err error
	switch {
	case src == "-":
		data, err = io.ReadAll(os.Stdin)
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		var resp *http.Response
		if resp, err = http.Get(src); err == nil {
			data, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("GET %s: status %s", src, resp.Status)
			}
		}
	default:
		data, err = os.ReadFile(src)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkmetrics:", err)
		return 1
	}

	if err := obs.ValidateExposition(bytes.NewReader(data)); err != nil {
		fmt.Fprintln(os.Stderr, "checkmetrics: invalid exposition:", err)
		return 1
	}
	families := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(name)[0]] = true
		}
	}
	missing := 0
	for _, want := range require {
		if !families[want] {
			fmt.Fprintf(os.Stderr, "checkmetrics: required family %q missing\n", want)
			missing++
		}
	}
	if missing > 0 {
		return 1
	}
	fmt.Printf("checkmetrics: %s valid (%d families)\n", src, len(families))
	return 0
}

// requiredFamilies is a repeatable -require flag.
type requiredFamilies []string

func (r *requiredFamilies) String() string     { return strings.Join(*r, ",") }
func (r *requiredFamilies) Set(v string) error { *r = append(*r, v); return nil }

// reportCompare prints the diff verdict and returns the process exit code.
func reportCompare(oldPath, newPath string, old, fresh *experiments.Trajectory, tol experiments.Tolerance) int {
	regs, notes := experiments.Compare(old, fresh, tol)
	for _, n := range notes {
		fmt.Println(n)
	}
	if len(regs) == 0 {
		fmt.Printf("compare: no regressions (%s -> %s, quality tol %.3g, perf tol %.3g)\n",
			oldPath, newPath, tol.Quality, tol.Perf)
		return 0
	}
	fmt.Fprintf(os.Stderr, "compare: %d regression(s) (%s -> %s):\n", len(regs), oldPath, newPath)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "  "+r.String())
	}
	return 1
}

func readTrajectory(path string) (*experiments.Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := experiments.DecodeTrajectory(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func writeTrajectory(path string, t *experiments.Trajectory) error {
	data, err := experiments.EncodeTrajectory(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// gitSHA stamps the trajectory with the current commit, best-effort.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
