// Command kglids-bench regenerates the paper's tables and figures
// (Section 6) over the synthetic workload replicas and prints them in the
// paper's layout.
//
// Usage:
//
//	kglids-bench [-pipelines N] [-training N] [-snapshot F] [-save-snapshot F] [experiment ...]
//
// Experiments: table1 table2 figure5 figure6 figure4 table3 table4 table5
// figure7 table6 figure8 figure9 snapshot ingest sparql server edges, or
// "all" (default). Table 2 / Figure 5 share one run, as do Table 3 /
// Table 4 / Figure 4 and Table 5 / Figure 7 and Table 6 / Figure 8.
//
// The snapshot experiment measures persist-once/serve-many startup: it
// bootstraps the TUS-Small synthetic lake, saves it with the snapshot
// codec, reloads it, verifies the reloaded graph is identical, and prints
// the bootstrap-vs-load speedup. -save-snapshot keeps the file for reuse;
// -snapshot skips the bootstrap and loads an existing file instead.
//
// The ingest experiment measures live mutation on a serving platform: it
// holds one table out of the serving replica, ingests it incrementally
// (Platform.AddTables), verifies the result is equivalent to a fresh
// bootstrap over the full lake, and prints the incremental-vs-rebootstrap
// speedup (the ≥10x claim of the live-ingestion subsystem).
//
// The sparql experiment quantifies the ID-space query engine: it runs
// discovery-shaped queries on the term-space reference evaluator and the
// compiled ID-space engine over the serving replica, verifies both agree,
// and emits a JSON record per query (term_us, id_us, cached_us, speedup)
// for the performance trajectory.
//
// The server experiment measures the full serving stack end-to-end: it
// mounts the HTTP handler on a loopback listener, drives the /api/v1
// surface through the typed client in package kglids/client (DTO decode,
// conditional GET, retry logic included), and emits one JSON record of
// median request latency per endpoint plus one asynchronous
// ingest-to-completion round-trip.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/experiments"
	"kglids/internal/ingest"
	"kglids/internal/lakegen"
	"kglids/internal/profiler"
	"kglids/internal/schema"
	"kglids/internal/server"
	"kglids/internal/sparql"
)

func main() {
	pipelines := flag.Int("pipelines", 300, "corpus size for abstraction/AutoML experiments")
	training := flag.Int("training", 24, "training datasets for the cleaning/transformation GNNs")
	snapshotPath := flag.String("snapshot", "", "snapshot experiment: load this file instead of bootstrapping")
	saveSnapshot := flag.String("save-snapshot", "", "snapshot experiment: keep the saved snapshot at this path")
	flag.Parse()

	want := map[string]bool{}
	if flag.NArg() == 0 {
		want["all"] = true
	}
	for _, a := range flag.Args() {
		want[a] = true
	}
	run := func(names ...string) bool {
		if want["all"] {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	if run("table1") {
		fmt.Println(experiments.FormatTable1(experiments.RunTable1()))
	}
	if run("table2", "figure5") {
		runs := experiments.RunTable2AndFigure5(experiments.Specs())
		fmt.Println(experiments.FormatTable2(runs))
		fmt.Println(experiments.FormatFigure5(runs))
	}
	if run("figure6") {
		fmt.Println(experiments.FormatFigure6(experiments.RunFigure6()))
	}
	if run("table3", "table4", "figure4") {
		r := experiments.RunAbstraction(*pipelines)
		fmt.Println(experiments.FormatFigure4(r))
		fmt.Println(experiments.FormatTable3(r))
		fmt.Println(experiments.FormatTable4(r))
	}
	if run("table5", "figure7") {
		rows := experiments.RunTable5(*training)
		fmt.Println(experiments.FormatTable5(rows))
		fmt.Println(experiments.FormatFigure7(rows))
	}
	if run("table6", "figure8") {
		rows := experiments.RunTable6(*training)
		fmt.Println(experiments.FormatTable6(rows))
		fmt.Println(experiments.FormatFigure8(rows))
	}
	if run("figure9") {
		fmt.Println(experiments.FormatFigure9(experiments.RunFigure9(*pipelines)))
	}
	if run("snapshot") {
		if err := runSnapshot(*snapshotPath, *saveSnapshot); err != nil {
			fmt.Fprintln(os.Stderr, "snapshot experiment:", err)
			os.Exit(1)
		}
	}
	if run("ingest") {
		if err := runIngest(); err != nil {
			fmt.Fprintln(os.Stderr, "ingest experiment:", err)
			os.Exit(1)
		}
	}
	if run("sparql") {
		if err := runSPARQL(); err != nil {
			fmt.Fprintln(os.Stderr, "sparql experiment:", err)
			os.Exit(1)
		}
	}
	if run("server") {
		if err := runServer(); err != nil {
			fmt.Fprintln(os.Stderr, "server experiment:", err)
			os.Exit(1)
		}
	}
	if run("edges") {
		if err := runEdges(); err != nil {
			fmt.Fprintln(os.Stderr, "edges experiment:", err)
			os.Exit(1)
		}
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}
}

// snapshotSpec is the serving-replica lake for the snapshot experiment:
// realistic per-table row counts (bootstrap cost scales with rows profiled;
// snapshot load depends only on graph and embedding size, so this is the
// regime the persist-once/serve-many architecture targets).
var snapshotSpec = lakegen.Spec{
	Name: "Serving", Families: 8, TablesPerFamily: 4, NoiseTables: 10,
	RowsPerTable: 1000, QueryTables: 10, Seed: 81,
}

// runSnapshot times bootstrap vs snapshot load over the serving replica.
func runSnapshot(loadPath, savePath string) error {
	fmt.Println("Snapshot: persist-once/serve-many startup (serving replica, 1000-row tables)")

	if loadPath != "" {
		start := time.Now()
		plat, err := kglids.Open(loadPath)
		if err != nil {
			return err
		}
		s := plat.Stats()
		fmt.Printf("  loaded %s in %v: %d triples, %d tables, %d similarity edges\n",
			loadPath, time.Since(start).Round(time.Millisecond), s.Triples, s.Tables, s.SimilarityEdges)
		return nil
	}

	lake := lakegen.Generate(snapshotSpec)
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	start := time.Now()
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	bootstrap := time.Since(start)

	path := savePath
	if path == "" {
		dir, err := os.MkdirTemp("", "kglids-bench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "lake.kgs")
	}
	start = time.Now()
	if err := plat.Save(path); err != nil {
		return err
	}
	save := time.Since(start)
	info, err := os.Stat(path)
	if err != nil {
		return err
	}

	start = time.Now()
	reloaded, err := kglids.Open(path)
	if err != nil {
		return err
	}
	load := time.Since(start)
	if reloaded.Stats() != plat.Stats() {
		return fmt.Errorf("reloaded stats %+v differ from bootstrap %+v", reloaded.Stats(), plat.Stats())
	}

	fmt.Printf("  tables %d | bootstrap %v | save %v | load %v | file %.1f MiB | speedup %.0fx\n",
		len(tables),
		bootstrap.Round(time.Millisecond), save.Round(time.Millisecond), load.Round(time.Millisecond),
		float64(info.Size())/(1<<20), float64(bootstrap)/float64(load))
	if savePath != "" {
		fmt.Printf("  snapshot kept at %s (reuse with -snapshot %s)\n", savePath, savePath)
	}
	return nil
}

// runIngest times absorbing one new table incrementally versus re-
// bootstrapping the whole lake, and verifies the two paths are equivalent.
func runIngest() error {
	fmt.Println("Ingest: live incremental ingestion vs full re-bootstrap (serving replica)")

	lake := lakegen.Generate(snapshotSpec)
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	n := len(tables)
	base, extra := tables[:n-1], tables[n-1:]

	plat := kglids.Bootstrap(kglids.Options{}, base)
	start := time.Now()
	if _, err := plat.AddTables(extra); err != nil {
		return err
	}
	incremental := time.Since(start)

	start = time.Now()
	fresh := kglids.Bootstrap(kglids.Options{}, tables)
	rebootstrap := time.Since(start)

	if plat.Stats() != fresh.Stats() {
		return fmt.Errorf("incremental stats %+v diverge from rebootstrap %+v", plat.Stats(), fresh.Stats())
	}
	fmt.Printf("  tables %d | incremental add of 1 table %v | re-bootstrap of %d tables %v | speedup %.0fx\n",
		n, incremental.Round(time.Millisecond), n, rebootstrap.Round(time.Millisecond),
		float64(rebootstrap)/float64(incremental))
	return nil
}

// sparqlQueryResult is one row of the sparql experiment's JSON output.
type sparqlQueryResult struct {
	Name     string  `json:"name"`
	Query    string  `json:"query"`
	Rows     int     `json:"rows"`
	TermUS   float64 `json:"term_us"`
	IDUS     float64 `json:"id_us"`
	CachedUS float64 `json:"cached_us"`
	Speedup  float64 `json:"speedup"`
}

// sparqlExperiment is the JSON envelope of the sparql experiment.
type sparqlExperiment struct {
	Experiment string              `json:"experiment"`
	Tables     int                 `json:"tables"`
	Triples    int                 `json:"triples"`
	Queries    []sparqlQueryResult `json:"queries"`
}

// medianMicros reports each function's median latency over interleaved
// repetitions: alternating the candidates inside one loop exposes them to
// the same GC pauses and scheduler noise, and the median shrugs off the
// outliers a mean would keep.
func medianMicros(fns ...func() error) ([]float64, error) {
	const reps = 31
	times := make([][]float64, len(fns))
	for i := 0; i < reps; i++ {
		for j, fn := range fns {
			start := time.Now()
			if err := fn(); err != nil {
				return nil, err
			}
			times[j] = append(times[j], float64(time.Since(start).Nanoseconds())/1e3)
		}
	}
	out := make([]float64, len(fns))
	for j := range fns {
		sort.Float64s(times[j])
		out[j] = times[j][reps/2]
	}
	return out, nil
}

// runSPARQL times the term-space reference evaluator against the compiled
// ID-space engine (and its generation-keyed cache) over the serving
// replica, verifying result equivalence, and prints one JSON document.
func runSPARQL() error {
	fmt.Println("SPARQL: ID-space compiled engine vs term-space reference (serving replica)")

	lake := lakegen.Generate(snapshotSpec)
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	eng := sparql.NewEngine(plat.Core().Store)

	queries := []struct{ name, src string }{
		{"int-columns", `SELECT ?t ?c ?n WHERE {
			?t a kglids:Table .
			?c kglids:isPartOf ?t ; kglids:name ?n ; kglids:dataType "int" . }`},
		{"similarity-join", `SELECT ?c ?d ?t WHERE {
			?c kglids:contentSimilarity ?d . ?d kglids:isPartOf ?t . ?t a kglids:Table . }`},
		{"keyword-filter", `SELECT ?t ?n WHERE {
			?t a kglids:Table ; kglids:name ?n . FILTER(CONTAINS(LCASE(?n), ".csv") && REGEX(?n, "_t0", "i")) }`},
		{"type-histogram", `SELECT ?dt (COUNT(?c) AS ?n) WHERE {
			?c a kglids:Column ; kglids:dataType ?dt . } GROUP BY ?dt ORDER BY DESC(?n)`},
	}

	report := sparqlExperiment{Experiment: "sparql", Tables: len(tables), Triples: plat.Stats().Triples}
	for _, q := range queries {
		parsed, err := sparql.Parse(q.src)
		if err != nil {
			return fmt.Errorf("%s: %v", q.name, err)
		}
		ref, err := eng.ExecReference(parsed)
		if err != nil {
			return fmt.Errorf("%s (reference): %v", q.name, err)
		}
		ids, err := eng.Exec(parsed)
		if err != nil {
			return fmt.Errorf("%s (compiled): %v", q.name, err)
		}
		if err := sameRows(ref, ids); err != nil {
			return fmt.Errorf("%s: %v", q.name, err)
		}

		if _, err := eng.Query(q.src); err != nil { // warm the result cache
			return err
		}
		med, err := medianMicros(
			func() error { _, err := eng.ExecReference(parsed); return err },
			func() error { _, err := eng.Exec(parsed); return err },
			func() error { _, err := eng.Query(q.src); return err },
		)
		if err != nil {
			return err
		}
		termUS, idUS, cachedUS := med[0], med[1], med[2]

		speedup := 0.0
		if idUS > 0 {
			speedup = termUS / idUS
		}
		report.Queries = append(report.Queries, sparqlQueryResult{
			Name: q.name, Query: q.src, Rows: len(ids.Rows),
			TermUS: termUS, IDUS: idUS, CachedUS: cachedUS, Speedup: speedup,
		})
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// serverSpec is the lake for the server experiment: smaller than the
// snapshot replica because the subject under measurement is the HTTP
// serving stack (router, middleware, DTO encode/decode, client), not
// bootstrap cost.
var serverSpec = lakegen.Spec{
	Name: "HTTP", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
	RowsPerTable: 200, QueryTables: 4, Seed: 91,
}

// serverEndpointResult is one row of the server experiment's JSON output.
type serverEndpointResult struct {
	Name     string  `json:"name"`
	MedianUS float64 `json:"median_us"`
}

// serverExperiment is the JSON envelope of the server experiment.
type serverExperiment struct {
	Experiment       string                 `json:"experiment"`
	Tables           int                    `json:"tables"`
	Triples          int                    `json:"triples"`
	Endpoints        []serverEndpointResult `json:"endpoints"`
	IngestRoundTrip  float64                `json:"ingest_roundtrip_ms"`
	DeleteRoundTrip  float64                `json:"delete_roundtrip_ms"`
	ConditionalReads bool                   `json:"conditional_reads"`
}

// runServer measures end-to-end /api/v1 latency through the typed client:
// handler mounted on a loopback listener, every number includes routing,
// middleware, JSON encode, network round-trip, and client-side DTO decode.
// Steady-state reads revalidate with If-None-Match (the client caches
// ETag'd bodies), which is the latency a polling client actually sees.
func runServer() error {
	fmt.Println("Server: end-to-end /api/v1 latency via the typed client (loopback)")

	lake := lakegen.Generate(serverSpec)
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 8})
	defer mgr.Close()
	ts := httptest.NewServer(server.New(plat, server.Options{Ingest: mgr}))
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		return err
	}
	ctx := context.Background()
	q := lake.QueryTables[0]
	tableID := lake.Dataset[q] + "/" + q
	const sparqlQ = `SELECT ?t ?n WHERE { ?t a kglids:Table ; kglids:name ?n . }`

	endpoints := []struct {
		name string
		call func() error
	}{
		{"healthz", func() error { _, err := c.Health(ctx); return err }},
		{"stats", func() error { _, err := c.Stats(ctx); return err }},
		{"tables", func() error { _, err := c.Tables(ctx, client.PageOpts{}); return err }},
		{"search", func() error { _, err := c.Search(ctx, q[:3], client.PageOpts{}); return err }},
		{"unionable", func() error { _, err := c.Unionable(ctx, tableID, 10, client.PageOpts{}); return err }},
		{"similar", func() error { _, err := c.Similar(ctx, tableID, 10, client.PageOpts{}); return err }},
		{"sparql", func() error { _, err := c.SPARQL(ctx, sparqlQ); return err }},
	}
	fns := make([]func() error, len(endpoints))
	for i := range endpoints {
		fns[i] = endpoints[i].call
	}
	// Warm caches (server result cache, client ETag cache) once so the
	// medians report steady-state serving.
	for _, fn := range fns {
		if err := fn(); err != nil {
			return err
		}
	}
	med, err := medianMicros(fns...)
	if err != nil {
		return err
	}

	report := serverExperiment{
		Experiment: "server", Tables: len(tables), Triples: plat.Stats().Triples,
		ConditionalReads: true,
	}
	for i, ep := range endpoints {
		report.Endpoints = append(report.Endpoints, serverEndpointResult{Name: ep.name, MedianUS: med[i]})
	}

	// One asynchronous mutation round-trip: accept → queue → profile →
	// splice → observed done, through POST /api/v1/ingest + job polling.
	newTable := client.IngestTable{
		Dataset: "bench", Name: "live.csv",
		Columns: []client.IngestColumn{
			{Name: "k", Values: []any{"a", "b", "c", "d", "e", "f"}},
			{Name: "v", Values: []any{1, 2, 3, 4, 5, 6}},
		},
	}
	start := time.Now()
	ref, err := c.Ingest(ctx, []client.IngestTable{newTable})
	if err != nil {
		return err
	}
	if _, err := c.WaitJob(ctx, ref.Job, 5*time.Millisecond); err != nil {
		return err
	}
	report.IngestRoundTrip = float64(time.Since(start).Microseconds()) / 1e3

	start = time.Now()
	ref, err = c.DeleteTable(ctx, "bench/live.csv")
	if err != nil {
		return err
	}
	if _, err := c.WaitJob(ctx, ref.Job, 5*time.Millisecond); err != nil {
		return err
	}
	report.DeleteRoundTrip = float64(time.Since(start).Microseconds()) / 1e3

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// edgesLakeResult is one row of the edges experiment's JSON output.
type edgesLakeResult struct {
	Columns            int     `json:"columns"`
	Tables             int     `json:"tables"`
	Edges              int     `json:"edges"`
	ExhaustiveMS       float64 `json:"exhaustive_ms"`
	BlockedMS          float64 `json:"blocked_ms"`
	Speedup            float64 `json:"speedup"`
	ExhaustivePeakPair int64   `json:"exhaustive_peak_pairs"`
	BlockedPeakPair    int64   `json:"blocked_peak_pairs"`
	PairsCompared      int64   `json:"pairs_compared"`
	Identical          bool    `json:"identical"`
}

// edgesExperiment is the JSON envelope of the edges experiment.
type edgesExperiment struct {
	Experiment string            `json:"experiment"`
	Lakes      []edgesLakeResult `json:"lakes"`
}

// runEdges measures Algorithm 3's pairwise phase on generated lakes of
// growing width: the exhaustive O(n²) oracle against the blocked,
// candidate-pruned pipeline, reporting median build time and the peak
// number of pairs buffered (the exhaustive path materializes every pair;
// the blocked pipeline keeps a bounded channel's worth), and verifying the
// two produce identical edge sets.
func runEdges() error {
	fmt.Println("Edges: blocked/candidate-pruned similarity pipeline vs exhaustive (wide lakes)")
	const reps = 3
	report := edgesExperiment{Experiment: "edges"}
	for _, tables := range []int{35, 70, 140} {
		lake := lakegen.WideLake(tables, 18, 30, 59)
		prof := profiler.New()
		var ptables []profiler.Table
		for _, df := range lake.Tables {
			ptables = append(ptables, profiler.Table{Dataset: lake.Dataset[df.Name], Frame: df})
		}
		profiles := prof.ProfileAll(ptables)

		b := schema.NewBuilder()
		var exhaustive, blocked []schema.Edge
		exhaustiveMS := make([]float64, 0, reps)
		blockedMS := make([]float64, 0, reps)
		var exhaustiveStats, blockedStats schema.EdgeBuildStats
		for r := 0; r < reps; r++ { // interleaved, median-of-reps
			start := time.Now()
			exhaustive = b.SimilarityEdgesExhaustive(profiles)
			exhaustiveMS = append(exhaustiveMS, float64(time.Since(start).Microseconds())/1e3)
			exhaustiveStats = b.LastStats()

			start = time.Now()
			blocked = b.SimilarityEdges(profiles)
			blockedMS = append(blockedMS, float64(time.Since(start).Microseconds())/1e3)
			blockedStats = b.LastStats()
		}
		sort.Float64s(exhaustiveMS)
		sort.Float64s(blockedMS)

		identical := len(exhaustive) == len(blocked)
		if identical {
			for i := range exhaustive {
				if exhaustive[i] != blocked[i] {
					identical = false
					break
				}
			}
		}
		if !identical {
			return fmt.Errorf("%d-column lake: blocked edges diverge from exhaustive (%d vs %d)",
				len(profiles), len(blocked), len(exhaustive))
		}
		res := edgesLakeResult{
			Columns:            len(profiles),
			Tables:             len(lake.Tables),
			Edges:              len(blocked),
			ExhaustiveMS:       exhaustiveMS[reps/2],
			BlockedMS:          blockedMS[reps/2],
			ExhaustivePeakPair: exhaustiveStats.PeakPairBuffer,
			BlockedPeakPair:    blockedStats.PeakPairBuffer,
			PairsCompared:      blockedStats.PairsCompared,
			Identical:          true,
		}
		if res.BlockedMS > 0 {
			res.Speedup = res.ExhaustiveMS / res.BlockedMS
		}
		report.Lakes = append(report.Lakes, res)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// sameRows asserts two results carry the same solution multiset,
// irrespective of enumeration order (ORDER BY ties may interleave
// differently between engines).
func sameRows(ref, got *sparql.Result) error {
	canon := func(r *sparql.Result) []string {
		vars := append([]string(nil), r.Vars...)
		sort.Strings(vars)
		rows := make([]string, len(r.Rows))
		for i, row := range r.Rows {
			var sb strings.Builder
			for _, v := range vars {
				if t, ok := row[v]; ok {
					sb.WriteString(v + "=" + t.Key())
				}
				sb.WriteByte('|')
			}
			rows[i] = sb.String()
		}
		sort.Strings(rows)
		return rows
	}
	a, b := canon(got), canon(ref)
	if len(a) != len(b) {
		return fmt.Errorf("compiled %d rows, reference %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("row %d differs: compiled %q, reference %q", i, a[i], b[i])
		}
	}
	return nil
}
