// Command kglids-abstract runs KGLiDS Pipeline Abstraction (Algorithm 1)
// over Python pipeline scripts and prints the abstraction: statements with
// control-flow types, resolved library calls with enriched parameters,
// predicted dataset usage, and data-flow edges.
//
// Usage:
//
//	kglids-abstract script.py [script2.py ...]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"kglids/internal/pipeline"
)

func main() {
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kglids-abstract script.py [...]")
		os.Exit(2)
	}
	a := pipeline.NewAbstractor()
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			logger.Error("reading script failed", "path", path, "err", err)
			os.Exit(1)
		}
		abs := a.Abstract(pipeline.Script{ID: path, Source: string(src)})
		if abs.ParseError != nil {
			logger.Warn("script did not parse", "path", path, "err", abs.ParseError)
			continue
		}
		fmt.Printf("== %s: %d statements ==\n", path, len(abs.Statements))
		for _, st := range abs.Statements {
			fmt.Printf("s%-3d L%-4d [%-22s] %s\n", st.Index, st.Line, st.Flow, st.Text)
			for _, c := range st.Calls {
				fmt.Printf("      calls %s", c.Qualified)
				if c.ReturnType != "" {
					fmt.Printf(" -> %s", c.ReturnType)
				}
				fmt.Println()
				for _, p := range c.Params {
					tag := ""
					if p.Implicit {
						tag = " (implicit)"
					} else if p.Default {
						tag = " (default)"
					}
					fmt.Printf("        %s = %s%s\n", p.Name, p.Value, tag)
				}
			}
			for _, t := range st.TableReads {
				fmt.Printf("      reads table %q\n", t)
			}
			for _, c := range st.ColumnReads {
				fmt.Printf("      reads column %q\n", c)
			}
			if len(st.DataFlowTo) > 0 {
				fmt.Printf("      data flow to %v\n", st.DataFlowTo)
			}
		}
	}
}
