// Package kglids is the public interface of the KGLiDS reproduction — the
// "KGLiDS Interfaces" library of the paper (Section 5). It exposes the
// platform's predefined operations (keyword search, unionable columns,
// join-path discovery, library and pipeline discovery), the on-demand
// automation APIs (cleaning, transformation, model and hyperparameter
// recommendation), and ad-hoc SPARQL over the LiDS graph.
//
// A typical session bootstraps the platform over a data lake, registers
// pipeline scripts, trains the automation models, and then issues
// discovery and recommendation calls:
//
//	plat := kglids.Bootstrap(kglids.Options{}, tables)
//	plat.AddPipelines(scripts)
//	hits := plat.SearchKeywords([][]string{{"heart", "disease"}, {"patients"}})
//	cols := plat.FindUnionableColumns(hits[0].Table, hits[1].Table)
package kglids

import (
	"context"
	"io"
	"sync"
	"time"

	"kglids/internal/automl"
	"kglids/internal/cleaning"
	"kglids/internal/core"
	"kglids/internal/dataframe"
	"kglids/internal/discovery"
	"kglids/internal/embed"
	"kglids/internal/pipeline"
	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/snapshot"
	"kglids/internal/sparql"
	"kglids/internal/transform"
)

// Re-exported types so callers need only this package.
type (
	// DataFrame is the tabular structure all interfaces exchange.
	DataFrame = dataframe.DataFrame
	// Series is one DataFrame column.
	Series = dataframe.Series
	// Table pairs a dataset name with a table frame for bootstrapping.
	Table = core.Table
	// Script is a pipeline script with metadata.
	Script = pipeline.Script
	// Metadata is per-pipeline metadata.
	Metadata = pipeline.Metadata
	// TableResult is one ranked table hit.
	TableResult = discovery.TableResult
	// ColumnMatch is one unionable-column pair.
	ColumnMatch = discovery.ColumnMatch
	// JoinPath is a join-path between tables.
	JoinPath = discovery.JoinPath
	// LibraryUsage is one library-popularity row.
	LibraryUsage = discovery.LibraryUsage
	// PipelineHit is one pipeline matching a library query.
	PipelineHit = discovery.PipelineHit
	// CleaningOp names a cleaning operation.
	CleaningOp = cleaning.Op
	// CleaningRecommendation ranks a cleaning operation.
	CleaningRecommendation = cleaning.Recommendation
	// ScalerRecommendation ranks a scaling transformation.
	ScalerRecommendation = transform.ScalerRecommendation
	// UnaryRecommendation recommends a per-column transformation.
	UnaryRecommendation = transform.UnaryRecommendation
	// ModelRecommendation is one recommend_ml_models row.
	ModelRecommendation = automl.ModelRecommendation
	// AutoMLResult is the outcome of an AutoML run.
	AutoMLResult = automl.Result
	// Stats summarizes the LiDS graph.
	Stats = core.Stats
	// SourceReport summarizes a streaming AddSource call.
	SourceReport = core.SourceReport
)

// Options configures bootstrapping (see core.Config).
type Options struct {
	// Thresholds are Algorithm 3's α/β/θ; zero value uses the defaults.
	Alpha, Beta, Theta float64
	// Workers bounds parallelism (0 = NumCPU).
	Workers int
	// EdgeBlockSize bounds the exhaustive fallback of the blocked
	// similarity-edge pipeline: same-fine-grained-type column blocks up to
	// this size are compared pair-by-pair, larger ones go through the
	// candidate pre-filter. 0 uses the default. Tuning only — the edge
	// set is identical for any value.
	EdgeBlockSize int
	// EdgeCandidates is the target candidates per column in the pre-
	// filtered path (the pre-filter's average cluster size at scale).
	// 0 uses the default. Tuning only.
	EdgeCandidates int
	// ChunkRows is the row-chunk size of the streaming connectors used by
	// BootstrapSource/AddSource. 0 uses the connector default. Tuning
	// only — profiles are unaffected.
	ChunkRows int
	// ReservoirSize bounds the per-column value sample retained by the
	// streaming profiler for embeddings and exact std. 0 uses the default.
	ReservoirSize int
	// ExactDistinct bounds the exact distinct-value set per column on the
	// streaming path; beyond it a KMV sketch estimates. 0 uses the
	// default.
	ExactDistinct int
}

func (opts Options) config() core.Config {
	cfg := core.DefaultConfig()
	if opts.Alpha > 0 {
		cfg.Thresholds.Alpha = opts.Alpha
	}
	if opts.Beta > 0 {
		cfg.Thresholds.Beta = opts.Beta
	}
	if opts.Theta > 0 {
		cfg.Thresholds.Theta = opts.Theta
	}
	cfg.Workers = opts.Workers
	cfg.EdgeBlockSize = opts.EdgeBlockSize
	cfg.EdgeCandidates = opts.EdgeCandidates
	cfg.ChunkRows = opts.ChunkRows
	cfg.ReservoirSize = opts.ReservoirSize
	cfg.ExactDistinct = opts.ExactDistinct
	return cfg
}

// Platform is a bootstrapped KGLiDS instance. It is safe for concurrent
// use: discovery queries may run while pipelines are added or the on-demand
// models are (re)trained.
type Platform struct {
	core *core.Platform

	// mu guards the trained recommenders, which Train* swap while
	// Recommend* read them from concurrent requests.
	mu         sync.RWMutex
	cleaner    *cleaning.Recommender
	transforms *transform.Recommender
	automl     *automl.System
}

// Bootstrap profiles the lake, builds the LiDS dataset graph, and returns
// a platform ready for discovery queries.
func Bootstrap(opts Options, tables []Table) *Platform {
	return &Platform{core: core.Bootstrap(opts.config(), tables)}
}

// BootstrapSource bootstraps a platform by streaming a connector URI
// (dir://, jsonl://, http(s)://, lakegen://) through the one-pass
// profiler, so the lake never has to fit in memory. Tables that fail to
// stream are skipped and reported by ID in the returned map; the
// resulting platform is equivalent to Bootstrap over the same data.
func BootstrapSource(ctx context.Context, opts Options, uri string) (*Platform, map[string]error, error) {
	c, failed, err := core.BootstrapSource(ctx, opts.config(), uri)
	if err != nil {
		return nil, failed, err
	}
	return &Platform{core: c}, failed, nil
}

// SetEdgeTuning adjusts the blocked similarity-edge pipeline knobs on a
// live platform (0 keeps a knob's current value) — typically applied to a
// freshly opened snapshot before enabling ingestion, since snapshots
// persist thresholds but not performance tuning. The knobs change where
// similarity-build time and memory go, never the edge set.
func (p *Platform) SetEdgeTuning(blockSize, candidates int) {
	p.core.SetEdgeTuning(blockSize, candidates)
}

// Save persists the bootstrapped platform — triple store, profiles,
// embeddings, vector indexes, and pipeline scripts — to a single snapshot
// file at path. Open reloads it without re-profiling the lake. Trained
// on-demand models (cleaning, transformation, AutoML) are not persisted;
// retrain them after Open.
func (p *Platform) Save(path string) error { return snapshot.Save(path, p.core) }

// SaveTo writes the platform snapshot to an arbitrary writer.
func (p *Platform) SaveTo(w io.Writer) error { return snapshot.Write(w, p.core) }

// Open reconstructs a query-ready platform from a snapshot file written by
// Save. Loading is linear in snapshot size (no profiling, no similarity
// computation) and typically orders of magnitude faster than Bootstrap.
func Open(path string) (*Platform, error) {
	c, err := snapshot.Load(path)
	if err != nil {
		return nil, err
	}
	return &Platform{core: c}, nil
}

// Read reconstructs a platform from a snapshot stream written by SaveTo.
func Read(r io.Reader) (*Platform, error) {
	c, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return &Platform{core: c}, nil
}

// AddPipelines abstracts scripts into named graphs linked against the
// dataset graph (Algorithm 1 + Graph Linker).
func (p *Platform) AddPipelines(scripts []Script) { p.core.AddPipelines(scripts) }

// AddTables ingests new or changed tables into the live platform without a
// re-bootstrap: the new tables are profiled, their metadata subgraphs are
// inserted as per-table named graphs, delta similarity edges are computed
// against the whole lake, and the embedding indexes are upserted. A table
// whose "dataset/name" ID already exists is treated as an update (the old
// version is removed first). Discovery queries may run concurrently; after
// any sequence of AddTables/RemoveTable calls the platform is equivalent
// to a fresh Bootstrap over the final table set. Returns the ingested
// table IDs. See internal/ingest for the asynchronous job-queue front end.
func (p *Platform) AddTables(tables []Table) ([]string, error) { return p.core.AddTables(tables) }

// AddSource streams every table of a connector URI into the live
// platform with AddTables' update semantics, in parallel across the
// configured workers. Failed tables are reported in the SourceReport
// rather than aborting the call. Discovery queries may run concurrently.
func (p *Platform) AddSource(ctx context.Context, uri string) (*SourceReport, error) {
	return p.core.AddSource(ctx, uri)
}

// RemoveTable deletes a table from the live platform: its named graph, its
// similarity edges, and its embeddings all go away, and discovery stops
// returning it immediately.
func (p *Platform) RemoveTable(id string) error { return p.core.RemoveTable(id) }

// HasTable reports whether a "dataset/table" ID is currently served.
func (p *Platform) HasTable(id string) bool { return p.core.HasTable(id) }

// TableIDs returns the IDs of all tables currently served, sorted.
func (p *Platform) TableIDs() []string { return p.core.TableIDs() }

// Stats returns LiDS graph statistics (the Statistics Manager).
func (p *Platform) Stats() Stats { return p.core.Stats() }

// Generation returns the store's monotonic mutation counter: it increases
// on every graph mutation (table ingestion or removal, pipeline
// registration) and never otherwise. It doubles as a cache validator —
// kglids-server serves it as the ETag of every /api/v1 read, so clients
// revalidate with If-None-Match and are answered 304 until something
// actually changed.
func (p *Platform) Generation() uint64 { return p.core.Store.Generation() }

// SetSlowQuery enables the SPARQL slow-query log: any query whose wall
// time reaches d is logged (via log/slog) with its per-stage breakdown.
// Zero disables it. kglids-server wires this to -slow-query-ms.
func (p *Platform) SetSlowQuery(d time.Duration) { p.core.Discovery.SetSlowQuery(d) }

// SetQueryWorkers sets the parallel width of SPARQL execution and
// discovery scoring: the morsel-driven executor partitions the leading
// pattern's candidates across this many workers. 0 restores the
// GOMAXPROCS default; 1 forces the serial path (the equivalence oracle).
// kglids-server wires this to -query-workers.
func (p *Platform) SetQueryWorkers(n int) { p.core.Discovery.SetWorkers(n) }

// Query runs an ad-hoc SPARQL query on the compiled ID-space engine.
// Repeated queries are served from a bounded result cache keyed on (query
// text, store generation) — live ingestion invalidates it automatically.
// Cached results are shared: treat them as read-only.
func (p *Platform) Query(q string) (*sparql.Result, error) { return p.core.Query(q) }

// QueryContext is Query under a context: cancellation or deadline expiry
// stops the evaluation mid-iteration instead of running the query to
// completion (the per-request timeout path of kglids-server).
func (p *Platform) QueryContext(ctx context.Context, q string) (*sparql.Result, error) {
	return p.core.QueryContext(ctx, q)
}

// SearchKeywords finds tables by keyword conditions (outer list OR'd,
// inner lists AND'd), mirroring search_keywords.
func (p *Platform) SearchKeywords(conditions [][]string) []TableResult {
	return p.core.Discovery.SearchKeywords(conditions)
}

// UnionableTables returns the top-k tables unionable with tableID
// ("dataset/table").
func (p *Platform) UnionableTables(tableID string, k int) ([]TableResult, error) {
	iri, err := p.core.TableIRI(tableID)
	if err != nil {
		return nil, err
	}
	return p.core.Discovery.UnionableTables(rdf.IRI(iri), k), nil
}

// FindUnionableColumns returns matched column pairs between two tables,
// mirroring find_unionable_columns.
func (p *Platform) FindUnionableColumns(a, b TableResult) []ColumnMatch {
	return p.core.Discovery.FindUnionableColumns(a.Table, b.Table)
}

// GetPathToTable finds join paths between two discovered tables of at
// most maxHops hops (join edges), mirroring get_path_to_table. Alternate
// routes through shared hub tables are all returned, ordered by length
// then score.
func (p *Platform) GetPathToTable(from, to TableResult, maxHops int) []JoinPath {
	return p.core.Discovery.GetPathToTable(from.Table, to.Table, maxHops)
}

// GetTopKLibrariesUsed returns the k most used libraries across all
// pipelines (get_top_k_library_used, Figure 4).
func (p *Platform) GetTopKLibrariesUsed(k int) ([]LibraryUsage, error) {
	return p.core.Discovery.TopKLibraries(k)
}

// GetTopUsedLibraries restricts library popularity to pipelines of a task
// (get_top_used_libraries).
func (p *Platform) GetTopUsedLibraries(k int, task string) ([]LibraryUsage, error) {
	return p.core.Discovery.TopUsedLibrariesForTask(k, task)
}

// GetPipelinesCallingLibraries returns pipelines calling every given
// qualified function (get_pipelines_calling_libraries).
func (p *Platform) GetPipelinesCallingLibraries(qualified ...string) []PipelineHit {
	return p.core.Discovery.PipelinesCallingLibraries(qualified...)
}

// TrainCleaningModel fits the on-demand cleaning GNN from examples mined
// from the LiDS graph (Section 4.2).
func (p *Platform) TrainCleaningModel(examples []cleaning.Example) {
	model := cleaning.Train(examples)
	p.mu.Lock()
	p.cleaner = model
	p.mu.Unlock()
}

// TrainTransformModels fits the scaling and unary transformation GNNs
// (Section 4.3).
func (p *Platform) TrainTransformModels(scalers []transform.ScalerExample, unaries []transform.UnaryExample) {
	model := transform.Train(scalers, unaries)
	p.mu.Lock()
	p.transforms = model
	p.mu.Unlock()
}

// TrainAutoML builds the AutoML system from the platform's pipeline
// abstractions and per-dataset embeddings (Section 4.4). seeded selects
// the LiDS-enriched hyperparameter seeding.
func (p *Platform) TrainAutoML(seeded bool) {
	usages := automl.MineUsages(p.core.Pipelines())
	byDataset := map[string][]embed.Vector{}
	for id, emb := range p.core.TableEmbeddingsView() {
		ds := id
		if i := indexByte(id, '/'); i >= 0 {
			ds = id[:i]
		}
		byDataset[ds] = append(byDataset[ds], emb)
	}
	dsEmb := map[string]embed.Vector{}
	for ds, vecs := range byDataset {
		dsEmb[ds] = embed.DatasetEmbedding(vecs)
	}
	sys := automl.New(usages, dsEmb, seeded)
	p.mu.Lock()
	p.automl = sys
	p.mu.Unlock()
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// RecommendCleaningOperations ranks cleaning operations for a frame
// (recommend_cleaning_operations). TrainCleaningModel must run first.
func (p *Platform) RecommendCleaningOperations(df *DataFrame) []CleaningRecommendation {
	p.mu.RLock()
	cleaner := p.cleaner
	p.mu.RUnlock()
	if cleaner == nil {
		return nil
	}
	return cleaner.Recommend(df)
}

// ApplyCleaningOperations applies a recommended cleaning operation
// (apply_cleaning_operations).
func (p *Platform) ApplyCleaningOperations(op CleaningOp, df *DataFrame) (*DataFrame, error) {
	return cleaning.Apply(op, df)
}

// RecommendTransformations returns the scaling and per-column
// transformations for a frame (recommend_transformations).
// TrainTransformModels must run first.
func (p *Platform) RecommendTransformations(df *DataFrame, target string) ([]ScalerRecommendation, []UnaryRecommendation) {
	p.mu.RLock()
	transforms := p.transforms
	p.mu.RUnlock()
	if transforms == nil {
		return nil, nil
	}
	return transforms.RecommendScaler(df), transforms.RecommendUnary(df, target)
}

// ApplyTransformations runs the two-step transform (scaling then unary)
// with the trained models.
func (p *Platform) ApplyTransformations(df *DataFrame, target string) (*DataFrame, error) {
	p.mu.RLock()
	transforms := p.transforms
	p.mu.RUnlock()
	if transforms == nil {
		return df.Clone(), nil
	}
	out, _, _, err := transforms.Transform(df, target)
	return out, err
}

// RecommendMLModels returns classifiers used on the most similar dataset
// (recommend_ml_models). TrainAutoML must run first.
func (p *Platform) RecommendMLModels(df *DataFrame) []ModelRecommendation {
	p.mu.RLock()
	sys := p.automl
	p.mu.RUnlock()
	if sys == nil {
		return nil
	}
	return sys.RecommendModels(p.tableEmbedding(df))
}

// RecommendHyperparameters returns the KG-mined hyperparameters for a
// classifier on the most similar dataset (recommend_hyperparameters).
func (p *Platform) RecommendHyperparameters(df *DataFrame, classifier string) map[string]float64 {
	p.mu.RLock()
	sys := p.automl
	p.mu.RUnlock()
	if sys == nil {
		return nil
	}
	return sys.RecommendHyperparameters(p.tableEmbedding(df), classifier)
}

// AutoML runs the full KGpip-revised pipeline on a dataset under a time
// budget (Section 4.4).
func (p *Platform) AutoML(df *DataFrame, target string, budget time.Duration) (AutoMLResult, error) {
	p.mu.RLock()
	sys := p.automl
	p.mu.RUnlock()
	if sys == nil {
		p.TrainAutoML(true)
		p.mu.RLock()
		sys = p.automl
		p.mu.RUnlock()
	}
	return sys.Fit(df, target, p.tableEmbedding(df), budget)
}

func (p *Platform) tableEmbedding(df *DataFrame) embed.Vector {
	return transform.TableEmbedding(p.core.Profiler(), df)
}

// SimilarTables finds tables similar to a frame by embedding (the
// embedding-store search path of get_path_to_table).
func (p *Platform) SimilarTables(df *DataFrame, k int) []TableResult {
	hits := p.core.SimilarTablesByEmbedding(df, k)
	out := make([]TableResult, len(hits))
	for i, h := range hits {
		out[i] = TableResult{Table: rdf.IRI(mustIRI(p, h.ID)), Name: h.ID, Score: h.Score}
	}
	return out
}

func mustIRI(p *Platform, id string) string {
	iri, err := p.core.TableIRI(id)
	if err != nil {
		return schema.TableIRI(id).Value
	}
	return iri
}

// Core exposes the underlying platform for advanced use (experiments).
func (p *Platform) Core() *core.Platform { return p.core }
