package kglids_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6). Each benchmark wraps the corresponding
// experiments.Run* harness so `go test -bench=.` reproduces the full
// evaluation; cmd/kglids-bench prints the formatted tables.

import (
	"path/filepath"
	"testing"

	"kglids"
	"kglids/internal/experiments"
	"kglids/internal/lakegen"
)

// benchSpec is a reduced benchmark replica so individual testing.B
// iterations stay in the seconds range; kglids-bench runs the full
// replicas.
var benchSpec = lakegen.Spec{
	Name: "TUS Small", Families: 8, TablesPerFamily: 4, NoiseTables: 10,
	RowsPerTable: 100, QueryTables: 10, Seed: 81,
}

func BenchmarkTable1_BenchmarkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable1Subset([]lakegen.Spec{benchSpec})
	}
}

func BenchmarkTable2_Figure5_Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunDiscoveryBenchmark(benchSpec)
	}
}

func BenchmarkFigure6_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFigure6()
	}
}

func BenchmarkTable3_Table4_Figure4_Abstraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunAbstraction(100)
	}
}

func BenchmarkTable5_Figure7_Cleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable5(8)
	}
}

func BenchmarkTable6_Figure8_Transformation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunTable6(8)
	}
}

func BenchmarkFigure9_AutoML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFigure9(60)
	}
}

// snapshotBenchSpec is the serving-replica lake for the snapshot
// benchmark: realistic per-table row counts, the regime the
// persist-once/serve-many architecture targets (bootstrap cost scales with
// rows profiled; snapshot load depends only on graph + embedding size).
var snapshotBenchSpec = lakegen.Spec{
	Name: "Snapshot", Families: 8, TablesPerFamily: 4, NoiseTables: 10,
	RowsPerTable: 1000, QueryTables: 10, Seed: 81,
}

func snapshotBenchTables(b testing.TB) []kglids.Table {
	lake := lakegen.Generate(snapshotBenchSpec)
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	return tables
}

// BenchmarkSnapshot_BootstrapVsLoad contrasts cold-starting the platform by
// re-profiling the lake (Bootstrap) with reloading a saved snapshot (Open).
// On this lake snapshot load runs >10x faster than bootstrap; the gap
// widens with row count since load never touches the raw data.
func BenchmarkSnapshot_BootstrapVsLoad(b *testing.B) {
	tables := snapshotBenchTables(b)
	path := filepath.Join(b.TempDir(), "lake.kgs")
	if err := kglids.Bootstrap(kglids.Options{}, tables).Save(path); err != nil {
		b.Fatal(err)
	}
	b.Run("Bootstrap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kglids.Bootstrap(kglids.Options{}, tables)
		}
	})
	b.Run("SnapshotLoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kglids.Open(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngest_IncrementalVsRebootstrap contrasts the two ways a
// serving platform can absorb one new table: the live mutation path
// (Platform.AddTables — delta profiling plus delta similarity) versus
// profiling the whole lake again (Bootstrap over all tables). Incremental
// ingest is ≥10x faster on this lake: its cost scales with the new table's
// columns, while a re-bootstrap re-profiles every row of every table and
// re-compares every column pair.
func BenchmarkIngest_IncrementalVsRebootstrap(b *testing.B) {
	tables := snapshotBenchTables(b)
	n := len(tables)
	base, extra := tables[:n-1], tables[n-1:]
	extraID := extra[0].Dataset + "/" + extra[0].Frame.Name

	b.Run("IncrementalAdd", func(b *testing.B) {
		plat := kglids.Bootstrap(kglids.Options{}, base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := plat.AddTables(extra); err != nil {
				b.Fatal(err)
			}
			// Reset outside the measured window so each iteration times a
			// pure single-table add.
			b.StopTimer()
			if err := plat.RemoveTable(extraID); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("Rebootstrap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kglids.Bootstrap(kglids.Options{}, tables)
		}
	})
}

// Ablation bench (DESIGN.md §6.3): answering a union query from the
// materialized similarity edges (KGLiDS) versus recomputing embedding
// distances at query time (the Starmie-style alternative).
func BenchmarkAblation_QueryViaIndexVsEmbedding(b *testing.B) {
	lake := lakegen.Generate(benchSpec)
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	query := lake.QueryTables[0]
	queryID := lake.Dataset[query] + "/" + query
	var queryFrame *kglids.DataFrame
	for _, df := range lake.Tables {
		if df.Name == query {
			queryFrame = df
		}
	}
	b.Run("MaterializedEdges", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plat.UnionableTables(queryID, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EmbeddingDistance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plat.SimilarTables(queryFrame, 10)
		}
	})
}
