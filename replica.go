package kglids

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"kglids/internal/obs"
	"kglids/internal/snapshot"
	"kglids/internal/store"
)

// DefaultChangelogRetention is the default quad-weighted retention budget
// of the mutation changelog (see internal/store).
const DefaultChangelogRetention = store.DefaultChangelogRetention

// Changelog cursor errors, re-exported for the serving layer: both mean
// the incremental stream cannot resume from the requested cursor and the
// follower must re-seed from a snapshot (HTTP 410 on /api/v1/changelog).
var (
	ErrLogCompacted    = store.ErrCompacted
	ErrLogFutureCursor = store.ErrFutureCursor
	// ErrNoChangelog reports that this platform has no changelog enabled
	// (a follower or a plain bootstrap) and cannot serve the mutation
	// stream.
	ErrNoChangelog = errors.New("kglids: changelog not enabled on this platform")
)

// EnableChangelog turns this platform into a replication primary: every
// subsequent mutation (table ingest/update/removal, pipeline registration)
// appends sequence-numbered records that followers tail via
// ChangelogSince. retainQuads bounds in-memory retention (<= 0 uses
// DefaultChangelogRetention); the floor additionally advances whenever a
// snapshot is saved. Call once, before serving.
func (p *Platform) EnableChangelog(retainQuads int) { p.core.EnableChangelog(retainQuads) }

// ChangelogPosition returns the platform's position in the mutation
// changelog: the live head on a primary, or — on a platform restored from
// a snapshot without a changelog — the position persisted in that
// snapshot. It is the starting cursor of a follower booted from this
// platform's state.
func (p *Platform) ChangelogPosition() uint64 { return p.core.ChangelogPosition() }

// ChangelogEntry is one wire-ready changelog record: the record header
// plus its binary-encoded body (the format of internal/snapshot's
// EncodeChange, applied back with ApplyChange).
type ChangelogEntry struct {
	Seq        uint64
	Generation uint64
	TS         int64
	Kind       string
	Payload    []byte
}

// ChangelogView is one page of the changelog plus the log bounds a
// follower needs for pagination and staleness accounting.
type ChangelogView struct {
	Entries     []ChangelogEntry
	Head, Floor uint64
	AtHead      bool
}

// ChangelogSince returns up to max records after cursor, encoded for the
// wire. It fails with ErrNoChangelog when no changelog is enabled, and
// with ErrLogCompacted/ErrLogFutureCursor when the cursor cannot resume.
func (p *Platform) ChangelogSince(cursor uint64, max int) (ChangelogView, error) {
	cl := p.core.Store.Changelog()
	if cl == nil {
		return ChangelogView{}, ErrNoChangelog
	}
	lv, err := cl.Since(cursor, max)
	if err != nil {
		return ChangelogView{Head: lv.Head, Floor: lv.Floor}, err
	}
	out := ChangelogView{
		Entries: make([]ChangelogEntry, 0, len(lv.Records)),
		Head:    lv.Head, Floor: lv.Floor, AtHead: lv.AtHead,
	}
	for _, rec := range lv.Records {
		payload, err := snapshot.EncodeChange(rec)
		if err != nil {
			return ChangelogView{}, err
		}
		out.Entries = append(out.Entries, ChangelogEntry{
			Seq: rec.Seq, Generation: rec.Gen, TS: rec.TS,
			Kind: string(rec.Kind), Payload: payload,
		})
	}
	return out, nil
}

// ApplyChange applies one replicated changelog record to this platform —
// the follower side of the protocol. Records must be applied in sequence
// order on a platform seeded from the primary's snapshot. gen, when
// non-zero, is the primary's post-record store generation; for quad-level
// records the follower must land on the same value, and a mismatch
// reports divergence (the follower should re-seed from a snapshot).
func (p *Platform) ApplyChange(kind string, gen uint64, payload []byte) error {
	c, err := snapshot.DecodeChange(kind, payload)
	if err != nil {
		return err
	}
	st := p.core.Store
	switch c.Kind {
	case store.ChangeAddQuads:
		st.AddBatch(c.Quads)
	case store.ChangeRemoveQuads:
		st.RemoveBatch(c.Quads)
	case store.ChangeRemoveGraph:
		st.RemoveGraph(c.Graph)
	case store.ChangeAux:
		// Generation is diagnostic only for platform deltas: on the
		// primary the delta's gen stamp can interleave with concurrent
		// quad records, so followers do not gate on it.
		p.core.ApplyPlatformDelta(c.Delta)
		return nil
	default:
		return fmt.Errorf("kglids: unknown changelog kind %q", kind)
	}
	if gen != 0 {
		if got := st.Generation(); got != gen {
			return fmt.Errorf("kglids: replica diverged: generation %d after %s record, primary had %d (re-seed from snapshot)",
				got, kind, gen)
		}
	}
	return nil
}

// Replica staleness metrics, exported by any process running a follower.
var (
	mReplicaApplied = obs.Default.NewGauge("kglids_replica_applied_generation",
		"Store generation the replica has applied from the primary's changelog.")
	mReplicaLag = obs.Default.NewFloatGauge("kglids_replica_lag_seconds",
		"Seconds the replica's newest applied record trails the primary's wall clock (0 when caught up).")
)

// ReplicaTracker aggregates a follower's replication state for health
// reporting: the applied store generation and the staleness of the newest
// applied record. It is safe for concurrent use (the follower writes, the
// health endpoint reads) and mirrors its state into the kglids_replica_*
// metric families.
type ReplicaTracker struct {
	applied atomic.Uint64
	lagBits atomic.Uint64
}

// NewReplicaTracker returns a zeroed tracker.
func NewReplicaTracker() *ReplicaTracker { return &ReplicaTracker{} }

// ObserveApplied records one applied changelog record: the follower's
// store generation after it and the record's primary append timestamp
// (Unix nanoseconds), from which the lag is derived.
func (t *ReplicaTracker) ObserveApplied(gen uint64, ts int64) {
	t.applied.Store(gen)
	lag := 0.0
	if ts > 0 {
		if d := time.Since(time.Unix(0, ts)).Seconds(); d > 0 {
			lag = d
		}
	}
	t.lagBits.Store(math.Float64bits(lag))
	mReplicaApplied.Set(int64(gen))
	mReplicaLag.Set(lag)
}

// ObserveAtHead records that the follower is caught up with the primary:
// lag drops to zero until the next record arrives.
func (t *ReplicaTracker) ObserveAtHead() {
	t.lagBits.Store(0)
	mReplicaLag.Set(0)
}

// ReplicaHealth reports the applied generation and current lag estimate —
// the shape the serving layer's health endpoint exposes.
func (t *ReplicaTracker) ReplicaHealth() (appliedGeneration uint64, lagSeconds float64) {
	return t.applied.Load(), math.Float64frombits(t.lagBits.Load())
}
