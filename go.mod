module kglids

go 1.22
