module kglids

go 1.21
