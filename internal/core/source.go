package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"kglids/internal/connector"
)

// Source-based ingestion: the streaming twin of Bootstrap/AddTables.
// Tables arrive as connector chunks and are profiled by the one-pass
// accumulators in internal/profiler, so the lake never has to fit in
// memory — then the resulting profiles enter the exact same splice path
// as in-memory profiling, making the two routes produce identical
// platforms for identical data.

// connectorOpts derives the streaming options from the platform config.
func (p *Platform) connectorOpts() connector.Options {
	return connector.Options{ChunkRows: p.cfg.ChunkRows}
}

// OpenSource opens a connector URI with the platform's streaming
// configuration.
func (p *Platform) OpenSource(uri string) (connector.Source, error) {
	return connector.OpenWith(uri, p.connectorOpts())
}

// BootstrapSource streams a connector source and bootstraps a platform
// from its profiles — Bootstrap for lakes that don't fit in memory.
// Tables that fail to open or stream are skipped and reported in the
// returned map by table ID (mirroring the lake walker's skip-unreadable
// behavior); enumeration failure or context cancellation fails the call.
func BootstrapSource(ctx context.Context, cfg Config, uri string) (*Platform, map[string]error, error) {
	p := newPlatform(cfg)
	src, err := connector.OpenWith(uri, p.connectorOpts())
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	profiles, tableErrs, err := p.profiler.ProfileSource(ctx, src)
	if err != nil {
		return nil, nil, err
	}
	if len(profiles) == 0 {
		return nil, tableErrs, fmt.Errorf("core: no readable tables in source %s", uri)
	}
	p.finishBootstrap(profiles, time.Since(start))
	return p, tableErrs, nil
}

// AddSourceTable streams one connector table into the live platform with
// AddTables' update semantics (an existing ID is replaced). Profiling
// happens outside the ingest lock — concurrent callers stream tables in
// parallel and only the final splice is serialized.
func (p *Platform) AddSourceTable(ctx context.Context, src connector.Source, ref connector.TableRef) error {
	if ref.Dataset == "" || ref.Table == "" {
		return fmt.Errorf("core: source table needs a dataset and a name, got %q/%q", ref.Dataset, ref.Table)
	}
	r, err := src.Open(ctx, ref)
	if err != nil {
		return err
	}
	profiles, err := p.profiler.ProfileTableStream(ctx, ref.Dataset, ref.Table, r)
	r.Close()
	if err != nil {
		return err
	}

	p.ingestMu.Lock()
	defer p.ingestMu.Unlock()
	if id := ref.ID(); p.HasTable(id) {
		p.removeTableLocked(id)
	}
	p.spliceProfilesLocked(profiles)
	return nil
}

// SourceReport summarizes a synchronous AddSource call.
type SourceReport struct {
	// Added lists the ingested table IDs (including updates), sorted.
	Added []string
	// Failed maps table IDs that could not be streamed to their errors.
	Failed map[string]error
}

// AddSource streams every table of a connector URI into the live
// platform, in parallel across the configured worker count. It is the
// synchronous convenience over AddSourceTable; the ingest job manager
// offers the same route asynchronously with fingerprint skipping
// (ingest.Manager.SubmitSource).
func (p *Platform) AddSource(ctx context.Context, uri string) (*SourceReport, error) {
	src, err := p.OpenSource(uri)
	if err != nil {
		return nil, err
	}
	refs, err := src.Tables(ctx)
	if err != nil {
		return nil, err
	}
	rep := &SourceReport{Failed: map[string]error{}}
	var mu sync.Mutex
	workers := p.cfg.Workers
	if workers < 1 {
		workers = p.profiler.Workers
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan connector.TableRef)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ref := range ch {
				err := p.AddSourceTable(ctx, src, ref)
				mu.Lock()
				if err != nil {
					rep.Failed[ref.ID()] = err
				} else {
					rep.Added = append(rep.Added, ref.ID())
				}
				mu.Unlock()
			}
		}()
	}
	for _, ref := range refs {
		ch <- ref
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Strings(rep.Added)
	return rep, nil
}
