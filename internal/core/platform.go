// Package core is the KG Governor of KGLiDS (paper Section 2.1): it
// bootstraps the platform by profiling datasets (Algorithm 2), building
// the data global schema (Algorithm 3), abstracting pipeline scripts
// (Algorithm 1), linking pipeline graphs into the dataset and library
// graphs, and maintaining the embedding store — producing the LiDS graph
// the Interfaces query.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"kglids/internal/dataframe"
	"kglids/internal/discovery"
	"kglids/internal/embed"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/schema"
	"kglids/internal/sparql"
	"kglids/internal/store"
	"kglids/internal/vectorindex"
)

// Table pairs a dataset name with one of its tables.
type Table struct {
	Dataset string
	Frame   *dataframe.DataFrame
}

// Config controls bootstrapping.
type Config struct {
	Thresholds schema.Thresholds
	// SkipLabelSimilarity disables label edges (Figure 6 ablation).
	SkipLabelSimilarity bool
	// CoLR overrides the default embedding configuration (ablations).
	CoLR    *embed.CoLR
	Workers int
}

// DefaultConfig returns the default platform configuration.
func DefaultConfig() Config {
	return Config{Thresholds: schema.DefaultThresholds()}
}

// Platform is a bootstrapped KGLiDS instance: the LiDS graph, the
// embedding stores, the profiles, and the discovery engine.
type Platform struct {
	Store     *store.Store
	Profiles  []*profiler.ColumnProfile
	Edges     []schema.Edge
	Linker    *schema.Linker
	Discovery *discovery.Engine
	// ColumnIndex and TableIndex are the Faiss-equivalent embedding
	// stores for columns (300-d) and tables (1800-d).
	ColumnIndex *vectorindex.Exact
	TableIndex  *vectorindex.Exact
	// TableANN is the approximate (HNSW) companion of TableIndex, used
	// when serving similarity queries at scale; it holds the same table
	// embeddings. Its graph structure is persisted verbatim by snapshots.
	TableANN *vectorindex.HNSW
	// TableEmbeddings maps "dataset/table" to its 1800-d embedding.
	TableEmbeddings map[string]embed.Vector
	// Abstractions holds the pipeline abstractions added so far. Access it
	// through Pipelines when the platform is being served concurrently.
	Abstractions []*pipeline.Abstraction

	// mu guards Abstractions against concurrent AddPipelines/readers; the
	// store and indexes carry their own locks.
	mu         sync.RWMutex
	profiler   *profiler.Profiler
	abstractor *pipeline.Abstractor
	graphs     *pipeline.GraphBuilder
	// Timings of the bootstrap phases.
	ProfilingTime   time.Duration
	SchemaBuildTime time.Duration
}

// Bootstrap profiles the lake and constructs the dataset graph.
func Bootstrap(cfg Config, tables []Table) *Platform {
	p := &Platform{
		Store:           store.New(),
		ColumnIndex:     vectorindex.NewExact(),
		TableIndex:      vectorindex.NewExact(),
		TableEmbeddings: map[string]embed.Vector{},
	}
	p.profiler = profiler.New()
	if cfg.CoLR != nil {
		p.profiler.CoLR = cfg.CoLR
	}
	if cfg.Workers > 0 {
		p.profiler.Workers = cfg.Workers
	}

	// Phase 1: Data Profiling (Algorithm 2).
	start := time.Now()
	var ptables []profiler.Table
	for _, t := range tables {
		ptables = append(ptables, profiler.Table{Dataset: t.Dataset, Frame: t.Frame})
	}
	p.Profiles = p.profiler.ProfileAll(ptables)
	p.ProfilingTime = time.Since(start)

	// Phase 2: Data Global Schema (Algorithm 3).
	start = time.Now()
	builder := schema.NewBuilder()
	builder.Thresholds = cfg.Thresholds
	builder.SkipLabels = cfg.SkipLabelSimilarity
	if cfg.Workers > 0 {
		builder.Workers = cfg.Workers
	}
	p.Edges = builder.BuildGraph(p.Store, p.Profiles)
	p.SchemaBuildTime = time.Since(start)

	// Phase 3: embedding stores (column + table level, Eq. 1). Tables are
	// indexed in sorted ID order so bootstrap is deterministic — the HNSW
	// graph and tie-breaking in exact search depend on insertion order.
	byTable := map[string]map[embed.Type][]embed.Vector{}
	for _, cp := range p.Profiles {
		p.ColumnIndex.Add(cp.ID(), cp.Embed)
		tid := cp.TableID()
		if byTable[tid] == nil {
			byTable[tid] = map[embed.Type][]embed.Vector{}
		}
		byTable[tid][cp.Type] = append(byTable[tid][cp.Type], cp.Embed)
	}
	tids := make([]string, 0, len(byTable))
	for tid := range byTable {
		tids = append(tids, tid)
	}
	sort.Strings(tids)
	p.TableANN = vectorindex.NewHNSW(defaultANNM, defaultANNEfConstruction, defaultANNEfSearch)
	for _, tid := range tids {
		emb := embed.TableEmbedding(byTable[tid])
		p.TableEmbeddings[tid] = emb
		p.TableIndex.Add(tid, emb)
		p.TableANN.Add(tid, emb)
	}

	// Phase 4: Graph Linker and interfaces.
	p.Linker = schema.NewLinker(p.Profiles)
	p.abstractor = pipeline.NewAbstractor()
	p.graphs = pipeline.NewGraphBuilder(p.Linker)
	p.Discovery = discovery.New(p.Store)
	return p
}

// HNSW parameters for the table ANN index (m=16, ef=64 are the customary
// defaults; see NewHNSW).
const (
	defaultANNM              = 16
	defaultANNEfConstruction = 64
	defaultANNEfSearch       = 64
)

// AddPipelines abstracts scripts (Algorithm 1) and links them into the
// LiDS graph; it returns the abstractions. Safe to call while the platform
// serves queries.
func (p *Platform) AddPipelines(scripts []pipeline.Script) []*pipeline.Abstraction {
	abss := p.graphs.AbstractAll(p.Store, p.abstractor, scripts)
	p.mu.Lock()
	p.Abstractions = append(p.Abstractions, abss...)
	p.mu.Unlock()
	return abss
}

// Pipelines returns a snapshot of the abstractions added so far, safe to
// read while AddPipelines runs concurrently.
func (p *Platform) Pipelines() []*pipeline.Abstraction {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*pipeline.Abstraction(nil), p.Abstractions...)
}

// Query runs an ad-hoc SPARQL query against the LiDS graph.
func (p *Platform) Query(q string) (*sparql.Result, error) { return p.Discovery.SPARQL(q) }

// TableIRI resolves a "dataset/table" ID to its graph IRI.
func (p *Platform) TableIRI(id string) (string, error) {
	if _, ok := p.TableEmbeddings[id]; !ok {
		return "", fmt.Errorf("core: unknown table %q", id)
	}
	return schema.TableIRI(id).Value, nil
}

// SimilarTablesByEmbedding finds the k most similar tables to a frame by
// table-embedding cosine (the get_path_to_table entry point: "computing an
// embedding of the given DataFrame, finding the most similar table").
func (p *Platform) SimilarTablesByEmbedding(df *dataframe.DataFrame, k int) []vectorindex.Result {
	byType := map[embed.Type][]embed.Vector{}
	for i := 0; i < df.NumCols(); i++ {
		cp := p.profiler.ProfileColumn("query", df.Name, df.ColumnAt(i))
		byType[cp.Type] = append(byType[cp.Type], cp.Embed)
	}
	return p.TableIndex.Search(embed.TableEmbedding(byType), k)
}

// Profiler exposes the platform's profiler (shared CoLR configuration).
func (p *Platform) Profiler() *profiler.Profiler { return p.profiler }

// Stats summarizes the LiDS graph (Statistics Manager).
type Stats struct {
	Triples         int
	Nodes           int
	Predicates      int
	NamedGraphs     int
	Columns         int
	Tables          int
	Datasets        int
	SimilarityEdges int
}

// Stats returns current graph statistics.
func (p *Platform) Stats() Stats {
	return Stats{
		Triples:         p.Store.Len(),
		Nodes:           p.Store.NodeCount(),
		Predicates:      p.Store.PredicateCount(),
		NamedGraphs:     len(p.Store.Graphs()),
		Columns:         len(p.Profiles),
		Tables:          len(p.TableEmbeddings),
		Datasets:        countDatasets(p.Profiles),
		SimilarityEdges: len(p.Edges),
	}
}

func countDatasets(profiles []*profiler.ColumnProfile) int {
	seen := map[string]bool{}
	for _, cp := range profiles {
		seen[cp.Dataset] = true
	}
	return len(seen)
}
