// Package core is the KG Governor of KGLiDS (paper Section 2.1): it
// bootstraps the platform by profiling datasets (Algorithm 2), building
// the data global schema (Algorithm 3), abstracting pipeline scripts
// (Algorithm 1), linking pipeline graphs into the dataset and library
// graphs, and maintaining the embedding store — producing the LiDS graph
// the Interfaces query.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"kglids/internal/dataframe"
	"kglids/internal/discovery"
	"kglids/internal/embed"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/schema"
	"kglids/internal/sparql"
	"kglids/internal/store"
	"kglids/internal/vectorindex"
)

// Table pairs a dataset name with one of its tables.
type Table struct {
	Dataset string
	Frame   *dataframe.DataFrame
}

// Config controls bootstrapping.
type Config struct {
	Thresholds schema.Thresholds
	// SkipLabelSimilarity disables label edges (Figure 6 ablation).
	SkipLabelSimilarity bool
	// CoLR overrides the default embedding configuration (ablations).
	CoLR    *embed.CoLR
	Workers int
	// EdgeBlockSize bounds the exhaustive fallback of the blocked
	// similarity-edge pipeline: same-fine-grained-type column blocks up to
	// this size are compared pair-by-pair, larger ones go through the
	// candidate pre-filter. 0 means schema.DefaultEdgeBlockSize. Tuning
	// only — the edge set is identical for any value.
	EdgeBlockSize int
	// EdgeCandidates is the target candidates per column in the pre-
	// filtered path (average pre-filter cluster size). 0 means
	// schema.DefaultEdgeCandidates. Tuning only.
	EdgeCandidates int
	// ChunkRows is the connector chunk size for source-based ingestion
	// (BootstrapSource/AddSource). 0 means connector.DefaultChunkRows.
	ChunkRows int
	// ReservoirSize bounds the streaming profiler's per-column value
	// sample (0 = profiler.DefaultReservoirSize). Source-based ingestion
	// only; the in-memory path profiles whole columns.
	ReservoirSize int
	// ExactDistinct bounds the streaming profiler's exact distinct set
	// per column (0 = profiler.DefaultExactDistinct).
	ExactDistinct int
}

// DefaultConfig returns the default platform configuration.
func DefaultConfig() Config {
	return Config{Thresholds: schema.DefaultThresholds()}
}

// Platform is a bootstrapped KGLiDS instance: the LiDS graph, the
// embedding stores, the profiles, and the discovery engine.
type Platform struct {
	Store     *store.Store
	Profiles  []*profiler.ColumnProfile
	Edges     []schema.Edge
	Linker    *schema.Linker
	Discovery *discovery.Engine
	// ColumnIndex and TableIndex are the Faiss-equivalent embedding
	// stores for columns (300-d) and tables (1800-d).
	ColumnIndex *vectorindex.Exact
	TableIndex  *vectorindex.Exact
	// TableANN is the approximate (HNSW) companion of TableIndex, used
	// when serving similarity queries at scale; it holds the same table
	// embeddings. Its graph structure is persisted verbatim by snapshots.
	TableANN *vectorindex.HNSW
	// TableEmbeddings maps "dataset/table" to its 1800-d embedding.
	TableEmbeddings map[string]embed.Vector
	// Abstractions holds the pipeline abstractions added so far. Access it
	// through Pipelines when the platform is being served concurrently.
	Abstractions []*pipeline.Abstraction

	// mu guards the platform-level metadata that live ingestion mutates —
	// Profiles, Edges, TableEmbeddings, Abstractions — against concurrent
	// readers; the store, indexes, and linker carry their own locks.
	mu sync.RWMutex
	// ingestMu serializes whole mutations (AddTables/RemoveTable) so delta
	// similarity computation always sees the final profile set of the
	// previous mutation, and so snapshots taken via IngestLock observe a
	// job-consistent platform.
	ingestMu   sync.Mutex
	cfg        Config
	profiler   *profiler.Profiler
	abstractor *pipeline.Abstractor
	graphs     *pipeline.GraphBuilder
	// restoredLogPos is the changelog position persisted by the snapshot
	// this platform was restored from (0 for a fresh bootstrap). A primary
	// seeds its changelog floor from it; a follower starts tailing at it.
	restoredLogPos uint64
	// labels is the persistent label-embedding cache shared by every
	// schema build on this platform (bootstrap and all ingest deltas), so
	// each distinct column label is embedded exactly once — a sequence of
	// N small ingests costs O(new labels) embeddings per batch, not
	// O(all labels).
	labels *schema.LabelCache
	// Timings of the bootstrap phases.
	ProfilingTime   time.Duration
	SchemaBuildTime time.Duration
}

// Bootstrap profiles the lake and constructs the dataset graph.
func Bootstrap(cfg Config, tables []Table) *Platform {
	p := newPlatform(cfg)

	// Phase 1: Data Profiling (Algorithm 2).
	start := time.Now()
	var ptables []profiler.Table
	for _, t := range tables {
		ptables = append(ptables, profiler.Table{Dataset: t.Dataset, Frame: t.Frame})
	}
	profiles := p.profiler.ProfileAll(ptables)
	p.finishBootstrap(profiles, time.Since(start))
	return p
}

// newPlatform builds the empty platform shell shared by Bootstrap and
// BootstrapSource.
func newPlatform(cfg Config) *Platform {
	p := &Platform{
		Store:           store.New(),
		ColumnIndex:     vectorindex.NewExact(),
		TableIndex:      vectorindex.NewExact(),
		TableEmbeddings: map[string]embed.Vector{},
		cfg:             cfg,
		labels:          schema.NewLabelCache(),
	}
	p.profiler = profiler.New()
	if cfg.CoLR != nil {
		p.profiler.CoLR = cfg.CoLR
	}
	if cfg.Workers > 0 {
		p.profiler.Workers = cfg.Workers
	}
	p.profiler.ReservoirSize = cfg.ReservoirSize
	p.profiler.ExactDistinct = cfg.ExactDistinct
	return p
}

// finishBootstrap runs phases 2-4 over already-computed profiles — the
// join point of the in-memory and streaming bootstrap paths.
func (p *Platform) finishBootstrap(profiles []*profiler.ColumnProfile, profilingTime time.Duration) {
	p.Profiles = profiles
	p.ProfilingTime = profilingTime

	// Phase 2: Data Global Schema (Algorithm 3).
	start := time.Now()
	p.Edges = p.newBuilder().BuildGraph(p.Store, p.Profiles)
	p.SchemaBuildTime = time.Since(start)

	// Phase 3: embedding stores (column + table level, Eq. 1). Tables are
	// indexed in sorted ID order so bootstrap is deterministic — the HNSW
	// graph and tie-breaking in exact search depend on insertion order.
	byTable := map[string]map[embed.Type][]embed.Vector{}
	for _, cp := range p.Profiles {
		p.ColumnIndex.Add(cp.ID(), cp.Embed)
		tid := cp.TableID()
		if byTable[tid] == nil {
			byTable[tid] = map[embed.Type][]embed.Vector{}
		}
		byTable[tid][cp.Type] = append(byTable[tid][cp.Type], cp.Embed)
	}
	tids := make([]string, 0, len(byTable))
	for tid := range byTable {
		tids = append(tids, tid)
	}
	sort.Strings(tids)
	p.TableANN = vectorindex.NewHNSW(defaultANNM, defaultANNEfConstruction, defaultANNEfSearch)
	for _, tid := range tids {
		emb := embed.TableEmbedding(byTable[tid])
		p.TableEmbeddings[tid] = emb
		p.TableIndex.Add(tid, emb)
		p.TableANN.Add(tid, emb)
	}

	// Phase 4: Graph Linker and interfaces.
	p.Linker = schema.NewLinker(p.Profiles)
	p.abstractor = pipeline.NewAbstractor()
	p.graphs = pipeline.NewGraphBuilder(p.Linker)
	p.Discovery = discovery.New(p.Store)
}

// HNSW parameters for the table ANN index (m=16, ef=64 are the customary
// defaults; see NewHNSW).
const (
	defaultANNM              = 16
	defaultANNEfConstruction = 64
	defaultANNEfSearch       = 64
)

// newBuilder configures a schema builder exactly as Bootstrap does, so
// incremental mutations score similarity identically to a full build. All
// builders of one platform share its persistent label-embedding cache.
func (p *Platform) newBuilder() *schema.Builder {
	b := schema.NewBuilder()
	b.Thresholds = p.cfg.Thresholds
	b.SkipLabels = p.cfg.SkipLabelSimilarity
	b.BlockSize = p.cfg.EdgeBlockSize
	b.Candidates = p.cfg.EdgeCandidates
	b.Labels = p.labels
	if p.cfg.Workers > 0 {
		b.Workers = p.cfg.Workers
	}
	return b
}

// SetEdgeTuning adjusts the blocked similarity-edge pipeline knobs on a
// live platform (0 keeps a knob's current value). Tuning only: the knobs
// change where time and memory go, never the edge set, so it is safe to
// apply to a restored snapshot before enabling ingestion.
func (p *Platform) SetEdgeTuning(blockSize, candidates int) {
	p.ingestMu.Lock()
	defer p.ingestMu.Unlock()
	if blockSize > 0 {
		p.cfg.EdgeBlockSize = blockSize
	}
	if candidates > 0 {
		p.cfg.EdgeCandidates = candidates
	}
}

// AddTables profiles new tables and splices them into the live platform:
// delta profiling (Algorithm 2 over just the new tables), delta similarity
// edges (new columns against all columns), per-table named-graph insertion
// into the store, and embedding-index upserts — no re-bootstrap. A table
// whose ID already exists is an update: the old version is removed first.
// After any sequence of AddTables/RemoveTable, discovery results are
// equivalent to a fresh Bootstrap over the final table set.
//
// Safe to call while the platform serves queries; concurrent mutations are
// serialized. Returns the IDs ("dataset/table") of the tables ingested.
func (p *Platform) AddTables(tables []Table) ([]string, error) {
	if len(tables) == 0 {
		return nil, nil
	}
	ptables := make([]profiler.Table, 0, len(tables))
	ids := make([]string, 0, len(tables))
	seen := map[string]bool{}
	for _, t := range tables {
		if t.Frame == nil {
			return nil, fmt.Errorf("core: nil frame for dataset %q", t.Dataset)
		}
		if t.Dataset == "" || t.Frame.Name == "" {
			return nil, fmt.Errorf("core: table needs a dataset and a name, got %q/%q", t.Dataset, t.Frame.Name)
		}
		id := t.Dataset + "/" + t.Frame.Name
		if seen[id] {
			return nil, fmt.Errorf("core: duplicate table %q in batch", id)
		}
		seen[id] = true
		ids = append(ids, id)
		ptables = append(ptables, profiler.Table{Dataset: t.Dataset, Frame: t.Frame})
	}

	p.ingestMu.Lock()
	defer p.ingestMu.Unlock()

	// Resubmitted IDs are updates: drop the old version, then ingest.
	for _, id := range ids {
		if p.HasTable(id) {
			p.removeTableLocked(id)
		}
	}

	// Delta profiling: cost scales with the new tables only.
	added := p.profiler.ProfileAll(ptables)

	p.spliceProfilesLocked(added)
	return ids, nil
}

// spliceProfilesLocked splices already-computed profiles of one or more
// whole tables into the live platform: delta similarity edges, per-table
// metadata named graphs, embedding-index upserts, linker registration,
// and the locked metadata append. Both mutation paths — AddTables with
// in-memory profiling and AddSourceTable with streaming profiling — end
// here, which is why they produce identical platforms for identical
// data. Caller holds ingestMu and has removed prior versions of the
// tables.
func (p *Platform) spliceProfilesLocked(added []*profiler.ColumnProfile) {
	// Delta similarity: new columns against existing + new columns.
	// ingestMu guarantees no concurrent mutator, so the view is the final
	// state of the previous mutation.
	existing := p.ProfilesView()
	delta := p.newBuilder().SimilarityEdgesDelta(existing, added)

	// Store: per-table metadata named graphs + delta edges, one batch each.
	p.Store.AddBatch(schema.MetadataQuads(added))
	p.Store.AddBatch(schema.EdgeQuads(delta))

	// Embedding stores: column upserts, then table embeddings in sorted ID
	// order (matching Bootstrap's deterministic insertion).
	byTable := map[string]map[embed.Type][]embed.Vector{}
	for _, cp := range added {
		p.ColumnIndex.Add(cp.ID(), cp.Embed)
		tid := cp.TableID()
		if byTable[tid] == nil {
			byTable[tid] = map[embed.Type][]embed.Vector{}
		}
		byTable[tid][cp.Type] = append(byTable[tid][cp.Type], cp.Embed)
	}
	tids := make([]string, 0, len(byTable))
	for tid := range byTable {
		tids = append(tids, tid)
	}
	sort.Strings(tids)
	embs := map[string]embed.Vector{}
	for _, tid := range tids {
		emb := embed.TableEmbedding(byTable[tid])
		embs[tid] = emb
		p.TableIndex.Add(tid, emb)
		p.TableANN.Add(tid, emb)
	}

	p.Linker.AddProfiles(added)

	p.mu.Lock()
	p.Profiles = append(p.Profiles, added...)
	p.Edges = append(p.Edges, delta...)
	schema.SortEdges(p.Edges)
	for tid, emb := range embs {
		p.TableEmbeddings[tid] = emb
	}
	p.mu.Unlock()

	// Replication: the quad half of this splice was logged by the store
	// batches above; the platform half (profiles, edges, embeddings) rides
	// as an aux record so followers can mirror the metadata too.
	p.emitDelta(&PlatformDelta{Profiles: added, Edges: delta, TableEmbeddings: embs})
}

// RemoveTable deletes a table from the live platform: its metadata named
// graph leaves the store (dataset triples shared with sibling tables
// survive through their graphs), similarity edges touching its columns are
// retracted with their RDF-star annotations, and its embeddings leave the
// exact and ANN indexes. Discovery stops returning the table immediately.
func (p *Platform) RemoveTable(id string) error {
	p.ingestMu.Lock()
	defer p.ingestMu.Unlock()
	if !p.HasTable(id) {
		return fmt.Errorf("core: unknown table %q", id)
	}
	p.removeTableLocked(id)
	return nil
}

// removeTableLocked performs the removal; caller holds ingestMu and has
// verified the table exists.
func (p *Platform) removeTableLocked(id string) {
	prefix := id + "/"

	// Collect the table's edges under the read lock, mutate the store
	// outside it: retract the edge quads (both directions + annotations
	// live in the default graph) and drop the table's metadata graph.
	p.mu.RLock()
	var removedEdges []schema.Edge
	for _, e := range p.Edges {
		if strings.HasPrefix(e.A, prefix) || strings.HasPrefix(e.B, prefix) {
			removedEdges = append(removedEdges, e)
		}
	}
	p.mu.RUnlock()
	p.Store.RemoveBatch(schema.EdgeQuads(removedEdges))
	p.Store.RemoveGraph(schema.TableGraph(id))

	// Platform metadata: profiles, embeddings, linker entry (shared with
	// the follower-side delta application).
	p.removeTableMeta(id)

	p.emitDelta(&PlatformDelta{RemovedTable: id})
}

// HasTable reports whether a table ID is currently part of the platform.
func (p *Platform) HasTable(id string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.TableEmbeddings[id]
	return ok
}

// TableCount returns the number of tables currently in the platform —
// an O(1) read for metric scrapes, unlike Stats which walks the store.
func (p *Platform) TableCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.TableEmbeddings)
}

// TableEmbedding returns the embedding of a table, safe against concurrent
// ingestion.
func (p *Platform) TableEmbedding(id string) (embed.Vector, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	emb, ok := p.TableEmbeddings[id]
	return emb, ok
}

// TableIDs returns the IDs of all current tables in sorted order.
func (p *Platform) TableIDs() []string {
	p.mu.RLock()
	ids := make([]string, 0, len(p.TableEmbeddings))
	for id := range p.TableEmbeddings {
		ids = append(ids, id)
	}
	p.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// ProfilesView returns a snapshot of the profile slice, safe to read while
// ingestion mutates the platform. The profiles themselves are immutable.
func (p *Platform) ProfilesView() []*profiler.ColumnProfile {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*profiler.ColumnProfile(nil), p.Profiles...)
}

// EdgesView returns a snapshot of the materialized similarity edges.
func (p *Platform) EdgesView() []schema.Edge {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]schema.Edge(nil), p.Edges...)
}

// TableEmbeddingsView returns a copy of the table-embedding map.
func (p *Platform) TableEmbeddingsView() map[string]embed.Vector {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]embed.Vector, len(p.TableEmbeddings))
	for id, emb := range p.TableEmbeddings {
		out[id] = emb
	}
	return out
}

// Config returns the platform's bootstrap configuration (the thresholds
// incremental ingestion reuses).
func (p *Platform) Config() Config { return p.cfg }

// IngestLock blocks live mutations until IngestUnlock, giving callers
// (snapshot writes) a job-consistent view of the platform.
func (p *Platform) IngestLock() { p.ingestMu.Lock() }

// IngestUnlock releases IngestLock.
func (p *Platform) IngestUnlock() { p.ingestMu.Unlock() }

// AddPipelines abstracts scripts (Algorithm 1) and links them into the
// LiDS graph; it returns the abstractions. Safe to call while the platform
// serves queries.
func (p *Platform) AddPipelines(scripts []pipeline.Script) []*pipeline.Abstraction {
	abss := p.graphs.AbstractAll(p.Store, p.abstractor, scripts)
	p.mu.Lock()
	p.Abstractions = append(p.Abstractions, abss...)
	p.mu.Unlock()
	return abss
}

// Pipelines returns a snapshot of the abstractions added so far, safe to
// read while AddPipelines runs concurrently.
func (p *Platform) Pipelines() []*pipeline.Abstraction {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*pipeline.Abstraction(nil), p.Abstractions...)
}

// Query runs an ad-hoc SPARQL query against the LiDS graph on the compiled
// ID-space engine; repeated queries are served from the generation-keyed
// result cache, which any AddTables/RemoveTable mutation invalidates.
// Treat results as read-only.
func (p *Platform) Query(q string) (*sparql.Result, error) { return p.Discovery.SPARQL(q) }

// QueryContext is Query under a context: cancellation or deadline expiry
// stops the evaluation mid-iteration.
func (p *Platform) QueryContext(ctx context.Context, q string) (*sparql.Result, error) {
	return p.Discovery.SPARQLContext(ctx, q)
}

// TableIRI resolves a "dataset/table" ID to its graph IRI.
func (p *Platform) TableIRI(id string) (string, error) {
	if !p.HasTable(id) {
		return "", fmt.Errorf("core: unknown table %q", id)
	}
	return schema.TableIRI(id).Value, nil
}

// SimilarTablesByEmbedding finds the k most similar tables to a frame by
// table-embedding cosine (the get_path_to_table entry point: "computing an
// embedding of the given DataFrame, finding the most similar table").
func (p *Platform) SimilarTablesByEmbedding(df *dataframe.DataFrame, k int) []vectorindex.Result {
	byType := map[embed.Type][]embed.Vector{}
	for i := 0; i < df.NumCols(); i++ {
		cp := p.profiler.ProfileColumn("query", df.Name, df.ColumnAt(i))
		byType[cp.Type] = append(byType[cp.Type], cp.Embed)
	}
	return p.TableIndex.Search(embed.TableEmbedding(byType), k)
}

// Profiler exposes the platform's profiler (shared CoLR configuration).
func (p *Platform) Profiler() *profiler.Profiler { return p.profiler }

// Stats summarizes the LiDS graph (Statistics Manager).
type Stats struct {
	Triples         int
	Nodes           int
	Predicates      int
	NamedGraphs     int
	Columns         int
	Tables          int
	Datasets        int
	SimilarityEdges int
}

// Stats returns current graph statistics, safe against concurrent
// ingestion.
func (p *Platform) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return Stats{
		Triples:         p.Store.Len(),
		Nodes:           p.Store.NodeCount(),
		Predicates:      p.Store.PredicateCount(),
		NamedGraphs:     len(p.Store.Graphs()),
		Columns:         len(p.Profiles),
		Tables:          len(p.TableEmbeddings),
		Datasets:        countDatasets(p.Profiles),
		SimilarityEdges: len(p.Edges),
	}
}

func countDatasets(profiles []*profiler.ColumnProfile) int {
	seen := map[string]bool{}
	for _, cp := range profiles {
		seen[cp.Dataset] = true
	}
	return len(seen)
}
