package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"kglids/internal/profiler"
)

const srcURI = "lakegen://wide?tables=10&cols=5&rows=120&seed=21"

func TestBootstrapSourceMatchesBootstrap(t *testing.T) {
	plat, failed, err := BootstrapSource(context.Background(), DefaultConfig(), srcURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed tables: %v", failed)
	}

	src, err := plat.OpenSource(srcURI)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := profiler.MaterializeSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	var tables []Table
	for _, f := range frames {
		tables = append(tables, Table(f))
	}
	inMemory := Bootstrap(DefaultConfig(), tables)

	if plat.Stats() != inMemory.Stats() {
		t.Fatalf("streamed stats %+v diverge from in-memory bootstrap %+v", plat.Stats(), inMemory.Stats())
	}
	if fmt.Sprint(plat.TableIDs()) != fmt.Sprint(inMemory.TableIDs()) {
		t.Fatalf("table IDs diverge:\n%v\n%v", plat.TableIDs(), inMemory.TableIDs())
	}
}

func TestAddSourceUpdatesAndConverges(t *testing.T) {
	// Bootstrap over a subset, then stream the full lake in: existing
	// tables update, new ones append, and the result must equal a fresh
	// streamed bootstrap of the whole lake.
	full, _, err := BootstrapSource(context.Background(), DefaultConfig(), srcURI)
	if err != nil {
		t.Fatal(err)
	}

	src, err := full.OpenSource(srcURI)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := profiler.MaterializeSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	var subset []Table
	for _, f := range frames[:4] {
		subset = append(subset, Table(f))
	}
	plat := Bootstrap(DefaultConfig(), subset)

	rep, err := plat.AddSource(context.Background(), srcURI)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 0 {
		t.Fatalf("failed tables: %v", rep.Failed)
	}
	if len(rep.Added) != 10 {
		t.Fatalf("added %d tables, want all 10 (updates included): %v", len(rep.Added), rep.Added)
	}
	if plat.Stats() != full.Stats() {
		t.Fatalf("incremental source ingest %+v diverges from streamed bootstrap %+v", plat.Stats(), full.Stats())
	}
}

func TestAddSourceTableValidation(t *testing.T) {
	plat, _, err := BootstrapSource(context.Background(), DefaultConfig(), srcURI)
	if err != nil {
		t.Fatal(err)
	}
	src, err := plat.OpenSource(srcURI)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := src.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bad := refs[0]
	bad.Dataset = ""
	if err := plat.AddSourceTable(context.Background(), src, bad); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestConcurrentAddSourceWhileQuerying(t *testing.T) {
	plat, _, err := BootstrapSource(context.Background(), DefaultConfig(),
		"lakegen://wide?tables=4&cols=4&rows=80&seed=21")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := plat.Query(`SELECT ?t ?n WHERE { ?t a kglids:Table ; kglids:name ?n . }`); err != nil {
				t.Error(err)
				return
			}
			plat.Stats()
			plat.TableIDs()
		}
	}()

	// Two concurrent AddSource calls over overlapping lakes: tables
	// profile in parallel outside the ingest lock and splice under it.
	var ingest sync.WaitGroup
	for _, uri := range []string{
		"lakegen://wide?tables=8&cols=4&rows=80&seed=21",
		"lakegen://wide?tables=6&cols=4&rows=90&seed=22",
	} {
		uri := uri
		ingest.Add(1)
		go func() {
			defer ingest.Done()
			if _, err := plat.AddSource(context.Background(), uri); err != nil {
				t.Error(err)
			}
		}()
	}
	ingest.Wait()
	close(stop)
	wg.Wait()

	if got := len(plat.TableIDs()); got != 8 {
		// Both URIs share table names (stream_NNNN.csv) and datasets, so
		// the union is the wider lake's 8 tables.
		t.Fatalf("platform serves %d tables, want 8: %v", got, plat.TableIDs())
	}
}
