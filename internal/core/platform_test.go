package core

import (
	"fmt"
	"testing"

	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
	"kglids/internal/pipeline"
	"kglids/internal/rdf"
	"kglids/internal/schema"
)

func scriptsOf(corpus []pipegen.Generated) []pipeline.Script {
	out := make([]pipeline.Script, len(corpus))
	for i, g := range corpus {
		out[i] = g.Script
	}
	return out
}

func bootstrapSmall(t *testing.T) (*Platform, *lakegen.Benchmark) {
	t.Helper()
	b := lakegen.Generate(lakegen.Spec{
		Name: "mini", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
		RowsPerTable: 60, QueryTables: 4, Seed: 31,
	})
	var tables []Table
	for _, df := range b.Tables {
		tables = append(tables, Table{Dataset: b.Dataset[df.Name], Frame: df})
	}
	return Bootstrap(DefaultConfig(), tables), b
}

func TestBootstrapBuildsGraph(t *testing.T) {
	p, b := bootstrapSmall(t)
	stats := p.Stats()
	if stats.Columns == 0 || stats.Tables != len(b.Tables) {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Triples == 0 || stats.SimilarityEdges == 0 {
		t.Errorf("graph empty: %+v", stats)
	}
	if p.ProfilingTime <= 0 || p.SchemaBuildTime <= 0 {
		t.Error("timings not recorded")
	}
	// Embedding stores populated.
	if p.ColumnIndex.Len() != stats.Columns || p.TableIndex.Len() != stats.Tables {
		t.Error("embedding stores incomplete")
	}
}

func TestUnionableDiscoveryFindsFamily(t *testing.T) {
	p, b := bootstrapSmall(t)
	query := b.QueryTables[0]
	queryID := b.Dataset[query] + "/" + query
	iri, err := p.TableIRI(queryID)
	if err != nil {
		t.Fatal(err)
	}
	results := p.Discovery.UnionableTables(rdf.IRI(iri), 10)
	if len(results) == 0 {
		t.Fatal("no unionable tables found")
	}
	truth := map[string]bool{}
	for _, name := range b.GroundTruth[query] {
		truth[b.Dataset[name]+"/"+name] = true
	}
	// The top hit should be a true family member.
	top := results[0].Table.Value
	found := false
	for id := range truth {
		if schema.TableIRI(id).Value == top {
			found = true
		}
	}
	if !found {
		t.Errorf("top unionable %s not in ground truth %v", top, b.GroundTruth[query])
	}
}

func TestAddPipelinesLinksIntoGraph(t *testing.T) {
	p, b := bootstrapSmall(t)
	// Generate pipelines over the first family's table.
	df := b.Tables[0]
	ds := pipegen.FrameDataset(b.Dataset[df.Name], df, df.Columns()[0])
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 5, Datasets: []pipegen.Dataset{ds}, Seed: 7})
	abss := p.AddPipelines(scriptsOf(corpus))
	if len(abss) != 5 {
		t.Fatalf("abstractions = %d", len(abss))
	}
	for _, abs := range abss {
		if abs.ParseError != nil {
			t.Fatalf("parse error: %v", abs.ParseError)
		}
	}
	// Named graphs exist.
	if got := len(p.Store.Graphs()); got < 5 {
		t.Errorf("named graphs = %d", got)
	}
	// Verified reads edges point into the dataset graph.
	res, err := p.Query(`SELECT ?t WHERE { GRAPH ?g { ?s kglids:reads ?t . } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no verified dataset reads")
	}
}

func TestSimilarTablesByEmbedding(t *testing.T) {
	p, b := bootstrapSmall(t)
	df := b.Tables[0]
	hits := p.SimilarTablesByEmbedding(df, 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	wantID := b.Dataset[df.Name] + "/" + df.Name
	if hits[0].ID != wantID {
		t.Errorf("top hit = %s, want the table itself %s", hits[0].ID, wantID)
	}
	if hits[0].Score < 0.99 {
		t.Errorf("self-similarity = %v", hits[0].Score)
	}
}

func TestTableIRIUnknown(t *testing.T) {
	p, _ := bootstrapSmall(t)
	if _, err := p.TableIRI("nope/none.csv"); err == nil {
		t.Error("unknown table should error")
	}
}

// TestIngestEmbedCallsLinear pins, at the platform level, that repeated
// AddTables batches do not re-embed the whole label population: the
// persistent label cache makes total embedding work linear in distinct
// labels, not quadratic in ingests × profiles.
func TestIngestEmbedCallsLinear(t *testing.T) {
	p, b := bootstrapSmall(t)
	afterBootstrap := p.labels.EmbedCalls()
	if afterBootstrap == 0 {
		t.Fatal("bootstrap embedded no labels")
	}
	// Re-ingest copies of an existing table under new names: every label
	// is already cached, so embed calls must not move at all.
	src := b.Tables[0]
	for i := 0; i < 5; i++ {
		clone := src.Clone()
		clone.Name = fmt.Sprintf("copy_%d_%s", i, src.Name)
		if _, err := p.AddTables([]Table{{Dataset: "redeliver", Frame: clone}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.labels.EmbedCalls(); got != afterBootstrap {
		t.Fatalf("embed calls grew %d -> %d across known-label ingests (quadratic re-embedding)",
			afterBootstrap, got)
	}
}

// TestAddTablesBlockedDeltaEquivalence forces every ingest delta down the
// candidate-pruned path (block size 1) and checks a batched AddTables
// sequence converges to the same edges, stats, and discovery results as a
// fresh Bootstrap over the full lake.
func TestAddTablesBlockedDeltaEquivalence(t *testing.T) {
	b := lakegen.Generate(lakegen.Spec{
		Name: "mini", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
		RowsPerTable: 60, QueryTables: 4, Seed: 33,
	})
	var tables []Table
	for _, df := range b.Tables {
		tables = append(tables, Table{Dataset: b.Dataset[df.Name], Frame: df})
	}
	cfg := DefaultConfig()
	cfg.EdgeBlockSize = 1
	cfg.EdgeCandidates = 2

	fresh := Bootstrap(cfg, tables)
	incremental := Bootstrap(cfg, tables[:3])
	for i := 3; i < len(tables); i += 2 {
		hi := i + 2
		if hi > len(tables) {
			hi = len(tables)
		}
		if _, err := incremental.AddTables(tables[i:hi]); err != nil {
			t.Fatal(err)
		}
	}

	if fresh.Stats() != incremental.Stats() {
		t.Fatalf("stats diverge: fresh %+v, incremental %+v", fresh.Stats(), incremental.Stats())
	}
	fe, ie := fresh.EdgesView(), incremental.EdgesView()
	if len(fe) != len(ie) {
		t.Fatalf("edge counts diverge: fresh %d, incremental %d", len(fe), len(ie))
	}
	for i := range fe {
		if fe[i] != ie[i] {
			t.Fatalf("edge %d diverges: fresh %+v, incremental %+v", i, fe[i], ie[i])
		}
	}
}
