package core

import (
	"fmt"

	"kglids/internal/dataframe"
	"kglids/internal/discovery"
	"kglids/internal/embed"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/schema"
	"kglids/internal/sparql"
	"kglids/internal/store"
	"kglids/internal/vectorindex"
)

// RestoredState carries the decoded sections of a platform snapshot, the
// minimal state from which a query-ready Platform is reassembled without
// re-profiling the lake. Everything else — column index, table index,
// linker, discovery engine — is derived from these in O(columns + tables)
// time.
type RestoredState struct {
	// Store is the rebuilt triple store (dictionary + quads).
	Store *store.Store
	// Profiles are the per-column profiles (Algorithm 2 output).
	Profiles []*profiler.ColumnProfile
	// Edges are the materialized similarity edges (Algorithm 3 output).
	Edges []schema.Edge
	// TableEmbeddings maps "dataset/table" to its unnormalized embedding.
	TableEmbeddings map[string]embed.Vector
	// TableOrder is the TableIndex insertion order at save time, preserved
	// so tie-breaking in exact search is identical after a reload.
	TableOrder []string
	// TableANN is the restored HNSW graph, or nil to rebuild it from
	// TableOrder.
	TableANN *vectorindex.HNSW
	// Scripts are the pipeline scripts added before the save; they are
	// re-abstracted on restore (cheap, deterministic) to repopulate
	// Abstractions. Their triples are already in Store, so re-linking them
	// is a deduplicated no-op.
	Scripts []pipeline.Script
	// Config is the bootstrap configuration recorded in the snapshot, so
	// incremental ingestion on the restored platform scores similarity with
	// the same thresholds as the original bootstrap. Nil falls back to
	// DefaultConfig.
	Config *Config
	// QueryCache holds the SPARQL result-cache entries saved with the
	// snapshot; they re-pin to the restored store's generation so the first
	// repeat of a hot discovery query is a cache hit, not a re-execution.
	QueryCache []sparql.CacheEntry
	// Generation is the store mutation generation at save time (0 in
	// snapshots predating the replication section). The restored store
	// adopts it so changelog replay continues from aligned counters.
	Generation uint64
	// ChangelogPos is the changelog head at save time; a follower booted
	// from this snapshot starts tailing the primary at this cursor.
	ChangelogPos uint64
}

// Restore reassembles a query-ready Platform from decoded snapshot state.
// It performs no profiling and no similarity computation; cost is linear in
// the number of columns, tables, and pipeline statements.
func Restore(st RestoredState) (*Platform, error) {
	if st.Store == nil {
		return nil, fmt.Errorf("core: restore requires a store")
	}
	p := &Platform{
		Store:           st.Store,
		Profiles:        st.Profiles,
		Edges:           st.Edges,
		ColumnIndex:     vectorindex.NewExact(),
		TableIndex:      vectorindex.NewExact(),
		TableANN:        st.TableANN,
		TableEmbeddings: st.TableEmbeddings,
		cfg:             DefaultConfig(),
	}
	if st.Config != nil {
		p.cfg = *st.Config
	}
	if p.TableEmbeddings == nil {
		p.TableEmbeddings = map[string]embed.Vector{}
	}
	p.labels = schema.NewLabelCache()
	p.profiler = profiler.New()
	for _, cp := range st.Profiles {
		p.ColumnIndex.Add(cp.ID(), cp.Embed)
	}
	for _, tid := range st.TableOrder {
		emb, ok := p.TableEmbeddings[tid]
		if !ok {
			return nil, fmt.Errorf("core: table order references unknown table %q", tid)
		}
		p.TableIndex.Add(tid, emb)
	}
	if p.TableANN == nil {
		p.TableANN = vectorindex.NewHNSW(defaultANNM, defaultANNEfConstruction, defaultANNEfSearch)
		for _, tid := range st.TableOrder {
			p.TableANN.Add(tid, p.TableEmbeddings[tid])
		}
	}
	p.Linker = schema.NewLinker(st.Profiles)
	p.abstractor = pipeline.NewAbstractor()
	p.graphs = pipeline.NewGraphBuilder(p.Linker)
	p.Discovery = discovery.New(p.Store)
	if len(st.Scripts) > 0 {
		p.AddPipelines(st.Scripts)
	}
	// Adopt the primary's generation before importing the query cache
	// (entries pin to the current generation) and after AddPipelines
	// (whose re-adds dedupe to generation-neutral no-ops), so a follower
	// replaying the changelog observes the same counter as the primary.
	if st.Generation > 0 {
		p.Store.SetGeneration(st.Generation)
	}
	p.restoredLogPos = st.ChangelogPos
	// Seed the query cache last: AddPipelines mutates the store, and import
	// pins each entry to the store generation current at this point.
	if len(st.QueryCache) > 0 {
		p.Discovery.CacheImport(st.QueryCache)
	}
	return p, nil
}

// Scripts returns the scripts of all abstractions added so far, in order —
// the pipeline section of a snapshot.
func (p *Platform) Scripts() []pipeline.Script {
	abss := p.Pipelines()
	out := make([]pipeline.Script, len(abss))
	for i, abs := range abss {
		out[i] = abs.Script
	}
	return out
}

// ApproxSimilarTables is the approximate (HNSW) counterpart of
// SimilarTablesByEmbedding, trading exactness for sub-linear search when
// the lake holds many tables.
func (p *Platform) ApproxSimilarTables(df *dataframe.DataFrame, k int) []vectorindex.Result {
	byType := map[embed.Type][]embed.Vector{}
	for i := 0; i < df.NumCols(); i++ {
		cp := p.profiler.ProfileColumn("query", df.Name, df.ColumnAt(i))
		byType[cp.Type] = append(byType[cp.Type], cp.Embed)
	}
	return p.TableANN.Search(embed.TableEmbedding(byType), k)
}
