package core

import (
	"sort"
	"strings"

	"kglids/internal/embed"
	"kglids/internal/profiler"
	"kglids/internal/schema"
	"kglids/internal/store"
)

// PlatformDelta is the platform-level half of one mutation: the profiles,
// similarity edges, and table embeddings a splice produced, or the table a
// removal dropped. The store-level half (metadata and edge quads) travels
// as ordinary quad records in the changelog; this delta carries exactly
// the state that is NOT derivable from quads — embeddings and profile
// structs never enter the store — so a follower applying both halves in
// log order reconstructs the full platform.
type PlatformDelta struct {
	// Profiles, Edges, and TableEmbeddings describe a splice (AddTables /
	// AddSource): the profiles added, the delta similarity edges, and the
	// new or updated table embeddings.
	Profiles        []*profiler.ColumnProfile
	Edges           []schema.Edge
	TableEmbeddings map[string]embed.Vector
	// RemovedTable, when non-empty, makes this delta a removal instead:
	// the "dataset/table" ID whose metadata leaves the platform.
	RemovedTable string
}

// EnableChangelog attaches a write-ahead changelog to the platform's
// store and seeds its floor from the snapshot position this platform was
// restored at, so sequence numbering continues where the snapshot's
// followers left off. Call once on the primary before serving.
func (p *Platform) EnableChangelog(retainQuads int) *store.Changelog {
	cl := p.Store.EnableChangelog(retainQuads)
	if p.restoredLogPos > 0 {
		cl.SeedFloor(p.restoredLogPos)
	}
	return cl
}

// ChangelogPosition returns the platform's position in the mutation
// changelog: the live head when a changelog is enabled, otherwise the
// position persisted in the snapshot this platform was restored from. A
// follower starts tailing from this cursor.
func (p *Platform) ChangelogPosition() uint64 {
	if cl := p.Store.Changelog(); cl != nil {
		return cl.Head()
	}
	return p.restoredLogPos
}

// emitDelta appends a platform delta to the changelog, when one is
// enabled. Gen stamps the store generation the delta is consistent with;
// followers do not gate on it for aux records (an AddPipelines running
// concurrently may interleave quad records), it is diagnostic only.
func (p *Platform) emitDelta(d *PlatformDelta) {
	if cl := p.Store.Changelog(); cl != nil {
		cl.AppendAux(d, p.Store.Generation())
	}
}

// ApplyPlatformDelta applies a replicated platform delta — the follower-
// side mirror of spliceProfilesLocked/removeTableLocked with the store
// mutations omitted (those arrive as separate quad records). Deltas must
// be applied in log order.
func (p *Platform) ApplyPlatformDelta(d *PlatformDelta) {
	p.ingestMu.Lock()
	defer p.ingestMu.Unlock()
	if d.RemovedTable != "" {
		p.removeTableMeta(d.RemovedTable)
		return
	}

	for _, cp := range d.Profiles {
		p.ColumnIndex.Add(cp.ID(), cp.Embed)
	}
	// Sorted insertion order keeps the exact index's tie-breaking and the
	// HNSW graph identical to the primary's splice.
	tids := make([]string, 0, len(d.TableEmbeddings))
	for tid := range d.TableEmbeddings {
		tids = append(tids, tid)
	}
	sort.Strings(tids)
	for _, tid := range tids {
		emb := d.TableEmbeddings[tid]
		p.TableIndex.Add(tid, emb)
		p.TableANN.Add(tid, emb)
	}
	p.Linker.AddProfiles(d.Profiles)

	p.mu.Lock()
	p.Profiles = append(p.Profiles, d.Profiles...)
	p.Edges = append(p.Edges, d.Edges...)
	schema.SortEdges(p.Edges)
	for tid, emb := range d.TableEmbeddings {
		p.TableEmbeddings[tid] = emb
	}
	p.mu.Unlock()
}

// removeTableMeta drops a table's platform-level metadata — profiles,
// edges, embeddings, linker entry — leaving the store untouched. Caller
// holds ingestMu.
func (p *Platform) removeTableMeta(id string) {
	prefix := id + "/"
	p.mu.RLock()
	keepProfiles := make([]*profiler.ColumnProfile, 0, len(p.Profiles))
	var removedProfiles []*profiler.ColumnProfile
	for _, cp := range p.Profiles {
		if cp.TableID() == id {
			removedProfiles = append(removedProfiles, cp)
		} else {
			keepProfiles = append(keepProfiles, cp)
		}
	}
	keepEdges := make([]schema.Edge, 0, len(p.Edges))
	for _, e := range p.Edges {
		if !strings.HasPrefix(e.A, prefix) && !strings.HasPrefix(e.B, prefix) {
			keepEdges = append(keepEdges, e)
		}
	}
	p.mu.RUnlock()

	for _, cp := range removedProfiles {
		p.ColumnIndex.Remove(cp.ID())
	}
	p.TableIndex.Remove(id)
	p.TableANN.Remove(id)
	p.Linker.RemoveTable(id)

	p.mu.Lock()
	p.Profiles = keepProfiles
	p.Edges = keepEdges
	delete(p.TableEmbeddings, id)
	p.mu.Unlock()
}
