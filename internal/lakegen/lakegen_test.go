package lakegen_test

import (
	"testing"

	"kglids/internal/embed"
	"kglids/internal/lakegen"
	"kglids/internal/profiler"
)

func TestGenerateShape(t *testing.T) {
	b := lakegen.Generate(lakegen.SANTOSSmall)
	if len(b.Tables) < lakegen.SANTOSSmall.Families*2+lakegen.SANTOSSmall.NoiseTables {
		t.Errorf("tables = %d", len(b.Tables))
	}
	if len(b.QueryTables) != lakegen.SANTOSSmall.QueryTables {
		t.Errorf("query tables = %d", len(b.QueryTables))
	}
	for _, q := range b.QueryTables {
		if len(b.GroundTruth[q]) == 0 {
			t.Errorf("query table %s has no ground truth", q)
		}
	}
	if b.SizeBytes() <= 0 || b.TotalColumns() <= 0 || b.AvgRows() <= 0 {
		t.Error("stats not positive")
	}
}

func TestGroundTruthSymmetric(t *testing.T) {
	b := lakegen.Generate(lakegen.SANTOSSmall)
	for table, others := range b.GroundTruth {
		for _, o := range others {
			found := false
			for _, back := range b.GroundTruth[o] {
				if back == table {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("ground truth not symmetric: %s -> %s", table, o)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := lakegen.Generate(lakegen.D3LSmall), lakegen.Generate(lakegen.D3LSmall)
	if len(a.Tables) != len(b.Tables) {
		t.Fatal("nondeterministic table count")
	}
	for i := range a.Tables {
		if a.Tables[i].Name != b.Tables[i].Name || a.Tables[i].NumRows() != b.Tables[i].NumRows() {
			t.Fatal("nondeterministic table content")
		}
	}
}

func TestBenchmarkShapesDiffer(t *testing.T) {
	d3l, tus, santos := lakegen.Generate(lakegen.D3LSmall), lakegen.Generate(lakegen.TUSSmall), lakegen.Generate(lakegen.SANTOSSmall)
	// D3L has the largest average unionable set (paper Table 1: 110 vs 163
	// vs 14 — D3L per query among the highest relative to lake size).
	if d3l.AvgUnionable() <= santos.AvgUnionable() {
		t.Errorf("D3L avg unionable %v should exceed SANTOS Small %v", d3l.AvgUnionable(), santos.AvgUnionable())
	}
	// TUS has the most tables among the small benchmarks.
	if len(tus.Tables) <= len(d3l.Tables) || len(tus.Tables) <= len(santos.Tables) {
		t.Errorf("table counts: tus=%d d3l=%d santos=%d", len(tus.Tables), len(d3l.Tables), len(santos.Tables))
	}
	// SANTOS Large dwarfs all small benchmarks.
	large := lakegen.Generate(lakegen.SANTOSLarge)
	if len(large.Tables) < 3*len(tus.Tables) {
		t.Errorf("SANTOS Large = %d tables", len(large.Tables))
	}
}

func TestTypeDiversity(t *testing.T) {
	// The lake must exercise all seven fine-grained types (Table 1 lists
	// counts for every type).
	b := lakegen.Generate(lakegen.TUSSmall)
	p := profiler.New()
	var tables []profiler.Table
	for _, df := range b.Tables {
		tables = append(tables, profiler.Table{Dataset: b.Dataset[df.Name], Frame: df})
	}
	breakdown := profiler.TypeBreakdown(p.ProfileAll(tables))
	for _, typ := range []embed.Type{embed.TypeInt, embed.TypeFloat, embed.TypeBoolean, embed.TypeNamedEntity, embed.TypeNaturalLanguage, embed.TypeString, embed.TypeDate} {
		if breakdown[typ] == 0 {
			t.Errorf("no columns of type %s in generated lake: %v", typ, breakdown)
		}
	}
}

func TestGenerateEval(t *testing.T) {
	lake := lakegen.GenerateEval(lakegen.QuickEvalSpec)
	if len(lake.PlantedJoins) != lakegen.QuickEvalSpec.JoinPairs {
		t.Fatalf("planted %d pairs, want %d", len(lake.PlantedJoins), lakegen.QuickEvalSpec.JoinPairs)
	}

	byName := map[string]map[string]map[string]bool{} // table -> column -> value set
	for _, df := range lake.Tables {
		cols := map[string]map[string]bool{}
		for i := 0; i < df.NumCols(); i++ {
			s := df.ColumnAt(i)
			vals := map[string]bool{}
			for _, c := range s.Cells {
				vals[c.S] = true
			}
			cols[s.Name] = vals
		}
		byName[df.Name] = cols
	}

	for _, pair := range lake.PlantedJoins {
		a, c := pair[0], pair[1]
		if lake.Dataset[a] == lake.Dataset[c] {
			t.Errorf("pair %v planted within one family %s", pair, lake.Dataset[a])
		}
		// The pair must share a column name whose value pools overlap —
		// that is what makes it joinable by construction.
		shared := false
		for name, avals := range byName[a] {
			cvals, ok := byName[c][name]
			if !ok {
				continue
			}
			overlap := 0
			for v := range avals {
				if cvals[v] {
					overlap++
				}
			}
			if overlap > 0 {
				shared = true
			}
		}
		if !shared {
			t.Errorf("pair %v shares no column with overlapping values", pair)
		}
	}

	// Join truth is symmetric and contains unionable (family) truth.
	for table, others := range lake.JoinTruth {
		for _, o := range others {
			back := false
			for _, b := range lake.JoinTruth[o] {
				if b == table {
					back = true
				}
			}
			if !back {
				t.Fatalf("join truth not symmetric: %s -> %s", table, o)
			}
		}
	}
	for table, others := range lake.GroundTruth {
		joinable := map[string]bool{}
		for _, o := range lake.JoinTruth[table] {
			joinable[o] = true
		}
		for _, o := range others {
			if !joinable[o] {
				t.Fatalf("family member %s -> %s missing from join truth", table, o)
			}
		}
	}
}

func TestGenerateEvalDeterministic(t *testing.T) {
	a, b := lakegen.GenerateEval(lakegen.QuickEvalSpec), lakegen.GenerateEval(lakegen.QuickEvalSpec)
	if len(a.PlantedJoins) != len(b.PlantedJoins) {
		t.Fatal("nondeterministic planting")
	}
	for i := range a.PlantedJoins {
		if a.PlantedJoins[i] != b.PlantedJoins[i] {
			t.Fatal("nondeterministic pair selection")
		}
	}
	for i := range a.Tables {
		at, bt := a.Tables[i], b.Tables[i]
		if at.Name != bt.Name || at.NumCols() != bt.NumCols() || at.NumRows() != bt.NumRows() {
			t.Fatalf("nondeterministic table %s", at.Name)
		}
	}
}

func TestGenerateTask(t *testing.T) {
	d := lakegen.GenerateTask(lakegen.TaskSpec{ID: 1, Name: "t", Rows: 200, NumFeatures: 4, CatFeatures: 2, Classes: 2, NullRate: 0.1, Seed: 1})
	if d.Frame.NumRows() != 200 || d.Frame.NumCols() != 7 {
		t.Fatalf("shape = %dx%d", d.Frame.NumRows(), d.Frame.NumCols())
	}
	if d.Frame.NullCount() == 0 {
		t.Error("no nulls injected")
	}
	if d.Frame.Column("target").NullCount() != 0 {
		t.Error("target has nulls")
	}
	if d.Task != "binary" {
		t.Errorf("task = %s", d.Task)
	}
	multi := lakegen.GenerateTask(lakegen.TaskSpec{ID: 2, Name: "m", Rows: 100, NumFeatures: 3, Classes: 4, Seed: 2})
	if multi.Task != "multiclass" {
		t.Errorf("task = %s", multi.Task)
	}
}

func TestSuites(t *testing.T) {
	clean := lakegen.CleaningSuite()
	if len(clean) != 13 {
		t.Errorf("cleaning suite = %d", len(clean))
	}
	// Sizes ascend (Figure 7: "datasets are sorted by size in increasing
	// order").
	for i := 1; i < len(clean); i++ {
		a := clean[i-1].Frame.NumRows() * clean[i-1].Frame.NumCols()
		b := clean[i].Frame.NumRows() * clean[i].Frame.NumCols()
		if b < a {
			t.Errorf("cleaning suite not ascending at %d: %d < %d", i, b, a)
		}
	}
	for _, d := range clean {
		if d.Frame.NullCount() == 0 {
			t.Errorf("dataset %s has no nulls to clean", d.Name)
		}
	}
	tr := lakegen.TransformSuite()
	if len(tr) != 17 {
		t.Errorf("transform suite = %d", len(tr))
	}
	if tr[0].ID != 14 || tr[16].ID != 30 {
		t.Errorf("transform IDs = %d..%d", tr[0].ID, tr[16].ID)
	}
	// Figure 9's x-axes list 11 multi-class + 14 binary dataset IDs.
	am := lakegen.AutoMLSuite()
	if len(am) != 25 {
		t.Errorf("automl suite = %d", len(am))
	}
}

func TestTaskLearnable(t *testing.T) {
	// Sanity: informative features make the task learnable above chance.
	d := lakegen.GenerateTask(lakegen.TaskSpec{ID: 9, Name: "l", Rows: 400, NumFeatures: 6, Classes: 2, Seed: 11})
	m, err := d.Frame.ToMatrix(d.Target)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, v := range m.Y {
		if v == 1 {
			pos++
		}
	}
	if pos < 100 || pos > 300 {
		t.Errorf("class balance = %d/400", pos)
	}
}
