// Package lakegen generates synthetic data lakes and benchmark workloads.
// The paper evaluates on D3L Small, TUS Small, SANTOS Small, and SANTOS
// Large (Table 1), which are built from real/synthesized CSV collections
// with table-unionability ground truth produced by horizontal and vertical
// partitioning of source tables. Those corpora are unavailable offline, so
// this package reproduces their construction: family-based generation where
// each "concept" table is partitioned into unionable variants with renamed
// columns (synonyms), unit changes, and value noise — exactly the
// transformations the TUS and SANTOS generators apply — plus unrelated
// noise tables. Ground truth is the family membership.
package lakegen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"kglids/internal/dataframe"
)

// Benchmark is a generated data lake with unionability ground truth.
type Benchmark struct {
	Name        string
	Tables      []*dataframe.DataFrame
	Dataset     map[string]string   // table name -> dataset name
	QueryTables []string            // table names used as queries
	GroundTruth map[string][]string // table name -> unionable table names
}

// Spec controls benchmark generation, mirroring the shape of Table 1.
type Spec struct {
	Name            string
	Families        int // unionable families ("concepts")
	TablesPerFamily int // avg unionable tables per family
	NoiseTables     int // unrelated tables
	RowsPerTable    int // avg rows
	QueryTables     int
	Seed            int64
}

// Scaled replica specs. The originals are multi-GB (Table 1); these keep
// every ratio that drives the evaluation (family sizes, row counts, typed
// column mixes) at CI scale. D3L has the largest tables and the largest
// unionable families; TUS has the most tables among the small benchmarks;
// SANTOS Small has small families; SANTOS Large is ~20x TUS.
var (
	// D3LSmall replicates D3L Small: few large families, biggest tables.
	D3LSmall = Spec{Name: "D3L Small", Families: 6, TablesPerFamily: 10, NoiseTables: 6, RowsPerTable: 400, QueryTables: 10, Seed: 101}
	// TUSSmall replicates TUS Small: more tables, medium families.
	TUSSmall = Spec{Name: "TUS Small", Families: 18, TablesPerFamily: 7, NoiseTables: 24, RowsPerTable: 150, QueryTables: 30, Seed: 102}
	// SANTOSSmall replicates SANTOS Small: small families.
	SANTOSSmall = Spec{Name: "SANTOS Small", Families: 14, TablesPerFamily: 3, NoiseTables: 13, RowsPerTable: 230, QueryTables: 10, Seed: 103}
	// SANTOSLarge replicates SANTOS Large: the scale benchmark.
	SANTOSLarge = Spec{Name: "SANTOS Large", Families: 60, TablesPerFamily: 8, NoiseTables: 70, RowsPerTable: 250, QueryTables: 16, Seed: 104}
)

// column generators -----------------------------------------------------

type colGen struct {
	name     string
	synonyms []string
	gen      func(rng *rand.Rand) string
	// unitScale, when non-zero, is an alternative scale factor some
	// variants apply to numeric values (area_sq_ft vs area_sq_m).
	unitScale float64
}

var firstNames = []string{"James", "Mary", "John", "Linda", "Robert", "Susan", "Michael", "Sarah", "David", "Karen", "Thomas", "Nancy", "Daniel", "Lisa", "Matthew", "Emily", "Andrew", "Anna", "Joshua", "Laura"}
var lastNames = []string{"Smith", "Johnson", "Brown", "Jones", "Garcia", "Miller", "Davis", "Wilson", "Anderson", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Thompson", "White", "Harris", "Clark", "Lewis", "Walker"}
var cities = []string{"Montreal", "Toronto", "Vancouver", "Ottawa", "Calgary", "New York", "Boston", "Chicago", "Seattle", "London", "Paris", "Berlin", "Madrid", "Rome", "Tokyo", "Sydney", "Dublin", "Vienna", "Prague", "Lisbon"}
var countries = []string{"Canada", "France", "Germany", "Italy", "Spain", "Japan", "India", "Brazil", "Mexico", "Australia", "Sweden", "Norway", "Poland", "Greece", "Turkey", "Egypt", "Kenya", "Chile", "Peru", "Ireland"}
var products = []string{"iPhone", "iPad", "MacBook", "Kindle", "Echo", "Corolla", "Civic", "Mustang", "Camry", "Accord", "Prius", "Xbox", "PlayStation", "Android", "Windows"}
var reviewBits = []string{
	"the product was very good and i liked it a lot",
	"this is a bad product and it broke after a week",
	"great value for the price i paid would buy again",
	"it was not what i expected but the quality is fine",
	"excellent service and the item arrived on time",
	"terrible experience i want a refund for this order",
	"the quality is amazing and my family loves it",
	"average product nothing special about it really",
}

// pool returns a categorical generator over a value pool.
func pool(vals []string) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string { return vals[rng.Intn(len(vals))] }
}

func normal(mu, sigma float64, decimals int) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string {
		return fmt.Sprintf("%.*f", decimals, rng.NormFloat64()*sigma+mu)
	}
}

func uniformInt(lo, hi int) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string { return fmt.Sprintf("%d", lo+rng.Intn(hi-lo+1)) }
}

func lognormal(mu, sigma float64) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string {
		return fmt.Sprintf("%.2f", math.Exp(rng.NormFloat64()*sigma+mu))
	}
}

func dates(startYear, span int) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string {
		return fmt.Sprintf("%04d-%02d-%02d", startYear+rng.Intn(span), 1+rng.Intn(12), 1+rng.Intn(28))
	}
}

func boolGen(trueRatio float64) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string {
		if rng.Float64() < trueRatio {
			return "1"
		}
		return "0"
	}
}

func codes(prefix string, n int) func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string { return fmt.Sprintf("%s-%04d", prefix, rng.Intn(n)) }
}

func personName() func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string {
		return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	}
}

func reviews() func(rng *rand.Rand) string {
	return func(rng *rand.Rand) string { return reviewBits[rng.Intn(len(reviewBits))] }
}

// conceptPool is the library of column generators concepts draw from;
// synonyms drive label-similarity ground truth between family variants.
var conceptPool = []colGen{
	{name: "name", synonyms: []string{"fullname", "customer"}, gen: personName()},
	{name: "city", synonyms: []string{"town", "municipality"}, gen: pool(cities)},
	{name: "country", synonyms: []string{"nation"}, gen: pool(countries)},
	{name: "product", synonyms: []string{"item"}, gen: pool(products)},
	{name: "review", synonyms: []string{"comment", "description"}, gen: reviews()},
	{name: "age", synonyms: []string{"years"}, gen: uniformInt(18, 90)},
	{name: "salary", synonyms: []string{"income", "wage"}, gen: normal(55000, 12000, 0)},
	{name: "price", synonyms: []string{"cost", "amount"}, gen: lognormal(4, 1)},
	{name: "score", synonyms: []string{"rating"}, gen: normal(3.5, 1.0, 2)},
	{name: "weight", synonyms: []string{"mass"}, gen: normal(70, 15, 1), unitScale: 2.20462}, // kg ↔ lb
	{name: "height", synonyms: []string{"stature"}, gen: normal(170, 12, 1), unitScale: 0.0328084},
	{name: "date", synonyms: []string{"day", "timestamp"}, gen: dates(2010, 12)},
	{name: "active", synonyms: []string{"status", "flag"}, gen: boolGen(0.7)},
	{name: "id", synonyms: []string{"identifier", "key"}, gen: codes("id", 10000)},
	{name: "population", synonyms: []string{"pop"}, gen: uniformInt(10000, 9000000)},
	{name: "temperature", synonyms: []string{"temp"}, gen: normal(15, 10, 1)},
	{name: "revenue", synonyms: []string{"sales"}, gen: lognormal(10, 1.5)},
	{name: "count", synonyms: []string{"quantity", "total"}, gen: uniformInt(0, 500)},
}

// Generate builds the benchmark for a spec.
func Generate(spec Spec) *Benchmark {
	rng := rand.New(rand.NewSource(spec.Seed))
	b := &Benchmark{
		Name:        spec.Name,
		Dataset:     map[string]string{},
		GroundTruth: map[string][]string{},
	}
	var familyTables [][]string
	for f := 0; f < spec.Families; f++ {
		members := generateFamily(rng, spec, f, b)
		familyTables = append(familyTables, members)
		for _, m := range members {
			others := make([]string, 0, len(members)-1)
			for _, o := range members {
				if o != m {
					others = append(others, o)
				}
			}
			b.GroundTruth[m] = others
		}
	}
	for i := 0; i < spec.NoiseTables; i++ {
		df := generateNoiseTable(rng, spec, i)
		b.Tables = append(b.Tables, df)
		b.Dataset[df.Name] = fmt.Sprintf("noise_%02d", i)
	}
	// Query tables: the first table of each family, round-robin until
	// QueryTables reached.
	for i := 0; len(b.QueryTables) < spec.QueryTables && i < len(familyTables); i++ {
		b.QueryTables = append(b.QueryTables, familyTables[i][0])
	}
	for i := 0; len(b.QueryTables) < spec.QueryTables; i++ {
		fam := familyTables[i%len(familyTables)]
		if len(fam) > 1 {
			b.QueryTables = append(b.QueryTables, fam[1])
		}
	}
	return b
}

// generateFamily creates one unionable family: a concept schema, then
// TablesPerFamily variants via horizontal partitioning, synonym renames,
// vertical projection, and occasional unit changes.
func generateFamily(rng *rand.Rand, spec Spec, familyIdx int, b *Benchmark) []string {
	nCols := 4 + rng.Intn(4)
	cols := make([]colGen, nCols)
	perm := rng.Perm(len(conceptPool))
	for i := 0; i < nCols; i++ {
		cols[i] = conceptPool[perm[i%len(perm)]]
	}
	// Master rows for the concept; variants draw horizontal slices.
	// Each family gets a distinct value domain — a numeric scale factor
	// and a categorical sub-vocabulary — mirroring how real benchmark
	// families come from different source tables, so content similarity
	// discriminates families rather than column concepts.
	masterRows := spec.RowsPerTable * 3
	familyScale := math.Pow(10, 0.4*float64(familyIdx%8))
	master := make([][]string, nCols)
	for c := range cols {
		master[c] = make([]string, masterRows)
		vocab := map[string]string{}
		for r := 0; r < masterRows; r++ {
			v := cols[c].gen(rng)
			cell := dataframe.ParseCell(v)
			switch cell.Kind {
			case dataframe.Number:
				switch {
				case cell.F == 0 || cell.F == 1:
					// Keep boolean-ish 0/1 encodings intact.
				case cell.F == math.Trunc(cell.F):
					// Keep integer columns integral.
					v = dataframe.NumberCell(math.Round(cell.F * familyScale)).S
				default:
					v = dataframe.NumberCell(cell.F * familyScale).S
				}
			case dataframe.Text:
				// Restrict the family to a halved vocabulary: values
				// hash-mapped outside it are re-rolled once.
				if rep, ok := vocab[v]; ok {
					v = rep
				} else if len(vocab) >= 8 && familyIdx%2 == 1 {
					// Odd families reuse their earliest values, shrinking
					// the domain and separating it from even families.
					for k := range vocab {
						v = vocab[k]
						break
					}
				} else {
					vocab[v] = v
				}
			}
			master[c][r] = v
		}
	}
	nTables := spec.TablesPerFamily - 1 + rng.Intn(3)
	if nTables < 2 {
		nTables = 2
	}
	var members []string
	for t := 0; t < nTables; t++ {
		name := fmt.Sprintf("f%02d_t%02d.csv", familyIdx, t)
		df := dataframe.New(name)
		// Vertical projection: keep a random subset (at least half).
		keep := make([]bool, nCols)
		kept := 0
		for c := range keep {
			if rng.Float64() < 0.8 {
				keep[c] = true
				kept++
			}
		}
		if kept < (nCols+1)/2 {
			for c := range keep {
				keep[c] = true
			}
		}
		// Horizontal slice.
		start := rng.Intn(masterRows - spec.RowsPerTable/2)
		rows := spec.RowsPerTable/2 + rng.Intn(spec.RowsPerTable)
		if start+rows > masterRows {
			rows = masterRows - start
		}
		for c := range cols {
			if !keep[c] {
				continue
			}
			colName := cols[c].name
			if t > 0 && len(cols[c].synonyms) > 0 && rng.Float64() < 0.5 {
				colName = cols[c].synonyms[rng.Intn(len(cols[c].synonyms))]
			}
			// Ensure unique names within a table.
			base, n := colName, 1
			for df.HasColumn(colName) {
				n++
				colName = fmt.Sprintf("%s_%d", base, n)
			}
			unit := 1.0
			if t > 0 && cols[c].unitScale != 0 && rng.Float64() < 0.3 {
				unit = cols[c].unitScale
			}
			s := &dataframe.Series{Name: colName}
			for r := start; r < start+rows; r++ {
				cell := dataframe.ParseCell(master[c][r])
				if unit != 1 && cell.Kind == dataframe.Number {
					cell = dataframe.NumberCell(cell.F * unit)
				}
				s.Cells = append(s.Cells, cell)
			}
			df.AddColumn(s)
		}
		b.Tables = append(b.Tables, df)
		b.Dataset[name] = fmt.Sprintf("family_%02d", familyIdx)
		members = append(members, name)
	}
	return members
}

func generateNoiseTable(rng *rand.Rand, spec Spec, idx int) *dataframe.DataFrame {
	name := fmt.Sprintf("noise_%02d.csv", idx)
	df := dataframe.New(name)
	nCols := 3 + rng.Intn(4)
	rows := spec.RowsPerTable/2 + rng.Intn(spec.RowsPerTable)
	for c := 0; c < nCols; c++ {
		// Noise tables use distinct column names and value ranges so they
		// are not unionable with family tables.
		colName := fmt.Sprintf("nz_%s_%d", randWord(rng), c)
		s := &dataframe.Series{Name: colName}
		gen := noiseGen(rng)
		for r := 0; r < rows; r++ {
			s.Cells = append(s.Cells, dataframe.ParseCell(gen(rng)))
		}
		df.AddColumn(s)
	}
	return df
}

func noiseGen(rng *rand.Rand) func(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return normal(float64(rng.Intn(1000000)), float64(1+rng.Intn(1000)), 3)
	case 1:
		return codes(randWord(rng), 100000)
	case 2:
		return uniformInt(-100000, 100000)
	default:
		return func(rng *rand.Rand) string { return randWord(rng) + randWord(rng) }
	}
}

var noiseSyllables = []string{"zor", "qua", "vex", "blu", "kri", "plo", "dra", "mux", "fen", "gla"}

func randWord(rng *rand.Rand) string {
	var sb strings.Builder
	for i := 0; i < 2+rng.Intn(2); i++ {
		sb.WriteString(noiseSyllables[rng.Intn(len(noiseSyllables))])
	}
	return sb.String()
}

// SizeBytes estimates the benchmark's raw CSV footprint.
func (b *Benchmark) SizeBytes() int64 {
	var total int64
	for _, df := range b.Tables {
		for i := 0; i < df.NumCols(); i++ {
			col := df.ColumnAt(i)
			total += int64(len(col.Name))
			for _, c := range col.Cells {
				total += int64(len(c.S)) + 1
			}
		}
	}
	return total
}

// TotalColumns returns the number of columns across all tables.
func (b *Benchmark) TotalColumns() int {
	n := 0
	for _, df := range b.Tables {
		n += df.NumCols()
	}
	return n
}

// AvgRows returns the average rows per table.
func (b *Benchmark) AvgRows() float64 {
	if len(b.Tables) == 0 {
		return 0
	}
	total := 0
	for _, df := range b.Tables {
		total += df.NumRows()
	}
	return float64(total) / float64(len(b.Tables))
}

// AvgUnionable returns the average ground-truth unionable count over query
// tables.
func (b *Benchmark) AvgUnionable() float64 {
	if len(b.QueryTables) == 0 {
		return 0
	}
	total := 0
	for _, q := range b.QueryTables {
		total += len(b.GroundTruth[q])
	}
	return float64(total) / float64(len(b.QueryTables))
}
