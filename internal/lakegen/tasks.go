package lakegen

import (
	"fmt"
	"math"
	"math/rand"

	"kglids/internal/dataframe"
)

// TaskDataset is one supervised dataset with an associated ML task, used
// by the cleaning (Table 5), transformation (Table 6), and AutoML
// (Figure 9) evaluations.
type TaskDataset struct {
	ID     int
	Name   string
	Frame  *dataframe.DataFrame
	Target string
	// Task is "binary" or "multiclass".
	Task string
}

// TaskSpec controls supervised dataset generation.
type TaskSpec struct {
	ID          int
	Name        string
	Rows        int
	NumFeatures int
	CatFeatures int
	Classes     int
	NullRate    float64 // fraction of cells nulled in feature columns
	Skew        bool    // lognormal feature scales (transform targets)
	Seed        int64
}

// GenerateTask builds one classification dataset: informative Gaussian
// numeric features per class, categorical features correlated with the
// class, plus noise features and optional injected nulls.
func GenerateTask(spec TaskSpec) *TaskDataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	df := dataframe.New(spec.Name)
	classes := spec.Classes
	if classes < 2 {
		classes = 2
	}
	y := make([]int, spec.Rows)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	// Informative numeric features: class-shifted Gaussians, optionally
	// exponentiated for skew.
	for f := 0; f < spec.NumFeatures; f++ {
		s := &dataframe.Series{Name: fmt.Sprintf("num_%d", f)}
		informative := f < (spec.NumFeatures+1)/2
		scale := 1.0 + rng.Float64()*9
		for i := 0; i < spec.Rows; i++ {
			v := rng.NormFloat64()
			if informative {
				v += float64(y[i]) * (1.2 + 0.3*float64(f%3))
			}
			v *= scale
			if spec.Skew {
				v = math.Exp(v / (2 * scale) * 2)
			}
			s.Cells = append(s.Cells, dataframe.NumberCell(round3(v)))
		}
		df.AddColumn(s)
	}
	catPool := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for f := 0; f < spec.CatFeatures; f++ {
		s := &dataframe.Series{Name: fmt.Sprintf("cat_%d", f)}
		for i := 0; i < spec.Rows; i++ {
			// Correlate category with class 60% of the time.
			idx := rng.Intn(len(catPool))
			if rng.Float64() < 0.6 {
				idx = (y[i]*2 + rng.Intn(2)) % len(catPool)
			}
			s.Cells = append(s.Cells, dataframe.TextCell(catPool[idx]))
		}
		df.AddColumn(s)
	}
	// Inject nulls into feature columns.
	if spec.NullRate > 0 {
		for c := 0; c < df.NumCols(); c++ {
			col := df.ColumnAt(c)
			for i := range col.Cells {
				if rng.Float64() < spec.NullRate {
					col.Cells[i] = dataframe.NullCell()
				}
			}
		}
	}
	tgt := &dataframe.Series{Name: "target"}
	for i := 0; i < spec.Rows; i++ {
		tgt.Cells = append(tgt.Cells, dataframe.NumberCell(float64(y[i])))
	}
	df.AddColumn(tgt)
	task := "binary"
	if classes > 2 {
		task = "multiclass"
	}
	return &TaskDataset{ID: spec.ID, Name: spec.Name, Frame: df, Target: "target", Task: task}
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// CleaningSuite generates the 13 datasets of Table 5 (sorted by increasing
// size; the last three are large enough to OOM HoloClean at the scaled
// memory ceiling).
func CleaningSuite() []*TaskDataset {
	names := []string{
		"hepatitis", "horsecolic", "housevotes84", "breastcancerwisconsin",
		"credit", "cleveland_heart_disease", "titanic", "creditg", "jm1",
		"adult", "higgs", "APSFailure", "albert",
	}
	rows := []int{150, 300, 420, 560, 690, 900, 890, 1000, 2000, 4000, 9000, 12000, 16000}
	feats := []int{6, 8, 8, 7, 6, 8, 9, 8, 10, 8, 12, 16, 14}
	out := make([]*TaskDataset, len(names))
	for i, name := range names {
		classes := 2
		if name == "cleveland_heart_disease" {
			classes = 5 // the paper's hardest multi-class cleaning set
		}
		out[i] = GenerateTask(TaskSpec{
			ID:          i + 1,
			Name:        name,
			Rows:        rows[i],
			NumFeatures: feats[i],
			CatFeatures: 2,
			Classes:     classes,
			NullRate:    0.08,
			Seed:        int64(2000 + i),
		})
	}
	return out
}

// TransformSuite generates the 17 datasets of Table 6 (IDs 14-30; skewed
// features so transformations matter; the largest ones time out AutoLearn).
func TransformSuite() []*TaskDataset {
	names := []string{
		"fertility_Diagnosis", "haberman", "wine", "Ecoli", "pima diabetes",
		"Bank Note", "ionosphere", "sonar", "Abalone", "libras", "waveform",
		"letter recognition", "opticaldigits", "featurepixel", "shuttle",
		"featurefourier", "poker",
	}
	rows := []int{100, 300, 180, 340, 770, 1370, 350, 210, 4170, 360, 5000, 8000, 5600, 2000, 14500, 2000, 11000}
	feats := []int{8, 3, 13, 7, 8, 4, 12, 14, 8, 12, 21, 16, 20, 24, 9, 19, 10}
	classes := []int{2, 2, 3, 4, 2, 2, 2, 2, 4, 5, 3, 6, 5, 5, 3, 5, 4}
	// CI scale: cap rows so the full suite runs in seconds while keeping
	// relative ordering; poker stays the largest (originally ~1M rows,
	// the dataset that OOMs AutoLearn in the paper).
	out := make([]*TaskDataset, len(names))
	for i, name := range names {
		r := rows[i]
		if r > 3000 {
			r = 3000 + (r-3000)/8
		}
		if name == "poker" {
			r = 5000
		}
		out[i] = GenerateTask(TaskSpec{
			ID:          14 + i,
			Name:        name,
			Rows:        r,
			NumFeatures: feats[i],
			CatFeatures: 0,
			Classes:     classes[i],
			NullRate:    0,
			Skew:        true,
			Seed:        int64(3000 + i),
		})
	}
	return out
}

// AutoMLSuite generates the 24 datasets of Figure 9 (IDs drawn from the
// paper's x-axis: 11 multiclass + 13 binary).
func AutoMLSuite() []*TaskDataset {
	multi := []int{41, 45, 22, 39, 46, 37, 43, 42, 47, 38, 40}
	binary := []int{32, 44, 9, 35, 51, 36, 13, 33, 48, 31, 50, 34, 49, 12}
	var out []*TaskDataset
	for i, id := range multi {
		out = append(out, GenerateTask(TaskSpec{
			ID:          id,
			Name:        fmt.Sprintf("automl_multi_%d", id),
			Rows:        400 + i*120,
			NumFeatures: 6 + i%5,
			CatFeatures: 1,
			Classes:     3 + i%3,
			Seed:        int64(4000 + id),
		}))
	}
	for i, id := range binary {
		out = append(out, GenerateTask(TaskSpec{
			ID:          id,
			Name:        fmt.Sprintf("automl_bin_%d", id),
			Rows:        400 + i*100,
			NumFeatures: 6 + i%6,
			CatFeatures: 2,
			Classes:     2,
			Seed:        int64(5000 + id),
		}))
	}
	return out
}
