package lakegen

import (
	"fmt"
	"math/rand"
	"sort"

	"kglids/internal/dataframe"
)

// EvalSpec controls ground-truth evaluation-lake generation: a family-based
// benchmark (unionable ground truth by construction, as in Generate) with
// additional joinable pairs planted across families. Each planted pair gets
// a shared key column — same name, same value domain — appended to two
// tables from different families, so the pair is joinable by construction
// without becoming unionable (one column out of many).
type EvalSpec struct {
	Base Spec
	// JoinPairs is the number of cross-family joinable pairs to plant.
	JoinPairs int
	// KeyCardinality is the distinct-value count of each planted key
	// column (small enough that both sides of a pair share most values).
	KeyCardinality int
}

// EvalLake is a generated lake with both unionable and joinable ground
// truth. Unionable truth is family membership (Benchmark.GroundTruth);
// joinable truth is family membership plus the planted key pairs — family
// members share column domains and are therefore joinable by construction
// too.
type EvalLake struct {
	*Benchmark
	// JoinTruth maps a table name to the tables joinable with it.
	JoinTruth map[string][]string
	// PlantedJoins lists the cross-family pairs that share a key column.
	PlantedJoins [][2]string
}

// QuickEvalSpec is the CI-scale evaluation lake: small enough that the
// full quality sweep (platform + every vendored baseline) runs in seconds,
// large enough that precision and recall discriminate between methods.
var QuickEvalSpec = EvalSpec{
	Base: Spec{
		Name: "eval-quick", Families: 5, TablesPerFamily: 4, NoiseTables: 6,
		RowsPerTable: 120, QueryTables: 8, Seed: 71,
	},
	JoinPairs:      4,
	KeyCardinality: 24,
}

// FullEvalSpec is the full evaluation lake, scaled like the TUS replica.
var FullEvalSpec = EvalSpec{
	Base: Spec{
		Name: "eval-full", Families: 10, TablesPerFamily: 5, NoiseTables: 14,
		RowsPerTable: 200, QueryTables: 14, Seed: 72,
	},
	JoinPairs:      8,
	KeyCardinality: 32,
}

// GenerateEval builds an evaluation lake: the base family benchmark plus
// planted joinable key columns and the combined join ground truth.
func GenerateEval(spec EvalSpec) *EvalLake {
	b := Generate(spec.Base)
	lake := &EvalLake{Benchmark: b, JoinTruth: map[string][]string{}}

	// Family membership is joinable ground truth: members share column
	// value domains (slices of one master table), so they join on those
	// columns by construction.
	for table, others := range b.GroundTruth {
		lake.JoinTruth[table] = append([]string(nil), others...)
	}

	// Group family tables by dataset to pick planting sites. Datasets are
	// "family_NN" for family tables and "noise_NN" for noise tables.
	byFamily := map[string][]string{}
	var families []string
	for _, df := range b.Tables {
		ds := b.Dataset[df.Name]
		if len(ds) >= 7 && ds[:7] == "family_" {
			if _, ok := byFamily[ds]; !ok {
				families = append(families, ds)
			}
			byFamily[ds] = append(byFamily[ds], df.Name)
		}
	}
	sort.Strings(families)
	for _, f := range families {
		sort.Strings(byFamily[f])
	}
	if len(families) < 2 {
		return lake
	}

	byName := map[string]*dataframe.DataFrame{}
	for _, df := range b.Tables {
		byName[df.Name] = df
	}

	rng := rand.New(rand.NewSource(spec.Base.Seed + 7919))
	for p := 0; p < spec.JoinPairs; p++ {
		famA := byFamily[families[p%len(families)]]
		famB := byFamily[families[(p+1)%len(families)]]
		a := famA[(p/len(families))%len(famA)]
		c := famB[(p/len(families))%len(famB)]
		if a == c {
			continue
		}
		plantKey(rng, p, spec.KeyCardinality, byName[a], byName[c])
		lake.PlantedJoins = append(lake.PlantedJoins, [2]string{a, c})
		lake.JoinTruth[a] = appendUnique(lake.JoinTruth[a], c)
		lake.JoinTruth[c] = appendUnique(lake.JoinTruth[c], a)
	}
	return lake
}

// plantKey appends one shared key column to both tables: same column name,
// values drawn from the same small pool, so the pair gets a high-certainty
// content-similarity edge (joinable) while the tables remain non-unionable
// overall. The name is a pair-unique nonsense word — pairs must not share
// name tokens, or label-similarity edges would link every planted column
// lake-wide and pollute the unionable ground truth.
func plantKey(rng *rand.Rand, pairIdx, cardinality int, a, c *dataframe.DataFrame) {
	if cardinality < 2 {
		cardinality = 2
	}
	pool := make([]string, cardinality)
	for i := range pool {
		pool[i] = fmt.Sprintf("pk%02d-%05d", pairIdx, rng.Intn(90000)+10000)
	}
	name := noiseSyllables[(3*pairIdx)%len(noiseSyllables)] +
		noiseSyllables[(7*pairIdx+1)%len(noiseSyllables)] +
		noiseSyllables[(11*pairIdx+5)%len(noiseSyllables)]
	for _, df := range []*dataframe.DataFrame{a, c} {
		colName := name
		for n := 2; df.HasColumn(colName); n++ {
			colName = fmt.Sprintf("%s_%d", name, n)
		}
		s := &dataframe.Series{Name: colName}
		for r := 0; r < df.NumRows(); r++ {
			s.Cells = append(s.Cells, dataframe.ParseCell(pool[rng.Intn(len(pool))]))
		}
		df.AddColumn(s)
	}
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
