package lakegen

import (
	"fmt"
	"math/rand"

	"kglids/internal/dataframe"
)

// WideStream is the generator behind the lakegen:// connector: the same
// family/slot structure as WideLake (families of seven tables sharing
// labels and value domains, slots rotating through the fine-grained
// types), but seeded per table, so any single table can be produced
// without generating the lake before it. That independence is what lets
// the connector stream a lake far larger than memory and lets the
// equivalence tests materialize the identical data for the in-memory
// baseline. Cells are drawn in row-major order (rows outer, slots
// inner); Materialize follows the same order, so streamed and
// materialized tables are byte-identical.
type WideStream struct {
	Tables int
	Cols   int
	Rows   int
	Seed   int64
}

// TableName returns the table (file) name of table t.
func (w WideStream) TableName(t int) string { return fmt.Sprintf("stream_%04d.csv", t) }

// DatasetName groups tables into datasets of five, like WideLake.
func (w WideStream) DatasetName(t int) string { return fmt.Sprintf("wide_ds_%02d", t/5) }

// Columns returns the column labels of table t (shared within its
// family of seven, disjoint across families).
func (w WideStream) Columns(t int) []string {
	f := t / 7
	cols := make([]string, w.Cols)
	for slot := range cols {
		cols[slot] = fmt.Sprintf("%s_%s", letterWord(slot, 2), letterWord(f, 3))
	}
	return cols
}

// TableRNG returns the dedicated deterministic generator for table t.
func (w WideStream) TableRNG(t int) *rand.Rand {
	return rand.New(rand.NewSource(w.Seed*1_000_003 + int64(t)))
}

// Value draws the next cell (lexical form) for table t, column slot,
// advancing rng. Callers must draw in row-major order to reproduce the
// canonical table.
func (w WideStream) Value(rng *rand.Rand, t, slot int) string {
	return wideValue(rng, t/7, slot)
}

// Materialize builds the whole lake in memory — the baseline the
// streaming path is benchmarked and equivalence-tested against. Only
// call this for lakes that fit in memory; the connector exists so
// production paths never have to.
func (w WideStream) Materialize() *Benchmark {
	b := &Benchmark{
		Name:    fmt.Sprintf("WideStream-%dx%dx%d", w.Tables, w.Cols, w.Rows),
		Dataset: map[string]string{},
	}
	for t := 0; t < w.Tables; t++ {
		df := dataframe.New(w.TableName(t))
		series := make([]*dataframe.Series, w.Cols)
		for slot, label := range w.Columns(t) {
			series[slot] = &dataframe.Series{Name: label}
		}
		rng := w.TableRNG(t)
		for r := 0; r < w.Rows; r++ {
			for slot := 0; slot < w.Cols; slot++ {
				series[slot].Cells = append(series[slot].Cells, dataframe.ParseCell(w.Value(rng, t, slot)))
			}
		}
		for _, s := range series {
			df.AddColumn(s)
		}
		b.Tables = append(b.Tables, df)
		b.Dataset[df.Name] = w.DatasetName(t)
	}
	return b
}

// CellCount returns the total number of cells the stream will produce —
// the lake-size figure the connectors bench compares against the chunk
// budget.
func (w WideStream) CellCount() int64 {
	return int64(w.Tables) * int64(w.Cols) * int64(w.Rows)
}
