package lakegen

import (
	"fmt"
	"math/rand"

	"kglids/internal/dataframe"
)

// WideLake generates a lake that is wide in columns rather than rich in
// rows — the regime where Algorithm 3's pairwise cost dominates and the
// blocked similarity-edge pipeline earns its keep. Tables are grouped into
// families of seven; a family shares column labels and value domains (so
// columns match their family counterparts: duplicate labels, label and
// content similarity edges), while different families use disjoint labels
// and domains (so the overwhelming majority of same-type cross-family
// pairs fail every threshold — the pairs candidate pruning should never
// generate). Column slots rotate through string, int, float, boolean, and
// date so every fine-grained type contributes a block.
//
// tables and colsPerTable control the width; rows is the per-table row
// count. Tables are grouped into datasets of five.
func WideLake(tables, colsPerTable, rows int, seed int64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	if colsPerTable < 1 {
		colsPerTable = 1
	}
	const familySize = 7
	b := &Benchmark{
		Name:        fmt.Sprintf("Wide-%dx%d", tables, colsPerTable),
		Dataset:     map[string]string{},
		GroundTruth: map[string][]string{},
	}
	for t := 0; t < tables; t++ {
		f := t / familySize
		df := dataframe.New(fmt.Sprintf("wide_%04d.csv", t))
		for slot := 0; slot < colsPerTable; slot++ {
			label := fmt.Sprintf("%s_%s", letterWord(slot, 2), letterWord(f, 3))
			s := &dataframe.Series{Name: label}
			for r := 0; r < rows; r++ {
				s.Cells = append(s.Cells, dataframe.ParseCell(wideValue(rng, f, slot)))
			}
			df.AddColumn(s)
		}
		b.Tables = append(b.Tables, df)
		b.Dataset[df.Name] = fmt.Sprintf("wide_ds_%02d", t/5)
	}
	return b
}

// wideValue draws one cell for a (family, slot) column. String slots
// dominate (the issue's motivating regime — wide lakes are mostly string
// columns) and draw from family+slot-private token pools; numeric slots
// vary distribution shape and location per family so unrelated numeric
// columns separate too; booleans and dates get family-specific ratios and
// windows.
func wideValue(rng *rand.Rand, f, slot int) string {
	switch slot % 6 {
	case 2: // numeric with family-specific shape
		switch (f*7 + slot) % 4 {
		case 0: // uniform over a private range
			return fmt.Sprintf("%d", (f*31+slot)*100+rng.Intn(50))
		case 1: // normal around a private mean
			return fmt.Sprintf("%.2f", float64(f*17+slot*5)+rng.NormFloat64()*float64(2+f%5))
		case 2: // heavy-tailed
			return fmt.Sprintf("%.2f", 100*float64(1+f%10)*(1+rng.ExpFloat64()))
		default: // bimodal
			base := (f*19 + slot) * 10
			if rng.Intn(2) == 0 {
				return fmt.Sprintf("%d", base+rng.Intn(5))
			}
			return fmt.Sprintf("%d", base+40+rng.Intn(5))
		}
	case 3: // booleans with a family+slot-specific true ratio
		ratio := 0.05 + 0.9*float64((f*13+slot*7)%20)/20
		if rng.Float64() < ratio {
			return "1"
		}
		return "0"
	case 4: // dates in a family-private window
		return fmt.Sprintf("%04d-%02d-%02d", 1900+(f*3+slot)%190, 1+rng.Intn(12), 1+rng.Intn(28))
	default: // string from a family+slot-private token pool
		return fmt.Sprintf("%s_%s_%d", letterWord(f, 3), letterWord(slot, 2), rng.Intn(8))
	}
}

// letterWord encodes i as a lowercase letters-only word of the given
// length (labels must survive tokenization, which strips digits).
func letterWord(i, length int) string {
	buf := make([]byte, length)
	for k := length - 1; k >= 0; k-- {
		buf[k] = byte('a' + i%26)
		i /= 26
	}
	return string(buf)
}
