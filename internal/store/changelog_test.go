package store

import (
	"errors"
	"fmt"
	"testing"

	"kglids/internal/rdf"
)

func TestChangelogSequencesMutations(t *testing.T) {
	st := New()
	cl := st.EnableChangelog(0)
	if again := st.EnableChangelog(0); again != cl {
		t.Fatal("EnableChangelog is not idempotent")
	}

	g := rdf.Resource("g")
	st.AddBatch([]rdf.Quad{
		quad("s1", "p", "o1", g),
		quad("s2", "p", "o2", g),
	})
	st.RemoveBatch([]rdf.Quad{quad("s1", "p", "o1", g)})
	st.RemoveGraph(g)

	if cl.Head() != 3 || cl.Floor() != 0 {
		t.Fatalf("head/floor = %d/%d, want 3/0", cl.Head(), cl.Floor())
	}
	view, err := cl.Since(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !view.AtHead || len(view.Records) != 3 {
		t.Fatalf("Since(0) = %d records, atHead=%v", len(view.Records), view.AtHead)
	}
	wantKinds := []ChangeKind{ChangeAddQuads, ChangeRemoveQuads, ChangeRemoveGraph}
	for i, rec := range view.Records {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Kind != wantKinds[i] {
			t.Errorf("record %d: kind %q, want %q", i, rec.Kind, wantKinds[i])
		}
		if rec.TS == 0 {
			t.Errorf("record %d: zero timestamp", i)
		}
	}
	if got := view.Records[0].Quads; len(got) != 2 {
		t.Errorf("add record carries %d quads, want the full batch of 2", len(got))
	}
	// Removing an absent quad must not log a record (nothing was applied).
	st.RemoveBatch([]rdf.Quad{quad("absent", "p", "o", g)})
	if cl.Head() != 3 {
		t.Errorf("no-op removal advanced head to %d", cl.Head())
	}
}

func TestChangelogCursorSemantics(t *testing.T) {
	st := New()
	cl := st.EnableChangelog(0)
	g := rdf.Resource("g")
	for i := 0; i < 5; i++ {
		st.AddBatch([]rdf.Quad{quad(fmt.Sprintf("s%d", i), "p", "o", g)})
	}

	// Pagination: max bounds each page, AtHead only on the last.
	view, err := cl.Since(0, 2)
	if err != nil || len(view.Records) != 2 || view.AtHead {
		t.Fatalf("Since(0,2) = %d records, atHead=%v, err=%v", len(view.Records), view.AtHead, err)
	}
	view, err = cl.Since(2, 0)
	if err != nil || len(view.Records) != 3 || !view.AtHead {
		t.Fatalf("Since(2) = %d records, atHead=%v, err=%v", len(view.Records), view.AtHead, err)
	}

	// cursor == head: empty at-head page (poll steady state).
	view, err = cl.Since(5, 0)
	if err != nil || len(view.Records) != 0 || !view.AtHead {
		t.Fatalf("Since(head) = %d records, atHead=%v, err=%v", len(view.Records), view.AtHead, err)
	}

	// cursor beyond head: the follower holds history this log never wrote.
	if _, err := cl.Since(6, 0); !errors.Is(err, ErrFutureCursor) {
		t.Fatalf("Since(head+1) err = %v, want ErrFutureCursor", err)
	}

	// After compaction, cursors below the floor are gone.
	cl.CompactTo(3)
	if cl.Floor() != 3 {
		t.Fatalf("floor = %d after CompactTo(3)", cl.Floor())
	}
	if _, err := cl.Since(2, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Since(below floor) err = %v, want ErrCompacted", err)
	}
	if view, err := cl.Since(3, 0); err != nil || len(view.Records) != 2 {
		t.Fatalf("Since(floor) = %d records, err=%v, want the 2 retained", len(view.Records), err)
	}
	// CompactTo beyond head clamps; floor never passes head.
	cl.CompactTo(99)
	if cl.Floor() != 5 || cl.Head() != 5 {
		t.Fatalf("after CompactTo(99): floor/head = %d/%d, want 5/5", cl.Floor(), cl.Head())
	}
}

func TestChangelogRetentionBudget(t *testing.T) {
	st := New()
	cl := st.EnableChangelog(6) // tiny budget: ~3 single-quad records
	g := rdf.Resource("g")
	for i := 0; i < 10; i++ {
		st.AddBatch([]rdf.Quad{quad(fmt.Sprintf("s%d", i), "p", "o", g)})
	}
	if cl.Head() != 10 {
		t.Fatalf("head = %d, want 10", cl.Head())
	}
	if cl.Floor() == 0 {
		t.Fatal("retention budget never compacted")
	}
	view, err := cl.Since(cl.Floor(), 0)
	if err != nil {
		t.Fatal(err)
	}
	weight := 0
	for _, rec := range view.Records {
		weight += len(rec.Quads) + 1
	}
	if weight > 6 {
		t.Errorf("retained weight %d exceeds budget 6", weight)
	}

	// One oversized batch still lands: the newest record is always kept.
	big := make([]rdf.Quad, 50)
	for i := range big {
		big[i] = quad(fmt.Sprintf("big%d", i), "p", "o", g)
	}
	st.AddBatch(big)
	view, err = cl.Since(cl.Floor(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Records) != 1 || len(view.Records[0].Quads) != 50 {
		t.Fatalf("oversized batch not retained as the sole record: %d records", len(view.Records))
	}
}

func TestChangelogSeedFloor(t *testing.T) {
	st := New()
	cl := st.EnableChangelog(0)
	cl.SeedFloor(41)
	if cl.Head() != 41 || cl.Floor() != 41 {
		t.Fatalf("seeded head/floor = %d/%d, want 41/41", cl.Head(), cl.Floor())
	}
	st.AddBatch([]rdf.Quad{quad("s", "p", "o", rdf.Resource("g"))})
	view, err := cl.Since(41, 0)
	if err != nil || len(view.Records) != 1 || view.Records[0].Seq != 42 {
		t.Fatalf("record after seeded floor: %+v, err=%v (want seq 42)", view.Records, err)
	}
	// Seeding is a boot-time operation only: no-op once records exist.
	cl.SeedFloor(100)
	if cl.Head() != 42 {
		t.Fatalf("SeedFloor after records moved head to %d", cl.Head())
	}
}

func TestChangelogGenerationMatchesStore(t *testing.T) {
	st := New()
	cl := st.EnableChangelog(0)
	g := rdf.Resource("g")
	st.AddBatch([]rdf.Quad{quad("a", "p", "o", g)})
	st.AddBatch([]rdf.Quad{quad("b", "p", "o", g)})
	st.RemoveGraph(g)
	view, err := cl.Since(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := view.Records[len(view.Records)-1]
	if last.Gen != st.Generation() {
		t.Errorf("final record gen %d != store generation %d", last.Gen, st.Generation())
	}
	for i := 1; i < len(view.Records); i++ {
		if view.Records[i].Gen <= view.Records[i-1].Gen {
			t.Errorf("generations not increasing: %d then %d", view.Records[i-1].Gen, view.Records[i].Gen)
		}
	}
}
