// Package store implements the KGLiDS Storage substrate (paper Section 2.2):
// a dictionary-encoded, index-backed RDF-star quad store with named graphs.
// It substitutes for GraphDB in the original system.
package store

import (
	"fmt"
	"runtime"
	"sync"

	"kglids/internal/rdf"
)

// TermID is a dense integer handle for an interned term. ID 0 is reserved
// for "unbound".
type TermID uint32

// Dictionary interns terms to dense integer IDs and back. It is safe for
// concurrent use.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]TermID
	terms []rdf.Term // terms[id-1] is the term for id
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]TermID)}
}

// Intern returns the ID for t, assigning a new one if needed.
func (d *Dictionary) Intern(t rdf.Term) TermID {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = TermID(len(d.terms))
	d.byKey[key] = id
	return id
}

// Lookup returns the ID for t without interning. The second result reports
// whether the term is known.
func (d *Dictionary) Lookup(t rdf.Term) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[t.Key()]
	return id, ok
}

// Term returns the term for a previously interned ID.
func (d *Dictionary) Term(id TermID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id-1]
}

// BulkLoad fills an empty dictionary with terms in ID order (terms[i] is
// assigned ID i+1), the snapshot-restore counterpart of Terms. It rejects
// non-empty dictionaries and duplicate terms (which would corrupt lookups).
// Canonical keys are computed by parallel workers (quoted-triple keys are
// long recursive strings, the costly part of restoring a graph with many
// RDF-star annotations); only the map inserts are sequential.
func (d *Dictionary) BulkLoad(terms []rdf.Term) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.terms) != 0 {
		return fmt.Errorf("store: BulkLoad into non-empty dictionary (%d terms)", len(d.terms))
	}
	d.terms = append([]rdf.Term(nil), terms...)

	keys := make([]string, len(terms))
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && len(terms) > 1024 {
		var wg sync.WaitGroup
		chunk := (len(terms) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(terms) {
				break
			}
			hi := min(lo+chunk, len(terms))
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					keys[i] = terms[i].Key()
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i, t := range terms {
			keys[i] = t.Key()
		}
	}
	d.byKey = make(map[string]TermID, len(terms))
	for i, k := range keys {
		d.byKey[k] = TermID(i + 1)
	}
	if len(d.byKey) != len(terms) {
		return fmt.Errorf("store: BulkLoad with %d duplicate terms", len(terms)-len(d.byKey))
	}
	return nil
}

// Terms returns a copy of all interned terms in ID order: Terms()[i] is the
// term with ID i+1. Interning the returned slice in order into an empty
// dictionary reproduces the same ID assignment, which is what the snapshot
// codec relies on.
func (d *Dictionary) Terms() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]rdf.Term(nil), d.terms...)
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}
