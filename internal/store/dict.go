// Package store implements the KGLiDS Storage substrate (paper Section 2.2):
// a dictionary-encoded, index-backed RDF-star quad store with named graphs.
// It substitutes for GraphDB in the original system.
package store

import (
	"sync"

	"kglids/internal/rdf"
)

// TermID is a dense integer handle for an interned term. ID 0 is reserved
// for "unbound".
type TermID uint32

// Dictionary interns terms to dense integer IDs and back. It is safe for
// concurrent use.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[string]TermID
	terms []rdf.Term // terms[id-1] is the term for id
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[string]TermID)}
}

// Intern returns the ID for t, assigning a new one if needed.
func (d *Dictionary) Intern(t rdf.Term) TermID {
	key := t.Key()
	d.mu.RLock()
	id, ok := d.byKey[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.byKey[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = TermID(len(d.terms))
	d.byKey[key] = id
	return id
}

// Lookup returns the ID for t without interning. The second result reports
// whether the term is known.
func (d *Dictionary) Lookup(t rdf.Term) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[t.Key()]
	return id, ok
}

// Term returns the term for a previously interned ID.
func (d *Dictionary) Term(id TermID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id-1]
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}
