package store

import (
	"fmt"
	"testing"
	"testing/quick"

	"kglids/internal/rdf"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern(rdf.IRI("x"))
	b := d.Intern(rdf.IRI("x"))
	if a != b {
		t.Errorf("same term interned to %d and %d", a, b)
	}
	c := d.Intern(rdf.String("x"))
	if c == a {
		t.Error("literal and IRI share an ID")
	}
	if got := d.Term(a); !got.Equal(rdf.IRI("x")) {
		t.Errorf("Term(%d) = %v", a, got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if _, ok := d.Lookup(rdf.IRI("missing")); ok {
		t.Error("Lookup found missing term")
	}
}

func TestAddAndMatch(t *testing.T) {
	st := New()
	s, p, o := rdf.Resource("s"), rdf.Ontology("p"), rdf.String("o")
	st.Add(rdf.T(s, p, o))
	st.Add(rdf.T(s, p, o)) // duplicate
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (dup ignored)", st.Len())
	}
	for name, pat := range map[string][3]rdf.Term{
		"spo": {s, p, o},
		"s??": {s, Wildcard, Wildcard},
		"?p?": {Wildcard, p, Wildcard},
		"??o": {Wildcard, Wildcard, o},
		"sp?": {s, p, Wildcard},
		"s?o": {s, Wildcard, o},
		"?po": {Wildcard, p, o},
		"???": {Wildcard, Wildcard, Wildcard},
	} {
		got := st.Match(pat[0], pat[1], pat[2], rdf.DefaultGraph)
		if len(got) != 1 || !got[0].Equal(rdf.T(s, p, o)) {
			t.Errorf("pattern %s: got %v", name, got)
		}
	}
	if got := st.Match(rdf.Resource("nope"), Wildcard, Wildcard, rdf.DefaultGraph); len(got) != 0 {
		t.Errorf("unknown subject matched %v", got)
	}
}

func TestNamedGraphs(t *testing.T) {
	st := New()
	g1, g2 := rdf.Resource("pipeline/1"), rdf.Resource("pipeline/2")
	st.AddToGraph(rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b")), g1)
	st.AddToGraph(rdf.T(rdf.IRI("c"), rdf.IRI("p"), rdf.IRI("d")), g2)

	if n := st.GraphLen(g1); n != 1 {
		t.Errorf("GraphLen(g1) = %d", n)
	}
	// Union query sees both.
	if got := st.Match(Wildcard, rdf.IRI("p"), Wildcard, rdf.DefaultGraph); len(got) != 2 {
		t.Errorf("union match = %d triples, want 2", len(got))
	}
	// Graph-restricted query sees one.
	if got := st.Match(Wildcard, rdf.IRI("p"), Wildcard, g1); len(got) != 1 {
		t.Errorf("g1 match = %d triples, want 1", len(got))
	}
	if gs := st.Graphs(); len(gs) != 2 {
		t.Errorf("Graphs() = %v", gs)
	}
}

func TestSameTripleInTwoGraphs(t *testing.T) {
	st := New()
	tr := rdf.T(rdf.IRI("a"), rdf.IRI("p"), rdf.IRI("b"))
	st.AddToGraph(tr, rdf.Resource("g1"))
	st.AddToGraph(tr, rdf.Resource("g2"))
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2 (one per graph)", st.Len())
	}
	// Union index should report the triple once per match call.
	if got := st.Match(rdf.IRI("a"), Wildcard, Wildcard, rdf.DefaultGraph); len(got) != 1 {
		t.Errorf("union dedup: got %d", len(got))
	}
}

func TestAnnotation(t *testing.T) {
	st := New()
	tr := rdf.T(rdf.Resource("colA"), rdf.PropContentSimilarity, rdf.Resource("colB"))
	st.AddAnnotated(tr, rdf.DefaultGraph, rdf.PropCertainty, rdf.Float(0.92))
	v, ok := st.Annotation(tr, rdf.PropCertainty)
	if !ok {
		t.Fatal("annotation not found")
	}
	if f, _ := v.AsFloat(); f != 0.92 {
		t.Errorf("certainty = %v", v)
	}
	_, ok = st.Annotation(rdf.T(rdf.Resource("x"), rdf.PropContentSimilarity, rdf.Resource("y")), rdf.PropCertainty)
	if ok {
		t.Error("found annotation for unannotated triple")
	}
}

func TestCountsAndStats(t *testing.T) {
	st := New()
	for i := 0; i < 10; i++ {
		st.Add(rdf.T(rdf.Resource(fmt.Sprintf("s%d", i)), rdf.RDFType, rdf.ClassColumn))
	}
	if n := st.CountMatch(Wildcard, rdf.RDFType, rdf.ClassColumn, rdf.DefaultGraph); n != 10 {
		t.Errorf("CountMatch = %d", n)
	}
	if n := st.NodeCount(); n != 11 { // 10 subjects + 1 class
		t.Errorf("NodeCount = %d", n)
	}
	if n := st.PredicateCount(); n != 1 {
		t.Errorf("PredicateCount = %d", n)
	}
	if st.ApproxBytes() <= 0 {
		t.Error("ApproxBytes not positive")
	}
}

func TestSubjectsObjects(t *testing.T) {
	st := New()
	st.Add(rdf.T(rdf.Resource("t1"), rdf.RDFType, rdf.ClassTable))
	st.Add(rdf.T(rdf.Resource("t2"), rdf.RDFType, rdf.ClassTable))
	st.Add(rdf.T(rdf.Resource("t1"), rdf.PropName, rdf.String("train.csv")))
	subs := st.Subjects(rdf.RDFType, rdf.ClassTable, rdf.DefaultGraph)
	if len(subs) != 2 {
		t.Errorf("Subjects = %v", subs)
	}
	objs := st.Objects(rdf.Resource("t1"), Wildcard, rdf.DefaultGraph)
	if len(objs) != 2 {
		t.Errorf("Objects = %v", objs)
	}
}

func TestMatchFuncEarlyStop(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		st.Add(rdf.T(rdf.Resource(fmt.Sprintf("s%d", i)), rdf.RDFType, rdf.ClassColumn))
	}
	n := 0
	st.MatchFunc(Wildcard, rdf.RDFType, Wildcard, rdf.DefaultGraph, func(rdf.Triple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d, want 5", n)
	}
}

// Property: every added triple is findable by full pattern, and Len equals
// number of distinct triples added.
func TestQuickAddFind(t *testing.T) {
	f := func(subjects, objects []uint8) bool {
		st := New()
		type key struct{ s, o uint8 }
		distinct := map[key]struct{}{}
		n := min(len(subjects), len(objects))
		for i := 0; i < n; i++ {
			s := rdf.Resource(fmt.Sprintf("s%d", subjects[i]))
			o := rdf.Resource(fmt.Sprintf("o%d", objects[i]))
			st.Add(rdf.T(s, rdf.PropReads, o))
			distinct[key{subjects[i], objects[i]}] = struct{}{}
		}
		if st.Len() != len(distinct) {
			return false
		}
		for k := range distinct {
			got := st.Match(rdf.Resource(fmt.Sprintf("s%d", k.s)), rdf.PropReads, rdf.Resource(fmt.Sprintf("o%d", k.o)), rdf.DefaultGraph)
			if len(got) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCandidateIDs: the parallel executor's morsel domains must cover
// exactly the IDs the matching indexes would enumerate, with the partition
// slot naming the triple position the IDs bind.
func TestCandidateIDs(t *testing.T) {
	st := New()
	for i := 0; i < 6; i++ {
		tbl := rdf.Resource(fmt.Sprintf("t%d", i))
		st.Add(rdf.T(tbl, rdf.RDFType, rdf.ClassTable))
		st.Add(rdf.T(tbl, rdf.PropName, rdf.String(fmt.Sprintf("t%d.csv", i))))
	}
	enc := func(term rdf.Term) TermID {
		id, ok := st.EncodeTerm(term)
		if !ok {
			t.Fatalf("term %v not interned", term)
		}
		return id
	}
	v := st.AcquireView()
	defer v.Close()

	// Object bound: candidates are the subjects reaching it (OSP keys).
	ids, part := v.CandidateIDs(0, enc(rdf.RDFType), enc(rdf.ClassTable), UnionGraph)
	if part != PartitionSubject || len(ids) != 6 {
		t.Fatalf("o-bound: %d ids, partition %d", len(ids), part)
	}
	// Only the predicate bound: candidates are its objects (POS keys).
	ids, part = v.CandidateIDs(0, enc(rdf.PropName), 0, UnionGraph)
	if part != PartitionObject || len(ids) != 6 {
		t.Fatalf("p-bound: %d ids, partition %d", len(ids), part)
	}
	// Nothing bound: candidates are all subjects.
	ids, part = v.CandidateIDs(0, 0, 0, UnionGraph)
	if part != PartitionSubject || len(ids) != 6 {
		t.Fatalf("unbound: %d ids, partition %d", len(ids), part)
	}
	// Subject already bound: nothing to partition.
	if ids, part = v.CandidateIDs(enc(rdf.Resource("t0")), 0, 0, UnionGraph); part != PartitionNone || ids != nil {
		t.Fatalf("s-bound: %d ids, partition %d", len(ids), part)
	}
	// Absent object: empty domain, no partition.
	if ids, part = v.CandidateIDs(0, 0, enc(rdf.PropName), UnionGraph); part != PartitionNone || ids != nil {
		t.Fatalf("absent o: %d ids, partition %d", len(ids), part)
	}
}

func TestConcurrentAdd(t *testing.T) {
	st := New()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				st.Add(rdf.T(rdf.Resource(fmt.Sprintf("w%d-s%d", w, i)), rdf.RDFType, rdf.ClassColumn))
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if st.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", st.Len(), 8*200)
	}
}
