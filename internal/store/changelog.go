package store

import (
	"errors"
	"sync"
	"time"

	"kglids/internal/obs"
	"kglids/internal/rdf"
)

// Changelog metric families: appended record count plus the live head and
// compaction floor, so a scrape shows at a glance how far the log reaches
// back and how fast it grows.
var (
	mChangelogRecords = obs.Default.NewCounter("kglids_changelog_records_total",
		"Mutation records appended to the write-ahead changelog.")
	mChangelogHead = obs.Default.NewGauge("kglids_changelog_head",
		"Sequence number of the newest changelog record.")
	mChangelogFloor = obs.Default.NewGauge("kglids_changelog_floor",
		"Compaction floor: highest sequence number no longer retained.")
	mChangelogQuads = obs.Default.NewGauge("kglids_changelog_retained_quads",
		"Quads held by retained changelog records (the retention weight).")
)

// ChangeKind discriminates the mutation classes a changelog record can
// carry. The string values are the wire `kind` of /api/v1/changelog.
type ChangeKind string

const (
	// ChangeAddQuads is a quad-level insertion batch (AddQuad/AddBatch).
	ChangeAddQuads ChangeKind = "add"
	// ChangeRemoveQuads is a quad-level removal batch.
	ChangeRemoveQuads ChangeKind = "remove"
	// ChangeRemoveGraph drops one named graph outright.
	ChangeRemoveGraph ChangeKind = "remove-graph"
	// ChangeAux carries a platform-level delta (profiles, similarity
	// edges, embeddings) that is not derivable from the quad stream. The
	// payload lives in Aux; the store neither produces nor interprets it.
	ChangeAux ChangeKind = "platform-delta"
)

// ChangeRecord is one entry of the write-ahead mutation changelog. Records
// are immutable once appended; Quads/Graph/Aux must not be modified by
// consumers.
type ChangeRecord struct {
	// Seq is the record's position in the log, starting at floor+1 and
	// strictly increasing by one.
	Seq uint64
	// Gen is the store's mutation generation immediately after this record
	// was applied on the primary. A follower that replays the log observes
	// the same generation after applying the same record — the divergence
	// check of the replication protocol.
	Gen uint64
	// TS is the primary's wall clock at append time (Unix nanoseconds);
	// followers derive their staleness metric from it.
	TS int64
	// Kind selects which of the remaining fields is meaningful.
	Kind ChangeKind
	// Quads is the term-level batch of ChangeAddQuads/ChangeRemoveQuads.
	Quads []rdf.Quad
	// Graph is the named graph of a ChangeRemoveGraph record.
	Graph rdf.Term
	// Aux is the opaque platform delta of a ChangeAux record.
	Aux any
}

// weight is the record's contribution to the retention budget.
func (r ChangeRecord) weight() int { return len(r.Quads) + 1 }

// Changelog retention and cursor errors.
var (
	// ErrCompacted reports a cursor older than the compaction floor: the
	// records it needs are gone and the follower must re-bootstrap from a
	// snapshot. Surfaced as HTTP 410 by /api/v1/changelog.
	ErrCompacted = errors.New("changelog: cursor predates compaction floor; re-snapshot")
	// ErrFutureCursor reports a cursor beyond the head — the follower and
	// primary disagree about history (e.g. the primary was restored from
	// an older snapshot) and the follower must re-bootstrap.
	ErrFutureCursor = errors.New("changelog: cursor beyond head; re-snapshot")
)

// DefaultChangelogRetention is the default retention budget in quads
// (~a few hundred MiB of term strings at metadata-graph densities).
const DefaultChangelogRetention = 1 << 18

// Changelog is a bounded in-memory write-ahead log of store mutations.
// Records floor+1..head are retained; older ones have been compacted away
// (either by the quad-weighted retention budget or by CompactTo after a
// snapshot). It is safe for concurrent use.
type Changelog struct {
	mu sync.Mutex
	// recs[i] has Seq == floor+1+i.
	recs  []ChangeRecord
	floor uint64
	head  uint64
	// retain is the quad-weighted retention budget; weight is the current
	// total weight of recs.
	retain int
	weight int
}

// newChangelog returns an empty log. retain <= 0 uses the default budget.
func newChangelog(retain int) *Changelog {
	if retain <= 0 {
		retain = DefaultChangelogRetention
	}
	return &Changelog{retain: retain}
}

// Head returns the newest record's sequence number (== Floor when empty).
func (cl *Changelog) Head() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.head
}

// Floor returns the compaction floor: the highest sequence number that is
// no longer retained. Valid cursors are Floor()..Head().
func (cl *Changelog) Floor() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.floor
}

// SeedFloor positions an empty log so the next record gets sequence
// pos+1 — the restart path: a primary reloading a snapshot that persisted
// changelog position pos continues the sequence numbering its followers
// already hold. No-op once records exist.
func (cl *Changelog) SeedFloor(pos uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if len(cl.recs) > 0 || pos <= cl.floor {
		return
	}
	cl.floor, cl.head = pos, pos
	mChangelogHead.Set(int64(cl.head))
	mChangelogFloor.Set(int64(cl.floor))
}

// append stamps and retains one record. gen is the store generation after
// the mutation; quad/graph fields are owned by the record from here on.
func (cl *Changelog) append(kind ChangeKind, quads []rdf.Quad, graph rdf.Term, aux any, gen uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.head++
	rec := ChangeRecord{
		Seq: cl.head, Gen: gen, TS: time.Now().UnixNano(),
		Kind: kind, Quads: quads, Graph: graph, Aux: aux,
	}
	cl.recs = append(cl.recs, rec)
	cl.weight += rec.weight()
	// Enforce the retention budget, always keeping the newest record so a
	// single oversized batch cannot empty the log.
	for cl.weight > cl.retain && len(cl.recs) > 1 {
		cl.weight -= cl.recs[0].weight()
		cl.floor = cl.recs[0].Seq
		cl.recs = cl.recs[1:]
	}
	mChangelogRecords.Inc()
	mChangelogHead.Set(int64(cl.head))
	mChangelogFloor.Set(int64(cl.floor))
	mChangelogQuads.Set(int64(cl.weight))
}

// AppendAux records a platform-level delta that the store itself did not
// produce (core.Platform's profile/edge/embedding updates). gen is the
// store generation the delta is consistent with.
func (cl *Changelog) AppendAux(aux any, gen uint64) {
	cl.append(ChangeAux, nil, rdf.Term{}, aux, gen)
}

// LogView is one page of the log: the records after a cursor plus the
// log bounds the consumer needs for pagination and staleness accounting.
type LogView struct {
	Records []ChangeRecord
	// Head and Floor are the log bounds at read time.
	Head, Floor uint64
	// AtHead reports that the cursor (after consuming Records) has caught
	// up with the primary.
	AtHead bool
}

// Since returns up to max records with Seq > cursor. A cursor below the
// floor returns ErrCompacted; one beyond the head returns ErrFutureCursor.
// cursor == Head() yields an empty at-head view (the poll steady state).
func (cl *Changelog) Since(cursor uint64, max int) (LogView, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	view := LogView{Head: cl.head, Floor: cl.floor}
	if cursor < cl.floor {
		return view, ErrCompacted
	}
	if cursor > cl.head {
		return view, ErrFutureCursor
	}
	start := int(cursor - cl.floor)
	end := len(cl.recs)
	if max > 0 && start+max < end {
		end = start + max
	}
	view.Records = append([]ChangeRecord(nil), cl.recs[start:end]...)
	view.AtHead = end == len(cl.recs)
	return view, nil
}

// EnableChangelog attaches a write-ahead changelog to the store: from now
// on every term-level mutation (AddQuad/AddBatch/RemoveQuad/RemoveBatch/
// RemoveGraph) appends a sequence-numbered record. retainQuads is the
// quad-weighted retention budget (<= 0 uses DefaultChangelogRetention).
// Idempotent: a second call returns the existing log.
func (st *Store) EnableChangelog(retainQuads int) *Changelog {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.log == nil {
		st.log = newChangelog(retainQuads)
	}
	return st.log
}

// Changelog returns the store's changelog, or nil when none is enabled
// (followers and plain bootstraps run without one).
func (st *Store) Changelog() *Changelog {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.log
}

// CompactTo drops every record with Seq <= pos, advancing the floor. The
// snapshot writer calls it after a successful save: followers older than
// the snapshot can bootstrap from the snapshot instead.
func (cl *Changelog) CompactTo(pos uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if pos > cl.head {
		pos = cl.head
	}
	for len(cl.recs) > 0 && cl.recs[0].Seq <= pos {
		cl.weight -= cl.recs[0].weight()
		cl.recs = cl.recs[1:]
	}
	if pos > cl.floor {
		cl.floor = pos
	}
	mChangelogFloor.Set(int64(cl.floor))
	mChangelogQuads.Set(int64(cl.weight))
}
