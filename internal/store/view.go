package store

import (
	"sort"

	"kglids/internal/rdf"
)

// EncodeTerm resolves a term to its dictionary ID without interning. ok is
// false when the term has never been stored — a pattern constrained by such
// a term cannot match anything.
func (st *Store) EncodeTerm(t rdf.Term) (TermID, bool) { return st.dict.Lookup(t) }

// DecodeTerm returns the term for a previously interned ID. Decoding the
// reserved unbound ID 0 returns the zero term.
func (st *Store) DecodeTerm(id TermID) rdf.Term {
	if id == 0 {
		return rdf.Term{}
	}
	return st.dict.Term(id)
}

// MatchIDs streams the encoded triples matching (s, p, o) in graph g to fn;
// 0 IDs are wildcards and g == UnionGraph matches across all graphs.
// Iteration stops when fn returns false. This is the ID-space counterpart
// of MatchFunc: no term decoding, no per-call dictionary lookups.
func (st *Store) MatchIDs(s, p, o, g TermID, fn func(s, p, o TermID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.matchEncoded(s, p, o, g, fn)
}

// View is a read-locked handle on the store: it pins one consistent state
// for a whole multi-pattern query execution, letting the SPARQL engine run
// many index probes without per-call lock traffic (and without the nested
// read-lock acquisitions that could deadlock against a waiting writer).
// A View must be Closed exactly once; mutations block while any View is
// open, so hold one only for the duration of a query.
type View struct{ st *Store }

// AcquireView read-locks the store and returns the handle.
func (st *Store) AcquireView() *View {
	st.mu.RLock()
	return &View{st: st}
}

// Close releases the view's read lock.
func (v *View) Close() { v.st.mu.RUnlock() }

// Generation returns the store generation, stable for the view's lifetime.
func (v *View) Generation() uint64 { return v.st.gen }

// MatchIDs streams encoded matches under the already-held read lock.
func (v *View) MatchIDs(s, p, o, g TermID, fn func(s, p, o TermID) bool) {
	v.st.matchEncoded(s, p, o, g, fn)
}

// CountIDs estimates the matches of an encoded pattern (see Store.CountIDs).
func (v *View) CountIDs(s, p, o, g TermID) int { return v.st.countIDsLocked(s, p, o, g) }

// PredStats returns the per-predicate cardinality stats (union index).
func (v *View) PredStats(p TermID) PredicateStats { return v.st.predStatsLocked(p) }

// GraphIDs returns the IDs of all named graphs in ascending order, the
// iteration domain of an unbound GRAPH ?g pattern.
func (v *View) GraphIDs() []TermID {
	ids := make([]TermID, 0, len(v.st.graphs))
	for g := range v.st.graphs {
		if g != unionGraph {
			ids = append(ids, g)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dict exposes the term dictionary for late materialization. The dictionary
// carries its own lock and is safe to use under the view.
func (v *View) Dict() *Dictionary { return v.st.dict }
