package store

import (
	"sort"

	"kglids/internal/rdf"
)

// EncodeTerm resolves a term to its dictionary ID without interning. ok is
// false when the term has never been stored — a pattern constrained by such
// a term cannot match anything.
func (st *Store) EncodeTerm(t rdf.Term) (TermID, bool) { return st.dict.Lookup(t) }

// DecodeTerm returns the term for a previously interned ID. Decoding the
// reserved unbound ID 0 returns the zero term.
func (st *Store) DecodeTerm(id TermID) rdf.Term {
	if id == 0 {
		return rdf.Term{}
	}
	return st.dict.Term(id)
}

// MatchIDs streams the encoded triples matching (s, p, o) in graph g to fn;
// 0 IDs are wildcards and g == UnionGraph matches across all graphs.
// Iteration stops when fn returns false. This is the ID-space counterpart
// of MatchFunc: no term decoding, no per-call dictionary lookups.
func (st *Store) MatchIDs(s, p, o, g TermID, fn func(s, p, o TermID) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.matchEncoded(s, p, o, g, fn)
}

// View is a read-locked handle on the store: it pins one consistent state
// for a whole multi-pattern query execution, letting the SPARQL engine run
// many index probes without per-call lock traffic (and without the nested
// read-lock acquisitions that could deadlock against a waiting writer).
// A View must be Closed exactly once; mutations block while any View is
// open, so hold one only for the duration of a query.
type View struct{ st *Store }

// AcquireView read-locks the store and returns the handle.
func (st *Store) AcquireView() *View {
	st.mu.RLock()
	return &View{st: st}
}

// Close releases the view's read lock.
func (v *View) Close() { v.st.mu.RUnlock() }

// Generation returns the store generation, stable for the view's lifetime.
func (v *View) Generation() uint64 { return v.st.gen }

// MatchIDs streams encoded matches under the already-held read lock.
func (v *View) MatchIDs(s, p, o, g TermID, fn func(s, p, o TermID) bool) {
	v.st.matchEncoded(s, p, o, g, fn)
}

// CountIDs estimates the matches of an encoded pattern (see Store.CountIDs).
func (v *View) CountIDs(s, p, o, g TermID) int { return v.st.countIDsLocked(s, p, o, g) }

// PredStats returns the per-predicate cardinality stats (union index).
func (v *View) PredStats(p TermID) PredicateStats { return v.st.predStatsLocked(p) }

// GraphIDs returns the IDs of all named graphs in ascending order, the
// iteration domain of an unbound GRAPH ?g pattern.
func (v *View) GraphIDs() []TermID {
	ids := make([]TermID, 0, len(v.st.graphs))
	for g := range v.st.graphs {
		if g != unionGraph {
			ids = append(ids, g)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dict exposes the term dictionary for late materialization. The dictionary
// carries its own lock and is safe to use under the view.
func (v *View) Dict() *Dictionary { return v.st.dict }

// Partition positions returned by CandidateIDs: which position of the
// probed pattern the candidate IDs bind.
const (
	PartitionNone    = -1
	PartitionSubject = 0
	PartitionObject  = 2
)

// CandidateIDs enumerates the distinct IDs the best index offers for one
// wildcard position of the encoded pattern (s, p, o) in graph g — the
// candidate domain a morsel-driven executor partitions across workers.
// The returned position follows the same index-selection order as
// matchEncoded: a bound object yields the subjects under OSP, a bound
// predicate (with both endpoints free) yields the objects under POS, and
// a fully unconstrained pattern yields every subject of the graph. A
// bound subject returns PartitionNone — its per-subject domain is the
// pattern's own result, too narrow to be worth splitting. The slice is a
// fresh copy in index-map order (unordered); callers own it.
func (v *View) CandidateIDs(s, p, o, g TermID) ([]TermID, int) {
	st := v.st
	switch {
	case s != 0:
		return nil, PartitionNone
	case o != 0:
		l1 := st.osp[g][o]
		if len(l1) == 0 {
			return nil, PartitionNone
		}
		ids := make([]TermID, 0, len(l1))
		for es := range l1 {
			ids = append(ids, es)
		}
		return ids, PartitionSubject
	case p != 0:
		l1 := st.pos[g][p]
		if len(l1) == 0 {
			return nil, PartitionNone
		}
		ids := make([]TermID, 0, len(l1))
		for eo := range l1 {
			ids = append(ids, eo)
		}
		return ids, PartitionObject
	default:
		l2 := st.spo[g]
		if len(l2) == 0 {
			return nil, PartitionNone
		}
		ids := make([]TermID, 0, len(l2))
		for es := range l2 {
			ids = append(ids, es)
		}
		return ids, PartitionSubject
	}
}
