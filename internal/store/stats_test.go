package store

import (
	"fmt"
	"sort"
	"testing"

	"kglids/internal/rdf"
)

func statsFixtureQuads() []rdf.Quad {
	var quads []rdf.Quad
	for i := 0; i < 6; i++ {
		t := rdf.Resource(fmt.Sprintf("ds/t%d", i))
		quads = append(quads,
			rdf.Q(t, rdf.RDFType, rdf.ClassTable, rdf.DefaultGraph),
			rdf.Q(t, rdf.PropRowCount, rdf.Integer(int64(100*i)), rdf.DefaultGraph),
			rdf.Q(t, rdf.PropIsPartOf, rdf.Resource("ds"), rdf.DefaultGraph))
		for j := 0; j < 3; j++ {
			c := rdf.Resource(fmt.Sprintf("ds/t%d/c%d", i, j))
			g := rdf.Resource(fmt.Sprintf("graph/t%d", i))
			quads = append(quads,
				rdf.Q(c, rdf.RDFType, rdf.ClassColumn, g),
				rdf.Q(c, rdf.PropIsPartOf, t, g))
		}
	}
	return quads
}

// recount computes predicate stats the slow way, straight from Match.
func recount(st *Store, p rdf.Term) PredicateStats {
	var ps PredicateStats
	subj, obj := map[TermID]bool{}, map[TermID]bool{}
	pid, ok := st.EncodeTerm(p)
	if !ok {
		return ps
	}
	st.MatchIDs(0, pid, 0, UnionGraph, func(s, _, o TermID) bool {
		ps.Triples++
		subj[s], obj[o] = true, true
		return true
	})
	ps.Subjects, ps.Objects = len(subj), len(obj)
	return ps
}

func checkStats(t *testing.T, st *Store, label string) {
	t.Helper()
	for _, p := range []rdf.Term{rdf.RDFType, rdf.PropRowCount, rdf.PropIsPartOf} {
		pid, ok := st.EncodeTerm(p)
		if !ok {
			continue
		}
		got, want := st.PredStats(pid), recount(st, p)
		if got != want {
			t.Fatalf("%s: stats for %v = %+v, want %+v", label, p, got, want)
		}
	}
}

func TestPredicateStatsMaintained(t *testing.T) {
	st := New()
	quads := statsFixtureQuads()
	st.AddBatch(quads)
	checkStats(t, st, "after add")

	// Duplicate adds change nothing.
	gen := st.Generation()
	st.AddBatch(quads[:5])
	if st.Generation() != gen {
		t.Fatal("duplicate adds bumped the generation")
	}
	checkStats(t, st, "after duplicate add")

	// Removing quads (incl. whole graphs) keeps stats exact.
	st.RemoveQuad(quads[0])
	st.RemoveGraph(rdf.Resource("graph/t0"))
	checkStats(t, st, "after removal")
	if g := st.Generation(); g <= gen {
		t.Fatalf("generation %d did not advance past %d after removals", g, gen)
	}
}

func TestStatsRebuiltByBulkLoad(t *testing.T) {
	src := New()
	src.AddBatch(statsFixtureQuads())

	// Replay through the snapshot-restore path.
	dst := New()
	if err := dst.Dict().BulkLoad(src.Dict().Terms()); err != nil {
		t.Fatal(err)
	}
	var enc []EncodedQuad
	src.ForEachEncodedQuad(func(q EncodedQuad) { enc = append(enc, q) })
	dst.AddEncodedBatch(enc)
	checkStats(t, dst, "after bulk load")
	if dst.Generation() == 0 {
		t.Fatal("bulk load did not bump the generation")
	}
}

func TestCountIDsMatchesCountMatch(t *testing.T) {
	st := New()
	st.AddBatch(statsFixtureQuads())
	tbl := rdf.Resource("ds/t1")
	cases := []struct{ s, p, o rdf.Term }{
		{tbl, rdf.RDFType, rdf.ClassTable},
		{tbl, Wildcard, Wildcard},
		{tbl, rdf.PropRowCount, Wildcard},
		{Wildcard, rdf.RDFType, rdf.ClassColumn},
		{Wildcard, rdf.PropIsPartOf, Wildcard},
		{Wildcard, Wildcard, tbl},
		{Wildcard, Wildcard, Wildcard},
	}
	enc := func(t rdf.Term) TermID {
		if isWild(t) {
			return 0
		}
		id, _ := st.EncodeTerm(t)
		return id
	}
	for _, c := range cases {
		got := st.CountIDs(enc(c.s), enc(c.p), enc(c.o), UnionGraph)
		want := st.CountMatch(c.s, c.p, c.o, rdf.DefaultGraph)
		if got != want {
			t.Errorf("CountIDs(%v %v %v) = %d, want %d", c.s, c.p, c.o, got, want)
		}
	}
}

func TestMatchIDsAgreesWithMatchFunc(t *testing.T) {
	st := New()
	st.AddBatch(statsFixtureQuads())
	pid, _ := st.EncodeTerm(rdf.PropIsPartOf)
	var viaIDs []string
	st.MatchIDs(0, pid, 0, UnionGraph, func(s, p, o TermID) bool {
		viaIDs = append(viaIDs, st.DecodeTerm(s).Key()+"|"+st.DecodeTerm(o).Key())
		return true
	})
	var viaTerms []string
	st.MatchFunc(Wildcard, rdf.PropIsPartOf, Wildcard, rdf.DefaultGraph, func(tr rdf.Triple) bool {
		viaTerms = append(viaTerms, tr.Subject.Key()+"|"+tr.Object.Key())
		return true
	})
	if len(viaIDs) != len(viaTerms) {
		t.Fatalf("MatchIDs %d rows, MatchFunc %d rows", len(viaIDs), len(viaTerms))
	}
	// Index iteration over maps is unordered; compare as multisets.
	sort.Strings(viaIDs)
	sort.Strings(viaTerms)
	for i := range viaIDs {
		if viaIDs[i] != viaTerms[i] {
			t.Fatalf("row %d: %q != %q", i, viaIDs[i], viaTerms[i])
		}
	}
}

func TestViewPinsGeneration(t *testing.T) {
	st := New()
	st.Add(rdf.T(rdf.Resource("a"), rdf.PropName, rdf.String("a")))
	v := st.AcquireView()
	gen := v.Generation()
	if got := v.CountIDs(0, 0, 0, UnionGraph); got != 1 {
		t.Fatalf("view count = %d", got)
	}
	v.Close()
	st.Add(rdf.T(rdf.Resource("b"), rdf.PropName, rdf.String("b")))
	if st.Generation() <= gen {
		t.Fatal("generation did not advance after mutation")
	}
}
