package store

// PredicateStats summarizes the union-index cardinality of one predicate:
// how many triples use it and how many distinct subjects and objects those
// triples touch. The SPARQL planner divides Triples by Subjects (or
// Objects) to estimate the fan-out of a pattern whose subject (or object)
// is an already-bound join variable.
type PredicateStats struct {
	Triples  int
	Subjects int
	Objects  int
}

// statAdd maintains the per-predicate stats for a triple entering the
// union index. Caller holds st.mu and has NOT yet inserted the triple into
// the union orderings (the emptiness probes below detect first occurrences).
func (st *Store) statAdd(s, p, o TermID) {
	ps := st.pstat[p]
	if ps == nil {
		ps = &PredicateStats{}
		st.pstat[p] = ps
	}
	ps.Triples++
	if len(st.spo[unionGraph][s][p]) == 0 {
		ps.Subjects++
	}
	if len(st.pos[unionGraph][p][o]) == 0 {
		ps.Objects++
	}
}

// statRemove maintains the per-predicate stats for a triple that just left
// the union index. Caller holds st.mu and has already removed the triple
// from the union orderings (removeIdx prunes emptied levels, so the probes
// below detect last occurrences).
func (st *Store) statRemove(s, p, o TermID) {
	ps := st.pstat[p]
	if ps == nil {
		return
	}
	ps.Triples--
	if len(st.spo[unionGraph][s][p]) == 0 {
		ps.Subjects--
	}
	if len(st.pos[unionGraph][p][o]) == 0 {
		ps.Objects--
	}
	if ps.Triples <= 0 {
		delete(st.pstat, p)
	}
}

// rebuildStats recomputes pstat wholesale from the union indexes (the bulk
// load path builds indexes in parallel and fixes stats up afterwards).
// Caller holds st.mu.
func (st *Store) rebuildStats() {
	st.pstat = map[TermID]*PredicateStats{}
	for p, byObj := range st.pos[unionGraph] {
		ps := &PredicateStats{Objects: len(byObj)}
		for _, subs := range byObj {
			ps.Triples += len(subs)
		}
		st.pstat[p] = ps
	}
	for _, byPred := range st.spo[unionGraph] {
		for p := range byPred {
			if ps := st.pstat[p]; ps != nil {
				ps.Subjects++
			}
		}
	}
}

// PredStats returns the union-index cardinality stats for a predicate. A
// zero value means the predicate is absent.
func (st *Store) PredStats(p TermID) PredicateStats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.predStatsLocked(p)
}

func (st *Store) predStatsLocked(p TermID) PredicateStats {
	if ps := st.pstat[p]; ps != nil {
		return *ps
	}
	return PredicateStats{}
}

// Generation returns the store's mutation counter. It increases on every
// successful insert or delete, so two equal generations bracket a window in
// which every query result is reproducible — the property the SPARQL
// query-result cache keys on.
func (st *Store) Generation() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.gen
}

// SetGeneration overwrites the mutation counter. This is the snapshot
// restore path only: a reloaded store adopts the generation persisted by
// the primary so that changelog replay continues from aligned counters.
// Never call it on a store serving live mutations.
func (st *Store) SetGeneration(gen uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.gen = gen
}

// countSampleCap bounds how many posting lists countIDsLocked sums exactly
// before extrapolating; single-position scans over very common terms (e.g.
// the object rdf:type Column in a wide lake) would otherwise make planning
// linear in the store.
const countSampleCap = 128

// countIDsLocked estimates the number of triples matching the encoded
// pattern in graph g (0 IDs are wildcards). Exact for every shape the
// indexes answer directly; subject-only and object-only patterns over very
// high-degree terms are sampled and extrapolated. Caller holds st.mu.
func (st *Store) countIDsLocked(s, p, o, g TermID) int {
	sum := func(lists map[TermID][]TermID) int {
		n, visited := 0, 0
		for _, vals := range lists {
			n += len(vals)
			if visited++; visited >= countSampleCap {
				return n * len(lists) / visited
			}
		}
		return n
	}
	switch {
	case s != 0 && p != 0 && o != 0:
		i := len(st.spo[g][s][p])
		if i > 0 && containsSortedID(st.spo[g][s][p], o) {
			return 1
		}
		return 0
	case s != 0 && p != 0:
		return len(st.spo[g][s][p])
	case s != 0 && o != 0:
		return len(st.osp[g][o][s])
	case p != 0 && o != 0:
		return len(st.pos[g][p][o])
	case s != 0:
		return sum(st.spo[g][s])
	case o != 0:
		return sum(st.osp[g][o])
	case p != 0:
		if g == unionGraph {
			return st.predStatsLocked(p).Triples
		}
		return sum(st.pos[g][p])
	default:
		if g == unionGraph {
			// graphs[unionGraph] counts only default-graph quads; the union
			// index holds every distinct triple across all graphs.
			return len(st.graphsOf)
		}
		return st.graphs[g]
	}
}

// CountIDs estimates the number of triples matching an encoded pattern
// (see countIDsLocked).
func (st *Store) CountIDs(s, p, o, g TermID) int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.countIDsLocked(s, p, o, g)
}

func containsSortedID(s []TermID, v TermID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}
