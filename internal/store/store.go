package store

import (
	"sort"
	"sync"

	"kglids/internal/rdf"
)

// encQuad is a dictionary-encoded quad.
type encQuad struct {
	s, p, o, g TermID
}

// Store is an in-memory RDF-star quad store. Triples are dictionary-encoded
// and indexed by SPO, POS, and OSP orderings, each partitioned by named
// graph, matching the built-in index behaviour of RDF engines the paper's
// SPARQL queries rely on (Section 6.1.2).
//
// RDF-star edge annotations (e.g. similarity certainty scores) are stored as
// ordinary triples whose subject is a quoted-triple term; AddAnnotated is a
// convenience for the common pattern.
type Store struct {
	mu   sync.RWMutex
	dict *Dictionary

	// spo[g][s][p] -> sorted []o, and so on. Graph 0 indexes the union of
	// all graphs for cross-graph pattern matching.
	spo map[TermID]map[TermID]map[TermID][]TermID
	pos map[TermID]map[TermID]map[TermID][]TermID
	osp map[TermID]map[TermID]map[TermID][]TermID

	// graphsOf records, for every (s,p,o) in the union index, the set of
	// graphs containing it, as a small unordered slice — almost every
	// triple lives in exactly one graph, and a pointer-free slice is far
	// cheaper to allocate and GC-scan than a per-triple map (it is the
	// dominant allocation of a bulk load). Key layout matches encQuad with
	// g==0.
	graphsOf map[encQuad][]TermID

	count  int // total quads (union, deduplicated per graph)
	graphs map[TermID]int

	// gen is bumped on every successful mutation; readers key caches on it
	// so live ingestion invalidates them naturally.
	gen uint64
	// pstat holds per-predicate cardinality statistics over the union
	// index, maintained incrementally on Add/Remove (see stats.go). The
	// SPARQL planner orders joins from these real cardinalities.
	pstat map[TermID]*PredicateStats

	// log, when enabled, receives a record for every term-level mutation
	// (see changelog.go). The snapshot-restore fast path (AddEncodedBatch)
	// is deliberately not logged: a restore reproduces a position the log
	// is seeded from, not a new mutation.
	log *Changelog
}

// unionGraph is the pseudo-graph ID under which the union of all named
// graphs (plus the default graph) is indexed.
const unionGraph TermID = 0

// UnionGraph is the exported pseudo-graph ID for the union of all graphs
// (equivalently, the default graph for encoded matching). Pass it as the
// graph argument of MatchIDs/CountIDs to match across all graphs.
const UnionGraph = unionGraph

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:     NewDictionary(),
		spo:      map[TermID]map[TermID]map[TermID][]TermID{},
		pos:      map[TermID]map[TermID]map[TermID][]TermID{},
		osp:      map[TermID]map[TermID]map[TermID][]TermID{},
		graphsOf: map[encQuad][]TermID{},
		graphs:   map[TermID]int{},
		pstat:    map[TermID]*PredicateStats{},
	}
}

// Dict exposes the term dictionary (read-mostly; used by the SPARQL engine).
func (st *Store) Dict() *Dictionary { return st.dict }

// Add inserts a triple into the default graph.
func (st *Store) Add(t rdf.Triple) { st.AddQuad(rdf.Quad{Triple: t, Graph: rdf.DefaultGraph}) }

// AddToGraph inserts a triple into the named graph g.
func (st *Store) AddToGraph(t rdf.Triple, g rdf.Term) { st.AddQuad(rdf.Quad{Triple: t, Graph: g}) }

// AddQuad inserts a quad. Duplicate quads are ignored.
func (st *Store) AddQuad(q rdf.Quad) {
	s := st.dict.Intern(q.Subject)
	p := st.dict.Intern(q.Predicate)
	o := st.dict.Intern(q.Object)
	var g TermID = unionGraph
	if q.Graph.Value != "" {
		g = st.dict.Intern(q.Graph)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	before := st.gen
	st.addEncoded(s, p, o, g)
	if st.log != nil && st.gen != before {
		st.log.append(ChangeAddQuads, []rdf.Quad{q}, rdf.Term{}, nil, st.gen)
	}
}

// AddBatch inserts many quads under a single lock acquisition.
func (st *Store) AddBatch(quads []rdf.Quad) {
	enc := make([]encQuad, len(quads))
	for i, q := range quads {
		var g TermID = unionGraph
		if q.Graph.Value != "" {
			g = st.dict.Intern(q.Graph)
		}
		enc[i] = encQuad{
			s: st.dict.Intern(q.Subject),
			p: st.dict.Intern(q.Predicate),
			o: st.dict.Intern(q.Object),
			g: g,
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	before := st.gen
	for _, e := range enc {
		st.addEncoded(e.s, e.p, e.o, e.g)
	}
	if st.log != nil && st.gen != before {
		// The record carries the full requested batch: duplicates no-op
		// identically on a follower holding identical state, so replay
		// reproduces the same acceptance set and the same generation.
		st.log.append(ChangeAddQuads, append([]rdf.Quad(nil), quads...), rdf.Term{}, nil, st.gen)
	}
}

func (st *Store) addEncoded(s, p, o, g TermID) {
	key := encQuad{s: s, p: p, o: o}
	set := st.graphsOf[key]
	if containsID(set, g) {
		return
	}
	// Any existing membership implies the triple is already in the union
	// index, so it is new there exactly when the membership set was empty.
	newToUnion := len(set) == 0
	if newToUnion {
		st.statAdd(s, p, o)
	}
	st.graphsOf[key] = append(set, g)
	st.count++
	st.graphs[g]++
	st.gen++

	// Index in the specific graph and, if it is a named graph, also in the
	// union pseudo-graph; triples added straight to the default graph are
	// indexed once (g == unionGraph already).
	insertIdx(st.spo, g, s, p, o)
	insertIdx(st.pos, g, p, o, s)
	insertIdx(st.osp, g, o, s, p)
	if g != unionGraph && newToUnion {
		insertIdx(st.spo, unionGraph, s, p, o)
		insertIdx(st.pos, unionGraph, p, o, s)
		insertIdx(st.osp, unionGraph, o, s, p)
	}
}

func containsID(s []TermID, v TermID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func insertSorted(s []TermID, v TermID) []TermID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// AddAnnotated inserts t into graph g and attaches an RDF-star annotation
// << t >> pred value, following the paper's use of RDF-star to annotate
// similarity edges with certainty scores.
func (st *Store) AddAnnotated(t rdf.Triple, g rdf.Term, pred, value rdf.Term) {
	st.AddToGraph(t, g)
	st.AddToGraph(rdf.T(rdf.QuotedTriple(t), pred, value), g)
}

// Annotation returns the annotation value attached to triple t via pred,
// if any.
func (st *Store) Annotation(t rdf.Triple, pred rdf.Term) (rdf.Term, bool) {
	res := st.Match(rdf.QuotedTriple(t), pred, rdf.Term{}, rdf.DefaultGraph)
	if len(res) == 0 {
		return rdf.Term{}, false
	}
	return res[0].Object, true
}

// Len returns the number of stored quads.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.count
}

// GraphLen returns the number of triples in a named graph.
func (st *Store) GraphLen(g rdf.Term) int {
	id, ok := st.dict.Lookup(g)
	if !ok {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.graphs[id]
}

// Graphs returns all named graphs in the store.
func (st *Store) Graphs() []rdf.Term {
	st.mu.RLock()
	ids := make([]TermID, 0, len(st.graphs))
	for g := range st.graphs {
		if g != unionGraph {
			ids = append(ids, g)
		}
	}
	st.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]rdf.Term, len(ids))
	for i, id := range ids {
		out[i] = st.dict.Term(id)
	}
	return out
}

// GraphCount returns the number of named graphs (the union pseudo-graph
// excluded) without decoding their terms — cheap enough for a metrics
// scrape, unlike Graphs.
func (st *Store) GraphCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := len(st.graphs)
	if _, ok := st.graphs[unionGraph]; ok {
		n--
	}
	return n
}

// NodeCount returns the number of distinct subjects and objects across all
// quads (the "unique nodes" statistic of Table 3).
func (st *Store) NodeCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := map[TermID]struct{}{}
	for q := range st.graphsOf {
		seen[q.s] = struct{}{}
		seen[q.o] = struct{}{}
	}
	return len(seen)
}

// PredicateCount returns the number of distinct predicates (the "unique
// edges" statistic of Table 3).
func (st *Store) PredicateCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := map[TermID]struct{}{}
	for q := range st.graphsOf {
		seen[q.p] = struct{}{}
	}
	return len(seen)
}

// EncodedQuad is a dictionary-encoded quad exposed for snapshot
// serialization. G is 0 for the default graph.
type EncodedQuad struct {
	S, P, O, G TermID
}

// ForEachEncodedQuad streams every (s, p, o, g) combination in the store in
// unspecified order. Quads in the default graph are reported with G == 0.
// Replaying the stream through AddEncodedBatch on a store whose dictionary
// interned the same terms in the same ID order reproduces the store exactly.
func (st *Store) ForEachEncodedQuad(fn func(q EncodedQuad)) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for q, gs := range st.graphsOf {
		for _, g := range gs {
			fn(EncodedQuad{S: q.s, P: q.p, O: q.o, G: g})
		}
	}
}

// AddEncodedBatch inserts already-encoded quads under one lock acquisition.
// Term IDs must have been interned in this store's dictionary; it is the
// snapshot-restore fast path that skips per-term map lookups. The three
// index orderings are rebuilt by parallel workers (they share no state),
// which loads large snapshots ~3x faster than sequential replay; the
// result is identical to adding each quad through AddQuad.
func (st *Store) AddEncodedBatch(quads []EncodedQuad) {
	st.mu.Lock()
	defer st.mu.Unlock()

	// Phase 1 (sequential): dedupe against graphsOf and update counts.
	accepted := make([]EncodedQuad, 0, len(quads))
	for _, q := range quads {
		key := encQuad{s: q.S, p: q.P, o: q.O}
		set := st.graphsOf[key]
		if containsID(set, q.G) {
			continue
		}
		st.graphsOf[key] = append(set, q.G)
		st.count++
		st.graphs[q.G]++
		accepted = append(accepted, q)
	}

	// Phase 2 (parallel): each worker owns one ordering outright, so no
	// further synchronization is needed; all of them join before the store
	// lock is released. Named-graph quads are indexed in their graph and
	// in the union pseudo-graph. Values are appended unsorted and each
	// posting list is sorted and deduplicated once at the end — one-by-one
	// sorted insertion would memmove quadratically on hot lists like the
	// subjects of rdf:type.
	var wg sync.WaitGroup
	build := func(idx map[TermID]map[TermID]map[TermID][]TermID, order func(EncodedQuad) (a, b, c TermID)) {
		defer wg.Done()
		append3 := func(g, a, b, c TermID) {
			l1 := idx[g]
			if l1 == nil {
				l1 = map[TermID]map[TermID][]TermID{}
				idx[g] = l1
			}
			l2 := l1[a]
			if l2 == nil {
				l2 = map[TermID][]TermID{}
				l1[a] = l2
			}
			l2[b] = append(l2[b], c)
		}
		for _, q := range accepted {
			a, b, c := order(q)
			append3(q.G, a, b, c)
			if q.G != unionGraph {
				append3(unionGraph, a, b, c)
			}
		}
		for _, l1 := range idx {
			for _, l2 := range l1 {
				for b, vals := range l2 {
					// Most posting lists hold one or two IDs; avoid the
					// sort.Slice closure machinery for those.
					switch {
					case len(vals) <= 1:
						continue
					case len(vals) <= 16:
						insertionSortIDs(vals)
					default:
						sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
					}
					l2[b] = dedupSorted(vals)
				}
			}
		}
	}
	wg.Add(3)
	go build(st.spo, func(q EncodedQuad) (TermID, TermID, TermID) { return q.S, q.P, q.O })
	go build(st.pos, func(q EncodedQuad) (TermID, TermID, TermID) { return q.P, q.O, q.S })
	go build(st.osp, func(q EncodedQuad) (TermID, TermID, TermID) { return q.O, q.S, q.P })
	wg.Wait()

	if len(accepted) > 0 {
		st.gen++
		// Incremental per-quad stat maintenance would serialize the parallel
		// build; one wholesale recomputation over the finished indexes costs
		// the same as a single extra index pass.
		st.rebuildStats()
	}
}

// RemoveQuad deletes a quad from its graph. The triple leaves the union
// index only when no graph (default or named) contains it any more; the
// dictionary keeps its interned terms, which only costs memory, never
// correctness. Returns whether the quad was present.
func (st *Store) RemoveQuad(q rdf.Quad) bool {
	ids, ok := st.lookupQuad(q)
	if !ok {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	removed := st.removeEncoded(ids.s, ids.p, ids.o, ids.g)
	if removed && st.log != nil {
		st.log.append(ChangeRemoveQuads, []rdf.Quad{q}, rdf.Term{}, nil, st.gen)
	}
	return removed
}

// RemoveBatch deletes many quads under a single lock acquisition and
// returns how many were actually present.
func (st *Store) RemoveBatch(quads []rdf.Quad) int {
	enc := make([]encQuad, 0, len(quads))
	for _, q := range quads {
		if ids, ok := st.lookupQuad(q); ok {
			enc = append(enc, ids)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	removed := 0
	for _, e := range enc {
		if st.removeEncoded(e.s, e.p, e.o, e.g) {
			removed++
		}
	}
	if removed > 0 && st.log != nil {
		// Log the full request: quads absent here are equally absent on a
		// follower at the same position and skip identically on replay.
		st.log.append(ChangeRemoveQuads, append([]rdf.Quad(nil), quads...), rdf.Term{}, nil, st.gen)
	}
	return removed
}

// lookupQuad resolves a quad's terms without interning new ones. ok is
// false when any term (or the graph) is not in the dictionary, which means
// the quad cannot be in the store.
func (st *Store) lookupQuad(q rdf.Quad) (encQuad, bool) {
	var out encQuad
	var ok bool
	if out.s, ok = st.dict.Lookup(q.Subject); !ok {
		return out, false
	}
	if out.p, ok = st.dict.Lookup(q.Predicate); !ok {
		return out, false
	}
	if out.o, ok = st.dict.Lookup(q.Object); !ok {
		return out, false
	}
	out.g = unionGraph
	if q.Graph.Value != "" {
		if out.g, ok = st.dict.Lookup(q.Graph); !ok {
			return out, false
		}
	}
	return out, true
}

// removeEncoded is the mutation core of quad removal. Caller holds st.mu.
func (st *Store) removeEncoded(s, p, o, g TermID) bool {
	key := encQuad{s: s, p: p, o: o}
	set := st.graphsOf[key]
	if !containsID(set, g) {
		return false
	}
	set = removeID(set, g)
	if len(set) == 0 {
		delete(st.graphsOf, key)
	} else {
		st.graphsOf[key] = set
	}
	st.count--
	st.gen++
	if st.graphs[g]--; st.graphs[g] <= 0 {
		delete(st.graphs, g)
	}
	if g != unionGraph {
		removeIdx(st.spo, g, s, p, o)
		removeIdx(st.pos, g, p, o, s)
		removeIdx(st.osp, g, o, s, p)
	}
	// The union pseudo-graph holds the triple once for all its graphs; it
	// goes away only with the last membership.
	if len(set) == 0 {
		removeIdx(st.spo, unionGraph, s, p, o)
		removeIdx(st.pos, unionGraph, p, o, s)
		removeIdx(st.osp, unionGraph, o, s, p)
		st.statRemove(s, p, o)
	}
	return true
}

// RemoveGraph drops an entire named graph: every triple loses its
// membership in g, and triples contained in no other graph disappear from
// the union index too (triples shared with other graphs — e.g. dataset
// metadata shared by sibling table graphs — survive there). Returns the
// number of quads removed. Removing the default graph is not supported;
// passing it (or an unknown graph) removes nothing.
func (st *Store) RemoveGraph(g rdf.Term) int {
	if g.Value == "" {
		return 0
	}
	gid, ok := st.dict.Lookup(g)
	if !ok {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// Collect first: removeEncoded mutates the very index being walked.
	var triples []encQuad
	for s, l2 := range st.spo[gid] {
		for p, objs := range l2 {
			for _, o := range objs {
				triples = append(triples, encQuad{s: s, p: p, o: o})
			}
		}
	}
	removed := 0
	for _, t := range triples {
		if st.removeEncoded(t.s, t.p, t.o, gid) {
			removed++
		}
	}
	if removed > 0 && st.log != nil {
		st.log.append(ChangeRemoveGraph, nil, g, nil, st.gen)
	}
	return removed
}

func removeID(s []TermID, v TermID) []TermID {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// removeSorted deletes v from a sorted posting list, preserving order.
func removeSorted(s []TermID, v TermID) []TermID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// removeIdx deletes (a, b, c) from one index ordering of graph g, pruning
// emptied levels so Graphs() and full scans never see ghost entries.
func removeIdx(idx map[TermID]map[TermID]map[TermID][]TermID, g, a, b, c TermID) {
	l1 := idx[g]
	if l1 == nil {
		return
	}
	l2 := l1[a]
	if l2 == nil {
		return
	}
	vals := removeSorted(l2[b], c)
	if len(vals) == 0 {
		delete(l2, b)
	} else {
		l2[b] = vals
	}
	if len(l2) == 0 {
		delete(l1, a)
	}
	if len(l1) == 0 {
		delete(idx, g)
	}
}

func insertionSortIDs(s []TermID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(s []TermID) []TermID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func insertIdx(idx map[TermID]map[TermID]map[TermID][]TermID, g, a, b, c TermID) {
	l1 := idx[g]
	if l1 == nil {
		l1 = map[TermID]map[TermID][]TermID{}
		idx[g] = l1
	}
	l2 := l1[a]
	if l2 == nil {
		l2 = map[TermID][]TermID{}
		l1[a] = l2
	}
	l2[b] = insertSorted(l2[b], c)
}

// ApproxBytes estimates the serialized size of the store in bytes, counting
// each quad's term strings once per occurrence (an N-Quads-like measure used
// for the "Size" row of Table 3).
func (st *Store) ApproxBytes() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var total int64
	for q, gs := range st.graphsOf {
		line := int64(len(st.dict.Term(q.s).String()) + len(st.dict.Term(q.p).String()) + len(st.dict.Term(q.o).String()) + 6)
		total += line * int64(len(gs))
	}
	return total
}
