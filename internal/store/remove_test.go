package store

import (
	"fmt"
	"testing"

	"kglids/internal/rdf"
)

func quad(s, p, o string, g rdf.Term) rdf.Quad {
	return rdf.Quad{Triple: rdf.T(rdf.Resource(s), rdf.Ontology(p), rdf.Resource(o)), Graph: g}
}

func TestRemoveQuad(t *testing.T) {
	st := New()
	q := quad("a", "p", "b", rdf.DefaultGraph)
	st.AddQuad(q)
	if !st.RemoveQuad(q) {
		t.Fatal("RemoveQuad = false for present quad")
	}
	if st.RemoveQuad(q) {
		t.Fatal("RemoveQuad = true for absent quad")
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d", st.Len())
	}
	if got := st.Match(Wildcard, Wildcard, Wildcard, rdf.DefaultGraph); len(got) != 0 {
		t.Fatalf("match after remove: %v", got)
	}
	// Removing terms never seen by the dictionary is a no-op.
	if st.RemoveQuad(quad("never", "seen", "this", rdf.DefaultGraph)) {
		t.Fatal("RemoveQuad = true for unknown terms")
	}
}

// TestRemoveSharedTripleKeepsOtherGraphs pins the union-index semantics: a
// triple in two named graphs survives removal from one of them.
func TestRemoveSharedTripleKeepsOtherGraphs(t *testing.T) {
	st := New()
	g1, g2 := rdf.Resource("g1"), rdf.Resource("g2")
	st.AddQuad(quad("a", "p", "b", g1))
	st.AddQuad(quad("a", "p", "b", g2))
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}

	if !st.RemoveQuad(quad("a", "p", "b", g1)) {
		t.Fatal("remove from g1 failed")
	}
	// Still visible in g2 and in the union.
	if n := st.CountMatch(Wildcard, Wildcard, Wildcard, g2); n != 1 {
		t.Errorf("g2 match = %d", n)
	}
	if n := st.CountMatch(Wildcard, Wildcard, Wildcard, rdf.DefaultGraph); n != 1 {
		t.Errorf("union match = %d", n)
	}
	// Gone from g1.
	if n := st.CountMatch(Wildcard, Wildcard, Wildcard, g1); n != 0 {
		t.Errorf("g1 match = %d", n)
	}

	if !st.RemoveQuad(quad("a", "p", "b", g2)) {
		t.Fatal("remove from g2 failed")
	}
	if n := st.CountMatch(Wildcard, Wildcard, Wildcard, rdf.DefaultGraph); n != 0 {
		t.Errorf("union match after last removal = %d", n)
	}
	if st.Len() != 0 || st.NodeCount() != 0 {
		t.Errorf("Len = %d NodeCount = %d", st.Len(), st.NodeCount())
	}
}

func TestRemoveGraph(t *testing.T) {
	st := New()
	g1, g2 := rdf.Resource("g1"), rdf.Resource("g2")
	// g1: three exclusive triples plus one shared with g2.
	for i := 0; i < 3; i++ {
		st.AddQuad(quad(fmt.Sprintf("s%d", i), "p", "o", g1))
	}
	st.AddQuad(quad("shared", "p", "o", g1))
	st.AddQuad(quad("shared", "p", "o", g2))
	st.AddQuad(quad("only2", "p", "o", g2))

	if removed := st.RemoveGraph(g1); removed != 4 {
		t.Fatalf("RemoveGraph removed %d quads, want 4", removed)
	}
	if removed := st.RemoveGraph(g1); removed != 0 {
		t.Fatalf("second RemoveGraph removed %d", removed)
	}
	if st.GraphLen(g1) != 0 {
		t.Errorf("GraphLen(g1) = %d", st.GraphLen(g1))
	}
	// g1 no longer listed.
	for _, g := range st.Graphs() {
		if g.Equal(g1) {
			t.Error("g1 still listed in Graphs()")
		}
	}
	// Shared triple survives via g2; exclusive ones are gone from the union.
	if n := st.CountMatch(rdf.Resource("shared"), Wildcard, Wildcard, rdf.DefaultGraph); n != 1 {
		t.Errorf("shared triple = %d matches", n)
	}
	if n := st.CountMatch(rdf.Resource("s0"), Wildcard, Wildcard, rdf.DefaultGraph); n != 0 {
		t.Errorf("exclusive triple still matched %d", n)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}

	// Unknown graph and the default graph are no-ops.
	if st.RemoveGraph(rdf.Resource("nope")) != 0 || st.RemoveGraph(rdf.DefaultGraph) != 0 {
		t.Error("removing unknown/default graph should remove nothing")
	}
}

// TestRemoveBatchAnnotatedEdges mirrors the similarity-edge retraction
// pattern: triples plus RDF-star annotations removed in one batch.
func TestRemoveBatchAnnotatedEdges(t *testing.T) {
	st := New()
	tr := rdf.T(rdf.Resource("colA"), rdf.Ontology("contentSimilarity"), rdf.Resource("colB"))
	ann := rdf.T(rdf.QuotedTriple(tr), rdf.Ontology("certainty"), rdf.Float(0.93))
	st.AddBatch([]rdf.Quad{
		{Triple: tr, Graph: rdf.DefaultGraph},
		{Triple: ann, Graph: rdf.DefaultGraph},
	})
	if _, ok := st.Annotation(tr, rdf.Ontology("certainty")); !ok {
		t.Fatal("annotation missing before removal")
	}
	if removed := st.RemoveBatch([]rdf.Quad{
		{Triple: tr, Graph: rdf.DefaultGraph},
		{Triple: ann, Graph: rdf.DefaultGraph},
	}); removed != 2 {
		t.Fatalf("RemoveBatch removed %d, want 2", removed)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d", st.Len())
	}
	if _, ok := st.Annotation(tr, rdf.Ontology("certainty")); ok {
		t.Error("annotation survives removal")
	}
}

// TestAddAfterRemove checks a removed quad can be re-added cleanly (the
// update path: remove table, re-ingest changed version).
func TestAddAfterRemove(t *testing.T) {
	st := New()
	g := rdf.Resource("tbl")
	q := quad("a", "p", "b", g)
	st.AddQuad(q)
	st.RemoveGraph(g)
	st.AddQuad(q)
	if st.Len() != 1 || st.GraphLen(g) != 1 {
		t.Fatalf("Len = %d GraphLen = %d after re-add", st.Len(), st.GraphLen(g))
	}
	if n := st.CountMatch(Wildcard, Wildcard, Wildcard, rdf.DefaultGraph); n != 1 {
		t.Fatalf("union match = %d", n)
	}
}
