package store

import "kglids/internal/rdf"

// Wildcard is the zero Term; passing it to Match leaves that position
// unconstrained.
var Wildcard = rdf.Term{}

func isWild(t rdf.Term) bool { return t.Kind == rdf.KindIRI && t.Value == "" && t.Quoted == nil }

// Match returns all triples matching the pattern (s, p, o) in graph g.
// Zero-valued terms act as wildcards. Passing rdf.DefaultGraph matches
// across all graphs (the union); a named graph restricts to that graph.
func (st *Store) Match(s, p, o, g rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	st.MatchFunc(s, p, o, g, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFunc streams matches to fn; iteration stops when fn returns false.
func (st *Store) MatchFunc(s, p, o, g rdf.Term, fn func(rdf.Triple) bool) {
	gid := unionGraph
	if !isWild(g) {
		id, ok := st.dict.Lookup(g)
		if !ok {
			return
		}
		gid = id
	}
	var sid, pid, oid TermID
	if !isWild(s) {
		id, ok := st.dict.Lookup(s)
		if !ok {
			return
		}
		sid = id
	}
	if !isWild(p) {
		id, ok := st.dict.Lookup(p)
		if !ok {
			return
		}
		pid = id
	}
	if !isWild(o) {
		id, ok := st.dict.Lookup(o)
		if !ok {
			return
		}
		oid = id
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	st.matchEncoded(sid, pid, oid, gid, func(es, ep, eo TermID) bool {
		return fn(rdf.T(st.dict.Term(es), st.dict.Term(ep), st.dict.Term(eo)))
	})
}

// matchEncoded walks the best index for the bound positions. IDs equal to 0
// are wildcards. Caller must hold st.mu.
func (st *Store) matchEncoded(s, p, o, g TermID, fn func(s, p, o TermID) bool) {
	switch {
	case s != 0: // SPO index
		l1 := st.spo[g][s]
		if l1 == nil {
			return
		}
		if p != 0 {
			for _, eo := range l1[p] {
				if o != 0 && eo != o {
					continue
				}
				if !fn(s, p, eo) {
					return
				}
			}
			return
		}
		for ep, objs := range l1 {
			for _, eo := range objs {
				if o != 0 && eo != o {
					continue
				}
				if !fn(s, ep, eo) {
					return
				}
			}
		}
	case o != 0: // OSP index
		l1 := st.osp[g][o]
		if l1 == nil {
			return
		}
		for es, preds := range l1 {
			for _, ep := range preds {
				if p != 0 && ep != p {
					continue
				}
				if !fn(es, ep, o) {
					return
				}
			}
		}
	case p != 0: // POS index
		l1 := st.pos[g][p]
		if l1 == nil {
			return
		}
		for eo, subs := range l1 {
			for _, es := range subs {
				if !fn(es, p, eo) {
					return
				}
			}
		}
	default: // full scan of the graph
		for es, l2 := range st.spo[g] {
			for ep, objs := range l2 {
				for _, eo := range objs {
					if !fn(es, ep, eo) {
						return
					}
				}
			}
		}
	}
}

// CountMatch returns the number of triples matching the pattern without
// materializing them.
func (st *Store) CountMatch(s, p, o, g rdf.Term) int {
	n := 0
	st.MatchFunc(s, p, o, g, func(rdf.Triple) bool { n++; return true })
	return n
}

// Subjects returns the distinct subjects of triples matching (p, o) in g.
func (st *Store) Subjects(p, o, g rdf.Term) []rdf.Term {
	seen := map[string]struct{}{}
	var out []rdf.Term
	st.MatchFunc(Wildcard, p, o, g, func(t rdf.Triple) bool {
		k := t.Subject.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, t.Subject)
		}
		return true
	})
	return out
}

// Objects returns the distinct objects of triples matching (s, p) in g.
func (st *Store) Objects(s, p, g rdf.Term) []rdf.Term {
	seen := map[string]struct{}{}
	var out []rdf.Term
	st.MatchFunc(s, p, Wildcard, g, func(t rdf.Triple) bool {
		k := t.Object.Key()
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, t.Object)
		}
		return true
	})
	return out
}
