package automl

import (
	"testing"
	"time"

	"kglids/internal/embed"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/transform"
)

func minedFixture(t *testing.T) ([]MinedUsage, map[string]embed.Vector, *lakegen.TaskDataset) {
	t.Helper()
	task := lakegen.GenerateTask(lakegen.TaskSpec{
		ID: 1, Name: "fixture", Rows: 300, NumFeatures: 5, CatFeatures: 1,
		Classes: 2, Seed: 51,
	})
	ds := pipegen.FrameDataset(task.Name, task.Frame, task.Target)
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 30, Datasets: []pipegen.Dataset{ds}, Seed: 52})
	a := pipeline.NewAbstractor()
	var abss []*pipeline.Abstraction
	for _, g := range corpus {
		abss = append(abss, a.Abstract(g.Script))
	}
	usages := MineUsages(abss)
	p := profiler.New()
	embs := map[string]embed.Vector{
		task.Name: transform.TableEmbedding(p, task.Frame),
	}
	return usages, embs, task
}

func TestMineUsages(t *testing.T) {
	usages, _, _ := minedFixture(t)
	if len(usages) == 0 {
		t.Fatal("no usages mined")
	}
	for _, u := range usages {
		if u.Classifier == "" || u.Dataset == "" {
			t.Errorf("incomplete usage: %+v", u)
		}
	}
	// At least some usages carry explicit hyperparameters with names.
	withParams := 0
	for _, u := range usages {
		if len(u.Params) > 0 {
			withParams++
		}
	}
	if withParams == 0 {
		t.Error("no usages carry named hyperparameters")
	}
}

func TestRecommendModels(t *testing.T) {
	usages, embs, task := minedFixture(t)
	s := New(usages, embs, true)
	p := profiler.New()
	emb := transform.TableEmbedding(p, task.Frame)
	recs := s.RecommendModels(emb)
	if len(recs) == 0 {
		t.Fatal("no model recommendations")
	}
	// Sorted by votes.
	for i := 1; i < len(recs); i++ {
		if recs[i].Votes > recs[i-1].Votes {
			t.Error("recommendations not sorted by votes")
		}
	}
}

func TestRecommendHyperparameters(t *testing.T) {
	usages, embs, task := minedFixture(t)
	s := New(usages, embs, true)
	p := profiler.New()
	emb := transform.TableEmbedding(p, task.Frame)
	recs := s.RecommendModels(emb)
	params := s.RecommendHyperparameters(emb, recs[0].Classifier)
	if len(params) == 0 {
		t.Fatalf("no hyperparameters for %s", recs[0].Classifier)
	}
	for name, v := range params {
		if name == "" || v < 0 {
			t.Errorf("bad param %q = %v", name, v)
		}
	}
}

func TestFitSeededVsUnseeded(t *testing.T) {
	usages, embs, task := minedFixture(t)
	p := profiler.New()
	emb := transform.TableEmbedding(p, task.Frame)
	budget := 300 * time.Millisecond

	seeded := New(usages, embs, true)
	rSeeded, err := seeded.Fit(task.Frame, task.Target, emb, budget)
	if err != nil {
		t.Fatal(err)
	}
	unseeded := New(usages, embs, false)
	rUnseeded, err := unseeded.Fit(task.Frame, task.Target, emb, budget)
	if err != nil {
		t.Fatal(err)
	}
	if rSeeded.Trials == 0 || rUnseeded.Trials == 0 {
		t.Fatal("no trials executed")
	}
	if rSeeded.F1 < 0 || rUnseeded.F1 < 0 {
		t.Error("no score recorded")
	}
	// The dataset is learnable: both should beat 0.5 F1 comfortably.
	if rSeeded.F1 < 0.55 {
		t.Errorf("seeded F1 = %v", rSeeded.F1)
	}
}

func TestFitErrorOnBadTarget(t *testing.T) {
	usages, embs, task := minedFixture(t)
	s := New(usages, embs, true)
	if _, err := s.Fit(task.Frame, "nope", nil, time.Millisecond); err == nil {
		t.Error("bad target should error")
	}
}

func TestGridHelpers(t *testing.T) {
	grid := []float64{1, 5, 10, 50}
	if gridIndex(7, grid) != 1 && gridIndex(7, grid) != 2 {
		t.Errorf("gridIndex(7) = %d", gridIndex(7, grid))
	}
	if snapToGrid(49, grid) != 50 {
		t.Errorf("snap = %v", snapToGrid(49, grid))
	}
	if snapToGrid(3, nil) != 3 {
		t.Error("snap to empty grid should identity")
	}
}

func TestPortfolioComplete(t *testing.T) {
	for _, e := range Portfolio() {
		clf := e.Make(map[string]float64{
			"n_estimators": 5, "max_depth": 3, "C": 1, "max_iter": 10,
			"min_samples_split": 2, "n_neighbors": 3,
		})
		if clf == nil {
			t.Errorf("%s factory returned nil", e.Name)
		}
	}
}
