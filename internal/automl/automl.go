// Package automl implements KGLiDS's AutoML support (paper Section 4.4):
// a KGpip-style system that recommends an ML estimator for an unseen
// dataset from the pipelines of the most similar dataset in the LiDS
// graph, then searches hyperparameters under a time budget. The revision
// the paper contributes — seeding and pruning the hyperparameter search
// with the (name, value) pairs mined from the LiDS graph's enriched
// function parameters — is implemented here, alongside the unseeded
// baseline (Pip_G4C) whose KG lacks parameter names.
package automl

import (
	"math/rand"
	"sort"
	"strconv"
	"time"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/ml"
	"kglids/internal/pipeline"
	"kglids/internal/vectorindex"
)

// Estimator describes one portfolio member: its qualified sklearn-style
// name, hyperparameter grid, and factory.
type Estimator struct {
	Name string
	Grid map[string][]float64
	// Make builds the classifier from hyperparameter values.
	Make func(params map[string]float64) ml.Classifier
}

// Portfolio returns the estimator portfolio (mirrors the classifiers the
// generated Kaggle corpus uses).
func Portfolio() []Estimator {
	return []Estimator{
		{
			Name: "sklearn.ensemble.RandomForestClassifier",
			Grid: map[string][]float64{
				"n_estimators": {1, 2, 5, 10, 25, 50, 100, 150, 200},
				"max_depth":    {1, 2, 3, 5, 7, 10, 12, 15},
			},
			Make: func(p map[string]float64) ml.Classifier {
				f := ml.NewRandomForest(int(p["n_estimators"]))
				f.MaxDepth = int(p["max_depth"])
				return f
			},
		},
		{
			Name: "sklearn.linear_model.LogisticRegression",
			Grid: map[string][]float64{
				"C":        {0.01, 0.1, 0.5, 1, 2, 5, 10},
				"max_iter": {50, 100, 200, 300, 500},
			},
			Make: func(p map[string]float64) ml.Classifier {
				m := ml.NewLogisticRegression()
				m.C = p["C"]
				m.MaxIter = int(p["max_iter"])
				return m
			},
		},
		{
			Name: "sklearn.tree.DecisionTreeClassifier",
			Grid: map[string][]float64{
				"max_depth":         {1, 2, 3, 5, 7, 10, 15},
				"min_samples_split": {2, 4, 8, 16, 32, 64},
			},
			Make: func(p map[string]float64) ml.Classifier {
				return ml.NewDecisionTree(ml.TreeConfig{
					MaxDepth:        int(p["max_depth"]),
					MinSamplesSplit: int(p["min_samples_split"]),
				})
			},
		},
		{
			Name: "sklearn.neighbors.KNeighborsClassifier",
			Grid: map[string][]float64{
				"n_neighbors": {1, 3, 5, 7, 9, 11, 15, 21},
			},
			Make: func(p map[string]float64) ml.Classifier {
				return ml.NewKNN(int(p["n_neighbors"]))
			},
		},
		{
			Name: "sklearn.naive_bayes.GaussianNB",
			Grid: map[string][]float64{},
			Make: func(map[string]float64) ml.Classifier { return ml.NewGaussianNB() },
		},
	}
}

// MinedUsage is one estimator usage mined from the LiDS graph: the
// pipeline's dataset, classifier, hyperparameters (with names, thanks to
// documentation analysis), and pipeline votes.
type MinedUsage struct {
	Dataset    string
	Classifier string
	Params     map[string]float64
	Votes      int
}

// estimatorNames indexes the portfolio by qualified name.
func estimatorNames() map[string]bool {
	out := map[string]bool{}
	for _, e := range Portfolio() {
		out[e.Name] = true
	}
	// xgboost maps onto the boosted-forest member for recommendation
	// purposes.
	out["xgboost.XGBClassifier"] = true
	return out
}

// MineUsages extracts estimator usages from pipeline abstractions (the KG
// mining step; parameter names exist because Algorithm 1 enriched calls
// with documentation).
func MineUsages(abss []*pipeline.Abstraction) []MinedUsage {
	known := estimatorNames()
	var out []MinedUsage
	for _, abs := range abss {
		if abs.ParseError != nil {
			continue
		}
		for _, st := range abs.Statements {
			for _, call := range st.Calls {
				if !known[call.Qualified] {
					continue
				}
				u := MinedUsage{
					Dataset:    abs.Script.Meta.Dataset,
					Classifier: call.Qualified,
					Params:     map[string]float64{},
					Votes:      abs.Script.Meta.Votes,
				}
				for _, p := range call.Params {
					if p.Default {
						continue // only explicitly chosen values seed search
					}
					if f, err := strconv.ParseFloat(p.Value, 64); err == nil {
						u.Params[p.Name] = f
					}
				}
				out = append(out, u)
			}
		}
	}
	return out
}

// System is the AutoML engine: mined usages plus a dataset-embedding index
// for similarity lookup.
type System struct {
	usages    []MinedUsage
	dsIndex   *vectorindex.Exact
	dsEmbeds  map[string]embed.Vector
	portfolio []Estimator
	// Seeded enables the LiDS hyperparameter seeding (Pip_LiDS); false
	// reproduces Pip_G4C, whose GraphGen4Code KG lacks parameter names
	// (Section 4.4).
	Seeded bool
}

// New builds a system from mined usages and per-dataset embeddings.
func New(usages []MinedUsage, datasetEmbeddings map[string]embed.Vector, seeded bool) *System {
	s := &System{
		usages:    usages,
		dsIndex:   vectorindex.NewExact(),
		dsEmbeds:  datasetEmbeddings,
		portfolio: Portfolio(),
		Seeded:    seeded,
	}
	for id, v := range datasetEmbeddings {
		s.dsIndex.Add(id, v)
	}
	return s
}

// ModelRecommendation is one row of recommend_ml_models.
type ModelRecommendation struct {
	Classifier string
	Votes      int
	Uses       int
}

// nearestWithUsages finds the most similar dataset that has mined
// pipeline usages; datasets without pipelines cannot ground a
// recommendation.
func (s *System) nearestWithUsages(emb embed.Vector) (string, bool) {
	withUsages := map[string]bool{}
	for _, u := range s.usages {
		withUsages[u.Dataset] = true
	}
	for _, hit := range s.dsIndex.Search(emb, s.dsIndex.Len()) {
		if withUsages[hit.ID] {
			return hit.ID, true
		}
	}
	return "", false
}

// RecommendModels returns the classifiers used on the dataset most similar
// to emb, ranked by total votes (the recommend_ml_models API).
func (s *System) RecommendModels(emb embed.Vector) []ModelRecommendation {
	nearest, ok := s.nearestWithUsages(emb)
	if !ok {
		return nil
	}
	byClf := map[string]*ModelRecommendation{}
	for _, u := range s.usages {
		if u.Dataset != nearest {
			continue
		}
		r := byClf[u.Classifier]
		if r == nil {
			r = &ModelRecommendation{Classifier: u.Classifier}
			byClf[u.Classifier] = r
		}
		r.Votes += u.Votes
		r.Uses++
	}
	out := make([]ModelRecommendation, 0, len(byClf))
	for _, r := range byClf {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Classifier < out[j].Classifier
	})
	return out
}

// RecommendHyperparameters returns the most common explicitly-set
// hyperparameter values for a classifier on the most similar dataset (the
// recommend_hyperparameters API; only possible with the LiDS graph).
func (s *System) RecommendHyperparameters(emb embed.Vector, classifier string) map[string]float64 {
	nearest, ok := s.nearestWithUsages(emb)
	if !ok {
		return nil
	}
	// Majority value per parameter, weighted by votes.
	weights := map[string]map[float64]int{}
	for _, u := range s.usages {
		if u.Dataset != nearest || u.Classifier != classifier {
			continue
		}
		for name, val := range u.Params {
			if weights[name] == nil {
				weights[name] = map[float64]int{}
			}
			weights[name][val] += u.Votes + 1
		}
	}
	out := map[string]float64{}
	for name, vals := range weights {
		bestV, bestW := 0.0, -1
		keys := make([]float64, 0, len(vals))
		for v := range vals {
			keys = append(keys, v)
		}
		sort.Float64s(keys)
		for _, v := range keys {
			if vals[v] > bestW {
				bestV, bestW = v, vals[v]
			}
		}
		out[name] = bestV
	}
	return out
}

// Result is the outcome of an AutoML run.
type Result struct {
	Classifier string
	Params     map[string]float64
	F1         float64
	Trials     int
}

// Fit runs AutoML on a dataset under a time budget: pick the recommended
// estimator (falling back through the portfolio), then search
// hyperparameters — seeded and pruned by the KG when Seeded, random
// otherwise — evaluating each trial with a holdout F1.
func (s *System) Fit(df *dataframe.DataFrame, target string, emb embed.Vector, budget time.Duration) (Result, error) {
	m, err := df.ToMatrix(target)
	if err != nil {
		return Result{}, err
	}
	// Three-way split: trials are selected on the validation set and the
	// final F1 is reported on a held-out test set, so a search that
	// overfits the validation split through sheer trial count does not
	// get credit for it.
	trainX, trainY, holdX, holdY := ml.TrainTestSplit(m.X, m.Y, 0.4, 3)
	validX, validY, testX, testY := ml.TrainTestSplit(holdX, holdY, 0.5, 4)
	deadline := time.Now().Add(budget)

	est := s.pickEstimator(emb)
	seed := map[string]float64{}
	if s.Seeded {
		seed = s.RecommendHyperparameters(emb, est.Name)
	}
	rng := rand.New(rand.NewSource(11))
	best := Result{Classifier: est.Name, Params: map[string]float64{}, F1: -1}

	bestValid := -1.0
	evaluate := func(params map[string]float64) {
		clf := est.Make(params)
		clf.Fit(trainX, trainY)
		score := ml.F1(validY, clf.Predict(validX))
		best.Trials++
		if score > bestValid {
			bestValid = score
			best.F1 = ml.F1(testY, clf.Predict(testX))
			best.Params = params
		}
	}

	// Trial 0: the LiDS-seeded configuration when available; without KG
	// knowledge the optimizer initializes randomly (hyperopt semantics —
	// Pip_G4C has no parameter names to start from).
	first := map[string]float64{}
	for name, grid := range est.Grid {
		if v, ok := seed[name]; ok && s.Seeded {
			first[name] = snapToGrid(v, grid)
		} else if len(grid) > 0 {
			first[name] = grid[rng.Intn(len(grid))]
		}
	}
	evaluate(first)

	// The search space is continuous between each grid's bounds (hyperopt
	// semantics); the grid entries only delimit the range. Blind random
	// search is diluted over the whole range, while the LiDS-seeded
	// search samples a tight neighborhood of the mined configuration —
	// the pruning Section 4.4 credits for the improvement.
	for time.Now().Before(deadline) {
		params := map[string]float64{}
		for name, grid := range est.Grid {
			if len(grid) == 0 {
				continue
			}
			lo, hi := grid[0], grid[len(grid)-1]
			if v, ok := seed[name]; ok && s.Seeded {
				span := (hi - lo) / 8
				x := v + (rng.Float64()*2-1)*span
				if x < lo {
					x = lo
				}
				if x > hi {
					x = hi
				}
				params[name] = roundParam(x)
				continue
			}
			params[name] = roundParam(lo + rng.Float64()*(hi-lo))
		}
		evaluate(params)
	}
	return best, nil
}

func (s *System) pickEstimator(emb embed.Vector) Estimator {
	recs := s.RecommendModels(emb)
	for _, r := range recs {
		name := r.Classifier
		if name == "xgboost.XGBClassifier" {
			name = "sklearn.ensemble.RandomForestClassifier"
		}
		for _, e := range s.portfolio {
			if e.Name == name {
				return e
			}
		}
	}
	return s.portfolio[0] // random forest default
}

// roundParam keeps integer-like hyperparameters integral while leaving
// sub-unit values (e.g. C) continuous.
func roundParam(x float64) float64 {
	if x >= 2 {
		return float64(int(x + 0.5))
	}
	return x
}

func gridIndex(v float64, grid []float64) int {
	best, bestD := 0, -1.0
	for i, g := range grid {
		d := g - v
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func snapToGrid(v float64, grid []float64) float64 {
	if len(grid) == 0 {
		return v
	}
	return grid[gridIndex(v, grid)]
}
