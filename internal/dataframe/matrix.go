package dataframe

import (
	"fmt"
	"sort"
)

// Matrix is a dense feature matrix with an aligned label vector, the input
// format of the ML substrate. Categorical columns are label-encoded;
// remaining nulls are imputed with the column mean (numeric) or a reserved
// code (categorical) so models never see NaNs.
type Matrix struct {
	X        [][]float64
	Y        []float64
	Features []string
	// Classes maps encoded label values back to original strings for
	// classification targets.
	Classes []string
}

// ToMatrix converts the frame into features X and labels Y, where target
// names the label column. Non-numeric features are label-encoded with a
// per-column deterministic code book.
func (df *DataFrame) ToMatrix(target string) (*Matrix, error) {
	tcol := df.Column(target)
	if tcol == nil {
		return nil, fmt.Errorf("dataframe: unknown target column %q", target)
	}
	n := df.NumRows()
	m := &Matrix{}
	var featCols []*Series
	for _, c := range df.cols {
		if c.Name != target {
			featCols = append(featCols, c)
			m.Features = append(m.Features, c.Name)
		}
	}
	m.X = make([][]float64, n)
	for i := range m.X {
		m.X[i] = make([]float64, len(featCols))
	}
	for j, c := range featCols {
		if c.IsNumeric() {
			mean := c.Mean()
			for i, cell := range c.Cells {
				if cell.IsNull() {
					m.X[i][j] = mean
				} else {
					m.X[i][j] = cell.F
				}
			}
			continue
		}
		codes := codeBook(c)
		for i, cell := range c.Cells {
			if cell.IsNull() {
				m.X[i][j] = -1
			} else {
				m.X[i][j] = float64(codes[cell.S])
			}
		}
	}
	// Labels: numeric targets pass through; categorical targets are encoded
	// with Classes recorded.
	m.Y = make([]float64, n)
	if tcol.IsNumeric() {
		mean := tcol.Mean()
		for i, cell := range tcol.Cells {
			if cell.IsNull() {
				m.Y[i] = mean
			} else {
				m.Y[i] = cell.F
			}
		}
		// A numeric target with few distinct integer values is treated as
		// class labels for metrics purposes; record the classes.
		if classes, ok := smallIntClasses(tcol); ok {
			m.Classes = classes
		}
	} else {
		codes := codeBook(tcol)
		m.Classes = make([]string, len(codes))
		for s, code := range codes {
			m.Classes[code] = s
		}
		for i, cell := range tcol.Cells {
			if cell.IsNull() {
				m.Y[i] = -1
			} else {
				m.Y[i] = float64(codes[cell.S])
			}
		}
	}
	return m, nil
}

func codeBook(c *Series) map[string]int {
	uniq := map[string]struct{}{}
	for _, cell := range c.Cells {
		if !cell.IsNull() {
			uniq[cell.S] = struct{}{}
		}
	}
	keys := make([]string, 0, len(uniq))
	for k := range uniq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	codes := make(map[string]int, len(keys))
	for i, k := range keys {
		codes[k] = i
	}
	return codes
}

func smallIntClasses(c *Series) ([]string, bool) {
	uniq := map[float64]struct{}{}
	for _, cell := range c.Cells {
		if cell.IsNull() {
			continue
		}
		if cell.F != float64(int64(cell.F)) {
			return nil, false
		}
		uniq[cell.F] = struct{}{}
	}
	if len(uniq) == 0 || len(uniq) > 50 {
		return nil, false
	}
	vals := make([]float64, 0, len(uniq))
	for v := range uniq {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("%g", v)
	}
	return out, true
}
