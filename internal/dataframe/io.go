package dataframe

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSV parses a CSV stream with a header row into a frame.
func ReadCSV(name string, r io.Reader) (*DataFrame, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataframe: reading header: %w", err)
	}
	df := New(name)
	series := make([]*Series, len(header))
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			h = fmt.Sprintf("col_%d", i)
		}
		// Deduplicate header names.
		base, n := h, 1
		for df.HasColumn(h) {
			n++
			h = fmt.Sprintf("%s_%d", base, n)
		}
		series[i] = &Series{Name: h}
		df.byName[h] = i
		df.cols = append(df.cols, series[i])
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataframe: reading row: %w", err)
		}
		for i := range series {
			if i < len(rec) {
				series[i].Cells = append(series[i].Cells, ParseCell(rec[i]))
			} else {
				series[i].Cells = append(series[i].Cells, NullCell())
			}
		}
	}
	return df, nil
}

// ReadCSVFile reads a CSV file; the frame name is the base filename.
func ReadCSVFile(path string) (*DataFrame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(filepath.Base(path), f)
}

// WriteCSV serializes the frame with a header row.
func (df *DataFrame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(df.Columns()); err != nil {
		return err
	}
	for i := 0; i < df.NumRows(); i++ {
		rec := make([]string, df.NumCols())
		for j, c := range df.cols {
			rec[j] = c.Cells[i].S
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to a CSV file.
func (df *DataFrame) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return df.WriteCSV(f)
}

// ReadJSON parses a JSON array of flat objects into a frame. Keys become
// columns; missing keys become nulls.
func ReadJSON(name string, r io.Reader) (*DataFrame, error) {
	var records []map[string]any
	dec := json.NewDecoder(r)
	if err := dec.Decode(&records); err != nil {
		return nil, fmt.Errorf("dataframe: decoding JSON: %w", err)
	}
	// Collect columns in first-seen order.
	var order []string
	seen := map[string]bool{}
	for _, rec := range records {
		keys := make([]string, 0, len(rec))
		for k := range rec {
			keys = append(keys, k)
		}
		// Sort keys within one record for determinism.
		sortStrings(keys)
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
	}
	df := New(name)
	for _, k := range order {
		s := &Series{Name: k}
		for _, rec := range records {
			v, ok := rec[k]
			if !ok || v == nil {
				s.Cells = append(s.Cells, NullCell())
				continue
			}
			switch x := v.(type) {
			case float64:
				s.Cells = append(s.Cells, NumberCell(x))
			case bool:
				s.Cells = append(s.Cells, BoolCell(x))
			case string:
				s.Cells = append(s.Cells, ParseCell(x))
			default:
				b, _ := json.Marshal(x)
				s.Cells = append(s.Cells, TextCell(string(b)))
			}
		}
		df.AddColumn(s)
	}
	return df, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
