// Package dataframe provides a typed, null-aware, in-memory tabular data
// structure with CSV and JSON IO. It substitutes for Pandas DataFrames in
// the original KGLiDS: the Interfaces return query results as frames, and
// the cleaning/transformation operators mutate frames in place.
package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CellKind is the runtime type of one cell.
type CellKind uint8

const (
	// Null marks a missing value ("", "NA", "NaN", "null", ...).
	Null CellKind = iota
	// Number is a numeric cell (int or float; stored as float64).
	Number
	// Text is a string cell.
	Text
	// Boolean is a true/false cell.
	Boolean
)

// Cell is one value in a column.
type Cell struct {
	Kind CellKind
	F    float64 // valid when Kind == Number or Boolean (0/1)
	S    string  // original lexical form
}

// IsNull reports whether the cell is missing.
func (c Cell) IsNull() bool { return c.Kind == Null }

// NumberCell returns a numeric cell.
func NumberCell(f float64) Cell {
	return Cell{Kind: Number, F: f, S: strconv.FormatFloat(f, 'g', -1, 64)}
}

// TextCell returns a text cell.
func TextCell(s string) Cell { return Cell{Kind: Text, S: s} }

// BoolCell returns a boolean cell.
func BoolCell(b bool) Cell {
	f := 0.0
	s := "false"
	if b {
		f, s = 1.0, "true"
	}
	return Cell{Kind: Boolean, F: f, S: s}
}

// NullCell returns a missing cell.
func NullCell() Cell { return Cell{Kind: Null} }

// ParseCell infers a cell from its lexical form (the CSV reader path).
func ParseCell(s string) Cell {
	t := strings.TrimSpace(s)
	switch strings.ToLower(t) {
	case "", "na", "n/a", "nan", "null", "none", "?":
		return NullCell()
	case "true", "yes":
		return Cell{Kind: Boolean, F: 1, S: t}
	case "false", "no":
		return Cell{Kind: Boolean, F: 0, S: t}
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil && !math.IsInf(f, 0) {
		return Cell{Kind: Number, F: f, S: t}
	}
	return Cell{Kind: Text, S: t}
}

// Series is a named column of cells.
type Series struct {
	Name  string
	Cells []Cell
}

// Len returns the number of cells.
func (s *Series) Len() int { return len(s.Cells) }

// NullCount returns the number of missing cells.
func (s *Series) NullCount() int {
	n := 0
	for _, c := range s.Cells {
		if c.IsNull() {
			n++
		}
	}
	return n
}

// IsNumeric reports whether all non-null cells are numeric and at least one
// non-null cell exists.
func (s *Series) IsNumeric() bool {
	seen := false
	for _, c := range s.Cells {
		switch c.Kind {
		case Null:
		case Number:
			seen = true
		default:
			return false
		}
	}
	return seen
}

// Floats returns the non-null numeric values (booleans count as 0/1).
func (s *Series) Floats() []float64 {
	out := make([]float64, 0, len(s.Cells))
	for _, c := range s.Cells {
		if c.Kind == Number || c.Kind == Boolean {
			out = append(out, c.F)
		}
	}
	return out
}

// Strings returns the non-null lexical forms.
func (s *Series) Strings() []string {
	out := make([]string, 0, len(s.Cells))
	for _, c := range s.Cells {
		if !c.IsNull() {
			out = append(out, c.S)
		}
	}
	return out
}

// Mean returns the mean of non-null numeric values (0 if none).
func (s *Series) Mean() float64 {
	vals := s.Floats()
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Std returns the population standard deviation of non-null numeric values.
func (s *Series) Std() float64 {
	vals := s.Floats()
	if len(vals) == 0 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)))
}

// MinMax returns the min and max of non-null numeric values.
func (s *Series) MinMax() (lo, hi float64) {
	vals := s.Floats()
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0..1) of non-null numeric values using
// linear interpolation.
func (s *Series) Quantile(q float64) float64 {
	vals := s.Floats()
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(vals) {
		return vals[i]
	}
	return vals[i]*(1-frac) + vals[i+1]*frac
}

// Mode returns the most frequent non-null lexical form.
func (s *Series) Mode() (string, bool) {
	counts := map[string]int{}
	for _, c := range s.Cells {
		if !c.IsNull() {
			counts[c.S]++
		}
	}
	best, bestN := "", -1
	// Deterministic tie-break by value.
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best, bestN >= 0
}

// Distinct returns the number of distinct non-null lexical forms.
func (s *Series) Distinct() int {
	seen := map[string]struct{}{}
	for _, c := range s.Cells {
		if !c.IsNull() {
			seen[c.S] = struct{}{}
		}
	}
	return len(seen)
}

// TrueRatio returns the fraction of non-null cells that are boolean true.
func (s *Series) TrueRatio() float64 {
	total, trues := 0, 0
	for _, c := range s.Cells {
		if c.IsNull() {
			continue
		}
		total++
		if c.Kind == Boolean && c.F == 1 {
			trues++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(trues) / float64(total)
}

// Clone deep-copies the series.
func (s *Series) Clone() *Series {
	cells := make([]Cell, len(s.Cells))
	copy(cells, s.Cells)
	return &Series{Name: s.Name, Cells: cells}
}

// DataFrame is a named collection of equal-length columns.
type DataFrame struct {
	Name   string
	cols   []*Series
	byName map[string]int
}

// New returns an empty frame with the given name.
func New(name string) *DataFrame {
	return &DataFrame{Name: name, byName: map[string]int{}}
}

// AddColumn appends a column. It panics on duplicate names or length
// mismatch with existing columns.
func (df *DataFrame) AddColumn(s *Series) {
	if _, dup := df.byName[s.Name]; dup {
		panic(fmt.Sprintf("dataframe: duplicate column %q", s.Name))
	}
	if len(df.cols) > 0 && df.cols[0].Len() != s.Len() {
		panic(fmt.Sprintf("dataframe: column %q has %d rows, frame has %d", s.Name, s.Len(), df.cols[0].Len()))
	}
	df.byName[s.Name] = len(df.cols)
	df.cols = append(df.cols, s)
}

// NumRows returns the row count.
func (df *DataFrame) NumRows() int {
	if len(df.cols) == 0 {
		return 0
	}
	return df.cols[0].Len()
}

// NumCols returns the column count.
func (df *DataFrame) NumCols() int { return len(df.cols) }

// Columns returns the column names in order.
func (df *DataFrame) Columns() []string {
	out := make([]string, len(df.cols))
	for i, c := range df.cols {
		out[i] = c.Name
	}
	return out
}

// Column returns the named column, or nil if absent.
func (df *DataFrame) Column(name string) *Series {
	i, ok := df.byName[name]
	if !ok {
		return nil
	}
	return df.cols[i]
}

// ColumnAt returns the i-th column.
func (df *DataFrame) ColumnAt(i int) *Series { return df.cols[i] }

// HasColumn reports whether the named column exists.
func (df *DataFrame) HasColumn(name string) bool {
	_, ok := df.byName[name]
	return ok
}

// Drop returns a copy of the frame without the named columns.
func (df *DataFrame) Drop(names ...string) *DataFrame {
	dropSet := map[string]bool{}
	for _, n := range names {
		dropSet[n] = true
	}
	out := New(df.Name)
	for _, c := range df.cols {
		if !dropSet[c.Name] {
			out.AddColumn(c.Clone())
		}
	}
	return out
}

// Select returns a copy of the frame with only the named columns, in the
// given order.
func (df *DataFrame) Select(names ...string) *DataFrame {
	out := New(df.Name)
	for _, n := range names {
		c := df.Column(n)
		if c == nil {
			panic(fmt.Sprintf("dataframe: unknown column %q", n))
		}
		out.AddColumn(c.Clone())
	}
	return out
}

// Clone deep-copies the frame.
func (df *DataFrame) Clone() *DataFrame {
	out := New(df.Name)
	for _, c := range df.cols {
		out.AddColumn(c.Clone())
	}
	return out
}

// FilterRows returns a copy of the frame keeping rows where keep(i) is true.
func (df *DataFrame) FilterRows(keep func(i int) bool) *DataFrame {
	out := New(df.Name)
	for _, c := range df.cols {
		nc := &Series{Name: c.Name}
		for i, cell := range c.Cells {
			if keep(i) {
				nc.Cells = append(nc.Cells, cell)
			}
		}
		out.AddColumn(nc)
	}
	return out
}

// DropNullRows returns a copy with every row containing a null removed (the
// "Baseline" cleaning strategy of Table 5).
func (df *DataFrame) DropNullRows() *DataFrame {
	return df.FilterRows(func(i int) bool {
		for _, c := range df.cols {
			if c.Cells[i].IsNull() {
				return false
			}
		}
		return true
	})
}

// NullCount returns the total number of missing cells.
func (df *DataFrame) NullCount() int {
	n := 0
	for _, c := range df.cols {
		n += c.NullCount()
	}
	return n
}

// Row returns the cells of row i in column order.
func (df *DataFrame) Row(i int) []Cell {
	out := make([]Cell, len(df.cols))
	for j, c := range df.cols {
		out[j] = c.Cells[i]
	}
	return out
}

// Head returns the first n rows as a new frame.
func (df *DataFrame) Head(n int) *DataFrame {
	return df.FilterRows(func(i int) bool { return i < n })
}

// String renders a short preview of the frame.
func (df *DataFrame) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DataFrame %q [%d rows x %d cols]\n", df.Name, df.NumRows(), df.NumCols())
	sb.WriteString(strings.Join(df.Columns(), ", "))
	return sb.String()
}
