package dataframe

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const sampleCSV = `PassengerId,Name,Age,Fare,Survived
1,Braund,22,7.25,false
2,Cumings,38,71.28,true
3,Heikkinen,,7.92,true
4,Futrelle,35,53.1,true
5,Allen,35,,false
`

func sample(t *testing.T) *DataFrame {
	t.Helper()
	df, err := ReadCSV("titanic", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		kind CellKind
	}{
		{"", Null}, {"NA", Null}, {"NaN", Null}, {"null", Null}, {"?", Null},
		{"3.5", Number}, {"-2", Number}, {"1e3", Number},
		{"true", Boolean}, {"No", Boolean},
		{"hello", Text}, {"12ab", Text},
	}
	for _, c := range cases {
		if got := ParseCell(c.in).Kind; got != c.kind {
			t.Errorf("ParseCell(%q).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
	if ParseCell("3.5").F != 3.5 {
		t.Error("numeric value not parsed")
	}
	if ParseCell("true").F != 1 {
		t.Error("boolean true not 1")
	}
}

func TestReadCSV(t *testing.T) {
	df := sample(t)
	if df.NumRows() != 5 || df.NumCols() != 5 {
		t.Fatalf("shape = %dx%d", df.NumRows(), df.NumCols())
	}
	age := df.Column("Age")
	if age == nil {
		t.Fatal("Age column missing")
	}
	if age.NullCount() != 1 {
		t.Errorf("Age nulls = %d", age.NullCount())
	}
	if !age.IsNumeric() {
		t.Error("Age should be numeric")
	}
	if df.Column("Name").IsNumeric() {
		t.Error("Name should not be numeric")
	}
}

func TestStats(t *testing.T) {
	df := sample(t)
	age := df.Column("Age")
	if got := age.Mean(); math.Abs(got-32.5) > 1e-9 {
		t.Errorf("Mean = %v, want 32.5", got)
	}
	lo, hi := age.MinMax()
	if lo != 22 || hi != 38 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	if got := age.Distinct(); got != 3 {
		t.Errorf("Distinct = %d, want 3 (22, 38, 35)", got)
	}
	surv := df.Column("Survived")
	if got := surv.TrueRatio(); got != 0.6 {
		t.Errorf("TrueRatio = %v, want 0.6", got)
	}
	if m, ok := df.Column("Age").Mode(); !ok || m != "35" {
		t.Errorf("Mode = %q, %v", m, ok)
	}
}

func TestQuantile(t *testing.T) {
	s := &Series{Name: "x"}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Cells = append(s.Cells, NumberCell(v))
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Quantile(0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
}

func TestDropAndSelect(t *testing.T) {
	df := sample(t)
	x := df.Drop("Survived", "Name")
	if x.NumCols() != 3 || x.HasColumn("Survived") {
		t.Errorf("Drop failed: %v", x.Columns())
	}
	y := df.Select("Age", "Fare")
	if y.NumCols() != 2 || y.Columns()[0] != "Age" {
		t.Errorf("Select failed: %v", y.Columns())
	}
	// Mutating the selection must not affect the original.
	y.Column("Age").Cells[0] = NullCell()
	if df.Column("Age").Cells[0].IsNull() {
		t.Error("Select aliases original data")
	}
}

func TestDropNullRows(t *testing.T) {
	df := sample(t)
	clean := df.DropNullRows()
	if clean.NumRows() != 3 {
		t.Errorf("rows after dropna = %d, want 3", clean.NumRows())
	}
	if clean.NullCount() != 0 {
		t.Error("nulls remain after DropNullRows")
	}
	if df.NumRows() != 5 {
		t.Error("original mutated")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	df := sample(t)
	var buf bytes.Buffer
	if err := df.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("back", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != df.NumRows() || back.NumCols() != df.NumCols() {
		t.Fatalf("roundtrip shape = %dx%d", back.NumRows(), back.NumCols())
	}
	if back.Column("Age").NullCount() != 1 {
		t.Error("null lost in roundtrip")
	}
}

func TestReadJSON(t *testing.T) {
	src := `[{"a": 1, "b": "x"}, {"a": 2.5, "c": true}, {"b": "y"}]`
	df, err := ReadJSON("j", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if df.NumRows() != 3 || df.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", df.NumRows(), df.NumCols())
	}
	if df.Column("a").NullCount() != 1 || df.Column("c").NullCount() != 2 {
		t.Error("missing keys not null")
	}
	if df.Column("c").Cells[1].Kind != Boolean {
		t.Error("bool not preserved")
	}
}

func TestDuplicateHeaders(t *testing.T) {
	df, err := ReadCSV("d", strings.NewReader("a,a,a\n1,2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	cols := df.Columns()
	if cols[0] == cols[1] || cols[1] == cols[2] {
		t.Errorf("duplicate headers not renamed: %v", cols)
	}
}

func TestToMatrix(t *testing.T) {
	df := sample(t)
	m, err := df.ToMatrix("Survived")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.X) != 5 || len(m.X[0]) != 4 {
		t.Fatalf("X shape = %dx%d", len(m.X), len(m.X[0]))
	}
	if len(m.Classes) != 2 {
		t.Errorf("classes = %v", m.Classes)
	}
	// Null Age imputed with mean.
	ageIdx := -1
	for i, f := range m.Features {
		if f == "Age" {
			ageIdx = i
		}
	}
	if m.X[2][ageIdx] != 32.5 {
		t.Errorf("imputed age = %v, want mean 32.5", m.X[2][ageIdx])
	}
	if _, err := df.ToMatrix("nope"); err == nil {
		t.Error("unknown target should error")
	}
}

func TestFilterRowsProperty(t *testing.T) {
	// Property: FilterRows(keep) preserves exactly the kept rows in order.
	f := func(vals []float64, mask []bool) bool {
		df := New("p")
		s := &Series{Name: "v"}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.Cells = append(s.Cells, NumberCell(v))
		}
		df.AddColumn(s)
		kept := df.FilterRows(func(i int) bool { return i < len(mask) && mask[i] })
		want := 0
		for i := range vals {
			if i < len(mask) && mask[i] {
				want++
			}
		}
		return kept.NumRows() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddColumnPanics(t *testing.T) {
	df := New("x")
	df.AddColumn(&Series{Name: "a", Cells: []Cell{NumberCell(1)}})
	assertPanic(t, func() { df.AddColumn(&Series{Name: "a"}) })
	assertPanic(t, func() { df.AddColumn(&Series{Name: "b", Cells: []Cell{NumberCell(1), NumberCell(2)}}) })
}

func assertPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
