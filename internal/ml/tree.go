// Package ml is the machine-learning substrate of the reproduction: CART
// decision trees, random forests, logistic regression, k-nearest
// neighbours, and Gaussian naive Bayes, with stratified cross-validation
// and classification metrics. The paper's evaluations train scikit-learn
// random forests on cleaned/transformed datasets (Tables 5 and 6) and use a
// portfolio of classifiers for AutoML (Figure 9); this package provides the
// equivalent models in pure Go.
package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Classifier is the common interface of all models.
type Classifier interface {
	// Fit trains on features X and integer class labels y.
	Fit(X [][]float64, y []float64)
	// Predict returns the predicted class label per row.
	Predict(X [][]float64) []float64
}

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	MaxDepth        int // 0 means unlimited
	MinSamplesSplit int
	MinSamplesLeaf  int
	// MaxFeatures is the number of features considered per split; 0 means
	// all features (sqrt is used by the random forest).
	MaxFeatures int
	// Rng drives feature subsampling; nil uses a fixed seed.
	Rng *rand.Rand
}

// DecisionTree is a CART classifier with Gini impurity.
type DecisionTree struct {
	Config TreeConfig
	root   *treeNode
	nClass int
}

type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	// leaf prediction
	class float64
	leaf  bool
}

// NewDecisionTree returns a tree with the given configuration.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	return &DecisionTree{Config: cfg}
}

// Fit implements Classifier.
func (t *DecisionTree) Fit(X [][]float64, y []float64) {
	t.nClass = countClasses(y)
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0)
}

func countClasses(y []float64) int {
	maxC := 0
	for _, v := range y {
		if int(v) > maxC {
			maxC = int(v)
		}
	}
	return maxC + 1
}

func (t *DecisionTree) build(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	counts := make([]int, t.nClass+1)
	for _, i := range idx {
		c := int(y[i])
		if c < 0 {
			c = 0
		}
		if c >= len(counts) {
			c = len(counts) - 1
		}
		counts[c]++
	}
	majority, best := 0, -1
	pure := true
	nonzero := 0
	for c, n := range counts {
		if n > best {
			best, majority = n, c
		}
		if n > 0 {
			nonzero++
		}
	}
	if nonzero > 1 {
		pure = false
	}
	if pure || len(idx) < t.Config.MinSamplesSplit || (t.Config.MaxDepth > 0 && depth >= t.Config.MaxDepth) {
		return &treeNode{leaf: true, class: float64(majority)}
	}
	feature, thresh, gain := t.bestSplit(X, y, idx)
	if gain <= 0 {
		return &treeNode{leaf: true, class: float64(majority)}
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.Config.MinSamplesLeaf || len(right) < t.Config.MinSamplesLeaf {
		return &treeNode{leaf: true, class: float64(majority)}
	}
	return &treeNode{
		feature: feature,
		thresh:  thresh,
		left:    t.build(X, y, left, depth+1),
		right:   t.build(X, y, right, depth+1),
	}
}

// bestSplit scans candidate features for the Gini-optimal threshold.
func (t *DecisionTree) bestSplit(X [][]float64, y []float64, idx []int) (feature int, thresh, gain float64) {
	nFeat := len(X[0])
	features := make([]int, nFeat)
	for i := range features {
		features[i] = i
	}
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nFeat {
		t.Config.Rng.Shuffle(nFeat, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.Config.MaxFeatures]
	}
	parentGini := giniOf(y, idx, t.nClass)
	bestGain := 0.0
	bestFeature, bestThresh := -1, 0.0

	type fv struct {
		v float64
		c int
	}
	vals := make([]fv, 0, len(idx))
	for _, f := range features {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, fv{v: X[i][f], c: int(y[i])})
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		// Sweep thresholds between distinct values maintaining class counts.
		leftCounts := make([]int, t.nClass+1)
		rightCounts := make([]int, t.nClass+1)
		for _, x := range vals {
			c := clampClass(x.c, t.nClass)
			rightCounts[c]++
		}
		nLeft, nRight := 0, len(vals)
		for k := 0; k < len(vals)-1; k++ {
			c := clampClass(vals[k].c, t.nClass)
			leftCounts[c]++
			rightCounts[c]--
			nLeft++
			nRight--
			if vals[k].v == vals[k+1].v {
				continue
			}
			g := parentGini - (float64(nLeft)*giniCounts(leftCounts, nLeft)+float64(nRight)*giniCounts(rightCounts, nRight))/float64(len(vals))
			if g > bestGain {
				bestGain = g
				bestFeature = f
				bestThresh = (vals[k].v + vals[k+1].v) / 2
			}
		}
		for i := range leftCounts {
			leftCounts[i], rightCounts[i] = 0, 0
		}
	}
	if bestFeature < 0 {
		return 0, 0, 0
	}
	return bestFeature, bestThresh, bestGain
}

func clampClass(c, nClass int) int {
	if c < 0 {
		return 0
	}
	if c > nClass {
		return nClass
	}
	return c
}

func giniOf(y []float64, idx []int, nClass int) float64 {
	counts := make([]int, nClass+1)
	for _, i := range idx {
		counts[clampClass(int(y[i]), nClass)]++
	}
	return giniCounts(counts, len(idx))
}

func giniCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = t.predictRow(row)
	}
	return out
}

func (t *DecisionTree) predictRow(row []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if row[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Depth returns the tree depth (diagnostics).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	return 1 + int(math.Max(float64(l), float64(r)))
}
