package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Accuracy returns the fraction of correct predictions.
func Accuracy(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	correct := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue))
}

// F1 returns the F1 score: binary F1 (positive class = 1) when two classes
// are present, macro-averaged F1 otherwise, matching sklearn's defaults the
// paper evaluates with.
func F1(yTrue, yPred []float64) float64 {
	classes := classSet(yTrue, yPred)
	if len(classes) <= 2 {
		return binaryF1(yTrue, yPred, 1)
	}
	sum := 0.0
	for _, c := range classes {
		sum += binaryF1(yTrue, yPred, c)
	}
	return sum / float64(len(classes))
}

// MacroF1 returns the macro-averaged F1 over all observed classes.
func MacroF1(yTrue, yPred []float64) float64 {
	classes := classSet(yTrue, yPred)
	sum := 0.0
	for _, c := range classes {
		sum += binaryF1(yTrue, yPred, c)
	}
	if len(classes) == 0 {
		return 0
	}
	return sum / float64(len(classes))
}

func classSet(ys ...[]float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, y := range ys {
		for _, v := range y {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func binaryF1(yTrue, yPred []float64, pos float64) float64 {
	var tp, fp, fn float64
	for i := range yTrue {
		switch {
		case yPred[i] == pos && yTrue[i] == pos:
			tp++
		case yPred[i] == pos && yTrue[i] != pos:
			fp++
		case yPred[i] != pos && yTrue[i] == pos:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 2 * precision * recall / (precision + recall)
}

// PrecisionRecall returns binary precision and recall for the positive
// class.
func PrecisionRecall(yTrue, yPred []float64, pos float64) (precision, recall float64) {
	var tp, fp, fn float64
	for i := range yTrue {
		switch {
		case yPred[i] == pos && yTrue[i] == pos:
			tp++
		case yPred[i] == pos:
			fp++
		case yTrue[i] == pos:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	return precision, recall
}

// StratifiedKFold yields train/test index splits preserving class ratios,
// the cross-validation protocol of Tables 5 (10-fold) and 6 (5-fold).
func StratifiedKFold(y []float64, k int, seed int64) [][2][]int {
	rng := rand.New(rand.NewSource(seed))
	byClass := map[float64][]int{}
	for i, v := range y {
		byClass[v] = append(byClass[v], i)
	}
	classes := classSet(y)
	folds := make([][]int, k)
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, v := range idx {
			folds[i%k] = append(folds[i%k], v)
		}
	}
	out := make([][2][]int, k)
	for f := 0; f < k; f++ {
		var train []int
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]int{train, folds[f]}
	}
	return out
}

// CrossValidate trains a fresh classifier per fold (via factory) and
// returns the mean of metric over folds.
func CrossValidate(factory func() Classifier, X [][]float64, y []float64, k int, metric func(a, b []float64) float64) float64 {
	if len(X) < k {
		k = len(X)
	}
	if k < 2 {
		k = 2
	}
	folds := StratifiedKFold(y, k, 7)
	total, n := 0.0, 0
	for _, fold := range folds {
		train, test := fold[0], fold[1]
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		tx := gather(X, train)
		ty := gatherY(y, train)
		vx := gather(X, test)
		vy := gatherY(y, test)
		clf := factory()
		clf.Fit(tx, ty)
		total += metric(vy, clf.Predict(vx))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// TrainTestSplit splits rows deterministically with the given test
// fraction.
func TrainTestSplit(X [][]float64, y []float64, testFrac float64, seed int64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64) {
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	nTest := int(math.Round(testFrac * float64(len(X))))
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= len(X) {
		nTest = len(X) - 1
	}
	testIdx, trainIdx := idx[:nTest], idx[nTest:]
	return gather(X, trainIdx), gatherY(y, trainIdx), gather(X, testIdx), gatherY(y, testIdx)
}

func gather(X [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = X[j]
	}
	return out
}

func gatherY(y []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// PairedTTest returns the two-tailed p-value of a paired t-test between
// score vectors a and b (the Figure 9 significance test).
func PairedTTest(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 1
	}
	diffs := make([]float64, n)
	var mean float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		mean += diffs[i]
	}
	mean /= float64(n)
	var ss float64
	for _, d := range diffs {
		ss += (d - mean) * (d - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	if sd == 0 {
		if mean == 0 {
			return 1
		}
		return 0
	}
	t := mean / (sd / math.Sqrt(float64(n)))
	return 2 * studentTSF(math.Abs(t), float64(n-1))
}

// studentTSF is the survival function of Student's t-distribution computed
// via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * incompleteBeta(df/2, 0.5, x)
}

// incompleteBeta computes the regularized incomplete beta I_x(a, b) via the
// continued-fraction expansion (Numerical Recipes betacf).
func incompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const maxIter = 200
	const eps = 3e-14
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < 1e-30 {
		d = 1e-30
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < 1e-30 {
			d = 1e-30
		}
		c = 1 + aa/c
		if math.Abs(c) < 1e-30 {
			c = 1e-30
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < 1e-30 {
			d = 1e-30
		}
		c = 1 + aa/c
		if math.Abs(c) < 1e-30 {
			c = 1e-30
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
