package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// RandomForest is a bagged ensemble of CART trees with sqrt-feature
// subsampling, the evaluation model of Tables 5 and 6.
type RandomForest struct {
	NEstimators int
	MaxDepth    int
	Seed        int64
	Workers     int
	trees       []*DecisionTree
	nClass      int
}

// NewRandomForest returns a forest with n trees.
func NewRandomForest(n int) *RandomForest {
	return &RandomForest{NEstimators: n, Seed: 17, Workers: runtime.NumCPU()}
}

// Fit implements Classifier.
func (f *RandomForest) Fit(X [][]float64, y []float64) {
	f.nClass = countClasses(y)
	f.trees = make([]*DecisionTree, f.NEstimators)
	maxFeatures := int(math.Sqrt(float64(len(X[0]))))
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	workers := f.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range ch {
				rng := rand.New(rand.NewSource(f.Seed + int64(ti)))
				// Bootstrap sample.
				bx := make([][]float64, len(X))
				by := make([]float64, len(y))
				for i := range bx {
					j := rng.Intn(len(X))
					bx[i], by[i] = X[j], y[j]
				}
				tree := NewDecisionTree(TreeConfig{
					MaxDepth:    f.MaxDepth,
					MaxFeatures: maxFeatures,
					Rng:         rng,
				})
				tree.Fit(bx, by)
				f.trees[ti] = tree
			}
		}()
	}
	for ti := 0; ti < f.NEstimators; ti++ {
		ch <- ti
	}
	close(ch)
	wg.Wait()
}

// Predict implements Classifier via majority vote.
func (f *RandomForest) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	votes := make([][]int, len(X))
	for i := range votes {
		votes[i] = make([]int, f.nClass+1)
	}
	for _, t := range f.trees {
		preds := t.Predict(X)
		for i, p := range preds {
			votes[i][clampClass(int(p), f.nClass)]++
		}
	}
	for i, v := range votes {
		best, bestN := 0, -1
		for c, n := range v {
			if n > bestN {
				best, bestN = c, n
			}
		}
		out[i] = float64(best)
	}
	return out
}

// LogisticRegression is a multinomial (one-vs-rest) logistic classifier
// trained with gradient descent.
type LogisticRegression struct {
	C       float64 // inverse regularization strength
	MaxIter int
	LR      float64
	weights [][]float64 // per class: [bias, w...]
	nClass  int
	mean    []float64
	std     []float64
}

// NewLogisticRegression returns a classifier with sklearn-like defaults.
func NewLogisticRegression() *LogisticRegression {
	return &LogisticRegression{C: 1.0, MaxIter: 100, LR: 0.1}
}

// Fit implements Classifier.
func (m *LogisticRegression) Fit(X [][]float64, y []float64) {
	m.nClass = countClasses(y)
	nf := len(X[0])
	// Standardize features for stable gradients.
	m.mean = make([]float64, nf)
	m.std = make([]float64, nf)
	for j := 0; j < nf; j++ {
		var s float64
		for i := range X {
			s += X[i][j]
		}
		m.mean[j] = s / float64(len(X))
		var ss float64
		for i := range X {
			d := X[i][j] - m.mean[j]
			ss += d * d
		}
		m.std[j] = math.Sqrt(ss / float64(len(X)))
		if m.std[j] == 0 {
			m.std[j] = 1
		}
	}
	Z := make([][]float64, len(X))
	for i, row := range X {
		z := make([]float64, nf)
		for j, v := range row {
			z[j] = (v - m.mean[j]) / m.std[j]
		}
		Z[i] = z
	}
	lambda := 1.0 / (m.C * float64(len(X)))
	m.weights = make([][]float64, m.nClass)
	for c := 0; c < m.nClass; c++ {
		w := make([]float64, nf+1)
		for iter := 0; iter < m.MaxIter; iter++ {
			grad := make([]float64, nf+1)
			for i, z := range Z {
				target := 0.0
				if int(y[i]) == c {
					target = 1.0
				}
				p := sigmoid(dotBias(w, z))
				diff := p - target
				grad[0] += diff
				for j, v := range z {
					grad[j+1] += diff * v
				}
			}
			scale := m.LR / float64(len(Z))
			for j := range w {
				reg := 0.0
				if j > 0 {
					reg = lambda * w[j]
				}
				w[j] -= scale*grad[j] + reg
			}
		}
		m.weights[c] = w
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func dotBias(w, x []float64) float64 {
	s := w[0]
	for j, v := range x {
		s += w[j+1] * v
	}
	return s
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		z := make([]float64, len(row))
		for j, v := range row {
			z[j] = (v - m.mean[j]) / m.std[j]
		}
		best, bestP := 0, math.Inf(-1)
		for c, w := range m.weights {
			p := dotBias(w, z)
			if p > bestP {
				best, bestP = c, p
			}
		}
		out[i] = float64(best)
	}
	return out
}

// KNN is a k-nearest-neighbours classifier (Euclidean).
type KNN struct {
	K  int
	tX [][]float64
	tY []float64
}

// NewKNN returns a kNN classifier.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit implements Classifier.
func (m *KNN) Fit(X [][]float64, y []float64) { m.tX, m.tY = X, y }

// nb pairs a squared distance with a label for kNN voting.
type nb struct {
	d float64
	y float64
}

// Predict implements Classifier.
func (m *KNN) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, q := range X {
		nbs := make([]nb, 0, len(m.tX))
		for t, row := range m.tX {
			d := 0.0
			for j := range row {
				diff := row[j] - q[j]
				d += diff * diff
			}
			nbs = append(nbs, nb{d: d, y: m.tY[t]})
		}
		k := m.K
		if k > len(nbs) {
			k = len(nbs)
		}
		partialSortByDistance(nbs, k)
		votes := map[float64]int{}
		for _, n := range nbs[:k] {
			votes[n.y]++
		}
		best, bestN := 0.0, -1
		for c, n := range votes {
			if n > bestN || (n == bestN && c < best) {
				best, bestN = c, n
			}
		}
		out[i] = best
	}
	return out
}

func partialSortByDistance(nbs []nb, k int) {
	// Simple selection of the k smallest; adequate at benchmark scale.
	for i := 0; i < k; i++ {
		minI := i
		for j := i + 1; j < len(nbs); j++ {
			if nbs[j].d < nbs[minI].d {
				minI = j
			}
		}
		nbs[i], nbs[minI] = nbs[minI], nbs[i]
	}
}

// GaussianNB is Gaussian naive Bayes.
type GaussianNB struct {
	classes []float64
	priors  []float64
	means   [][]float64
	vars    [][]float64
}

// NewGaussianNB returns a Gaussian naive Bayes classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Fit implements Classifier.
func (m *GaussianNB) Fit(X [][]float64, y []float64) {
	nC := countClasses(y)
	nf := len(X[0])
	m.classes = m.classes[:0]
	m.priors = make([]float64, nC)
	m.means = make([][]float64, nC)
	m.vars = make([][]float64, nC)
	counts := make([]int, nC)
	for c := 0; c < nC; c++ {
		m.means[c] = make([]float64, nf)
		m.vars[c] = make([]float64, nf)
	}
	for i, row := range X {
		c := clampClass(int(y[i]), nC-1)
		counts[c]++
		for j, v := range row {
			m.means[c][j] += v
		}
	}
	for c := 0; c < nC; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range m.means[c] {
			m.means[c][j] /= float64(counts[c])
		}
		m.priors[c] = float64(counts[c]) / float64(len(X))
	}
	for i, row := range X {
		c := clampClass(int(y[i]), nC-1)
		for j, v := range row {
			d := v - m.means[c][j]
			m.vars[c][j] += d * d
		}
	}
	for c := 0; c < nC; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range m.vars[c] {
			m.vars[c][j] = m.vars[c][j]/float64(counts[c]) + 1e-9
		}
	}
}

// Predict implements Classifier.
func (m *GaussianNB) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		best, bestLL := 0, math.Inf(-1)
		for c := range m.priors {
			if m.priors[c] == 0 {
				continue
			}
			ll := math.Log(m.priors[c])
			for j, v := range row {
				d := v - m.means[c][j]
				ll += -0.5*math.Log(2*math.Pi*m.vars[c][j]) - d*d/(2*m.vars[c][j])
			}
			if ll > bestLL {
				best, bestLL = c, ll
			}
		}
		out[i] = float64(best)
	}
	return out
}
