package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates two well-separated Gaussian clusters.
func blobs(n int, rng *rand.Rand) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c := float64(i % 2)
		cx, cy := 0.0, 0.0
		if c == 1 {
			cx, cy = 4.0, 4.0
		}
		X[i] = []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
		y[i] = c
	}
	return X, y
}

// xorData is not linearly separable; trees must handle it.
func xorData(n int, rng *rand.Rand) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func TestDecisionTreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := blobs(200, rng)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 5})
	tree.Fit(X, y)
	if acc := Accuracy(y, tree.Predict(X)); acc < 0.95 {
		t.Errorf("train accuracy = %v", acc)
	}
}

func TestDecisionTreeXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := xorData(400, rng)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 6})
	tree.Fit(X, y)
	if acc := Accuracy(y, tree.Predict(X)); acc < 0.9 {
		t.Errorf("XOR accuracy = %v (trees should fit XOR)", acc)
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := xorData(200, rng)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 2})
	tree.Fit(X, y)
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth = %d exceeds max 2", d)
	}
}

func TestRandomForest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := xorData(400, rng)
	f := NewRandomForest(20)
	f.Fit(X, y)
	if acc := Accuracy(y, f.Predict(X)); acc < 0.9 {
		t.Errorf("forest accuracy = %v", acc)
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := blobs(100, rng)
	f1 := NewRandomForest(10)
	f1.Fit(X, y)
	f2 := NewRandomForest(10)
	f2.Fit(X, y)
	p1, p2 := f1.Predict(X), f2.Predict(X)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("forest not deterministic with same seed")
		}
	}
}

func TestLogisticRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := blobs(200, rng)
	m := NewLogisticRegression()
	m.Fit(X, y)
	if acc := Accuracy(y, m.Predict(X)); acc < 0.95 {
		t.Errorf("logreg accuracy = %v", acc)
	}
}

func TestLogisticRegressionMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []float64
	centers := [][2]float64{{0, 0}, {5, 0}, {0, 5}}
	for i := 0; i < 300; i++ {
		c := i % 3
		X = append(X, []float64{centers[c][0] + rng.NormFloat64()*0.5, centers[c][1] + rng.NormFloat64()*0.5})
		y = append(y, float64(c))
	}
	m := NewLogisticRegression()
	m.Fit(X, y)
	if acc := Accuracy(y, m.Predict(X)); acc < 0.95 {
		t.Errorf("multiclass accuracy = %v", acc)
	}
}

func TestKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := blobs(200, rng)
	m := NewKNN(5)
	m.Fit(X, y)
	if acc := Accuracy(y, m.Predict(X)); acc < 0.95 {
		t.Errorf("knn accuracy = %v", acc)
	}
}

func TestGaussianNB(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := blobs(200, rng)
	m := NewGaussianNB()
	m.Fit(X, y)
	if acc := Accuracy(y, m.Predict(X)); acc < 0.95 {
		t.Errorf("nb accuracy = %v", acc)
	}
}

func TestMetrics(t *testing.T) {
	yt := []float64{1, 1, 0, 0, 1}
	yp := []float64{1, 0, 0, 1, 1}
	if got := Accuracy(yt, yp); got != 0.6 {
		t.Errorf("accuracy = %v", got)
	}
	// tp=2, fp=1, fn=1 → p=2/3, r=2/3, f1=2/3.
	if got := F1(yt, yp); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("f1 = %v", got)
	}
	p, r := PrecisionRecall(yt, yp, 1)
	if math.Abs(p-2.0/3) > 1e-9 || math.Abs(r-2.0/3) > 1e-9 {
		t.Errorf("p/r = %v/%v", p, r)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy")
	}
}

func TestMacroF1Multiclass(t *testing.T) {
	yt := []float64{0, 1, 2, 0, 1, 2}
	yp := []float64{0, 1, 2, 0, 1, 2}
	if got := MacroF1(yt, yp); got != 1 {
		t.Errorf("perfect macro F1 = %v", got)
	}
	yp2 := []float64{0, 0, 0, 0, 0, 0}
	if got := MacroF1(yt, yp2); got >= 0.5 {
		t.Errorf("degenerate macro F1 = %v", got)
	}
}

func TestStratifiedKFold(t *testing.T) {
	y := make([]float64, 100)
	for i := range y {
		if i < 20 {
			y[i] = 1
		}
	}
	folds := StratifiedKFold(y, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	for _, f := range folds {
		train, test := f[0], f[1]
		if len(train)+len(test) != 100 {
			t.Errorf("fold sizes %d + %d != 100", len(train), len(test))
		}
		pos := 0
		for _, i := range test {
			if y[i] == 1 {
				pos++
			}
		}
		if pos != 4 { // 20% of each fold of 20
			t.Errorf("fold positive count = %d, want 4", pos)
		}
		// No overlap.
		seen := map[int]bool{}
		for _, i := range train {
			seen[i] = true
		}
		for _, i := range test {
			if seen[i] {
				t.Error("train/test overlap")
			}
		}
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	X, y := blobs(150, rng)
	score := CrossValidate(func() Classifier { return NewKNN(5) }, X, y, 5, Accuracy)
	if score < 0.9 {
		t.Errorf("cv score = %v", score)
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := blobs(100, rng)
	tx, ty, vx, vy := TrainTestSplit(X, y, 0.2, 1)
	if len(vx) != 20 || len(tx) != 80 || len(ty) != 80 || len(vy) != 20 {
		t.Errorf("split sizes: %d/%d", len(tx), len(vx))
	}
}

func TestPairedTTest(t *testing.T) {
	// Identical scores: p = 1.
	a := []float64{0.8, 0.7, 0.9, 0.85}
	if p := PairedTTest(a, a); p != 1 {
		t.Errorf("identical p = %v", p)
	}
	// Consistently better scores: small p.
	b := make([]float64, 20)
	c := make([]float64, 20)
	rng := rand.New(rand.NewSource(12))
	for i := range b {
		b[i] = 0.8 + rng.Float64()*0.02
		c[i] = b[i] - 0.05
	}
	if p := PairedTTest(b, c); p > 0.01 {
		t.Errorf("strong difference p = %v, want < 0.01", p)
	}
	// Noise: p should not be tiny.
	d := make([]float64, 20)
	e := make([]float64, 20)
	for i := range d {
		d[i] = rng.Float64()
		e[i] = rng.Float64()
	}
	if p := PairedTTest(d, e); p < 0.001 {
		t.Errorf("noise p = %v unexpectedly small", p)
	}
}

func TestIncompleteBetaBounds(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 1)
		v := incompleteBeta(2, 3, x)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if incompleteBeta(2, 3, 0) != 0 || incompleteBeta(2, 3, 1) != 1 {
		t.Error("beta boundary values wrong")
	}
}

func TestSingleClassDegenerate(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{0, 0, 0}
	tree := NewDecisionTree(TreeConfig{})
	tree.Fit(X, y)
	for _, p := range tree.Predict(X) {
		if p != 0 {
			t.Error("single-class prediction wrong")
		}
	}
}
