package connector

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"

	"kglids/internal/dataframe"
	"kglids/internal/lakegen"
)

// lakegenSource streams a deterministically generated lake — the test
// and benchmark connector. Nothing is materialized: cells are generated
// chunk by chunk from per-table seeds, so the "lake" can be made
// arbitrarily larger than memory at zero disk cost. The same URI always
// yields the same data.
//
//	lakegen://wide?tables=40&cols=8&rows=5000&seed=7
type lakegenSource struct {
	spec lakegen.WideStream
	raw  string
	opts Options
}

func init() {
	Default.Register("lakegen", func(u *URI, opts Options) (Source, error) {
		if u.Opaque != "wide" {
			return nil, fmt.Errorf("connector: unknown lakegen generator %q (want lakegen://wide)", u.Opaque)
		}
		spec := lakegen.WideStream{Tables: 20, Cols: 6, Rows: 1000, Seed: 1}
		var err error
		if spec.Tables, err = queryInt(u, "tables", spec.Tables); err != nil {
			return nil, err
		}
		if spec.Cols, err = queryInt(u, "cols", spec.Cols); err != nil {
			return nil, err
		}
		if spec.Rows, err = queryInt(u, "rows", spec.Rows); err != nil {
			return nil, err
		}
		seed, err := queryInt(u, "seed", int(spec.Seed))
		if err != nil {
			return nil, err
		}
		spec.Seed = int64(seed)
		if spec.Tables < 1 || spec.Cols < 1 || spec.Rows < 0 {
			return nil, fmt.Errorf("connector: %s: tables and cols must be >= 1, rows >= 0", u.Raw)
		}
		return &lakegenSource{spec: spec, raw: u.Raw, opts: opts}, nil
	})
}

func queryInt(u *URI, key string, def int) (int, error) {
	v := u.Query.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("connector: %s: bad %s=%q", u.Raw, key, v)
	}
	return n, nil
}

func (s *lakegenSource) Scheme() string { return "lakegen" }

func (s *lakegenSource) Tables(ctx context.Context) ([]TableRef, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	refs := make([]TableRef, s.spec.Tables)
	for t := range refs {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", s.raw, t)
		fp := h.Sum64()
		if fp == 0 {
			fp = 1
		}
		refs[t] = TableRef{
			Dataset:     s.spec.DatasetName(t),
			Table:       s.spec.TableName(t),
			Locator:     fmt.Sprintf("%s#%d", s.raw, t),
			Fingerprint: fp,
		}
	}
	return refs, nil
}

func (s *lakegenSource) Open(ctx context.Context, ref TableRef) (TableReader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var t int
	if _, err := fmt.Sscanf(ref.Table, "stream_%d.csv", &t); err != nil || t < 0 || t >= s.spec.Tables {
		mErrors.WithLabelValues("lakegen", "open").Inc()
		return nil, fmt.Errorf("connector: %s: unknown lakegen table %q", s.raw, ref.Table)
	}
	mTables.WithLabelValues("lakegen").Inc()
	return &lakegenReader{
		spec: s.spec, t: t, cols: s.spec.Columns(t), chunkRows: s.opts.chunkRows(),
	}, nil
}

type lakegenReader struct {
	spec      lakegen.WideStream
	t         int
	cols      []string
	chunkRows int
	row       int
	gen       func(slot int) string
}

func (r *lakegenReader) Columns() []string { return r.cols }

func (r *lakegenReader) Next(ctx context.Context) (*Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.row >= r.spec.Rows {
		return nil, io.EOF
	}
	n := r.spec.Rows - r.row
	if n > r.chunkRows {
		n = r.chunkRows
	}
	if r.gen == nil {
		rng := r.spec.TableRNG(r.t)
		r.gen = func(slot int) string { return r.spec.Value(rng, r.t, slot) }
	}
	cols := make([][]dataframe.Cell, len(r.cols))
	for i := range cols {
		cols[i] = make([]dataframe.Cell, 0, n)
	}
	var bytes uint64
	for i := 0; i < n; i++ {
		for slot := range r.cols {
			v := r.gen(slot)
			bytes += uint64(len(v))
			cols[slot] = append(cols[slot], dataframe.ParseCell(v))
		}
	}
	r.row += n
	mBytesRead.WithLabelValues("lakegen").Add(bytes)
	mChunks.WithLabelValues("lakegen").Inc()
	mRows.WithLabelValues("lakegen").Add(uint64(n))
	return &Chunk{Cols: cols}, nil
}

func (r *lakegenReader) Close() error { return nil }
