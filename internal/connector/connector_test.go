package connector

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"kglids/internal/dataframe"
)

// drain streams a reader to exhaustion, returning the rows as string
// matrices keyed by column index.
func drain(t *testing.T, r TableReader) [][]string {
	t.Helper()
	out := make([][]string, len(r.Columns()))
	for {
		chunk, err := r.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(chunk.Cols) != len(out) {
			t.Fatalf("chunk has %d columns, want %d", len(chunk.Cols), len(out))
		}
		for i, cells := range chunk.Cols {
			if len(cells) != chunk.Rows() {
				t.Fatalf("column %d has %d cells, chunk claims %d rows", i, len(cells), chunk.Rows())
			}
			for _, c := range cells {
				out[i] = append(out[i], c.S)
			}
		}
	}
	// EOF must be sticky.
	if _, err := r.Next(context.Background()); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
	return out
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseURI(t *testing.T) {
	u, err := ParseURI("lakegen://wide?tables=3&seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if u.Scheme != "lakegen" || u.Opaque != "wide" {
		t.Fatalf("parsed %+v", u)
	}
	if u.Query.Get("tables") != "3" || u.Query.Get("seed") != "9" {
		t.Fatalf("query %v", u.Query)
	}
	u, err = ParseURI("dir://relative/path")
	if err != nil {
		t.Fatal(err)
	}
	if u.Opaque != "relative/path" {
		t.Fatalf("relative path mangled: %q", u.Opaque)
	}
	for _, bad := range []string{"", "noscheme", "://path", "dir:/half"} {
		if _, err := ParseURI(bad); err == nil {
			t.Errorf("ParseURI(%q) succeeded, want error", bad)
		}
	}
}

func TestRegistryUnknownSchemeAndDupPanic(t *testing.T) {
	if _, err := Open("nosuch://x"); err == nil {
		t.Fatal("unknown scheme did not error")
	}
	r := NewRegistry()
	r.Register("x", func(u *URI, opts Options) (Source, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register("x", func(u *URI, opts Options) (Source, error) { return nil, nil })
}

func TestDirSourceNamingAndFingerprint(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "ds1", "a.csv"), "x,y\n1,2\n3,4\n")
	writeFile(t, filepath.Join(root, "ds1", "b.tsv"), "p\tq\nu\tv\n")
	writeFile(t, filepath.Join(root, "ds2", "c.csv"), "k\n1\n")
	writeFile(t, filepath.Join(root, "ds2", "ignore.txt"), "not a table")

	src, err := Open("dir://" + root)
	if err != nil {
		t.Fatal(err)
	}
	if src.Scheme() != "dir" {
		t.Fatalf("scheme %q", src.Scheme())
	}
	refs, err := src.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, ref := range refs {
		ids = append(ids, ref.ID())
		if ref.Fingerprint == 0 {
			t.Errorf("%s: zero fingerprint from a stat-able file", ref.ID())
		}
	}
	want := []string{"ds1/a.csv", "ds1/b.tsv", "ds2/c.csv"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("tables %v, want %v", ids, want)
	}

	// Stable across enumerations; sensitive to content change.
	again, err := src.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Fingerprint != refs[0].Fingerprint {
		t.Error("fingerprint unstable across enumerations")
	}
	writeFile(t, filepath.Join(root, "ds1", "a.csv"), "x,y\n1,2\n3,4\n5,6\n")
	changed, err := src.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if changed[0].Fingerprint == refs[0].Fingerprint {
		t.Error("fingerprint did not change with content")
	}

	// TSV streams under tab delimiting.
	r, err := src.Open(context.Background(), refs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cols := drain(t, r)
	if fmt.Sprint(r.Columns()) != "[p q]" || cols[0][0] != "u" || cols[1][0] != "v" {
		t.Fatalf("tsv columns %v rows %v", r.Columns(), cols)
	}
}

func TestCSVHardening(t *testing.T) {
	root := t.TempDir()
	content := "\xEF\xBB\xBFname,note,n\n" + // BOM before header
		"alpha,\"with, comma\",1\n" +
		"beta,\"multi\nline\",2\n" + // embedded newline in a quoted field
		"ragged,3\n" + // 2 fields, skipped
		"gamma,plain,3\n" +
		"too,many,fields,here\n" // 4 fields, skipped
	writeFile(t, filepath.Join(root, "ds", "t.csv"), content)

	src, err := Open("dir://" + root)
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := src.Tables(context.Background())
	r, err := src.Open(context.Background(), refs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if fmt.Sprint(r.Columns()) != "[name note n]" {
		t.Fatalf("BOM not stripped or header wrong: %v", r.Columns())
	}
	rows := drain(t, r)
	if len(rows[0]) != 3 {
		t.Fatalf("kept %d rows, want 3 (%v)", len(rows[0]), rows)
	}
	if rows[1][0] != "with, comma" || rows[1][1] != "multi\nline" {
		t.Fatalf("quoted fields mangled: %v", rows[1])
	}
	cr, ok := r.(*csvChunkReader)
	if !ok {
		t.Fatalf("dir reader is %T", r)
	}
	if cr.SkippedRows() != 2 {
		t.Fatalf("skipped %d rows, want 2", cr.SkippedRows())
	}
}

func TestCSVDuplicateAndEmptyHeaders(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "ds", "t.csv"), "a,,a\n1,2,3\n")
	src, _ := Open("dir://" + root)
	refs, _ := src.Tables(context.Background())
	r, err := src.Open(context.Background(), refs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := fmt.Sprint(r.Columns())
	// Must match dataframe.ReadCSV's normalization.
	df, err := dataframe.ReadCSV("t.csv", strings.NewReader("a,,a\n1,2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < df.NumCols(); i++ {
		want = append(want, df.ColumnAt(i).Name)
	}
	if got != fmt.Sprint(want) {
		t.Fatalf("header normalization %v diverges from ReadCSV %v", got, want)
	}
}

func TestCSVEmptyFileIsOpenError(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "ds", "empty.csv"), "")
	src, _ := Open("dir://" + root)
	refs, _ := src.Tables(context.Background())
	if _, err := src.Open(context.Background(), refs[0]); err == nil {
		t.Fatal("empty CSV opened without error")
	}
}

func TestJSONLSource(t *testing.T) {
	root := t.TempDir()
	content := `{"b":1,"a":"x"}` + "\n" +
		"not json\n" + // skipped
		`{"a":"y","c":true}` + "\n" +
		"\n" + // blank, ignored
		`{"a":null}` + "\n"
	writeFile(t, filepath.Join(root, "ds", "t.jsonl"), content)

	src, err := Open("jsonl://" + root)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := src.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].ID() != "ds/t.jsonl" {
		t.Fatalf("refs %v", refs)
	}
	r, err := src.Open(context.Background(), refs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Key union, first-seen order with per-record sort: a,b then c.
	if fmt.Sprint(r.Columns()) != "[a b c]" {
		t.Fatalf("columns %v", r.Columns())
	}
	rows := drain(t, r)
	if len(rows[0]) != 3 {
		t.Fatalf("kept %d rows, want 3", len(rows[0]))
	}
	if rows[0][0] != "x" || rows[1][0] != "1" {
		t.Fatalf("row 0 = %v %v", rows[0][0], rows[1][0])
	}
	jr := r.(*jsonlReader)
	if jr.SkippedRows() != 1 {
		t.Fatalf("skipped %d, want 1", jr.SkippedRows())
	}
}

func TestHTTPRetryThenSuccess(t *testing.T) {
	var gets atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodHead {
			w.Header().Set("ETag", `"v1"`)
			return
		}
		if gets.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "x,y\n1,2\n3,4\n")
	}))
	defer ts.Close()

	src, err := OpenWith(ts.URL+"/lake/trips.csv", Options{HTTPRetries: 3, HTTPBackoffMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	refs, err := src.Tables(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 || refs[0].Table != "trips.csv" || refs[0].Fingerprint == 0 {
		t.Fatalf("refs %+v", refs)
	}
	r, err := src.Open(context.Background(), refs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rows := drain(t, r)
	if len(rows[0]) != 2 || rows[0][0] != "1" || rows[1][1] != "4" {
		t.Fatalf("rows %v", rows)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("server saw %d GETs, want 3 (2 retried)", got)
	}
}

func TestHTTPNonRetryableFailsFast(t *testing.T) {
	var gets atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet {
			gets.Add(1)
		}
		http.NotFound(w, req)
	}))
	defer ts.Close()
	src, err := OpenWith(ts.URL+"/gone.csv", Options{HTTPRetries: 3, HTTPBackoffMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := src.Tables(context.Background())
	if len(refs) != 1 {
		t.Fatalf("refs %v", refs)
	}
	if _, err := src.Open(context.Background(), refs[0]); err == nil {
		t.Fatal("404 did not error")
	}
	if gets.Load() != 1 {
		t.Fatalf("404 was retried (%d GETs)", gets.Load())
	}
}

func TestLakegenDeterministicAndMatchesMaterialize(t *testing.T) {
	const uri = "lakegen://wide?tables=3&cols=4&rows=700&seed=11"
	stream := func() map[string][][]string {
		src, err := OpenWith(uri, Options{ChunkRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		refs, err := src.Tables(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][][]string{}
		for _, ref := range refs {
			r, err := src.Open(context.Background(), ref)
			if err != nil {
				t.Fatal(err)
			}
			out[ref.ID()] = drain(t, r)
			r.Close()
		}
		return out
	}
	a, b := stream(), stream()
	if len(a) != 3 {
		t.Fatalf("streamed %d tables", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("lakegen stream is not deterministic")
	}
	for id, cols := range a {
		if len(cols) != 4 || len(cols[0]) != 700 {
			t.Fatalf("%s: %d cols x %d rows", id, len(cols), len(cols[0]))
		}
	}
}

func TestReaderContextCancellation(t *testing.T) {
	src, err := OpenWith("lakegen://wide?tables=1&cols=2&rows=1000", Options{ChunkRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := src.Tables(context.Background())
	r, err := src.Open(context.Background(), refs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := r.Next(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := r.Next(ctx); err != context.Canceled {
		t.Fatalf("Next under canceled ctx = %v, want context.Canceled", err)
	}
}

func TestSchemesRegistered(t *testing.T) {
	got := fmt.Sprint(Default.Schemes())
	want := "[dir http https jsonl lakegen]"
	if got != want {
		t.Fatalf("schemes %s, want %s", got, want)
	}
}
