package connector

import (
	"bytes"
	"context"
	"io"
	"testing"
)

// FuzzCSVChunks throws arbitrary bytes at the hardened CSV chunker and
// checks the streaming invariants that the profiler's accumulators rely
// on: no panics, every chunk is rectangular with exactly the header's
// column count, and every Next after exhaustion keeps returning io.EOF.
func FuzzCSVChunks(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,4\n"))
	f.Add([]byte("\xEF\xBB\xBFa,b\n\"x,y\",2\n"))
	f.Add([]byte("a,b\n\"multi\nline\",2\nragged\n"))
	f.Add([]byte("a,,a\n1,2,3\n"))
	f.Add([]byte("\"unterminated\na,b\n"))
	f.Add([]byte{0x00, 0xFF, 0xFE, '\n', ','})
	f.Fuzz(func(t *testing.T, data []byte) {
		rc := io.NopCloser(bytes.NewReader(data))
		r, err := newCSVChunkReader("fuzz", "fuzz.csv", rc, ',', 7)
		if err != nil {
			return // empty or headerless input is a legitimate open error
		}
		defer r.Close()
		ncols := len(r.Columns())
		if ncols == 0 {
			t.Fatal("open succeeded with zero columns")
		}
		for {
			chunk, err := r.Next(context.Background())
			if err == io.EOF {
				break
			}
			if err != nil {
				return // terminal read errors are allowed, panics are not
			}
			if len(chunk.Cols) != ncols {
				t.Fatalf("chunk has %d columns, header has %d", len(chunk.Cols), ncols)
			}
			n := chunk.Rows()
			if n == 0 {
				t.Fatal("empty chunk instead of io.EOF")
			}
			for i, cells := range chunk.Cols {
				if len(cells) != n {
					t.Fatalf("column %d has %d cells, chunk claims %d rows", i, len(cells), n)
				}
			}
		}
		if _, err := r.Next(context.Background()); err != io.EOF {
			t.Fatalf("Next after EOF = %v", err)
		}
	})
}
