package connector

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"path"
	"strings"
	"time"
)

// httpSource streams one remote CSV/TSV over HTTP(S) — a single-table
// source (the URI names one file, not a listing). Transient failures
// (transport errors, 5xx, 429) are retried with exponential backoff; 4xx
// other than 429 fail immediately. The table fingerprint comes from the
// server's validators (ETag, Last-Modified, Content-Length) probed with a
// HEAD request, so the ingest manager can skip an unchanged remote file
// without downloading it; a server that answers HEAD badly just yields
// fingerprint 0 ("unknown, always ingest").
type httpSource struct {
	scheme string // "http" or "https"
	rawURL string
	opts   Options
}

// httpClient bounds how long one response can take end to end. The
// timeout covers the whole body read, which is what a streaming reader
// actually consumes — a stalled lake download should fail, not hang an
// ingest worker forever.
var httpClient = &http.Client{Timeout: 5 * time.Minute}

func init() {
	for _, scheme := range []string{"http", "https"} {
		scheme := scheme
		Default.Register(scheme, func(u *URI, opts Options) (Source, error) {
			if u.Opaque == "" {
				return nil, fmt.Errorf("connector: %s:// needs a host and path", scheme)
			}
			return &httpSource{scheme: scheme, rawURL: u.Raw, opts: opts}, nil
		})
	}
}

func (s *httpSource) Scheme() string { return s.scheme }

func (s *httpSource) retries() int {
	if s.opts.HTTPRetries > 0 {
		return s.opts.HTTPRetries
	}
	return 3
}

func (s *httpSource) backoff() time.Duration {
	if s.opts.HTTPBackoffMS > 0 {
		return time.Duration(s.opts.HTTPBackoffMS) * time.Millisecond
	}
	return 250 * time.Millisecond
}

// retryable reports whether a response status is worth another attempt.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// doWithRetry issues the request, retrying transport errors and
// retryable statuses with exponential backoff. The caller owns the
// returned response body.
func (s *httpSource) doWithRetry(ctx context.Context, method string) (*http.Response, error) {
	var lastErr error
	delay := s.backoff()
	for attempt := 0; attempt <= s.retries(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(delay):
			}
			delay *= 2
		}
		req, err := http.NewRequestWithContext(ctx, method, s.rawURL, nil)
		if err != nil {
			return nil, err
		}
		resp, err := httpClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		resp.Body.Close()
		lastErr = fmt.Errorf("connector: %s %s: %s", method, s.rawURL, resp.Status)
		if !retryable(resp.StatusCode) {
			return nil, lastErr
		}
	}
	return nil, fmt.Errorf("connector: giving up after %d attempts: %w", s.retries()+1, lastErr)
}

func (s *httpSource) Tables(ctx context.Context) ([]TableRef, error) {
	// Dataset = host, table = last path segment: http://data.org/x/trips.csv
	// lands as table "data.org/trips.csv".
	host, rest := u2hostpath(s.rawURL)
	table := path.Base(rest)
	if table == "." || table == "/" || table == "" {
		table = "table.csv"
	}
	ref := TableRef{Dataset: host, Table: table, Locator: s.rawURL}
	// Fingerprint from HEAD validators; a failed HEAD is not an error —
	// the table simply cannot be skipped.
	if resp, err := s.doWithRetry(ctx, http.MethodHead); err == nil {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%s|%s|%d", s.rawURL,
			resp.Header.Get("ETag"), resp.Header.Get("Last-Modified"), resp.ContentLength)
		resp.Body.Close()
		if fp := h.Sum64(); fp != 0 {
			ref.Fingerprint = fp
		} else {
			ref.Fingerprint = 1
		}
	}
	return []TableRef{ref}, nil
}

func (s *httpSource) Open(ctx context.Context, ref TableRef) (TableReader, error) {
	resp, err := s.doWithRetry(ctx, http.MethodGet)
	if err != nil {
		mErrors.WithLabelValues(s.scheme, "open").Inc()
		return nil, err
	}
	comma := ','
	if strings.HasSuffix(strings.ToLower(ref.Table), ".tsv") {
		comma = '\t'
	}
	r, err := newCSVChunkReader(s.scheme, s.rawURL, resp.Body, comma, s.opts.chunkRows())
	if err != nil {
		mErrors.WithLabelValues(s.scheme, "open").Inc()
		return nil, err
	}
	return r, nil
}

// u2hostpath splits "scheme://host/path" into host and path without
// url.Parse normalization surprises.
func u2hostpath(raw string) (host, rest string) {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i:]
	}
	return s, "/"
}
