// Package connector is the lake-ingress subsystem of the KGLiDS
// reproduction: a registry of pluggable source connectors behind one
// streaming interface, so data enters the platform as bounded column
// chunks instead of fully materialized tables. Profiling a lake no longer
// requires it to fit in memory — peak usage is O(open readers × chunk)
// regardless of lake size (see internal/profiler's streaming path).
//
// A connector is registered under a URI scheme and opened by URI:
//
//	src, err := connector.Open("dir:///data/lake")
//	refs, err := src.Tables(ctx)
//	r, err := src.Open(ctx, refs[0])
//	for {
//		chunk, err := r.Next(ctx)
//		if err == io.EOF { break }
//		...
//	}
//
// First-party schemes:
//
//	dir://PATH        filesystem walker over CSV/TSV files
//	jsonl://PATH      filesystem walker over JSONL/NDJSON files
//	http(s)://URL     single remote CSV fetched with retry/backoff
//	lakegen://wide    deterministic generated lake (tests, benchmarks)
//
// The chunk contract: Next returns batches of typed cells in columnar
// layout until the table is exhausted, then (nil, io.EOF). Every column
// slice of a chunk has the same length. Next honors context cancellation
// between chunks, so a streaming ingest can be aborted mid-table. A
// TableRef carries a connector-reported content fingerprint (file
// size+mtime, HTTP validators, generator spec) that the ingest job
// manager uses to skip unchanged tables without opening them; zero means
// "unknown, never skip".
package connector

import (
	"context"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"

	"kglids/internal/dataframe"
)

// DefaultChunkRows is the chunk size connectors use when the opener did
// not override it: large enough to amortize per-chunk overhead, small
// enough that workers × chunk stays a rounding error next to a lake.
const DefaultChunkRows = 256

// TableRef identifies one table a source can stream.
type TableRef struct {
	// Dataset and Table form the platform table ID "dataset/table".
	Dataset string
	Table   string
	// Locator is the source-specific address of the table (file path,
	// URL, generator coordinate), for logs and errors.
	Locator string
	// Fingerprint is a cheap connector-reported content hash: file
	// size+mtime for filesystem sources, HTTP validators (ETag,
	// Last-Modified, Content-Length) for remote ones, the generator spec
	// for lakegen. Identical content reports identical fingerprints, so
	// the ingest manager can skip an unchanged table without reading it.
	// Zero means the connector cannot cheaply fingerprint the table; such
	// tables are always (re-)ingested.
	Fingerprint uint64
}

// ID returns the platform table ID "dataset/table".
func (r TableRef) ID() string { return r.Dataset + "/" + r.Table }

// Chunk is one batch of rows in columnar layout: Cols[i] holds the cells
// of column i for the chunk's rows, aligned with TableReader.Columns().
// All column slices have equal length.
type Chunk struct {
	Cols [][]dataframe.Cell
}

// Rows returns the number of rows in the chunk.
func (c *Chunk) Rows() int {
	if len(c.Cols) == 0 {
		return 0
	}
	return len(c.Cols[0])
}

// TableReader streams one table as column chunks.
type TableReader interface {
	// Columns returns the column names, known from the moment the reader
	// is opened (the CSV header, the JSONL key union, the generator
	// schema) and fixed for the reader's lifetime.
	Columns() []string
	// Next returns the next chunk, or (nil, io.EOF) once the table is
	// exhausted. Next checks ctx between chunks and returns ctx.Err()
	// when the context is done. A non-EOF error is terminal.
	Next(ctx context.Context) (*Chunk, error)
	// Close releases the reader's resources. Safe after EOF and after
	// errors; required even if Next was never called.
	Close() error
}

// Source is one opened connector instance: it enumerates the tables the
// URI designates and opens them for streaming.
type Source interface {
	// Scheme returns the registry scheme the source was opened under.
	Scheme() string
	// Tables enumerates the source's tables in deterministic order.
	Tables(ctx context.Context) ([]TableRef, error)
	// Open starts streaming one enumerated table.
	Open(ctx context.Context, ref TableRef) (TableReader, error)
}

// Options tunes how a source streams. The zero value selects defaults.
type Options struct {
	// ChunkRows is the number of rows per chunk (DefaultChunkRows if 0).
	ChunkRows int
	// HTTPRetries is the retry budget of the http connector per request
	// (default 3 retries after the first attempt).
	HTTPRetries int
	// HTTPBackoffMS is the base backoff in milliseconds between HTTP
	// retries, doubled per attempt (default 250). Tests shrink it.
	HTTPBackoffMS int
}

func (o Options) chunkRows() int {
	if o.ChunkRows > 0 {
		return o.ChunkRows
	}
	return DefaultChunkRows
}

// URI is a parsed connector locator: scheme://opaque?query.
type URI struct {
	Raw    string
	Scheme string
	// Opaque is everything between "scheme://" and the query: a
	// filesystem path for dir/jsonl, the generator name for lakegen, the
	// full host+path for http(s).
	Opaque string
	Query  url.Values
}

// ParseURI splits a connector locator without the normalization
// url.Parse applies to hierarchical URLs (a dir://relative/path must
// keep "relative" as path, not host).
func ParseURI(raw string) (*URI, error) {
	i := strings.Index(raw, "://")
	if i <= 0 {
		return nil, fmt.Errorf("connector: %q has no scheme (want scheme://...)", raw)
	}
	u := &URI{Raw: raw, Scheme: strings.ToLower(raw[:i]), Opaque: raw[i+3:]}
	if j := strings.IndexByte(u.Opaque, '?'); j >= 0 {
		q, err := url.ParseQuery(u.Opaque[j+1:])
		if err != nil {
			return nil, fmt.Errorf("connector: %q: bad query: %w", raw, err)
		}
		u.Query = q
		u.Opaque = u.Opaque[:j]
	} else {
		u.Query = url.Values{}
	}
	return u, nil
}

// Opener constructs a Source for a parsed URI.
type Opener func(u *URI, opts Options) (Source, error)

// Registry maps URI schemes to connector openers.
type Registry struct {
	mu      sync.RWMutex
	openers map[string]Opener
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{openers: map[string]Opener{}}
}

// Register binds a scheme to an opener. Registering a scheme twice
// panics: connectors are wired once, at init time, and a silent override
// would make ingestion behavior depend on package-init order.
func (r *Registry) Register(scheme string, o Opener) {
	scheme = strings.ToLower(scheme)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.openers[scheme]; dup {
		panic(fmt.Sprintf("connector: scheme %q registered twice", scheme))
	}
	r.openers[scheme] = o
}

// Schemes returns the registered schemes, sorted.
func (r *Registry) Schemes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.openers))
	for s := range r.openers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open parses the URI and dispatches to the registered opener.
func (r *Registry) Open(uri string, opts Options) (Source, error) {
	u, err := ParseURI(uri)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	o := r.openers[u.Scheme]
	r.mu.RUnlock()
	if o == nil {
		mErrors.WithLabelValues(u.Scheme, "open").Inc()
		return nil, fmt.Errorf("connector: no connector registered for scheme %q (have %s)",
			u.Scheme, strings.Join(r.Schemes(), ", "))
	}
	src, err := o(u, opts)
	if err != nil {
		mErrors.WithLabelValues(u.Scheme, "open").Inc()
		return nil, err
	}
	return src, nil
}

// Default is the process-wide registry the first-party connectors
// register into at init time.
var Default = NewRegistry()

// Open opens a URI against the default registry with default options.
func Open(uri string) (Source, error) { return Default.Open(uri, Options{}) }

// OpenWith opens a URI against the default registry with explicit
// options.
func OpenWith(uri string, opts Options) (Source, error) { return Default.Open(uri, opts) }
