package connector

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"kglids/internal/dataframe"
)

// jsonlSource walks a directory for JSONL/NDJSON files (one flat JSON
// object per line). Unlike CSV, a JSONL table's schema is not declared up
// front — the column set is the union of keys across all records — so
// opening a table makes two passes over the file: pass one scans for
// keys (bounded memory: only the key set is held), pass two streams
// chunks. Key order matches dataframe.ReadJSON: first-seen across
// records, keys sorted within a record.
type jsonlSource struct {
	root string
	opts Options
}

func init() {
	Default.Register("jsonl", func(u *URI, opts Options) (Source, error) {
		root := u.Opaque
		if root == "" {
			return nil, fmt.Errorf("connector: jsonl:// needs a path (jsonl:///data/lake)")
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("connector: jsonl://%s: %w", root, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("connector: jsonl://%s: not a directory", root)
		}
		return &jsonlSource{root: root, opts: opts}, nil
	})
}

func (s *jsonlSource) Scheme() string { return "jsonl" }

func (s *jsonlSource) Tables(ctx context.Context) ([]TableRef, error) {
	var refs []TableRef
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err != nil || info.IsDir() {
			return err
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".jsonl", ".ndjson":
		default:
			return nil
		}
		refs = append(refs, TableRef{
			Dataset:     filepath.Base(filepath.Dir(path)),
			Table:       filepath.Base(path),
			Locator:     path,
			Fingerprint: fileFingerprint(path, info),
		})
		return nil
	})
	if err != nil {
		mErrors.WithLabelValues("jsonl", "open").Inc()
		return nil, err
	}
	return refs, nil
}

// maxJSONLLine bounds one record; a line beyond this is a terminal read
// error rather than an unbounded allocation.
const maxJSONLLine = 16 << 20

func (s *jsonlSource) Open(ctx context.Context, ref TableRef) (TableReader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cols, err := scanJSONLColumns(ctx, ref.Locator)
	if err != nil {
		mErrors.WithLabelValues("jsonl", "open").Inc()
		return nil, err
	}
	f, err := os.Open(ref.Locator)
	if err != nil {
		mErrors.WithLabelValues("jsonl", "open").Inc()
		return nil, err
	}
	sc := bufio.NewScanner(&countingReader{r: f, scheme: "jsonl"})
	sc.Buffer(make([]byte, 64<<10), maxJSONLLine)
	mTables.WithLabelValues("jsonl").Inc()
	return &jsonlReader{
		f: f, sc: sc, cols: cols, chunkRows: s.opts.chunkRows(), locator: ref.Locator,
	}, nil
}

// scanJSONLColumns is pass one: the union of object keys, first-seen
// order across records with keys sorted within each record. Malformed
// lines are ignored here; pass two counts them as skipped.
func scanJSONLColumns(ctx context.Context, path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxJSONLLine)
	var order []string
	seen := map[string]bool{}
	line := 0
	for sc.Scan() {
		line++
		if line%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		b := sc.Bytes()
		if len(strings.TrimSpace(string(b))) == 0 {
			continue
		}
		var rec map[string]json.RawMessage
		if err := json.Unmarshal(b, &rec); err != nil {
			continue
		}
		keys := make([]string, 0, len(rec))
		for k := range rec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("connector: %s: %w", path, err)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("connector: %s: no JSON objects", path)
	}
	return order, nil
}

type jsonlReader struct {
	f         *os.File
	sc        *bufio.Scanner
	cols      []string
	chunkRows int
	locator   string
	skipped   uint64
	done      bool
}

func (r *jsonlReader) Columns() []string { return r.cols }

// SkippedRows returns the number of malformed lines dropped in pass two.
func (r *jsonlReader) SkippedRows() uint64 { return r.skipped }

func (r *jsonlReader) Next(ctx context.Context) (*Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.done {
		return nil, io.EOF
	}
	cols := make([][]dataframe.Cell, len(r.cols))
	for i := range cols {
		cols[i] = make([]dataframe.Cell, 0, r.chunkRows)
	}
	n := 0
	for n < r.chunkRows {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				mErrors.WithLabelValues("jsonl", "read").Inc()
				return nil, fmt.Errorf("connector: %s: %w", r.locator, err)
			}
			r.done = true
			break
		}
		b := r.sc.Bytes()
		if len(strings.TrimSpace(string(b))) == 0 {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal(b, &rec); err != nil {
			r.skipped++
			mRowsSkipped.WithLabelValues("jsonl").Inc()
			continue
		}
		for i, name := range r.cols {
			cols[i] = append(cols[i], jsonCell(rec[name]))
		}
		n++
	}
	if n == 0 {
		return nil, io.EOF
	}
	mChunks.WithLabelValues("jsonl").Inc()
	mRows.WithLabelValues("jsonl").Add(uint64(n))
	return &Chunk{Cols: cols}, nil
}

// jsonCell converts one decoded JSON value the way dataframe.ReadJSON
// does, so a JSONL table profiles identically to its JSON-array twin.
func jsonCell(v any) dataframe.Cell {
	switch x := v.(type) {
	case nil:
		return dataframe.NullCell()
	case float64:
		return dataframe.NumberCell(x)
	case bool:
		return dataframe.BoolCell(x)
	case string:
		return dataframe.ParseCell(x)
	default:
		b, _ := json.Marshal(x)
		return dataframe.TextCell(string(b))
	}
}

func (r *jsonlReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
