package connector

import "kglids/internal/obs"

// Connector metrics, labeled by URI scheme so a mixed ingest (dir + http)
// stays attributable per source kind. Registered once against the
// process-wide registry; exposed on the server's /metrics.
var (
	mBytesRead = obs.Default.NewCounterVec(
		"kglids_connector_bytes_read_total",
		"Raw source bytes consumed by connectors, by URI scheme.",
		"scheme")
	mChunks = obs.Default.NewCounterVec(
		"kglids_connector_chunks_total",
		"Column chunks yielded by connector table readers, by URI scheme.",
		"scheme")
	mRows = obs.Default.NewCounterVec(
		"kglids_connector_rows_total",
		"Rows yielded by connector table readers, by URI scheme.",
		"scheme")
	mRowsSkipped = obs.Default.NewCounterVec(
		"kglids_connector_rows_skipped_total",
		"Malformed (ragged) rows skipped by connector table readers, by URI scheme.",
		"scheme")
	mTables = obs.Default.NewCounterVec(
		"kglids_connector_tables_total",
		"Tables opened for streaming, by URI scheme.",
		"scheme")
	mErrors = obs.Default.NewCounterVec(
		"kglids_connector_errors_total",
		"Connector failures by URI scheme and stage (open or read).",
		"scheme", "stage")
)
