package connector

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

// dirSource walks a filesystem directory for CSV/TSV files — the
// streaming replacement for the materializing lake walk the server and
// profiler CLIs used to do. Layout and naming match that path exactly:
// lake/<dataset>/<table>.csv, dataset = parent directory base name,
// table = base filename, so a lake ingested via dir:// lands under the
// same table IDs as one ingested via Bootstrap.
type dirSource struct {
	root string
	opts Options
}

func init() {
	Default.Register("dir", func(u *URI, opts Options) (Source, error) {
		root := u.Opaque
		if root == "" {
			return nil, fmt.Errorf("connector: dir:// needs a path (dir:///data/lake)")
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("connector: dir://%s: %w", root, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("connector: dir://%s: not a directory", root)
		}
		return &dirSource{root: root, opts: opts}, nil
	})
}

func (s *dirSource) Scheme() string { return "dir" }

func (s *dirSource) Tables(ctx context.Context) ([]TableRef, error) {
	var refs []TableRef
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err != nil || info.IsDir() {
			return err
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".csv", ".tsv":
		default:
			return nil
		}
		refs = append(refs, TableRef{
			Dataset:     filepath.Base(filepath.Dir(path)),
			Table:       filepath.Base(path),
			Locator:     path,
			Fingerprint: fileFingerprint(path, info),
		})
		return nil
	})
	if err != nil {
		mErrors.WithLabelValues("dir", "open").Inc()
		return nil, err
	}
	return refs, nil
}

func (s *dirSource) Open(ctx context.Context, ref TableRef) (TableReader, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(ref.Locator)
	if err != nil {
		mErrors.WithLabelValues("dir", "open").Inc()
		return nil, err
	}
	comma := ','
	if strings.EqualFold(filepath.Ext(ref.Locator), ".tsv") {
		comma = '\t'
	}
	r, err := newCSVChunkReader("dir", ref.Locator, f, comma, s.opts.chunkRows())
	if err != nil {
		mErrors.WithLabelValues("dir", "open").Inc()
		return nil, err
	}
	return r, nil
}

// fileFingerprint hashes the identity a filesystem can report without
// reading content: path, size, and mtime. Rewriting a file with the same
// bytes may change the fingerprint (mtime moves) — that costs one
// redundant re-profile, never a stale skip.
func fileFingerprint(path string, info os.FileInfo) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(info.Size()))
	binary.LittleEndian.PutUint64(buf[8:], uint64(info.ModTime().UnixNano()))
	h.Write(buf[:])
	fp := h.Sum64()
	if fp == 0 {
		fp = 1 // zero is reserved for "unknown"
	}
	return fp
}
