package connector

import (
	"bufio"
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strings"

	"kglids/internal/dataframe"
)

// csvChunkReader streams one CSV/TSV byte stream as column chunks. It is
// the shared engine of the dir and http connectors, hardened for lake
// reality: quoted fields with embedded delimiters and newlines
// (encoding/csv), a UTF-8 BOM before the header, stray quotes inside
// unquoted fields (LazyQuotes), and ragged rows — a record whose field
// count differs from the header is skipped and counted, never padded and
// never a panic. Header normalization (trim, empty → col_N, duplicate →
// name_N) matches dataframe.ReadCSV so a table streamed through a
// connector profiles under the same column names as one materialized by
// the in-memory path.
type csvChunkReader struct {
	scheme    string
	rc        io.Closer
	cr        *csv.Reader
	cols      []string
	chunkRows int
	skipped   uint64
	done      bool
}

// countingReader counts raw source bytes into the per-scheme metric as
// they are consumed.
type countingReader struct {
	r      io.Reader
	scheme string
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		mBytesRead.WithLabelValues(c.scheme).Add(uint64(n))
	}
	return n, err
}

// utf8BOM is the byte-order mark some exporters prepend to CSV files.
var utf8BOM = []byte{0xEF, 0xBB, 0xBF}

// newCSVChunkReader wraps a raw byte stream. comma selects the delimiter
// (',' for CSV, '\t' for TSV). The header row is consumed immediately;
// an empty stream is an open error, not a reader that EOFs on the first
// Next.
func newCSVChunkReader(scheme, name string, rc io.ReadCloser, comma rune, chunkRows int) (*csvChunkReader, error) {
	br := bufio.NewReader(&countingReader{r: rc, scheme: scheme})
	if head, err := br.Peek(len(utf8BOM)); err == nil && string(head) == string(utf8BOM) {
		br.Discard(len(utf8BOM))
	}
	cr := csv.NewReader(br)
	cr.Comma = comma
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		rc.Close()
		return nil, fmt.Errorf("connector: %s: reading header: %w", name, err)
	}
	cols := make([]string, 0, len(header))
	seen := map[string]bool{}
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			h = fmt.Sprintf("col_%d", i)
		}
		base, n := h, 1
		for seen[h] {
			n++
			h = fmt.Sprintf("%s_%d", base, n)
		}
		seen[h] = true
		cols = append(cols, h)
	}
	mTables.WithLabelValues(scheme).Inc()
	return &csvChunkReader{scheme: scheme, rc: rc, cr: cr, cols: cols, chunkRows: chunkRows}, nil
}

func (r *csvChunkReader) Columns() []string { return r.cols }

// SkippedRows returns the number of ragged or malformed records dropped
// so far. Exposed beyond the metric so CLIs and ingest jobs can report
// per-table drop counts.
func (r *csvChunkReader) SkippedRows() uint64 { return r.skipped }

func (r *csvChunkReader) Next(ctx context.Context) (*Chunk, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.done {
		return nil, io.EOF
	}
	cols := make([][]dataframe.Cell, len(r.cols))
	for i := range cols {
		cols[i] = make([]dataframe.Cell, 0, r.chunkRows)
	}
	n := 0
	for n < r.chunkRows {
		rec, err := r.cr.Read()
		if err == io.EOF {
			r.done = true
			break
		}
		if err != nil {
			// encoding/csv resumes at the next record after a ParseError,
			// so a malformed record costs one skipped row, not the table.
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				r.skip()
				continue
			}
			mErrors.WithLabelValues(r.scheme, "read").Inc()
			return nil, err
		}
		if len(rec) != len(r.cols) {
			r.skip()
			continue
		}
		for i := range r.cols {
			cols[i] = append(cols[i], dataframe.ParseCell(rec[i]))
		}
		n++
	}
	if n == 0 {
		return nil, io.EOF
	}
	mChunks.WithLabelValues(r.scheme).Inc()
	mRows.WithLabelValues(r.scheme).Add(uint64(n))
	return &Chunk{Cols: cols}, nil
}

func (r *csvChunkReader) skip() {
	r.skipped++
	mRowsSkipped.WithLabelValues(r.scheme).Inc()
}

func (r *csvChunkReader) Close() error {
	if r.rc == nil {
		return nil
	}
	err := r.rc.Close()
	r.rc = nil
	return err
}
