package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"kglids"
	"kglids/internal/ingest"
)

// ingestHandler builds a platform with an ingest manager attached.
func ingestHandler(t *testing.T) (http.Handler, *kglids.Platform, *ingest.Manager) {
	t.Helper()
	plat, _ := testPlatform(t)
	m := ingest.New(plat.Core(), ingest.Options{Workers: 2})
	t.Cleanup(m.Close)
	return New(plat, Options{Ingest: m}), plat, m
}

// tableBody renders a POST /ingest body with one small table.
func tableBody(dataset, name string, rows int) string {
	vals := make([]string, rows)
	ages := make([]string, rows)
	for i := range vals {
		vals[i] = fmt.Sprintf("%q", fmt.Sprintf("name-%d", i))
		ages[i] = fmt.Sprint(20 + i)
	}
	return fmt.Sprintf(`{"tables":[{"dataset":%q,"name":%q,"columns":[
		{"name":"patient_name","values":[%s]},
		{"name":"age","values":[%s]}]}]}`,
		dataset, name, strings.Join(vals, ","), strings.Join(ages, ","))
}

func do(t *testing.T, h http.Handler, method, path, body string) (int, []byte) {
	t.Helper()
	var r *httptest.ResponseRecorder
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	r = httptest.NewRecorder()
	h.ServeHTTP(r, req)
	return r.Code, r.Body.Bytes()
}

// waitJob polls GET /jobs/{id} until the job reaches a terminal state.
func waitJob(t *testing.T, h http.Handler, id int) ingest.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := do(t, h, http.MethodGet, fmt.Sprintf("/jobs/%d", id), "")
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%d = %d %s", id, code, body)
		}
		var j ingest.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatalf("job decode: %v: %s", err, body)
		}
		if j.State == ingest.Done || j.State == ingest.Failed {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return ingest.Job{}
}

func TestIngestLifecycleOverHTTP(t *testing.T) {
	h, plat, _ := ingestHandler(t)
	before := plat.Stats().Tables

	// Submit a new table and follow the job to completion.
	code, body := do(t, h, http.MethodPost, "/ingest", tableBody("clinic", "patients.csv", 30))
	if code != http.StatusAccepted {
		t.Fatalf("POST /ingest = %d %s", code, body)
	}
	var accepted struct {
		Job   int          `json:"job"`
		State ingest.State `json:"state"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil || accepted.Job == 0 {
		t.Fatalf("accept body: %v %s", err, body)
	}
	job := waitJob(t, h, accepted.Job)
	if job.State != ingest.Done || len(job.Added) != 1 {
		t.Fatalf("job = %+v", job)
	}

	// The table serves immediately: /stats counts it, /similar resolves it,
	// keyword search finds it.
	if got := plat.Stats().Tables; got != before+1 {
		t.Fatalf("tables = %d, want %d", got, before+1)
	}
	code, body = do(t, h, http.MethodGet, "/similar?table="+url.QueryEscape("clinic/patients.csv"), "")
	if code != http.StatusOK {
		t.Fatalf("/similar after ingest = %d %s", code, body)
	}
	code, body = do(t, h, http.MethodGet, "/search?q=patients", "")
	if code != http.StatusOK || !strings.Contains(string(body), "patients.csv") {
		t.Fatalf("/search after ingest = %d %s", code, body)
	}

	// Unchanged resubmission is skipped via the content fingerprint.
	code, body = do(t, h, http.MethodPost, "/ingest", tableBody("clinic", "patients.csv", 30))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit = %d %s", code, body)
	}
	json.Unmarshal(body, &accepted)
	if job = waitJob(t, h, accepted.Job); len(job.Skipped) != 1 {
		t.Fatalf("resubmission not skipped: %+v", job)
	}

	// GET /jobs lists both jobs.
	code, body = do(t, h, http.MethodGet, "/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs = %d", code)
	}
	var list struct {
		Jobs []ingest.Job `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil || len(list.Jobs) != 2 {
		t.Fatalf("jobs list: %v %s", err, body)
	}

	// DELETE the table and confirm discovery stops seeing it.
	code, body = do(t, h, http.MethodDelete, "/tables/clinic/patients.csv", "")
	if code != http.StatusAccepted {
		t.Fatalf("DELETE /tables = %d %s", code, body)
	}
	json.Unmarshal(body, &accepted)
	if job = waitJob(t, h, accepted.Job); job.State != ingest.Done {
		t.Fatalf("remove job = %+v", job)
	}
	code, body = do(t, h, http.MethodGet, "/similar?table="+url.QueryEscape("clinic/patients.csv"), "")
	if code != http.StatusNotFound {
		t.Fatalf("/similar after delete = %d %s", code, body)
	}
	if got := plat.Stats().Tables; got != before {
		t.Fatalf("tables = %d after delete, want %d", got, before)
	}
}

func TestIngestValidationAndDisabled(t *testing.T) {
	// Disabled: mutation endpoints answer 503 with an envelope.
	plat, _ := testPlatform(t)
	readonly := New(plat, Options{})
	for _, c := range []struct{ method, path string }{
		{http.MethodPost, "/ingest"},
		{http.MethodGet, "/jobs"},
		{http.MethodGet, "/jobs/1"},
		{http.MethodDelete, "/tables/a/b.csv"},
	} {
		code, body := do(t, readonly, c.method, c.path, "{}")
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s %s (disabled) = %d %s", c.method, c.path, code, body)
			continue
		}
		decodeErr(t, body)
	}

	h, _, _ := ingestHandler(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/ingest", "not json", http.StatusBadRequest},
		{http.MethodPost, "/ingest", `{"tables":[]}`, http.StatusBadRequest},
		{http.MethodPost, "/ingest", `{"tables":[{"name":"x.csv"}]}`, http.StatusBadRequest},
		{http.MethodPost, "/ingest", `{"tables":[{"dataset":"d","name":"x.csv","columns":[]}]}`, http.StatusBadRequest},
		{http.MethodPost, "/ingest", `{"tables":[{"dataset":"d","name":"x.csv","columns":[
			{"name":"a","values":[1,2]},{"name":"a","values":[3,4]}]}]}`, http.StatusBadRequest},
		{http.MethodPost, "/ingest", `{"tables":[{"dataset":"d","name":"x.csv","columns":[
			{"name":"a","values":[1,2]},{"name":"b","values":[3]}]}]}`, http.StatusBadRequest},
		{http.MethodGet, "/jobs/notanumber", "", http.StatusBadRequest},
		{http.MethodGet, "/jobs/99999", "", http.StatusNotFound},
		{http.MethodDelete, "/tables/no/such.csv", "", http.StatusNotFound},
		{http.MethodGet, "/ingest", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/jobs", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		code, body := do(t, h, c.method, c.path, c.body)
		if code != c.want {
			t.Errorf("%s %s = %d (%s), want %d", c.method, c.path, code, body, c.want)
			continue
		}
		decodeErr(t, body)
	}
}

// TestIngestCellDecoding checks the JSON value → cell mapping end to end:
// numbers, strings, booleans, and nulls all land in the profile stats.
func TestIngestCellDecoding(t *testing.T) {
	h, plat, _ := ingestHandler(t)
	body := `{"tables":[{"dataset":"typed","name":"mix.csv","columns":[
		{"name":"n","values":[1, 2.5, null]},
		{"name":"s","values":["a", "b", null]},
		{"name":"b","values":[true, false, true]}]}]}`
	code, resp := do(t, h, http.MethodPost, "/ingest", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d %s", code, resp)
	}
	var accepted struct {
		Job int `json:"job"`
	}
	json.Unmarshal(resp, &accepted)
	if job := waitJob(t, h, accepted.Job); job.State != ingest.Done {
		t.Fatalf("job = %+v", job)
	}
	found := false
	for _, cp := range plat.Core().ProfilesView() {
		if cp.TableID() == "typed/mix.csv" && cp.Column == "n" {
			found = true
			if cp.Stats.Total != 3 || cp.Stats.Missing != 1 {
				t.Errorf("numeric column stats = %+v", cp.Stats)
			}
		}
	}
	if !found {
		t.Error("ingested column not profiled")
	}
}

// TestConcurrentIngestAndQueriesOverHTTP is the HTTP-level companion of
// the manager's race test: discovery requests (similar + SPARQL) hammer
// the handler while mutation jobs add and remove tables underneath.
func TestConcurrentIngestAndQueriesOverHTTP(t *testing.T) {
	h, plat, m := ingestHandler(t)
	existing := plat.TableIDs()[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{
				"/similar?table=" + url.QueryEscape(existing),
				"/sparql?query=" + url.QueryEscape(`SELECT ?t WHERE { ?t a kglids:Table . }`),
				"/stats",
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, body := do(t, h, http.MethodGet, paths[r%len(paths)], "")
				if code != http.StatusOK {
					t.Errorf("GET %s = %d %s", paths[r%len(paths)], code, body)
					return
				}
			}
		}(r)
	}

	for cycle := 0; cycle < 3; cycle++ {
		name := fmt.Sprintf("t%d.csv", cycle)
		code, body := do(t, h, http.MethodPost, "/ingest", tableBody("live", name, 20))
		if code != http.StatusAccepted {
			t.Fatalf("POST cycle %d = %d %s", cycle, code, body)
		}
		var accepted struct {
			Job int `json:"job"`
		}
		json.Unmarshal(body, &accepted)
		if j := waitJob(t, h, accepted.Job); j.State != ingest.Done {
			t.Fatalf("cycle %d add: %+v", cycle, j)
		}
		code, body = do(t, h, http.MethodDelete, "/tables/live/"+name, "")
		if code != http.StatusAccepted {
			t.Fatalf("DELETE cycle %d = %d %s", cycle, code, body)
		}
		json.Unmarshal(body, &accepted)
		if j := waitJob(t, h, accepted.Job); j.State != ingest.Done {
			t.Fatalf("cycle %d delete: %+v", cycle, j)
		}
	}
	close(stop)
	wg.Wait()
	m.Drain()
}
