package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"kglids/internal/ingest"
	"kglids/internal/obs"
)

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/api/v1/healthz":         "/api/v1/healthz",
		"/api/v1/sparql":          "/api/v1/sparql",
		"/api/v1/jobs/42":         "/api/v1/jobs/{id}",
		"/api/v1/tables/ds/a.csv": "/api/v1/tables/{id}",
		"/healthz":                "/healthz",
		"/jobs/7":                 "/jobs/{id}",
		"/tables/ds/a.csv":        "/tables/{id}",
		"/favicon.ico":            "other",
		"/api/v2/whatever":        "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestDebugMetricsEndpoint drives real traffic through the API handler,
// then scrapes the debug mux and checks the exposition is valid and
// carries the cross-layer families the acceptance criteria name.
func TestDebugMetricsEndpoint(t *testing.T) {
	plat, _ := testPlatform(t)
	api := New(plat, Options{})
	for _, path := range []string{
		"/api/v1/healthz",
		"/api/v1/stats",
		"/api/v1/sparql?query=" + url.QueryEscape("SELECT ?t WHERE { ?t a kglids:Table . }"),
		"/nope",
	} {
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}

	dbg := NewDebugHandler(plat, false)
	rec := httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	for _, family := range []string{
		`kglids_http_requests_total{route="/api/v1/healthz",method="GET",status="200"}`,
		`kglids_http_request_seconds_bucket{route="/api/v1/sparql",le="+Inf"}`,
		"kglids_http_in_flight",
		"kglids_sparql_queries_total",
		`kglids_sparql_stage_seconds_bucket{stage="execute",le="+Inf"}`,
		"kglids_sparql_cache_misses_total",
		"kglids_store_quads",
		"kglids_store_dictionary_terms",
		"kglids_store_generation",
		"kglids_platform_tables",
		"kglids_edges_build_seconds",
		"kglids_ingest_queue_depth",
		"kglids_snapshot_seconds",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	// The store gauges must reflect the live platform, not zero values.
	quads := fmt.Sprintf("kglids_store_quads %d", plat.Core().Store.Len())
	if !strings.Contains(body, quads) {
		t.Errorf("/metrics missing live gauge line %q", quads)
	}

	rec = httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/vars status = %d", rec.Code)
	}
}

// TestMetricsConcurrentScrapeIngestQuery scrapes /metrics while ingest
// jobs mutate the platform and SPARQL queries run through the API — the
// acceptance bar for race-cleanliness (run under -race in CI).
func TestMetricsConcurrentScrapeIngestQuery(t *testing.T) {
	plat, lake := testPlatform(t)
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 2, QueueSize: 64})
	defer mgr.Close()
	api := New(plat, Options{Ingest: mgr})
	dbg := NewDebugHandler(plat, false)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest churn: resubmit lake tables under fresh dataset names.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			var body bytes.Buffer
			df := lake.Tables[n%len(lake.Tables)]
			fmt.Fprintf(&body, `{"tables":[{"dataset":"churn%d","name":%q,"columns":[`, n%3, df.Name)
			for ci, col := range df.Columns() {
				if ci > 0 {
					body.WriteString(",")
				}
				fmt.Fprintf(&body, `{"name":%q,"values":["a","b"]}`, col)
			}
			body.WriteString("]}]}")
			req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", &body)
			api.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()

	// Query load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := "/api/v1/sparql?query=" + url.QueryEscape("SELECT ?t WHERE { ?t a kglids:Table . }")
		for {
			select {
			case <-stop:
				return
			default:
			}
			api.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, q, nil))
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		rec := httptest.NewRecorder()
		dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
		if err := obs.ValidateExposition(strings.NewReader(rec.Body.String())); err != nil {
			t.Fatalf("scrape %d: invalid exposition under load: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	mgr.Drain()
}

// TestPanicObservedByLogAndMetrics pins the middleware-ordering fix: a
// panicking handler must still produce an access-log line and a request
// metric carrying the final 500, because observability wraps the panic
// isolation rather than the other way around.
func TestPanicObservedByLogAndMetrics(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := chain{
		logger:    slog.New(slog.NewTextHandler(&logBuf, nil)),
		accessLog: true,
		metrics:   true,
	}
	boom := http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("boom") })
	h := withObservability(cfg, withGzip(cfg, withTimeout(cfg, time.Second, boom)))

	before := mHTTPRequests.WithLabelValues("other", "GET", "500").Value()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("panicking request lost its X-Request-ID")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "msg=request") || !strings.Contains(logs, "status=500") {
		t.Errorf("access log did not record the final 500:\n%s", logs)
	}
	if !strings.Contains(logs, "route=other") {
		t.Errorf("access log did not carry the route label:\n%s", logs)
	}
	if after := mHTTPRequests.WithLabelValues("other", "GET", "500").Value(); after != before+1 {
		t.Errorf("request counter for status 500 = %d, want %d", after, before+1)
	}
}

// TestAccessLogFields checks the structured access line carries every
// field the observability contract promises.
func TestAccessLogFields(t *testing.T) {
	plat, _ := testPlatform(t)
	var logBuf bytes.Buffer
	h := New(plat, Options{
		Logger:    slog.New(slog.NewTextHandler(&logBuf, nil)),
		AccessLog: true,
	})
	req := httptest.NewRequest(http.MethodGet, "/api/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "test-req-99")
	h.ServeHTTP(httptest.NewRecorder(), req)

	line := logBuf.String()
	for _, want := range []string{
		"msg=request", "request_id=test-req-99", "route=/api/v1/healthz",
		"method=GET", "status=200", "bytes=", "duration_ms=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q:\n%s", want, line)
		}
	}
}

// TestDisableMetrics: with DisableMetrics the chain must not touch the
// registry (the bare arm of the overhead experiment).
func TestDisableMetrics(t *testing.T) {
	plat, _ := testPlatform(t)
	h := New(plat, Options{DisableMetrics: true})
	before := mHTTPRequests.WithLabelValues("/api/v1/healthz", "GET", "200").Value()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if after := mHTTPRequests.WithLabelValues("/api/v1/healthz", "GET", "200").Value(); after != before {
		t.Errorf("DisableMetrics still recorded a request (%d -> %d)", before, after)
	}
}
