package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/dataframe"
	"kglids/internal/ingest"
)

// tinyPlatform bootstraps a handcrafted three-table lake whose IDs and
// counts are fully deterministic — the fixture for the golden-JSON
// contract tests.
func tinyPlatform(t testing.TB) *kglids.Platform {
	t.Helper()
	mk := func(name string, cols map[string][]string, order []string) *dataframe.DataFrame {
		df := dataframe.New(name)
		for _, cn := range order {
			s := &dataframe.Series{Name: cn}
			for _, v := range cols[cn] {
				s.Cells = append(s.Cells, dataframe.ParseCell(v))
			}
			df.AddColumn(s)
		}
		return df
	}
	patients := mk("patients.csv", map[string][]string{
		"name": {"Ann", "Bob", "Cid", "Dee"},
		"age":  {"34", "61", "49", "27"},
	}, []string{"name", "age"})
	patients24 := mk("patients_2024.csv", map[string][]string{
		"name": {"Eve", "Fay", "Gus", "Hal"},
		"age":  {"52", "38", "45", "60"},
	}, []string{"name", "age"})
	cities := mk("cities.csv", map[string][]string{
		"city": {"Montreal", "Toronto", "Boston", "Chicago"},
		"pop":  {"1704694", "2731571", "675647", "2746388"},
	}, []string{"city", "pop"})
	return kglids.Bootstrap(kglids.Options{}, []kglids.Table{
		{Dataset: "health", Frame: patients},
		{Dataset: "health", Frame: patients24},
		{Dataset: "world", Frame: cities},
	})
}

// getRaw issues a GET with optional headers and returns the recorder.
func getRaw(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestV1GoldenJSON pins the exact bytes of stable v1 responses: the DTO
// contract is the product, so any drift must be a conscious decision.
func TestV1GoldenJSON(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})

	rec := getRaw(t, h, "/api/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d %s", rec.Code, rec.Body)
	}
	wantHealth := fmt.Sprintf("{\"status\":\"ok\",\"generation\":%d,\"role\":\"primary\"}\n", plat.Generation())
	if got := rec.Body.String(); got != wantHealth {
		t.Errorf("healthz body:\n got %q\nwant %q", got, wantHealth)
	}

	rec = getRaw(t, h, "/api/v1/tables", nil)
	wantTables := `{"items":[` +
		`{"id":"health/patients.csv","dataset":"health","name":"patients.csv"},` +
		`{"id":"health/patients_2024.csv","dataset":"health","name":"patients_2024.csv"},` +
		`{"id":"world/cities.csv","dataset":"world","name":"cities.csv"}],"total":3}` + "\n"
	if got := rec.Body.String(); got != wantTables {
		t.Errorf("tables body:\n got %q\nwant %q", got, wantTables)
	}

	// Page one of two: exact next_cursor bytes included.
	rec = getRaw(t, h, "/api/v1/tables?limit=2", nil)
	wantPage := `{"items":[` +
		`{"id":"health/patients.csv","dataset":"health","name":"patients.csv"},` +
		`{"id":"health/patients_2024.csv","dataset":"health","name":"patients_2024.csv"}],` +
		`"total":3,"next_cursor":"` + encodeCursor(2) + `"}` + "\n"
	if got := rec.Body.String(); got != wantPage {
		t.Errorf("tables page 1:\n got %q\nwant %q", got, wantPage)
	}

	// Stats: snake_case keys, generation included, values match the
	// platform.
	rec = getRaw(t, h, "/api/v1/stats", nil)
	var st client.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if ps := plat.Stats(); st.Triples != ps.Triples || st.Tables != ps.Tables ||
		st.SimilarityEdges != ps.SimilarityEdges || st.Generation != plat.Generation() {
		t.Errorf("stats DTO %+v does not match platform %+v gen %d", st, ps, plat.Generation())
	}
	for _, key := range []string{`"triples"`, `"named_graphs"`, `"similarity_edges"`, `"generation"`} {
		if !strings.Contains(rec.Body.String(), key) {
			t.Errorf("stats body missing %s: %s", key, rec.Body)
		}
	}
}

// TestV1NoTermLeakage: no v1 response may contain the marshaled internals
// of rdf.Term (the legacy /search leak this surface exists to fix).
func TestV1NoTermLeakage(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})
	paths := []string{
		"/api/v1/search?q=patients",
		"/api/v1/unionable?table=" + url.QueryEscape("health/patients.csv"),
		"/api/v1/similar?table=" + url.QueryEscape("health/patients.csv"),
		"/api/v1/tables",
	}
	for _, p := range paths {
		rec := getRaw(t, h, p, nil)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d %s", p, rec.Code, rec.Body)
			continue
		}
		for _, leak := range []string{`"Kind"`, `"Quoted"`, `"Datatype"`, rdfResourceNS} {
			if strings.Contains(rec.Body.String(), leak) {
				t.Errorf("GET %s leaks %s: %s", p, leak, rec.Body)
			}
		}
	}
	// SPARQL results legitimately carry IRIs (that's the protocol), but
	// never marshaled rdf.Term structs.
	rec := getRaw(t, h, "/api/v1/sparql?query="+
		url.QueryEscape("SELECT ?t WHERE { ?t a kglids:Table . }"), nil)
	for _, leak := range []string{`"Kind"`, `"Quoted"`} {
		if strings.Contains(rec.Body.String(), leak) {
			t.Errorf("sparql response leaks %s: %s", leak, rec.Body)
		}
	}

	// The hits themselves carry stable dataset/table IDs.
	rec = getRaw(t, h, "/api/v1/search?q=patients", nil)
	var page client.Page[client.TableHit]
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("search decode: %v", err)
	}
	if len(page.Items) != 2 {
		t.Fatalf("search for 'patients' = %+v, want the two patient tables", page.Items)
	}
	for _, hit := range page.Items {
		if !strings.Contains(hit.ID, "/") || hit.Name == "" || hit.Score <= 0 {
			t.Errorf("malformed hit DTO %+v", hit)
		}
		if strings.Contains(hit.ID, "http://") {
			t.Errorf("hit ID %q is an IRI, want dataset/table", hit.ID)
		}
	}
}

const rdfResourceNS = "http://kglids.org/resource/"

// TestV1PaginationWalk: concatenating cursor pages must equal the
// unpaginated result, for every list endpoint.
func TestV1PaginationWalk(t *testing.T) {
	plat, lake := testPlatform(t)
	h := New(plat, Options{})
	q := lake.QueryTables[0]
	tableID := lake.Dataset[q] + "/" + q

	endpoints := []string{
		"/api/v1/tables",
		"/api/v1/search?q=" + url.QueryEscape(q[:3]),
		"/api/v1/unionable?table=" + url.QueryEscape(tableID) + "&k=8",
		"/api/v1/similar?table=" + url.QueryEscape(tableID) + "&k=8",
		"/api/v1/libraries?k=20",
	}
	for _, ep := range endpoints {
		sep := "&"
		if !strings.Contains(ep, "?") {
			sep = "?"
		}
		rec := getRaw(t, h, ep, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d %s", ep, rec.Code, rec.Body)
		}
		var full struct {
			Items []json.RawMessage `json:"items"`
			Total int               `json:"total"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
			t.Fatalf("GET %s decode: %v", ep, err)
		}
		if full.Total != len(full.Items) {
			t.Errorf("GET %s: total %d != %d items", ep, full.Total, len(full.Items))
		}

		var walked []json.RawMessage
		cursor := ""
		for pages := 0; ; pages++ {
			if pages > len(full.Items)+2 {
				t.Fatalf("GET %s: cursor walk does not terminate", ep)
			}
			u := ep + sep + "limit=2"
			if cursor != "" {
				u += "&cursor=" + url.QueryEscape(cursor)
			}
			rec := getRaw(t, h, u, nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("GET %s = %d %s", u, rec.Code, rec.Body)
			}
			var page struct {
				Items      []json.RawMessage `json:"items"`
				Total      int               `json:"total"`
				NextCursor string            `json:"next_cursor"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
				t.Fatalf("GET %s decode: %v", u, err)
			}
			if len(page.Items) > 2 {
				t.Errorf("GET %s: page of %d items exceeds limit 2", u, len(page.Items))
			}
			walked = append(walked, page.Items...)
			if page.NextCursor == "" {
				break
			}
			cursor = page.NextCursor
		}
		if len(walked) != len(full.Items) {
			t.Fatalf("GET %s: walk yielded %d items, unpaginated %d", ep, len(walked), len(full.Items))
		}
		for i := range walked {
			if string(walked[i]) != string(full.Items[i]) {
				t.Errorf("GET %s item %d: walk %s != unpaginated %s", ep, i, walked[i], full.Items[i])
			}
		}
	}
}

// TestV1ConditionalGET: reads carry the generation ETag; If-None-Match is
// answered 304 until an ingestion mutation bumps the generation.
func TestV1ConditionalGET(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})

	rec := getRaw(t, h, "/api/v1/stats", nil)
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("stats response has no ETag")
	}
	if want := generationETag(plat.Generation()); etag != want {
		t.Fatalf("ETag = %s, want %s", etag, want)
	}

	// Revalidation hits 304 with an empty body, repeatedly.
	for i := 0; i < 2; i++ {
		rec = getRaw(t, h, "/api/v1/stats", map[string]string{"If-None-Match": etag})
		if rec.Code != http.StatusNotModified {
			t.Fatalf("revalidation %d = %d %s, want 304", i, rec.Code, rec.Body)
		}
		if rec.Body.Len() != 0 {
			t.Fatalf("304 carried a body: %s", rec.Body)
		}
	}
	// Wildcard and weak validators match too.
	rec = getRaw(t, h, "/api/v1/stats", map[string]string{"If-None-Match": "*"})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match: * = %d, want 304", rec.Code)
	}
	rec = getRaw(t, h, "/api/v1/stats", map[string]string{"If-None-Match": "W/" + etag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("weak validator = %d, want 304", rec.Code)
	}

	// A mutation bumps the generation: the held validator goes stale and
	// the next conditional GET gets a fresh 200 with a new ETag.
	if _, err := plat.AddTables([]kglids.Table{tinyExtraTable()}); err != nil {
		t.Fatalf("AddTables: %v", err)
	}
	rec = getRaw(t, h, "/api/v1/stats", map[string]string{"If-None-Match": etag})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-mutation revalidation = %d, want 200", rec.Code)
	}
	if newTag := rec.Header().Get("ETag"); newTag == etag || newTag == "" {
		t.Fatalf("post-mutation ETag %s did not change from %s", newTag, etag)
	}
	// The whole read surface shares the validator: search revalidates
	// against the same generation.
	rec = getRaw(t, h, "/api/v1/search?q=patients", nil)
	searchTag := rec.Header().Get("ETag")
	rec = getRaw(t, h, "/api/v1/search?q=patients", map[string]string{"If-None-Match": searchTag})
	if rec.Code != http.StatusNotModified {
		t.Fatalf("search revalidation = %d, want 304", rec.Code)
	}
}

func tinyExtraTable() kglids.Table {
	df := dataframe.New("admissions.csv")
	s := &dataframe.Series{Name: "patient"}
	for _, v := range []string{"Ann", "Bob", "Eve", "Fay"} {
		s.Cells = append(s.Cells, dataframe.ParseCell(v))
	}
	df.AddColumn(s)
	return kglids.Table{Dataset: "health", Frame: df}
}

// TestV1SPARQLProtocol exercises the SPARQL 1.1 protocol endpoint: GET,
// POST with a raw query body, POST form-encoded — all answering
// results-JSON — plus the protocol error statuses.
func TestV1SPARQLProtocol(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})
	const q = `SELECT ?t WHERE { ?t a kglids:Table . } ORDER BY ?t`

	check := func(label string, rec *httptest.ResponseRecorder) client.SPARQLResult {
		t.Helper()
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d %s", label, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != sparqlResultsJSON {
			t.Fatalf("%s Content-Type = %q, want %q", label, ct, sparqlResultsJSON)
		}
		var res client.SPARQLResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("%s decode: %v", label, err)
		}
		if len(res.Head.Vars) != 1 || res.Head.Vars[0] != "t" {
			t.Fatalf("%s vars = %v", label, res.Head.Vars)
		}
		if len(res.Results.Bindings) != 3 {
			t.Fatalf("%s bindings = %d, want 3 tables", label, len(res.Results.Bindings))
		}
		for _, b := range res.Results.Bindings {
			term, ok := b["t"]
			if !ok || term.Type != "uri" || !strings.HasPrefix(term.Value, "http://") {
				t.Fatalf("%s binding %+v, want a uri term", label, b)
			}
		}
		return res
	}

	getRec := getRaw(t, h, "/api/v1/sparql?query="+url.QueryEscape(q), nil)
	got := check("GET", getRec)

	req := httptest.NewRequest(http.MethodPost, "/api/v1/sparql", strings.NewReader(q))
	req.Header.Set("Content-Type", "application/sparql-query")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	postRaw := check("POST sparql-query", rec)

	form := url.Values{"query": {q}}
	req = httptest.NewRequest(http.MethodPost, "/api/v1/sparql", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	postForm := check("POST form", rec)

	for i := range got.Results.Bindings {
		if got.Results.Bindings[i]["t"] != postRaw.Results.Bindings[i]["t"] ||
			got.Results.Bindings[i]["t"] != postForm.Results.Bindings[i]["t"] {
			t.Fatalf("GET/POST protocol answers diverge at row %d", i)
		}
	}

	// Literals carry type "literal" (and no datatype for plain counts of
	// xsd:integer → datatype kept; just assert the type discriminator).
	rec = getRaw(t, h, "/api/v1/sparql?query="+
		url.QueryEscape(`SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table . }`), nil)
	var res client.SPARQLResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if n := res.Results.Bindings[0]["n"]; n.Type != "literal" || n.Value != "3" {
		t.Fatalf("count binding = %+v, want literal 3", n)
	}

	// Parse errors are 400 JSON envelopes; wrong media type is 415.
	rec = getRaw(t, h, "/api/v1/sparql?query=SELECT+garbage", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("parse error = %d, want 400", rec.Code)
	}
	decodeErr(t, rec.Body.Bytes())
	req = httptest.NewRequest(http.MethodPost, "/api/v1/sparql", strings.NewReader(q))
	req.Header.Set("Content-Type", "text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain POST = %d, want 415", rec.Code)
	}
}

// TestV1ParamValidation: invalid k/limit/cursor values are 400 envelopes
// (no silent defaults), on the v1 and legacy surfaces alike.
func TestV1ParamValidation(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})
	table := url.QueryEscape("health/patients.csv")

	badPaths := []string{
		"/api/v1/unionable?table=" + table + "&k=0",
		"/api/v1/unionable?table=" + table + "&k=-3",
		"/api/v1/unionable?table=" + table + "&k=abc",
		"/api/v1/similar?table=" + table + "&k=1.5",
		"/api/v1/libraries?k=abc",
		"/api/v1/tables?limit=0",
		"/api/v1/tables?limit=abc",
		"/api/v1/tables?cursor=!!!",              // not base64 at all
		"/api/v1/tables?cursor=bm90LWEtY3Vyc29y", // valid base64, wrong prefix
		"/api/v1/search?q=patients&limit=-1",
		// Legacy routes validate the same way now.
		"/unionable?table=" + table + "&k=abc",
		"/similar?table=" + table + "&k=0",
		"/libraries?k=-1",
	}
	for _, p := range badPaths {
		rec := getRaw(t, h, p, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d %s, want 400", p, rec.Code, rec.Body)
			continue
		}
		decodeErr(t, rec.Body.Bytes())
	}

	// Oversized limits are clamped, not rejected.
	rec := getRaw(t, h, "/api/v1/tables?limit=99999", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("oversized limit = %d %s, want 200 (clamped)", rec.Code, rec.Body)
	}
}

// TestLegacyDeprecation: legacy routes answer their frozen wire format
// under a Deprecation header naming the v1 successor.
func TestLegacyDeprecation(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})

	rec := getRaw(t, h, "/search?q=patients", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/search = %d %s", rec.Code, rec.Body)
	}
	if dep := rec.Header().Get("Deprecation"); dep != "true" {
		t.Errorf("Deprecation = %q, want true", dep)
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/api/v1/search") ||
		!strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("Link = %q, want successor-version pointing at /api/v1/search", link)
	}
	// The frozen legacy format still marshals raw rdf.Term structs.
	if !strings.Contains(rec.Body.String(), `"Kind"`) ||
		!strings.Contains(rec.Body.String(), rdfResourceNS) {
		t.Errorf("legacy /search no longer serves its frozen wire format: %s", rec.Body)
	}

	// Errors carry the headers too (the deprecation signal must reach
	// clients that only ever hit error paths).
	rec = getRaw(t, h, "/unionable", nil)
	if rec.Header().Get("Deprecation") != "true" {
		t.Error("legacy error response lost the Deprecation header")
	}

	// /healthz is not deprecated.
	rec = getRaw(t, h, "/healthz", nil)
	if rec.Header().Get("Deprecation") != "" {
		t.Error("/healthz must not be deprecated")
	}
	// v1 routes are not deprecated.
	rec = getRaw(t, h, "/api/v1/stats", nil)
	if rec.Header().Get("Deprecation") != "" {
		t.Error("/api/v1/stats must not carry a Deprecation header")
	}
}

// TestDeleteTableUnescapesID: a table ID with percent-encoded characters
// (space, slash) round-trips through DELETE on both surfaces.
func TestDeleteTableUnescapesID(t *testing.T) {
	df := dataframe.New("daily admissions.csv") // space forces %20 on the wire
	s := &dataframe.Series{Name: "patient"}
	for _, v := range []string{"Ann", "Bob", "Cid", "Dee"} {
		s.Cells = append(s.Cells, dataframe.ParseCell(v))
	}
	df.AddColumn(s)
	plat := tinyPlatform(t)
	if _, err := plat.AddTables([]kglids.Table{{Dataset: "health", Frame: df}}); err != nil {
		t.Fatal(err)
	}
	const id = "health/daily admissions.csv"
	if !plat.HasTable(id) {
		t.Fatalf("fixture table %q missing", id)
	}

	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 4})
	defer mgr.Close()
	h := New(plat, Options{Ingest: mgr})

	for _, path := range []string{
		"/api/v1/tables/health/daily%20admissions.csv",
		"/api/v1/tables/health%2Fdaily%20admissions.csv", // escaped slash round-trips too
	} {
		req := httptest.NewRequest(http.MethodDelete, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("DELETE %s = %d %s", path, rec.Code, rec.Body)
		}
		var ref client.JobRef
		if err := json.Unmarshal(rec.Body.Bytes(), &ref); err != nil {
			t.Fatal(err)
		}
		if job, ok := mgr.Wait(ref.Job); !ok || job.State != ingest.Done {
			t.Fatalf("removal job %d = %+v", ref.Job, job)
		}
		if plat.HasTable(id) {
			t.Fatalf("table %q still served after DELETE %s", id, path)
		}
		// Re-add for the second round.
		if _, err := plat.AddTables([]kglids.Table{{Dataset: "health", Frame: df}}); err != nil {
			t.Fatal(err)
		}
	}

	// The legacy route decodes identically.
	req := httptest.NewRequest(http.MethodDelete, "/tables/health/daily%20admissions.csv", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("legacy DELETE = %d %s", rec.Code, rec.Body)
	}
}

// TestGzipAndRequestID: the middleware chain compresses for accepting
// clients and stamps every response with a request ID.
func TestGzipAndRequestID(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})

	plain := getRaw(t, h, "/api/v1/tables", nil)
	if plain.Header().Get("Content-Encoding") != "" {
		t.Fatal("uncompressed request got Content-Encoding")
	}
	if plain.Header().Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}

	rec := getRaw(t, h, "/api/v1/tables", map[string]string{"Accept-Encoding": "gzip"})
	if enc := rec.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("gzip reader: %v", err)
	}
	unzipped, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if !bytes.Equal(unzipped, plain.Body.Bytes()) {
		t.Fatalf("gzip body decompresses to %q, plain was %q", unzipped, plain.Body)
	}

	// A client-supplied request ID is echoed.
	rec = getRaw(t, h, "/api/v1/healthz", map[string]string{"X-Request-ID": "trace-42"})
	if got := rec.Header().Get("X-Request-ID"); got != "trace-42" {
		t.Fatalf("X-Request-ID = %q, want echoed trace-42", got)
	}

	// A 304 stays bodiless and uncompressed under gzip negotiation.
	etag := getRaw(t, h, "/api/v1/stats", nil).Header().Get("ETag")
	rec = getRaw(t, h, "/api/v1/stats", map[string]string{
		"Accept-Encoding": "gzip", "If-None-Match": etag,
	})
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("gzip 304 = %d with %d body bytes", rec.Code, rec.Body.Len())
	}
	if rec.Header().Get("Content-Encoding") != "" {
		t.Fatal("304 must not carry Content-Encoding")
	}
}

// TestV1MethodNotAllowed: wrong methods get a 405 envelope with Allow.
func TestV1MethodNotAllowed(t *testing.T) {
	plat := tinyPlatform(t)
	h := New(plat, Options{})
	req := httptest.NewRequest(http.MethodDelete, "/api/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /api/v1/stats = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q, want GET", allow)
	}
	decodeErr(t, rec.Body.Bytes())
}

// TestV1JobsSurface: the async mutation surface answers 503 without a
// manager and serves paginated job DTOs with one.
func TestV1JobsSurface(t *testing.T) {
	plat := tinyPlatform(t)
	readOnly := New(plat, Options{})
	for _, p := range []string{"/api/v1/jobs", "/api/v1/jobs/1"} {
		rec := getRaw(t, readOnly, p, nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s without -ingest = %d, want 503", p, rec.Code)
		}
		decodeErr(t, rec.Body.Bytes())
	}

	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 4})
	defer mgr.Close()
	h := New(plat, Options{Ingest: mgr})

	body := `{"tables":[{"dataset":"icu","name":"beds.csv","columns":[` +
		`{"name":"ward","values":["a","b","c","d"]},{"name":"beds","values":[4,8,2,6]}]}]}`
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /api/v1/ingest = %d %s", rec.Code, rec.Body)
	}
	var ref client.JobRef
	if err := json.Unmarshal(rec.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}
	if ref.State != client.JobQueued {
		t.Fatalf("accepted state = %q", ref.State)
	}
	if job, ok := mgr.Wait(ref.Job); !ok || job.State != ingest.Done {
		t.Fatalf("job = %+v", job)
	}

	rec = getRaw(t, h, fmt.Sprintf("/api/v1/jobs/%d", ref.Job), nil)
	var jd client.Job
	if err := json.Unmarshal(rec.Body.Bytes(), &jd); err != nil {
		t.Fatal(err)
	}
	if jd.ID != ref.Job || jd.State != client.JobDone || jd.Kind != "add" ||
		len(jd.Added) != 1 || jd.Added[0] != "icu/beds.csv" {
		t.Fatalf("job DTO = %+v", jd)
	}
	if jd.SubmittedAt.IsZero() || jd.FinishedAt.Before(jd.SubmittedAt) {
		t.Fatalf("job DTO timestamps broken: %+v", jd)
	}

	rec = getRaw(t, h, "/api/v1/jobs?limit=1", nil)
	var page client.Page[client.Job]
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Items) != 1 {
		t.Fatalf("jobs page = %+v", page)
	}
	if !plat.HasTable("icu/beds.csv") {
		t.Fatal("ingested table not served")
	}
}

// TestV1TimeoutEnvelope: the per-request deadline applies to v1 SPARQL
// exactly as to the legacy endpoint.
func TestV1TimeoutEnvelope(t *testing.T) {
	plat, _ := testPlatform(t)
	h := New(plat, Options{RequestTimeout: 10 * time.Millisecond})
	q := url.QueryEscape(`SELECT (COUNT(*) AS ?n) WHERE {
		?a kglids:name ?n1 . ?b kglids:name ?n2 . ?c kglids:name ?n3 .
		?d kglids:name ?n4 . ?e kglids:name ?n5 . }`)
	rec := getRaw(t, h, "/api/v1/sparql?query="+q, nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", rec.Code, rec.Body)
	}
	decodeErr(t, rec.Body.Bytes())
}
