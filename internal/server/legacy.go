package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"kglids/internal/ingest"
)

// registerLegacy mounts the original unversioned routes. Their wire format
// is FROZEN: these handlers marshal the same internal structs as the day
// each endpoint shipped (e.g. /search returns raw rdf.Term structs with
// Kind/Value fields), because existing integrations parse those bytes.
// Do not change a legacy response shape — add to /api/v1 instead.
// (One deliberate exception, made across both surfaces at once: a
// non-numeric or non-positive k is now a 400 envelope instead of a silent
// default, per the uniform parameter-validation policy in
// docs/SERVER_API.md. Responses to valid requests are unchanged.)
//
// Every legacy route except /healthz answers with `Deprecation: true` and
// a `Link: <successor>; rel="successor-version"` header naming its
// /api/v1 replacement.
//
//	GET /healthz                        liveness probe
//	GET /stats                          LiDS graph statistics
//	GET /sparql?query=...               ad-hoc SPARQL (JSON rows)
//	GET /search?q=kw1,kw2               keyword search (one conjunction)
//	GET /unionable?table=ds/t.csv&k=5   top-k unionable tables
//	GET /similar?table=ds/t.csv&k=5     top-k similar tables (HNSW index)
//	GET /libraries?k=10                 top-k libraries across pipelines
//
// With Options.Ingest set, the live-mutation API is also served:
//
//	POST   /ingest                      submit tables as an async add job (202)
//	GET    /jobs                        list ingestion jobs
//	GET    /jobs/{id}                   one job's state and outcome
//	DELETE /tables/{id...}              submit an async table removal (202)
func (s *server) registerLegacy(mux *http.ServeMux) {
	// handleAs registers a JSON endpoint restricted to one method, keeping
	// the error envelope uniform (ServeMux's own 405s are plain text).
	// successor, when non-empty, is the /api/v1 replacement advertised in
	// the deprecation headers.
	handleAs := func(method, pattern string, status int, successor string, h func(r *http.Request) (any, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if successor != "" {
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
			}
			if r.Method != method {
				writeError(w, http.StatusMethodNotAllowed, "method not allowed; use "+method)
				return
			}
			v, err := h(r)
			if err != nil {
				writeError(w, statusFor(err), err.Error())
				return
			}
			writeJSON(w, status, v)
		})
	}
	handle := func(pattern, successor string, h func(r *http.Request) (any, error)) {
		handleAs(http.MethodGet, pattern, http.StatusOK, successor, h)
	}

	handle("/healthz", "", func(*http.Request) (any, error) {
		// Additive only: existing probes keep reading "status"; the role
		// and replica fields ride along for replication-aware checks.
		h := s.healthDTO()
		out := map[string]any{"status": h.Status, "role": h.Role}
		if h.Role == "replica" {
			out["applied_generation"] = h.AppliedGeneration
			out["lag_seconds"] = h.LagSeconds
		}
		return out, nil
	})
	handle("/stats", "/api/v1/stats", func(*http.Request) (any, error) {
		return s.plat.Stats(), nil
	})
	handle("/sparql", "/api/v1/sparql", func(r *http.Request) (any, error) {
		q := r.URL.Query().Get("query")
		if q == "" {
			return nil, badRequest("missing 'query' parameter")
		}
		// The request context carries the per-request deadline: when it
		// fires, the engine aborts the evaluation mid-iteration instead of
		// burning a worker on an abandoned query. Repeated queries are
		// answered from the engine's (query, store generation) cache.
		res, err := s.plat.QueryContext(r.Context(), q)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Explicit 504: withTimeout's own deadline branch races the
				// handler finishing, so the buffered response must carry the
				// right status either way.
				return nil, &httpError{status: http.StatusGatewayTimeout, msg: "request timed out"}
			}
			return nil, badRequest(err.Error())
		}
		rows := make([]map[string]string, len(res.Rows))
		for i, b := range res.Rows {
			row := map[string]string{}
			for v, t := range b {
				row[v] = t.Value
			}
			rows[i] = row
		}
		return map[string]any{"vars": res.Vars, "rows": rows}, nil
	})
	handle("/search", "/api/v1/search", func(r *http.Request) (any, error) {
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, badRequest("missing 'q' parameter (comma-separated keywords)")
		}
		return s.plat.SearchKeywords([][]string{strings.Split(q, ",")}), nil
	})
	handle("/unionable", "/api/v1/unionable", func(r *http.Request) (any, error) {
		table := r.URL.Query().Get("table")
		if table == "" {
			return nil, badRequest("missing 'table' parameter (\"dataset/table\")")
		}
		k, err := intParam(r, "k", 10, MaxK)
		if err != nil {
			return nil, err
		}
		res, err := s.plat.UnionableTables(table, k)
		if err != nil {
			return nil, notFound(err.Error())
		}
		return res, nil
	})
	handle("/similar", "/api/v1/similar", func(r *http.Request) (any, error) {
		table := r.URL.Query().Get("table")
		if table == "" {
			return nil, badRequest("missing 'table' parameter (\"dataset/table\")")
		}
		k, err := intParam(r, "k", 10, MaxK)
		if err != nil {
			return nil, err
		}
		c := s.plat.Core()
		emb, ok := c.TableEmbedding(table)
		if !ok {
			return nil, notFound(fmt.Sprintf("unknown table %q", table))
		}
		return c.TableANN.Search(emb, k), nil
	})
	handle("/libraries", "/api/v1/libraries", func(r *http.Request) (any, error) {
		k, err := intParam(r, "k", 10, MaxK)
		if err != nil {
			return nil, err
		}
		res, err := s.plat.GetTopKLibrariesUsed(k)
		if err != nil {
			return nil, err
		}
		return res, nil
	})

	// Live-mutation API. Registered unconditionally so a read-only server
	// answers with a clear envelope instead of a bare 404.
	handleAs(http.MethodPost, "/ingest", http.StatusAccepted, "/api/v1/ingest", func(r *http.Request) (any, error) {
		jobID, err := s.submitIngest(r)
		if err != nil {
			return nil, err
		}
		return map[string]any{"job": jobID, "state": ingest.Queued}, nil
	})
	handle("/jobs", "/api/v1/jobs", func(*http.Request) (any, error) {
		m, err := s.manager()
		if err != nil {
			return nil, err
		}
		return map[string]any{"jobs": m.Jobs()}, nil
	})
	handle("/jobs/{id}", "/api/v1/jobs", func(r *http.Request) (any, error) {
		return s.jobByID(r)
	})
	// The {id...} wildcard is percent-decoded by ServeMux, so a table ID
	// submitted as /tables/health%2Fadmissions.csv or with %20-escaped
	// spaces round-trips to the exact "dataset/table" string the platform
	// serves (pinned by TestDeleteTableUnescapesID).
	handleAs(http.MethodDelete, "/tables/{id...}", http.StatusAccepted, "/api/v1/tables", func(r *http.Request) (any, error) {
		jobID, err := s.submitRemoval(r.PathValue("id"))
		if err != nil {
			return nil, err
		}
		return map[string]any{"job": jobID, "state": ingest.Queued}, nil
	})
}
