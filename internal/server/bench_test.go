package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// benchHandler is a minimal inner handler so the middleware delta, not
// the route work, dominates the numbers.
var benchHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
})

func benchChain(metrics bool) http.Handler {
	cfg := chain{logger: discardLogger(), metrics: metrics}
	return withObservability(cfg, benchHandler)
}

func BenchmarkMiddlewareMetricsOn(b *testing.B) {
	h := benchChain(true)
	req := httptest.NewRequest(http.MethodGet, "/api/v1/healthz", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
}

func BenchmarkMiddlewareMetricsOff(b *testing.B) {
	h := benchChain(false)
	req := httptest.NewRequest(http.MethodGet, "/api/v1/healthz", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
}
