package server

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"kglids"
	"kglids/client"
	"kglids/internal/ingest"
	"kglids/internal/rdf"
	"kglids/internal/sparql"
)

// sparqlResultsJSON is the SPARQL 1.1 query-results media type.
const sparqlResultsJSON = "application/sparql-results+json"

// maxSPARQLBody bounds a POST /api/v1/sparql query body (1 MiB).
const maxSPARQLBody = 1 << 20

// registerV1 mounts the versioned /api/v1 surface: stable DTOs (the types
// of package kglids/client — the handlers marshal them directly, so the
// wire contract and the typed client cannot drift), cursor/limit
// pagination on every list endpoint, conditional GET bound to the store
// generation, and a SPARQL 1.1 protocol endpoint.
//
//	GET    /api/v1/healthz                      liveness + generation
//	GET    /api/v1/stats                        graph statistics DTO
//	GET    /api/v1/tables                       paginated table inventory
//	GET    /api/v1/search?q=kw1,kw2             paginated keyword search
//	GET    /api/v1/unionable?table=ID&k=10      paginated top-k unionable
//	GET    /api/v1/similar?table=ID&k=10        paginated top-k similar
//	GET    /api/v1/libraries?k=10               paginated library popularity
//	GET    /api/v1/sparql?query=...             SPARQL 1.1 protocol
//	POST   /api/v1/sparql                       (sparql-query or form body)
//	POST   /api/v1/ingest                       async add job (202)
//	GET    /api/v1/jobs                         paginated job history
//	GET    /api/v1/jobs/{id}                    one job DTO
//	DELETE /api/v1/tables/{id...}               async removal (202)
//
// Conditional GET: every deterministic read (everything except the job
// endpoints, whose lifecycle advances without graph mutations) carries
// `ETag: "<store generation>"`; a request whose If-None-Match matches the
// live generation is answered 304 with no body. Any mutation bumps the
// generation, invalidating all held validators at once.
func (s *server) registerV1(mux *http.ServeMux) {
	get := func(pattern string, etag bool, h func(r *http.Request) (any, error)) {
		s.route(mux, pattern, map[string]v1handler{
			http.MethodGet: {status: http.StatusOK, etag: etag, fn: h},
		})
	}

	get("/api/v1/healthz", false, func(*http.Request) (any, error) {
		return s.healthDTO(), nil
	})
	get("/api/v1/stats", true, func(*http.Request) (any, error) {
		return statsDTO(s.plat.Stats(), s.plat.Generation()), nil
	})
	get("/api/v1/tables", true, func(r *http.Request) (any, error) {
		pg, err := parsePage(r)
		if err != nil {
			return nil, err
		}
		// Paginate the (sorted, stable) ID list first and build DTOs for
		// the requested page only — O(page), not O(lake), per request.
		idPage := pageOf(s.plat.TableIDs(), pg)
		infos := make([]client.TableInfo, len(idPage.Items))
		for i, id := range idPage.Items {
			infos[i] = tableInfoDTO(id)
		}
		return client.Page[client.TableInfo]{
			Items: infos, Total: idPage.Total, NextCursor: idPage.NextCursor,
		}, nil
	})
	get("/api/v1/search", true, func(r *http.Request) (any, error) {
		qs := r.URL.Query()["q"]
		if len(qs) == 0 {
			return nil, badRequest("missing 'q' parameter (comma-separated keywords; repeat q to OR conditions)")
		}
		pg, err := parsePage(r)
		if err != nil {
			return nil, err
		}
		conditions := make([][]string, len(qs))
		for i, q := range qs {
			conditions[i] = strings.Split(q, ",")
		}
		hits := s.plat.SearchKeywords(conditions)
		return pageOf(hitDTOs(hits), pg), nil
	})
	get("/api/v1/unionable", true, func(r *http.Request) (any, error) {
		table, k, pg, err := tableKPage(r)
		if err != nil {
			return nil, err
		}
		hits, err := s.plat.UnionableTables(table, k)
		if err != nil {
			return nil, notFound(err.Error())
		}
		return pageOf(hitDTOs(hits), pg), nil
	})
	get("/api/v1/similar", true, func(r *http.Request) (any, error) {
		table, k, pg, err := tableKPage(r)
		if err != nil {
			return nil, err
		}
		c := s.plat.Core()
		emb, ok := c.TableEmbedding(table)
		if !ok {
			return nil, notFound(fmt.Sprintf("unknown table %q", table))
		}
		nn := c.TableANN.Search(emb, k)
		hits := make([]client.TableHit, len(nn))
		for i, h := range nn {
			hits[i] = client.TableHit{ID: h.ID, Name: nameOfID(h.ID), Score: h.Score}
		}
		return pageOf(hits, pg), nil
	})
	get("/api/v1/libraries", true, func(r *http.Request) (any, error) {
		k, err := intParam(r, "k", 10, MaxK)
		if err != nil {
			return nil, err
		}
		pg, err := parsePage(r)
		if err != nil {
			return nil, err
		}
		rows, err := s.plat.GetTopKLibrariesUsed(k)
		if err != nil {
			return nil, err
		}
		libs := make([]client.Library, len(rows))
		for i, u := range rows {
			libs[i] = client.Library{Library: u.Library, Pipelines: u.Pipelines}
		}
		return pageOf(libs, pg), nil
	})

	// SPARQL 1.1 protocol: GET with ?query=, POST with a raw
	// application/sparql-query body or a form-encoded query field. Both
	// answer application/sparql-results+json.
	sparqlHandler := v1handler{
		status: http.StatusOK,
		ctype:  sparqlResultsJSON,
		fn: func(r *http.Request) (any, error) {
			q, err := sparqlQueryFrom(r)
			if err != nil {
				return nil, err
			}
			res, err := s.plat.QueryContext(r.Context(), q)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, &httpError{status: http.StatusGatewayTimeout, msg: "request timed out"}
				}
				return nil, badRequest(err.Error())
			}
			return sparqlResultDTO(res), nil
		},
	}
	getSPARQL := sparqlHandler
	getSPARQL.etag = true
	s.route(mux, "/api/v1/sparql", map[string]v1handler{
		http.MethodGet:  getSPARQL,
		http.MethodPost: sparqlHandler,
	})

	// Mutation surface (async job queue; 503 without -ingest).
	s.route(mux, "/api/v1/ingest", map[string]v1handler{
		http.MethodPost: {status: http.StatusAccepted, fn: func(r *http.Request) (any, error) {
			jobID, err := s.submitIngest(r)
			if err != nil {
				return nil, err
			}
			return client.JobRef{Job: jobID, State: string(ingest.Queued)}, nil
		}},
	})
	get("/api/v1/jobs", false, func(r *http.Request) (any, error) {
		m, err := s.manager()
		if err != nil {
			return nil, err
		}
		pg, err := parsePage(r)
		if err != nil {
			return nil, err
		}
		jobs := m.Jobs() // submission order: stable under pagination
		dtos := make([]client.Job, len(jobs))
		for i, j := range jobs {
			dtos[i] = jobDTO(j)
		}
		return pageOf(dtos, pg), nil
	})
	get("/api/v1/jobs/{id}", false, func(r *http.Request) (any, error) {
		job, err := s.jobByID(r)
		if err != nil {
			return nil, err
		}
		return jobDTO(job), nil
	})
	s.route(mux, "/api/v1/tables/{id...}", map[string]v1handler{
		// ServeMux percent-decodes the wildcard, so escaped slashes,
		// spaces, and percent signs in table IDs round-trip.
		http.MethodDelete: {status: http.StatusAccepted, fn: func(r *http.Request) (any, error) {
			jobID, err := s.submitRemoval(r.PathValue("id"))
			if err != nil {
				return nil, err
			}
			return client.JobRef{Job: jobID, State: string(ingest.Queued)}, nil
		}},
	})

	// Replication surface: followers tail the mutation changelog and
	// bootstrap from the binary snapshot stream.
	get("/api/v1/changelog", false, s.handleChangelog)
	mux.HandleFunc("/api/v1/snapshot", s.handleSnapshot)
}

// defaultChangelogLimit and maxChangelogLimit bound a changelog page.
const (
	defaultChangelogLimit = 256
	maxChangelogLimit     = 4096
)

// handleChangelog serves one page of the primary's mutation changelog.
// cursor is the sequence number already applied (0 = from the floor); a
// cursor lost to compaction — or beyond the head after a primary reset —
// is 410 Gone: the follower must re-seed from /api/v1/snapshot.
func (s *server) handleChangelog(r *http.Request) (any, error) {
	var cursor uint64
	if raw := r.URL.Query().Get("cursor"); raw != "" {
		var err error
		if cursor, err = strconv.ParseUint(raw, 10, 64); err != nil {
			return nil, badRequest(fmt.Sprintf("parameter \"cursor\" must be a non-negative integer (got %q)", raw))
		}
	}
	limit, err := intParam(r, "limit", defaultChangelogLimit, maxChangelogLimit)
	if err != nil {
		return nil, err
	}
	view, err := s.plat.ChangelogSince(cursor, limit)
	switch {
	case errors.Is(err, kglids.ErrNoChangelog):
		return nil, notFound("changelog not enabled on this server")
	case errors.Is(err, kglids.ErrLogCompacted), errors.Is(err, kglids.ErrLogFutureCursor):
		return nil, &httpError{status: http.StatusGone, msg: err.Error()}
	case err != nil:
		return nil, err
	}
	page := client.ChangelogPage{
		Entries: make([]client.ChangeEntry, len(view.Entries)),
		Head:    view.Head, Floor: view.Floor, AtHead: view.AtHead,
		NextCursor: cursor,
	}
	for i, e := range view.Entries {
		page.Entries[i] = client.ChangeEntry{
			Seq: e.Seq, Generation: e.Generation, TS: e.TS,
			Kind: e.Kind, Payload: e.Payload,
		}
	}
	if n := len(view.Entries); n > 0 {
		page.NextCursor = view.Entries[n-1].Seq
	}
	return page, nil
}

// handleSnapshot streams the platform's binary snapshot — the follower
// bootstrap path. The write pauses ingestion for the encode (like any
// snapshot save), so the streamed state is always job-consistent and its
// REPL section carries the changelog cursor to resume from.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.plat.SaveTo(w); err != nil {
		// Headers may already be on the wire; log rather than re-status.
		slog.Warn("server: snapshot stream failed", "err", err)
	}
}

// healthDTO assembles the health body shared by the v1 and legacy
// endpoints: liveness, generation, and the instance's replication role.
func (s *server) healthDTO() client.Health {
	h := client.Health{Status: "ok", Generation: s.plat.Generation(), Role: "primary"}
	if s.readOnly {
		h.Role = "replica"
	}
	if s.replica != nil {
		h.Role = "replica"
		h.AppliedGeneration, h.LagSeconds = s.replica.ReplicaHealth()
	}
	return h
}

// v1handler is one method's behavior on a v1 route.
type v1handler struct {
	// status is the success status code.
	status int
	// ctype overrides the response content type ("" = application/json).
	ctype string
	// etag enables conditional GET bound to the store generation.
	etag bool
	// fn produces the response DTO.
	fn func(r *http.Request) (any, error)
}

// route registers one pattern dispatching on method, with uniform 405
// envelopes (carrying Allow), conditional-GET handling, and JSON writing.
func (s *server) route(mux *http.ServeMux, pattern string, methods map[string]v1handler) {
	allowed := make([]string, 0, len(methods))
	for m := range methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")

	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		h, ok := methods[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, "method not allowed; use "+allow)
			return
		}
		if h.etag && r.Method == http.MethodGet && s.notModified(w, r) {
			return
		}
		v, err := h.fn(r)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		ctype := h.ctype
		if ctype == "" {
			ctype = "application/json"
		}
		writeJSONAs(w, h.status, ctype, v)
	})
}

// notModified implements conditional GET against the store generation: it
// stamps the response ETag and short-circuits with 304 when the client's
// If-None-Match still names the live generation. The generation is read
// once; a mutation racing the body computation at worst costs the client
// one extra revalidation, never a stale 304.
func (s *server) notModified(w http.ResponseWriter, r *http.Request) bool {
	etag := generationETag(s.plat.Generation())
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "no-cache") // cacheable, but always revalidate
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// generationETag renders the entity tag for a store generation. The tag
// is qualified by the random per-process ID because the generation alone
// is not unique across instances: a restarted server (or a sibling
// replica behind a load balancer) can reach the same counter value with
// different content, and a validator held from the old instance must not
// produce a false 304 against the new one. Cross-instance revalidation
// therefore always misses — a cheap refetch, never a stale body.
func generationETag(gen uint64) string {
	return `"` + processID + "-" + strconv.FormatUint(gen, 10) + `"`
}

// etagMatches reports whether an If-None-Match header names etag (weak
// comparison; "*" matches anything).
func etagMatches(inm, etag string) bool {
	for _, part := range strings.Split(inm, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// --- pagination -------------------------------------------------------------

// pageParams is a decoded cursor/limit pair.
type pageParams struct {
	offset, limit int
}

// parsePage reads cursor/limit. Absent values mean the first page at
// DefaultLimit; a malformed cursor or non-positive/non-numeric limit is a
// 400; oversized limits are clamped to MaxLimit.
func parsePage(r *http.Request) (pageParams, error) {
	limit, err := intParam(r, "limit", DefaultLimit, MaxLimit)
	if err != nil {
		return pageParams{}, err
	}
	offset := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		offset, err = decodeCursor(c)
		if err != nil {
			return pageParams{}, badRequest("invalid 'cursor' parameter")
		}
	}
	return pageParams{offset: offset, limit: limit}, nil
}

// cursorPrefix versions the cursor encoding.
const cursorPrefix = "v1:"

func encodeCursor(offset int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(offset)))
}

func decodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, err
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("bad cursor prefix")
	}
	off, err := strconv.Atoi(rest)
	if err != nil || off < 0 {
		return 0, fmt.Errorf("bad cursor offset")
	}
	return off, nil
}

// pageOf slices one page out of the full result set and mints the next
// cursor. Items is never null on the wire.
func pageOf[T any](items []T, p pageParams) client.Page[T] {
	off := p.offset
	if off > len(items) {
		off = len(items)
	}
	end := off + p.limit
	if end > len(items) {
		end = len(items)
	}
	page := client.Page[T]{Items: items[off:end], Total: len(items)}
	if page.Items == nil {
		page.Items = []T{}
	}
	if end < len(items) {
		page.NextCursor = encodeCursor(end)
	}
	return page
}

// tableKPage parses the table/k/cursor/limit parameter bundle shared by
// /api/v1/unionable and /api/v1/similar.
func tableKPage(r *http.Request) (table string, k int, pg pageParams, err error) {
	table = r.URL.Query().Get("table")
	if table == "" {
		return "", 0, pageParams{}, badRequest("missing 'table' parameter (\"dataset/table\")")
	}
	if k, err = intParam(r, "k", 10, MaxK); err != nil {
		return "", 0, pageParams{}, err
	}
	if pg, err = parsePage(r); err != nil {
		return "", 0, pageParams{}, err
	}
	return table, k, pg, nil
}

// --- DTO mapping ------------------------------------------------------------

// statsDTO converts internal stats to the stable wire shape.
func statsDTO(st kglids.Stats, gen uint64) client.Stats {
	return client.Stats{
		Triples:         st.Triples,
		Nodes:           st.Nodes,
		Predicates:      st.Predicates,
		NamedGraphs:     st.NamedGraphs,
		Columns:         st.Columns,
		Tables:          st.Tables,
		Datasets:        st.Datasets,
		SimilarityEdges: st.SimilarityEdges,
		Generation:      gen,
	}
}

// tableInfoDTO splits a "dataset/table" ID.
func tableInfoDTO(id string) client.TableInfo {
	info := client.TableInfo{ID: id, Name: id}
	if i := strings.IndexByte(id, '/'); i >= 0 {
		info.Dataset, info.Name = id[:i], id[i+1:]
	}
	return info
}

// nameOfID is the table-name component of a "dataset/table" ID.
func nameOfID(id string) string {
	if i := strings.IndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// hitDTOs converts discovery results to wire hits, translating internal
// resource IRIs back to "dataset/table" IDs — no rdf.Term ever reaches a
// v1 response body.
func hitDTOs(hits []kglids.TableResult) []client.TableHit {
	out := make([]client.TableHit, len(hits))
	for i, h := range hits {
		out[i] = client.TableHit{ID: tableIDFromIRI(h.Table.Value), Name: h.Name, Score: h.Score}
	}
	return out
}

// tableIDFromIRI inverts schema.TableIRI: strip the resource namespace and
// percent-unescape each path segment.
func tableIDFromIRI(iri string) string {
	p := strings.TrimPrefix(iri, rdf.ResourceNS)
	segs := strings.Split(p, "/")
	for i, seg := range segs {
		if u, err := url.PathUnescape(seg); err == nil {
			segs[i] = u
		}
	}
	return strings.Join(segs, "/")
}

// jobDTO converts an ingest job record to the wire shape.
func jobDTO(j ingest.Job) client.Job {
	return client.Job{
		ID:          j.ID,
		Kind:        string(j.Kind),
		State:       string(j.State),
		Error:       j.Error,
		Tables:      j.Tables,
		Added:       j.Added,
		Updated:     j.Updated,
		Skipped:     j.Skipped,
		Removed:     j.Removed,
		SubmittedAt: j.SubmittedAt,
		StartedAt:   j.StartedAt,
		FinishedAt:  j.FinishedAt,
	}
}

// sparqlQueryFrom extracts the query per the SPARQL 1.1 protocol: the
// query parameter on GET; a raw application/sparql-query body or a
// form-encoded query field on POST.
func sparqlQueryFrom(r *http.Request) (string, error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", badRequest("missing 'query' parameter")
		}
		return q, nil
	}
	ctype := r.Header.Get("Content-Type")
	mediaType := ctype
	if mt, _, err := mime.ParseMediaType(ctype); err == nil {
		mediaType = mt
	}
	switch mediaType {
	case "application/sparql-query":
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSPARQLBody))
		if err != nil {
			return "", badRequest("reading query body: " + err.Error())
		}
		q := strings.TrimSpace(string(body))
		if q == "" {
			return "", badRequest("empty query body")
		}
		return q, nil
	case "application/x-www-form-urlencoded":
		if err := r.ParseForm(); err != nil {
			return "", badRequest("invalid form body: " + err.Error())
		}
		q := r.PostForm.Get("query")
		if q == "" {
			return "", badRequest("missing 'query' form field")
		}
		return q, nil
	default:
		return "", &httpError{status: http.StatusUnsupportedMediaType,
			msg: "POST /api/v1/sparql needs application/sparql-query or application/x-www-form-urlencoded"}
	}
}

// sparqlResultDTO renders a result as SPARQL 1.1 results-JSON. Unbound
// variables are omitted from their row, per spec.
func sparqlResultDTO(res *sparql.Result) client.SPARQLResult {
	out := client.SPARQLResult{
		Head:    client.SPARQLHead{Vars: append([]string{}, res.Vars...)},
		Results: client.SPARQLBindings{Bindings: make([]map[string]client.SPARQLTerm, len(res.Rows))},
	}
	for i, row := range res.Rows {
		b := make(map[string]client.SPARQLTerm, len(row))
		for _, v := range res.Vars {
			if t, ok := row[v]; ok {
				b[v] = sparqlTermDTO(t)
			}
		}
		out.Results.Bindings[i] = b
	}
	return out
}

// sparqlTermDTO maps an RDF term to its results-JSON form.
func sparqlTermDTO(t rdf.Term) client.SPARQLTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return client.SPARQLTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return client.SPARQLTerm{Type: "bnode", Value: t.Value}
	case rdf.KindQuoted:
		// RDF-star quoted triples surface with their Turtle-star text; the
		// SPARQL 1.2 structured form would be overkill for the LiDS graph's
		// certainty annotations.
		return client.SPARQLTerm{Type: "triple", Value: t.String()}
	default:
		dt := t.Datatype
		if dt == rdf.XSDNS+"string" {
			dt = ""
		}
		return client.SPARQLTerm{Type: "literal", Value: t.Value, Datatype: dt}
	}
}
