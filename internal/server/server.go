// Package server is the HTTP serving layer of kglids-server: the KGLiDS
// Interfaces (paper Section 5) exposed as a JSON API over a concurrently
// shared platform. Every response is JSON; errors use a uniform envelope
// {"error": "..."} with a matching HTTP status; every request runs under a
// deadline so one slow SPARQL query cannot wedge a worker forever.
//
// With Options.Ingest set, the handler additionally exposes the live
// mutation API — submit tables, poll jobs, delete tables — backed by the
// asynchronous job queue of internal/ingest. Mutations are accepted with
// 202 and applied by the manager's worker pool; discovery endpoints keep
// serving throughout and see each mutation the moment it lands.
//
// The handler is an http.Handler so it can be mounted, wrapped, and tested
// with httptest without starting a listener; cmd/kglids-server adds the
// process-level concerns (flags, snapshot load/save, graceful shutdown).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"kglids"
	"kglids/internal/dataframe"
	"kglids/internal/ingest"
)

// DefaultRequestTimeout bounds request handling when Options.RequestTimeout
// is zero.
const DefaultRequestTimeout = 30 * time.Second

// MaxIngestBody bounds a POST /ingest request body (64 MiB).
const MaxIngestBody = 64 << 20

// Options configures the handler.
type Options struct {
	// RequestTimeout is the per-request deadline; requests exceeding it
	// receive 504 {"error": "request timed out"}. Zero means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Ingest enables the mutation endpoints (POST /ingest, GET /jobs,
	// GET /jobs/{id}, DELETE /tables/{id}); nil serves read-only.
	Ingest *ingest.Manager
}

// errorEnvelope is the uniform error response body.
type errorEnvelope struct {
	Error string `json:"error"`
}

// New returns the kglids HTTP API over a shared platform.
//
//	GET /healthz                        liveness probe
//	GET /stats                          LiDS graph statistics
//	GET /sparql?query=...               ad-hoc SPARQL (JSON rows)
//	GET /search?q=kw1,kw2               keyword search (one conjunction)
//	GET /unionable?table=ds/t.csv&k=5   top-k unionable tables
//	GET /similar?table=ds/t.csv&k=5     top-k similar tables (HNSW index)
//	GET /libraries?k=10                 top-k libraries across pipelines
//
// With Options.Ingest set, the live-mutation API is also served:
//
//	POST   /ingest                      submit tables as an async add job (202)
//	GET    /jobs                        list ingestion jobs
//	GET    /jobs/{id}                   one job's state and outcome
//	DELETE /tables/{id...}              submit an async table removal (202)
func New(plat *kglids.Platform, opts Options) http.Handler {
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}

	mux := http.NewServeMux()
	// handleAs registers a JSON endpoint restricted to one method, keeping
	// the error envelope uniform (ServeMux's own 405s are plain text).
	handleAs := func(method, pattern string, status int, h func(r *http.Request) (any, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != method {
				writeError(w, http.StatusMethodNotAllowed, "method not allowed; use "+method)
				return
			}
			v, err := h(r)
			if err != nil {
				writeError(w, statusFor(err), err.Error())
				return
			}
			writeJSON(w, status, v)
		})
	}
	handle := func(pattern string, h func(r *http.Request) (any, error)) {
		handleAs(http.MethodGet, pattern, http.StatusOK, h)
	}

	handle("/healthz", func(*http.Request) (any, error) {
		return map[string]string{"status": "ok"}, nil
	})
	handle("/stats", func(*http.Request) (any, error) {
		return plat.Stats(), nil
	})
	handle("/sparql", func(r *http.Request) (any, error) {
		q := r.URL.Query().Get("query")
		if q == "" {
			return nil, badRequest("missing 'query' parameter")
		}
		// The request context carries the per-request deadline: when it
		// fires, the engine aborts the evaluation mid-iteration instead of
		// burning a worker on an abandoned query. Repeated queries are
		// answered from the engine's (query, store generation) cache.
		res, err := plat.QueryContext(r.Context(), q)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Explicit 504: withTimeout's own deadline branch races the
				// handler finishing, so the buffered response must carry the
				// right status either way.
				return nil, &httpError{status: http.StatusGatewayTimeout, msg: "request timed out"}
			}
			return nil, badRequest(err.Error())
		}
		rows := make([]map[string]string, len(res.Rows))
		for i, b := range res.Rows {
			row := map[string]string{}
			for v, t := range b {
				row[v] = t.Value
			}
			rows[i] = row
		}
		return map[string]any{"vars": res.Vars, "rows": rows}, nil
	})
	handle("/search", func(r *http.Request) (any, error) {
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, badRequest("missing 'q' parameter (comma-separated keywords)")
		}
		return plat.SearchKeywords([][]string{strings.Split(q, ",")}), nil
	})
	handle("/unionable", func(r *http.Request) (any, error) {
		table := r.URL.Query().Get("table")
		if table == "" {
			return nil, badRequest("missing 'table' parameter (\"dataset/table\")")
		}
		res, err := plat.UnionableTables(table, intParam(r, "k", 10))
		if err != nil {
			return nil, notFound(err.Error())
		}
		return res, nil
	})
	handle("/similar", func(r *http.Request) (any, error) {
		table := r.URL.Query().Get("table")
		if table == "" {
			return nil, badRequest("missing 'table' parameter (\"dataset/table\")")
		}
		c := plat.Core()
		emb, ok := c.TableEmbedding(table)
		if !ok {
			return nil, notFound(fmt.Sprintf("unknown table %q", table))
		}
		return c.TableANN.Search(emb, intParam(r, "k", 10)), nil
	})
	handle("/libraries", func(r *http.Request) (any, error) {
		res, err := plat.GetTopKLibrariesUsed(intParam(r, "k", 10))
		if err != nil {
			return nil, err
		}
		return res, nil
	})

	// Live-mutation API. Registered unconditionally so a read-only server
	// answers with a clear envelope instead of a bare 404.
	mgr := func() (*ingest.Manager, error) {
		if opts.Ingest == nil {
			return nil, &httpError{status: http.StatusServiceUnavailable,
				msg: "ingestion disabled; start the server with -ingest"}
		}
		return opts.Ingest, nil
	}
	handleAs(http.MethodPost, "/ingest", http.StatusAccepted, func(r *http.Request) (any, error) {
		m, err := mgr()
		if err != nil {
			return nil, err
		}
		tables, err := decodeTables(r.Body)
		if err != nil {
			return nil, badRequest(err.Error())
		}
		jobID, err := m.Submit(tables)
		if err != nil {
			return nil, ingestError(err)
		}
		return map[string]any{"job": jobID, "state": ingest.Queued}, nil
	})
	handle("/jobs", func(*http.Request) (any, error) {
		m, err := mgr()
		if err != nil {
			return nil, err
		}
		return map[string]any{"jobs": m.Jobs()}, nil
	})
	handle("/jobs/{id}", func(r *http.Request) (any, error) {
		m, err := mgr()
		if err != nil {
			return nil, err
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			return nil, badRequest("job ID must be an integer")
		}
		job, ok := m.Job(id)
		if !ok {
			return nil, notFound(fmt.Sprintf("unknown job %d", id))
		}
		return job, nil
	})
	handleAs(http.MethodDelete, "/tables/{id...}", http.StatusAccepted, func(r *http.Request) (any, error) {
		m, err := mgr()
		if err != nil {
			return nil, err
		}
		id := r.PathValue("id")
		if !plat.HasTable(id) {
			return nil, notFound(fmt.Sprintf("unknown table %q", id))
		}
		jobID, err := m.SubmitRemoval(id)
		if err != nil {
			return nil, ingestError(err)
		}
		return map[string]any{"job": jobID, "state": ingest.Queued}, nil
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown endpoint "+r.URL.Path)
	})
	return withTimeout(timeout, mux)
}

// ingestTable is the wire form of one submitted table.
type ingestTable struct {
	Dataset string `json:"dataset"`
	Name    string `json:"name"`
	Columns []struct {
		Name   string `json:"name"`
		Values []any  `json:"values"`
	} `json:"columns"`
}

// decodeTables parses a POST /ingest body into platform tables. Column
// values may be JSON strings (parsed like CSV cells), numbers, booleans,
// or null.
func decodeTables(body io.Reader) ([]kglids.Table, error) {
	var req struct {
		Tables []ingestTable `json:"tables"`
	}
	dec := json.NewDecoder(io.LimitReader(body, MaxIngestBody))
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %v", err)
	}
	if len(req.Tables) == 0 {
		return nil, fmt.Errorf("body needs a non-empty 'tables' array")
	}
	out := make([]kglids.Table, 0, len(req.Tables))
	for ti, t := range req.Tables {
		if t.Dataset == "" || t.Name == "" {
			return nil, fmt.Errorf("table %d needs 'dataset' and 'name'", ti)
		}
		if len(t.Columns) == 0 {
			return nil, fmt.Errorf("table %q needs at least one column", t.Name)
		}
		df := dataframe.New(t.Name)
		for ci, col := range t.Columns {
			if col.Name == "" {
				return nil, fmt.Errorf("table %q column %d needs a name", t.Name, ci)
			}
			if df.HasColumn(col.Name) {
				return nil, fmt.Errorf("table %q has duplicate column %q", t.Name, col.Name)
			}
			if len(col.Values) != len(t.Columns[0].Values) {
				return nil, fmt.Errorf("table %q column %q has %d values, expected %d",
					t.Name, col.Name, len(col.Values), len(t.Columns[0].Values))
			}
			s := &dataframe.Series{Name: col.Name}
			for _, v := range col.Values {
				s.Cells = append(s.Cells, cellOf(v))
			}
			df.AddColumn(s)
		}
		out = append(out, kglids.Table{Dataset: t.Dataset, Frame: df})
	}
	return out, nil
}

// cellOf maps a decoded JSON value to a frame cell.
func cellOf(v any) dataframe.Cell {
	switch x := v.(type) {
	case nil:
		return dataframe.NullCell()
	case bool:
		return dataframe.BoolCell(x)
	case float64:
		return dataframe.NumberCell(x)
	case string:
		return dataframe.ParseCell(x)
	default:
		return dataframe.TextCell(fmt.Sprint(x))
	}
}

// ingestError maps manager submission failures to HTTP statuses: a full
// queue is back-pressure (429), a closed manager means shutdown (503).
func ingestError(err error) error {
	switch {
	case errors.Is(err, ingest.ErrQueueFull):
		return &httpError{status: http.StatusTooManyRequests, msg: err.Error()}
	case errors.Is(err, ingest.ErrClosed):
		return &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
	default:
		return badRequest(err.Error())
	}
}

func intParam(r *http.Request, name string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil || v <= 0 {
		return def
	}
	return v
}

// httpError pairs a message with a status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(msg string) error { return &httpError{status: http.StatusBadRequest, msg: msg} }
func notFound(msg string) error   { return &httpError{status: http.StatusNotFound, msg: msg} }

func statusFor(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.status
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorEnvelope{Error: msg})
}

// bufferedResponse records a handler's response so withTimeout can discard
// it if the deadline fires first (the real writer must not be touched by
// two goroutines).
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(s int)   { b.status = s }
func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

// withTimeout runs each request in its own goroutine under a deadline.
// Responses are buffered: either the handler finishes and its response is
// flushed, or the deadline fires and the client gets a 504 envelope (the
// abandoned handler sees its context cancelled and its writes go nowhere).
// Handler panics become 500 envelopes instead of killing the connection.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		buf := &bufferedResponse{header: http.Header{}, status: http.StatusOK}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer close(done)
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			next.ServeHTTP(buf, r.WithContext(ctx))
		}()
		select {
		case <-done:
			select {
			case p := <-panicked:
				log.Printf("server: panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			default:
				for k, vs := range buf.header {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(buf.status)
				if _, err := w.Write(buf.body); err != nil {
					log.Printf("server: write response: %v", err)
				}
			}
		case <-ctx.Done():
			writeError(w, http.StatusGatewayTimeout, "request timed out")
		}
	})
}
