// Package server is the HTTP serving layer of kglids-server: the KGLiDS
// Interfaces (paper Section 5) exposed as a JSON API over a concurrently
// shared platform. Every response is JSON; errors use a uniform envelope
// {"error": "..."} with a matching HTTP status; every request runs under a
// deadline so one slow SPARQL query cannot wedge a worker forever.
//
// The handler is an http.Handler so it can be mounted, wrapped, and tested
// with httptest without starting a listener; cmd/kglids-server adds the
// process-level concerns (flags, snapshot load/save, graceful shutdown).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"kglids"
)

// DefaultRequestTimeout bounds request handling when Options.RequestTimeout
// is zero.
const DefaultRequestTimeout = 30 * time.Second

// Options configures the handler.
type Options struct {
	// RequestTimeout is the per-request deadline; requests exceeding it
	// receive 504 {"error": "request timed out"}. Zero means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
}

// errorEnvelope is the uniform error response body.
type errorEnvelope struct {
	Error string `json:"error"`
}

// New returns the kglids HTTP API over a shared platform.
//
//	GET /healthz                        liveness probe
//	GET /stats                          LiDS graph statistics
//	GET /sparql?query=...               ad-hoc SPARQL (JSON rows)
//	GET /search?q=kw1,kw2               keyword search (one conjunction)
//	GET /unionable?table=ds/t.csv&k=5   top-k unionable tables
//	GET /similar?table=ds/t.csv&k=5     top-k similar tables (HNSW index)
//	GET /libraries?k=10                 top-k libraries across pipelines
func New(plat *kglids.Platform, opts Options) http.Handler {
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}

	mux := http.NewServeMux()
	handle := func(pattern string, h func(r *http.Request) (any, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				writeError(w, http.StatusMethodNotAllowed, "method not allowed; use GET")
				return
			}
			v, err := h(r)
			if err != nil {
				writeError(w, statusFor(err), err.Error())
				return
			}
			writeJSON(w, http.StatusOK, v)
		})
	}

	handle("/healthz", func(*http.Request) (any, error) {
		return map[string]string{"status": "ok"}, nil
	})
	handle("/stats", func(*http.Request) (any, error) {
		return plat.Stats(), nil
	})
	handle("/sparql", func(r *http.Request) (any, error) {
		q := r.URL.Query().Get("query")
		if q == "" {
			return nil, badRequest("missing 'query' parameter")
		}
		res, err := plat.Query(q)
		if err != nil {
			return nil, badRequest(err.Error())
		}
		rows := make([]map[string]string, len(res.Rows))
		for i, b := range res.Rows {
			row := map[string]string{}
			for v, t := range b {
				row[v] = t.Value
			}
			rows[i] = row
		}
		return map[string]any{"vars": res.Vars, "rows": rows}, nil
	})
	handle("/search", func(r *http.Request) (any, error) {
		q := r.URL.Query().Get("q")
		if q == "" {
			return nil, badRequest("missing 'q' parameter (comma-separated keywords)")
		}
		return plat.SearchKeywords([][]string{strings.Split(q, ",")}), nil
	})
	handle("/unionable", func(r *http.Request) (any, error) {
		table := r.URL.Query().Get("table")
		if table == "" {
			return nil, badRequest("missing 'table' parameter (\"dataset/table\")")
		}
		res, err := plat.UnionableTables(table, intParam(r, "k", 10))
		if err != nil {
			return nil, notFound(err.Error())
		}
		return res, nil
	})
	handle("/similar", func(r *http.Request) (any, error) {
		table := r.URL.Query().Get("table")
		if table == "" {
			return nil, badRequest("missing 'table' parameter (\"dataset/table\")")
		}
		c := plat.Core()
		emb, ok := c.TableEmbeddings[table]
		if !ok {
			return nil, notFound(fmt.Sprintf("unknown table %q", table))
		}
		return c.TableANN.Search(emb, intParam(r, "k", 10)), nil
	})
	handle("/libraries", func(r *http.Request) (any, error) {
		res, err := plat.GetTopKLibrariesUsed(intParam(r, "k", 10))
		if err != nil {
			return nil, err
		}
		return res, nil
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown endpoint "+r.URL.Path)
	})
	return withTimeout(timeout, mux)
}

func intParam(r *http.Request, name string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil || v <= 0 {
		return def
	}
	return v
}

// httpError pairs a message with a status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(msg string) error { return &httpError{status: http.StatusBadRequest, msg: msg} }
func notFound(msg string) error   { return &httpError{status: http.StatusNotFound, msg: msg} }

func statusFor(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.status
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorEnvelope{Error: msg})
}

// bufferedResponse records a handler's response so withTimeout can discard
// it if the deadline fires first (the real writer must not be touched by
// two goroutines).
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(s int)   { b.status = s }
func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

// withTimeout runs each request in its own goroutine under a deadline.
// Responses are buffered: either the handler finishes and its response is
// flushed, or the deadline fires and the client gets a 504 envelope (the
// abandoned handler sees its context cancelled and its writes go nowhere).
// Handler panics become 500 envelopes instead of killing the connection.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		buf := &bufferedResponse{header: http.Header{}, status: http.StatusOK}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer close(done)
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			next.ServeHTTP(buf, r.WithContext(ctx))
		}()
		select {
		case <-done:
			select {
			case p := <-panicked:
				log.Printf("server: panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			default:
				for k, vs := range buf.header {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(buf.status)
				if _, err := w.Write(buf.body); err != nil {
					log.Printf("server: write response: %v", err)
				}
			}
		case <-ctx.Done():
			writeError(w, http.StatusGatewayTimeout, "request timed out")
		}
	})
}
