// Package server is the HTTP serving layer of kglids-server: the KGLiDS
// Interfaces (paper Section 5) exposed as a JSON API over a concurrently
// shared platform.
//
// The API has two generations:
//
//   - /api/v1 is the versioned, resource-oriented surface with a stable
//     wire contract: dedicated DTOs (package kglids/client, which the
//     handlers marshal so client and server cannot drift), cursor/limit
//     pagination on every list endpoint, conditional GET via
//     ETag/If-None-Match bound to the store generation, and a SPARQL 1.1
//     protocol endpoint. New integrations use this surface through the
//     typed client in package kglids/client.
//
//   - The original unversioned routes (/search, /sparql, /ingest, ...)
//     are legacy: their wire format — internal structs marshaled as-is —
//     is frozen for byte compatibility and they answer with a
//     `Deprecation: true` header plus a `Link: rel="successor-version"`
//     pointing at their /api/v1 replacement. See legacy.go.
//
// Every request passes a middleware chain — request-ID stamping, optional
// access logging, gzip compression, a per-request deadline with panic
// isolation — so one slow SPARQL query cannot wedge a worker forever and
// one crashing handler cannot kill the process. Errors use a uniform
// envelope {"error": "..."} with a matching HTTP status.
//
// With Options.Ingest set, the handler additionally exposes the live
// mutation API — submit tables, poll jobs, delete tables — backed by the
// asynchronous job queue of internal/ingest. Mutations are accepted with
// 202 and applied by the manager's worker pool; discovery endpoints keep
// serving throughout and see each mutation the moment it lands.
//
// The handler is an http.Handler so it can be mounted, wrapped, and tested
// with httptest without starting a listener; cmd/kglids-server adds the
// process-level concerns (flags, snapshot load/save, graceful shutdown).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"kglids"
	"kglids/internal/dataframe"
	"kglids/internal/ingest"
)

// DefaultRequestTimeout bounds request handling when Options.RequestTimeout
// is zero.
const DefaultRequestTimeout = 30 * time.Second

// MaxIngestBody bounds a POST /ingest request body (64 MiB).
const MaxIngestBody = 64 << 20

// Parameter bounds shared by the legacy and v1 surfaces.
const (
	// MaxK caps top-k parameters; larger requests are clamped.
	MaxK = 1000
	// DefaultLimit is the page size when a list request names none.
	DefaultLimit = 100
	// MaxLimit caps the page size; larger requests are clamped.
	MaxLimit = 500
)

// Options configures the handler.
type Options struct {
	// RequestTimeout is the per-request deadline; requests exceeding it
	// receive 504 {"error": "request timed out"}. Zero means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Ingest enables the mutation endpoints (POST /{api/v1/}ingest,
	// GET /jobs, GET /jobs/{id}, DELETE /tables/{id}); nil serves
	// read-only.
	Ingest *ingest.Manager
	// Logger receives the server's structured logs (panics, write
	// failures, and — with AccessLog — one line per request carrying
	// request_id, route, method, status, bytes, and duration). Nil means
	// slog.Default().
	Logger *slog.Logger
	// AccessLog enables the per-request structured access-log line.
	AccessLog bool
	// DisableMetrics turns off metric recording and request tracing in
	// the middleware chain. It exists for the bench harness, which
	// serves the same platform with metrics on and off to measure
	// instrumentation overhead; production servers leave it false.
	DisableMetrics bool
	// ReadOnly rejects every mutation (POST /ingest, DELETE /tables)
	// with 405 — the replica serving mode, where writes must go to the
	// primary. Read and job endpoints are unaffected.
	ReadOnly bool
	// Replica, when non-nil, reports the follower's replication state on
	// the health endpoints. Nil means this server is a primary.
	Replica ReplicaStatus
}

// ReplicaStatus is the replication state a follower exposes on /healthz:
// the store generation it has applied and how many seconds its newest
// applied record trails the primary. kglids.ReplicaTracker implements it.
type ReplicaStatus interface {
	ReplicaHealth() (appliedGeneration uint64, lagSeconds float64)
}

// errorEnvelope is the uniform error response body.
type errorEnvelope struct {
	Error string `json:"error"`
}

// server carries the shared state of all endpoint groups.
type server struct {
	plat     *kglids.Platform
	ingest   *ingest.Manager
	readOnly bool
	replica  ReplicaStatus
}

// New returns the kglids HTTP API over a shared platform: the versioned
// /api/v1 surface (see v1.go) plus the frozen legacy routes (see
// legacy.go), wrapped in the middleware chain.
func New(plat *kglids.Platform, opts Options) http.Handler {
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	cfg := chain{
		logger:    opts.Logger,
		accessLog: opts.AccessLog,
		metrics:   !opts.DisableMetrics,
	}
	if cfg.logger == nil {
		cfg.logger = slog.Default()
	}
	s := &server{plat: plat, ingest: opts.Ingest, readOnly: opts.ReadOnly, replica: opts.Replica}
	mux := http.NewServeMux()
	s.registerLegacy(mux)
	s.registerV1(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown endpoint "+r.URL.Path)
	})

	var h http.Handler = withTimeout(cfg, timeout, mux)
	h = withGzip(cfg, h)
	h = withObservability(cfg, h)
	return h
}

// errReadOnly is the uniform rejection of mutations on a replica: the
// write exists on the API but this instance never accepts it, so 405
// (not 503 — retrying here will never succeed) points the client at the
// primary.
var errReadOnly = &httpError{status: http.StatusMethodNotAllowed,
	msg: "read-only replica; send mutations to the primary"}

// manager returns the ingest manager or the uniform 503 when live
// mutation is disabled.
func (s *server) manager() (*ingest.Manager, error) {
	if s.ingest == nil {
		return nil, &httpError{status: http.StatusServiceUnavailable,
			msg: "ingestion disabled; start the server with -ingest"}
	}
	return s.ingest, nil
}

// submitIngest decodes a POST /ingest body and submits it as an add job.
// Shared by the legacy and v1 handlers, which differ only in their
// response envelope.
func (s *server) submitIngest(r *http.Request) (int, error) {
	if s.readOnly {
		return 0, errReadOnly
	}
	m, err := s.manager()
	if err != nil {
		return 0, err
	}
	tables, err := decodeTables(r.Body)
	if err != nil {
		return 0, badRequest(err.Error())
	}
	jobID, err := m.Submit(tables)
	if err != nil {
		return 0, ingestError(err)
	}
	return jobID, nil
}

// submitRemoval validates a "dataset/table" ID and submits its removal
// job (shared by the legacy and v1 DELETE handlers).
func (s *server) submitRemoval(id string) (int, error) {
	if s.readOnly {
		return 0, errReadOnly
	}
	m, err := s.manager()
	if err != nil {
		return 0, err
	}
	if !s.plat.HasTable(id) {
		return 0, notFound(fmt.Sprintf("unknown table %q", id))
	}
	jobID, err := m.SubmitRemoval(id)
	if err != nil {
		return 0, ingestError(err)
	}
	return jobID, nil
}

// jobByID resolves a /jobs/{id} path value to a job snapshot (shared by
// the legacy and v1 job handlers).
func (s *server) jobByID(r *http.Request) (ingest.Job, error) {
	m, err := s.manager()
	if err != nil {
		return ingest.Job{}, err
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return ingest.Job{}, badRequest("job ID must be an integer")
	}
	job, ok := m.Job(id)
	if !ok {
		return ingest.Job{}, notFound(fmt.Sprintf("unknown job %d", id))
	}
	return job, nil
}

// ingestTable is the wire form of one submitted table (identical for the
// legacy and v1 ingest endpoints).
type ingestTable struct {
	Dataset string `json:"dataset"`
	Name    string `json:"name"`
	Columns []struct {
		Name   string `json:"name"`
		Values []any  `json:"values"`
	} `json:"columns"`
}

// decodeTables parses a POST /ingest body into platform tables. Column
// values may be JSON strings (parsed like CSV cells), numbers, booleans,
// or null.
func decodeTables(body io.Reader) ([]kglids.Table, error) {
	var req struct {
		Tables []ingestTable `json:"tables"`
	}
	dec := json.NewDecoder(io.LimitReader(body, MaxIngestBody))
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %v", err)
	}
	if len(req.Tables) == 0 {
		return nil, fmt.Errorf("body needs a non-empty 'tables' array")
	}
	out := make([]kglids.Table, 0, len(req.Tables))
	for ti, t := range req.Tables {
		if t.Dataset == "" || t.Name == "" {
			return nil, fmt.Errorf("table %d needs 'dataset' and 'name'", ti)
		}
		if len(t.Columns) == 0 {
			return nil, fmt.Errorf("table %q needs at least one column", t.Name)
		}
		df := dataframe.New(t.Name)
		for ci, col := range t.Columns {
			if col.Name == "" {
				return nil, fmt.Errorf("table %q column %d needs a name", t.Name, ci)
			}
			if df.HasColumn(col.Name) {
				return nil, fmt.Errorf("table %q has duplicate column %q", t.Name, col.Name)
			}
			if len(col.Values) != len(t.Columns[0].Values) {
				return nil, fmt.Errorf("table %q column %q has %d values, expected %d",
					t.Name, col.Name, len(col.Values), len(t.Columns[0].Values))
			}
			s := &dataframe.Series{Name: col.Name}
			for _, v := range col.Values {
				s.Cells = append(s.Cells, cellOf(v))
			}
			df.AddColumn(s)
		}
		out = append(out, kglids.Table{Dataset: t.Dataset, Frame: df})
	}
	return out, nil
}

// cellOf maps a decoded JSON value to a frame cell.
func cellOf(v any) dataframe.Cell {
	switch x := v.(type) {
	case nil:
		return dataframe.NullCell()
	case bool:
		return dataframe.BoolCell(x)
	case float64:
		return dataframe.NumberCell(x)
	case string:
		return dataframe.ParseCell(x)
	default:
		return dataframe.TextCell(fmt.Sprint(x))
	}
}

// ingestError maps manager submission failures to HTTP statuses: a full
// queue is back-pressure (429), a closed manager means shutdown (503).
func ingestError(err error) error {
	switch {
	case errors.Is(err, ingest.ErrQueueFull):
		return &httpError{status: http.StatusTooManyRequests, msg: err.Error()}
	case errors.Is(err, ingest.ErrClosed):
		return &httpError{status: http.StatusServiceUnavailable, msg: err.Error()}
	default:
		return badRequest(err.Error())
	}
}

// intParam reads a positive integer query parameter. An absent parameter
// yields def; a non-numeric or non-positive value is a 400 (no silent
// defaults); values above max are clamped.
func intParam(r *http.Request, name string, def, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, badRequest(fmt.Sprintf("parameter %q must be a positive integer (got %q)", name, raw))
	}
	if max > 0 && v > max {
		v = max
	}
	return v, nil
}

// httpError pairs a message with a status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(msg string) error { return &httpError{status: http.StatusBadRequest, msg: msg} }
func notFound(msg string) error   { return &httpError{status: http.StatusNotFound, msg: msg} }

func statusFor(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.status
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONAs(w, status, "application/json", v)
}

// writeJSONAs writes a JSON body under an explicit content type (the
// SPARQL protocol endpoint answers application/sparql-results+json).
func writeJSONAs(w http.ResponseWriter, status int, contentType string, v any) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Warn("server: encode response failed", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorEnvelope{Error: msg})
}
