package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"kglids"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
)

// testChain is the middleware configuration tests use when exercising a
// layer directly: metrics on, no access log, default logger.
func testChain() chain {
	return chain{logger: slog.Default(), metrics: true}
}

func testPlatform(t testing.TB) (*kglids.Platform, *lakegen.Benchmark) {
	t.Helper()
	lake := lakegen.Generate(lakegen.Spec{
		Name: "srv", Families: 3, TablesPerFamily: 3, NoiseTables: 2,
		RowsPerTable: 50, QueryTables: 3, Seed: 61,
	})
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	plat := kglids.Bootstrap(kglids.Options{Theta: 0.70}, tables)
	var datasets []pipegen.Dataset
	for _, df := range lake.Tables[:1] {
		datasets = append(datasets, pipegen.FrameDataset(lake.Dataset[df.Name], df, df.Columns()[0]))
	}
	corpus := pipegen.Generate(pipegen.Options{NumPipelines: 6, Datasets: datasets, Seed: 62})
	scripts := make([]kglids.Script, len(corpus))
	for i, g := range corpus {
		scripts[i] = g.Script
	}
	plat.AddPipelines(scripts)
	return plat, lake
}

func get(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type = %q, want application/json", path, ct)
	}
	return rec.Code, rec.Body.Bytes()
}

func decodeErr(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not a JSON envelope: %v: %s", err, body)
	}
	if env.Error == "" {
		t.Fatalf("error envelope empty: %s", body)
	}
	return env.Error
}

func TestEndpoints(t *testing.T) {
	plat, lake := testPlatform(t)
	h := New(plat, Options{})

	code, body := get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d %s", code, body)
	}

	code, body = get(t, h, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d %s", code, body)
	}
	var stats kglids.Stats
	if err := json.Unmarshal(body, &stats); err != nil || stats.Triples == 0 {
		t.Fatalf("stats = %+v err=%v", stats, err)
	}

	q := lake.QueryTables[0]
	tableID := lake.Dataset[q] + "/" + q
	code, body = get(t, h, "/search?q="+url.QueryEscape(q[:3]))
	if code != http.StatusOK {
		t.Fatalf("/search = %d %s", code, body)
	}
	var hits []kglids.TableResult
	if err := json.Unmarshal(body, &hits); err != nil || len(hits) == 0 {
		t.Fatalf("search hits = %v err=%v", hits, err)
	}

	code, body = get(t, h, "/unionable?table="+url.QueryEscape(tableID)+"&k=5")
	if code != http.StatusOK {
		t.Fatalf("/unionable = %d %s", code, body)
	}
	if err := json.Unmarshal(body, &hits); err != nil || len(hits) == 0 {
		t.Fatalf("unionable hits = %v err=%v", hits, err)
	}

	code, body = get(t, h, "/similar?table="+url.QueryEscape(tableID)+"&k=3")
	if code != http.StatusOK {
		t.Fatalf("/similar = %d %s", code, body)
	}

	code, body = get(t, h, "/sparql?query="+url.QueryEscape("SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table . }"))
	if code != http.StatusOK {
		t.Fatalf("/sparql = %d %s", code, body)
	}

	code, body = get(t, h, "/libraries?k=5")
	if code != http.StatusOK {
		t.Fatalf("/libraries = %d %s", code, body)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	plat, _ := testPlatform(t)
	h := New(plat, Options{})

	cases := []struct {
		path string
		code int
	}{
		{"/sparql", http.StatusBadRequest},                      // missing query
		{"/sparql?query=SELECT+garbage", http.StatusBadRequest}, // parse error
		{"/search", http.StatusBadRequest},                      // missing q
		{"/unionable", http.StatusBadRequest},                   // missing table
		{"/unionable?table=no/such.csv", http.StatusNotFound},
		{"/similar?table=no/such.csv", http.StatusNotFound},
		{"/definitely-not-an-endpoint", http.StatusNotFound},
	}
	for _, c := range cases {
		code, body := get(t, h, c.path)
		if code != c.code {
			t.Errorf("GET %s = %d (%s), want %d", c.path, code, body, c.code)
			continue
		}
		decodeErr(t, body)
	}

	// Non-GET methods are rejected with an envelope too.
	req := httptest.NewRequest(http.MethodPost, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats = %d", rec.Code)
	}
	decodeErr(t, rec.Body.Bytes())
}

func TestConcurrentRequests(t *testing.T) {
	plat, lake := testPlatform(t)
	h := New(plat, Options{})
	q := lake.QueryTables[0]
	tableID := lake.Dataset[q] + "/" + q
	paths := []string{
		"/stats",
		"/search?q=" + url.QueryEscape(q[:3]),
		"/unionable?table=" + url.QueryEscape(tableID),
		"/similar?table=" + url.QueryEscape(tableID),
		"/libraries",
	}
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		path := paths[i%len(paths)]
		go func() {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				done <- fmt.Errorf("GET %s = %d", path, rec.Code)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestTimeoutEnvelope(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
		w.WriteHeader(http.StatusOK)
	})
	h := withTimeout(testChain(), 20*time.Millisecond, slow)
	req := httptest.NewRequest(http.MethodGet, "/slow", nil)
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not fire (took %v)", elapsed)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504", rec.Code)
	}
	decodeErr(t, rec.Body.Bytes())
}

func TestPanicBecomes500(t *testing.T) {
	h := withTimeout(testChain(), time.Second, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	decodeErr(t, rec.Body.Bytes())
}

// TestSPARQLTimeoutCancelsQuery: a query that cannot finish inside the
// per-request deadline yields the 504 envelope, and the context threaded
// through plat.QueryContext aborts the evaluation mid-iteration instead of
// leaving the worker goroutine spinning.
func TestSPARQLTimeoutCancelsQuery(t *testing.T) {
	plat, _ := testPlatform(t)
	h := New(plat, Options{RequestTimeout: 10 * time.Millisecond})
	q := url.QueryEscape(`SELECT (COUNT(*) AS ?n) WHERE {
		?a kglids:name ?n1 . ?b kglids:name ?n2 . ?c kglids:name ?n3 .
		?d kglids:name ?n4 . ?e kglids:name ?n5 . }`)
	code, body := get(t, h, "/sparql?query="+q)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", code, body)
	}
	decodeErr(t, body)
}

// TestSPARQLTimeoutUnderParallelExecution: the same deadline discipline
// must hold when the query fans out across morsel workers. Each streaming
// iterator polls its context only every 1024 index hits, so a parallel
// fan-out could overshoot by workers×1024 hits; the merge-stage check
// bounds the overshoot and the 504 still arrives near the deadline, not
// after the full cross-product has been enumerated.
func TestSPARQLTimeoutUnderParallelExecution(t *testing.T) {
	plat, _ := testPlatform(t)
	plat.SetQueryWorkers(8)
	h := New(plat, Options{RequestTimeout: 10 * time.Millisecond})
	q := url.QueryEscape(`SELECT (COUNT(*) AS ?n) WHERE {
		?a kglids:name ?n1 . ?b kglids:name ?n2 . ?c kglids:name ?n3 .
		?d kglids:name ?n4 . ?e kglids:name ?n5 . }`)
	start := time.Now()
	code, body := get(t, h, "/sparql?query="+q)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("504 took %v under parallel execution, deadline not enforced", elapsed)
	}
	decodeErr(t, body)
}

// TestSPARQLServedFromCache: repeated identical /sparql requests are
// answered from the engine's generation-keyed result cache.
func TestSPARQLServedFromCache(t *testing.T) {
	plat, _ := testPlatform(t)
	h := New(plat, Options{})
	q := url.QueryEscape(`SELECT ?t WHERE { ?t a kglids:Table . }`)
	before := plat.Core().Discovery.CacheStats()
	for i := 0; i < 3; i++ {
		if code, body := get(t, h, "/sparql?query="+q); code != http.StatusOK {
			t.Fatalf("status = %d: %s", code, body)
		}
	}
	after := plat.Core().Discovery.CacheStats()
	if after.Hits < before.Hits+2 {
		t.Fatalf("repeated /sparql did not hit the cache: before %+v after %+v", before, after)
	}
}
