package server

import (
	"net/http"

	"kglids"
	"kglids/internal/obs"
)

// NewDebugHandler returns the diagnostics surface served on a dedicated
// listener (`kglids-server -debug-addr`), deliberately separate from the
// public /api/v1 handler: /metrics (Prometheus text exposition of the
// process-wide registry), /debug/vars (expvar), and — when enablePprof
// is set — /debug/pprof.
//
// Point-in-time sizes (store quads, dictionary terms, graphs,
// generation, table count, SPARQL cache residency) are refreshed from
// the live platform on each scrape, so their cost lands on the scraper
// rather than the serving hot path. Counters and histograms stream in
// from the instrumented layers continuously.
func NewDebugHandler(plat *kglids.Platform, enablePprof bool) http.Handler {
	return obs.NewDebugMux(obs.Default, enablePprof, func() {
		if plat == nil {
			return
		}
		st := plat.Core().Store
		mStoreQuads.Set(int64(st.Len()))
		mStoreTerms.Set(int64(st.Dict().Len()))
		mStoreGraphs.Set(int64(st.GraphCount()))
		mStoreGeneration.Set(int64(st.Generation()))
		mPlatformTables.Set(int64(plat.Core().TableCount()))
		mSPARQLCacheEntries.Set(int64(plat.Core().Discovery.CacheStats().Entries))
	})
}
