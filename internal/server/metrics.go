package server

import (
	"strings"

	"kglids/internal/obs"
)

// HTTP-layer metrics, registered once at package init into the
// process-wide registry. Route labels come from routeLabel, which maps
// request paths onto the finite route table so cardinality stays bounded
// no matter what clients send.
var (
	mHTTPRequests = obs.Default.NewCounterVec("kglids_http_requests_total",
		"HTTP requests served, by route, method, and status code.",
		"route", "method", "status")
	mHTTPLatency = obs.Default.NewHistogramVec("kglids_http_request_seconds",
		"HTTP request latency in seconds, by route.",
		obs.DefaultLatencyBuckets, "route")
	mHTTPInFlight = obs.Default.NewGauge("kglids_http_in_flight",
		"Requests currently being served.")
	mHTTPPanics = obs.Default.NewCounter("kglids_http_panics_total",
		"Handler panics recovered into 500 responses.")
	mHTTPTimeouts = obs.Default.NewCounter("kglids_http_timeouts_total",
		"Requests cut off by the per-request deadline (504).")
)

// Store/platform size gauges, refreshed from the live platform by the
// debug handler at scrape time (see debug.go) so the serving hot path
// never pays for them.
var (
	mStoreQuads = obs.Default.NewGauge("kglids_store_quads",
		"Quads in the store (union graph counted once).")
	mStoreTerms = obs.Default.NewGauge("kglids_store_dictionary_terms",
		"Distinct terms in the store dictionary.")
	mStoreGraphs = obs.Default.NewGauge("kglids_store_graphs",
		"Named graphs in the store (one per table plus pipeline graphs).")
	mStoreGeneration = obs.Default.NewGauge("kglids_store_generation",
		"Store mutation generation (increments on every applied batch).")
	mPlatformTables = obs.Default.NewGauge("kglids_platform_tables",
		"Tables currently in the platform.")
	mSPARQLCacheEntries = obs.Default.NewGauge("kglids_sparql_cache_entries",
		"Entries resident in the SPARQL result cache.")
)

// v1Routes and legacyRoutes enumerate the exact-match route labels.
var v1Routes = map[string]bool{
	"/api/v1/healthz": true, "/api/v1/stats": true, "/api/v1/tables": true,
	"/api/v1/search": true, "/api/v1/unionable": true, "/api/v1/similar": true,
	"/api/v1/libraries": true, "/api/v1/sparql": true, "/api/v1/ingest": true,
	"/api/v1/jobs": true, "/api/v1/changelog": true, "/api/v1/snapshot": true,
}

var legacyRoutes = map[string]bool{
	"/healthz": true, "/stats": true, "/sparql": true, "/search": true,
	"/unionable": true, "/similar": true, "/libraries": true, "/ingest": true,
	"/jobs": true,
}

// tracedRoutes are the routes whose handlers record spans into a
// request trace — the SPARQL query path, where the engine attributes
// compile/plan/execute/materialize timings and the slow-query log picks
// up the request ID. Other routes skip the trace install (a request
// clone plus two allocations) because nothing downstream would read it.
var tracedRoutes = map[string]bool{
	"/api/v1/sparql": true,
	"/sparql":        true,
}

// routeStats is the per-route bundle the request hot path touches: the
// route label plus metric children resolved once at init, so recording a
// request is one map lookup and a few atomic adds — no label-key joins
// or family-map lookups per request. getOK pre-resolves the dominant
// (GET, 200) counter cell; every other method/status pair goes through
// the labeled family as usual.
type routeStats struct {
	label   string
	latency *obs.Histogram
	getOK   *obs.Counter
	traced  bool
}

var routeStatsByLabel = func() map[string]*routeStats {
	labels := []string{
		"/api/v1/jobs/{id}", "/api/v1/tables/{id}",
		"/jobs/{id}", "/tables/{id}", "other",
	}
	for l := range v1Routes {
		labels = append(labels, l)
	}
	for l := range legacyRoutes {
		labels = append(labels, l)
	}
	m := make(map[string]*routeStats, len(labels))
	for _, l := range labels {
		m[l] = &routeStats{
			label:   l,
			latency: mHTTPLatency.WithLabelValues(l),
			getOK:   mHTTPRequests.WithLabelValues(l, "GET", "200"),
			traced:  tracedRoutes[l],
		}
	}
	return m
}()

// statsFor normalizes a request path to its route pattern — path
// parameters collapse to {id} and anything off the route table becomes
// "other", keeping the label set finite — and returns that route's
// pre-resolved stats bundle.
func statsFor(path string) *routeStats {
	if rs, ok := routeStatsByLabel[path]; ok {
		return rs
	}
	label := "other"
	switch {
	case strings.HasPrefix(path, "/api/v1/jobs/"):
		label = "/api/v1/jobs/{id}"
	case strings.HasPrefix(path, "/api/v1/tables/"):
		label = "/api/v1/tables/{id}"
	case strings.HasPrefix(path, "/jobs/"):
		label = "/jobs/{id}"
	case strings.HasPrefix(path, "/tables/"):
		label = "/tables/{id}"
	}
	return routeStatsByLabel[label]
}

// routeLabel normalizes a request path to its route pattern.
func routeLabel(path string) string { return statsFor(path).label }
