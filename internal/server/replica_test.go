package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kglids"
	"kglids/client"
	"kglids/internal/dataframe"
	"kglids/internal/ingest"
)

// changelogPlatform is the tiny fixture with the changelog enabled and a
// few mutations appended.
func changelogPlatform(t testing.TB) *kglids.Platform {
	t.Helper()
	plat := tinyPlatform(t)
	plat.EnableChangelog(0)
	extra := dataframe.New("extra.csv")
	s := &dataframe.Series{Name: "k"}
	for _, v := range []string{"x", "y", "z"} {
		s.Cells = append(s.Cells, dataframe.ParseCell(v))
	}
	extra.AddColumn(s)
	if _, err := plat.AddTables([]kglids.Table{{Dataset: "health", Frame: extra}}); err != nil {
		t.Fatal(err)
	}
	return plat
}

func TestChangelogEndpoint(t *testing.T) {
	plat := changelogPlatform(t)
	h := New(plat, Options{})
	head := plat.ChangelogPosition()
	if head == 0 {
		t.Fatal("no changelog records after ingest")
	}

	// Catch-up from zero, one record per page, then the at-head page.
	var cursor uint64
	var got int
	for {
		rec := getRaw(t, h, fmt.Sprintf("/api/v1/changelog?cursor=%d&limit=1", cursor), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("changelog cursor=%d = %d %s", cursor, rec.Code, rec.Body)
		}
		var page client.ChangelogPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		if page.Head != head {
			t.Fatalf("page head %d, want %d", page.Head, head)
		}
		for _, e := range page.Entries {
			if e.Seq != cursor+1 {
				t.Fatalf("gap: cursor %d, next %d", cursor, e.Seq)
			}
			if e.Kind == "" || len(e.Payload) == 0 {
				t.Fatalf("record %d missing kind/payload: %+v", e.Seq, e)
			}
			cursor = e.Seq
			got++
		}
		if page.NextCursor != cursor {
			t.Fatalf("next_cursor %d, want %d", page.NextCursor, cursor)
		}
		if page.AtHead {
			break
		}
	}
	if cursor != head || got == 0 {
		t.Fatalf("caught up to %d (%d records), want head %d", cursor, got, head)
	}

	// Invalid cursors: future → 410, non-numeric → 400.
	if rec := getRaw(t, h, fmt.Sprintf("/api/v1/changelog?cursor=%d", head+1), nil); rec.Code != http.StatusGone {
		t.Errorf("future cursor = %d, want 410", rec.Code)
	}
	if rec := getRaw(t, h, "/api/v1/changelog?cursor=abc", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad cursor = %d, want 400", rec.Code)
	}

	// No changelog enabled (plain platform) → 404.
	bare := New(tinyPlatform(t), Options{})
	if rec := getRaw(t, bare, "/api/v1/changelog?cursor=0", nil); rec.Code != http.StatusNotFound {
		t.Errorf("changelog without log = %d, want 404", rec.Code)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	plat := changelogPlatform(t)
	h := New(plat, Options{})
	rec := getRaw(t, h, "/api/v1/snapshot", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content-type %q", ct)
	}
	replica, err := kglids.Read(rec.Body)
	if err != nil {
		t.Fatalf("snapshot body does not load: %v", err)
	}
	if replica.Generation() != plat.Generation() {
		t.Errorf("loaded generation %d, want %d", replica.Generation(), plat.Generation())
	}
	if replica.ChangelogPosition() != plat.ChangelogPosition() {
		t.Errorf("loaded position %d, want %d", replica.ChangelogPosition(), plat.ChangelogPosition())
	}

	req := httptest.NewRequest(http.MethodPost, "/api/v1/snapshot", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST snapshot = %d, want 405", w.Code)
	}
}

// fixedReplica stubs ReplicaStatus for health reporting tests.
type fixedReplica struct {
	gen uint64
	lag float64
}

func (f fixedReplica) ReplicaHealth() (uint64, float64) { return f.gen, f.lag }

func TestReplicaRejectsWrites(t *testing.T) {
	plat := tinyPlatform(t)
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 4})
	defer mgr.Close()
	h := New(plat, Options{Ingest: mgr, ReadOnly: true, Replica: fixedReplica{gen: 7, lag: 0.25}})

	body := `{"tables":[{"dataset":"d","name":"t.csv","columns":[{"name":"c","values":["1"]}]}]}`
	for _, tc := range []struct {
		method, path string
	}{
		{http.MethodPost, "/api/v1/ingest"},
		{http.MethodPost, "/ingest"},
		{http.MethodDelete, "/api/v1/tables/health%2Fpatients.csv"},
		{http.MethodDelete, "/tables/health%2Fpatients.csv"},
	} {
		var req *http.Request
		if tc.method == http.MethodPost {
			req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req = httptest.NewRequest(tc.method, tc.path, nil)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s on replica = %d, want 405: %s", tc.method, tc.path, rec.Code, rec.Body)
		}
	}

	// Reads still work, and job listing stays readable.
	for _, path := range []string{"/api/v1/stats", "/api/v1/tables", "/api/v1/jobs", "/stats"} {
		if rec := getRaw(t, h, path, nil); rec.Code != http.StatusOK {
			t.Errorf("GET %s on replica = %d, want 200", path, rec.Code)
		}
	}
}

func TestHealthzReportsReplicaRole(t *testing.T) {
	plat := tinyPlatform(t)

	// Primary: role only.
	h := New(plat, Options{})
	var v1 client.Health
	if err := json.Unmarshal(getRaw(t, h, "/api/v1/healthz", nil).Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if v1.Role != "primary" || v1.AppliedGeneration != 0 {
		t.Errorf("primary healthz = %+v", v1)
	}

	// Replica: role plus applied generation and lag on both surfaces.
	hr := New(plat, Options{ReadOnly: true, Replica: fixedReplica{gen: 42, lag: 1.5}})
	if err := json.Unmarshal(getRaw(t, hr, "/api/v1/healthz", nil).Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if v1.Role != "replica" || v1.AppliedGeneration != 42 || v1.LagSeconds != 1.5 {
		t.Errorf("replica v1 healthz = %+v", v1)
	}
	var legacy map[string]any
	if err := json.Unmarshal(getRaw(t, hr, "/healthz", nil).Body.Bytes(), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy["status"] != "ok" || legacy["role"] != "replica" ||
		legacy["applied_generation"] != float64(42) || legacy["lag_seconds"] != 1.5 {
		t.Errorf("replica legacy healthz = %v", legacy)
	}
}
