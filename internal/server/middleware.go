package server

import (
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"
)

// --- request IDs + access logging -----------------------------------------

// requestCounter disambiguates requests sharing one process-lifetime prefix.
var requestCounter atomic.Uint64

// processID is a random per-process prefix so request IDs from different
// server instances do not collide in aggregated logs.
var processID = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

// statusWriter records the status and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// withObservability stamps every response with an X-Request-ID (a
// client-supplied one is echoed, otherwise one is generated) and, when
// logf is non-nil, emits one access-log line per request.
func withObservability(logf func(string, ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = requestID()
		}
		w.Header().Set("X-Request-ID", id)
		if logf == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logf("server: %s %s -> %d %dB in %v [%s]",
			r.Method, r.URL.Path, sw.status, sw.bytes,
			time.Since(start).Round(time.Microsecond), id)
	})
}

func requestID() string {
	return processID + "-" + hexUint(requestCounter.Add(1))
}

func hexUint(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[i:])
}

// --- gzip ------------------------------------------------------------------

// gzipWriter compresses the response body when the client accepts gzip.
// Compression is decided at WriteHeader time: bodiless statuses (204, 304)
// and already-encoded responses pass through untouched.
type gzipWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	wroteHeader bool
}

func (w *gzipWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		h := w.Header()
		if code != http.StatusNoContent && code != http.StatusNotModified &&
			h.Get("Content-Encoding") == "" {
			h.Set("Content-Encoding", "gzip")
			h.Del("Content-Length")
			w.gz = gzip.NewWriter(w.ResponseWriter)
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *gzipWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.gz != nil {
		return w.gz.Write(p)
	}
	return w.ResponseWriter.Write(p)
}

func (w *gzipWriter) close() {
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			log.Printf("server: gzip flush: %v", err)
		}
	}
}

// withGzip compresses response bodies for clients that accept gzip.
func withGzip(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Add("Vary", "Accept-Encoding")
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipWriter{ResponseWriter: w}
		defer gw.close()
		next.ServeHTTP(gw, r)
	})
}

// --- deadline + panic isolation --------------------------------------------

// bufferedResponse records a handler's response so withTimeout can discard
// it if the deadline fires first (the real writer must not be touched by
// two goroutines).
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(s int)   { b.status = s }
func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

// withTimeout runs each request in its own goroutine under a deadline.
// Responses are buffered: either the handler finishes and its response is
// flushed, or the deadline fires and the client gets a 504 envelope (the
// abandoned handler sees its context cancelled and its writes go nowhere).
// Handler panics become 500 envelopes instead of killing the connection.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		buf := &bufferedResponse{header: http.Header{}, status: http.StatusOK}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer close(done)
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			next.ServeHTTP(buf, r.WithContext(ctx))
		}()
		select {
		case <-done:
			select {
			case p := <-panicked:
				log.Printf("server: panic serving %s: %v\n%s", r.URL.Path, p, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			default:
				for k, vs := range buf.header {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(buf.status)
				if _, err := w.Write(buf.body); err != nil {
					log.Printf("server: write response: %v", err)
				}
			}
		case <-ctx.Done():
			writeError(w, http.StatusGatewayTimeout, "request timed out")
		}
	})
}
