package server

import (
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"kglids/internal/obs"
)

// chain carries the cross-cutting configuration every middleware layer
// shares: the structured logger, whether to emit access-log lines, and
// whether to record metrics (the bench harness turns recording off to
// measure instrumentation overhead).
type chain struct {
	logger    *slog.Logger
	accessLog bool
	metrics   bool
}

// --- request IDs + access logging -----------------------------------------

// requestCounter disambiguates requests sharing one process-lifetime prefix.
var requestCounter atomic.Uint64

// processID is a random per-process prefix so request IDs from different
// server instances do not collide in aggregated logs.
var processID = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

// statusWriter records the status and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// withObservability is the outermost middleware: it stamps every
// response with an X-Request-ID (a client-supplied one is echoed,
// otherwise one is generated), opens a request trace carried down the
// context, counts in-flight requests, and — in one deferred block that
// also forms the last-resort panic barrier — records the per-route
// metrics and emits the structured access-log line. Because the defer
// runs after every inner layer (including the panic isolation in
// withTimeout) has settled the response, metrics and the access log
// always observe the final status code, byte count, and route label.
func withObservability(cfg chain, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = requestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		rs := statsFor(r.URL.Path)
		route := rs.label
		if cfg.metrics {
			mHTTPInFlight.Inc()
			// A trace context costs a request clone plus two
			// allocations, so it is installed only on the routes whose
			// handlers record spans into it (the SPARQL query path,
			// where it carries stage timings and the request ID into
			// the slow-query log). Every other route is fully covered
			// by the route/status metrics recorded below.
			if rs.traced {
				r = r.WithContext(obs.WithTrace(r.Context(), obs.NewTrace(id)))
			}
		}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				// Handler panics are already isolated by withTimeout; this
				// barrier catches the middleware layers themselves so the
				// connection still gets an envelope and the log a line.
				if cfg.metrics {
					mHTTPPanics.Inc()
				}
				cfg.logger.Error("middleware panic",
					"request_id", id, "path", r.URL.Path, "panic", p,
					"stack", string(debug.Stack()))
				writeError(sw, http.StatusInternalServerError, "internal error")
			}
			dur := time.Since(start)
			if cfg.metrics {
				if sw.status == http.StatusOK && r.Method == http.MethodGet {
					rs.getOK.Inc()
				} else {
					mHTTPRequests.WithLabelValues(route, r.Method, statusLabel(sw.status)).Inc()
				}
				rs.latency.Observe(dur.Seconds())
				mHTTPInFlight.Dec()
			}
			if cfg.accessLog {
				cfg.logger.Info("request",
					"request_id", id, "route", route, "method", r.Method,
					"path", r.URL.Path, "status", sw.status, "bytes", sw.bytes,
					"duration_ms", float64(dur.Microseconds())/1e3)
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

func requestID() string {
	return processID + "-" + hexUint(requestCounter.Add(1))
}

// statusLabel is strconv.Itoa for HTTP statuses without the per-request
// allocation: every status this server emits is interned.
func statusLabel(code int) string {
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 204:
		return "204"
	case 304:
		return "304"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 409:
		return "409"
	case 412:
		return "412"
	case 500:
		return "500"
	case 503:
		return "503"
	case 504:
		return "504"
	default:
		return strconv.Itoa(code)
	}
}

func hexUint(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[i:])
}

// --- gzip ------------------------------------------------------------------

// gzipWriter compresses the response body when the client accepts gzip.
// Compression is decided at WriteHeader time: bodiless statuses (204, 304)
// and already-encoded responses pass through untouched.
type gzipWriter struct {
	http.ResponseWriter
	gz          *gzip.Writer
	logger      *slog.Logger
	wroteHeader bool
}

func (w *gzipWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		h := w.Header()
		if code != http.StatusNoContent && code != http.StatusNotModified &&
			h.Get("Content-Encoding") == "" {
			h.Set("Content-Encoding", "gzip")
			h.Del("Content-Length")
			w.gz = gzip.NewWriter(w.ResponseWriter)
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *gzipWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	if w.gz != nil {
		return w.gz.Write(p)
	}
	return w.ResponseWriter.Write(p)
}

func (w *gzipWriter) close() {
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			w.logger.Warn("gzip flush failed", "err", err)
		}
	}
}

// withGzip compresses response bodies for clients that accept gzip.
func withGzip(cfg chain, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Add("Vary", "Accept-Encoding")
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		gw := &gzipWriter{ResponseWriter: w, logger: cfg.logger}
		defer gw.close()
		next.ServeHTTP(gw, r)
	})
}

// --- deadline + panic isolation --------------------------------------------

// bufferedResponse records a handler's response so withTimeout can discard
// it if the deadline fires first (the real writer must not be touched by
// two goroutines).
type bufferedResponse struct {
	header http.Header
	status int
	body   []byte
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(s int)   { b.status = s }
func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.body = append(b.body, p...)
	return len(p), nil
}

// withTimeout runs each request in its own goroutine under a deadline.
// Responses are buffered: either the handler finishes and its response is
// flushed, or the deadline fires and the client gets a 504 envelope (the
// abandoned handler sees its context cancelled and its writes go nowhere).
// Handler panics become 500 envelopes instead of killing the connection —
// written through the outer layers' writer, so the access log and the
// route metrics see the final 500/504, not a phantom 200.
func withTimeout(cfg chain, d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		buf := &bufferedResponse{header: http.Header{}, status: http.StatusOK}
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer close(done)
			defer func() {
				if p := recover(); p != nil {
					panicked <- p
				}
			}()
			next.ServeHTTP(buf, r.WithContext(ctx))
		}()
		select {
		case <-done:
			select {
			case p := <-panicked:
				if cfg.metrics {
					mHTTPPanics.Inc()
				}
				cfg.logger.Error("handler panic",
					"path", r.URL.Path, "panic", p, "stack", string(debug.Stack()))
				writeError(w, http.StatusInternalServerError, "internal error")
			default:
				for k, vs := range buf.header {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(buf.status)
				if _, err := w.Write(buf.body); err != nil {
					cfg.logger.Warn("write response failed", "err", err)
				}
			}
		case <-ctx.Done():
			if cfg.metrics {
				mHTTPTimeouts.Inc()
			}
			writeError(w, http.StatusGatewayTimeout, "request timed out")
		}
	})
}
