package rdf

// The LiDS ontology (paper Section 2.1): 13 classes, 19 object properties,
// and 22 data properties conceptualizing datasets, tables, columns,
// libraries, pipelines, and statements.

// Classes of the LiDS ontology.
var (
	ClassSource    = Ontology("Source")
	ClassDataset   = Ontology("Dataset")
	ClassTable     = Ontology("Table")
	ClassColumn    = Ontology("Column")
	ClassLibrary   = Ontology("Library")
	ClassPackage   = Ontology("Package")
	ClassClass     = Ontology("Class")
	ClassFunction  = Ontology("Function")
	ClassPipeline  = Ontology("Pipeline")
	ClassStatement = Ontology("Statement")
	ClassParameter = Ontology("Parameter")
	ClassModel     = Ontology("Model")
	ClassUser      = Ontology("User")
)

// Object properties of the LiDS ontology.
var (
	PropIsPartOf          = Ontology("isPartOf")
	PropHasTable          = Ontology("hasTable")
	PropHasColumn         = Ontology("hasColumn")
	PropColumnSimilarity  = Ontology("columnSimilarity")  // content similarity
	PropLabelSimilarity   = Ontology("labelSimilarity")   // column-name similarity
	PropContentSimilarity = Ontology("contentSimilarity") // value/embedding similarity
	PropReads             = Ontology("reads")
	PropReadsColumn       = Ontology("readsColumn")
	PropCallsLibrary      = Ontology("callsLibrary")
	PropCallsFunction     = Ontology("callsFunction")
	PropCodeFlow          = Ontology("nextStatement") // code flow edge
	PropDataFlow          = Ontology("hasDataFlowTo") // data flow edge
	PropHasParameter      = Ontology("hasParameter")
	PropIsWrittenBy       = Ontology("isWrittenBy")
	PropUsesDataset       = Ontology("usesDataset")
	PropSubLibraryOf      = Ontology("isSubLibraryOf")
	PropAppliedTo         = Ontology("appliedTo") // operation → column/table
	PropHasModel          = Ontology("hasModel")
	PropTrainedOn         = Ontology("trainedOn")
)

// Data properties of the LiDS ontology.
var (
	PropName            = Ontology("name")
	PropPath            = Ontology("path")
	PropDataType        = Ontology("dataType") // fine-grained type
	PropTotalValues     = Ontology("totalValueCount")
	PropDistinctValues  = Ontology("distinctValueCount")
	PropMissingValues   = Ontology("missingValueCount")
	PropMinValue        = Ontology("minValue")
	PropMaxValue        = Ontology("maxValue")
	PropMeanValue       = Ontology("meanValue")
	PropStdDev          = Ontology("standardDeviation")
	PropTrueRatio       = Ontology("trueRatio")
	PropCertainty       = Ontology("withCertainty") // RDF-star score annotation
	PropStatementText   = Ontology("statementText")
	PropControlFlowType = Ontology("controlFlow")
	PropLineNumber      = Ontology("lineNumber")
	PropParameterValue  = Ontology("parameterValue")
	PropReturnType      = Ontology("returnType")
	PropVotes           = Ontology("votes")
	PropScore           = Ontology("score")
	PropAuthor          = Ontology("author")
	PropTask            = Ontology("task")
	PropRowCount        = Ontology("rowCount")
)

// Control-flow type literal values (paper Section 3.1).
const (
	FlowLoop        = "loop"
	FlowConditional = "conditional"
	FlowImport      = "import"
	FlowFunctionDef = "user_defined_function"
	FlowStraight    = "straight"
)
