package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	if got := IRI("http://x/y").Local(); got != "y" {
		t.Errorf("Local() = %q, want y", got)
	}
	if got := Ontology("Column").Value; got != OntologyNS+"Column" {
		t.Errorf("Ontology = %q", got)
	}
	if got := Resource("ds1").Value; got != ResourceNS+"ds1" {
		t.Errorf("Resource = %q", got)
	}
	if !String("hi").IsLiteral() {
		t.Error("String literal not literal")
	}
	if IRI("a").IsLiteral() {
		t.Error("IRI reported as literal")
	}
}

func TestNumericLiterals(t *testing.T) {
	f, ok := Float(3.25).AsFloat()
	if !ok || f != 3.25 {
		t.Errorf("Float roundtrip = %v, %v", f, ok)
	}
	n, ok := Integer(-42).AsInt()
	if !ok || n != -42 {
		t.Errorf("Integer roundtrip = %v, %v", n, ok)
	}
	if _, ok := String("abc").AsFloat(); ok {
		t.Error("non-numeric literal parsed as float")
	}
	if _, ok := IRI("x").AsFloat(); ok {
		t.Error("IRI parsed as float")
	}
	if f, ok := Integer(7).AsFloat(); !ok || f != 7 {
		t.Error("integer literal should parse as float")
	}
}

func TestBoolLiteral(t *testing.T) {
	if Bool(true).Value != "true" || Bool(false).Value != "false" {
		t.Error("Bool lexical forms wrong")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{IRI("http://a"), "<http://a>"},
		{Blank("b0"), "_:b0"},
		{String("v"), `"v"`},
		{Integer(5), `"5"^^<` + XSDNS + `integer>`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestQuotedTriple(t *testing.T) {
	tr := T(IRI("s"), IRI("p"), IRI("o"))
	q := QuotedTriple(tr)
	if q.Kind != KindQuoted || !q.Quoted.Equal(tr) {
		t.Fatal("quoted triple not preserved")
	}
	q2 := QuotedTriple(tr)
	if !q.Equal(q2) {
		t.Error("equal quoted triples not Equal")
	}
	if q.Key() != q2.Key() {
		t.Error("equal quoted triples have different keys")
	}
	other := QuotedTriple(T(IRI("s"), IRI("p"), IRI("x")))
	if q.Equal(other) {
		t.Error("different quoted triples reported Equal")
	}
}

func TestKeyUniqueness(t *testing.T) {
	// Literal "Ix" must not collide with IRI "x".
	if String("Ix").Key() == IRI("x").Key() {
		t.Error("literal/IRI key collision")
	}
	if String("a").Key() == Blank("a").Key() {
		t.Error("literal/blank key collision")
	}
	if String("a").Key() == String("a\x01"+XSDNS+"other").Key() {
		t.Error("datatype not part of key")
	}
}

func TestKeyEqualConsistency(t *testing.T) {
	// Property: Equal terms have equal keys, and for the generated domain
	// distinct values yield distinct keys.
	f := func(a, b string) bool {
		ta, tb := String(a), String(b)
		if (a == b) != ta.Equal(tb) {
			return false
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleEqualString(t *testing.T) {
	a := T(IRI("s"), IRI("p"), String("o"))
	b := T(IRI("s"), IRI("p"), String("o"))
	if !a.Equal(b) {
		t.Error("identical triples not Equal")
	}
	if a.String() != `<s> <p> "o"` {
		t.Errorf("Triple.String() = %q", a.String())
	}
}
