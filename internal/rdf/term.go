// Package rdf provides the RDF-star data model used by the LiDS graph:
// IRIs, literals, blank nodes, quoted triples, triples, and quads with
// named-graph support. It mirrors the subset of RDF 1.1 + RDF-star that
// the KGLiDS paper relies on (Section 2.1).
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// Namespace prefixes used throughout the LiDS graph, matching the paper's
// ontology URIs.
const (
	OntologyNS = "http://kglids.org/ontology/"
	ResourceNS = "http://kglids.org/resource/"
	RDFNS      = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS     = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS      = "http://www.w3.org/2001/XMLSchema#"
)

// TermKind discriminates the variants of Term.
type TermKind uint8

const (
	KindIRI TermKind = iota
	KindLiteral
	KindBlank
	KindQuoted // RDF-star quoted triple used as a term
)

// Term is a node or edge label in an RDF graph. Exactly one variant is
// populated depending on Kind.
type Term struct {
	Kind     TermKind
	Value    string  // IRI string, literal lexical form, or blank node label
	Datatype string  // literal datatype IRI ("" means xsd:string)
	Quoted   *Triple // populated when Kind == KindQuoted
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Ontology returns an IRI in the LiDS ontology namespace.
func Ontology(local string) Term { return IRI(OntologyNS + local) }

// Resource returns an IRI in the LiDS resource namespace.
func Resource(local string) Term { return IRI(ResourceNS + local) }

// Blank returns a blank node with the given label.
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// String returns an xsd:string literal.
func String(v string) Term { return Term{Kind: KindLiteral, Value: v, Datatype: XSDNS + "string"} }

// Integer returns an xsd:integer literal.
func Integer(v int64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatInt(v, 10), Datatype: XSDNS + "integer"}
}

// Float returns an xsd:double literal.
func Float(v float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDNS + "double"}
}

// Bool returns an xsd:boolean literal.
func Bool(v bool) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatBool(v), Datatype: XSDNS + "boolean"}
}

// QuotedTriple returns an RDF-star quoted-triple term wrapping t.
func QuotedTriple(t Triple) Term { return Term{Kind: KindQuoted, Quoted: &t} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// AsFloat parses a numeric literal. It returns false for non-numeric terms.
func (t Term) AsFloat() (float64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	if err != nil {
		return 0, false
	}
	return f, nil == err
}

// AsInt parses an integer literal. It returns false for non-integer terms.
func (t Term) AsInt() (int64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	n, err := strconv.ParseInt(t.Value, 10, 64)
	return n, err == nil
}

// Local returns the local name of an IRI (the part after the last '/' or '#').
func (t Term) Local() string {
	if t.Kind != KindIRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "/#"); i >= 0 {
		return v[i+1:]
	}
	return v
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindQuoted:
		return "<< " + t.Quoted.String() + " >>"
	default:
		if t.Datatype == "" || t.Datatype == XSDNS+"string" {
			return strconv.Quote(t.Value)
		}
		return strconv.Quote(t.Value) + "^^<" + t.Datatype + ">"
	}
}

// Equal reports deep equality of two terms.
func (t Term) Equal(o Term) bool {
	if t.Kind != o.Kind || t.Value != o.Value || t.Datatype != o.Datatype {
		return false
	}
	if t.Kind == KindQuoted {
		return t.Quoted.Equal(*o.Quoted)
	}
	return true
}

// Key returns a canonical string key for dictionary encoding.
func (t Term) Key() string {
	switch t.Kind {
	case KindIRI:
		return "I" + t.Value
	case KindBlank:
		return "B" + t.Value
	case KindQuoted:
		q := t.Quoted
		return "Q" + q.Subject.Key() + "\x00" + q.Predicate.Key() + "\x00" + q.Object.Key()
	default:
		return "L" + t.Value + "\x01" + t.Datatype
	}
}

// Triple is a single RDF statement.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// T is shorthand for constructing a Triple.
func T(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple in N-Triples-like syntax (without trailing dot).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s", t.Subject, t.Predicate, t.Object)
}

// Equal reports deep equality of two triples.
func (t Triple) Equal(o Triple) bool {
	return t.Subject.Equal(o.Subject) && t.Predicate.Equal(o.Predicate) && t.Object.Equal(o.Object)
}

// Quad is a triple within a named graph. An empty Graph denotes the default
// graph.
type Quad struct {
	Triple
	Graph Term
}

// Q is shorthand for constructing a Quad.
func Q(s, p, o, g Term) Quad { return Quad{Triple: T(s, p, o), Graph: g} }

// DefaultGraph is the term denoting the default graph.
var DefaultGraph = Term{Kind: KindIRI, Value: ""}

// Well-known predicates used across the LiDS graph.
var (
	RDFType   = IRI(RDFNS + "type")
	RDFSLabel = IRI(RDFSNS + "label")
)
