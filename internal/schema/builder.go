// Package schema implements the Data Global Schema Builder and the Global
// Graph Linker (paper Section 3.3, Algorithm 3): it turns column profiles
// into the dataset graph — metadata subgraphs plus label- and content-
// similarity edges between same-type columns, annotated RDF-star style with
// certainty scores — and verifies predicted dataset reads from pipeline
// abstraction against the global schema.
package schema

import (
	"fmt"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"

	"kglids/internal/embed"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/store"
)

// Thresholds are the user-defined similarity thresholds of Algorithm 3:
// Alpha for label similarity, Beta for boolean true-ratio similarity, and
// Theta for content (embedding) similarity.
type Thresholds struct {
	Alpha float64
	Beta  float64
	Theta float64
}

// DefaultThresholds matches the high-precision setting discussed in the
// paper (high thresholds → fewer but more accurate edges).
func DefaultThresholds() Thresholds { return Thresholds{Alpha: 0.75, Beta: 0.90, Theta: 0.85} }

// Edge is one materialized similarity relationship between two columns.
type Edge struct {
	A, B  string // column IDs "dataset/table/column"
	Kind  string // "LabelSimilarity" or "ContentSimilarity"
	Score float64
}

// Builder runs Algorithm 3 over a set of column profiles.
type Builder struct {
	Thresholds Thresholds
	Words      *embed.WordModel
	Workers    int
	// SkipLabels disables label-similarity edges (the "Fine-Grained" only
	// configuration of the Figure 6 ablation).
	SkipLabels bool
	// BlockSize bounds the exhaustive fallback of the blocked pipeline:
	// same-fine-grained-type blocks with at most this many columns are
	// compared pair-by-pair, larger ones go through the candidate
	// pre-filter. 0 means DefaultEdgeBlockSize.
	BlockSize int
	// Candidates is the target number of candidates per column in the
	// pre-filtered path (the average pre-filter cluster size). It tunes
	// cost only — the pre-filter may return more candidates to preserve
	// exactness. 0 means DefaultEdgeCandidates.
	Candidates int
	// Labels is the persistent label-embedding cache. Leave nil for a
	// private per-builder cache; core.Platform shares one across every
	// bootstrap and ingest delta so each distinct label is embedded once
	// for the platform's lifetime.
	Labels *LabelCache

	// lastStats describes the most recent SimilarityEdges/Delta/Exhaustive
	// run. Written at the end of each (single-threaded) build.
	lastStats EdgeBuildStats
}

// NewBuilder returns a builder with default thresholds.
func NewBuilder() *Builder {
	return &Builder{Thresholds: DefaultThresholds(), Words: embed.NewWordModel(), Workers: runtime.NumCPU()}
}

func (b *Builder) labelCache() *LabelCache {
	if b.Labels == nil {
		b.Labels = NewLabelCache()
	}
	return b.Labels
}

// LastStats returns instrumentation from the most recent similarity build
// on this builder (pairs compared vs. the exhaustive count, peak pair
// buffer, blocks pruned).
func (b *Builder) LastStats() EdgeBuildStats { return b.lastStats }

// labelView gives per-profile normalized labels and label embeddings for
// one build, backed by the persistent LabelCache: embeddings depend only
// on the normalized label, so repeated labels (and repeated builds) cost
// map lookups, not re-embedding.
type labelView struct {
	norms []string
	vecs  []embed.Vector
}

func (b *Builder) labelViewOf(profiles []*profiler.ColumnProfile) *labelView {
	lv := &labelView{vecs: make([]embed.Vector, len(profiles)), norms: make([]string, len(profiles))}
	cache := b.labelCache()
	for i, cp := range profiles {
		lv.norms[i] = normalizeLabel(cp.Column)
		lv.vecs[i] = cache.VecForNorm(b.Words, lv.norms[i])
	}
	return lv
}

func (lv *labelView) similarity(i, j int) float64 {
	if lv.norms[i] == lv.norms[j] {
		return 1.0
	}
	return embed.Cosine(lv.vecs[i], lv.vecs[j])
}

func normalizeLabel(s string) string {
	return strings.Join(embed.TokenizeLabel(s), " ")
}

// SimilarityEdges performs the pairwise comparison of Algorithm 3 (lines
// 7-19): all column pairs with the same fine-grained type in different
// tables, compared for label and content similarity. It runs the blocked,
// streaming, candidate-pruned pipeline (see blocked.go): memory stays
// bounded by workers × batch size instead of the O(n²) pair count, and
// large blocks are pruned to ~O(n·C) comparisons with an output provably
// identical to SimilarityEdgesExhaustive.
func (b *Builder) SimilarityEdges(profiles []*profiler.ColumnProfile) []Edge {
	return b.similarityEdgesBlocked(profiles, 0)
}

// SimilarityEdgesDelta compares only the pairs an incremental ingest
// introduces: added×existing and added×added (same fine-grained type,
// different tables). Over a sequence of adds each qualifying pair is
// compared exactly once, so the accumulated edge set equals what
// SimilarityEdges would produce over the final profile set — the property
// the live-ingestion equivalence guarantee rests on. It shares the blocked
// pipeline: blocks without added columns are skipped outright, and within
// active blocks only the added columns query the pre-filter.
func (b *Builder) SimilarityEdgesDelta(existing, added []*profiler.ColumnProfile) []Edge {
	combined := make([]*profiler.ColumnProfile, 0, len(existing)+len(added))
	combined = append(combined, existing...)
	combined = append(combined, added...)
	return b.similarityEdgesBlocked(combined, len(existing))
}

// SimilarityEdgesExhaustive is the reference O(n²) implementation: it
// materializes every same-type cross-table pair up front and compares them
// all. It exists as the oracle for the randomized equivalence harness and
// for measuring what the blocked pipeline saves — production paths use
// SimilarityEdges.
func (b *Builder) SimilarityEdgesExhaustive(profiles []*profiler.ColumnProfile) []Edge {
	return b.similarityEdgesExhaustive(profiles, 0)
}

// SimilarityEdgesDeltaExhaustive is the reference implementation of the
// delta comparison, the oracle for delta-path equivalence tests.
func (b *Builder) SimilarityEdgesDeltaExhaustive(existing, added []*profiler.ColumnProfile) []Edge {
	combined := make([]*profiler.ColumnProfile, 0, len(existing)+len(added))
	combined = append(combined, existing...)
	combined = append(combined, added...)
	return b.similarityEdgesExhaustive(combined, len(existing))
}

// similarityEdgesExhaustive compares all same-type cross-table pairs
// (i, j) with i < j and j >= minNew; minNew 0 means every pair. The pair
// slice it builds is the O(n²) memory cliff the blocked pipeline removes.
func (b *Builder) similarityEdgesExhaustive(profiles []*profiler.ColumnProfile, minNew int) []Edge {
	labels := b.labelViewOf(profiles)
	// Group column indexes by fine-grained type (the pruning that
	// Section 3.2 credits for cutting false positives and cost).
	byType := map[embed.Type][]int{}
	for i, cp := range profiles {
		byType[cp.Type] = append(byType[cp.Type], i)
	}
	type pair struct{ i, j int }
	var pairs []pair
	for _, idxs := range byType {
		for a := 0; a < len(idxs); a++ {
			for c := a + 1; c < len(idxs); c++ {
				if idxs[c] < minNew {
					continue // both sides pre-existing: already compared
				}
				pi, pj := profiles[idxs[a]], profiles[idxs[c]]
				if pi.TableID() == pj.TableID() {
					continue // only cross-table edges
				}
				pairs = append(pairs, pair{i: idxs[a], j: idxs[c]})
			}
		}
	}
	workers := b.Workers
	if workers < 1 {
		workers = 1
	}
	results := make([][]Edge, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := min(lo+chunk, len(pairs))
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []Edge
			for _, pr := range pairs[lo:hi] {
				out = append(out, b.comparePair(profiles[pr.i], profiles[pr.j], labels.similarity(pr.i, pr.j))...)
			}
			results[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var edges []Edge
	for _, r := range results {
		edges = append(edges, r...)
	}
	b.lastStats = EdgeBuildStats{
		Columns:         len(profiles),
		Blocks:          len(byType),
		PairsCompared:   int64(len(pairs)),
		PairsExhaustive: int64(len(pairs)),
		PeakPairBuffer:  int64(len(pairs)),
	}
	SortEdges(edges)
	return edges
}

// comparePair is the worker body of Algorithm 3 (lines 9-19); labelSim is
// the precomputed label-embedding similarity for the pair.
func (b *Builder) comparePair(a, c *profiler.ColumnProfile, labelSim float64) []Edge {
	var out []Edge
	if !b.SkipLabels && labelSim >= b.Thresholds.Alpha {
		out = append(out, Edge{A: a.ID(), B: c.ID(), Kind: "LabelSimilarity", Score: labelSim})
	}
	if a.Type == embed.TypeBoolean {
		sim := 1 - abs(a.Stats.TrueRatio-c.Stats.TrueRatio)
		if sim >= b.Thresholds.Beta {
			out = append(out, Edge{A: a.ID(), B: c.ID(), Kind: "ContentSimilarity", Score: sim})
		}
		return out
	}
	if sim := embed.Cosine(a.Embed, c.Embed); sim >= b.Thresholds.Theta {
		out = append(out, Edge{A: a.ID(), B: c.ID(), Kind: "ContentSimilarity", Score: sim})
	}
	return out
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// ColumnIRI returns the LiDS resource IRI for a column ID.
func ColumnIRI(id string) rdf.Term { return rdf.Resource(escapePath(id)) }

// TableIRI returns the LiDS resource IRI for "dataset/table".
func TableIRI(id string) rdf.Term { return rdf.Resource(escapePath(id)) }

// DatasetIRI returns the LiDS resource IRI for a dataset.
func DatasetIRI(id string) rdf.Term { return rdf.Resource(escapePath(id)) }

func escapePath(p string) string {
	parts := strings.Split(p, "/")
	for i, s := range parts {
		parts[i] = url.PathEscape(s)
	}
	return strings.Join(parts, "/")
}

// TableGraph returns the named graph holding a table's metadata subgraph.
// Every metadata triple of a table (and the dataset triples it shares with
// sibling tables) is a member of this graph, which is what makes a table
// individually removable: dropping the graph drops exactly the metadata
// that table contributed, while shared dataset triples survive through the
// sibling tables' graph memberships.
func TableGraph(tableID string) rdf.Term { return TableIRI(tableID) }

// MetadataQuads renders the metadata subgraphs of the profiled columns
// (Algorithm 3 lines 3-5), one named graph per table. Profiles of the same
// table must be contiguous, as ProfileAll emits them.
func MetadataQuads(profiles []*profiler.ColumnProfile) []rdf.Quad {
	tablesSeen := map[string]bool{}
	var quads []rdf.Quad
	for _, cp := range profiles {
		col := ColumnIRI(cp.ID())
		table := TableIRI(cp.TableID())
		ds := DatasetIRI(cp.Dataset)
		g := TableGraph(cp.TableID())
		add := func(t rdf.Triple) { quads = append(quads, rdf.Quad{Triple: t, Graph: g}) }
		if !tablesSeen[cp.TableID()] {
			tablesSeen[cp.TableID()] = true
			add(rdf.T(ds, rdf.RDFType, rdf.ClassDataset))
			add(rdf.T(ds, rdf.PropName, rdf.String(cp.Dataset)))
			add(rdf.T(ds, rdf.RDFSLabel, rdf.String(cp.Dataset)))
			add(rdf.T(table, rdf.RDFType, rdf.ClassTable))
			add(rdf.T(table, rdf.PropName, rdf.String(cp.Table)))
			add(rdf.T(table, rdf.RDFSLabel, rdf.String(cp.Table)))
			add(rdf.T(table, rdf.PropIsPartOf, ds))
			add(rdf.T(ds, rdf.PropHasTable, table))
			add(rdf.T(table, rdf.PropRowCount, rdf.Integer(int64(cp.Stats.Total))))
		}
		add(rdf.T(col, rdf.RDFType, rdf.ClassColumn))
		add(rdf.T(col, rdf.PropName, rdf.String(cp.Column)))
		add(rdf.T(col, rdf.RDFSLabel, rdf.String(cp.Column)))
		add(rdf.T(col, rdf.PropIsPartOf, table))
		add(rdf.T(table, rdf.PropHasColumn, col))
		add(rdf.T(col, rdf.PropDataType, rdf.String(string(cp.Type))))
		add(rdf.T(col, rdf.PropTotalValues, rdf.Integer(int64(cp.Stats.Total))))
		add(rdf.T(col, rdf.PropDistinctValues, rdf.Integer(int64(cp.Stats.Distinct))))
		add(rdf.T(col, rdf.PropMissingValues, rdf.Integer(int64(cp.Stats.Missing))))
		switch cp.Type {
		case embed.TypeInt, embed.TypeFloat:
			add(rdf.T(col, rdf.PropMinValue, rdf.Float(cp.Stats.Min)))
			add(rdf.T(col, rdf.PropMaxValue, rdf.Float(cp.Stats.Max)))
			add(rdf.T(col, rdf.PropMeanValue, rdf.Float(cp.Stats.Mean)))
			add(rdf.T(col, rdf.PropStdDev, rdf.Float(cp.Stats.Std)))
		case embed.TypeBoolean:
			add(rdf.T(col, rdf.PropTrueRatio, rdf.Float(cp.Stats.TrueRatio)))
		}
	}
	return quads
}

// EdgeQuads renders similarity edges as default-graph quads: both
// directions of the symmetric relationship plus the RDF-star certainty
// annotations. It is a pure function of the edges, so the exact quads an
// edge contributed can be reconstructed later to remove it.
func EdgeQuads(edges []Edge) []rdf.Quad {
	quads := make([]rdf.Quad, 0, 4*len(edges))
	for _, e := range edges {
		pred := rdf.PropLabelSimilarity
		if e.Kind == "ContentSimilarity" {
			pred = rdf.PropContentSimilarity
		}
		score := rdf.Float(e.Score)
		ta := rdf.T(ColumnIRI(e.A), pred, ColumnIRI(e.B))
		tb := rdf.T(ColumnIRI(e.B), pred, ColumnIRI(e.A))
		quads = append(quads,
			rdf.Quad{Triple: ta, Graph: rdf.DefaultGraph},
			rdf.Quad{Triple: rdf.T(rdf.QuotedTriple(ta), rdf.PropCertainty, score), Graph: rdf.DefaultGraph},
			rdf.Quad{Triple: tb, Graph: rdf.DefaultGraph},
			rdf.Quad{Triple: rdf.T(rdf.QuotedTriple(tb), rdf.PropCertainty, score), Graph: rdf.DefaultGraph},
		)
	}
	return quads
}

// BuildGraph constructs the dataset graph in st: per-table metadata
// subgraphs in per-table named graphs and similarity edges annotated with
// certainty scores in the default graph, then returns the edges.
func (b *Builder) BuildGraph(st *store.Store, profiles []*profiler.ColumnProfile) []Edge {
	st.AddBatch(MetadataQuads(profiles))
	edges := b.SimilarityEdges(profiles)
	st.AddBatch(EdgeQuads(edges))
	return edges
}

// SortEdges orders edges by (A, B, Kind), the canonical order BuildGraph
// returns; incremental ingestion re-sorts after merging delta edges so the
// edge list stays deterministic.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		if edges[i].B != edges[j].B {
			return edges[i].B < edges[j].B
		}
		return edges[i].Kind < edges[j].Kind
	})
}

// Linker is the Global Graph Linker: it verifies predicted dataset-usage
// nodes from pipeline abstraction against the data global schema
// (Section 3.1, "Predicting Dataset Usage and Graph Linker"). It is safe
// for concurrent use: live ingestion mutates the schema (AddProfiles /
// RemoveTable) while pipeline abstraction verifies reads against it.
type Linker struct {
	mu      sync.RWMutex
	tables  map[string]bool            // "dataset/table"
	columns map[string]map[string]bool // table ID -> column name set
}

// NewLinker indexes the global schema from profiles.
func NewLinker(profiles []*profiler.ColumnProfile) *Linker {
	l := &Linker{tables: map[string]bool{}, columns: map[string]map[string]bool{}}
	l.AddProfiles(profiles)
	return l
}

// AddProfiles extends the indexed schema with newly profiled columns.
func (l *Linker) AddProfiles(profiles []*profiler.ColumnProfile) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, cp := range profiles {
		tid := cp.TableID()
		l.tables[tid] = true
		if l.columns[tid] == nil {
			l.columns[tid] = map[string]bool{}
		}
		l.columns[tid][cp.Column] = true
	}
}

// RemoveTable drops a table (and its columns) from the indexed schema.
func (l *Linker) RemoveTable(tableID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.tables, tableID)
	delete(l.columns, tableID)
}

// VerifyTable resolves a table path mentioned in a pipeline (e.g.
// "titanic/train.csv") to a table ID in the schema, trying both the raw
// path and a dataset-qualified suffix match.
func (l *Linker) VerifyTable(path string) (string, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	p := strings.TrimPrefix(path, "./")
	p = strings.TrimPrefix(p, "../input/")
	p = strings.TrimPrefix(p, "input/")
	if l.tables[p] {
		return p, true
	}
	// Suffix match: any table whose "dataset/table" ends with the path.
	for tid := range l.tables {
		if strings.HasSuffix(tid, "/"+p) || tid == p {
			return tid, true
		}
	}
	// Bare filename match.
	base := p
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		base = p[i+1:]
	}
	for tid := range l.tables {
		if strings.HasSuffix(tid, "/"+base) {
			return tid, true
		}
	}
	return "", false
}

// VerifyColumn reports whether a column name exists in the given table.
// Predicted column reads that fail verification are dropped from the graph
// (e.g. the user-defined NormalizedAge column in the paper's Figure 3).
func (l *Linker) VerifyColumn(tableID, column string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cols, ok := l.columns[tableID]
	return ok && cols[column]
}

// String summarizes the linker's schema coverage.
func (l *Linker) String() string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	nc := 0
	for _, cols := range l.columns {
		nc += len(cols)
	}
	return fmt.Sprintf("Linker{%d tables, %d columns}", len(l.tables), nc)
}
