package schema

import (
	"fmt"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/sparql"
	"kglids/internal/store"
)

// fixtureProfiles builds profiles for two small tables with an obviously
// unionable pair of columns.
func fixtureProfiles(t *testing.T) []*profiler.ColumnProfile {
	t.Helper()
	p := profiler.New()
	mk := func(dataset, table string, cols map[string][]string, order []string) []*profiler.ColumnProfile {
		df := dataframe.New(table)
		for _, name := range order {
			s := &dataframe.Series{Name: name}
			for _, v := range cols[name] {
				s.Cells = append(s.Cells, dataframe.ParseCell(v))
			}
			df.AddColumn(s)
		}
		return p.ProfileTable(dataset, df)
	}
	cities := []string{"Montreal", "Toronto", "Vancouver", "Ottawa", "Calgary", "Montreal", "Toronto", "Ottawa"}
	profiles := mk("titanic", "train.csv", map[string][]string{
		"Sex":      {"male", "female", "male", "male", "female", "female", "male", "female"},
		"Age":      {"22", "38", "26", "35", "35", "54", "2", "27"},
		"City":     cities,
		"Survived": {"0", "1", "1", "1", "0", "0", "0", "1"},
	}, []string{"Sex", "Age", "City", "Survived"})
	profiles = append(profiles, mk("heart", "heart.csv", map[string][]string{
		"gender": {"male", "female", "male", "female", "male", "male", "female", "male"},
		"age":    {"63", "37", "41", "56", "57", "44", "52", "57"},
		"city":   cities,
		"target": {"1", "1", "1", "0", "0", "0", "1", "1"},
	}, []string{"gender", "age", "city", "target"})...)
	return profiles
}

func edgeSet(edges []Edge) map[string]bool {
	out := map[string]bool{}
	for _, e := range edges {
		out[e.A+"|"+e.B+"|"+e.Kind] = true
		out[e.B+"|"+e.A+"|"+e.Kind] = true
	}
	return out
}

func TestSimilarityEdges(t *testing.T) {
	b := NewBuilder()
	edges := b.SimilarityEdges(fixtureProfiles(t))
	set := edgeSet(edges)
	if !set["titanic/train.csv/Sex|heart/heart.csv/gender|LabelSimilarity"] {
		t.Error("Sex~gender label edge missing")
	}
	if !set["titanic/train.csv/Age|heart/heart.csv/age|LabelSimilarity"] {
		t.Error("Age~age label edge missing")
	}
	if !set["titanic/train.csv/City|heart/heart.csv/city|ContentSimilarity"] {
		t.Error("City~city content edge missing (identical values)")
	}
	if !set["titanic/train.csv/Sex|heart/heart.csv/gender|ContentSimilarity"] {
		t.Error("Sex~gender content edge missing (same value domain)")
	}
	// No edge between different-type columns (Age int vs Sex named_entity
	// never compared).
	if set["titanic/train.csv/Age|heart/heart.csv/gender|ContentSimilarity"] {
		t.Error("cross-type edge should not exist")
	}
	// Intra-table pairs excluded.
	for _, e := range edges {
		if e.A[:7] == e.B[:7] && e.A[:14] == e.B[:14] {
			// same table prefix "titanic/train."
			t.Errorf("intra-table edge %v", e)
		}
	}
}

func TestBooleanTrueRatioEdge(t *testing.T) {
	b := NewBuilder()
	p := profiler.New()
	mk := func(ds, tbl, col string, vals ...string) *profiler.ColumnProfile {
		s := &dataframe.Series{Name: col}
		for _, v := range vals {
			s.Cells = append(s.Cells, dataframe.ParseCell(v))
		}
		return p.ProfileColumn(ds, tbl, s)
	}
	a := mk("d1", "t1.csv", "active", "1", "1", "1", "0") // ratio 0.75
	c := mk("d2", "t2.csv", "flag", "1", "1", "0", "1")   // ratio 0.75
	d := mk("d3", "t3.csv", "rare", "0", "0", "0", "1")   // ratio 0.25
	edges := b.SimilarityEdges([]*profiler.ColumnProfile{a, c, d})
	set := edgeSet(edges)
	if !set["d1/t1.csv/active|d2/t2.csv/flag|ContentSimilarity"] {
		t.Error("matching true-ratio edge missing")
	}
	if set["d1/t1.csv/active|d3/t3.csv/rare|ContentSimilarity"] {
		t.Error("mismatched true-ratio edge should be filtered (diff 0.5 < beta)")
	}
}

func TestThresholdsControlRecall(t *testing.T) {
	profiles := fixtureProfiles(t)
	strict := NewBuilder()
	strict.Thresholds = Thresholds{Alpha: 0.999, Beta: 0.999, Theta: 0.999}
	loose := NewBuilder()
	loose.Thresholds = Thresholds{Alpha: 0.3, Beta: 0.5, Theta: 0.3}
	ns, nl := len(strict.SimilarityEdges(profiles)), len(loose.SimilarityEdges(profiles))
	if ns >= nl {
		t.Errorf("strict thresholds produced %d edges, loose %d; want fewer", ns, nl)
	}
}

func TestSkipLabels(t *testing.T) {
	b := NewBuilder()
	b.SkipLabels = true
	for _, e := range b.SimilarityEdges(fixtureProfiles(t)) {
		if e.Kind == "LabelSimilarity" {
			t.Fatal("label edge produced with SkipLabels")
		}
	}
}

func TestBuildGraph(t *testing.T) {
	st := store.New()
	b := NewBuilder()
	profiles := fixtureProfiles(t)
	edges := b.BuildGraph(st, profiles)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	eng := sparql.NewEngine(st)
	res, err := eng.Query(`SELECT (COUNT(?c) AS ?n) WHERE { ?c a kglids:Column . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0]["n"].AsInt(); n != 8 {
		t.Errorf("columns in graph = %d, want 8", n)
	}
	res, err = eng.Query(`SELECT ?t WHERE { ?t a kglids:Table ; kglids:isPartOf ?d . ?d a kglids:Dataset . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("tables = %d", len(res.Rows))
	}
	// Similarity edges are queryable and annotated.
	res, err = eng.Query(`SELECT ?a ?b WHERE { ?a kglids:contentSimilarity ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no content similarity edges in graph")
	}
	tr := rdf.T(res.Rows[0]["a"], rdf.PropContentSimilarity, res.Rows[0]["b"])
	if _, ok := st.Annotation(tr, rdf.PropCertainty); !ok {
		t.Error("content edge lacks certainty annotation")
	}
}

func TestLinker(t *testing.T) {
	profiles := fixtureProfiles(t)
	l := NewLinker(profiles)
	cases := []struct {
		path string
		want string
		ok   bool
	}{
		{"titanic/train.csv", "titanic/train.csv", true},
		{"train.csv", "titanic/train.csv", true},
		{"../input/titanic/train.csv", "titanic/train.csv", true},
		{"data/deep/train.csv", "titanic/train.csv", true}, // filename fallback
		{"unknown.csv", "", false},
	}
	for _, c := range cases {
		got, ok := l.VerifyTable(c.path)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("VerifyTable(%q) = %q, %v; want %q, %v", c.path, got, ok, c.want, c.ok)
		}
	}
	if !l.VerifyColumn("titanic/train.csv", "Age") {
		t.Error("existing column not verified")
	}
	if l.VerifyColumn("titanic/train.csv", "NormalizedAge") {
		t.Error("user-defined column should fail verification")
	}
	if l.VerifyColumn("nope/t.csv", "Age") {
		t.Error("unknown table should fail")
	}
}

func TestSimilarityEdgesDeterministic(t *testing.T) {
	profiles := fixtureProfiles(t)
	b := NewBuilder()
	a := b.SimilarityEdges(profiles)
	c := b.SimilarityEdges(profiles)
	if len(a) != len(c) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(c))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestSimilarityEdgesScaling(t *testing.T) {
	// Many single-column tables of the same type: pairwise comparison must
	// stay within same-type groups and not blow up.
	p := profiler.New()
	var profiles []*profiler.ColumnProfile
	for i := 0; i < 30; i++ {
		s := &dataframe.Series{Name: fmt.Sprintf("c%d", i)}
		for v := 0; v < 20; v++ {
			s.Cells = append(s.Cells, dataframe.NumberCell(float64(v*i)))
		}
		profiles = append(profiles, p.ProfileColumn("d", fmt.Sprintf("t%d.csv", i), s))
	}
	b := NewBuilder()
	edges := b.SimilarityEdges(profiles)
	for _, e := range edges {
		if e.Score < b.Thresholds.Theta && e.Kind == "ContentSimilarity" {
			t.Errorf("edge below threshold: %+v", e)
		}
	}
}
