package schema

import (
	"fmt"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/profiler"
)

// batchProfiles builds one table of numeric columns using labels drawn
// round-robin from the pool.
func batchProfiles(t *testing.T, p *profiler.Profiler, table string, labels []string) []*profiler.ColumnProfile {
	t.Helper()
	df := dataframe.New(table)
	for i, label := range labels {
		s := &dataframe.Series{Name: label}
		for r := 0; r < 8; r++ {
			s.Cells = append(s.Cells, dataframe.ParseCell(fmt.Sprintf("%d", r*(i+1))))
		}
		df.AddColumn(s)
	}
	return p.ProfileTable("d", df)
}

// TestDeltaEmbedCallsLinear is the regression test for the quadratic
// re-embedding bug: SimilarityEdgesDelta used to rebuild the label cache
// over existing+added on every batch, embedding every label N times over N
// ingests. With the persistent cache, total embed calls equal the number
// of distinct normalized labels ever seen, independent of batch count.
func TestDeltaEmbedCallsLinear(t *testing.T) {
	labels := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	p := profiler.New()
	b := NewBuilder()

	var existing []*profiler.ColumnProfile
	var callsAfterFirst int64
	const batches = 12
	for i := 0; i < batches; i++ {
		added := batchProfiles(t, p, fmt.Sprintf("t%02d.csv", i), labels)
		b.SimilarityEdgesDelta(existing, added)
		existing = append(existing, added...)
		if i == 0 {
			callsAfterFirst = b.Labels.EmbedCalls()
			if callsAfterFirst != int64(len(labels)) {
				t.Fatalf("first batch embedded %d labels, want %d", callsAfterFirst, len(labels))
			}
		}
	}
	if got := b.Labels.EmbedCalls(); got != callsAfterFirst {
		t.Fatalf("embed calls grew from %d to %d over %d same-label batches (quadratic re-embedding)",
			callsAfterFirst, got, batches)
	}

	// A batch with genuinely new labels costs exactly those labels.
	added := batchProfiles(t, p, "fresh.csv", []string{"foxtrot", "golf"})
	b.SimilarityEdgesDelta(existing, added)
	if got := b.Labels.EmbedCalls(); got != callsAfterFirst+2 {
		t.Fatalf("new-label batch: embed calls = %d, want %d", got, callsAfterFirst+2)
	}
}

// TestLabelCacheKeyedByNorm pins that labels normalizing identically share
// one embedding ("userName" and "user_name" both normalize to
// "user name").
func TestLabelCacheKeyedByNorm(t *testing.T) {
	p := profiler.New()
	b := NewBuilder()
	profiles := batchProfiles(t, p, "t.csv", []string{"userName", "user_name", "UserName2"})
	b.SimilarityEdges(profiles)
	if got := b.Labels.EmbedCalls(); got != 1 {
		t.Fatalf("embed calls = %d, want 1 (all three labels share the norm %q)",
			got, normalizeLabel("userName"))
	}
}
