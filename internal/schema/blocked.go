package schema

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kglids/internal/embed"
	"kglids/internal/profiler"
	"kglids/internal/vectorindex"
)

// This file is the blocked, streaming, candidate-pruned implementation of
// Algorithm 3's pairwise phase. The exhaustive implementation (builder.go)
// materializes every same-type cross-table pair before any worker runs —
// O(n²) memory — and compares them all — O(n²) cosine work. Here instead:
//
//   - Pairs are generated per fine-grained-type block and streamed to the
//     worker pool through a bounded channel in fixed-size batches, so the
//     peak number of buffered pairs is O(workers × batch), independent of
//     the lake's width.
//
//   - Within blocks larger than Builder.BlockSize, candidate pairs come
//     from exact pre-filters instead of the full cross product. A pair can
//     only produce an edge by passing one of Algorithm 3's thresholds, and
//     each threshold has a channel that provably covers it:
//
//     label (α):   label similarity is a function of the two normalized
//     labels alone — 1.0 for equal norms, else the cosine of
//     their word embeddings. Equal-norm groups are enumerated
//     directly, and distinct norm pairs are pre-filtered in
//     word-embedding space with radius acos(α) (a LeaderIndex
//     over one vector per distinct norm), then kept only when
//     their exact cosine passes α — the same floats the final
//     comparison computes.
//
//     content (θ): for non-boolean types, content similarity is the cosine
//     of the column embeddings. A LeaderIndex over the block's
//     embeddings answers radius-acos(θ) candidate queries with
//     an exact superset guarantee (angular triangle inequality
//     — see vectorindex/leader.go), so every pair with cosine
//     ≥ θ is generated.
//
//     content (β): boolean columns compare true ratios: 1-|Δ| ≥ β is a 1-D
//     interval join, answered exactly by a sorted sliding
//     window of width 1-β.
//
//     The union of the channels is a superset of every pair that could
//     pass any threshold; each candidate then goes through the same
//     comparePair as the exhaustive path, so the edge set is identical —
//     the randomized harness in equivalence_test.go checks this
//     edge-for-edge against the oracle.
//
//   - The delta path (minNew > 0) skips blocks with no added columns;
//     batches small relative to the Candidates target stream added×block
//     pairs directly (building a pre-filter would cost more than it
//     saves), and larger batches let only the added columns query the
//     pre-filters.
const (
	// DefaultEdgeBlockSize is the largest same-type block still compared
	// exhaustively when Builder.BlockSize is unset.
	DefaultEdgeBlockSize = 256
	// DefaultEdgeCandidates is the default target candidates per column
	// (average pre-filter cluster size) when Builder.Candidates is unset.
	DefaultEdgeCandidates = 64
	// pairBatchSize is the unit of work streamed to edge workers.
	pairBatchSize = 1024
	// ratioEps pads the boolean true-ratio window against floating-point
	// disagreement between |Δ| ≤ 1-β and 1-|Δ| ≥ β at the boundary; false
	// positives are re-checked exactly by comparePair.
	ratioEps = 1e-12
)

// EdgeBuildStats instruments one similarity build.
type EdgeBuildStats struct {
	// Columns is the number of profiles seen (existing + added for deltas).
	Columns int
	// Blocks is the number of same-type blocks processed.
	Blocks int
	// PrunedBlocks is how many blocks went through the candidate
	// pre-filter rather than the exhaustive fallback.
	PrunedBlocks int
	// PairsCompared counts pairs that reached the exact comparison.
	PairsCompared int64
	// PairsExhaustive counts the pairs the O(n²) generator would have
	// compared for the same input.
	PairsExhaustive int64
	// PeakPairBuffer is the maximum number of pairs resident in pipeline
	// buffers (bounded channel plus batches under construction) at any
	// instant. The exhaustive path reports its materialized pair slice.
	PeakPairBuffer int64
}

func (b *Builder) blockSize() int {
	if b.BlockSize > 0 {
		return b.BlockSize
	}
	return DefaultEdgeBlockSize
}

func (b *Builder) candidateTarget() int {
	if b.Candidates > 0 {
		return b.Candidates
	}
	return DefaultEdgeCandidates
}

// pairRef is one candidate pair, by profile index, with i < j.
type pairRef struct{ i, j int32 }

// pairStream feeds candidate pairs to the worker pool through a bounded
// channel and tracks the peak number of pairs buffered anywhere in the
// pipeline. Batches are produced by one goroutine.
type pairStream struct {
	ch       chan []pairRef
	batch    []pairRef
	inFlight atomic.Int64
	peak     atomic.Int64
}

func newPairStream(workers int) *pairStream {
	return &pairStream{
		ch:    make(chan []pairRef, workers),
		batch: make([]pairRef, 0, pairBatchSize),
	}
}

func (s *pairStream) emit(i, j int32) {
	s.batch = append(s.batch, pairRef{i: i, j: j})
	if len(s.batch) >= pairBatchSize {
		s.flush()
	}
}

func (s *pairStream) flush() {
	if len(s.batch) == 0 {
		return
	}
	s.notePeak(s.inFlight.Add(int64(len(s.batch))))
	s.ch <- s.batch
	s.batch = make([]pairRef, 0, pairBatchSize)
}

// noteBuffered records extra pairs buffered outside the channel (a
// query's candidate set) into the peak measurement.
func (s *pairStream) noteBuffered(extra int) {
	s.notePeak(s.inFlight.Load() + int64(len(s.batch)) + int64(extra))
}

func (s *pairStream) notePeak(n int64) {
	for {
		cur := s.peak.Load()
		if n <= cur || s.peak.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (s *pairStream) consumed(batch []pairRef) { s.inFlight.Add(-int64(len(batch))) }

func (s *pairStream) close() {
	s.flush()
	close(s.ch)
}

// similarityEdgesBlocked is the streaming entry point shared by
// SimilarityEdges (minNew 0) and SimilarityEdgesDelta.
func (b *Builder) similarityEdgesBlocked(profiles []*profiler.ColumnProfile, minNew int) []Edge {
	buildStart := time.Now()
	stats := EdgeBuildStats{Columns: len(profiles)}
	labels := b.labelViewOf(profiles)

	byType := map[embed.Type][]int32{}
	for i, cp := range profiles {
		byType[cp.Type] = append(byType[cp.Type], int32(i))
	}
	typeKeys := make([]string, 0, len(byType))
	for t := range byType {
		typeKeys = append(typeKeys, string(t))
	}
	sort.Strings(typeKeys)

	workers := b.Workers
	if workers < 1 {
		workers = 1
	}
	stream := newPairStream(workers)
	results := make([][]Edge, workers)
	counts := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []Edge
			var n int64
			for batch := range stream.ch {
				for _, pr := range batch {
					out = append(out, b.comparePair(profiles[pr.i], profiles[pr.j], labels.similarity(int(pr.i), int(pr.j)))...)
				}
				n += int64(len(batch))
				stream.consumed(batch)
			}
			results[w] = out
			counts[w] = n
		}(w)
	}

	for _, tk := range typeKeys {
		idxs := byType[embed.Type(tk)]
		if minNew > 0 && int(idxs[len(idxs)-1]) < minNew {
			continue // delta: no added column in this block
		}
		stats.Blocks++
		stats.PairsExhaustive += exhaustivePairCount(profiles, idxs, minNew)
		// A small delta into a big block streams added×all directly: the
		// pre-filter would cost a full index build over the block to save
		// fewer comparisons than the build performs, so per-ingest cost
		// stays added×block, not block×leaders.
		newInBlock := len(idxs) - sort.Search(len(idxs), func(i int) bool { return int(idxs[i]) >= minNew })
		if len(idxs) <= b.blockSize() || (minNew > 0 && newInBlock <= b.candidateTarget()) {
			b.streamBlockExhaustive(stream, profiles, idxs, minNew)
		} else {
			stats.PrunedBlocks++
			b.streamBlockPruned(stream, profiles, labels, idxs, minNew)
		}
	}
	stream.close()
	wg.Wait()

	var edges []Edge
	for _, r := range results {
		edges = append(edges, r...)
	}
	for _, c := range counts {
		stats.PairsCompared += c
	}
	stats.PeakPairBuffer = stream.peak.Load()
	b.lastStats = stats
	kind := "bootstrap"
	if minNew > 0 {
		kind = "delta"
	}
	mEdgeBuildSeconds.WithLabelValues(kind).Observe(time.Since(buildStart).Seconds())
	mEdgePairsCompared.Add(uint64(stats.PairsCompared))
	mEdgePairsExhaustive.Add(uint64(stats.PairsExhaustive))
	mEdgePrunedBlocks.Add(uint64(stats.PrunedBlocks))
	SortEdges(edges)
	return edges
}

// exhaustivePairCount computes, in O(block), how many pairs the O(n²)
// generator would compare for this block: cross-table same-type pairs with
// at least one side at or past minNew.
func exhaustivePairCount(profiles []*profiler.ColumnProfile, idxs []int32, minNew int) int64 {
	var m, mOld int64
	perTable := map[string][2]int64{} // tableID -> {total, old}
	for _, i := range idxs {
		m++
		old := int(i) < minNew
		if old {
			mOld++
		}
		t := profiles[i].TableID()
		c := perTable[t]
		c[0]++
		if old {
			c[1]++
		}
		perTable[t] = c
	}
	c2 := func(x int64) int64 { return x * (x - 1) / 2 }
	n := c2(m) - c2(mOld)
	for _, c := range perTable {
		n -= c2(c[0]) - c2(c[1])
	}
	return n
}

// streamBlockExhaustive streams every qualifying pair — the same pairs
// the oracle materializes, in batches instead of a slice. The outer loop
// runs over the columns at or past minNew only (idxs are ascending), so
// delta cost is added×block, not block².
func (b *Builder) streamBlockExhaustive(stream *pairStream, profiles []*profiler.ColumnProfile, idxs []int32, minNew int) {
	start := sort.Search(len(idxs), func(i int) bool { return int(idxs[i]) >= minNew })
	for c := start; c < len(idxs); c++ {
		for a := 0; a < c; a++ {
			if profiles[idxs[a]].TableID() == profiles[idxs[c]].TableID() {
				continue // only cross-table edges
			}
			stream.emit(idxs[a], idxs[c])
		}
	}
}

// ratioEntry is one boolean column in the sorted true-ratio window.
type ratioEntry struct {
	ratio float64
	idx   int32
}

// streamBlockPruned generates candidates for one large block through the
// per-threshold channels described at the top of the file, deduplicates
// them per query column, and streams them. Every pair that could pass a
// threshold is generated (exactness); pairs that cannot are mostly pruned
// (performance).
func (b *Builder) streamBlockPruned(stream *pairStream, profiles []*profiler.ColumnProfile, labels *labelView, idxs []int32, minNew int) {
	typ := profiles[idxs[0]].Type

	// Label channel: norm groups plus α-close distinct-norm adjacency.
	labelChannel := !b.SkipLabels && b.Thresholds.Alpha <= 1
	var groups map[string][]int32
	var normAdj map[string][]string
	if labelChannel {
		groups = map[string][]int32{}
		for _, gi := range idxs {
			n := labels.norms[gi]
			groups[n] = append(groups[n], gi)
		}
		normAdj = b.alphaCloseNorms(groups, labels, minNew)
	}

	// Content channel: leader pre-filter for embedded types, sorted
	// true-ratio window for booleans.
	var li *vectorindex.LeaderIndex
	var thetaAngle float64
	var ratios []ratioEntry
	var ratioWindow float64
	if typ == embed.TypeBoolean {
		if b.Thresholds.Beta <= 1 {
			ratios = make([]ratioEntry, len(idxs))
			for k, gi := range idxs {
				ratios[k] = ratioEntry{ratio: profiles[gi].Stats.TrueRatio, idx: gi}
			}
			sort.Slice(ratios, func(i, j int) bool { return ratios[i].ratio < ratios[j].ratio })
			ratioWindow = 1 - b.Thresholds.Beta + ratioEps
		}
	} else if b.Thresholds.Theta <= 1 {
		blockVecs := make([]embed.Vector, len(idxs))
		for k, gi := range idxs {
			blockVecs[k] = profiles[gi].Embed
		}
		thetaAngle = vectorindex.PruneAngle(b.Thresholds.Theta)
		li = vectorindex.NewLeaderIndex(blockVecs, b.candidateTarget(), thetaAngle/2)
	}

	var cand []int32 // scratch, reused across queries
	for _, gi := range idxs {
		if int(gi) < minNew {
			continue // only added columns query in the delta path
		}
		cand = cand[:0]
		if labelChannel {
			norm := labels.norms[gi]
			cand = append(cand, groups[norm]...)
			for _, nb := range normAdj[norm] {
				cand = append(cand, groups[nb]...)
			}
		}
		if ratios != nil {
			cand = appendRatioWindow(cand, ratios, profiles[gi].Stats.TrueRatio, ratioWindow)
		} else if li != nil {
			li.Candidates(profiles[gi].Embed, thetaAngle, func(pos int32) {
				cand = append(cand, idxs[pos])
			})
		}
		stream.noteBuffered(len(cand))

		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
		prev := int32(-1)
		qt := profiles[gi].TableID()
		for _, o := range cand {
			if o == prev {
				continue // cross-channel duplicate
			}
			prev = o
			// Emit each unordered pair exactly once: under the query of
			// its max index when both sides can query, else under the
			// added side.
			if o == gi || (int(o) >= minNew && o > gi) {
				continue
			}
			if profiles[o].TableID() == qt {
				continue
			}
			lo, hi := o, gi
			if lo > hi {
				lo, hi = hi, lo
			}
			stream.emit(lo, hi)
		}
	}
}

// alphaCloseNorms returns, for each normalized label that has a querying
// column, the other distinct norms whose word-embedding cosine passes α —
// the exact same comparison the final labelSim check performs, pre-filtered
// by a LeaderIndex in word space.
func (b *Builder) alphaCloseNorms(groups map[string][]int32, labels *labelView, minNew int) map[string][]string {
	normList := make([]string, 0, len(groups))
	for n := range groups {
		normList = append(normList, n)
	}
	sort.Strings(normList)
	vecOf := func(n string) embed.Vector { return labels.vecs[groups[n][0]] }

	normVecs := make([]embed.Vector, len(normList))
	for i, n := range normList {
		normVecs[i] = vecOf(n)
	}
	alphaAngle := vectorindex.PruneAngle(b.Thresholds.Alpha)
	li := vectorindex.NewLeaderIndex(normVecs, b.candidateTarget(), alphaAngle/2)

	adj := map[string][]string{}
	for i, n := range normList {
		if minNew > 0 && !hasNewMember(groups[n], minNew) {
			continue // no column of this norm will query
		}
		var close []string
		li.Candidates(normVecs[i], alphaAngle, func(pos int32) {
			other := normList[pos]
			if other == n {
				return
			}
			if embed.Cosine(normVecs[i], normVecs[pos]) >= b.Thresholds.Alpha {
				close = append(close, other)
			}
		})
		if close != nil {
			adj[n] = close
		}
	}
	return adj
}

// hasNewMember reports whether any member index is at or past minNew
// (members are ascending).
func hasNewMember(members []int32, minNew int) bool {
	return len(members) > 0 && int(members[len(members)-1]) >= minNew
}

// appendRatioWindow appends every boolean column whose true ratio lies
// within window of r — a superset of the pairs passing β, found by binary
// search over the sorted ratios.
func appendRatioWindow(cand []int32, ratios []ratioEntry, r, window float64) []int32 {
	lo := sort.Search(len(ratios), func(i int) bool { return ratios[i].ratio >= r-window })
	for i := lo; i < len(ratios) && ratios[i].ratio <= r+window; i++ {
		cand = append(cand, ratios[i].idx)
	}
	return cand
}
