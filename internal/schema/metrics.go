package schema

import "kglids/internal/obs"

// Similarity-edge construction metrics. kind distinguishes a full
// bootstrap build from an ingest delta; the pair counters expose the
// candidate-pruning ratio (pairs_compared / pairs_exhaustive) that
// docs/BENCHMARKS.md charts.
var (
	mEdgeBuildSeconds = obs.Default.NewHistogramVec("kglids_edges_build_seconds",
		"Similarity-edge build duration by kind (bootstrap, delta).",
		obs.DefaultLatencyBuckets, "kind")
	mEdgePairsCompared = obs.Default.NewCounter("kglids_edges_pairs_compared_total",
		"Column pairs actually compared by the blocked pipeline.")
	mEdgePairsExhaustive = obs.Default.NewCounter("kglids_edges_pairs_exhaustive_total",
		"Column pairs the exhaustive O(n^2) generator would have compared.")
	mEdgePrunedBlocks = obs.Default.NewCounter("kglids_edges_pruned_blocks_total",
		"Same-type blocks routed through the candidate pre-filter.")
)
