package schema

import (
	"fmt"
	"math/rand"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/lakegen"
	"kglids/internal/profiler"
)

// This file is the randomized equivalence harness of the blocked,
// candidate-pruned similarity pipeline: for generated lakes with mixed
// fine-grained types, duplicate labels, synonymous labels, and shared
// value domains, the blocked SimilarityEdges (forced down the pruned path
// with tiny block sizes) must be edge-for-edge identical to the
// exhaustive oracle, and a sequence of SimilarityEdgesDelta calls must
// accumulate to the same edge set as one full build.

// genLake generates a random lake as profiled columns, grouped by table.
// Labels repeat across tables (and sometimes collide after normalization,
// e.g. digit-only names), values draw from shared pools so content
// similarity fires across tables.
func genLake(rng *rand.Rand, nTables int) [][]*profiler.ColumnProfile {
	labelPool := []string{
		"age", "years", "Age", "city", "town", "location", "price", "cost",
		"score", "active", "flag", "status", "x1", "123", "?", "idx",
		"user_name", "userName", "comment",
	}
	stringPools := [][]string{
		{"Montreal", "Toronto", "Vancouver", "Ottawa", "Calgary", "Boston"},
		{"red", "green", "blue", "yellow", "black"},
		{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"},
	}
	p := profiler.New()
	var lake [][]*profiler.ColumnProfile
	for t := 0; t < nTables; t++ {
		df := dataframe.New(fmt.Sprintf("t%02d.csv", t))
		nCols := 1 + rng.Intn(6)
		rows := 6 + rng.Intn(14)
		used := map[string]bool{}
		for c := 0; c < nCols; c++ {
			label := labelPool[rng.Intn(len(labelPool))]
			for used[label] {
				label = fmt.Sprintf("%s_%d", label, rng.Intn(50))
			}
			used[label] = true
			s := &dataframe.Series{Name: label}
			switch rng.Intn(5) {
			case 0: // shared string domain
				pool := stringPools[rng.Intn(len(stringPools))]
				for r := 0; r < rows; r++ {
					s.Cells = append(s.Cells, dataframe.ParseCell(pool[rng.Intn(len(pool))]))
				}
			case 1: // overlapping int ranges
				base := rng.Intn(3) * 40
				for r := 0; r < rows; r++ {
					s.Cells = append(s.Cells, dataframe.ParseCell(fmt.Sprintf("%d", base+rng.Intn(60))))
				}
			case 2: // floats
				for r := 0; r < rows; r++ {
					s.Cells = append(s.Cells, dataframe.ParseCell(fmt.Sprintf("%.2f", rng.NormFloat64()*10+50)))
				}
			case 3: // booleans with clustered true ratios
				ratio := []float64{0.1, 0.5, 0.55, 0.9}[rng.Intn(4)]
				for r := 0; r < rows; r++ {
					v := "0"
					if rng.Float64() < ratio {
						v = "1"
					}
					s.Cells = append(s.Cells, dataframe.ParseCell(v))
				}
			default: // dates
				for r := 0; r < rows; r++ {
					s.Cells = append(s.Cells, dataframe.ParseCell(fmt.Sprintf("20%02d-%02d-%02d", 10+rng.Intn(4), 1+rng.Intn(12), 1+rng.Intn(28))))
				}
			}
			df.AddColumn(s)
		}
		lake = append(lake, p.ProfileTable(fmt.Sprintf("d%d", t%4), df))
	}
	return lake
}

func flatten(lake [][]*profiler.ColumnProfile) []*profiler.ColumnProfile {
	var out []*profiler.ColumnProfile
	for _, t := range lake {
		out = append(out, t...)
	}
	return out
}

// largestBlock returns the size of the biggest same-fine-grained-type
// column group — what decides whether the pruned path runs.
func largestBlock(profiles []*profiler.ColumnProfile) int {
	counts := map[string]int{}
	best := 0
	for _, cp := range profiles {
		counts[string(cp.Type)]++
		if counts[string(cp.Type)] > best {
			best = counts[string(cp.Type)]
		}
	}
	return best
}

// assertSameEdges fails unless the two edge lists are identical element
// for element (both are SortEdges-ordered).
func assertSameEdges(t *testing.T, label string, got, want []Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, oracle has %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d = %+v, oracle %+v", label, i, got[i], want[i])
		}
	}
}

// harnessBuilders returns builder configurations that force the pruned
// path (tiny blocks, tiny candidate targets) under varied thresholds.
func harnessBuilders(rng *rand.Rand) []*Builder {
	thresholds := []Thresholds{
		DefaultThresholds(),
		{Alpha: 0.3, Beta: 0.6, Theta: 0.3},
		{Alpha: 0.98, Beta: 0.99, Theta: 0.98},
		{Alpha: 1.0, Beta: 0.9, Theta: 1.0},
	}
	var out []*Builder
	for _, th := range thresholds {
		b := NewBuilder()
		b.Thresholds = th
		b.BlockSize = 1 + rng.Intn(8)
		b.Candidates = 1 + rng.Intn(6)
		b.SkipLabels = rng.Intn(4) == 0
		out = append(out, b)
	}
	return out
}

func TestBlockedEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			lake := genLake(rng, 4+rng.Intn(14))
			profiles := flatten(lake)
			for bi, b := range harnessBuilders(rng) {
				want := b.SimilarityEdgesExhaustive(profiles)
				got := b.SimilarityEdges(profiles)
				if b.LastStats().PrunedBlocks == 0 && largestBlock(profiles) > b.BlockSize {
					t.Fatalf("builder %d: pruned path never exercised (largest block %d, block size %d)",
						bi, largestBlock(profiles), b.BlockSize)
				}
				assertSameEdges(t, fmt.Sprintf("builder %d full", bi), got, want)
			}
		})
	}
}

// TestBlockedDeltaEquivalenceRandomized splits each generated lake into
// random table batches and checks that accumulating SimilarityEdgesDelta
// over the sequence reproduces both the blocked and the exhaustive full
// builds — the property core.Platform.AddTables == fresh Bootstrap rests
// on.
func TestBlockedDeltaEquivalenceRandomized(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			lake := genLake(rng, 5+rng.Intn(10))
			profiles := flatten(lake)
			for bi, b := range harnessBuilders(rng) {
				want := b.SimilarityEdgesExhaustive(profiles)

				var existing []*profiler.ColumnProfile
				var accumulated []Edge
				for ti := 0; ti < len(lake); {
					batchTables := 1 + rng.Intn(3)
					var added []*profiler.ColumnProfile
					for k := 0; k < batchTables && ti < len(lake); k++ {
						added = append(added, lake[ti]...)
						ti++
					}
					delta := b.SimilarityEdgesDelta(existing, added)
					wantDelta := b.SimilarityEdgesDeltaExhaustive(existing, added)
					assertSameEdges(t, fmt.Sprintf("builder %d delta at table %d", bi, ti), delta, wantDelta)
					accumulated = append(accumulated, delta...)
					existing = append(existing, added...)
				}
				SortEdges(accumulated)
				assertSameEdges(t, fmt.Sprintf("builder %d accumulated", bi), accumulated, want)
			}
		})
	}
}

// TestBlockedEquivalenceWideLake runs the harness over the concept-pool
// wide lake (the benchmark's shape: heavy label duplication, shared
// domains) at production-ish knobs, and checks the pre-filter actually
// prunes there.
func TestBlockedEquivalenceWideLake(t *testing.T) {
	lake := lakegen.WideLake(60, 8, 25, 7)
	p := profiler.New()
	var tables []profiler.Table
	for _, df := range lake.Tables {
		tables = append(tables, profiler.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	profiles := p.ProfileAll(tables)

	b := NewBuilder()
	b.BlockSize = 32
	b.Candidates = 16
	want := b.SimilarityEdgesExhaustive(profiles)
	exhaustStats := b.LastStats()
	got := b.SimilarityEdges(profiles)
	stats := b.LastStats()
	assertSameEdges(t, "wide lake", got, want)
	if stats.PrunedBlocks == 0 {
		t.Fatal("wide lake never hit the pruned path")
	}
	if stats.PairsCompared >= stats.PairsExhaustive {
		t.Errorf("pruning ineffective: compared %d of %d exhaustive pairs",
			stats.PairsCompared, stats.PairsExhaustive)
	}
	if stats.PeakPairBuffer >= exhaustStats.PeakPairBuffer {
		t.Errorf("peak pair buffer %d not below exhaustive %d",
			stats.PeakPairBuffer, exhaustStats.PeakPairBuffer)
	}
}
