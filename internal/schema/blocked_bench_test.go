package schema

import (
	"sync"
	"testing"

	"kglids/internal/lakegen"
	"kglids/internal/profiler"
)

// wideProfiles memoizes the 5k-column benchmark lake: ~280 tables of 18
// columns drawn from shared concept pools (duplicate + synonymous labels,
// shared value domains) — the wide-lake regime where the exhaustive
// generator's O(n²) pair slice is the memory cliff.
var wideProfiles struct {
	once     sync.Once
	profiles []*profiler.ColumnProfile
}

func benchProfiles(tb testing.TB) []*profiler.ColumnProfile {
	wideProfiles.once.Do(func() {
		lake := lakegen.WideLake(280, 18, 30, 41)
		p := profiler.New()
		var tables []profiler.Table
		for _, df := range lake.Tables {
			tables = append(tables, profiler.Table{Dataset: lake.Dataset[df.Name], Frame: df})
		}
		wideProfiles.profiles = p.ProfileAll(tables)
	})
	if len(wideProfiles.profiles) < 5000 {
		tb.Fatalf("benchmark lake has %d columns, want >= 5000", len(wideProfiles.profiles))
	}
	return wideProfiles.profiles
}

// BenchmarkSimilarityEdges_BlockedVsExhaustive compares the blocked,
// candidate-pruned pipeline against the O(n²) oracle on a 5k-column lake.
// The paired metrics to read: ns/op (the blocked path's speedup) and
// peak-pairs (the exhaustive path buffers the full O(n²) pair slice, the
// blocked path a bounded channel's worth — O(workers × batch) in flight
// plus O(C) candidates per active column).
func BenchmarkSimilarityEdges_BlockedVsExhaustive(b *testing.B) {
	profiles := benchProfiles(b)
	b.Run("exhaustive", func(b *testing.B) {
		bd := NewBuilder()
		var edges []Edge
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			edges = bd.SimilarityEdgesExhaustive(profiles)
		}
		b.StopTimer()
		b.ReportMetric(float64(bd.LastStats().PeakPairBuffer), "peak-pairs")
		b.ReportMetric(float64(len(edges)), "edges")
	})
	b.Run("blocked", func(b *testing.B) {
		bd := NewBuilder()
		var edges []Edge
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			edges = bd.SimilarityEdges(profiles)
		}
		b.StopTimer()
		b.ReportMetric(float64(bd.LastStats().PeakPairBuffer), "peak-pairs")
		b.ReportMetric(float64(bd.LastStats().PairsCompared), "pairs-compared")
		b.ReportMetric(float64(len(edges)), "edges")
	})
}

// TestBlockedWideLakeBounds pins the scaling claims on the benchmark lake:
// identical edges to the oracle, a peak pair buffer that is bounded by the
// pipeline (workers × batches + per-column candidates), far below the
// exhaustive pair count, and a pruned comparison count well under O(n²).
func TestBlockedWideLakeBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("5k-column lake in -short mode")
	}
	profiles := benchProfiles(t)

	bd := NewBuilder()
	want := bd.SimilarityEdgesExhaustive(profiles)
	exhaustive := bd.LastStats()
	got := bd.SimilarityEdges(profiles)
	blocked := bd.LastStats()
	assertSameEdges(t, "5k lake", got, want)

	if blocked.PrunedBlocks == 0 {
		t.Fatal("no block hit the pruned path")
	}
	// Peak buffer: the exhaustive path materializes every pair; the
	// blocked pipeline must stay orders of magnitude below that.
	if blocked.PeakPairBuffer*10 > exhaustive.PeakPairBuffer {
		t.Errorf("peak pair buffer %d not an order below exhaustive %d",
			blocked.PeakPairBuffer, exhaustive.PeakPairBuffer)
	}
	// Comparisons: pruning must cut the pairwise work, not just defer it.
	if blocked.PairsCompared*2 > blocked.PairsExhaustive {
		t.Errorf("pruning weak: %d of %d exhaustive pairs compared",
			blocked.PairsCompared, blocked.PairsExhaustive)
	}
	t.Logf("5k lake: %d cols, %d edges; exhaustive pairs %d (peak buffer %d) vs blocked compared %d (peak buffer %d)",
		blocked.Columns, len(got), exhaustive.PairsExhaustive, exhaustive.PeakPairBuffer,
		blocked.PairsCompared, blocked.PeakPairBuffer)
}
