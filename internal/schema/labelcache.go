package schema

import (
	"sync"

	"kglids/internal/embed"
)

// LabelCache memoizes label embeddings across similarity builds. The label
// embedding of a column depends only on its normalized label (EmbedLabel
// tokenizes, and tokenizing a normalized label yields the same tokens), so
// the cache is keyed by normalized form and each distinct label costs one
// embedding for the lifetime of the cache — core.Platform holds one and
// threads it through every bootstrap and ingest delta, which is what keeps
// a sequence of N small ingests linear in embedding work instead of
// re-embedding the whole label population per batch.
//
// Safe for concurrent use.
type LabelCache struct {
	mu   sync.Mutex
	vecs map[string]embed.Vector
	// calls counts underlying EmbedLabel invocations (cache misses); the
	// ingest-linearity regression test asserts it grows with distinct
	// labels, not with total profiles processed.
	calls int64
}

// NewLabelCache returns an empty cache.
func NewLabelCache() *LabelCache {
	return &LabelCache{vecs: map[string]embed.Vector{}}
}

// VecForNorm returns the embedding of a normalized label, computing and
// memoizing it on first sight. The returned vector is shared and must be
// treated as read-only.
func (lc *LabelCache) VecForNorm(words *embed.WordModel, norm string) embed.Vector {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if v, ok := lc.vecs[norm]; ok {
		return v
	}
	v := words.EmbedLabel(norm)
	lc.vecs[norm] = v
	lc.calls++
	return v
}

// EmbedCalls returns how many labels have actually been embedded (cache
// misses) since the cache was created.
func (lc *LabelCache) EmbedCalls() int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.calls
}

// Len returns the number of distinct normalized labels cached.
func (lc *LabelCache) Len() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.vecs)
}
