package profiler

import (
	"container/heap"
	"context"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"

	"kglids/internal/connector"
	"kglids/internal/dataframe"
	"kglids/internal/embed"
)

// The streaming half of Algorithm 2: instead of materializing a table
// and handing whole columns to ProfileColumn, a ColumnAccumulator folds
// connector chunks into bounded state — counters, a Welford pair, a
// type-inference prefix, a hash-ranked value reservoir, and an
// exact-until-threshold distinct tracker — and emits the ColumnProfile
// at Finish. Peak memory per column is O(ReservoirSize + ExactDistinct)
// no matter how many rows stream through.
//
// Equivalence with the in-memory path is by construction, not accident:
//
//   - Total/Missing/Min/Max/TrueRatio are exact counters — always
//     byte-identical.
//   - Mean keeps the same running sum in the same row order the
//     in-memory Series.Mean computes — always byte-identical.
//   - Type inference examines the same first-InferSampleSize non-null
//     prefix Infer samples — always identical.
//   - The reservoir keeps the values with the smallest
//     embed.SampleHash — exactly the selection rule of CoLR's sampler —
//     so embeddings are byte-identical until a column's sample size
//     exceeds the reservoir (non-null count > ~10x ReservoirSize at the
//     default 10% fraction), after which the embedding is computed from
//     the hash-order prefix of the true sample.
//   - Std is recomputed two-pass from retained numeric values while
//     they fit the reservoir budget (byte-identical), falling back to
//     Welford's M2 beyond it (agrees to ~1e-9 relative).
//   - Distinct is an exact set until ExactDistinct values, then a
//     k-minimum-values estimate (k=1024, ~3% standard error).

const (
	// DefaultReservoirSize is the per-column bounded sample. At CoLR's
	// default 10% fraction this keeps embeddings byte-identical for
	// columns up to ~100k non-null values.
	DefaultReservoirSize = 10_000
	// DefaultExactDistinct is the per-column exact distinct-set bound.
	DefaultExactDistinct = 65_536
	// kmvK is the k of the KMV distinct estimator.
	kmvK = 1024
)

func (p *Profiler) reservoirSize() int {
	if p.ReservoirSize > 0 {
		return p.ReservoirSize
	}
	return DefaultReservoirSize
}

func (p *Profiler) exactDistinct() int {
	if p.ExactDistinct > 0 {
		return p.ExactDistinct
	}
	return DefaultExactDistinct
}

// ColumnAccumulator folds chunks of one column into bounded profiling
// state. Not safe for concurrent use; one goroutine owns one column.
type ColumnAccumulator struct {
	p                       *Profiler
	dataset, table, column  string
	total, missing, nonNull int
	prefix                  []dataframe.Cell // first InferSampleSize non-null cells
	numCount                int
	numSum, numMin, numMax  float64
	numBuf                  []float64 // exact-std buffer until reservoirSize
	numOverflow             bool
	welfordMean, welfordM2  float64
	trues                   int
	exact                   map[string]struct{} // exact distinct until exactDistinct
	distinctOverflow        bool
	kmv                     kmvSketch
	res                     sampleReservoir
}

// NewColumnAccumulator starts streaming one column.
func (p *Profiler) NewColumnAccumulator(dataset, table, column string) *ColumnAccumulator {
	return &ColumnAccumulator{
		p: p, dataset: dataset, table: table, column: column,
		exact: make(map[string]struct{}),
		kmv:   kmvSketch{k: kmvK, in: make(map[uint64]struct{}, kmvK)},
		res:   sampleReservoir{cap: p.reservoirSize()},
	}
}

// Add folds one chunk of cells, in row order.
func (a *ColumnAccumulator) Add(cells []dataframe.Cell) {
	for _, c := range cells {
		a.total++
		if c.IsNull() {
			a.missing++
			continue
		}
		i := a.nonNull
		a.nonNull++
		if len(a.prefix) < InferSampleSize {
			a.prefix = append(a.prefix, c)
		}
		if c.Kind == dataframe.Number || c.Kind == dataframe.Boolean {
			v := c.F
			if a.numCount == 0 {
				a.numMin, a.numMax = v, v
			} else {
				if v < a.numMin {
					a.numMin = v
				}
				if v > a.numMax {
					a.numMax = v
				}
			}
			a.numCount++
			a.numSum += v
			if v == 1 {
				a.trues++
			}
			d := v - a.welfordMean
			a.welfordMean += d / float64(a.numCount)
			a.welfordM2 += d * (v - a.welfordMean)
			if !a.numOverflow {
				if len(a.numBuf) < a.p.reservoirSize() {
					a.numBuf = append(a.numBuf, v)
				} else {
					a.numOverflow = true
					a.numBuf = nil
				}
			}
		}
		if !a.distinctOverflow {
			a.exact[c.S] = struct{}{}
			if len(a.exact) > a.p.exactDistinct() {
				a.distinctOverflow = true
				a.exact = nil
			}
		}
		a.kmv.add(c.S)
		a.res.add(c.S, i)
	}
}

// Finish infers the type and emits the profile. The accumulator must not
// be used afterwards.
func (a *ColumnAccumulator) Finish() *ColumnProfile {
	fgt := a.p.Types.InferCells(a.prefix)
	cp := &ColumnProfile{
		Dataset: a.dataset,
		Table:   a.table,
		Column:  a.column,
		Type:    fgt,
		Stats: ColumnStats{
			Total:    a.total,
			Missing:  a.missing,
			Distinct: a.distinct(),
		},
	}
	switch fgt {
	case embed.TypeInt, embed.TypeFloat:
		if a.numCount > 0 {
			cp.Stats.Min, cp.Stats.Max = a.numMin, a.numMax
			cp.Stats.Mean = a.numSum / float64(a.numCount)
			cp.Stats.Std = a.std()
		}
	case embed.TypeBoolean:
		if a.nonNull > 0 {
			cp.Stats.TrueRatio = float64(a.trues) / float64(a.nonNull)
		}
	}
	cp.Embed = a.embed(fgt)
	return cp
}

// std matches Series.Std bit-for-bit while the numeric values fit the
// buffer (same two-pass, same order); Welford beyond.
func (a *ColumnAccumulator) std() float64 {
	if !a.numOverflow {
		m := a.numSum / float64(a.numCount)
		var ss float64
		for _, v := range a.numBuf {
			d := v - m
			ss += d * d
		}
		return math.Sqrt(ss / float64(a.numCount))
	}
	return math.Sqrt(a.welfordM2 / float64(a.numCount))
}

func (a *ColumnAccumulator) distinct() int {
	if !a.distinctOverflow {
		return len(a.exact)
	}
	return a.kmv.estimate()
}

// embed encodes the reservoir. While the reservoir held every non-null
// value, the values are restored to row order and pushed through the
// normal EncodeColumn path — identical to the in-memory profile. On
// overflow the reservoir's hash-ordered contents are the leading portion
// of the exact sample; they are truncated to the true sample size (or
// the whole reservoir if smaller) and encoded pre-sampled.
func (a *ColumnAccumulator) embed(fgt embed.Type) embed.Vector {
	items := a.res.items
	if !a.res.overflow {
		sort.Slice(items, func(x, y int) bool { return items[x].idx < items[y].idx })
		vals := make([]string, len(items))
		for i, it := range items {
			vals[i] = it.val
		}
		return a.p.CoLR.EncodeColumn(vals, fgt)
	}
	sort.Slice(items, func(x, y int) bool { return items[x].hash < items[y].hash })
	n := a.p.CoLR.SampleSize(a.nonNull)
	if n > len(items) {
		n = len(items)
	}
	vals := make([]string, n)
	for i := 0; i < n; i++ {
		vals[i] = items[i].val
	}
	return a.p.CoLR.EncodeSampled(vals, fgt)
}

// --- bounded deterministic reservoir ---------------------------------------

type resItem struct {
	hash uint64
	idx  int
	val  string
}

// sampleReservoir keeps the cap values with the smallest
// embed.SampleHash, via a max-heap so the current worst is evictable in
// O(log cap).
type sampleReservoir struct {
	cap      int
	items    []resItem // max-heap by hash
	overflow bool
}

func (r *sampleReservoir) Len() int           { return len(r.items) }
func (r *sampleReservoir) Less(i, j int) bool { return r.items[i].hash > r.items[j].hash }
func (r *sampleReservoir) Swap(i, j int)      { r.items[i], r.items[j] = r.items[j], r.items[i] }
func (r *sampleReservoir) Push(x any)         { r.items = append(r.items, x.(resItem)) }
func (r *sampleReservoir) Pop() any {
	last := r.items[len(r.items)-1]
	r.items = r.items[:len(r.items)-1]
	return last
}

func (r *sampleReservoir) add(val string, idx int) {
	it := resItem{hash: embed.SampleHash(val, idx), idx: idx, val: val}
	if len(r.items) < r.cap {
		heap.Push(r, it)
		return
	}
	r.overflow = true
	if it.hash < r.items[0].hash {
		r.items[0] = it
		heap.Fix(r, 0)
	}
}

// --- KMV distinct estimator -------------------------------------------------

// kmvSketch estimates distinct counts from the k smallest distinct value
// hashes: if the k-th smallest of D uniform hashes sits at fraction f of
// the hash space, D ≈ (k-1)/f. Fed from the first value so the estimate
// is ready the moment the exact set overflows.
type kmvSketch struct {
	k     int
	heap_ []uint64            // max-heap of the k smallest hashes
	in    map[uint64]struct{} // members of heap_, for dedup
}

func (s *kmvSketch) add(v string) {
	h := fnv.New64a()
	h.Write([]byte(v))
	hv := h.Sum64()
	if _, dup := s.in[hv]; dup {
		return
	}
	if len(s.heap_) < s.k {
		s.in[hv] = struct{}{}
		s.heap_ = append(s.heap_, hv)
		s.up(len(s.heap_) - 1)
		return
	}
	if hv >= s.heap_[0] {
		return
	}
	delete(s.in, s.heap_[0])
	s.in[hv] = struct{}{}
	s.heap_[0] = hv
	s.down(0)
}

func (s *kmvSketch) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap_[parent] >= s.heap_[i] {
			return
		}
		s.heap_[parent], s.heap_[i] = s.heap_[i], s.heap_[parent]
		i = parent
	}
}

func (s *kmvSketch) down(i int) {
	n := len(s.heap_)
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < n && s.heap_[l] > s.heap_[big] {
			big = l
		}
		if r < n && s.heap_[r] > s.heap_[big] {
			big = r
		}
		if big == i {
			return
		}
		s.heap_[i], s.heap_[big] = s.heap_[big], s.heap_[i]
		i = big
	}
}

func (s *kmvSketch) estimate() int {
	if len(s.heap_) < s.k {
		return len(s.heap_)
	}
	frac := float64(s.heap_[0]) / math.Exp2(64)
	if frac <= 0 {
		return len(s.heap_)
	}
	return int(math.Round(float64(s.k-1) / frac))
}

// --- table- and source-level streaming --------------------------------------

// ProfileTableStream drains one connector table reader into per-column
// accumulators and returns the column profiles in column order. The
// reader is not closed; the caller owns it.
func (p *Profiler) ProfileTableStream(ctx context.Context, dataset, table string, r connector.TableReader) ([]*ColumnProfile, error) {
	cols := r.Columns()
	accs := make([]*ColumnAccumulator, len(cols))
	for i, name := range cols {
		accs[i] = p.NewColumnAccumulator(dataset, table, name)
	}
	for {
		chunk, err := r.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := range accs {
			if i < len(chunk.Cols) {
				accs[i].Add(chunk.Cols[i])
			}
		}
	}
	out := make([]*ColumnProfile, len(accs))
	for i, acc := range accs {
		out[i] = acc.Finish()
	}
	return out, nil
}

// ProfileSource enumerates src and streams every table through the
// worker pool — the streaming analogue of ProfileAll, with per-table
// instead of per-column parallelism (a table's chunks must be read
// sequentially). Profiles come back in deterministic (table, column)
// order. Tables that fail to open or stream are skipped and reported in
// the returned map by table ID — matching the lake walker's
// skip-unreadable-files behavior — while a failed enumeration or a
// canceled context fails the whole call.
func (p *Profiler) ProfileSource(ctx context.Context, src connector.Source) ([]*ColumnProfile, map[string]error, error) {
	refs, err := src.Tables(ctx)
	if err != nil {
		return nil, nil, err
	}
	results := make([][]*ColumnProfile, len(refs))
	tableErrs := map[string]error{}
	var errMu sync.Mutex
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				ref := refs[i]
				ps, err := p.profileRef(ctx, src, ref)
				if err != nil {
					errMu.Lock()
					tableErrs[ref.ID()] = err
					errMu.Unlock()
					continue
				}
				results[i] = ps
			}
		}()
	}
	for i := range refs {
		ch <- i
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var out []*ColumnProfile
	for _, ps := range results {
		out = append(out, ps...)
	}
	return out, tableErrs, nil
}

func (p *Profiler) profileRef(ctx context.Context, src connector.Source, ref connector.TableRef) ([]*ColumnProfile, error) {
	r, err := src.Open(ctx, ref)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return p.ProfileTableStream(ctx, ref.Dataset, ref.Table, r)
}

// MaterializeSource drains a source into in-memory tables — the
// pre-connector behavior, kept for the materialized bench baseline and
// the streaming-equivalence tests. Everything is held at once; only use
// it on lakes that fit in memory.
func MaterializeSource(ctx context.Context, src connector.Source) ([]Table, error) {
	refs, err := src.Tables(ctx)
	if err != nil {
		return nil, err
	}
	var out []Table
	for _, ref := range refs {
		r, err := src.Open(ctx, ref)
		if err != nil {
			return nil, err
		}
		cols := r.Columns()
		series := make([]*dataframe.Series, len(cols))
		for i, name := range cols {
			series[i] = &dataframe.Series{Name: name}
		}
		for {
			chunk, err := r.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return nil, err
			}
			for i := range series {
				if i < len(chunk.Cols) {
					series[i].Cells = append(series[i].Cells, chunk.Cols[i]...)
				}
			}
		}
		r.Close()
		df := dataframe.New(ref.Table)
		for _, s := range series {
			df.AddColumn(s)
		}
		out = append(out, Table{Dataset: ref.Dataset, Frame: df})
	}
	return out, nil
}
