package profiler

import (
	"strconv"
	"strings"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
)

// TypeInferencer classifies columns into the seven fine-grained types of
// paper Section 3.2: int, float, boolean, date, named_entity,
// natural_language, and string.
type TypeInferencer struct {
	ner   *NER
	words *embed.WordModel
	// threshold is the fraction of sampled values that must agree for a
	// specialized type to win.
	threshold float64
}

// NewTypeInferencer returns the default inferencer.
func NewTypeInferencer() *TypeInferencer {
	return &TypeInferencer{ner: NewNER(), words: embed.NewWordModel(), threshold: 0.8}
}

// stopwords used by the natural-language detector; their presence marks
// prose rather than codes or entities.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "and": true, "or": true, "of": true,
	"to": true, "in": true, "is": true, "was": true, "it": true, "this": true,
	"that": true, "for": true, "with": true, "on": true, "as": true,
	"are": true, "be": true, "at": true, "by": true, "not": true,
	"very": true, "good": true, "bad": true, "great": true, "i": true,
	"you": true, "we": true, "they": true, "but": true, "so": true,
	"my": true, "his": true, "her": true, "their": true, "our": true,
}

// InferSampleSize is the number of leading non-null cells type inference
// examines. The streaming profiler retains exactly this prefix, so
// streamed and in-memory columns always infer the same type.
const InferSampleSize = 500

// Infer classifies a column (Algorithm 2 line 6). At most InferSampleSize
// values are examined.
func (ti *TypeInferencer) Infer(s *dataframe.Series) embed.Type {
	return ti.InferCells(s.Cells)
}

// InferCells classifies a column given its cells (or, equivalently, any
// prefix containing the first InferSampleSize non-null cells).
func (ti *TypeInferencer) InferCells(cells []dataframe.Cell) embed.Type {
	const maxSample = InferSampleSize
	var vals []string
	var numericKind struct{ ints, floats, bools, total int }
	for _, c := range cells {
		if c.IsNull() {
			continue
		}
		if len(vals) >= maxSample {
			break
		}
		vals = append(vals, c.S)
		numericKind.total++
		switch c.Kind {
		case dataframe.Boolean:
			numericKind.bools++
		case dataframe.Number:
			if c.F == float64(int64(c.F)) && !strings.ContainsAny(c.S, ".eE") {
				numericKind.ints++
			} else {
				numericKind.floats++
			}
		}
	}
	if len(vals) == 0 {
		return embed.TypeString
	}
	total := float64(numericKind.total)
	if float64(numericKind.bools)/total >= ti.threshold {
		return embed.TypeBoolean
	}
	// Columns of 0/1 integers are booleans too.
	if float64(numericKind.ints+numericKind.bools)/total >= ti.threshold && isZeroOne(vals) {
		return embed.TypeBoolean
	}
	if float64(numericKind.ints)/total >= ti.threshold && numericKind.floats == 0 {
		return embed.TypeInt
	}
	if float64(numericKind.ints+numericKind.floats)/total >= ti.threshold {
		return embed.TypeFloat
	}
	dates, entities, natural := 0, 0, 0
	for _, v := range vals {
		if _, ok := embed.ParseDate(v); ok {
			dates++
			continue
		}
		if _, ok := ti.ner.Recognize(v); ok {
			entities++
			continue
		}
		if ti.isNaturalLanguage(v) {
			natural++
		}
	}
	n := float64(len(vals))
	switch {
	case float64(dates)/n >= ti.threshold:
		return embed.TypeDate
	case float64(entities)/n >= ti.threshold:
		return embed.TypeNamedEntity
	case float64(natural)/n >= 0.5:
		return embed.TypeNaturalLanguage
	default:
		return embed.TypeString
	}
}

// isNaturalLanguage approximates the paper's "corresponding word embeddings
// exist for the tokens" test: prose has several tokens, a stopword, and
// mostly alphabetic words.
func (ti *TypeInferencer) isNaturalLanguage(v string) bool {
	toks := strings.Fields(strings.ToLower(v))
	if len(toks) < 3 {
		return false
	}
	alpha, stops := 0, 0
	for _, t := range toks {
		t = strings.Trim(t, ".,!?;:'\"()")
		if t == "" {
			continue
		}
		if isAlphaWord(t) {
			alpha++
		}
		if stopwords[t] {
			stops++
		}
	}
	return stops >= 1 && float64(alpha) >= 0.7*float64(len(toks))
}

func isAlphaWord(s string) bool {
	for _, r := range s {
		if (r < 'a' || r > 'z') && r != '-' && r != '\'' {
			return false
		}
	}
	return len(s) > 0
}

func isZeroOne(vals []string) bool {
	for _, v := range vals {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			lv := strings.ToLower(strings.TrimSpace(v))
			if lv != "true" && lv != "false" && lv != "yes" && lv != "no" {
				return false
			}
			continue
		}
		if f != 0 && f != 1 {
			return false
		}
	}
	return true
}
