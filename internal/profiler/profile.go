package profiler

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
)

// ColumnProfile is the JSON document Algorithm 2 emits per column: table
// and dataset membership (M), fine-grained type (fgt), statistics (S), and
// the CoLR embedding (E).
type ColumnProfile struct {
	Dataset string       `json:"dataset"`
	Table   string       `json:"table"`
	Column  string       `json:"column"`
	Type    embed.Type   `json:"fine_grained_type"`
	Stats   ColumnStats  `json:"stats"`
	Embed   embed.Vector `json:"embedding"`
}

// ColumnStats holds the statistics collected per column (Algorithm 2
// line 7).
type ColumnStats struct {
	Total     int     `json:"total_values"`
	Missing   int     `json:"missing_values"`
	Distinct  int     `json:"distinct_values"`
	Min       float64 `json:"min,omitempty"`
	Max       float64 `json:"max,omitempty"`
	Mean      float64 `json:"mean,omitempty"`
	Std       float64 `json:"std,omitempty"`
	TrueRatio float64 `json:"true_ratio,omitempty"`
}

// ID returns a stable identifier "dataset/table/column".
func (cp *ColumnProfile) ID() string {
	return fmt.Sprintf("%s/%s/%s", cp.Dataset, cp.Table, cp.Column)
}

// TableID returns "dataset/table".
func (cp *ColumnProfile) TableID() string {
	return fmt.Sprintf("%s/%s", cp.Dataset, cp.Table)
}

// JSON serializes the profile (Algorithm 2 line 12).
func (cp *ColumnProfile) JSON() ([]byte, error) { return json.Marshal(cp) }

// Profiler runs Algorithm 2: it decomposes tables into columns and profiles
// each column independently in parallel (the Spark-map substitution).
type Profiler struct {
	CoLR    *embed.CoLR
	Types   *TypeInferencer
	Workers int

	// ReservoirSize bounds the per-column value sample the streaming path
	// retains for embeddings and exact std (see stream.go). 0 selects
	// DefaultReservoirSize. The in-memory path ignores it.
	ReservoirSize int
	// ExactDistinct bounds the exact distinct-value set per column on the
	// streaming path; beyond it a KMV sketch estimates. 0 selects
	// DefaultExactDistinct. The in-memory path ignores it.
	ExactDistinct int
}

// New returns a profiler with the default CoLR configuration and one worker
// per CPU.
func New() *Profiler {
	return &Profiler{CoLR: embed.NewCoLR(), Types: NewTypeInferencer(), Workers: runtime.NumCPU()}
}

// ProfileColumn profiles a single column (Algorithm 2, worker body).
func (p *Profiler) ProfileColumn(dataset, table string, s *dataframe.Series) *ColumnProfile {
	fgt := p.Types.Infer(s)
	cp := &ColumnProfile{
		Dataset: dataset,
		Table:   table,
		Column:  s.Name,
		Type:    fgt,
		Stats: ColumnStats{
			Total:    s.Len(),
			Missing:  s.NullCount(),
			Distinct: s.Distinct(),
		},
	}
	switch fgt {
	case embed.TypeInt, embed.TypeFloat:
		cp.Stats.Min, cp.Stats.Max = s.MinMax()
		cp.Stats.Mean = s.Mean()
		cp.Stats.Std = s.Std()
	case embed.TypeBoolean:
		cp.Stats.TrueRatio = booleanTrueRatio(s)
	}
	cp.Embed = p.CoLR.EncodeColumn(s.Strings(), fgt)
	return cp
}

// ProfileTable profiles all columns of one table.
func (p *Profiler) ProfileTable(dataset string, df *dataframe.DataFrame) []*ColumnProfile {
	out := make([]*ColumnProfile, df.NumCols())
	for i := 0; i < df.NumCols(); i++ {
		out[i] = p.ProfileColumn(dataset, df.Name, df.ColumnAt(i))
	}
	return out
}

// Table pairs a dataset name with one of its tables for profiling.
type Table struct {
	Dataset string
	Frame   *dataframe.DataFrame
}

// ProfileAll profiles every column of every table in parallel and returns
// profiles in deterministic (table, column) order.
func (p *Profiler) ProfileAll(tables []Table) []*ColumnProfile {
	type job struct {
		tableIdx, colIdx int
		dataset          string
		table            string
		series           *dataframe.Series
	}
	var jobs []job
	offsets := make([]int, len(tables)+1)
	for ti, t := range tables {
		offsets[ti+1] = offsets[ti] + t.Frame.NumCols()
		for ci := 0; ci < t.Frame.NumCols(); ci++ {
			jobs = append(jobs, job{tableIdx: ti, colIdx: ci, dataset: t.Dataset, table: t.Frame.Name, series: t.Frame.ColumnAt(ci)})
		}
	}
	out := make([]*ColumnProfile, len(jobs))
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range ch {
				j := jobs[ji]
				out[offsets[j.tableIdx]+j.colIdx] = p.ProfileColumn(j.dataset, j.table, j.series)
			}
		}()
	}
	for ji := range jobs {
		ch <- ji
	}
	close(ch)
	wg.Wait()
	return out
}

// booleanTrueRatio computes the fraction of non-null values that are true
// for a column inferred as boolean. Unlike Series.TrueRatio, it also counts
// 0/1 numeric encodings, which the type inferencer classifies as boolean.
func booleanTrueRatio(s *dataframe.Series) float64 {
	total, trues := 0, 0
	for _, c := range s.Cells {
		if c.IsNull() {
			continue
		}
		total++
		if (c.Kind == dataframe.Boolean || c.Kind == dataframe.Number) && c.F == 1 {
			trues++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(trues) / float64(total)
}

// TypeBreakdown counts profiles per fine-grained type, the statistic
// reported in Table 1.
func TypeBreakdown(profiles []*ColumnProfile) map[embed.Type]int {
	out := map[embed.Type]int{}
	for _, cp := range profiles {
		out[cp.Type]++
	}
	return out
}
