package profiler

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"kglids/internal/connector"
	"kglids/internal/embed"
)

// mustSameProfiles asserts two profile sets are byte-identical JSON
// documents keyed by column ID — the strongest possible equivalence
// between the streaming and in-memory paths.
func mustSameProfiles(t *testing.T, streamed, inMemory []*ColumnProfile) {
	t.Helper()
	if len(streamed) != len(inMemory) {
		t.Fatalf("streamed %d profiles, in-memory %d", len(streamed), len(inMemory))
	}
	byID := map[string]string{}
	for _, cp := range inMemory {
		doc, err := cp.JSON()
		if err != nil {
			t.Fatal(err)
		}
		byID[cp.ID()] = string(doc)
	}
	for _, cp := range streamed {
		doc, err := cp.JSON()
		if err != nil {
			t.Fatal(err)
		}
		want, ok := byID[cp.ID()]
		if !ok {
			t.Fatalf("streamed column %s missing from in-memory profiles", cp.ID())
		}
		if string(doc) != want {
			t.Errorf("column %s diverges:\n  streamed:  %s\n  in-memory: %s", cp.ID(), doc, want)
		}
	}
}

// writeLake materializes a small mixed-type dir:// lake.
func writeLake(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"sales/orders.csv": "id,amount,paid,city,note\n" +
			"1,10.5,true,Montreal,alpha\n" +
			"2,20.25,false,Toronto,beta\n" +
			"3,,true,Montreal,\"with, comma\"\n" +
			"4,40.75,false,Vancouver,delta\n" +
			"5,7.125,true,Montreal,epsilon\n",
		"sales/items.csv": "sku,qty\nA1,3\nB2,\nC3,9\nD4,12\n",
		"hr/people.csv": "name,age\n" +
			"James,31\nMary Smith,45\nJohn,28\nPatricia,39\nRobert,52\nJennifer,44\n",
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestStreamingMatchesInMemoryExactly(t *testing.T) {
	for _, uri := range []string{
		"dir://" + writeLake(t),
		"lakegen://wide?tables=6&cols=5&rows=400&seed=5",
	} {
		for _, chunkRows := range []int{1, 3, 256} {
			src, err := connector.OpenWith(uri, connector.Options{ChunkRows: chunkRows})
			if err != nil {
				t.Fatal(err)
			}
			p := New()
			streamed, tableErrs, err := p.ProfileSource(context.Background(), src)
			if err != nil {
				t.Fatal(err)
			}
			if len(tableErrs) != 0 {
				t.Fatalf("table errors: %v", tableErrs)
			}
			frames, err := MaterializeSource(context.Background(), src)
			if err != nil {
				t.Fatal(err)
			}
			inMemory := p.ProfileAll(frames)
			t.Run(fmt.Sprintf("%s/chunk%d", src.Scheme(), chunkRows), func(t *testing.T) {
				mustSameProfiles(t, streamed, inMemory)
			})
		}
	}
}

func TestStreamingDeterministicOrder(t *testing.T) {
	src, err := connector.Open("lakegen://wide?tables=4&cols=3&rows=100&seed=2")
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	a, _, err := p.ProfileSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.ProfileSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d profiles", len(a), len(b))
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("profile order unstable at %d: %s vs %s", i, a[i].ID(), b[i].ID())
		}
	}
}

// TestStreamingBoundedAccuracy forces the sketch regime — a reservoir and
// exact-distinct budget far below the column cardinality — and pins the
// approximation error: counts and moments that stay exact must be exact,
// distinct estimation must land within KMV's expected error, and std must
// agree with the two-pass value to floating-point noise.
func TestStreamingBoundedAccuracy(t *testing.T) {
	const rows = 8000
	src, err := connector.Open(fmt.Sprintf("lakegen://wide?tables=1&cols=4&rows=%d&seed=13", rows))
	if err != nil {
		t.Fatal(err)
	}
	exactP := New()
	exact, _, err := exactP.ProfileSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}

	boundedP := New()
	boundedP.ReservoirSize = 64
	boundedP.ExactDistinct = 32
	bounded, _, err := boundedP.ProfileSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != len(bounded) {
		t.Fatalf("%d vs %d profiles", len(exact), len(bounded))
	}
	for i, e := range exact {
		b := bounded[i]
		if e.ID() != b.ID() || e.Type != b.Type {
			t.Fatalf("%s: identity diverged (%s/%s)", e.ID(), e.Type, b.Type)
		}
		// Exact-by-construction fields.
		if b.Stats.Total != e.Stats.Total || b.Stats.Missing != e.Stats.Missing ||
			b.Stats.Min != e.Stats.Min || b.Stats.Max != e.Stats.Max ||
			b.Stats.Mean != e.Stats.Mean || b.Stats.TrueRatio != e.Stats.TrueRatio {
			t.Errorf("%s: exact field diverged: %+v vs %+v", e.ID(), b.Stats, e.Stats)
		}
		// Std falls back to Welford: same value to floating-point noise.
		if e.Stats.Std != 0 {
			if rel := math.Abs(b.Stats.Std-e.Stats.Std) / e.Stats.Std; rel > 1e-6 {
				t.Errorf("%s: std %.9g vs %.9g (rel %.2g)", e.ID(), b.Stats.Std, e.Stats.Std, rel)
			}
		}
		// Distinct over budget estimates via KMV (k=1024, ~3% standard
		// error); pin a generous 15% so the test is immune to seed luck.
		if e.Stats.Distinct > boundedP.ExactDistinct {
			rel := math.Abs(float64(b.Stats.Distinct-e.Stats.Distinct)) / float64(e.Stats.Distinct)
			if rel > 0.15 {
				t.Errorf("%s: distinct %d vs exact %d (rel %.2f)", e.ID(), b.Stats.Distinct, e.Stats.Distinct, rel)
			}
		} else if b.Stats.Distinct != e.Stats.Distinct {
			t.Errorf("%s: distinct %d vs %d under the exact budget", e.ID(), b.Stats.Distinct, e.Stats.Distinct)
		}
		// The embedding comes from a hash-reservoir subsample: well-formed
		// and close in direction to the exact-sample embedding.
		if len(b.Embed) != len(e.Embed) {
			t.Fatalf("%s: embedding dims %d vs %d", e.ID(), len(b.Embed), len(e.Embed))
		}
		if sim := embed.Cosine(e.Embed, b.Embed); sim < 0.80 {
			t.Errorf("%s: reservoir embedding drifted (cosine %.3f)", e.ID(), sim)
		}
	}
}

func TestProfileSourceSkipsUnreadableTables(t *testing.T) {
	root := writeLake(t)
	if err := os.WriteFile(filepath.Join(root, "sales", "broken.csv"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := connector.Open("dir://" + root)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	profiles, tableErrs, err := p.ProfileSource(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tableErrs) != 1 {
		t.Fatalf("table errors %v, want exactly the broken table", tableErrs)
	}
	if _, ok := tableErrs["sales/broken.csv"]; !ok {
		t.Fatalf("broken table not reported: %v", tableErrs)
	}
	tables := map[string]bool{}
	for _, cp := range profiles {
		tables[cp.TableID()] = true
	}
	if len(tables) != 3 {
		t.Fatalf("profiled tables %v, want the 3 readable ones", tables)
	}
}

func TestProfileSourceCancellation(t *testing.T) {
	src, err := connector.Open("lakegen://wide?tables=8&cols=6&rows=5000&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New()
	if _, _, err := p.ProfileSource(ctx, src); err == nil {
		t.Fatal("canceled ProfileSource returned no error")
	}
}
