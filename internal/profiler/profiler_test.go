package profiler

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
)

func seriesOf(name string, vals ...string) *dataframe.Series {
	s := &dataframe.Series{Name: name}
	for _, v := range vals {
		s.Cells = append(s.Cells, dataframe.ParseCell(v))
	}
	return s
}

func TestNERRecognize(t *testing.T) {
	n := NewNER()
	cases := map[string]string{
		"Canada":     "GPE",
		"montreal":   "GPE",
		"Google":     "ORG",
		"James":      "PERSON",
		"French":     "LANGUAGE",
		"iPhone":     "PRODUCT",
		"Olympics":   "EVENT",
		"New York":   "GPE",
		"mary smith": "PERSON",
	}
	for in, want := range cases {
		got, ok := n.Recognize(in)
		if !ok || got != want {
			t.Errorf("Recognize(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
	for _, in := range []string{"xyzzy", "12345", "", "the quick fox"} {
		if _, ok := n.Recognize(in); ok {
			t.Errorf("Recognize(%q) matched unexpectedly", in)
		}
	}
}

func TestInferNumericTypes(t *testing.T) {
	ti := NewTypeInferencer()
	cases := []struct {
		vals []string
		want embed.Type
	}{
		{[]string{"1", "2", "3", "400", "-7"}, embed.TypeInt},
		{[]string{"1.5", "2.25", "3.1", "4.0", "0.2"}, embed.TypeFloat},
		{[]string{"1", "2", "3.5", "4", "5"}, embed.TypeFloat}, // mixed
		{[]string{"true", "false", "true", "true", "false"}, embed.TypeBoolean},
		{[]string{"0", "1", "1", "0", "1"}, embed.TypeBoolean}, // 0/1 ints
		{[]string{"yes", "no", "yes", "no", "yes"}, embed.TypeBoolean},
	}
	for _, c := range cases {
		if got := ti.Infer(seriesOf("x", c.vals...)); got != c.want {
			t.Errorf("Infer(%v) = %v, want %v", c.vals, got, c.want)
		}
	}
}

func TestInferStringTypes(t *testing.T) {
	ti := NewTypeInferencer()
	cases := []struct {
		vals []string
		want embed.Type
	}{
		{[]string{"2020-01-15", "2021-06-07", "2019-12-31", "2022-03-03", "2018-07-22"}, embed.TypeDate},
		{[]string{"Canada", "France", "Japan", "Brazil", "Kenya"}, embed.TypeNamedEntity},
		{[]string{"James", "Mary", "Robert", "Linda", "David"}, embed.TypeNamedEntity},
		{
			[]string{
				"the product was very good and i liked it",
				"this is a bad product and it broke",
				"great value for the price i paid",
				"it was not what i expected at all",
			},
			embed.TypeNaturalLanguage,
		},
		{[]string{"A1B2", "C3D4", "E5F6", "G7H8", "J9K0"}, embed.TypeString}, // postal-ish codes
		{[]string{"id-001", "id-002", "id-003", "id-004", "id-005"}, embed.TypeString},
	}
	for _, c := range cases {
		if got := ti.Infer(seriesOf("x", c.vals...)); got != c.want {
			t.Errorf("Infer(%v...) = %v, want %v", c.vals[0], got, c.want)
		}
	}
}

func TestInferEmptyAndNulls(t *testing.T) {
	ti := NewTypeInferencer()
	if got := ti.Infer(seriesOf("x")); got != embed.TypeString {
		t.Errorf("empty column type = %v", got)
	}
	if got := ti.Infer(seriesOf("x", "", "NA", "")); got != embed.TypeString {
		t.Errorf("all-null column type = %v", got)
	}
	// Nulls mixed with ints should still be int.
	if got := ti.Infer(seriesOf("x", "1", "", "2", "NA", "3")); got != embed.TypeInt {
		t.Errorf("nullable int column type = %v", got)
	}
}

func TestProfileColumn(t *testing.T) {
	p := New()
	s := seriesOf("Age", "22", "38", "", "35", "35")
	cp := p.ProfileColumn("titanic", "train.csv", s)
	if cp.Type != embed.TypeInt {
		t.Errorf("type = %v", cp.Type)
	}
	if cp.Stats.Total != 5 || cp.Stats.Missing != 1 || cp.Stats.Distinct != 3 {
		t.Errorf("stats = %+v", cp.Stats)
	}
	if cp.Stats.Min != 22 || cp.Stats.Max != 38 {
		t.Errorf("min/max = %v/%v", cp.Stats.Min, cp.Stats.Max)
	}
	if cp.Stats.Mean != 32.5 {
		t.Errorf("mean = %v", cp.Stats.Mean)
	}
	if len(cp.Embed) != embed.Dim {
		t.Errorf("embedding dim = %d", len(cp.Embed))
	}
	if cp.ID() != "titanic/train.csv/Age" {
		t.Errorf("ID = %q", cp.ID())
	}
	if cp.TableID() != "titanic/train.csv" {
		t.Errorf("TableID = %q", cp.TableID())
	}
}

func TestProfileBooleanStats(t *testing.T) {
	p := New()
	cp := p.ProfileColumn("d", "t", seriesOf("flag", "true", "false", "true", "true"))
	if cp.Type != embed.TypeBoolean {
		t.Fatalf("type = %v", cp.Type)
	}
	if cp.Stats.TrueRatio != 0.75 {
		t.Errorf("true ratio = %v", cp.Stats.TrueRatio)
	}
}

func TestProfileJSONRoundtrip(t *testing.T) {
	p := New()
	cp := p.ProfileColumn("d", "t", seriesOf("c", "a", "b"))
	data, err := cp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"fine_grained_type"`) {
		t.Error("JSON missing type field")
	}
}

func TestProfileAllParallel(t *testing.T) {
	p := New()
	rng := rand.New(rand.NewSource(11))
	var tables []Table
	for i := 0; i < 6; i++ {
		df := dataframe.New(fmt.Sprintf("t%d.csv", i))
		a := &dataframe.Series{Name: "a"}
		b := &dataframe.Series{Name: "b"}
		for r := 0; r < 50; r++ {
			a.Cells = append(a.Cells, dataframe.NumberCell(float64(rng.Intn(100))))
			b.Cells = append(b.Cells, dataframe.TextCell(fmt.Sprintf("v%d", rng.Intn(10))))
		}
		df.AddColumn(a)
		df.AddColumn(b)
		tables = append(tables, Table{Dataset: "ds", Frame: df})
	}
	profiles := p.ProfileAll(tables)
	if len(profiles) != 12 {
		t.Fatalf("profiles = %d, want 12", len(profiles))
	}
	// Deterministic order: table 0 col a, table 0 col b, table 1 col a, ...
	if profiles[0].Table != "t0.csv" || profiles[0].Column != "a" {
		t.Errorf("order[0] = %s/%s", profiles[0].Table, profiles[0].Column)
	}
	if profiles[3].Table != "t1.csv" || profiles[3].Column != "b" {
		t.Errorf("order[3] = %s/%s", profiles[3].Table, profiles[3].Column)
	}
	for _, cp := range profiles {
		if cp == nil {
			t.Fatal("nil profile from parallel path")
		}
	}
	bd := TypeBreakdown(profiles)
	if bd[embed.TypeInt] != 6 || bd[embed.TypeString] != 6 {
		t.Errorf("breakdown = %v", bd)
	}
}

func TestProfileAllSingleWorker(t *testing.T) {
	p := New()
	p.Workers = 0 // must clamp to 1
	df := dataframe.New("x.csv")
	df.AddColumn(seriesOf("a", "1", "2"))
	profiles := p.ProfileAll([]Table{{Dataset: "d", Frame: df}})
	if len(profiles) != 1 || profiles[0] == nil {
		t.Fatal("single worker profiling failed")
	}
}
