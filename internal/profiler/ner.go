// Package profiler implements KGLiDS's embedding-based Data Profiling
// (paper Section 3.2, Algorithm 2): fine-grained type inference over 7
// types, per-column statistics, CoLR content embeddings, and parallel
// column-profile generation.
package profiler

import "strings"

// NER is a gazetteer-based named-entity recognizer substituting for the
// paper's pre-trained OntoNotes 5 model. The profiler only needs a binary
// decision per value — "is this a named entity?" — plus the entity class;
// curated gazetteers reproduce that decision for the corpora the generators
// produce (persons, countries, cities, organizations, languages, products,
// and events, a subset of OntoNotes' 18 types).
type NER struct {
	classOf map[string]string
}

var gazetteers = map[string][]string{
	"PERSON": {
		"james", "mary", "john", "patricia", "robert", "jennifer", "michael",
		"linda", "william", "elizabeth", "david", "barbara", "richard",
		"susan", "joseph", "jessica", "thomas", "sarah", "charles", "karen",
		"christopher", "nancy", "daniel", "lisa", "matthew", "betty",
		"anthony", "margaret", "mark", "sandra", "donald", "ashley",
		"steven", "kimberly", "paul", "emily", "andrew", "donna", "joshua",
		"michelle", "smith", "johnson", "williams", "brown", "jones",
		"garcia", "miller", "davis", "rodriguez", "martinez", "hernandez",
		"lopez", "gonzalez", "wilson", "anderson", "taylor", "moore",
		"jackson", "martin", "lee", "perez", "thompson", "white", "harris",
		"sanchez", "clark", "ramirez", "lewis", "robinson", "walker",
		"young", "allen", "king", "wright", "scott", "torres", "nguyen",
		"hill", "flores", "green", "adams", "nelson", "baker", "hall",
		"rivera", "campbell", "mitchell", "carter", "roberts", "braund",
		"cumings", "heikkinen", "futrelle",
	},
	"GPE": { // countries and cities
		"canada", "usa", "united states", "mexico", "brazil", "argentina",
		"france", "germany", "italy", "spain", "portugal", "england",
		"united kingdom", "ireland", "netherlands", "belgium", "sweden",
		"norway", "denmark", "finland", "poland", "austria", "switzerland",
		"greece", "turkey", "russia", "china", "japan", "india", "korea",
		"vietnam", "thailand", "indonesia", "australia", "egypt", "nigeria",
		"kenya", "morocco", "south africa", "chile", "peru", "colombia",
		"montreal", "toronto", "vancouver", "ottawa", "calgary", "edmonton",
		"quebec", "winnipeg", "halifax", "new york", "los angeles",
		"chicago", "houston", "phoenix", "philadelphia", "san antonio",
		"san diego", "dallas", "austin", "boston", "seattle", "denver",
		"london", "paris", "berlin", "madrid", "rome", "amsterdam",
		"vienna", "prague", "budapest", "warsaw", "lisbon", "dublin",
		"tokyo", "osaka", "beijing", "shanghai", "mumbai", "delhi",
		"sydney", "melbourne", "cairo", "lagos", "nairobi",
	},
	"ORG": {
		"google", "microsoft", "apple", "amazon", "facebook", "meta",
		"netflix", "tesla", "ibm", "oracle", "intel", "samsung", "sony",
		"toyota", "honda", "ford", "boeing", "airbus", "siemens", "nokia",
		"walmart", "costco", "target", "starbucks", "mcdonalds", "nike",
		"adidas", "pepsi", "cocacola", "visa", "mastercard", "paypal",
		"spotify", "uber", "lyft", "airbnb", "shopify", "salesforce",
		"concordia", "mcgill", "stanford", "harvard", "mit", "oxford",
		"cambridge", "borealis", "waterloo",
	},
	"LANGUAGE": {
		"english", "french", "spanish", "german", "italian", "portuguese",
		"dutch", "swedish", "norwegian", "danish", "finnish", "polish",
		"russian", "mandarin", "cantonese", "japanese", "korean", "hindi",
		"arabic", "turkish", "greek", "hebrew", "thai", "vietnamese",
	},
	"PRODUCT": {
		"iphone", "ipad", "macbook", "android", "windows", "xbox",
		"playstation", "kindle", "echo", "alexa", "corolla", "civic",
		"mustang", "camry", "accord", "prius", "model s", "model 3",
	},
	"EVENT": {
		"olympics", "world cup", "super bowl", "wimbledon", "oscars",
		"grammys", "world series", "tour de france", "daytona 500",
	},
}

// NewNER returns the built-in gazetteer model.
func NewNER() *NER {
	n := &NER{classOf: map[string]string{}}
	for class, words := range gazetteers {
		for _, w := range words {
			n.classOf[w] = class
		}
	}
	return n
}

// Recognize returns the entity class of a value and whether it is a named
// entity. Multi-token values match if every alphabetic token (or the whole
// normalized value) is in a gazetteer.
func (n *NER) Recognize(value string) (string, bool) {
	v := strings.ToLower(strings.TrimSpace(value))
	if v == "" {
		return "", false
	}
	if class, ok := n.classOf[v]; ok {
		return class, true
	}
	toks := strings.FieldsFunc(v, func(r rune) bool { return r == ' ' || r == ',' || r == '.' || r == '-' })
	if len(toks) == 0 {
		return "", false
	}
	lastClass := ""
	for _, t := range toks {
		class, ok := n.classOf[t]
		if !ok {
			return "", false
		}
		lastClass = class
	}
	return lastClass, true
}
