package experiments

import (
	"strings"
	"testing"
	"time"

	"kglids/internal/lakegen"
)

// tinySpec keeps discovery experiment tests fast.
var tinySpec = lakegen.Spec{
	Name: "TUS Small", Families: 5, TablesPerFamily: 3, NoiseTables: 5,
	RowsPerTable: 60, QueryTables: 5, Seed: 71,
}

func TestRunDiscoveryBenchmark(t *testing.T) {
	runs := RunDiscoveryBenchmark(tinySpec)
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	bySystem := map[string]DiscoverySystemRun{}
	for _, r := range runs {
		bySystem[r.System] = r
		if r.Preprocess <= 0 || r.AvgQuery <= 0 {
			t.Errorf("%s: non-positive timings", r.System)
		}
		for k, p := range r.PrecisionAtK {
			if p < 0 || p > 1 {
				t.Errorf("%s P@%d = %v", r.System, k, p)
			}
		}
	}
	// Table 2 shape: KGLiDS queries are the fastest (index lookups).
	kg := bySystem["KGLiDS"]
	if kg.AvgQuery > bySystem["SANTOS"].AvgQuery {
		t.Errorf("KGLiDS query %v slower than SANTOS %v", kg.AvgQuery, bySystem["SANTOS"].AvgQuery)
	}
	// KGLiDS precision at k=1 should be strong on the replica.
	if kg.PrecisionAtK[1] < 0.6 {
		t.Errorf("KGLiDS P@1 = %v", kg.PrecisionAtK[1])
	}
	out := FormatTable2(runs)
	if !strings.Contains(out, "KGLiDS") || !strings.Contains(out, "SANTOS") {
		t.Error("Table 2 output incomplete")
	}
	if fig := FormatFigure5(runs); !strings.Contains(fig, "P KGLiDS") {
		t.Error("Figure 5 output incomplete")
	}
}

func TestRunTable1Tiny(t *testing.T) {
	// Full Table 1 generates all four lakes; exercise the stats path on a
	// single tiny benchmark via the same code used by RunTable1.
	b := lakegen.Generate(tinySpec)
	if b.TotalColumns() == 0 {
		t.Fatal("no columns")
	}
	stats := RunTable1Subset([]lakegen.Spec{tinySpec})
	if len(stats) != 1 || stats[0].TotalColumns != b.TotalColumns() {
		t.Fatalf("stats = %+v", stats)
	}
	out := FormatTable1(stats)
	if !strings.Contains(out, "named_entity cols.") {
		t.Error("Table 1 output missing type rows")
	}
}

func TestRunAbstractionSmall(t *testing.T) {
	r := RunAbstraction(40)
	if r.NumPipelines != 40 {
		t.Fatalf("pipelines = %d", r.NumPipelines)
	}
	// Table 3 shape: GraphGen4Code emits a much larger graph and takes
	// longer.
	if r.GraphGenTriples <= r.KGLiDSTriples*2 {
		t.Errorf("graph reduction shape lost: kglids=%d g4c=%d", r.KGLiDSTriples, r.GraphGenTriples)
	}
	if r.KGLiDSNodes <= 0 || r.GraphGenNodes <= r.KGLiDSNodes {
		t.Errorf("node counts: kglids=%d g4c=%d", r.KGLiDSNodes, r.GraphGenNodes)
	}
	// Figure 4 shape: pandas on top.
	if len(r.TopLibraries) == 0 || r.TopLibraries[0].Library != "pandas" {
		t.Errorf("top libraries = %+v", r.TopLibraries)
	}
	// Table 4: KGLiDS models dataset reads / library hierarchy, G4C does
	// not; G4C models locations/param order, KGLiDS does not.
	if r.KGLiDSBreakdown["Library hierarchy"] == 0 {
		t.Error("KGLiDS breakdown missing library hierarchy")
	}
	if r.GraphGenBreakdown["Statement location"] == 0 {
		t.Error("G4C breakdown missing statement location")
	}
	if r.KGLiDSBreakdown["Statement location"] != 0 {
		t.Error("KGLiDS should not model statement location")
	}
	for _, s := range []string{FormatTable3(r), FormatTable4(r), FormatFigure4(r)} {
		if len(s) < 50 {
			t.Error("formatted output too short")
		}
	}
}

func TestRunTable5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("cleaning suite in -short")
	}
	rows := RunTable5(6)
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	ooms := 0
	for _, r := range rows {
		if r.HoloCleanF1 < 0 {
			ooms++
		}
		if r.KGLiDSF1 <= 0 {
			t.Errorf("dataset %d: KGLiDS F1 = %v", r.ID, r.KGLiDSF1)
		}
		if r.KGLiDSOp == "" {
			t.Errorf("dataset %d: no op recommended", r.ID)
		}
	}
	// Table 5 shape: the largest datasets OOM HoloClean.
	if ooms < 2 {
		t.Errorf("HoloClean OOMs = %d, want >= 2 (paper: 3)", ooms)
	}
	for _, r := range rows[:3] {
		if r.HoloCleanF1 < 0 {
			t.Errorf("small dataset %d should not OOM", r.ID)
		}
	}
	// Figure 7 shape: KGLiDS memory stays roughly flat while HoloClean
	// grows; compare the largest non-OOM HoloClean run against KGLiDS.
	if out := FormatTable5(rows); !strings.Contains(out, "OOM") {
		t.Error("Table 5 output missing OOM")
	}
	if out := FormatFigure7(rows); !strings.Contains(out, "KGLiDS") {
		t.Error("Figure 7 output incomplete")
	}
}

func TestRunFigure9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("automl suite in -short")
	}
	cmp := RunFigure9(60)
	if len(cmp.Rows) < 20 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	if cmp.PValue < 0 || cmp.PValue > 1 {
		t.Errorf("p-value = %v", cmp.PValue)
	}
	wins := 0
	for _, r := range cmp.Rows {
		if r.Difference >= 0 {
			wins++
		}
	}
	// Figure 9 shape: Pip_LiDS wins on the majority of datasets.
	if wins*2 < len(cmp.Rows) {
		t.Errorf("Pip_LiDS wins only %d/%d", wins, len(cmp.Rows))
	}
	if out := FormatFigure9(cmp); !strings.Contains(out, "t-test") {
		t.Error("Figure 9 output incomplete")
	}
}

func TestMemDelta(t *testing.T) {
	d := memDelta(func() {
		buf := make([]byte, 1<<20)
		_ = buf
	})
	if d < 1<<20 {
		t.Errorf("memDelta = %d, want >= 1MB", d)
	}
}

func TestKSweep(t *testing.T) {
	if len(KSweep("D3L Small")) == 0 || len(KSweep("TUS Small")) == 0 || len(KSweep("SANTOS Small")) == 0 {
		t.Error("empty k sweep")
	}
}

func TestAutoLearnBudgetConstant(t *testing.T) {
	if AutoLearnBudget <= 0 || AutoLearnBudget > time.Minute {
		t.Error("AutoLearnBudget out of range")
	}
}
