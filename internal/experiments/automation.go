package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"kglids/internal/baselines/autolearn"
	"kglids/internal/baselines/holoclean"
	"kglids/internal/cleaning"
	"kglids/internal/dataframe"
	"kglids/internal/lakegen"
	"kglids/internal/ml"
	"kglids/internal/profiler"
	"kglids/internal/transform"
)

// evalForest trains the evaluation random forest with k-fold CV and
// returns the metric (the paper uses RF F1 over 10 folds for cleaning,
// accuracy over 5 folds for transformation). Forest size is CI-scaled.
func evalForest(df *dataframe.DataFrame, target string, folds int, metric func(a, b []float64) float64) float64 {
	m, err := df.ToMatrix(target)
	if err != nil || len(m.X) == 0 {
		return 0
	}
	return ml.CrossValidate(func() ml.Classifier {
		f := ml.NewRandomForest(15)
		f.MaxDepth = 10
		return f
	}, m.X, m.Y, folds, metric)
}

// quickScore is the cheap proxy used when labeling training datasets with
// their best operation (a small holdout forest).
func quickScore(df *dataframe.DataFrame, target string) float64 {
	m, err := df.ToMatrix(target)
	if err != nil || len(m.X) < 10 {
		return 0
	}
	tx, ty, vx, vy := ml.TrainTestSplit(m.X, m.Y, 0.3, 5)
	f := ml.NewRandomForest(8)
	f.MaxDepth = 8
	f.Fit(tx, ty)
	return ml.F1(vy, f.Predict(vx))
}

// trainCleaningRecommender builds the Section 4.2 model: training datasets
// are labeled with the cleaning operation that maximizes downstream model
// performance — the signal the LiDS graph carries through top-voted
// pipelines.
func trainCleaningRecommender(numTraining int) *cleaning.Recommender {
	p := profiler.New()
	var examples []cleaning.Example
	for i := 0; i < numTraining; i++ {
		task := lakegen.GenerateTask(lakegen.TaskSpec{
			ID: 500 + i, Name: fmt.Sprintf("clean_train_%02d", i),
			Rows: 120 + (i%6)*60, NumFeatures: 4 + i%5, CatFeatures: i % 3,
			Classes: 2 + i%2, NullRate: 0.04 + 0.02*float64(i%5),
			Skew: i%2 == 0, Seed: int64(7000 + i),
		})
		bestOp, bestScore := cleaning.Ops[0], -1.0
		for _, op := range cleaning.Ops {
			cleaned, err := cleaning.Apply(op, task.Frame)
			if err != nil {
				continue
			}
			if s := quickScore(cleaned, task.Target); s > bestScore {
				bestOp, bestScore = op, s
			}
		}
		examples = append(examples, cleaning.Example{
			Embedding: cleaning.MissingValueEmbedding(p, task.Frame),
			Op:        bestOp,
		})
	}
	return cleaning.Train(examples)
}

// CleaningRow is one row of Table 5 with the Figure 7 measurements.
type CleaningRow struct {
	ID      int
	Dataset string

	BaselineF1  float64
	HoloCleanF1 float64 // -1 marks OOM
	KGLiDSF1    float64

	HoloCleanTime  time.Duration
	KGLiDSTime     time.Duration
	HoloCleanBytes int64
	KGLiDSBytes    int64

	KGLiDSOp cleaning.Op
}

// HoloCleanCeiling is the scaled memory ceiling standing in for the
// paper's 189 GB evaluation VM; the three largest suite datasets exceed
// it, matching Table 5's OOM rows.
const HoloCleanCeiling = 24_000_000

// RunTable5 evaluates cleaning on the 13-dataset suite.
func RunTable5(trainingSets int) []CleaningRow {
	rec := trainCleaningRecommender(trainingSets)
	var rows []CleaningRow
	for _, task := range lakegen.CleaningSuite() {
		row := CleaningRow{ID: task.ID, Dataset: task.Name}
		// Baseline: drop null rows.
		row.BaselineF1 = evalForest(task.Frame.DropNullRows(), task.Target, 10, ml.F1)
		// HoloClean.
		hc := holoclean.New(HoloCleanCeiling)
		var cleaned *dataframe.DataFrame
		var hcErr error
		row.HoloCleanBytes = memDelta(func() {
			start := time.Now()
			cleaned, hcErr = hc.Clean(task.Frame)
			row.HoloCleanTime = time.Since(start)
		})
		if errors.Is(hcErr, holoclean.ErrOutOfMemory) {
			row.HoloCleanF1 = -1
		} else if hcErr == nil {
			row.HoloCleanF1 = evalForest(cleaned, task.Target, 10, ml.F1)
		}
		// KGLiDS on-demand cleaning.
		var kCleaned *dataframe.DataFrame
		row.KGLiDSBytes = memDelta(func() {
			start := time.Now()
			var op cleaning.Op
			kCleaned, op, _ = rec.Clean(task.Frame)
			row.KGLiDSOp = op
			row.KGLiDSTime = time.Since(start)
		})
		row.KGLiDSF1 = evalForest(kCleaned, task.Target, 10, ml.F1)
		rows = append(rows, row)
	}
	return rows
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []CleaningRow) string {
	var sb strings.Builder
	sb.WriteString("Table 5: F1-Scores for Data Cleaning (x100)\n")
	fmt.Fprintf(&sb, "%-30s %10s %10s %10s %18s\n", "ID - Dataset", "Baseline", "HoloClean", "KGLiDS", "KGLiDS op")
	for _, r := range rows {
		hc := fmt.Sprintf("%.2f", 100*r.HoloCleanF1)
		if r.HoloCleanF1 < 0 {
			hc = "OOM"
		}
		fmt.Fprintf(&sb, "%2d - %-25s %10.2f %10s %10.2f %18s\n", r.ID, r.Dataset, 100*r.BaselineF1, hc, 100*r.KGLiDSF1, r.KGLiDSOp)
	}
	return sb.String()
}

// FormatFigure7 renders the cleaning time/memory curves.
func FormatFigure7(rows []CleaningRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: Cleaning time (a) and memory (b) by dataset (ascending size)\n")
	fmt.Fprintf(&sb, "%-4s %14s %14s %14s %14s\n", "ID", "HC time", "KGLiDS time", "HC MB", "KGLiDS MB")
	for _, r := range rows {
		hcT := r.HoloCleanTime.Round(time.Millisecond).String()
		hcM := fmt.Sprintf("%.1f", float64(r.HoloCleanBytes)/(1<<20))
		if r.HoloCleanF1 < 0 {
			hcT, hcM = "OOM", "OOM"
		}
		fmt.Fprintf(&sb, "%-4d %14s %14s %14s %14.1f\n", r.ID, hcT,
			r.KGLiDSTime.Round(time.Millisecond), hcM, float64(r.KGLiDSBytes)/(1<<20))
	}
	return sb.String()
}

// trainTransformRecommender builds the Section 4.3 models, labeled by the
// best-performing scaler and unary op per training dataset.
func trainTransformRecommender(numTraining int) *transform.Recommender {
	p := profiler.New()
	var scalerExamples []transform.ScalerExample
	var unaryExamples []transform.UnaryExample
	for i := 0; i < numTraining; i++ {
		task := lakegen.GenerateTask(lakegen.TaskSpec{
			ID: 600 + i, Name: fmt.Sprintf("tr_train_%02d", i),
			Rows: 120 + (i%6)*50, NumFeatures: 4 + i%5,
			Classes: 2 + i%3, Skew: i%3 != 0, Seed: int64(8000 + i),
		})
		bestScaler, bestScore := transform.Scalers[0], -1.0
		for _, op := range transform.Scalers {
			scaled, err := transform.ApplyScaler(op, task.Frame, task.Target)
			if err != nil {
				continue
			}
			if s := quickScore(scaled, task.Target); s > bestScore {
				bestScaler, bestScore = op, s
			}
		}
		scalerExamples = append(scalerExamples, transform.ScalerExample{
			Embedding: transform.TableEmbedding(p, task.Frame),
			Op:        bestScaler,
		})
		// Unary labels per column: apply each op to the whole frame and
		// label all numeric columns with the winner.
		bestUnary, bestScore := transform.UnaryNone, quickScore(task.Frame, task.Target)
		for _, op := range []transform.UnaryOp{transform.UnaryLog, transform.UnarySqrt} {
			candidate := task.Frame.Clone()
			for _, colName := range candidate.Columns() {
				if colName == task.Target {
					continue
				}
				candidate, _ = transform.ApplyUnary(op, candidate, colName)
			}
			if s := quickScore(candidate, task.Target); s > bestScore {
				bestUnary, bestScore = op, s
			}
		}
		for c := 0; c < task.Frame.NumCols(); c++ {
			col := task.Frame.ColumnAt(c)
			if col.Name == task.Target || !col.IsNumeric() {
				continue
			}
			cp := p.ProfileColumn(task.Name, task.Name, col)
			unaryExamples = append(unaryExamples, transform.UnaryExample{Embedding: cp.Embed, Op: bestUnary})
		}
	}
	return transform.Train(scalerExamples, unaryExamples)
}

// TransformRow is one row of Table 6 with the Figure 8 measurements.
type TransformRow struct {
	ID      int
	Dataset string

	BaselineAcc  float64
	AutoLearnAcc float64 // -1 TO, -2 OOM
	KGLiDSAcc    float64

	AutoLearnTime  time.Duration
	KGLiDSTime     time.Duration
	AutoLearnBytes int64
	KGLiDSBytes    int64
}

// AutoLearnBudget is the scaled stand-in for the paper's three-hour limit.
const AutoLearnBudget = 2 * time.Second

// AutoLearnCeiling is the scaled memory limit that OOMs the poker-sized
// dataset (projected footprint 2*5000^2*8 = 400 MB) while the rest of the
// suite stays under it.
const AutoLearnCeiling = 350_000_000

// RunTable6 evaluates transformation on the 17-dataset suite.
func RunTable6(trainingSets int) []TransformRow {
	rec := trainTransformRecommender(trainingSets)
	var rows []TransformRow
	for _, task := range lakegen.TransformSuite() {
		row := TransformRow{ID: task.ID, Dataset: task.Name}
		row.BaselineAcc = evalForest(task.Frame, task.Target, 5, ml.Accuracy)
		// AutoLearn.
		cfg := autolearn.Config{Budget: AutoLearnBudget, CorrThreshold: 0.5, MaxBytes: AutoLearnCeiling}
		var alFrame *dataframe.DataFrame
		var alErr error
		row.AutoLearnBytes = memDelta(func() {
			start := time.Now()
			alFrame, alErr = autolearn.Transform(cfg, task.Frame, task.Target)
			row.AutoLearnTime = time.Since(start)
		})
		switch {
		case errors.Is(alErr, autolearn.ErrTimeout):
			row.AutoLearnAcc = -1
		case errors.Is(alErr, autolearn.ErrOutOfMemory):
			row.AutoLearnAcc = -2
		case alErr == nil:
			row.AutoLearnAcc = evalForest(alFrame, task.Target, 5, ml.Accuracy)
		}
		// KGLiDS on-demand transformation.
		var kFrame *dataframe.DataFrame
		row.KGLiDSBytes = memDelta(func() {
			start := time.Now()
			kFrame, _, _, _ = rec.Transform(task.Frame, task.Target)
			row.KGLiDSTime = time.Since(start)
		})
		row.KGLiDSAcc = evalForest(kFrame, task.Target, 5, ml.Accuracy)
		rows = append(rows, row)
	}
	return rows
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []TransformRow) string {
	var sb strings.Builder
	sb.WriteString("Table 6: Accuracy for Data Transformation (x100)\n")
	fmt.Fprintf(&sb, "%-30s %10s %10s %10s\n", "ID - Dataset", "Baseline", "AutoLearn", "KGLiDS")
	for _, r := range rows {
		al := fmt.Sprintf("%.2f", 100*r.AutoLearnAcc)
		if r.AutoLearnAcc == -1 {
			al = "TO"
		} else if r.AutoLearnAcc == -2 {
			al = "OOM"
		}
		fmt.Fprintf(&sb, "%2d - %-25s %10.2f %10s %10.2f\n", r.ID, r.Dataset, 100*r.BaselineAcc, al, 100*r.KGLiDSAcc)
	}
	return sb.String()
}

// FormatFigure8 renders the transformation time/memory curves.
func FormatFigure8(rows []TransformRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: Transformation time (a) and memory (b) by dataset (ascending size)\n")
	fmt.Fprintf(&sb, "%-4s %14s %14s %14s %14s\n", "ID", "AL time", "KGLiDS time", "AL MB", "KGLiDS MB")
	for _, r := range rows {
		alT := r.AutoLearnTime.Round(time.Millisecond).String()
		alM := fmt.Sprintf("%.1f", float64(r.AutoLearnBytes)/(1<<20))
		if r.AutoLearnAcc == -1 {
			alT = "TO"
		} else if r.AutoLearnAcc == -2 {
			alT, alM = "OOM", "OOM"
		}
		fmt.Fprintf(&sb, "%-4d %14s %14s %14s %14.1f\n", r.ID, alT,
			r.KGLiDSTime.Round(time.Millisecond), alM, float64(r.KGLiDSBytes)/(1<<20))
	}
	return sb.String()
}
