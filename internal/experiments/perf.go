package experiments

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/ingest"
	"kglids/internal/lakegen"
	"kglids/internal/profiler"
	"kglids/internal/schema"
	"kglids/internal/server"
	"kglids/internal/sparql"
)

// ServingSpec is the serving-replica lake shared by the snapshot, ingest,
// and sparql perf experiments: realistic per-table row counts (bootstrap
// cost scales with rows profiled; snapshot load depends only on graph and
// embedding size, so this is the regime the persist-once/serve-many
// architecture targets).
var ServingSpec = lakegen.Spec{
	Name: "Serving", Families: 8, TablesPerFamily: 4, NoiseTables: 10,
	RowsPerTable: 1000, QueryTables: 10, Seed: 81,
}

// QuickServingSpec is the CI-scale serving replica: same shape, a fraction
// of the rows, so the full eval runs in seconds on a PR runner.
var QuickServingSpec = lakegen.Spec{
	Name: "Serving-quick", Families: 5, TablesPerFamily: 3, NoiseTables: 6,
	RowsPerTable: 150, QueryTables: 6, Seed: 81,
}

// httpSpec is the lake for the server experiment: smaller than the serving
// replica because the subject under measurement is the HTTP serving stack
// (router, middleware, DTO encode/decode, client), not bootstrap cost.
var httpSpec = lakegen.Spec{
	Name: "HTTP", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
	RowsPerTable: 200, QueryTables: 4, Seed: 91,
}

var quickHTTPSpec = lakegen.Spec{
	Name: "HTTP-quick", Families: 3, TablesPerFamily: 3, NoiseTables: 3,
	RowsPerTable: 100, QueryTables: 3, Seed: 91,
}

// PerfOptions configures the perf experiments. Quick shrinks every lake
// and repetition count to PR-gate scale; the full setting reproduces the
// numbers quoted in ARCHITECTURE.md.
type PerfOptions struct {
	Quick bool
	// SnapshotSavePath, when set, keeps the snapshot experiment's file at
	// this path for reuse (kglids-bench -save-snapshot).
	SnapshotSavePath string
	// QueryWorkers is the parallel width the sparql experiment measures the
	// morsel executor at; 0 uses one worker per CPU (kglids-bench
	// -query-workers).
	QueryWorkers int
}

// queryWorkers resolves the measured parallel width.
func (o PerfOptions) queryWorkers() int {
	if o.QueryWorkers > 0 {
		return o.QueryWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (o PerfOptions) servingSpec() lakegen.Spec {
	if o.Quick {
		return QuickServingSpec
	}
	return ServingSpec
}

func (o PerfOptions) httpSpec() lakegen.Spec {
	if o.Quick {
		return quickHTTPSpec
	}
	return httpSpec
}

// reps is the repetition count behind every reported median.
func (o PerfOptions) reps() int {
	if o.Quick {
		return 7
	}
	return 31
}

func (o PerfOptions) edgeLakeSizes() []int {
	if o.Quick {
		return []int{35, 70}
	}
	return []int{35, 70, 140}
}

// lakeTables materializes a generated lake as platform tables.
func lakeTables(lake *lakegen.Benchmark) []kglids.Table {
	var tables []kglids.Table
	for _, df := range lake.Tables {
		tables = append(tables, kglids.Table{Dataset: lake.Dataset[df.Name], Frame: df})
	}
	return tables
}

// MedianMicros reports each function's median latency in microseconds over
// reps interleaved repetitions: alternating the candidates inside one loop
// exposes them to the same GC pauses and scheduler noise, and the median
// shrugs off the outliers a mean would keep.
func MedianMicros(reps int, fns ...func() error) ([]float64, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([][]float64, len(fns))
	for i := 0; i < reps; i++ {
		for j, fn := range fns {
			start := time.Now()
			if err := fn(); err != nil {
				return nil, err
			}
			times[j] = append(times[j], float64(time.Since(start).Nanoseconds())/1e3)
		}
	}
	out := make([]float64, len(fns))
	for j := range fns {
		sort.Float64s(times[j])
		out[j] = times[j][reps/2]
	}
	return out, nil
}

// SnapshotPerf is the snapshot experiment's result: persist-once/
// serve-many startup cost against a full re-bootstrap.
type SnapshotPerf struct {
	Experiment  string  `json:"experiment"`
	Tables      int     `json:"tables"`
	Triples     int     `json:"triples"`
	BootstrapMS float64 `json:"bootstrap_ms"`
	SaveMS      float64 `json:"save_ms"`
	LoadMS      float64 `json:"load_ms"`
	FileMiB     float64 `json:"file_mib"`
	Speedup     float64 `json:"speedup"`
}

// Result flattens the experiment into the trajectory schema.
func (p *SnapshotPerf) Result() PerfResult {
	return PerfResult{Experiment: "snapshot", Metrics: map[string]float64{
		"tables":       float64(p.Tables),
		"bootstrap_ms": p.BootstrapMS,
		"save_ms":      p.SaveMS,
		"load_ms":      p.LoadMS,
		"file_mib":     p.FileMiB,
		"load_speedup": p.Speedup,
	}}
}

// RunSnapshotPerf times bootstrap vs snapshot save/load over the serving
// replica and verifies the reloaded graph is identical.
func RunSnapshotPerf(o PerfOptions) (*SnapshotPerf, error) {
	lake := lakegen.Generate(o.servingSpec())
	tables := lakeTables(lake)
	start := time.Now()
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	bootstrap := time.Since(start)

	path := o.SnapshotSavePath
	if path == "" {
		dir, err := os.MkdirTemp("", "kglids-bench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "lake.kgs")
	}
	start = time.Now()
	if err := plat.Save(path); err != nil {
		return nil, err
	}
	save := time.Since(start)
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	start = time.Now()
	reloaded, err := kglids.Open(path)
	if err != nil {
		return nil, err
	}
	load := time.Since(start)
	if reloaded.Stats() != plat.Stats() {
		return nil, fmt.Errorf("reloaded stats %+v differ from bootstrap %+v", reloaded.Stats(), plat.Stats())
	}

	res := &SnapshotPerf{
		Experiment:  "snapshot",
		Tables:      len(tables),
		Triples:     plat.Stats().Triples,
		BootstrapMS: float64(bootstrap.Microseconds()) / 1e3,
		SaveMS:      float64(save.Microseconds()) / 1e3,
		LoadMS:      float64(load.Microseconds()) / 1e3,
		FileMiB:     float64(info.Size()) / (1 << 20),
	}
	if load > 0 {
		res.Speedup = float64(bootstrap) / float64(load)
	}
	return res, nil
}

// IngestPerf is the ingest experiment's result: live incremental ingestion
// of one table against re-bootstrapping the whole lake.
type IngestPerf struct {
	Experiment    string  `json:"experiment"`
	Tables        int     `json:"tables"`
	IncrementalMS float64 `json:"incremental_ms"`
	RebootstrapMS float64 `json:"rebootstrap_ms"`
	Speedup       float64 `json:"speedup"`
}

// Result flattens the experiment into the trajectory schema.
func (p *IngestPerf) Result() PerfResult {
	return PerfResult{Experiment: "ingest", Metrics: map[string]float64{
		"tables":         float64(p.Tables),
		"incremental_ms": p.IncrementalMS,
		"rebootstrap_ms": p.RebootstrapMS,
		"ingest_speedup": p.Speedup,
	}}
}

// RunIngestPerf times absorbing one new table incrementally versus re-
// bootstrapping, and verifies the two paths are equivalent.
func RunIngestPerf(o PerfOptions) (*IngestPerf, error) {
	lake := lakegen.Generate(o.servingSpec())
	tables := lakeTables(lake)
	n := len(tables)
	base, extra := tables[:n-1], tables[n-1:]

	plat := kglids.Bootstrap(kglids.Options{}, base)
	start := time.Now()
	if _, err := plat.AddTables(extra); err != nil {
		return nil, err
	}
	incremental := time.Since(start)

	start = time.Now()
	fresh := kglids.Bootstrap(kglids.Options{}, tables)
	rebootstrap := time.Since(start)

	if plat.Stats() != fresh.Stats() {
		return nil, fmt.Errorf("incremental stats %+v diverge from rebootstrap %+v", plat.Stats(), fresh.Stats())
	}
	res := &IngestPerf{
		Experiment:    "ingest",
		Tables:        n,
		IncrementalMS: float64(incremental.Microseconds()) / 1e3,
		RebootstrapMS: float64(rebootstrap.Microseconds()) / 1e3,
	}
	if incremental > 0 {
		res.Speedup = float64(rebootstrap) / float64(incremental)
	}
	return res, nil
}

// SPARQLQueryPerf is one query's row of the sparql experiment.
type SPARQLQueryPerf struct {
	Name     string  `json:"name"`
	Query    string  `json:"query"`
	Rows     int     `json:"rows"`
	TermUS   float64 `json:"term_us"`
	IDUS     float64 `json:"id_us"`
	CachedUS float64 `json:"cached_us"`
	Speedup  float64 `json:"speedup"`
}

// SPARQLPerf is the sparql experiment's result: the compiled ID-space
// engine against the term-space reference, per discovery-shaped query,
// plus the morsel executor's serial-vs-parallel comparison on the widest
// discovery join.
type SPARQLPerf struct {
	Experiment string            `json:"experiment"`
	Tables     int               `json:"tables"`
	Triples    int               `json:"triples"`
	Queries    []SPARQLQueryPerf `json:"queries"`
	// Workers is the parallel width the serial-vs-parallel pair ran at;
	// SerialUS is the 1-worker median, ParallelUS the Workers-wide median,
	// on the 4-pattern discovery join. ParallelSpeedup approaches Workers
	// on an idle multi-core box and 1.0 when GOMAXPROCS=1.
	Workers         int     `json:"workers"`
	SerialUS        float64 `json:"serial_us"`
	ParallelUS      float64 `json:"parallel_us"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// Result flattens the experiment into the trajectory schema, one metric
// triple per query.
func (p *SPARQLPerf) Result() PerfResult {
	metrics := map[string]float64{"triples": float64(p.Triples)}
	for _, q := range p.Queries {
		metrics[q.Name+"_id_us"] = q.IDUS
		metrics[q.Name+"_cached_us"] = q.CachedUS
		metrics[q.Name+"_speedup"] = q.Speedup
	}
	metrics["serial_us"] = p.SerialUS
	metrics["parallel_us"] = p.ParallelUS
	metrics["parallel_speedup"] = p.ParallelSpeedup
	return PerfResult{Experiment: "sparql", Metrics: metrics}
}

// RunSPARQLPerf times the term-space reference evaluator against the
// compiled ID-space engine (and its generation-keyed cache) over the
// serving replica, verifying result equivalence per query.
func RunSPARQLPerf(o PerfOptions) (*SPARQLPerf, error) {
	lake := lakegen.Generate(o.servingSpec())
	tables := lakeTables(lake)
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	eng := sparql.NewEngine(plat.Core().Store)

	queries := []struct{ name, src string }{
		{"int-columns", `SELECT ?t ?c ?n WHERE {
			?t a kglids:Table .
			?c kglids:isPartOf ?t ; kglids:name ?n ; kglids:dataType "int" . }`},
		{"similarity-join", `SELECT ?c ?d ?t WHERE {
			?c kglids:contentSimilarity ?d . ?d kglids:isPartOf ?t . ?t a kglids:Table . }`},
		{"keyword-filter", `SELECT ?t ?n WHERE {
			?t a kglids:Table ; kglids:name ?n . FILTER(CONTAINS(LCASE(?n), ".csv") && REGEX(?n, "_t0", "i")) }`},
		{"type-histogram", `SELECT ?dt (COUNT(?c) AS ?n) WHERE {
			?c a kglids:Column ; kglids:dataType ?dt . } GROUP BY ?dt ORDER BY DESC(?n)`},
	}

	report := &SPARQLPerf{Experiment: "sparql", Tables: len(tables), Triples: plat.Stats().Triples}
	for _, q := range queries {
		parsed, err := sparql.Parse(q.src)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", q.name, err)
		}
		ref, err := eng.ExecReference(parsed)
		if err != nil {
			return nil, fmt.Errorf("%s (reference): %v", q.name, err)
		}
		ids, err := eng.Exec(parsed)
		if err != nil {
			return nil, fmt.Errorf("%s (compiled): %v", q.name, err)
		}
		if err := sameRows(ref, ids); err != nil {
			return nil, fmt.Errorf("%s: %v", q.name, err)
		}

		if _, err := eng.Query(q.src); err != nil { // warm the result cache
			return nil, err
		}
		med, err := MedianMicros(o.reps(),
			func() error { _, err := eng.ExecReference(parsed); return err },
			func() error { _, err := eng.Exec(parsed); return err },
			func() error { _, err := eng.Query(q.src); return err },
		)
		if err != nil {
			return nil, err
		}
		termUS, idUS, cachedUS := med[0], med[1], med[2]

		speedup := 0.0
		if idUS > 0 {
			speedup = termUS / idUS
		}
		report.Queries = append(report.Queries, SPARQLQueryPerf{
			Name: q.name, Query: q.src, Rows: len(ids.Rows),
			TermUS: termUS, IDUS: idUS, CachedUS: cachedUS, Speedup: speedup,
		})
	}

	// Morsel-driven parallelism on the widest discovery join: the same
	// 4-pattern query at 1 worker (the serial oracle) and at the configured
	// width, with result equivalence asserted before timing. The leading
	// pattern's candidate domain (similarity-edge subjects) partitions
	// across workers; speedup approaches the width on an idle multi-core
	// box and honestly reports ~1.0 when GOMAXPROCS=1.
	const discoveryQ = `SELECT ?c ?d ?t ?n WHERE {
		?c kglids:contentSimilarity ?d . ?d kglids:isPartOf ?t .
		?t a kglids:Table ; kglids:name ?n . }`
	parsed, err := sparql.Parse(discoveryQ)
	if err != nil {
		return nil, fmt.Errorf("discovery-join: %v", err)
	}
	workers := o.queryWorkers()
	eng.SetWorkers(1)
	serialRes, err := eng.Exec(parsed)
	if err != nil {
		return nil, fmt.Errorf("discovery-join (serial): %v", err)
	}
	eng.SetWorkers(workers)
	parallelRes, err := eng.Exec(parsed)
	if err != nil {
		return nil, fmt.Errorf("discovery-join (%d workers): %v", workers, err)
	}
	if err := sameRows(serialRes, parallelRes); err != nil {
		return nil, fmt.Errorf("discovery-join: parallel diverges from serial: %v", err)
	}
	med, err := MedianMicros(o.reps(),
		func() error { eng.SetWorkers(1); _, err := eng.Exec(parsed); return err },
		func() error { eng.SetWorkers(workers); _, err := eng.Exec(parsed); return err },
	)
	if err != nil {
		return nil, err
	}
	report.Workers = workers
	report.SerialUS, report.ParallelUS = med[0], med[1]
	if report.ParallelUS > 0 {
		report.ParallelSpeedup = report.SerialUS / report.ParallelUS
	}
	return report, nil
}

// ServerEndpointPerf is one endpoint's row of the server experiment.
type ServerEndpointPerf struct {
	Name     string  `json:"name"`
	MedianUS float64 `json:"median_us"`
}

// ServerPerf is the server experiment's result: end-to-end /api/v1 latency
// through the typed client over a loopback listener.
type ServerPerf struct {
	Experiment       string               `json:"experiment"`
	Tables           int                  `json:"tables"`
	Triples          int                  `json:"triples"`
	Endpoints        []ServerEndpointPerf `json:"endpoints"`
	IngestRoundTrip  float64              `json:"ingest_roundtrip_ms"`
	DeleteRoundTrip  float64              `json:"delete_roundtrip_ms"`
	ConditionalReads bool                 `json:"conditional_reads"`
	// InstrumentOverheadPct is the relative request-latency cost of the
	// metrics/tracing middleware: instrumented vs DisableMetrics on the
	// same platform and route. Clamped at 0 (never negative) and gated
	// at 2% by experiments.Compare.
	InstrumentOverheadPct float64 `json:"instrument_overhead_pct"`
	InstrumentedUS        float64 `json:"instrumented_us"`
	UninstrumentedUS      float64 `json:"uninstrumented_us"`
}

// Result flattens the experiment into the trajectory schema.
func (p *ServerPerf) Result() PerfResult {
	metrics := map[string]float64{
		"ingest_roundtrip_ms":     p.IngestRoundTrip,
		"delete_roundtrip_ms":     p.DeleteRoundTrip,
		"instrument_overhead_pct": p.InstrumentOverheadPct,
	}
	for _, ep := range p.Endpoints {
		metrics[ep.Name+"_us"] = ep.MedianUS
	}
	return PerfResult{Experiment: "server", Metrics: metrics}
}

// RunServerPerf measures end-to-end /api/v1 latency through the typed
// client: handler mounted on a loopback listener, every number includes
// routing, middleware, JSON encode, network round-trip, and client-side
// DTO decode. Steady-state reads revalidate with If-None-Match (the client
// caches ETag'd bodies), which is the latency a polling client actually
// sees.
func RunServerPerf(o PerfOptions) (*ServerPerf, error) {
	lake := lakegen.Generate(o.httpSpec())
	tables := lakeTables(lake)
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 8})
	defer mgr.Close()
	ts := httptest.NewServer(server.New(plat, server.Options{Ingest: mgr}))
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	q := lake.QueryTables[0]
	tableID := lake.Dataset[q] + "/" + q
	const sparqlQ = `SELECT ?t ?n WHERE { ?t a kglids:Table ; kglids:name ?n . }`

	endpoints := []struct {
		name string
		call func() error
	}{
		{"healthz", func() error { _, err := c.Health(ctx); return err }},
		{"stats", func() error { _, err := c.Stats(ctx); return err }},
		{"tables", func() error { _, err := c.Tables(ctx, client.PageOpts{}); return err }},
		{"search", func() error { _, err := c.Search(ctx, q[:3], client.PageOpts{}); return err }},
		{"unionable", func() error { _, err := c.Unionable(ctx, tableID, 10, client.PageOpts{}); return err }},
		{"similar", func() error { _, err := c.Similar(ctx, tableID, 10, client.PageOpts{}); return err }},
		{"sparql", func() error { _, err := c.SPARQL(ctx, sparqlQ); return err }},
	}
	fns := make([]func() error, len(endpoints))
	for i := range endpoints {
		fns[i] = endpoints[i].call
	}
	// Warm caches (server result cache, client ETag cache) once so the
	// medians report steady-state serving.
	for _, fn := range fns {
		if err := fn(); err != nil {
			return nil, err
		}
	}
	med, err := MedianMicros(o.reps(), fns...)
	if err != nil {
		return nil, err
	}

	report := &ServerPerf{
		Experiment: "server", Tables: len(tables), Triples: plat.Stats().Triples,
		ConditionalReads: true,
	}
	for i, ep := range endpoints {
		report.Endpoints = append(report.Endpoints, ServerEndpointPerf{Name: ep.name, MedianUS: med[i]})
	}

	// One asynchronous mutation round-trip: accept → queue → profile →
	// splice → observed done, through POST /api/v1/ingest + job polling.
	newTable := client.IngestTable{
		Dataset: "bench", Name: "live.csv",
		Columns: []client.IngestColumn{
			{Name: "k", Values: []any{"a", "b", "c", "d", "e", "f"}},
			{Name: "v", Values: []any{1, 2, 3, 4, 5, 6}},
		},
	}
	start := time.Now()
	ref, err := c.Ingest(ctx, []client.IngestTable{newTable})
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitJob(ctx, ref.Job, 5*time.Millisecond); err != nil {
		return nil, err
	}
	report.IngestRoundTrip = float64(time.Since(start).Microseconds()) / 1e3

	start = time.Now()
	ref, err = c.DeleteTable(ctx, "bench/live.csv")
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitJob(ctx, ref.Job, 5*time.Millisecond); err != nil {
		return nil, err
	}
	report.DeleteRoundTrip = float64(time.Since(start).Microseconds()) / 1e3

	probePaths := []string{
		"/api/v1/tables?limit=50",
		"/api/v1/search?q=" + url.QueryEscape(q[:3]),
		"/api/v1/unionable?table=" + url.QueryEscape(tableID) + "&k=10",
	}
	instrumented, bare, err := measureInstrumentOverhead(plat, probePaths, o.reps())
	if err != nil {
		return nil, err
	}
	report.InstrumentedUS = instrumented
	report.UninstrumentedUS = bare
	if bare > 0 && instrumented > bare {
		report.InstrumentOverheadPct = (instrumented - bare) / bare * 100
	}
	return report, nil
}

// measureInstrumentOverhead A/B-tests the observability middleware: two
// handlers over the same platform, one full (metrics + tracing), one with
// DisableMetrics, hit in-process (no listener, no client) so the delta is
// the middleware itself rather than network jitter. The probes are a mix
// of real read routes — listing, keyword search, unionable ranking —
// each doing routing, store reads, and JSON encode per request, so the
// reported percentage is relative to representative serving work, not
// to an empty handler.
//
// The per-request instrumentation delta is a fraction of a microsecond;
// against tens of microseconds of handler work it sits inside both
// scheduler noise and per-process code/heap layout effects, so a direct
// A/B on the representative routes is unstable by more than the value
// being measured. The estimator therefore decomposes the ratio:
//
//   - The numerator (middleware cost) is measured where it dominates:
//     both arms probe /api/v1/healthz, whose handler does almost
//     nothing, so the ~15% relative delta there survives percent-level
//     layout noise. Each sample is a multi-millisecond window — long
//     enough that ambient interference (GC, sysmon, neighbor processes
//     on a small machine) averages into both arms roughly equally
//     instead of poisoning a short batch outright — and windows run in
//     alternating-order pairs whose per-pair difference is taken. The
//     delta is the median of those paired differences, which discards
//     the occasional window a GC cycle or scrape did land in. (A
//     min-over-short-batches estimator was tried first; on a single-CPU
//     box interference is frequent enough that no batch is clean and
//     the min never converges.)
//   - The denominator (representative request cost) is the per-arm
//     minimum over the mixed real probes on the instrumented handler.
//
// The reported pair is the representative latency and the same minus
// the measured delta, so the percentage and the two absolute numbers
// stay mutually consistent.
func measureInstrumentOverhead(plat *kglids.Platform, paths []string, reps int) (instrumented, bare float64, err error) {
	full := server.New(plat, server.Options{})
	off := server.New(plat, server.Options{DisableMetrics: true})
	probe := func(h http.Handler, paths []string, batch int) (float64, error) {
		start := time.Now()
		for i := 0; i < batch; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, paths[i%len(paths)], nil))
			if rec.Code != http.StatusOK {
				return 0, fmt.Errorf("overhead probe %s: status %d", paths[i%len(paths)], rec.Code)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / 1e3 / float64(batch), nil
	}
	// The trivial route runs in ~1µs, so its windows are long (4096
	// requests, a few milliseconds) so that ambient interference averages
	// into both arms instead of dominating a window; the mixed routes run
	// tens of µs each and keep short batches suited to a min estimator.
	const trivialWindow, mixedBatch = 4096, 32
	healthz := []string{"/api/v1/healthz"}
	// Warm both arms (route caches, allocator) before sampling.
	for _, h := range []http.Handler{full, off} {
		if _, err := probe(h, healthz, trivialWindow); err != nil {
			return 0, 0, err
		}
		if _, err := probe(h, paths, mixedBatch); err != nil {
			return 0, 0, err
		}
	}
	pairs := reps * 4
	if pairs < 96 {
		pairs = 96
	}
	diffs := make([]float64, 0, pairs)
	instrumented = math.Inf(1)
	for i := 0; i < pairs; i++ {
		handlers := []http.Handler{full, off}
		sign := 1.0
		if i%2 == 1 {
			handlers[0], handlers[1] = handlers[1], handlers[0]
			sign = -1.0
		}
		var pair [2]float64
		for j, h := range handlers {
			t, err := probe(h, healthz, trivialWindow)
			if err != nil {
				return 0, 0, err
			}
			pair[j] = t
		}
		diffs = append(diffs, sign*(pair[0]-pair[1]))
		// Sample the representative denominator between pairs; a min
		// works there because each batch is short relative to the
		// interference rate and the quantity is large enough that the
		// occasional contaminated batch simply loses to a clean one.
		t, err := probe(full, paths, mixedBatch)
		if err != nil {
			return 0, 0, err
		}
		instrumented = math.Min(instrumented, t)
	}
	sort.Float64s(diffs)
	delta := diffs[len(diffs)/2]
	if delta < 0 {
		delta = 0
	}
	return instrumented, instrumented - delta, nil
}

// EdgesLakePerf is one lake size's row of the edges experiment.
type EdgesLakePerf struct {
	Columns            int     `json:"columns"`
	Tables             int     `json:"tables"`
	Edges              int     `json:"edges"`
	ExhaustiveMS       float64 `json:"exhaustive_ms"`
	BlockedMS          float64 `json:"blocked_ms"`
	Speedup            float64 `json:"speedup"`
	ExhaustivePeakPair int64   `json:"exhaustive_peak_pairs"`
	BlockedPeakPair    int64   `json:"blocked_peak_pairs"`
	PairsCompared      int64   `json:"pairs_compared"`
	Identical          bool    `json:"identical"`
}

// EdgesPerf is the edges experiment's result: the blocked,
// candidate-pruned similarity pipeline against the exhaustive oracle over
// lakes of growing width.
type EdgesPerf struct {
	Experiment string          `json:"experiment"`
	Lakes      []EdgesLakePerf `json:"lakes"`
}

// Result flattens the experiment into the trajectory schema, keyed by lake
// width.
func (p *EdgesPerf) Result() PerfResult {
	metrics := map[string]float64{}
	for _, l := range p.Lakes {
		key := fmt.Sprintf("%dt", l.Tables)
		metrics["blocked_"+key+"_ms"] = l.BlockedMS
		metrics["exhaustive_"+key+"_ms"] = l.ExhaustiveMS
		metrics[key+"_speedup"] = l.Speedup
		metrics[key+"_edges"] = float64(l.Edges)
	}
	return PerfResult{Experiment: "edges", Metrics: metrics}
}

// RunEdgesPerf measures Algorithm 3's pairwise phase on generated lakes of
// growing width: the exhaustive O(n²) oracle against the blocked,
// candidate-pruned pipeline, reporting median build time and the peak
// number of pairs buffered, and verifying the two produce identical edge
// sets.
func RunEdgesPerf(o PerfOptions) (*EdgesPerf, error) {
	const reps = 3
	report := &EdgesPerf{Experiment: "edges"}
	for _, tables := range o.edgeLakeSizes() {
		lake := lakegen.WideLake(tables, 18, 30, 59)
		prof := profiler.New()
		var ptables []profiler.Table
		for _, df := range lake.Tables {
			ptables = append(ptables, profiler.Table{Dataset: lake.Dataset[df.Name], Frame: df})
		}
		profiles := prof.ProfileAll(ptables)

		b := schema.NewBuilder()
		var exhaustive, blocked []schema.Edge
		exhaustiveMS := make([]float64, 0, reps)
		blockedMS := make([]float64, 0, reps)
		var exhaustiveStats, blockedStats schema.EdgeBuildStats
		for r := 0; r < reps; r++ { // interleaved, median-of-reps
			start := time.Now()
			exhaustive = b.SimilarityEdgesExhaustive(profiles)
			exhaustiveMS = append(exhaustiveMS, float64(time.Since(start).Microseconds())/1e3)
			exhaustiveStats = b.LastStats()

			start = time.Now()
			blocked = b.SimilarityEdges(profiles)
			blockedMS = append(blockedMS, float64(time.Since(start).Microseconds())/1e3)
			blockedStats = b.LastStats()
		}
		sort.Float64s(exhaustiveMS)
		sort.Float64s(blockedMS)

		identical := len(exhaustive) == len(blocked)
		if identical {
			for i := range exhaustive {
				if exhaustive[i] != blocked[i] {
					identical = false
					break
				}
			}
		}
		if !identical {
			return nil, fmt.Errorf("%d-column lake: blocked edges diverge from exhaustive (%d vs %d)",
				len(profiles), len(blocked), len(exhaustive))
		}
		res := EdgesLakePerf{
			Columns:            len(profiles),
			Tables:             len(lake.Tables),
			Edges:              len(blocked),
			ExhaustiveMS:       exhaustiveMS[reps/2],
			BlockedMS:          blockedMS[reps/2],
			ExhaustivePeakPair: exhaustiveStats.PeakPairBuffer,
			BlockedPeakPair:    blockedStats.PeakPairBuffer,
			PairsCompared:      blockedStats.PairsCompared,
			Identical:          true,
		}
		if res.BlockedMS > 0 {
			res.Speedup = res.ExhaustiveMS / res.BlockedMS
		}
		report.Lakes = append(report.Lakes, res)
	}
	return report, nil
}

// sameRows asserts two results carry the same solution multiset,
// irrespective of enumeration order (ORDER BY ties may interleave
// differently between engines).
func sameRows(ref, got *sparql.Result) error {
	canon := func(r *sparql.Result) []string {
		vars := append([]string(nil), r.Vars...)
		sort.Strings(vars)
		rows := make([]string, len(r.Rows))
		for i, row := range r.Rows {
			var sb strings.Builder
			for _, v := range vars {
				if t, ok := row[v]; ok {
					sb.WriteString(v + "=" + t.Key())
				}
				sb.WriteByte('|')
			}
			rows[i] = sb.String()
		}
		sort.Strings(rows)
		return rows
	}
	a, b := canon(got), canon(ref)
	if len(a) != len(b) {
		return fmt.Errorf("compiled %d rows, reference %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("row %d differs: compiled %q, reference %q", i, a[i], b[i])
		}
	}
	return nil
}
