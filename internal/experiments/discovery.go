// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) over the synthetic workload replicas: data
// discovery (Table 1, Table 2, Figure 5, Figure 6), pipeline abstraction
// (Figure 4, Table 3, Table 4), on-demand automation (Table 5, Figure 7,
// Table 6, Figure 8), and AutoML (Figure 9). Each Run* function returns
// structured rows; the Format* helpers print them in the paper's layout.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"kglids/internal/baselines"
	"kglids/internal/core"
	"kglids/internal/embed"
	"kglids/internal/lakegen"
	"kglids/internal/profiler"
)

// BenchmarkStats is one column of Table 1.
type BenchmarkStats struct {
	Name          string
	SizeMB        float64
	Tables        int
	QueryTables   int
	AvgUnionable  float64
	AvgRows       float64
	TotalColumns  int
	TypeBreakdown map[embed.Type]int
}

// Specs returns the four benchmark replicas in Table 1 order.
func Specs() []lakegen.Spec {
	return []lakegen.Spec{lakegen.D3LSmall, lakegen.TUSSmall, lakegen.SANTOSSmall, lakegen.SANTOSLarge}
}

// RunTable1 generates each benchmark and computes its statistics with the
// KGLiDS profiler (the paper notes the type breakdown comes from their
// profiler).
func RunTable1() []BenchmarkStats { return RunTable1Subset(Specs()) }

// RunTable1Subset computes Table 1 statistics for the given specs.
func RunTable1Subset(specs []lakegen.Spec) []BenchmarkStats {
	var out []BenchmarkStats
	for _, spec := range specs {
		b := lakegen.Generate(spec)
		p := profiler.New()
		var tables []profiler.Table
		for _, df := range b.Tables {
			tables = append(tables, profiler.Table{Dataset: b.Dataset[df.Name], Frame: df})
		}
		profiles := p.ProfileAll(tables)
		out = append(out, BenchmarkStats{
			Name:          spec.Name,
			SizeMB:        float64(b.SizeBytes()) / (1 << 20),
			Tables:        len(b.Tables),
			QueryTables:   len(b.QueryTables),
			AvgUnionable:  b.AvgUnionable(),
			AvgRows:       b.AvgRows(),
			TotalColumns:  b.TotalColumns(),
			TypeBreakdown: profiler.TypeBreakdown(profiles),
		})
	}
	return out
}

// FormatTable1 renders Table 1.
func FormatTable1(stats []BenchmarkStats) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Data Discovery Benchmarks (scaled replicas)\n")
	fmt.Fprintf(&sb, "%-28s", "Statistic")
	for _, s := range stats {
		fmt.Fprintf(&sb, "%14s", s.Name)
	}
	sb.WriteByte('\n')
	row := func(label string, f func(BenchmarkStats) string) {
		fmt.Fprintf(&sb, "%-28s", label)
		for _, s := range stats {
			fmt.Fprintf(&sb, "%14s", f(s))
		}
		sb.WriteByte('\n')
	}
	row("Size (MB)", func(s BenchmarkStats) string { return fmt.Sprintf("%.1f", s.SizeMB) })
	row("No. tables", func(s BenchmarkStats) string { return fmt.Sprintf("%d", s.Tables) })
	row("No. query tables", func(s BenchmarkStats) string { return fmt.Sprintf("%d", s.QueryTables) })
	row("Avg. No. unionable tables", func(s BenchmarkStats) string { return fmt.Sprintf("%.0f", s.AvgUnionable) })
	row("Avg. No. rows per table", func(s BenchmarkStats) string { return fmt.Sprintf("%.0f", s.AvgRows) })
	row("Total columns", func(s BenchmarkStats) string { return fmt.Sprintf("%d", s.TotalColumns) })
	for _, typ := range embed.AllTypes {
		t := typ
		row(string(t)+" cols.", func(s BenchmarkStats) string { return fmt.Sprintf("%d", s.TypeBreakdown[t]) })
	}
	return sb.String()
}

// DiscoverySystemRun is one (benchmark, system) cell of Table 2 plus the
// Figure 5 curves.
type DiscoverySystemRun struct {
	Benchmark  string
	System     string
	Preprocess time.Duration
	AvgQuery   time.Duration
	// PrecisionAtK / RecallAtK, keyed by k.
	PrecisionAtK map[int]float64
	RecallAtK    map[int]float64
}

// KSweep returns the Figure 5 k-values for a benchmark, scaled to the
// replica family sizes.
func KSweep(name string) []int {
	switch {
	case strings.HasPrefix(name, "D3L"):
		return []int{1, 2, 3, 5, 7, 9, 11, 13, 15}
	case strings.HasPrefix(name, "TUS"):
		return []int{1, 2, 3, 4, 5, 6, 7, 8}
	default: // SANTOS
		return []int{1, 2, 3, 4, 5}
	}
}

// prAt computes average precision/recall at each k over the query tables.
func prAt(b *lakegen.Benchmark, ks []int, retrieve func(query string, k int) []string) (map[int]float64, map[int]float64) {
	precision := map[int]float64{}
	recall := map[int]float64{}
	for _, k := range ks {
		var pSum, rSum float64
		for _, q := range b.QueryTables {
			truth := map[string]bool{}
			for _, o := range b.GroundTruth[q] {
				truth[o] = true
			}
			hits := 0
			results := retrieve(q, k)
			for _, r := range results {
				if truth[r] {
					hits++
				}
			}
			pSum += float64(hits) / float64(k)
			if len(truth) > 0 {
				rSum += float64(hits) / float64(len(truth))
			}
		}
		precision[k] = pSum / float64(len(b.QueryTables))
		recall[k] = rSum / float64(len(b.QueryTables))
	}
	return precision, recall
}

// RunDiscoveryBenchmark runs the three systems on one benchmark replica,
// producing a Table 2 row group and Figure 5 curves. Every system is
// preprocessed and queried through the shared baselines.Discoverer
// interface, so the comparison cannot drift between methods.
func RunDiscoveryBenchmark(spec lakegen.Spec) []DiscoverySystemRun {
	b := lakegen.Generate(spec)
	ks := KSweep(spec.Name)
	var out []DiscoverySystemRun
	for _, d := range []baselines.Discoverer{baselines.NewSantos(), baselines.NewStarmie(), baselines.NewKGLiDS()} {
		out = append(out, runDiscoverer(spec.Name, b, ks, d))
	}
	return out
}

// runDiscoverer preprocesses the lake with one method and sweeps the
// Figure 5 k-values over the query tables.
func runDiscoverer(benchName string, b *lakegen.Benchmark, ks []int, d baselines.Discoverer) DiscoverySystemRun {
	start := time.Now()
	d.Preprocess(b)
	pre := time.Since(start)
	run := DiscoverySystemRun{Benchmark: benchName, System: d.Name(), Preprocess: pre}
	start = time.Now()
	run.PrecisionAtK, run.RecallAtK = prAt(b, ks, d.Unionable)
	run.AvgQuery = time.Since(start) / time.Duration(len(ks)*len(b.QueryTables))
	return run
}

// RunTable2AndFigure5 runs all systems over the given benchmark specs.
func RunTable2AndFigure5(specs []lakegen.Spec) []DiscoverySystemRun {
	var out []DiscoverySystemRun
	for _, spec := range specs {
		out = append(out, RunDiscoveryBenchmark(spec)...)
	}
	return out
}

// FormatTable2 renders preprocessing and average query times.
func FormatTable2(runs []DiscoverySystemRun) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Preprocessing and average query time\n")
	fmt.Fprintf(&sb, "%-16s %-10s %14s %14s\n", "Benchmark", "System", "Preprocessing", "Avg. Query")
	for _, r := range runs {
		fmt.Fprintf(&sb, "%-16s %-10s %14s %14s\n", r.Benchmark, r.System, r.Preprocess.Round(time.Millisecond), r.AvgQuery.Round(time.Microsecond))
	}
	return sb.String()
}

// FormatFigure5 renders the precision/recall series per benchmark.
func FormatFigure5(runs []DiscoverySystemRun) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Average precision and recall of unionable table discovery\n")
	byBench := map[string][]DiscoverySystemRun{}
	var order []string
	for _, r := range runs {
		if _, ok := byBench[r.Benchmark]; !ok {
			order = append(order, r.Benchmark)
		}
		byBench[r.Benchmark] = append(byBench[r.Benchmark], r)
	}
	for _, bench := range order {
		fmt.Fprintf(&sb, "\n[%s]\n", bench)
		ks := KSweep(bench)
		fmt.Fprintf(&sb, "%-10s", "k")
		for _, k := range ks {
			fmt.Fprintf(&sb, "%8d", k)
		}
		sb.WriteByte('\n')
		for _, r := range byBench[bench] {
			fmt.Fprintf(&sb, "P %-8s", r.System)
			for _, k := range ks {
				fmt.Fprintf(&sb, "%8.3f", r.PrecisionAtK[k])
			}
			sb.WriteByte('\n')
		}
		for _, r := range byBench[bench] {
			fmt.Fprintf(&sb, "R %-8s", r.System)
			for _, k := range ks {
				fmt.Fprintf(&sb, "%8.3f", r.RecallAtK[k])
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// RunFigure6 is the ablation study on the TUS replica: full KGLiDS,
// fine-grained content-only (no labels) with and without subsampling, and
// coarse-grained models.
func RunFigure6() []DiscoverySystemRun {
	spec := lakegen.TUSSmall
	b := lakegen.Generate(spec)
	ks := KSweep(spec.Name)
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"KGLiDS", core.DefaultConfig()},
		{"Fine-Grained (No Subsampling)", func() core.Config {
			c := core.DefaultConfig()
			c.SkipLabelSimilarity = true
			c.CoLR = &embed.CoLR{Subsample: false}
			return c
		}()},
		{"Fine-Grained", func() core.Config {
			c := core.DefaultConfig()
			c.SkipLabelSimilarity = true
			c.CoLR = embed.NewCoLR()
			return c
		}()},
		{"Coarse-Grained", func() core.Config {
			c := core.DefaultConfig()
			c.SkipLabelSimilarity = true
			c.CoLR = &embed.CoLR{Coarse: true, Subsample: true, SampleFraction: 0.10, MinSample: 1000}
			return c
		}()},
	}
	var out []DiscoverySystemRun
	for _, c := range configs {
		out = append(out, runDiscoverer(spec.Name, b, ks, baselines.NewKGLiDSWith(c.label, c.cfg)))
	}
	return out
}

// FormatFigure6 renders the ablation curves.
func FormatFigure6(runs []DiscoverySystemRun) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Ablation study for table union search on TUS Small\n")
	ks := KSweep("TUS")
	fmt.Fprintf(&sb, "%-32s", "k")
	for _, k := range ks {
		fmt.Fprintf(&sb, "%8d", k)
	}
	sb.WriteByte('\n')
	for _, r := range runs {
		fmt.Fprintf(&sb, "P %-30s", r.System)
		for _, k := range ks {
			fmt.Fprintf(&sb, "%8.3f", r.PrecisionAtK[k])
		}
		sb.WriteByte('\n')
	}
	for _, r := range runs {
		fmt.Fprintf(&sb, "R %-30s", r.System)
		for _, k := range ks {
			fmt.Fprintf(&sb, "%8.3f", r.RecallAtK[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// memDelta measures allocation growth around fn (the Figure 7/8 memory
// metric).
func memDelta(fn func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

// sortRunsByBenchmark orders runs deterministically.
func sortRunsByBenchmark(runs []DiscoverySystemRun) {
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Benchmark < runs[j].Benchmark })
}
