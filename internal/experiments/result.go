package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// TrajectorySchemaVersion is the current BENCH_*.json schema version.
// Decoding rejects files written by a newer schema.
const TrajectorySchemaVersion = 1

// Machine records where a trajectory was measured. Perf numbers are only
// comparable between trajectories from like-for-like machines; quality
// numbers are deterministic and comparable everywhere.
type Machine struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
}

// QualityResult is one (method, task, lake) cell of the quality section:
// discovery precision/recall/F1 at a fixed k against constructed ground
// truth, plus the method's preprocessing and per-query cost.
type QualityResult struct {
	Method       string  `json:"method"`
	Task         string  `json:"task"` // "unionable" or "joinable"
	Lake         string  `json:"lake"`
	K            int     `json:"k"`
	Precision    float64 `json:"precision"`
	Recall       float64 `json:"recall"`
	F1           float64 `json:"f1"`
	PreprocessMS float64 `json:"preprocess_ms"`
	AvgQueryUS   float64 `json:"avg_query_us"`
}

// key identifies a quality cell across trajectories.
func (q QualityResult) key() string {
	return fmt.Sprintf("%s/%s/%s@k=%d", q.Lake, q.Task, q.Method, q.K)
}

// PerfResult is one perf experiment's scalar medians, keyed by metric
// name. Unit suffixes carry comparison semantics: *_ms/*_us/*_mib are
// lower-is-better, *speedup* is higher-is-better, anything else (counts,
// sizes of the workload itself) is informational.
type PerfResult struct {
	Experiment string             `json:"experiment"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Trajectory is the top-level BENCH_*.json document: one measured point of
// the repo's performance and quality story.
type Trajectory struct {
	SchemaVersion int             `json:"schema_version"`
	GeneratedAt   string          `json:"generated_at"` // RFC 3339
	GitSHA        string          `json:"git_sha"`
	Quick         bool            `json:"quick"`
	Machine       Machine         `json:"machine"`
	Quality       []QualityResult `json:"quality"`
	Perf          []PerfResult    `json:"perf"`
}

// EncodeTrajectory renders a trajectory in canonical form: sections sorted,
// two-space indentation, trailing newline. Encoding the decode of an
// encoded trajectory reproduces it byte for byte (struct field order is
// fixed, map keys are sorted by encoding/json, and float64 round-trips
// through its shortest decimal form).
func EncodeTrajectory(t *Trajectory) ([]byte, error) {
	if err := validateTrajectory(t); err != nil {
		return nil, err
	}
	c := *t
	c.Quality = append([]QualityResult(nil), t.Quality...)
	sort.Slice(c.Quality, func(i, j int) bool { return c.Quality[i].key() < c.Quality[j].key() })
	c.Perf = append([]PerfResult(nil), t.Perf...)
	sort.Slice(c.Perf, func(i, j int) bool { return c.Perf[i].Experiment < c.Perf[j].Experiment })
	out, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// DecodeTrajectory parses and validates a BENCH_*.json document. It is
// strict: unknown fields, trailing content, unsupported schema versions,
// and out-of-range metrics are all rejected, so the compare gate cannot
// silently accept a malformed or truncated trajectory.
func DecodeTrajectory(data []byte) (*Trajectory, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Trajectory
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trajectory: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("trajectory: trailing content after document")
	}
	if err := validateTrajectory(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// validateTrajectory enforces the schema invariants shared by encode and
// decode.
func validateTrajectory(t *Trajectory) error {
	if t.SchemaVersion < 1 || t.SchemaVersion > TrajectorySchemaVersion {
		return fmt.Errorf("trajectory: unsupported schema_version %d (supported: 1..%d)",
			t.SchemaVersion, TrajectorySchemaVersion)
	}
	if t.GeneratedAt != "" {
		if _, err := time.Parse(time.RFC3339, t.GeneratedAt); err != nil {
			return fmt.Errorf("trajectory: generated_at: %w", err)
		}
	}
	seenQ := map[string]bool{}
	for _, q := range t.Quality {
		if q.Method == "" || q.Lake == "" || q.Task == "" {
			return fmt.Errorf("trajectory: quality row with empty method/task/lake")
		}
		if q.K < 1 {
			return fmt.Errorf("trajectory: quality row %s: k must be >= 1", q.key())
		}
		for name, v := range map[string]float64{"precision": q.Precision, "recall": q.Recall, "f1": q.F1} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("trajectory: quality row %s: %s %v out of [0,1]", q.key(), name, v)
			}
		}
		if q.PreprocessMS < 0 || q.AvgQueryUS < 0 {
			return fmt.Errorf("trajectory: quality row %s: negative timing", q.key())
		}
		if seenQ[q.key()] {
			return fmt.Errorf("trajectory: duplicate quality row %s", q.key())
		}
		seenQ[q.key()] = true
	}
	seenP := map[string]bool{}
	for _, p := range t.Perf {
		if p.Experiment == "" {
			return fmt.Errorf("trajectory: perf section with empty experiment name")
		}
		if seenP[p.Experiment] {
			return fmt.Errorf("trajectory: duplicate perf experiment %q", p.Experiment)
		}
		seenP[p.Experiment] = true
		for k, v := range p.Metrics {
			if k == "" {
				return fmt.Errorf("trajectory: perf %q: empty metric name", p.Experiment)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("trajectory: perf %q: metric %q value %v out of range", p.Experiment, k, v)
			}
		}
	}
	return nil
}

// Tolerance is the regression-gate policy. Quality is gated absolutely
// (deterministic seeds make quality reproducible everywhere); perf is
// gated as a fractional slowdown and only meaningful between trajectories
// from like-for-like machines — set Perf <= 0 to disable perf gating (the
// cross-machine CI setting).
type Tolerance struct {
	// Quality is the maximum allowed absolute drop in precision, recall,
	// or F1 for a quality cell present in the old trajectory.
	Quality float64
	// Perf is the allowed fractional slowdown: a lower-is-better metric
	// regresses when new > old*(1+Perf); a speedup metric regresses when
	// new < old/(1+Perf). <= 0 disables perf comparison entirely.
	Perf float64
}

// DefaultTolerance gates quality at two points and perf at a 50% slowdown.
func DefaultTolerance() Tolerance { return Tolerance{Quality: 0.02, Perf: 0.5} }

// Regression is one metric that moved past its tolerance between two
// trajectories. New < 0 means the metric disappeared.
type Regression struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Limit  float64 `json:"limit"` // the bound New violated
}

func (r Regression) String() string {
	if r.New < 0 {
		return fmt.Sprintf("%s: present in old trajectory, missing from new", r.Metric)
	}
	return fmt.Sprintf("%s: %.4g -> %.4g (limit %.4g)", r.Metric, r.Old, r.New, r.Limit)
}

// perfDirection classifies a perf metric key by its unit suffix.
func perfDirection(key string) int {
	switch {
	case strings.Contains(key, "speedup"):
		return +1 // higher is better
	case strings.HasSuffix(key, "_ms") || strings.HasSuffix(key, "_us") || strings.HasSuffix(key, "_mib"):
		return -1 // lower is better
	default:
		return 0 // informational (workload sizes, counts)
	}
}

// perfCaps are absolute bounds on fresh-trajectory metrics, applied no
// matter what the perf tolerance is. The capped metrics are in-process
// ratios (dimensionless percentages), comparable across machines, so
// they stay gated even in the cross-machine CI setting where relative
// perf gating is disabled (-perf-tolerance 0).
var perfCaps = map[string]float64{
	// The observability middleware must cost at most 2% of request
	// latency on a representative read route (docs/OBSERVABILITY.md).
	"server/instrument_overhead_pct": 2.0,
}

// applyPerfCaps checks the fresh trajectory against perfCaps and appends
// a regression per violated cap. Old carries the cap itself so the gate
// output reads "cap 2 exceeded" rather than implying a baseline delta.
func applyPerfCaps(fresh *Trajectory, regs []Regression) []Regression {
	for _, p := range fresh.Perf {
		keys := make([]string, 0, len(p.Metrics))
		for k := range p.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if limit, ok := perfCaps[p.Experiment+"/"+k]; ok && p.Metrics[k] > limit {
				regs = append(regs, Regression{
					Metric: fmt.Sprintf("cap:%s:%s", p.Experiment, k),
					Old:    limit, New: p.Metrics[k], Limit: limit,
				})
			}
		}
	}
	return regs
}

// Compare diffs two trajectories under a tolerance. It returns the
// regressions (a non-empty slice fails the gate) and human-readable notes
// about anything compared loosely or skipped: quality coverage is strict
// (every old quality cell must exist in new), while perf metrics are
// compared on the intersection, with disappearances noted, because quick
// and full runs legitimately cover different experiment sizes. Absolute
// perfCaps on the fresh trajectory are enforced unconditionally, before
// any tolerance is consulted.
func Compare(old, fresh *Trajectory, tol Tolerance) (regs []Regression, notes []string) {
	regs = applyPerfCaps(fresh, regs)
	if old.Quick != fresh.Quick {
		notes = append(notes, fmt.Sprintf("note: comparing quick=%v against quick=%v trajectories", old.Quick, fresh.Quick))
	}
	newQ := map[string]QualityResult{}
	for _, q := range fresh.Quality {
		newQ[q.key()] = q
	}
	for _, oq := range old.Quality {
		nq, ok := newQ[oq.key()]
		if !ok {
			regs = append(regs, Regression{Metric: "quality:" + oq.key(), Old: oq.F1, New: -1})
			continue
		}
		for _, m := range []struct {
			name     string
			old, new float64
		}{
			{"precision", oq.Precision, nq.Precision},
			{"recall", oq.Recall, nq.Recall},
			{"f1", oq.F1, nq.F1},
		} {
			limit := m.old - tol.Quality
			if m.new < limit {
				regs = append(regs, Regression{
					Metric: fmt.Sprintf("quality:%s:%s", oq.key(), m.name),
					Old:    m.old, New: m.new, Limit: limit,
				})
			}
		}
	}

	if tol.Perf <= 0 {
		notes = append(notes, "note: perf gating disabled (perf tolerance <= 0)")
		return regs, notes
	}
	newP := map[string]map[string]float64{}
	for _, p := range fresh.Perf {
		newP[p.Experiment] = p.Metrics
	}
	for _, op := range old.Perf {
		metrics, ok := newP[op.Experiment]
		if !ok {
			notes = append(notes, fmt.Sprintf("note: perf experiment %q missing from new trajectory (not gated)", op.Experiment))
			continue
		}
		keys := make([]string, 0, len(op.Metrics))
		for k := range op.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov := op.Metrics[k]
			nv, ok := metrics[k]
			if !ok {
				notes = append(notes, fmt.Sprintf("note: perf metric %s/%s missing from new trajectory (not gated)", op.Experiment, k))
				continue
			}
			if ov <= 0 {
				continue
			}
			metric := fmt.Sprintf("perf:%s:%s", op.Experiment, k)
			switch perfDirection(k) {
			case -1:
				limit := ov * (1 + tol.Perf)
				if nv > limit {
					regs = append(regs, Regression{Metric: metric, Old: ov, New: nv, Limit: limit})
				}
			case +1:
				limit := ov / (1 + tol.Perf)
				if nv < limit {
					regs = append(regs, Regression{Metric: metric, Old: ov, New: nv, Limit: limit})
				}
			}
		}
	}
	return regs, notes
}

// Demote returns a deep copy of a trajectory with every gated metric
// pushed past any reasonable tolerance: quality scores collapse toward
// zero, lower-is-better perf metrics quadruple, and speedups collapse.
// It exists so CI (and tests) can prove the compare gate actually fails
// on a regressed trajectory.
func Demote(t *Trajectory) *Trajectory {
	c := *t
	c.Quality = append([]QualityResult(nil), t.Quality...)
	for i := range c.Quality {
		c.Quality[i].Precision *= 0.25
		c.Quality[i].Recall *= 0.25
		c.Quality[i].F1 *= 0.25
	}
	c.Perf = make([]PerfResult, 0, len(t.Perf))
	for _, p := range t.Perf {
		metrics := make(map[string]float64, len(p.Metrics))
		for k, v := range p.Metrics {
			switch perfDirection(k) {
			case -1:
				metrics[k] = v * 4
			case +1:
				metrics[k] = v / 4
			default:
				metrics[k] = v
				// Push absolutely-capped metrics past their cap so the
				// self-test proves the cap gate fires too.
				if limit, ok := perfCaps[p.Experiment+"/"+k]; ok {
					metrics[k] = limit * 2
				}
			}
		}
		c.Perf = append(c.Perf, PerfResult{Experiment: p.Experiment, Metrics: metrics})
	}
	return &c
}

// FormatTrajectory renders a human summary of a trajectory: the quality
// table and each perf experiment's headline metrics.
func FormatTrajectory(t *Trajectory) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Trajectory %s (git %s, quick=%v, %s/%s %s cpus=%d)\n",
		t.GeneratedAt, t.GitSHA, t.Quick, t.Machine.OS, t.Machine.Arch, t.Machine.GoVersion, t.Machine.NumCPU)
	if len(t.Quality) > 0 {
		fmt.Fprintf(&sb, "%-12s %-10s %-12s %4s %10s %8s %8s %13s %13s\n",
			"Lake", "Task", "Method", "k", "Precision", "Recall", "F1", "Preproc(ms)", "Query(us)")
		for _, q := range t.Quality {
			fmt.Fprintf(&sb, "%-12s %-10s %-12s %4d %10.3f %8.3f %8.3f %13.1f %13.1f\n",
				q.Lake, q.Task, q.Method, q.K, q.Precision, q.Recall, q.F1, q.PreprocessMS, q.AvgQueryUS)
		}
	}
	for _, p := range t.Perf {
		fmt.Fprintf(&sb, "[%s]", p.Experiment)
		keys := make([]string, 0, len(p.Metrics))
		for k := range p.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%.4g", k, p.Metrics[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
