package experiments

import (
	"fmt"
	"strings"
	"time"

	"kglids/internal/baselines/graphgen"
	"kglids/internal/lakegen"
	"kglids/internal/pipegen"
	"kglids/internal/pipeline"
	"kglids/internal/rdf"
	"kglids/internal/store"
)

// AbstractionResult holds Table 3, Table 4, and Figure 4 outputs for one
// corpus.
type AbstractionResult struct {
	NumPipelines int

	// Table 3 rows.
	KGLiDSTriples   int
	KGLiDSNodes     int
	KGLiDSEdges     int
	KGLiDSSizeMB    float64
	KGLiDSTime      time.Duration
	GraphGenTriples int
	GraphGenNodes   int
	GraphGenEdges   int
	GraphGenSizeMB  float64
	GraphGenTime    time.Duration

	// Table 4: aspect -> triple count per system.
	KGLiDSBreakdown   map[string]int
	GraphGenBreakdown map[string]int

	// Figure 4: top libraries.
	TopLibraries []pipeline.LibraryCount
}

// Corpus generates the pipeline corpus used by the abstraction and
// automation experiments: scripts over a set of generated task datasets.
func Corpus(numPipelines int, seed int64) ([]pipegen.Generated, []*lakegen.TaskDataset) {
	var datasets []pipegen.Dataset
	var tasks []*lakegen.TaskDataset
	for i := 0; i < 10; i++ {
		task := lakegen.GenerateTask(lakegen.TaskSpec{
			ID: 100 + i, Name: fmt.Sprintf("corpus_ds_%02d", i),
			Rows: 150 + i*40, NumFeatures: 4 + i%4, CatFeatures: 1 + i%2,
			Classes: 2 + i%2, NullRate: 0.05, Seed: seed + int64(i),
		})
		tasks = append(tasks, task)
		datasets = append(datasets, pipegen.FrameDataset(task.Name, task.Frame, task.Target))
	}
	return pipegen.Generate(pipegen.Options{NumPipelines: numPipelines, Datasets: datasets, Seed: seed}), tasks
}

// RunAbstraction abstracts the corpus with KGLiDS and GraphGen4Code,
// producing Tables 3/4 and Figure 4.
func RunAbstraction(numPipelines int) AbstractionResult {
	corpus, _ := Corpus(numPipelines, 900)
	res := AbstractionResult{NumPipelines: len(corpus)}

	// KGLiDS abstraction.
	stK := store.New()
	abstractor := pipeline.NewAbstractor()
	builder := pipeline.NewGraphBuilder(nil)
	start := time.Now()
	var abss []*pipeline.Abstraction
	for _, g := range corpus {
		abss = append(abss, abstractor.Abstract(g.Script))
	}
	for _, abs := range abss {
		builder.BuildGraph(stK, abs)
	}
	res.KGLiDSTime = time.Since(start)
	res.KGLiDSTriples = stK.Len()
	res.KGLiDSNodes = stK.NodeCount()
	res.KGLiDSEdges = stK.PredicateCount()
	res.KGLiDSSizeMB = float64(stK.ApproxBytes()) / (1 << 20)
	res.KGLiDSBreakdown = kglidsBreakdown(stK)
	res.TopLibraries = pipeline.TopLibraries(abss, 10)

	// GraphGen4Code abstraction.
	stG := store.New()
	gen := graphgen.New()
	res.GraphGenBreakdown = map[string]int{}
	start = time.Now()
	for _, g := range corpus {
		r := gen.Abstract(stG, g.Script.ID, g.Script.Source)
		for aspect, n := range r.Breakdown {
			res.GraphGenBreakdown[aspect] += n
		}
	}
	res.GraphGenTime = time.Since(start)
	res.GraphGenTriples = stG.Len()
	res.GraphGenNodes = stG.NodeCount()
	res.GraphGenEdges = stG.PredicateCount()
	res.GraphGenSizeMB = float64(stG.ApproxBytes()) / (1 << 20)
	return res
}

// kglidsBreakdown classifies the LiDS graph's triples into Table 4's
// modelled aspects by predicate.
func kglidsBreakdown(st *store.Store) map[string]int {
	aspectOf := map[string]string{
		rdf.PropReads.Value:           "Dataset reads",
		rdf.PropSubLibraryOf.Value:    "Library hierarchy",
		rdf.RDFType.Value:             "RDF node types",
		rdf.PropReadsColumn.Value:     "Column reads",
		rdf.PropCallsFunction.Value:   "Library calls",
		rdf.PropCallsLibrary.Value:    "Library calls",
		rdf.PropCodeFlow.Value:        "Code flow",
		rdf.PropDataFlow.Value:        "Data flow",
		rdf.PropControlFlowType.Value: "Control flow type",
		rdf.PropHasParameter.Value:    "Func. parameters",
		rdf.PropParameterValue.Value:  "Func. parameters",
		rdf.PropStatementText.Value:   "Statement text",
	}
	out := map[string]int{}
	st.MatchFunc(store.Wildcard, store.Wildcard, store.Wildcard, rdf.DefaultGraph, func(t rdf.Triple) bool {
		aspect, ok := aspectOf[t.Predicate.Value]
		if !ok {
			aspect = "Other metadata"
		}
		out[aspect]++
		return true
	})
	return out
}

// FormatTable3 renders Table 3.
func FormatTable3(r AbstractionResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: RDF graphs and analysis time for %d pipelines\n", r.NumPipelines)
	fmt.Fprintf(&sb, "%-24s %16s %16s\n", "Statistic", "KGLiDS", "GraphGen4Code")
	fmt.Fprintf(&sb, "%-24s %16d %16d\n", "No. triples (edges)", r.KGLiDSTriples, r.GraphGenTriples)
	fmt.Fprintf(&sb, "%-24s %16d %16d\n", "No. unique nodes", r.KGLiDSNodes, r.GraphGenNodes)
	fmt.Fprintf(&sb, "%-24s %16d %16d\n", "No. unique edges", r.KGLiDSEdges, r.GraphGenEdges)
	fmt.Fprintf(&sb, "%-24s %15.2fM %15.2fM\n", "Size (MB)", r.KGLiDSSizeMB, r.GraphGenSizeMB)
	fmt.Fprintf(&sb, "%-24s %16s %16s\n", "Analysis time", r.KGLiDSTime.Round(time.Millisecond), r.GraphGenTime.Round(time.Millisecond))
	reduction := 100 * (1 - float64(r.KGLiDSTriples)/float64(r.GraphGenTriples))
	timeSaving := 100 * (1 - float64(r.KGLiDSTime)/float64(r.GraphGenTime))
	fmt.Fprintf(&sb, "Graph reduction: %.0f%%, analysis time saving: %.0f%%\n", reduction, timeSaving)
	return sb.String()
}

// table4Aspects is the row order of Table 4.
var table4Aspects = []string{
	"Dataset reads", "Library hierarchy", "RDF node types",
	"Statement location", "Variable names", "Func. parameter order",
	"Column reads", "Library calls", "Code flow", "Data flow",
	"Control flow type", "Func. parameters", "Statement text",
	"Other metadata",
}

// FormatTable4 renders Table 4.
func FormatTable4(r AbstractionResult) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Breakdown of graphs by modelled aspect\n")
	fmt.Fprintf(&sb, "%-24s %22s %22s\n", "Modelled Aspect", "KGLiDS", "GraphGen4Code")
	totalK, totalG := 0, 0
	for _, a := range table4Aspects {
		totalK += r.KGLiDSBreakdown[a]
		totalG += r.GraphGenBreakdown[a]
	}
	cell := func(n, total int) string {
		if n == 0 {
			return "-"
		}
		return fmt.Sprintf("%d (%4.1f%%)", n, 100*float64(n)/float64(total))
	}
	for _, a := range table4Aspects {
		k, g := r.KGLiDSBreakdown[a], r.GraphGenBreakdown[a]
		if k == 0 && g == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-24s %22s %22s\n", a, cell(k, totalK), cell(g, totalG))
	}
	fmt.Fprintf(&sb, "%-24s %22d %22d\n", "Total", totalK, totalG)
	return sb.String()
}

// FormatFigure4 renders the top-10 library histogram.
func FormatFigure4(r AbstractionResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: Top 10 libraries used in %d pipelines\n", r.NumPipelines)
	maxN := 1
	for _, lc := range r.TopLibraries {
		if lc.Pipelines > maxN {
			maxN = lc.Pipelines
		}
	}
	for _, lc := range r.TopLibraries {
		bar := strings.Repeat("#", lc.Pipelines*40/maxN)
		fmt.Fprintf(&sb, "%-14s %6d %s\n", lc.Library, lc.Pipelines, bar)
	}
	return sb.String()
}
