package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"kglids"
	"kglids/client"
	"kglids/internal/ingest"
	"kglids/internal/lakegen"
	"kglids/internal/server"
)

// ReplicaScale is one row of the replicas experiment: aggregate read
// throughput with N read replicas serving concurrently.
type ReplicaScale struct {
	Replicas     int     `json:"replicas"`
	AggregateQPS float64 `json:"aggregate_qps"`
	// Speedup is AggregateQPS relative to the single-replica row.
	Speedup float64 `json:"speedup_vs_1r,omitempty"`
}

// ReplicasPerf is the replicas experiment's result: read throughput
// scaling across follower counts plus the convergence latency of a live
// mutation propagating from the primary to every follower.
type ReplicasPerf struct {
	Experiment string         `json:"experiment"`
	Tables     int            `json:"tables"`
	Triples    int            `json:"triples"`
	Scales     []ReplicaScale `json:"scales"`
	// ConvergenceMS is the wall-clock from submitting a live ingest on the
	// primary to every follower having applied the full resulting
	// changelog tail (verified by Stats and SPARQL equality).
	ConvergenceMS       float64 `json:"convergence_ms"`
	ConvergedGeneration uint64  `json:"converged_generation"`
}

// Result flattens the experiment into the trajectory schema. The per-count
// QPS rows are informational (absolute throughput is machine-bound); the
// scaling ratios and convergence latency are the comparable signals.
func (p *ReplicasPerf) Result() PerfResult {
	metrics := map[string]float64{"convergence_ms": p.ConvergenceMS}
	for _, s := range p.Scales {
		metrics[fmt.Sprintf("aggregate_qps_%dr", s.Replicas)] = s.AggregateQPS
		if s.Replicas > 1 {
			metrics[fmt.Sprintf("scaling_%dr_speedup", s.Replicas)] = s.Speedup
		}
	}
	return PerfResult{Experiment: "replicas", Metrics: metrics}
}

func (o PerfOptions) replicaCounts() []int {
	if o.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4}
}

func (o PerfOptions) qpsWindow() time.Duration {
	if o.Quick {
		return 250 * time.Millisecond
	}
	return time.Second
}

// benchReplica is one in-process read replica: a platform seeded from the
// primary's snapshot, a follower tailing its changelog, and a read-only
// HTTP server in front.
type benchReplica struct {
	client *client.Client
	cursor atomic.Uint64 // follower position, updated via OnProgress
	errs   chan error
	close  func()
}

// bootReplica seeds a follower from the primary's snapshot endpoint and
// starts it tailing the changelog — the same boot path as
// `kglids-server -replica -follow`, in-process.
func bootReplica(ctx context.Context, primary *client.Client) (*benchReplica, error) {
	body, err := primary.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	plat, err := kglids.Read(body)
	body.Close()
	if err != nil {
		return nil, err
	}
	tracker := kglids.NewReplicaTracker()
	ts := httptest.NewServer(server.New(plat, server.Options{
		ReadOnly: true, Replica: tracker, DisableMetrics: true,
	}))
	c, err := client.New(ts.URL)
	if err != nil {
		ts.Close()
		return nil, err
	}

	r := &benchReplica{client: c, errs: make(chan error, 1)}
	r.cursor.Store(plat.ChangelogPosition())
	fctx, cancel := context.WithCancel(ctx)
	f := &client.Follower{
		Client: primary,
		Cursor: plat.ChangelogPosition(),
		Poll:   2 * time.Millisecond,
		Apply: func(e client.ChangeEntry) error {
			if err := plat.ApplyChange(e.Kind, e.Generation, e.Payload); err != nil {
				return err
			}
			tracker.ObserveApplied(plat.Generation(), e.TS)
			return nil
		},
		OnProgress: func(cursor, head uint64) { r.cursor.Store(cursor) },
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := f.Run(fctx); err != nil && fctx.Err() == nil {
			r.errs <- err
		}
	}()
	r.close = func() {
		cancel()
		<-done
		ts.Close()
	}
	return r, nil
}

// failed returns the follower's terminal error, if any.
func (r *benchReplica) failed() error {
	select {
	case err := <-r.errs:
		return err
	default:
		return nil
	}
}

// RunReplicasPerf measures the read-replica architecture end to end: a
// primary with the changelog enabled serves its snapshot to N in-process
// followers, aggregate read throughput is measured against 1..N replicas,
// and a live ingest on the primary is timed until every follower has
// applied it and answers Stats and SPARQL byte-identically.
func RunReplicasPerf(o PerfOptions) (*ReplicasPerf, error) {
	lake := lakegen.Generate(o.httpSpec())
	tables := lakeTables(lake)
	plat := kglids.Bootstrap(kglids.Options{}, tables)
	plat.EnableChangelog(0)
	mgr := ingest.New(plat.Core(), ingest.Options{Workers: 1, QueueSize: 8})
	defer mgr.Close()
	ts := httptest.NewServer(server.New(plat, server.Options{Ingest: mgr}))
	defer ts.Close()
	primary, err := client.New(ts.URL)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	counts := o.replicaCounts()
	maxReplicas := counts[len(counts)-1]
	replicas := make([]*benchReplica, 0, maxReplicas)
	defer func() {
		for _, r := range replicas {
			r.close()
		}
	}()
	for i := 0; i < maxReplicas; i++ {
		r, err := bootReplica(ctx, primary)
		if err != nil {
			return nil, fmt.Errorf("boot replica %d: %v", i, err)
		}
		replicas = append(replicas, r)
	}

	q := lake.QueryTables[0]
	const sparqlQ = `SELECT ?t ?n WHERE { ?t a kglids:Table ; kglids:name ?n . } ORDER BY ?t`

	report := &ReplicasPerf{
		Experiment: "replicas", Tables: len(tables), Triples: plat.Stats().Triples,
	}

	// Read-throughput scaling: the same worker pool spread over 1, 2, ...
	// replicas. Each worker alternates a cached stats read and a keyword
	// search — the polling-client steady state.
	window := o.qpsWindow()
	const workersPerReplica = 2
	for _, n := range counts {
		serving := replicas[:n]
		// Warm each replica's server caches once outside the window.
		for _, r := range serving {
			if _, err := r.client.Stats(ctx); err != nil {
				return nil, err
			}
			if _, err := r.client.Search(ctx, q[:3], client.PageOpts{}); err != nil {
				return nil, err
			}
		}
		var total atomic.Int64
		deadline := time.Now().Add(window)
		var wg sync.WaitGroup
		var workerErr atomic.Value
		for _, r := range serving {
			for w := 0; w < workersPerReplica; w++ {
				wg.Add(1)
				go func(c *client.Client) {
					defer wg.Done()
					for i := 0; time.Now().Before(deadline); i++ {
						var err error
						if i%2 == 0 {
							_, err = c.Stats(ctx)
						} else {
							_, err = c.Search(ctx, q[:3], client.PageOpts{})
						}
						if err != nil {
							workerErr.Store(err)
							return
						}
						total.Add(1)
					}
				}(r.client)
			}
		}
		wg.Wait()
		if err, _ := workerErr.Load().(error); err != nil {
			return nil, fmt.Errorf("replica read (%d replicas): %v", n, err)
		}
		scale := ReplicaScale{
			Replicas:     n,
			AggregateQPS: float64(total.Load()) / window.Seconds(),
		}
		if base := report.Scales; len(base) > 0 && base[0].AggregateQPS > 0 {
			scale.Speedup = scale.AggregateQPS / base[0].AggregateQPS
		}
		report.Scales = append(report.Scales, scale)
	}

	// Convergence: one live ingest on the primary, timed until every
	// follower has applied the full changelog tail it produced.
	newTable := client.IngestTable{
		Dataset: "bench", Name: "replicated.csv",
		Columns: []client.IngestColumn{
			{Name: "k", Values: []any{"a", "b", "c", "d", "e", "f"}},
			{Name: "v", Values: []any{1, 2, 3, 4, 5, 6}},
		},
	}
	start := time.Now()
	ref, err := primary.Ingest(ctx, []client.IngestTable{newTable})
	if err != nil {
		return nil, err
	}
	if _, err := primary.WaitJob(ctx, ref.Job, 2*time.Millisecond); err != nil {
		return nil, err
	}
	targetPos := plat.ChangelogPosition()
	convergeCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for _, r := range replicas {
		for r.cursor.Load() < targetPos {
			if err := r.failed(); err != nil {
				return nil, fmt.Errorf("follower diverged: %v", err)
			}
			if convergeCtx.Err() != nil {
				return nil, fmt.Errorf("replicas did not converge to changelog position %d within 30s", targetPos)
			}
			time.Sleep(time.Millisecond)
		}
	}
	report.ConvergenceMS = float64(time.Since(start).Microseconds()) / 1e3
	report.ConvergedGeneration = plat.Generation()

	// Equality at the converged generation: every replica must answer
	// Stats and SPARQL byte-identically to the primary.
	wantStats, err := primary.Stats(ctx)
	if err != nil {
		return nil, err
	}
	wantRows, err := primary.SPARQL(ctx, sparqlQ)
	if err != nil {
		return nil, err
	}
	wantStatsJSON, _ := json.Marshal(wantStats)
	wantRowsJSON, _ := json.Marshal(wantRows)
	for i, r := range replicas {
		gotStats, err := r.client.Stats(ctx)
		if err != nil {
			return nil, err
		}
		gotRows, err := r.client.SPARQL(ctx, sparqlQ)
		if err != nil {
			return nil, err
		}
		gotStatsJSON, _ := json.Marshal(gotStats)
		gotRowsJSON, _ := json.Marshal(gotRows)
		if !bytes.Equal(wantStatsJSON, gotStatsJSON) {
			return nil, fmt.Errorf("replica %d stats diverge from primary after convergence:\n  primary: %s\n  replica: %s",
				i, wantStatsJSON, gotStatsJSON)
		}
		if !bytes.Equal(wantRowsJSON, gotRowsJSON) {
			return nil, fmt.Errorf("replica %d SPARQL rows diverge from primary after convergence", i)
		}
	}
	return report, nil
}
