package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync/atomic"
	"time"

	"kglids/internal/connector"
	"kglids/internal/profiler"
)

// ConnectorsPerf is the connectors experiment's result: the streaming
// one-pass profiler over a generated lakegen:// lake against the
// materialize-then-profile path, on a lake deliberately sized at least
// LakeToBudgetFloor times larger than the cells the streaming path keeps
// resident in chunks at full worker parallelism.
type ConnectorsPerf struct {
	Experiment string `json:"experiment"`
	Tables     int    `json:"tables"`
	Cols       int    `json:"cols"`
	Rows       int    `json:"rows"`
	// LakeCells is the total cell count of the streamed lake;
	// ChunkBudgetCells is workers × chunk rows × columns — the cells the
	// streaming path holds in flight as connector chunks. Their ratio is
	// asserted to be at least LakeToBudgetFloor, so the experiment really
	// does stream a lake that could not sit in the chunk budget.
	LakeCells        int64   `json:"lake_cells"`
	ChunkBudgetCells int64   `json:"chunk_budget_cells"`
	LakeBudgetRatio  float64 `json:"lake_budget_ratio"`
	Workers          int     `json:"workers"`
	ChunkRows        int     `json:"chunk_rows"`
	ReservoirSize    int     `json:"reservoir_size"`

	StreamMS        float64 `json:"stream_ms"`
	StreamPeakMiB   float64 `json:"stream_peak_mib"`
	MaterialMS      float64 `json:"materialized_ms"`
	MaterialPeakMiB float64 `json:"materialized_peak_mib"`
	// MemRatio is materialized peak heap over streaming peak heap — the
	// memory saving of never holding the lake.
	MemRatio float64 `json:"mem_ratio"`
	// ThroughputMCells is streamed cells per second, in millions.
	ThroughputMCells float64 `json:"throughput_mcells_per_s"`
	// Equivalent records the byte-identical profile comparison between the
	// streaming and in-memory paths at default accuracy settings.
	Equivalent bool `json:"equivalent"`
}

// LakeToBudgetFloor is the minimum lake-to-chunk-budget cell ratio the
// connectors experiment must demonstrate.
const LakeToBudgetFloor = 10.0

// Result flattens the experiment into the trajectory schema.
func (p *ConnectorsPerf) Result() PerfResult {
	return PerfResult{Experiment: "connectors", Metrics: map[string]float64{
		"lake_cells":              float64(p.LakeCells),
		"lake_budget_ratio":       p.LakeBudgetRatio,
		"stream_ms":               p.StreamMS,
		"stream_peak_mib":         p.StreamPeakMiB,
		"materialized_ms":         p.MaterialMS,
		"materialized_peak_mib":   p.MaterialPeakMiB,
		"mem_ratio":               p.MemRatio,
		"throughput_mcells_per_s": p.ThroughputMCells,
	}}
}

// connectorsShape picks the streamed lake's shape: the base size scales
// with Quick, and the table count grows until the lake holds at least
// LakeToBudgetFloor× the chunk budget at the actual worker count — the
// invariant must hold at full parallelism on any machine. Tables grow
// rather than rows so per-column cardinality stays inside the default
// reservoir and the byte-identical equivalence check remains exact.
func (o PerfOptions) connectorsShape(workers, chunkRows int) (tables, cols, rows int) {
	tables, cols, rows = 24, 8, 6000
	if o.Quick {
		tables, cols, rows = 12, 6, 3000
	}
	minTables := int(LakeToBudgetFloor*float64(workers*chunkRows))/rows + 1
	if tables < minTables {
		tables = minTables
	}
	return tables, cols, rows
}

// RunConnectorsPerf profiles a generated lake twice — streamed through
// the lakegen:// connector by the one-pass profiler, and materialized in
// memory then profiled by the batch path — measuring wall time and peak
// heap for both, verifying the two paths emit byte-identical profiles,
// and asserting the lake is at least LakeToBudgetFloor× larger than the
// streaming path's resident chunk budget.
func RunConnectorsPerf(o PerfOptions) (*ConnectorsPerf, error) {
	workers := runtime.GOMAXPROCS(0)
	chunkRows := connector.DefaultChunkRows
	tables, cols, rows := o.connectorsShape(workers, chunkRows)
	uri := fmt.Sprintf("lakegen://wide?tables=%d&cols=%d&rows=%d&seed=37", tables, cols, rows)

	report := &ConnectorsPerf{
		Experiment: "connectors",
		Tables:     tables, Cols: cols, Rows: rows,
		LakeCells:        int64(tables) * int64(cols) * int64(rows),
		ChunkBudgetCells: int64(workers) * int64(chunkRows) * int64(cols),
		Workers:          workers,
		ChunkRows:        chunkRows,
	}
	report.LakeBudgetRatio = float64(report.LakeCells) / float64(report.ChunkBudgetCells)
	if report.LakeBudgetRatio < LakeToBudgetFloor {
		return nil, fmt.Errorf("connectors: lake %d cells is only %.1fx the %d-cell chunk budget (want >= %.0fx)",
			report.LakeCells, report.LakeBudgetRatio, report.ChunkBudgetCells, LakeToBudgetFloor)
	}

	ctx := context.Background()
	prof := profiler.New()
	prof.Workers = workers
	report.ReservoirSize = prof.ReservoirSize
	if report.ReservoirSize == 0 {
		report.ReservoirSize = profiler.DefaultReservoirSize
	}

	// Streaming pass: the lake flows through connector chunks into the
	// one-pass accumulators; resident state is chunks in flight plus
	// bounded per-column reservoirs.
	var streamed []*profiler.ColumnProfile
	var streamDur time.Duration
	streamPeak, err := peakHeapDuring(func() error {
		src, err := connector.OpenWith(uri, connector.Options{ChunkRows: chunkRows})
		if err != nil {
			return err
		}
		start := time.Now()
		profiles, tableErrs, err := prof.ProfileSource(ctx, src)
		streamDur = time.Since(start)
		if err != nil {
			return err
		}
		if len(tableErrs) > 0 {
			return fmt.Errorf("connectors: %d tables failed to stream", len(tableErrs))
		}
		streamed = profiles
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Materialized pass: the whole lake is loaded as frames first — the
	// memory regime the connectors exist to escape.
	var materialized []*profiler.ColumnProfile
	var materialDur time.Duration
	materialPeak, err := peakHeapDuring(func() error {
		src, err := connector.OpenWith(uri, connector.Options{ChunkRows: chunkRows})
		if err != nil {
			return err
		}
		start := time.Now()
		frames, err := profiler.MaterializeSource(ctx, src)
		if err != nil {
			return err
		}
		materialized = prof.ProfileAll(frames)
		materialDur = time.Since(start)
		return nil
	})
	if err != nil {
		return nil, err
	}

	if err := sameProfiles(streamed, materialized); err != nil {
		return nil, fmt.Errorf("connectors: streaming diverges from in-memory: %v", err)
	}
	report.Equivalent = true

	report.StreamMS = float64(streamDur.Microseconds()) / 1e3
	report.MaterialMS = float64(materialDur.Microseconds()) / 1e3
	report.StreamPeakMiB = float64(streamPeak) / (1 << 20)
	report.MaterialPeakMiB = float64(materialPeak) / (1 << 20)
	if streamPeak > 0 {
		report.MemRatio = float64(materialPeak) / float64(streamPeak)
	}
	if s := streamDur.Seconds(); s > 0 {
		report.ThroughputMCells = float64(report.LakeCells) / s / 1e6
	}
	return report, nil
}

// sameProfiles asserts two profile sets are byte-identical documents,
// irrespective of order.
func sameProfiles(a, b []*profiler.ColumnProfile) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d profiles vs %d", len(a), len(b))
	}
	canon := func(ps []*profiler.ColumnProfile) (map[string]string, error) {
		out := make(map[string]string, len(ps))
		for _, cp := range ps {
			doc, err := cp.JSON()
			if err != nil {
				return nil, err
			}
			out[cp.ID()] = string(doc)
		}
		return out, nil
	}
	am, err := canon(a)
	if err != nil {
		return err
	}
	bm, err := canon(b)
	if err != nil {
		return err
	}
	var ids []string
	for id := range am {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		other, ok := bm[id]
		if !ok {
			return fmt.Errorf("column %s missing from one path", id)
		}
		if am[id] != other {
			return fmt.Errorf("column %s differs:\n  stream: %s\n  memory: %s", id, am[id], other)
		}
	}
	return nil
}

// heapMetric is the live-heap-object bytes series of runtime/metrics —
// the HeapAlloc equivalent that can be read without stopping the world.
const heapMetric = "/memory/classes/heap/objects:bytes"

func readHeap(sample []metrics.Sample) uint64 {
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}

// peakHeapDuring runs fn while sampling the live heap and reports the
// peak above the post-GC baseline — a portable stand-in for peak RSS
// that both arms of the experiment share. The sampler reads
// runtime/metrics, not runtime.ReadMemStats: the latter stops the world
// on every call, and a 1ms stop-the-world cadence measurably skews the
// latency-sensitive experiments (the server overhead cap) that the eval
// harness runs concurrently with this one.
func peakHeapDuring(fn func() error) (uint64, error) {
	runtime.GC()
	sample := []metrics.Sample{{Name: heapMetric}}
	base := readHeap(sample)
	var peak atomic.Uint64
	peak.Store(base)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := []metrics.Sample{{Name: heapMetric}}
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if h := readHeap(s); h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()
	err := fn()
	close(stop)
	<-done
	if h := readHeap(sample); h > peak.Load() {
		peak.Store(h)
	}
	if err != nil {
		return 0, err
	}
	return peak.Load() - base, nil
}
