package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// sampleTrajectory builds a small but fully-populated trajectory covering
// every metric direction the compare gate distinguishes.
func sampleTrajectory() *Trajectory {
	return &Trajectory{
		SchemaVersion: TrajectorySchemaVersion,
		GeneratedAt:   "2026-08-07T00:00:00Z",
		GitSHA:        "abc1234",
		Quick:         true,
		Machine:       Machine{GoVersion: "go1.24.0", OS: "linux", Arch: "amd64", NumCPU: 4},
		Quality: []QualityResult{
			{Method: "KGLiDS", Task: "unionable", Lake: "eval-quick", K: 3,
				Precision: 0.5, Recall: 0.6, F1: 0.545, PreprocessMS: 12, AvgQueryUS: 80},
			{Method: "SANTOS", Task: "unionable", Lake: "eval-quick", K: 3,
				Precision: 0.4, Recall: 0.5, F1: 0.444, PreprocessMS: 3, AvgQueryUS: 900},
		},
		Perf: []PerfResult{
			{Experiment: "snapshot", Metrics: map[string]float64{
				"load_ms": 5, "load_speedup": 4, "tables": 18, "file_mib": 0.7}},
			{Experiment: "sparql", Metrics: map[string]float64{
				"int-columns_id_us": 12, "triples": 1446}},
		},
	}
}

func TestTrajectoryRoundTripByteStable(t *testing.T) {
	first, err := EncodeTrajectory(sampleTrajectory())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeTrajectory(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeTrajectory(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("encode(decode(encode)) not byte-stable:\n%s\nvs\n%s", first, second)
	}
	if first[len(first)-1] != '\n' {
		t.Error("canonical encoding must end with a newline")
	}
}

func TestEncodeSortsSections(t *testing.T) {
	tr := sampleTrajectory()
	// Reverse both sections; canonical encoding must not care.
	tr.Quality[0], tr.Quality[1] = tr.Quality[1], tr.Quality[0]
	tr.Perf[0], tr.Perf[1] = tr.Perf[1], tr.Perf[0]
	shuffled, err := EncodeTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := EncodeTrajectory(sampleTrajectory())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shuffled, ordered) {
		t.Error("section order leaked into canonical encoding")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := EncodeTrajectory(sampleTrajectory())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated", valid[:len(valid)/2]},
		{"trailing content", append(append([]byte(nil), valid...), []byte("{}")...)},
		{"unknown field", bytes.Replace(valid, []byte(`"git_sha"`), []byte(`"git_shaw"`), 1)},
		{"future schema version", bytes.Replace(valid, []byte(`"schema_version": 1`), []byte(`"schema_version": 99`), 1)},
		{"zero schema version", bytes.Replace(valid, []byte(`"schema_version": 1`), []byte(`"schema_version": 0`), 1)},
		{"bad timestamp", bytes.Replace(valid, []byte("2026-08-07T00:00:00Z"), []byte("yesterday-ish"), 1)},
		{"precision above one", bytes.Replace(valid, []byte(`"precision": 0.5`), []byte(`"precision": 1.5`), 1)},
		{"negative metric", bytes.Replace(valid, []byte(`"load_ms": 5`), []byte(`"load_ms": -5`), 1)},
		{"zero k", bytes.Replace(valid, []byte(`"k": 3`), []byte(`"k": 0`), 1)},
	}
	for _, c := range cases {
		if _, err := DecodeTrajectory(c.data); err == nil {
			t.Errorf("%s: decode accepted malformed input", c.name)
		}
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	tr := sampleTrajectory()
	tr.Quality = append(tr.Quality, tr.Quality[0])
	if _, err := EncodeTrajectory(tr); err == nil || !strings.Contains(err.Error(), "duplicate quality") {
		t.Errorf("duplicate quality row accepted: %v", err)
	}
	tr = sampleTrajectory()
	tr.Perf = append(tr.Perf, PerfResult{Experiment: tr.Perf[0].Experiment})
	if _, err := EncodeTrajectory(tr); err == nil || !strings.Contains(err.Error(), "duplicate perf") {
		t.Errorf("duplicate perf experiment accepted: %v", err)
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	regs, _ := Compare(sampleTrajectory(), sampleTrajectory(), DefaultTolerance())
	if len(regs) != 0 {
		t.Errorf("identical trajectories regressed: %v", regs)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	fresh := sampleTrajectory()
	fresh.Quality[0].Precision -= 0.01   // within 0.02 quality tolerance
	fresh.Perf[0].Metrics["load_ms"] = 7 // 1.4x, within 1.5x perf tolerance
	fresh.Perf[0].Metrics["load_speedup"] = 3
	regs, _ := Compare(sampleTrajectory(), fresh, DefaultTolerance())
	if len(regs) != 0 {
		t.Errorf("within-tolerance drift regressed: %v", regs)
	}
}

func TestCompareDetectsDemotion(t *testing.T) {
	old := sampleTrajectory()
	regs, _ := Compare(old, Demote(old), DefaultTolerance())
	if len(regs) == 0 {
		t.Fatal("demoted trajectory passed the gate")
	}
	byKind := map[string]bool{}
	for _, r := range regs {
		byKind[strings.SplitN(r.Metric, ":", 2)[0]] = true
	}
	if !byKind["quality"] || !byKind["perf"] {
		t.Errorf("demotion should regress both sections, got %v", regs)
	}
	// Demote must not mutate its input.
	if old.Quality[0].Precision != 0.5 || old.Perf[0].Metrics["load_ms"] != 5 {
		t.Error("Demote mutated its input")
	}
}

func TestCompareMissingQualityCellIsRegression(t *testing.T) {
	fresh := sampleTrajectory()
	fresh.Quality = fresh.Quality[:1]
	regs, _ := Compare(sampleTrajectory(), fresh, DefaultTolerance())
	found := false
	for _, r := range regs {
		if r.New < 0 && strings.Contains(r.Metric, "SANTOS") {
			found = true
			if !strings.Contains(r.String(), "missing") {
				t.Errorf("missing-cell regression renders as %q", r.String())
			}
		}
	}
	if !found {
		t.Errorf("dropped quality cell not flagged: %v", regs)
	}
}

func TestCompareMissingPerfIsNoteNotRegression(t *testing.T) {
	fresh := sampleTrajectory()
	fresh.Perf = fresh.Perf[:1]               // drop the sparql experiment
	delete(fresh.Perf[0].Metrics, "file_mib") // and one metric
	regs, notes := Compare(sampleTrajectory(), fresh, DefaultTolerance())
	if len(regs) != 0 {
		t.Errorf("missing perf coverage should not gate: %v", regs)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "sparql") || !strings.Contains(joined, "file_mib") {
		t.Errorf("missing perf coverage not noted: %v", notes)
	}
}

func TestComparePerfToleranceDisabled(t *testing.T) {
	fresh := Demote(sampleTrajectory())
	regs, notes := Compare(sampleTrajectory(), fresh, Tolerance{Quality: 0.02, Perf: 0})
	for _, r := range regs {
		if strings.HasPrefix(r.Metric, "perf:") {
			t.Errorf("perf regression gated while disabled: %v", r)
		}
	}
	if !strings.Contains(strings.Join(notes, "\n"), "perf gating disabled") {
		t.Errorf("disabled perf gating not noted: %v", notes)
	}
}

// TestComparePerfCapUnconditional: absolute caps gate the fresh
// trajectory even with perf tolerance disabled (the CI setting), and an
// in-cap value passes.
func TestComparePerfCapUnconditional(t *testing.T) {
	withOverhead := func(pct float64) *Trajectory {
		tr := sampleTrajectory()
		tr.Perf = append(tr.Perf, PerfResult{Experiment: "server",
			Metrics: map[string]float64{"instrument_overhead_pct": pct}})
		return tr
	}
	regs, _ := Compare(withOverhead(1.4), withOverhead(3.5), Tolerance{Quality: 0.02, Perf: 0})
	found := false
	for _, r := range regs {
		if r.Metric == "cap:server:instrument_overhead_pct" {
			found = true
			if r.Limit != 2.0 || r.New != 3.5 {
				t.Errorf("cap regression misreported: %+v", r)
			}
		}
	}
	if !found {
		t.Errorf("over-cap overhead not gated with perf tolerance disabled: %v", regs)
	}

	regs, _ = Compare(withOverhead(1.4), withOverhead(1.9), Tolerance{Quality: 0.02, Perf: 0})
	if len(regs) != 0 {
		t.Errorf("in-cap overhead gated: %v", regs)
	}

	// Demote must push the capped metric over its cap so the CI self-test
	// also proves this gate fires.
	regs, _ = Compare(withOverhead(1.4), Demote(withOverhead(1.4)), Tolerance{Quality: 0.02, Perf: 0})
	found = false
	for _, r := range regs {
		if strings.HasPrefix(r.Metric, "cap:") {
			found = true
		}
	}
	if !found {
		t.Errorf("Demote did not trip the absolute cap: %v", regs)
	}
}

func TestCompareDirectionSemantics(t *testing.T) {
	// Informational metrics (no unit suffix, no "speedup") never gate.
	fresh := sampleTrajectory()
	fresh.Perf[0].Metrics["tables"] = 99999
	fresh.Perf[1].Metrics["triples"] = 1
	regs, _ := Compare(sampleTrajectory(), fresh, DefaultTolerance())
	if len(regs) != 0 {
		t.Errorf("informational metrics gated: %v", regs)
	}
	// A collapsed speedup does gate.
	fresh = sampleTrajectory()
	fresh.Perf[0].Metrics["load_speedup"] = 1
	regs, _ = Compare(sampleTrajectory(), fresh, DefaultTolerance())
	if len(regs) != 1 || !strings.Contains(regs[0].Metric, "load_speedup") {
		t.Errorf("collapsed speedup not gated: %v", regs)
	}
}

func FuzzTrajectoryDecode(f *testing.F) {
	valid, err := EncodeTrajectory(sampleTrajectory())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema_version": 1}`))
	f.Add([]byte(`{"schema_version": 99}`))
	f.Add([]byte(`{"schema_version": 1, "surprise": true}`))
	f.Add(valid[:len(valid)/3])
	f.Add(append(append([]byte(nil), valid...), []byte("[]")...))
	f.Add([]byte(`{"schema_version": 1, "perf": [{"experiment": "x", "metrics": {"a_ms": -1}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrajectory(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode canonically and round-trip
		// byte-stably.
		first, err := EncodeTrajectory(tr)
		if err != nil {
			t.Fatalf("decoded trajectory failed to encode: %v", err)
		}
		again, err := DecodeTrajectory(first)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		second, err := EncodeTrajectory(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("round-trip not byte-stable:\n%s\nvs\n%s", first, second)
		}
	})
}
