package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"kglids/internal/baselines"
	"kglids/internal/lakegen"
)

// EvalOptions configures one standing-evaluation run.
type EvalOptions struct {
	// Quick shrinks the lakes and repetition counts to PR-gate scale.
	Quick bool
	// Concurrency is the number of experiments (quality methods and perf
	// experiments) allowed to run at once. 1 — the default — is the right
	// setting for trustworthy timings; higher values exist to shake out
	// shared-state races under `go test -race`.
	Concurrency int
	// GitSHA and GeneratedAt stamp the trajectory (best-effort metadata;
	// either may be empty).
	GitSHA      string
	GeneratedAt time.Time
}

// RunEval runs the full standing evaluation: discovery quality for the
// platform and every vendored baseline over one ground-truth lake, plus
// the snapshot/ingest/sparql/server/edges/connectors perf experiments,
// unified into one Trajectory.
func RunEval(o EvalOptions) (*Trajectory, error) {
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	evalSpec := lakegen.FullEvalSpec
	if o.Quick {
		evalSpec = lakegen.QuickEvalSpec
	}
	lake := lakegen.GenerateEval(evalSpec)

	t := &Trajectory{
		SchemaVersion: TrajectorySchemaVersion,
		GitSHA:        o.GitSHA,
		Quick:         o.Quick,
		Machine: Machine{
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	if !o.GeneratedAt.IsZero() {
		t.GeneratedAt = o.GeneratedAt.UTC().Format(time.RFC3339)
	}

	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, o.Concurrency)
	var wg sync.WaitGroup
	launch := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := fn(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}

	// Quality: every method scores the same shared, read-only lake.
	for _, d := range baselines.All() {
		d := d
		launch(func() error {
			rows := methodQuality(lake, d)
			mu.Lock()
			t.Quality = append(t.Quality, rows...)
			mu.Unlock()
			return nil
		})
	}

	// Perf: the seven standing experiments behind the unified schema.
	po := PerfOptions{Quick: o.Quick}
	perfRuns := []func() (PerfResult, error){
		func() (PerfResult, error) { return resultOf(RunSnapshotPerf(po)) },
		func() (PerfResult, error) { return resultOf(RunIngestPerf(po)) },
		func() (PerfResult, error) { return resultOf(RunSPARQLPerf(po)) },
		func() (PerfResult, error) { return resultOf(RunServerPerf(po)) },
		func() (PerfResult, error) { return resultOf(RunEdgesPerf(po)) },
		func() (PerfResult, error) { return resultOf(RunConnectorsPerf(po)) },
		func() (PerfResult, error) { return resultOf(RunReplicasPerf(po)) },
	}
	for _, run := range perfRuns {
		run := run
		launch(func() error {
			res, err := run()
			if err != nil {
				return err
			}
			mu.Lock()
			t.Perf = append(t.Perf, res)
			mu.Unlock()
			return nil
		})
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Round-trip through the codec: validates the run's numbers against
	// the schema and leaves the sections in canonical order.
	enc, err := EncodeTrajectory(t)
	if err != nil {
		return nil, err
	}
	return DecodeTrajectory(enc)
}

// resulter is any perf experiment report that flattens into the schema.
type resulter interface{ Result() PerfResult }

func resultOf[T resulter](r T, err error) (PerfResult, error) {
	if err != nil {
		return PerfResult{}, err
	}
	return r.Result(), nil
}

// RunQuality scores one method on one evaluation lake: unionable discovery
// always, joinable discovery when the method supports it.
func RunQuality(lake *lakegen.EvalLake, d baselines.Discoverer) []QualityResult {
	return methodQuality(lake, d)
}

// methodQuality preprocesses the lake with one method and scores its
// discovery paths against the constructed ground truth at k derived from
// the lake's average truth-set size — the same k for every method.
func methodQuality(lake *lakegen.EvalLake, d baselines.Discoverer) []QualityResult {
	start := time.Now()
	d.Preprocess(lake.Benchmark)
	preMS := float64(time.Since(start).Microseconds()) / 1e3

	kU := truthK(lake.QueryTables, lake.GroundTruth)
	p, r, f1, queryUS := scoreTopK(lake.QueryTables, lake.GroundTruth, kU, d.Unionable)
	out := []QualityResult{{
		Method: d.Name(), Task: "unionable", Lake: lake.Name, K: kU,
		Precision: p, Recall: r, F1: f1,
		PreprocessMS: preMS, AvgQueryUS: queryUS,
	}}

	if j, ok := d.(baselines.Joiner); ok {
		kJ := truthK(lake.QueryTables, lake.JoinTruth)
		p, r, f1, queryUS = scoreTopK(lake.QueryTables, lake.JoinTruth, kJ, j.Joinable)
		out = append(out, QualityResult{
			Method: d.Name(), Task: "joinable", Lake: lake.Name, K: kJ,
			Precision: p, Recall: r, F1: f1,
			PreprocessMS: preMS, AvgQueryUS: queryUS,
		})
	}
	return out
}

// truthK derives the evaluation k from the average ground-truth set size
// over the query tables, so precision@k is attainable by a perfect method.
func truthK(queries []string, truth map[string][]string) int {
	if len(queries) == 0 {
		return 1
	}
	total := 0
	for _, q := range queries {
		total += len(truth[q])
	}
	k := int(math.Round(float64(total) / float64(len(queries))))
	if k < 1 {
		k = 1
	}
	return k
}

// scoreTopK computes average precision@k, recall@k, their F1, and the
// average per-query latency for one retrieval function — the single
// scoring path shared by the platform and every baseline.
func scoreTopK(queries []string, truth map[string][]string, k int, retrieve func(q string, k int) []string) (precision, recall, f1, avgQueryUS float64) {
	if len(queries) == 0 || k < 1 {
		return 0, 0, 0, 0
	}
	var pSum, rSum float64
	start := time.Now()
	for _, q := range queries {
		want := map[string]bool{}
		for _, o := range truth[q] {
			want[o] = true
		}
		hits := 0
		for _, r := range retrieve(q, k) {
			if want[r] {
				hits++
			}
		}
		pSum += float64(hits) / float64(k)
		if len(want) > 0 {
			rSum += float64(hits) / float64(len(want))
		}
	}
	elapsed := time.Since(start)
	precision = pSum / float64(len(queries))
	recall = rSum / float64(len(queries))
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	avgQueryUS = float64(elapsed.Microseconds()) / float64(len(queries))
	return precision, recall, f1, avgQueryUS
}

// EvalSummary is the one-line outcome printed after an eval run.
func EvalSummary(t *Trajectory) string {
	return fmt.Sprintf("eval: %d quality cells, %d perf experiments", len(t.Quality), len(t.Perf))
}
