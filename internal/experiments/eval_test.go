package experiments

import (
	"testing"
	"time"
)

// TestRunEvalConcurrent drives the full quick evaluation with every
// experiment running at once. Under `go test -race` this pins that the
// shared lakegen lake, the per-method platforms, and the trajectory
// assembly are race-free.
func TestRunEvalConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("full eval in -short mode")
	}
	tr, err := RunEval(EvalOptions{
		Quick:       true,
		Concurrency: 4,
		GitSHA:      "test",
		GeneratedAt: time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Quick || tr.GitSHA != "test" || tr.GeneratedAt != "2026-08-07T00:00:00Z" {
		t.Errorf("metadata not stamped: %+v", tr)
	}

	// Quality must cover the platform (both tasks) and at least two
	// vendored baselines — the acceptance shape of the harness.
	methods := map[string]bool{}
	tasks := map[string]bool{}
	for _, q := range tr.Quality {
		methods[q.Method] = true
		tasks[q.Method+"/"+q.Task] = true
	}
	if !methods["KGLiDS"] || len(methods) < 3 {
		t.Errorf("quality methods = %v, want KGLiDS plus >= 2 baselines", methods)
	}
	if !tasks["KGLiDS/unionable"] || !tasks["KGLiDS/joinable"] {
		t.Errorf("platform tasks = %v, want unionable and joinable", tasks)
	}

	// Perf must cover all six standing experiments.
	perf := map[string]bool{}
	for _, p := range tr.Perf {
		perf[p.Experiment] = true
		if len(p.Metrics) == 0 {
			t.Errorf("perf experiment %q has no metrics", p.Experiment)
		}
	}
	for _, want := range []string{"snapshot", "ingest", "sparql", "server", "edges", "connectors"} {
		if !perf[want] {
			t.Errorf("perf experiment %q missing (have %v)", want, perf)
		}
	}

	// An eval compared against itself must pass its own gate.
	regs, _ := Compare(tr, tr, DefaultTolerance())
	if len(regs) != 0 {
		t.Errorf("self-comparison regressed: %v", regs)
	}
}
