package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"kglids/internal/automl"
	"kglids/internal/embed"
	"kglids/internal/lakegen"
	"kglids/internal/ml"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/transform"
)

// AutoMLRow is one dataset of the Figure 9 comparison.
type AutoMLRow struct {
	ID         int
	Task       string // "binary" or "multiclass"
	F1LiDS     float64
	F1G4C      float64
	Difference float64
}

// AutoMLComparison is the full Figure 9 result.
type AutoMLComparison struct {
	Rows   []AutoMLRow
	PValue float64
	Budget time.Duration
}

// AutoMLBudget is the scaled stand-in for the paper's 40-second budget.
// The paper limits the budget exactly "to avoid the exploration of the
// full search space"; the scaled value keeps trials scarce relative to
// the grid so the seeding has something to save.
const AutoMLBudget = 35 * time.Millisecond

// RunFigure9 compares the KGpip pipeline seeded by the LiDS graph
// (Pip_LiDS) against the same pipeline over a GraphGen4Code-style KG
// without parameter names (Pip_G4C) on the AutoML suite.
func RunFigure9(corpusSize int) AutoMLComparison {
	corpus, corpusTasks := Corpus(corpusSize, 950)
	a := pipeline.NewAbstractor()
	var abss []*pipeline.Abstraction
	for _, g := range corpus {
		abss = append(abss, a.Abstract(g.Script))
	}
	usages := automl.MineUsages(abss)
	p := profiler.New()
	dsEmb := map[string]embed.Vector{}
	for _, task := range corpusTasks {
		dsEmb[task.Name] = transform.TableEmbedding(p, task.Frame)
	}
	seeded := automl.New(usages, dsEmb, true)
	unseeded := automl.New(usages, dsEmb, false)

	cmp := AutoMLComparison{Budget: AutoMLBudget}
	var lidsScores, g4cScores []float64
	for _, task := range lakegen.AutoMLSuite() {
		emb := transform.TableEmbedding(p, task.Frame)
		rL, errL := seeded.Fit(task.Frame, task.Target, emb, AutoMLBudget)
		rG, errG := unseeded.Fit(task.Frame, task.Target, emb, AutoMLBudget)
		if errL != nil || errG != nil {
			continue
		}
		cmp.Rows = append(cmp.Rows, AutoMLRow{
			ID:         task.ID,
			Task:       task.Task,
			F1LiDS:     rL.F1,
			F1G4C:      rG.F1,
			Difference: rL.F1 - rG.F1,
		})
		lidsScores = append(lidsScores, rL.F1)
		g4cScores = append(g4cScores, rG.F1)
	}
	cmp.PValue = ml.PairedTTest(lidsScores, g4cScores)
	sort.Slice(cmp.Rows, func(i, j int) bool {
		if cmp.Rows[i].Task != cmp.Rows[j].Task {
			return cmp.Rows[i].Task > cmp.Rows[j].Task // multiclass first
		}
		return cmp.Rows[i].Difference > cmp.Rows[j].Difference
	})
	return cmp
}

// FormatFigure9 renders the F1 differences and the t-test.
func FormatFigure9(cmp AutoMLComparison) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9: F1 difference Pip_LiDS - Pip_G4C (budget %s per run)\n", cmp.Budget)
	fmt.Fprintf(&sb, "%-6s %-11s %10s %10s %10s\n", "ID", "Task", "Pip_LiDS", "Pip_G4C", "Diff")
	wins := 0
	for _, r := range cmp.Rows {
		fmt.Fprintf(&sb, "%-6d %-11s %10.3f %10.3f %+10.3f\n", r.ID, r.Task, r.F1LiDS, r.F1G4C, r.Difference)
		if r.Difference >= 0 {
			wins++
		}
	}
	fmt.Fprintf(&sb, "Pip_LiDS >= Pip_G4C on %d/%d datasets; paired two-tailed t-test p = %.4f\n",
		wins, len(cmp.Rows), cmp.PValue)
	return sb.String()
}
