package vectorindex

import (
	"fmt"
	"reflect"
	"testing"

	"kglids/internal/embed"
)

func randVecs(n, dim int) []embed.Vector {
	out := make([]embed.Vector, n)
	for i := range out {
		v := embed.NewVector(dim)
		for d := range v {
			v[d] = float64((i*31+d*7)%17) - 8
		}
		out[i] = v
	}
	return out
}

func TestExportImportRoundTrip(t *testing.T) {
	h := NewHNSW(8, 32, 32)
	vecs := randVecs(60, 16)
	for i, v := range vecs {
		h.Add(fmt.Sprintf("v%03d", i), v)
	}
	imported, err := ImportHNSW(h.Export())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := vecs[i*5]
		want := h.Search(q, 5)
		got := imported.Search(q, 5)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: imported search differs\n got %v\nwant %v", i, got, want)
		}
	}
	// The imported index stays usable for further inserts.
	imported.Add("extra", randVecs(1, 16)[0])
	if imported.Len() != 61 {
		t.Fatalf("len after insert = %d", imported.Len())
	}
}

func TestImportRejectsInvalidGraphs(t *testing.T) {
	vec := randVecs(1, 4)[0]
	cases := []struct {
		name string
		g    Graph
	}{
		{"bad params", Graph{M: 1, EfConstruction: 0, EfSearch: 0}},
		{"entry out of range", Graph{M: 8, EfConstruction: 32, EfSearch: 32, Entry: 5,
			Nodes: []GraphNode{{ID: "a", Vec: vec, Links: [][]int{{}}}}}},
		{"entry -1 with nodes", Graph{M: 8, EfConstruction: 32, EfSearch: 32, Entry: -1,
			Nodes: []GraphNode{{ID: "a", Vec: vec, Links: [][]int{{}}}}}},
		{"duplicate IDs", Graph{M: 8, EfConstruction: 32, EfSearch: 32, Entry: 0,
			Nodes: []GraphNode{
				{ID: "a", Vec: vec, Links: [][]int{{}}},
				{ID: "a", Vec: vec, Links: [][]int{{}}},
			}}},
		{"link out of range", Graph{M: 8, EfConstruction: 32, EfSearch: 32, Entry: 0,
			Nodes: []GraphNode{{ID: "a", Vec: vec, Links: [][]int{{7}}}}}},
		{"zero link layers", Graph{M: 8, EfConstruction: 32, EfSearch: 32, Entry: 0,
			Nodes: []GraphNode{{ID: "a", Vec: vec, Links: [][]int{}}}}},
	}
	for _, c := range cases {
		if _, err := ImportHNSW(c.g); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
