package vectorindex

import (
	"math"

	"kglids/internal/embed"
)

// LeaderIndex is the candidate pre-filter behind the blocked similarity-
// edge pipeline (schema package): it partitions a fixed set of vectors
// into leader-centred clusters and answers radius queries with an *exact
// superset guarantee* — Candidates(q, maxAngle) reports every vector whose
// angle to q is at most maxAngle, and usually far fewer than all of them.
//
// Unlike the HNSW index, which trades recall for speed, the guarantee here
// is unconditional. It rests on the angular triangle inequality: for a
// member m of the cluster led by l,
//
//	angle(q, m) >= angle(q, l) - angle(m, l) >= angle(q, l) - radius(l)
//
// so when angle(q, l) > maxAngle + radius(l) no member of l's cluster can
// be within maxAngle of q and the whole cluster is skipped with one dot
// product. Zero vectors are safe by construction: their dot with anything
// is 0, so their angle is recorded as pi/2 and the inequality above only
// ever widens (a zero leader's cluster simply stops being prunable).
//
// Build cost is O(n * leaders * dim); query cost is O(leaders * dim) plus
// the members of the clusters that survive. Pruning quality is data-
// dependent — clustered embeddings (columns sharing value domains) prune
// heavily, adversarially orthogonal ones degrade to a full scan — but
// correctness never depends on it.
type LeaderIndex struct {
	leaders []embed.Vector // unit (or zero) leader vectors
	members [][]int32      // positions into the input slice, per leader
	radius  []float64      // max member-to-leader angle, per leader
}

// angleEps absorbs the floating-point error of dot products and Acos near
// +-1 (where the derivative of Acos blows the ~1e-13 dot error up to
// ~1e-6 of angle). Every prune test keeps this much slack so a pair
// exactly at a threshold can never be lost to rounding.
const angleEps = 1e-5

// angleBetween returns the angle of two unit-or-zero vectors.
func angleBetween(a, b embed.Vector) float64 {
	d := a.Dot(b)
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d)
}

// PruneAngle converts a cosine-similarity threshold into the search radius
// that preserves every pair at or above it: angle(a, b) <= PruneAngle(t)
// whenever cosine(a, b) >= t. Thresholds outside [-1, 1] clamp.
func PruneAngle(threshold float64) float64 {
	if threshold > 1 {
		threshold = 1
	} else if threshold < -1 {
		threshold = -1
	}
	return math.Acos(threshold)
}

// NewLeaderIndex builds the pre-filter over vecs (unnormalized; normalized
// copies are taken). attachAngle is the preferred cluster radius: a vector
// joins the first cluster (in recently-used order) whose leader is within
// attachAngle, otherwise it founds a new cluster — so the leader count
// tracks the number of natural domains in the data, and the move-to-front
// scan order makes runs of same-domain input (tables of one family
// profiled consecutively) attach after probing a handful of leaders.
//
// targetCluster (the desired average cluster size at scale) sets the
// leader cap, max(n/targetCluster, 1024): small and medium blocks cluster
// freely, very large ones converge to ~targetCluster members per cluster.
// Past the cap a vector attaches to its *nearest* leader instead, growing
// that cluster's recorded radius — queries stay exact regardless, pruning
// just weakens gracefully.
func NewLeaderIndex(vecs []embed.Vector, targetCluster int, attachAngle float64) *LeaderIndex {
	if targetCluster < 1 {
		targetCluster = 1
	}
	maxLeaders := (len(vecs) + targetCluster - 1) / targetCluster
	if maxLeaders < 1024 {
		maxLeaders = 1024
	}
	ix := &LeaderIndex{}
	var order []int // leader ids, most recently used first
	attach := func(li int, angle float64, pos int) {
		ix.members[li] = append(ix.members[li], int32(pos))
		if r := angle + angleEps; r > ix.radius[li] {
			ix.radius[li] = r
		}
	}
	for pos, v := range vecs {
		u := v.Clone()
		u.Normalize()
		if len(ix.leaders) < maxLeaders {
			attached := false
			for oi, li := range order {
				if a := angleBetween(u, ix.leaders[li]); a <= attachAngle {
					attach(li, a, pos)
					copy(order[1:oi+1], order[:oi])
					order[0] = li
					attached = true
					break
				}
			}
			if !attached {
				ix.leaders = append(ix.leaders, u)
				ix.members = append(ix.members, []int32{int32(pos)})
				ix.radius = append(ix.radius, 0)
				order = append([]int{len(ix.leaders) - 1}, order...)
			}
			continue
		}
		bestLeader, bestAngle := 0, math.Inf(1)
		for li, l := range ix.leaders {
			if a := angleBetween(u, l); a < bestAngle {
				bestLeader, bestAngle = li, a
			}
		}
		attach(bestLeader, bestAngle, pos)
	}
	return ix
}

// Clusters returns the number of leader clusters.
func (ix *LeaderIndex) Clusters() int { return len(ix.leaders) }

// Candidates invokes fn with the position of every indexed vector whose
// angle to q might be at most maxAngle. The superset guarantee: any vector
// v with angle(q, v) <= maxAngle is reported. Vectors outside the radius
// may be reported too (they share a cluster with ones inside); callers
// verify candidates with the exact similarity measure.
func (ix *LeaderIndex) Candidates(q embed.Vector, maxAngle float64, fn func(pos int32)) {
	u := q.Clone()
	u.Normalize()
	for li, l := range ix.leaders {
		if angleBetween(u, l) > maxAngle+ix.radius[li]+angleEps {
			continue
		}
		for _, m := range ix.members[li] {
			fn(m)
		}
	}
}
