package vectorindex

import (
	"fmt"
	"math/rand"
	"testing"

	"kglids/internal/embed"
)

func randVec(rng *rand.Rand, dim int) embed.Vector {
	v := embed.NewVector(dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestExactSearch(t *testing.T) {
	idx := NewExact()
	idx.Add("a", embed.Vector{1, 0, 0})
	idx.Add("b", embed.Vector{0, 1, 0})
	idx.Add("c", embed.Vector{0.9, 0.1, 0})
	res := idx.Search(embed.Vector{1, 0, 0}, 2)
	if len(res) != 2 || res[0].ID != "a" || res[1].ID != "c" {
		t.Fatalf("Search = %v", res)
	}
	if res[0].Score < 0.999 {
		t.Errorf("self-similarity = %v", res[0].Score)
	}
}

func TestExactReplace(t *testing.T) {
	idx := NewExact()
	idx.Add("a", embed.Vector{1, 0})
	idx.Add("a", embed.Vector{0, 1})
	if idx.Len() != 1 {
		t.Fatalf("Len = %d after replace", idx.Len())
	}
	res := idx.Search(embed.Vector{0, 1}, 1)
	if res[0].Score < 0.999 {
		t.Error("replacement vector not used")
	}
	v, ok := idx.Get("a")
	if !ok || v[1] != 1 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := idx.Get("zz"); ok {
		t.Error("Get found missing ID")
	}
}

func TestExactKLargerThanIndex(t *testing.T) {
	idx := NewExact()
	idx.Add("a", embed.Vector{1, 0})
	res := idx.Search(embed.Vector{1, 0}, 10)
	if len(res) != 1 {
		t.Errorf("len = %d", len(res))
	}
}

func TestHNSWRecall(t *testing.T) {
	const n, dim, k = 500, 32, 10
	rng := rand.New(rand.NewSource(7))
	exact := NewExact()
	hnsw := NewHNSW(16, 100, 80)
	for i := 0; i < n; i++ {
		v := randVec(rng, dim)
		id := fmt.Sprintf("v%d", i)
		exact.Add(id, v)
		hnsw.Add(id, v)
	}
	if hnsw.Len() != n {
		t.Fatalf("hnsw len = %d", hnsw.Len())
	}
	// Average recall@k over queries must be high.
	totalRecall := 0.0
	const queries = 20
	for qi := 0; qi < queries; qi++ {
		q := randVec(rng, dim)
		want := map[string]bool{}
		for _, r := range exact.Search(q, k) {
			want[r.ID] = true
		}
		hits := 0
		for _, r := range hnsw.Search(q, k) {
			if want[r.ID] {
				hits++
			}
		}
		totalRecall += float64(hits) / float64(k)
	}
	if avg := totalRecall / queries; avg < 0.85 {
		t.Errorf("HNSW recall@%d = %.3f, want >= 0.85", k, avg)
	}
}

func TestHNSWEmpty(t *testing.T) {
	h := NewHNSW(8, 32, 32)
	if res := h.Search(embed.Vector{1, 0}, 5); res != nil {
		t.Errorf("empty search = %v", res)
	}
}

func TestHNSWSingle(t *testing.T) {
	h := NewHNSW(8, 32, 32)
	h.Add("only", embed.Vector{1, 2, 3})
	res := h.Search(embed.Vector{1, 2, 3}, 3)
	if len(res) != 1 || res[0].ID != "only" {
		t.Errorf("single search = %v", res)
	}
}

func TestHNSWReplace(t *testing.T) {
	h := NewHNSW(8, 32, 32)
	h.Add("a", embed.Vector{1, 0})
	h.Add("a", embed.Vector{0, 1})
	if h.Len() != 1 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestHNSWDeterministic(t *testing.T) {
	build := func() []Result {
		h := NewHNSW(8, 50, 50)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 100; i++ {
			h.Add(fmt.Sprintf("v%d", i), randVec(rng, 16))
		}
		q := embed.NewVector(16)
		q[0] = 1
		return h.Search(q, 5)
	}
	a, b := build(), build()
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("HNSW build/search not deterministic")
		}
	}
}
