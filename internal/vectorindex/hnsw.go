package vectorindex

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"kglids/internal/embed"
)

// HNSW is a Hierarchical Navigable Small World approximate-nearest-
// neighbour index (Malkov & Yashunin), the structure Starmie uses and that
// KGLiDS's embedding store exposes for embedding-based discovery. Like
// Exact it is safe for concurrent use (shared lock for Search/Len,
// exclusive for Add).
type HNSW struct {
	mu             sync.RWMutex
	m              int // max links per node per layer
	efConstruction int
	efSearch       int

	nodes  []hnswNode
	byID   map[string]int
	entry  int // index of entry point, -1 when empty
	maxLvl int
	rng    *rand.Rand
	levelF float64

	// deleted marks tombstoned node indexes. Tombstones stay navigable —
	// removing a node's links would tear holes in the small-world graph —
	// but are never returned from Search and never counted by Len. The
	// index compacts itself (rebuilding from live nodes) when tombstones
	// outnumber live entries.
	deleted  map[int]bool
	nDeleted int
}

type hnswNode struct {
	id    string
	vec   embed.Vector
	links [][]int // links[level] -> neighbour node indexes
}

// NewHNSW returns an HNSW index with the given connectivity (m) and
// construction/search beam widths. Typical values: m=16, ef=64.
func NewHNSW(m, efConstruction, efSearch int) *HNSW {
	return &HNSW{
		m:              m,
		efConstruction: efConstruction,
		efSearch:       efSearch,
		byID:           map[string]int{},
		entry:          -1,
		rng:            rand.New(rand.NewSource(42)),
		levelF:         1.0 / math.Log(float64(m)),
		deleted:        map[int]bool{},
	}
}

// Len implements Index. Tombstoned nodes are not counted.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes) - h.nDeleted
}

// Add implements Index. Re-adding an ID that was removed inserts a fresh
// node with newly selected neighbours (the tombstone stays behind until
// compaction).
func (h *HNSW) Add(id string, v embed.Vector) {
	u := v.Clone()
	u.Normalize()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.addLocked(id, u)
}

// addLocked inserts a pre-normalized vector; caller holds h.mu.
func (h *HNSW) addLocked(id string, u embed.Vector) {
	if i, ok := h.byID[id]; ok {
		h.nodes[i].vec = u
		return
	}
	level := int(math.Floor(-math.Log(h.rng.Float64()+1e-12) * h.levelF))
	node := hnswNode{id: id, vec: u, links: make([][]int, level+1)}
	idx := len(h.nodes)
	h.nodes = append(h.nodes, node)
	h.byID[id] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxLvl = level
		return
	}
	cur := h.entry
	// Greedy descent through upper layers.
	for l := h.maxLvl; l > level; l-- {
		cur = h.greedyClosest(u, cur, l)
	}
	// Insert at each layer from min(level, maxLvl) down to 0.
	for l := min(level, h.maxLvl); l >= 0; l-- {
		cands := h.searchLayer(u, cur, h.efConstruction, l)
		neighbours := h.selectNeighbours(cands, h.m)
		h.nodes[idx].links[l] = neighbours
		for _, n := range neighbours {
			h.nodes[n].links[l] = append(h.nodes[n].links[l], idx)
			if len(h.nodes[n].links[l]) > h.m*2 {
				h.pruneLinks(n, l)
			}
		}
		if len(cands) > 0 {
			cur = cands[0].node
		}
	}
	if level > h.maxLvl {
		h.maxLvl = level
		h.entry = idx
	}
}

// Remove tombstones a node: it disappears from Search results and Len but
// keeps its links so the navigable graph stays connected. When tombstones
// outnumber live nodes the index rebuilds itself from the live set.
// Returns whether the ID was present.
func (h *HNSW) Remove(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	i, ok := h.byID[id]
	if !ok {
		return false
	}
	delete(h.byID, id)
	h.deleted[i] = true
	h.nDeleted++
	if live := len(h.nodes) - h.nDeleted; h.nDeleted > live && len(h.nodes) > 16 {
		h.compactLocked()
	}
	return true
}

// compactLocked rebuilds the index from its live nodes, discarding
// tombstones. Insertion order (and the level RNG stream) continues from
// the current state, so the rebuilt graph is deterministic.
func (h *HNSW) compactLocked() {
	type entry struct {
		id  string
		vec embed.Vector
	}
	live := make([]entry, 0, len(h.nodes)-h.nDeleted)
	for i, n := range h.nodes {
		if !h.deleted[i] {
			live = append(live, entry{id: n.id, vec: n.vec})
		}
	}
	h.nodes = h.nodes[:0]
	h.byID = make(map[string]int, len(live))
	h.deleted = map[int]bool{}
	h.nDeleted = 0
	h.entry = -1
	h.maxLvl = 0
	for _, e := range live {
		h.addLocked(e.id, e.vec)
	}
}

type scored struct {
	node  int
	score float64
}

func (h *HNSW) greedyClosest(q embed.Vector, start, level int) int {
	cur := start
	curScore := q.Dot(h.nodes[cur].vec)
	for {
		improved := false
		for _, n := range h.nodes[cur].links[levelIdx(level, len(h.nodes[cur].links))] {
			if s := q.Dot(h.nodes[n].vec); s > curScore {
				cur, curScore = n, s
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// levelIdx clamps a level to the node's available layers.
func levelIdx(level, nLayers int) int {
	if level >= nLayers {
		return nLayers - 1
	}
	return level
}

// searchLayer is the beam search of HNSW within one layer; results are
// sorted best-first.
func (h *HNSW) searchLayer(q embed.Vector, entry, ef, level int) []scored {
	visited := map[int]bool{entry: true}
	start := scored{node: entry, score: q.Dot(h.nodes[entry].vec)}
	candidates := []scored{start}
	results := []scored{start}
	for len(candidates) > 0 {
		// Pop best candidate.
		best := 0
		for i, c := range candidates {
			if c.score > candidates[best].score {
				best = i
			}
		}
		c := candidates[best]
		candidates = append(candidates[:best], candidates[best+1:]...)
		// Worst current result.
		worst := results[len(results)-1].score
		if c.score < worst && len(results) >= ef {
			break
		}
		node := h.nodes[c.node]
		if level >= len(node.links) {
			continue
		}
		for _, n := range node.links[level] {
			if visited[n] {
				continue
			}
			visited[n] = true
			s := q.Dot(h.nodes[n].vec)
			if len(results) < ef || s > results[len(results)-1].score {
				candidates = append(candidates, scored{node: n, score: s})
				results = append(results, scored{node: n, score: s})
				sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })
				if len(results) > ef {
					results = results[:ef]
				}
			}
		}
	}
	return results
}

// selectNeighbours keeps the top-m candidates.
func (h *HNSW) selectNeighbours(cands []scored, m int) []int {
	out := make([]int, 0, m)
	for _, c := range cands {
		if len(out) >= m {
			break
		}
		out = append(out, c.node)
	}
	return out
}

// pruneLinks trims a node's neighbour list at a layer to the best m.
func (h *HNSW) pruneLinks(node, level int) {
	v := h.nodes[node].vec
	links := h.nodes[node].links[level]
	sort.Slice(links, func(i, j int) bool {
		return v.Dot(h.nodes[links[i]].vec) > v.Dot(h.nodes[links[j]].vec)
	})
	if len(links) > h.m {
		h.nodes[node].links[level] = append([]int(nil), links[:h.m]...)
	}
}

// Search implements Index. Non-positive k and empty (or fully tombstoned)
// indexes yield no results; tombstoned nodes are traversed but never
// returned.
func (h *HNSW) Search(q embed.Vector, k int) []Result {
	if k <= 0 {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.entry < 0 || len(h.nodes) == h.nDeleted {
		return nil
	}
	nq := q.Clone()
	nq.Normalize()
	cur := h.entry
	for l := h.maxLvl; l > 0; l-- {
		cur = h.greedyClosest(nq, cur, l)
	}
	// Widen the beam by the tombstone count so deletions do not silently
	// shrink recall below k.
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	ef += h.nDeleted
	cands := h.searchLayer(nq, cur, ef, 0)
	out := make([]Result, 0, k)
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		if h.deleted[c.node] {
			continue
		}
		out = append(out, Result{ID: h.nodes[c.node].id, Score: c.score})
	}
	return out
}
