// Package vectorindex is the embedding store of KGLiDS (paper Section 2.2),
// substituting for Faiss: it indexes column/table embeddings and supports
// exact and approximate (HNSW) nearest-neighbour search by cosine
// similarity.
package vectorindex

import (
	"fmt"
	"sort"
	"sync"

	"kglids/internal/embed"
)

// Result is one nearest-neighbour hit.
type Result struct {
	ID    string
	Score float64 // cosine similarity
}

// Index is the interface shared by the exact and HNSW implementations.
type Index interface {
	// Add inserts a vector under an ID. Adding an existing ID replaces it.
	Add(id string, v embed.Vector)
	// Search returns the k entries most similar to q, best first.
	Search(q embed.Vector, k int) []Result
	// Len returns the number of indexed vectors.
	Len() int
}

// Exact is a brute-force cosine index. It is safe for concurrent use: reads
// (Search, Get, IDs, Len) take a shared lock, mutations an exclusive one, so
// a served platform can index new tables while answering queries.
type Exact struct {
	mu   sync.RWMutex
	ids  []string
	vecs []embed.Vector
	pos  map[string]int
}

// NewExact returns an empty brute-force index.
func NewExact() *Exact { return &Exact{pos: map[string]int{}} }

// Add implements Index.
func (e *Exact) Add(id string, v embed.Vector) {
	u := v.Clone()
	u.Normalize()
	e.mu.Lock()
	defer e.mu.Unlock()
	if i, ok := e.pos[id]; ok {
		e.vecs[i] = u
		return
	}
	e.pos[id] = len(e.ids)
	e.ids = append(e.ids, id)
	e.vecs = append(e.vecs, u)
}

// Remove deletes a vector by ID, preserving the insertion order of the
// remaining entries (tie-breaking in Search depends on it). Returns whether
// the ID was present.
func (e *Exact) Remove(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.pos[id]
	if !ok {
		return false
	}
	e.ids = append(e.ids[:i], e.ids[i+1:]...)
	e.vecs = append(e.vecs[:i], e.vecs[i+1:]...)
	delete(e.pos, id)
	for j := i; j < len(e.ids); j++ {
		e.pos[e.ids[j]] = j
	}
	return true
}

// Search implements Index. Non-positive k and empty indexes yield no
// results.
func (e *Exact) Search(q embed.Vector, k int) []Result {
	if k <= 0 {
		return nil
	}
	nq := q.Clone()
	nq.Normalize()
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.ids) == 0 {
		return nil
	}
	results := make([]Result, 0, len(e.ids))
	for i, v := range e.vecs {
		results = append(results, Result{ID: e.ids[i], Score: nq.Dot(v)})
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	if k < len(results) {
		results = results[:k]
	}
	return results
}

// Len implements Index.
func (e *Exact) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.ids)
}

// Get returns the stored (normalized) vector for id.
func (e *Exact) Get(id string) (embed.Vector, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	i, ok := e.pos[id]
	if !ok {
		return nil, false
	}
	return e.vecs[i], true
}

// IDs returns all indexed IDs in insertion order.
func (e *Exact) IDs() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.ids...)
}

// String renders a result for debugging.
func (r Result) String() string { return fmt.Sprintf("%s(%.3f)", r.ID, r.Score) }
