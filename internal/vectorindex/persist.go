package vectorindex

import (
	"fmt"
	"math"
	"math/rand"

	"kglids/internal/embed"
)

// Graph is the serializable state of an HNSW index: its construction
// parameters plus the full navigable small-world structure. Persisting the
// graph (rather than the raw vectors) means a restored index answers
// queries identically to the saved one — the links are reproduced verbatim
// instead of being rebuilt from a fresh random level assignment.
type Graph struct {
	M              int
	EfConstruction int
	EfSearch       int
	Entry          int // node index of the entry point, -1 when empty
	MaxLevel       int
	Nodes          []GraphNode
}

// GraphNode is one serialized HNSW node. Vec is the normalized vector as
// stored; Links[level] lists neighbour node indexes at that layer.
type GraphNode struct {
	ID    string
	Vec   embed.Vector
	Links [][]int
}

// Export captures the index state for snapshotting. Tombstoned nodes are
// compacted away: live nodes keep their relative order, links are remapped
// (links into tombstones are dropped), and the entry point is re-anchored
// to a live node if the original was removed. The exported graph therefore
// always round-trips through ImportHNSW regardless of deletion history.
func (h *HNSW) Export() Graph {
	h.mu.RLock()
	defer h.mu.RUnlock()
	g := Graph{
		M:              h.m,
		EfConstruction: h.efConstruction,
		EfSearch:       h.efSearch,
		Entry:          -1,
		Nodes:          make([]GraphNode, 0, len(h.nodes)-h.nDeleted),
	}
	remap := make(map[int]int, len(h.nodes)-h.nDeleted)
	for i := range h.nodes {
		if !h.deleted[i] {
			remap[i] = len(remap)
		}
	}
	for i, n := range h.nodes {
		if h.deleted[i] {
			continue
		}
		links := make([][]int, len(n.links))
		for l, ns := range n.links {
			links[l] = make([]int, 0, len(ns))
			for _, nb := range ns {
				if to, live := remap[nb]; live {
					links[l] = append(links[l], to)
				}
			}
		}
		if lvl := len(n.links) - 1; lvl > g.MaxLevel {
			g.MaxLevel = lvl
		}
		g.Nodes = append(g.Nodes, GraphNode{ID: n.id, Vec: n.vec.Clone(), Links: links})
	}
	if to, live := remap[h.entry]; live {
		g.Entry = to
	} else {
		// Entry was tombstoned: anchor to the highest-levelled live node
		// (first such node for determinism).
		for i, gn := range g.Nodes {
			if len(gn.Links)-1 == g.MaxLevel {
				g.Entry = i
				break
			}
		}
	}
	return g
}

// ImportHNSW reconstructs an index from an exported graph. The structure is
// restored verbatim, so searches return exactly what the exported index
// returned. The level-assignment RNG is reseeded deterministically; nodes
// added after an import may therefore land on different levels than they
// would have on the original index, which only affects approximation
// quality, never correctness.
func ImportHNSW(g Graph) (*HNSW, error) {
	if g.M <= 1 || g.EfConstruction < 1 || g.EfSearch < 1 {
		return nil, fmt.Errorf("vectorindex: invalid HNSW parameters m=%d efc=%d efs=%d", g.M, g.EfConstruction, g.EfSearch)
	}
	n := len(g.Nodes)
	if g.Entry < -1 || g.Entry >= n || (g.Entry == -1 && n > 0) {
		return nil, fmt.Errorf("vectorindex: entry point %d out of range for %d nodes", g.Entry, n)
	}
	h := &HNSW{
		m:              g.M,
		efConstruction: g.EfConstruction,
		efSearch:       g.EfSearch,
		byID:           make(map[string]int, n),
		entry:          g.Entry,
		maxLvl:         g.MaxLevel,
		rng:            rand.New(rand.NewSource(42)),
		levelF:         1.0 / math.Log(float64(g.M)),
		deleted:        map[int]bool{},
	}
	h.nodes = make([]hnswNode, n)
	for i, gn := range g.Nodes {
		if _, dup := h.byID[gn.ID]; dup {
			return nil, fmt.Errorf("vectorindex: duplicate node ID %q", gn.ID)
		}
		// Add always creates at least one layer; a zero-layer node would
		// make levelIdx return -1 and panic during search.
		if len(gn.Links) == 0 {
			return nil, fmt.Errorf("vectorindex: node %d (%q) has no link layers", i, gn.ID)
		}
		links := make([][]int, len(gn.Links))
		for l, ns := range gn.Links {
			for _, nb := range ns {
				if nb < 0 || nb >= n {
					return nil, fmt.Errorf("vectorindex: node %d level %d links to out-of-range node %d", i, l, nb)
				}
			}
			links[l] = append([]int(nil), ns...)
		}
		h.nodes[i] = hnswNode{id: gn.ID, vec: gn.Vec.Clone(), links: links}
		h.byID[gn.ID] = i
	}
	return h, nil
}
