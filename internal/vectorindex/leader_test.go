package vectorindex

import (
	"math"
	"math/rand"
	"testing"

	"kglids/internal/embed"
)

// randomClusteredVecs builds vectors around nCenters random unit centers
// plus a few zero vectors, the shape the leader pre-filter serves.
func randomClusteredVecs(rng *rand.Rand, n, dim, nCenters int) []embed.Vector {
	centers := make([]embed.Vector, nCenters)
	for i := range centers {
		c := embed.NewVector(dim)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		c.Normalize()
		centers[i] = c
	}
	out := make([]embed.Vector, n)
	for i := range out {
		if i%17 == 0 {
			out[i] = embed.NewVector(dim) // zero vector
			continue
		}
		c := centers[rng.Intn(nCenters)]
		v := c.Clone()
		for d := range v {
			v[d] += 0.25 * rng.NormFloat64()
		}
		v.Scale(1 + rng.Float64()) // unnormalized on purpose
		out[i] = v
	}
	return out
}

// TestLeaderIndexExactSuperset is the contract test: for random data and
// random thresholds, Candidates must report every vector whose cosine
// similarity to the query is at or above the threshold.
func TestLeaderIndexExactSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 40 + rng.Intn(160)
		vecs := randomClusteredVecs(rng, n, 24, 1+rng.Intn(8))
		target := 1 + rng.Intn(16)
		threshold := []float64{0.95, 0.85, 0.6, 0.3, 0.0}[rng.Intn(5)]
		maxAngle := PruneAngle(threshold)
		ix := NewLeaderIndex(vecs, target, maxAngle/2)
		for q := 0; q < n; q += 1 + rng.Intn(5) {
			got := map[int32]bool{}
			ix.Candidates(vecs[q], maxAngle, func(pos int32) { got[pos] = true })
			for j, v := range vecs {
				if embed.Cosine(vecs[q], v) >= threshold && !got[int32(j)] {
					t.Fatalf("trial %d: query %d lost neighbour %d (cos %.4f >= %.2f, %d clusters)",
						trial, q, j, embed.Cosine(vecs[q], v), threshold, ix.Clusters())
				}
			}
		}
	}
}

// TestLeaderIndexPrunes asserts the pre-filter actually skips far-away
// clusters on well-separated data (pruning quality, not correctness).
func TestLeaderIndexPrunes(t *testing.T) {
	dim := 32
	mk := func(axis int, n int) []embed.Vector {
		out := make([]embed.Vector, n)
		for i := range out {
			v := embed.NewVector(dim)
			v[axis] = 1
			v[(axis+1)%dim] = 0.05 * float64(i%3)
			out[i] = v
		}
		return out
	}
	vecs := append(mk(0, 50), mk(8, 50)...) // two orthogonal families
	ix := NewLeaderIndex(vecs, 25, PruneAngle(0.85)/2)
	count := 0
	ix.Candidates(vecs[0], PruneAngle(0.85), func(pos int32) { count++ })
	if count >= len(vecs) {
		t.Fatalf("no pruning: %d candidates of %d vectors", count, len(vecs))
	}
	if count < 50 {
		t.Fatalf("own family pruned: %d candidates", count)
	}
}

// TestLeaderIndexZeroVectors pins the zero-vector semantics: a zero query
// has cosine 0 to everything, so with a threshold <= 0 every vector must be
// a candidate, and the structure never panics.
func TestLeaderIndexZeroVectors(t *testing.T) {
	vecs := []embed.Vector{
		embed.NewVector(8), embed.NewVector(8),
		{1, 0, 0, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0, 0, 0},
	}
	ix := NewLeaderIndex(vecs, 2, PruneAngle(0.9)/2)
	got := map[int32]bool{}
	ix.Candidates(vecs[0], PruneAngle(0.0), func(pos int32) { got[pos] = true })
	for j := range vecs {
		if !got[int32(j)] {
			t.Fatalf("zero query at threshold 0 lost vector %d", j)
		}
	}
}

// TestPruneAngle pins the threshold-to-radius conversion at the edges.
func TestPruneAngle(t *testing.T) {
	if a := PruneAngle(1.0); a != 0 {
		t.Errorf("PruneAngle(1) = %v", a)
	}
	if a := PruneAngle(2.0); a != 0 {
		t.Errorf("PruneAngle(2) = %v", a)
	}
	if a := PruneAngle(-5); math.Abs(a-math.Pi) > 1e-12 {
		t.Errorf("PruneAngle(-5) = %v", a)
	}
	if a := PruneAngle(0.85); math.Abs(math.Cos(a)-0.85) > 1e-12 {
		t.Errorf("cos(PruneAngle(0.85)) = %v", math.Cos(a))
	}
}
