package vectorindex

import (
	"fmt"
	"testing"

	"kglids/internal/embed"
)

// vec builds a unit-ish test vector.
func vec(vals ...float64) embed.Vector { return embed.Vector(vals) }

// TestSearchGuards is the table-driven guard suite for both index
// implementations: non-positive k and empty indexes must yield no results
// instead of panicking or allocating.
func TestSearchGuards(t *testing.T) {
	builders := []struct {
		name  string
		empty func() Index
	}{
		{"Exact", func() Index { return NewExact() }},
		{"HNSW", func() Index { return NewHNSW(4, 8, 8) }},
	}
	cases := []struct {
		name    string
		ids     []string // indexed before searching
		k       int
		wantLen int
	}{
		{"empty index, k=3", nil, 3, 0},
		{"empty index, k=0", nil, 0, 0},
		{"k=0", []string{"a", "b"}, 0, 0},
		{"k=-5", []string{"a", "b"}, -5, 0},
		{"k=1 of 2", []string{"a", "b"}, 1, 1},
		{"k exceeds size", []string{"a", "b"}, 10, 2},
	}
	for _, b := range builders {
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/%s", b.name, c.name), func(t *testing.T) {
				idx := b.empty()
				for i, id := range c.ids {
					idx.Add(id, vec(1, float64(i), 0))
				}
				got := idx.Search(vec(1, 0, 0), c.k)
				if len(got) != c.wantLen {
					t.Errorf("Search(k=%d) returned %d results, want %d", c.k, len(got), c.wantLen)
				}
			})
		}
	}
}

func TestExactRemove(t *testing.T) {
	e := NewExact()
	for i := 0; i < 5; i++ {
		e.Add(fmt.Sprintf("t%d", i), vec(float64(i+1), 1, 0))
	}
	if !e.Remove("t2") {
		t.Fatal("Remove(t2) = false")
	}
	if e.Remove("t2") {
		t.Fatal("double remove should report absence")
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	// Insertion order of the survivors is preserved.
	want := []string{"t0", "t1", "t3", "t4"}
	got := e.IDs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	// Remaining entries stay searchable and positions stay consistent.
	if _, ok := e.Get("t2"); ok {
		t.Error("removed ID still gettable")
	}
	if v, ok := e.Get("t4"); !ok || len(v) == 0 {
		t.Error("surviving ID lost after remove")
	}
	for _, r := range e.Search(vec(5, 1, 0), 10) {
		if r.ID == "t2" {
			t.Error("removed ID returned from Search")
		}
	}
}

func TestHNSWRemoveTombstones(t *testing.T) {
	h := NewHNSW(4, 16, 16)
	for i := 0; i < 30; i++ {
		h.Add(fmt.Sprintf("t%d", i), vec(float64(i), 1, 0.5))
	}
	if !h.Remove("t7") {
		t.Fatal("Remove(t7) = false")
	}
	if h.Remove("t7") {
		t.Fatal("double remove should report absence")
	}
	if h.Len() != 29 {
		t.Fatalf("Len = %d, want 29", h.Len())
	}
	for _, r := range h.Search(vec(7, 1, 0.5), 30) {
		if r.ID == "t7" {
			t.Fatal("tombstoned ID returned from Search")
		}
	}
	// Re-adding a removed ID resurrects it as a fresh node.
	h.Add("t7", vec(7, 1, 0.5))
	if h.Len() != 30 {
		t.Fatalf("Len = %d after re-add", h.Len())
	}
	found := false
	for _, r := range h.Search(vec(7, 1, 0.5), 5) {
		if r.ID == "t7" {
			found = true
		}
	}
	if !found {
		t.Error("re-added ID not searchable")
	}
}

// TestHNSWCompaction removes most nodes to trigger the rebuild and checks
// the survivors stay searchable.
func TestHNSWCompaction(t *testing.T) {
	h := NewHNSW(4, 16, 16)
	const n = 40
	for i := 0; i < n; i++ {
		h.Add(fmt.Sprintf("t%d", i), vec(float64(i), 1, 0.5))
	}
	for i := 0; i < n-5; i++ {
		if !h.Remove(fmt.Sprintf("t%d", i)) {
			t.Fatalf("Remove(t%d) = false", i)
		}
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	res := h.Search(vec(float64(n-1), 1, 0.5), 5)
	if len(res) != 5 {
		t.Fatalf("post-compaction search returned %d results", len(res))
	}
	for _, r := range res {
		var i int
		fmt.Sscanf(r.ID, "t%d", &i)
		if i < n-5 {
			t.Errorf("deleted node %s surfaced after compaction", r.ID)
		}
	}
}

// TestHNSWExportCompactsTombstones checks that Export drops tombstones and
// the exported graph round-trips through ImportHNSW with identical search
// behaviour.
func TestHNSWExportCompactsTombstones(t *testing.T) {
	h := NewHNSW(4, 16, 16)
	for i := 0; i < 20; i++ {
		h.Add(fmt.Sprintf("t%d", i), vec(float64(i), 1, 0.5))
	}
	h.Remove("t3")
	h.Remove("t19")
	g := h.Export()
	if len(g.Nodes) != 18 {
		t.Fatalf("exported %d nodes, want 18", len(g.Nodes))
	}
	for _, gn := range g.Nodes {
		if gn.ID == "t3" || gn.ID == "t19" {
			t.Fatalf("tombstoned node %s exported", gn.ID)
		}
		for _, level := range gn.Links {
			for _, nb := range level {
				if nb < 0 || nb >= len(g.Nodes) {
					t.Fatalf("link %d out of range after remap", nb)
				}
			}
		}
	}
	imported, err := ImportHNSW(g)
	if err != nil {
		t.Fatal(err)
	}
	if imported.Len() != 18 {
		t.Fatalf("imported Len = %d", imported.Len())
	}
	want := h.Search(vec(10, 1, 0.5), 5)
	got := imported.Search(vec(10, 1, 0.5), 5)
	if len(want) != len(got) {
		t.Fatalf("search sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Errorf("hit %d: %s vs %s", i, want[i].ID, got[i].ID)
		}
	}
}

// TestHNSWRemoveEntryPoint tombstones the entry node and checks search and
// export still work.
func TestHNSWRemoveEntryPoint(t *testing.T) {
	h := NewHNSW(4, 16, 16)
	for i := 0; i < 20; i++ {
		h.Add(fmt.Sprintf("t%d", i), vec(float64(i), 1, 0.5))
	}
	// The entry point is whichever node drew the highest level; remove by
	// trying every ID until Len drops — instead, simply remove them all and
	// ensure search degrades gracefully at each step.
	for i := 0; i < 20; i++ {
		res := h.Search(vec(1, 1, 0.5), 3)
		if want := min(3, h.Len()); len(res) != want {
			t.Fatalf("search after %d removals: %d results, want %d", i, len(res), want)
		}
		h.Remove(fmt.Sprintf("t%d", i))
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after removing all", h.Len())
	}
	if res := h.Search(vec(1, 1, 0.5), 3); len(res) != 0 {
		t.Fatalf("search on emptied index returned %v", res)
	}
	if g := h.Export(); len(g.Nodes) != 0 || g.Entry != -1 {
		t.Fatalf("export of emptied index: %d nodes entry %d", len(g.Nodes), g.Entry)
	}
}
