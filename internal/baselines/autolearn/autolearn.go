// Package autolearn reimplements the AutoLearn baseline (Kaul et al.,
// ICDM 2017), the regression-based feature-learning system of Table 6 /
// Figure 8. AutoLearn computes distance correlation between all feature
// pairs, classifies correlated pairs as linear or non-linear, and
// generates new features from per-pair regressions (predicted value and
// residual). The pairwise O(f^2) regressions over O(n^2)-cost distance
// correlations are why the paper reports three-hour timeouts on wide
// datasets and an OOM on poker; Budget models the scaled time limit.
package autolearn

import (
	"errors"
	"fmt"
	"math"
	"time"

	"kglids/internal/dataframe"
)

// ErrTimeout reports that feature generation exceeded the time budget
// (the TO entries of Table 6).
var ErrTimeout = errors.New("autolearn: timed out")

// ErrOutOfMemory reports that the projected footprint of the distance
// matrices plus generated features exceeds the memory ceiling (the OOM
// entry for poker in Table 6).
var ErrOutOfMemory = errors.New("autolearn: out of memory")

// Config controls an AutoLearn run.
type Config struct {
	// Budget is the wall-clock limit (the paper uses 3 hours at full
	// scale; the reproduction scales it down proportionally).
	Budget time.Duration
	// CorrThreshold is the distance-correlation threshold above which a
	// feature pair generates new features.
	CorrThreshold float64
	// MaxRows caps the rows used for distance correlation (the original
	// uses all rows; keep 0 for faithful behaviour).
	MaxRows int
	// MaxBytes is the memory ceiling for the projected footprint of the
	// distance matrices and generated feature columns (0 = unlimited).
	MaxBytes int64
}

// DefaultConfig mirrors the paper's defaults with a CI-scale budget.
func DefaultConfig() Config {
	return Config{Budget: 10 * time.Second, CorrThreshold: 0.5}
}

// Transform generates AutoLearn features for df (excluding target) and
// returns the augmented frame, or ErrTimeout if the budget is exceeded.
func Transform(cfg Config, df *dataframe.DataFrame, target string) (*dataframe.DataFrame, error) {
	deadline := time.Now().Add(cfg.Budget)
	out := df.Clone()
	var numCols []*dataframe.Series
	for i := 0; i < df.NumCols(); i++ {
		col := df.ColumnAt(i)
		if col.Name != target && col.IsNumeric() {
			numCols = append(numCols, col)
		}
	}
	if cfg.MaxBytes > 0 {
		// Projected footprint of the original formulation: two full n^2
		// distance matrices per pair (AutoLearn does not subsample) plus
		// up to f^2 generated feature columns of n rows.
		n := int64(df.NumRows())
		f := int64(len(numCols))
		projected := 2*n*n*8 + f*f*n*16
		if projected > cfg.MaxBytes {
			return nil, fmt.Errorf("%w (projected %d bytes > limit %d)", ErrOutOfMemory, projected, cfg.MaxBytes)
		}
	}
	newFeatures := 0
	for i := 0; i < len(numCols); i++ {
		for j := 0; j < len(numCols); j++ {
			if i == j {
				continue
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("%w after generating %d features", ErrTimeout, newFeatures)
			}
			xi := values(numCols[i], cfg.MaxRows)
			xj := values(numCols[j], cfg.MaxRows)
			dc := DistanceCorrelation(xi, xj)
			if dc < cfg.CorrThreshold {
				continue
			}
			// Regress xj on xi; emit prediction and residual features.
			slope, intercept := linearFit(xi, xj)
			pred := &dataframe.Series{Name: fmt.Sprintf("al_pred_%s_%s", numCols[i].Name, numCols[j].Name)}
			resid := &dataframe.Series{Name: fmt.Sprintf("al_resid_%s_%s", numCols[i].Name, numCols[j].Name)}
			for r := 0; r < df.NumRows(); r++ {
				ci, cj := numCols[i].Cells[r], numCols[j].Cells[r]
				if ci.IsNull() || cj.IsNull() {
					pred.Cells = append(pred.Cells, dataframe.NumberCell(0))
					resid.Cells = append(resid.Cells, dataframe.NumberCell(0))
					continue
				}
				p := slope*ci.F + intercept
				pred.Cells = append(pred.Cells, dataframe.NumberCell(p))
				resid.Cells = append(resid.Cells, dataframe.NumberCell(cj.F-p))
			}
			if !out.HasColumn(pred.Name) {
				out.AddColumn(pred)
				out.AddColumn(resid)
				newFeatures += 2
			}
		}
	}
	return out, nil
}

func values(col *dataframe.Series, maxRows int) []float64 {
	vals := col.Floats()
	if maxRows > 0 && len(vals) > maxRows {
		vals = vals[:maxRows]
	}
	return vals
}

// DistanceCorrelation computes Székely's distance correlation with the
// O(n^2) pairwise distance matrices of the original formulation — the
// deliberate cost center of AutoLearn.
func DistanceCorrelation(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return 0
	}
	// Cap extreme sizes so a single pair cannot exceed memory; time cost
	// remains quadratic.
	const hardCap = 2048
	if n > hardCap {
		n = hardCap
	}
	a := centeredDistances(x[:n])
	b := centeredDistances(y[:n])
	var dcov, dvarA, dvarB float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dcov += a[i][j] * b[i][j]
			dvarA += a[i][j] * a[i][j]
			dvarB += b[i][j] * b[i][j]
		}
	}
	if dvarA == 0 || dvarB == 0 {
		return 0
	}
	return math.Sqrt(math.Abs(dcov) / math.Sqrt(dvarA*dvarB))
}

func centeredDistances(x []float64) [][]float64 {
	n := len(x)
	d := make([][]float64, n)
	rowMean := make([]float64, n)
	var grand float64
	for i := range d {
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			d[i][j] = math.Abs(x[i] - x[j])
			rowMean[i] += d[i][j]
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i][j] = d[i][j] - rowMean[i] - rowMean[j] + grand
		}
	}
	return d
}

func linearFit(x, y []float64) (slope, intercept float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, sy / float64(n)
	}
	slope = (float64(n)*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / float64(n)
	return slope, intercept
}
