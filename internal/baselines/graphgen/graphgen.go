// Package graphgen reimplements the GraphGen4Code baseline (paper
// Sections 6.2, Table 3/4): a general-purpose code knowledge graph
// generator. Unlike KGLiDS's data-science-focused abstraction, it emits
// fine-grained, per-expression triples — statement locations, variable
// names, function parameter order, one node per sub-expression — which is
// why its graphs are ~6x larger and its analysis far slower (the original
// runs WALA whole-program analysis; here the cost comes from the
// exhaustive expression-level emission itself plus the interprocedural
// resolution pass).
package graphgen

import (
	"fmt"

	"kglids/internal/pyast"
	"kglids/internal/rdf"
	"kglids/internal/store"
)

// Namespace for GraphGen4Code-style nodes.
const ns = "http://graph4code.org/"

// Aspects of the emitted graph, matching Table 4's breakdown rows.
const (
	AspectStatementLocation = "Statement location"
	AspectVariableNames     = "Variable names"
	AspectParamOrder        = "Func. parameter order"
	AspectColumnReads       = "Column reads"
	AspectLibraryCalls      = "Library calls"
	AspectCodeFlow          = "Code flow"
	AspectDataFlow          = "Data flow"
	AspectControlFlow       = "Control flow type"
	AspectFuncParameters    = "Func. parameters"
	AspectStatementText     = "Statement text"
)

// Result summarizes one abstraction run.
type Result struct {
	Triples   int
	Breakdown map[string]int
	ParseErr  error
}

// Generator emits GraphGen4Code-style graphs.
type Generator struct{}

// New returns a generator.
func New() *Generator { return &Generator{} }

// Abstract analyzes one script and inserts its graph into st.
func (g *Generator) Abstract(st *store.Store, scriptID, source string) Result {
	mod, err := pyast.Parse(source)
	if err != nil {
		return Result{ParseErr: err}
	}
	w := &g4cWalker{
		st:        st,
		script:    scriptID,
		breakdown: map[string]int{},
		lastDef:   map[string]int{},
	}
	w.walkBody(mod.Body, "module")
	// Interprocedural resolution pass: WALA-style whole-program points-to
	// analysis relates every statement pair sharing a variable; this
	// quadratic pass dominates analysis time on long scripts.
	w.interprocedural()
	w.flush()
	return Result{Triples: w.triples, Breakdown: w.breakdown}
}

type g4cWalker struct {
	st        *store.Store
	script    string
	stmtIdx   int
	exprIdx   int
	triples   int
	breakdown map[string]int
	lastDef   map[string]int
	// varUse[stmt] = variables mentioned; consumed by interprocedural().
	varUse  [][]string
	pending []rdf.Quad
}

func (w *g4cWalker) node(kind string, idx int) rdf.Term {
	return rdf.IRI(fmt.Sprintf("%s%s/%s/%d", ns, w.script, kind, idx))
}

func (w *g4cWalker) emit(aspect string, t rdf.Triple) {
	w.pending = append(w.pending, rdf.Quad{Triple: t, Graph: rdf.DefaultGraph})
	w.triples++
	w.breakdown[aspect]++
}

func (w *g4cWalker) flush() {
	w.st.AddBatch(w.pending)
	w.pending = nil
}

func (w *g4cWalker) walkBody(body []pyast.Stmt, context string) {
	var prev rdf.Term
	for _, s := range body {
		cur := w.walkStmt(s, context)
		if prev.Value != "" && cur.Value != "" {
			w.emit(AspectCodeFlow, rdf.T(prev, rdf.IRI(ns+"flowsTo"), cur))
		}
		if cur.Value != "" {
			prev = cur
		}
	}
}

func (w *g4cWalker) walkStmt(s pyast.Stmt, context string) rdf.Term {
	idx := w.stmtIdx
	w.stmtIdx++
	node := w.node("stmt", idx)
	// Statement location: file, line, and offsets (Table 4's largest
	// general-purpose aspect after parameter order).
	w.emit(AspectStatementLocation, rdf.T(node, rdf.IRI(ns+"inFile"), rdf.String(w.script)))
	w.emit(AspectStatementLocation, rdf.T(node, rdf.IRI(ns+"atLine"), rdf.Integer(int64(s.Pos()))))
	w.emit(AspectStatementLocation, rdf.T(node, rdf.IRI(ns+"columnOffset"), rdf.Integer(int64(idx%80))))
	w.emit(AspectStatementText, rdf.T(node, rdf.IRI(ns+"sourceText"), rdf.String(pyast.StmtText(s))))
	w.emit(AspectControlFlow, rdf.T(node, rdf.IRI(ns+"context"), rdf.String(context)))

	var vars []string
	switch x := s.(type) {
	case *pyast.ImportStmt, *pyast.FromImportStmt:
		w.emit(AspectLibraryCalls, rdf.T(node, rdf.IRI(ns+"imports"), rdf.String(pyast.StmtText(s))))
	case *pyast.AssignStmt:
		for _, tgt := range x.Targets {
			vars = append(vars, w.walkExpr(tgt, node)...)
		}
		vars = append(vars, w.walkExpr(x.Value, node)...)
	case *pyast.ExprStmt:
		vars = append(vars, w.walkExpr(x.X, node)...)
	case *pyast.IfStmt:
		vars = append(vars, w.walkExpr(x.Cond, node)...)
		w.walkBody(x.Body, "conditional")
		w.walkBody(x.Orelse, "conditional")
	case *pyast.ForStmt:
		vars = append(vars, w.walkExpr(x.Target, node)...)
		vars = append(vars, w.walkExpr(x.Iter, node)...)
		w.walkBody(x.Body, "loop")
	case *pyast.WhileStmt:
		vars = append(vars, w.walkExpr(x.Cond, node)...)
		w.walkBody(x.Body, "loop")
	case *pyast.FuncDef:
		for pi, p := range x.Params {
			pn := w.node("param", w.exprIdx)
			w.exprIdx++
			w.emit(AspectFuncParameters, rdf.T(node, rdf.IRI(ns+"hasParameter"), pn))
			w.emit(AspectParamOrder, rdf.T(pn, rdf.IRI(ns+"paramIndex"), rdf.Integer(int64(pi))))
			w.emit(AspectVariableNames, rdf.T(pn, rdf.IRI(ns+"varName"), rdf.String(p)))
		}
		w.walkBody(x.Body, "function")
	case *pyast.ReturnStmt:
		if x.Value != nil {
			vars = append(vars, w.walkExpr(x.Value, node)...)
		}
	case *pyast.WithStmt:
		vars = append(vars, w.walkExpr(x.Context, node)...)
		w.walkBody(x.Body, context)
	case *pyast.TryStmt:
		w.walkBody(x.Body, context)
		w.walkBody(x.Handler, "handler")
		w.walkBody(x.Final, context)
	}
	// Variable name nodes + def-use data flow.
	for _, v := range vars {
		w.emit(AspectVariableNames, rdf.T(node, rdf.IRI(ns+"mentionsVar"), rdf.String(v)))
		if def, ok := w.lastDef[v]; ok && def != idx {
			w.emit(AspectDataFlow, rdf.T(w.node("stmt", def), rdf.IRI(ns+"dataFlowsTo"), node))
		}
		w.lastDef[v] = idx
	}
	for len(w.varUse) <= idx {
		w.varUse = append(w.varUse, nil)
	}
	w.varUse[idx] = vars
	return node
}

// walkExpr emits one node per sub-expression (the general-purpose
// fine-grained emission) and returns the variables mentioned.
func (w *g4cWalker) walkExpr(e pyast.Expr, parent rdf.Term) []string {
	if e == nil {
		return nil
	}
	idx := w.exprIdx
	w.exprIdx++
	node := w.node("expr", idx)
	w.emit(AspectStatementLocation, rdf.T(parent, rdf.IRI(ns+"hasExpression"), node))
	// The dataflow-graph-of-operations model: every sub-expression feeds
	// its parent, expressions chain in evaluation order, and every node
	// carries its syntactic type.
	w.emit(AspectDataFlow, rdf.T(node, rdf.IRI(ns+"feeds"), parent))
	if idx > 0 {
		w.emit(AspectCodeFlow, rdf.T(w.node("expr", idx-1), rdf.IRI(ns+"immediatelyPrecedes"), node))
	}
	w.emit(AspectStatementText, rdf.T(node, rdf.IRI(ns+"nodeType"), rdf.String(fmt.Sprintf("%T", e))))
	w.emit(AspectStatementText, rdf.T(node, rdf.IRI(ns+"sourceText"), rdf.String(e.String())))
	w.emit(AspectStatementLocation, rdf.T(node, rdf.IRI(ns+"atLine"), rdf.Integer(int64(e.Pos()))))
	var vars []string
	switch x := e.(type) {
	case *pyast.Name:
		w.emit(AspectVariableNames, rdf.T(node, rdf.IRI(ns+"varName"), rdf.String(x.ID)))
		vars = append(vars, x.ID)
	case *pyast.Attribute:
		w.emit(AspectLibraryCalls, rdf.T(node, rdf.IRI(ns+"attribute"), rdf.String(x.Attr)))
		vars = append(vars, w.walkExpr(x.Value, node)...)
	case *pyast.Call:
		w.emit(AspectLibraryCalls, rdf.T(node, rdf.IRI(ns+"calls"), rdf.String(x.Func.String())))
		vars = append(vars, w.walkExpr(x.Func, node)...)
		for ai, a := range x.Args {
			w.emit(AspectParamOrder, rdf.T(node, rdf.IRI(ns+"argIndex"), rdf.Integer(int64(ai))))
			w.emit(AspectFuncParameters, rdf.T(node, rdf.IRI(ns+"argValue"), rdf.String(a.String())))
			vars = append(vars, w.walkExpr(a, node)...)
		}
		for _, k := range x.Keywords {
			w.emit(AspectFuncParameters, rdf.T(node, rdf.IRI(ns+"kwarg"), rdf.String(k.Name)))
			vars = append(vars, w.walkExpr(k.Value, node)...)
		}
	case *pyast.Subscript:
		if s, ok := x.Index.(*pyast.Str); ok {
			w.emit(AspectColumnReads, rdf.T(node, rdf.IRI(ns+"subscript"), rdf.String(s.Value)))
		}
		vars = append(vars, w.walkExpr(x.Value, node)...)
		vars = append(vars, w.walkExpr(x.Index, node)...)
	case *pyast.BinOp:
		vars = append(vars, w.walkExpr(x.Left, node)...)
		vars = append(vars, w.walkExpr(x.Right, node)...)
	case *pyast.UnaryOp:
		vars = append(vars, w.walkExpr(x.X, node)...)
	case *pyast.ListLit:
		for _, el := range x.Elts {
			vars = append(vars, w.walkExpr(el, node)...)
		}
	case *pyast.TupleLit:
		for _, el := range x.Elts {
			vars = append(vars, w.walkExpr(el, node)...)
		}
	case *pyast.DictLit:
		for i := range x.Keys {
			vars = append(vars, w.walkExpr(x.Keys[i], node)...)
			vars = append(vars, w.walkExpr(x.Values[i], node)...)
		}
	case *pyast.Lambda:
		vars = append(vars, w.walkExpr(x.Body, node)...)
	case *pyast.SliceExpr:
		vars = append(vars, w.walkExpr(x.Lo, node)...)
		vars = append(vars, w.walkExpr(x.Hi, node)...)
	}
	return vars
}

// interprocedural relates every statement pair sharing any variable —
// the quadratic whole-program pass that makes general-purpose analysis
// slow on pipeline corpora.
func (w *g4cWalker) interprocedural() {
	for i := 0; i < len(w.varUse); i++ {
		for j := i + 1; j < len(w.varUse); j++ {
			if shares(w.varUse[i], w.varUse[j]) {
				w.emit(AspectDataFlow, rdf.T(w.node("stmt", i), rdf.IRI(ns+"mayAlias"), w.node("stmt", j)))
			}
		}
	}
}

func shares(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
