// Package starmie reimplements the Starmie baseline (Fan et al., VLDB
// 2023), the contextualized column-embedding union-search system the
// paper compares against (Table 2, Figure 5). Starmie fine-tunes a
// language model per data lake with contrastive learning over augmented
// column serializations, embeds columns into 768 dimensions, and serves
// queries from an HNSW index. The per-lake multi-epoch training dominates
// its preprocessing (paper: 1.8x slower than KGLiDS), and query-time
// distance computation over 768-d vectors its query cost (3.3x slower).
// Token-level serialization also underfits numeric columns, matching the
// paper's observation (52.2 numeric vs 63.4 textual precision on D3L).
package starmie

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"kglids/internal/dataframe"
	"kglids/internal/embed"
	"kglids/internal/vectorindex"
)

// LMDim is the language-model embedding width (RoBERTa-base).
const LMDim = 768

// Epochs is the per-lake fine-tuning epoch count (the paper uses the
// authors' recommended 10).
const Epochs = 10

// Index is a preprocessed Starmie data lake.
type Index struct {
	hnsw     *vectorindex.HNSW
	colTable map[string]string // column key -> table name
	colsOf   map[string][]embed.Vector
	// projection is the "fine-tuned LM": a learned linear projection of
	// hashed token features, updated by the contrastive epochs.
	projection []float64
}

// serializeColumn renders a column the way Starmie feeds columns to its
// LM: header token plus value tokens.
func serializeColumn(col *dataframe.Series, maxVals int) []string {
	toks := []string{"col:" + strings.ToLower(col.Name)}
	n := 0
	for _, c := range col.Cells {
		if c.IsNull() {
			continue
		}
		if n >= maxVals {
			break
		}
		for _, t := range strings.Fields(strings.ToLower(c.S)) {
			toks = append(toks, t)
		}
		n++
	}
	return toks
}

// tokenEmbedding hashes tokens into LMDim dims (the frozen token
// embedding layer).
func tokenEmbedding(toks []string) embed.Vector {
	v := embed.NewVector(LMDim)
	if len(toks) == 0 {
		return v
	}
	for _, t := range toks {
		addHashedToken(v, t, 1.0/float64(len(toks)))
	}
	v.Normalize()
	return v
}

func addHashedToken(v embed.Vector, tok string, w float64) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= 1099511628211
	}
	idx := int(h % uint64(len(v)))
	sign := 1.0
	if (h>>63)&1 == 1 {
		sign = -1
	}
	v[idx] += sign * w
}

// augment produces a contrastive-positive view of a column (random value
// subset), the data augmentation Starmie trains with.
func augment(rng *rand.Rand, col *dataframe.Series) []string {
	toks := []string{"col:" + strings.ToLower(col.Name)}
	for _, c := range col.Cells {
		if c.IsNull() || rng.Float64() < 0.5 {
			continue
		}
		for _, t := range strings.Fields(strings.ToLower(c.S)) {
			toks = append(toks, t)
		}
	}
	return toks
}

// Preprocess fine-tunes the per-lake model (Epochs contrastive passes over
// augmented columns) and indexes all column embeddings in HNSW.
func Preprocess(tables []*dataframe.DataFrame) *Index {
	idx := &Index{
		hnsw:       vectorindex.NewHNSW(16, 64, 64),
		colTable:   map[string]string{},
		colsOf:     map[string][]embed.Vector{},
		projection: make([]float64, LMDim),
	}
	for i := range idx.projection {
		idx.projection[i] = 1.0
	}
	rng := rand.New(rand.NewSource(77))
	// Contrastive fine-tuning: for each epoch, embed two augmented views
	// per column and nudge the (diagonal) projection to increase their
	// agreement. This reproduces the multi-epoch training cost and its
	// effect (stable dims get up-weighted).
	for epoch := 0; epoch < Epochs; epoch++ {
		for _, df := range tables {
			for c := 0; c < df.NumCols(); c++ {
				col := df.ColumnAt(c)
				a := tokenEmbedding(augment(rng, col))
				b := tokenEmbedding(augment(rng, col))
				for d := 0; d < LMDim; d++ {
					grad := a[d] * b[d] // agreement signal
					idx.projection[d] += 0.01 * grad
					if idx.projection[d] < 0.1 {
						idx.projection[d] = 0.1
					}
				}
			}
		}
	}
	// Embed and index every column.
	for _, df := range tables {
		for c := 0; c < df.NumCols(); c++ {
			col := df.ColumnAt(c)
			v := idx.embedColumn(col)
			key := fmt.Sprintf("%s::%s", df.Name, col.Name)
			idx.colTable[key] = df.Name
			idx.colsOf[df.Name] = append(idx.colsOf[df.Name], v)
			idx.hnsw.Add(key, v)
		}
	}
	return idx
}

func (idx *Index) embedColumn(col *dataframe.Series) embed.Vector {
	v := tokenEmbedding(serializeColumn(col, 256))
	for d := range v {
		v[d] *= idx.projection[d]
	}
	v.Normalize()
	return v
}

// Result is one ranked candidate table.
type Result struct {
	Table string
	Score float64
}

// Query embeds the query table's columns, retrieves similar columns from
// HNSW, and aggregates per-table scores.
func (idx *Index) Query(df *dataframe.DataFrame, k int) []Result {
	scores := map[string]float64{}
	for c := 0; c < df.NumCols(); c++ {
		col := df.ColumnAt(c)
		v := idx.embedColumn(col)
		best := map[string]float64{}
		for _, hit := range idx.hnsw.Search(v, 40) {
			table := idx.colTable[hit.ID]
			if table == df.Name {
				continue
			}
			if hit.Score > best[table] {
				best[table] = hit.Score
			}
		}
		for table, s := range best {
			scores[table] += s
		}
	}
	out := make([]Result, 0, len(scores))
	for table, s := range scores {
		out = append(out, Result{Table: table, Score: s / float64(df.NumCols())})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
