// Package santos reimplements the SANTOS baseline (Khatiwada et al.,
// SIGMOD 2023), the relationship-based semantic table union search system
// the paper compares against (Table 2, Figure 5). SANTOS matches every
// column value against an open knowledge base (YAGO in the original; the
// gazetteer KB here) and a synthesized KB built from the data lake during
// preprocessing, derives per-table column-relationship signatures, and at
// query time scores candidates by matching relationship signatures and
// re-checking value pairs. Its value-granular processing is why the paper
// measures 7.3x slower preprocessing and 51.2x slower queries than KGLiDS.
package santos

import (
	"fmt"
	"sort"
	"strings"

	"kglids/internal/dataframe"
	"kglids/internal/profiler"
)

// columnConcept is the semantic concept SANTOS assigns a column from its
// values.
type columnConcept struct {
	// Concept from the open KB ("" if unmatched).
	open string
	// Concept from the synthesized KB: a hash bucket of the column's
	// characteristic values.
	synth string
}

// relationship is an ordered pair of column concepts within a table.
type relationship struct{ a, b string }

// tableSignature is the set of intra-table column relationships.
type tableSignature struct {
	name     string
	concepts []columnConcept
	rels     map[relationship]bool
	// columns keeps per-column distinct value sets for query-time value
	// matching (the expensive re-check).
	columns [][]string
}

// Index is a preprocessed SANTOS data lake.
type Index struct {
	tables []*tableSignature
	byName map[string]*tableSignature
	// openKB: value -> concept; synthKB: value -> synthesized concept.
	openKB  map[string]string
	synthKB map[string]string
}

// Preprocess builds the SANTOS index. Every value of every column is
// matched against both KBs (value granularity, the paper's stated cost
// driver).
func Preprocess(tables []*dataframe.DataFrame) *Index {
	idx := &Index{
		byName:  map[string]*tableSignature{},
		openKB:  buildOpenKB(),
		synthKB: map[string]string{},
	}
	// Pass 1: synthesize a KB from the lake — each distinct value maps to
	// a concept derived from the columns it appears in (the synthesized KB
	// of the original).
	for _, df := range tables {
		for c := 0; c < df.NumCols(); c++ {
			col := df.ColumnAt(c)
			concept := synthConcept(df.Name, col.Name)
			for _, cell := range col.Cells {
				if cell.IsNull() {
					continue
				}
				v := strings.ToLower(cell.S)
				if _, exists := idx.synthKB[v]; !exists {
					idx.synthKB[v] = concept
				}
			}
		}
	}
	// Pass 2: per-table signatures; every value matched against both KBs
	// at token granularity — whole value, individual tokens, and token
	// bigrams — reproducing the per-value string processing that makes
	// SANTOS preprocessing the slowest of the three systems.
	for _, df := range tables {
		sig := &tableSignature{name: df.Name, rels: map[relationship]bool{}}
		for c := 0; c < df.NumCols(); c++ {
			col := df.ColumnAt(c)
			openVotes := map[string]int{}
			synthVotes := map[string]int{}
			seen := map[string]bool{}
			var distinct []string
			for _, cell := range col.Cells {
				if cell.IsNull() {
					continue
				}
				v := strings.ToLower(cell.S)
				for _, probe := range kbProbes(v) {
					if concept, ok := idx.openKB[probe]; ok {
						openVotes[concept]++
						break
					}
				}
				if concept, ok := idx.synthKB[v]; ok {
					synthVotes[concept]++
				}
				if !seen[v] {
					seen[v] = true
					distinct = append(distinct, v)
				}
			}
			sig.concepts = append(sig.concepts, columnConcept{
				open:  majority(openVotes, col.Len()/4),
				synth: majority(synthVotes, 1),
			})
			sig.columns = append(sig.columns, distinct)
		}
		// Relationship signature: all ordered concept pairs.
		for i := range sig.concepts {
			for j := range sig.concepts {
				if i == j {
					continue
				}
				ci, cj := conceptKey(sig.concepts[i]), conceptKey(sig.concepts[j])
				if ci != "" && cj != "" {
					sig.rels[relationship{a: ci, b: cj}] = true
				}
			}
		}
		idx.tables = append(idx.tables, sig)
		idx.byName[df.Name] = sig
	}
	return idx
}

// kbProbes enumerates the KB lookup keys for one value: the whole value,
// each token, and each adjacent token bigram.
func kbProbes(v string) []string {
	probes := []string{v}
	toks := strings.Fields(v)
	if len(toks) > 1 {
		probes = append(probes, toks...)
		for i := 0; i+1 < len(toks); i++ {
			probes = append(probes, toks[i]+" "+toks[i+1])
		}
	}
	return probes
}

func majority(votes map[string]int, minVotes int) string {
	best, bestN := "", minVotes
	keys := make([]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if votes[k] > bestN {
			best, bestN = k, votes[k]
		}
	}
	return best
}

func conceptKey(c columnConcept) string {
	if c.open != "" {
		return "open:" + c.open
	}
	if c.synth != "" {
		return "synth:" + c.synth
	}
	return ""
}

// synthConcept buckets columns into synthesized concepts by name shape.
func synthConcept(table, column string) string {
	return fmt.Sprintf("c_%s", strings.ToLower(column))
}

// Result is one ranked candidate.
type Result struct {
	Table string
	Score float64
}

// Query returns the top-k unionable candidates for a query table name.
// Candidates are retrieved by relationship-signature overlap, then scored
// by iterating value pairs of concept-matching columns (the expensive
// re-check the paper describes).
func (idx *Index) Query(table string, k int) []Result {
	q, ok := idx.byName[table]
	if !ok {
		return nil
	}
	var out []Result
	for _, cand := range idx.tables {
		if cand.name == q.name {
			continue
		}
		// Phase 1: relationship overlap.
		overlap := 0
		for rel := range q.rels {
			if cand.rels[rel] {
				overlap++
			}
		}
		// Phase 2: value-granular column match for same-concept columns.
		valueScore := 0.0
		for i, qc := range q.concepts {
			qKey := conceptKey(qc)
			if qKey == "" {
				continue
			}
			for j, cc := range cand.concepts {
				if conceptKey(cc) != qKey {
					continue
				}
				valueScore += containment(q.columns[i], cand.columns[j])
			}
		}
		score := float64(overlap) + valueScore
		if score > 0 {
			out = append(out, Result{Table: cand.name, Score: score})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table < out[j].Table
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// containment iterates all value pairs (the deliberate per-value cost the
// paper attributes SANTOS's query times to) to compute |A ∩ B| / |A|,
// matching values at token granularity like the preprocessing phase.
func containment(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	matches := 0
	for _, va := range a {
		for _, vb := range b {
			if va == vb || tokenOverlap(va, vb) {
				matches++
				break
			}
		}
	}
	return float64(matches) / float64(len(a))
}

// tokenOverlap reports whether multi-token values share a token.
func tokenOverlap(a, b string) bool {
	if !strings.ContainsRune(a, ' ') || !strings.ContainsRune(b, ' ') {
		return false
	}
	for _, ta := range strings.Fields(a) {
		for _, tb := range strings.Fields(b) {
			if ta == tb {
				return true
			}
		}
	}
	return false
}

// buildOpenKB returns the open knowledge base: value → concept, standing
// in for YAGO.
func buildOpenKB() map[string]string {
	kb := map[string]string{}
	add := func(concept string, values ...string) {
		for _, v := range values {
			kb[strings.ToLower(v)] = concept
		}
	}
	// Reuse the NER gazetteers as the open KB: same value → type mapping.
	ner := profiler.NewNER()
	_ = ner
	add("city", "montreal", "toronto", "vancouver", "ottawa", "calgary",
		"new york", "boston", "chicago", "seattle", "london", "paris",
		"berlin", "madrid", "rome", "tokyo", "sydney", "dublin", "vienna",
		"prague", "lisbon", "edmonton", "quebec", "winnipeg", "halifax")
	add("country", "canada", "france", "germany", "italy", "spain", "japan",
		"india", "brazil", "mexico", "australia", "sweden", "norway",
		"poland", "greece", "turkey", "egypt", "kenya", "chile", "peru",
		"ireland", "usa", "china", "russia")
	add("product", "iphone", "ipad", "macbook", "kindle", "echo", "corolla",
		"civic", "mustang", "camry", "accord", "prius", "xbox",
		"playstation", "android", "windows")
	for _, fn := range []string{"james", "mary", "john", "linda", "robert", "susan", "michael", "sarah", "david", "karen", "thomas", "nancy", "daniel", "lisa", "matthew", "emily", "andrew", "anna", "joshua", "laura"} {
		for _, ln := range []string{"smith", "johnson", "brown", "jones", "garcia", "miller", "davis", "wilson", "anderson", "taylor", "moore", "jackson", "martin", "lee", "thompson", "white", "harris", "clark", "lewis", "walker"} {
			kb[fn+" "+ln] = "person"
		}
	}
	return kb
}
