// Package baselines_test exercises the four reimplemented comparison
// systems against the behaviours the paper's evaluation relies on.
package baselines_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"kglids/internal/baselines"
	"kglids/internal/baselines/autolearn"
	"kglids/internal/baselines/graphgen"
	"kglids/internal/baselines/holoclean"
	"kglids/internal/baselines/santos"
	"kglids/internal/baselines/starmie"
	"kglids/internal/dataframe"
	"kglids/internal/experiments"
	"kglids/internal/lakegen"
	"kglids/internal/pipeline"
	"kglids/internal/store"
)

const sampleScript = `import pandas as pd
from sklearn.ensemble import RandomForestClassifier
df = pd.read_csv('titanic/train.csv')
X, y = df.drop('Survived', axis=1), df['Survived']
clf = RandomForestClassifier(50, max_depth=10)
clf.fit(X, y)
`

func TestGraphGenLargerThanKGLiDS(t *testing.T) {
	// Table 3: GraphGen4Code emits several times more triples than KGLiDS
	// for the same script.
	stG := store.New()
	resG := graphgen.New().Abstract(stG, "p1", sampleScript)
	if resG.ParseErr != nil {
		t.Fatal(resG.ParseErr)
	}
	stK := store.New()
	abs := pipeline.NewAbstractor().Abstract(pipeline.Script{ID: "p1", Source: sampleScript})
	nK := pipeline.NewGraphBuilder(nil).BuildGraph(stK, abs)
	if resG.Triples <= nK*2 {
		t.Errorf("graphgen triples = %d, kglids = %d; want > 2x", resG.Triples, nK)
	}
	// Table 4: graphgen emits location/variable/param-order aspects KGLiDS
	// does not.
	for _, aspect := range []string{graphgen.AspectStatementLocation, graphgen.AspectVariableNames, graphgen.AspectParamOrder} {
		if resG.Breakdown[aspect] == 0 {
			t.Errorf("aspect %q missing", aspect)
		}
	}
}

func TestGraphGenParseError(t *testing.T) {
	res := graphgen.New().Abstract(store.New(), "bad", "x = 'oops\n")
	if res.ParseErr == nil {
		t.Error("parse error not reported")
	}
}

func lakeFixture(t *testing.T) *lakegen.Benchmark {
	t.Helper()
	return lakegen.Generate(lakegen.Spec{
		Name: "fix", Families: 4, TablesPerFamily: 3, NoiseTables: 4,
		RowsPerTable: 60, QueryTables: 4, Seed: 61,
	})
}

func TestSantosFindsUnionables(t *testing.T) {
	b := lakeFixture(t)
	idx := santos.Preprocess(b.Tables)
	hits, misses := 0, 0
	for _, q := range b.QueryTables {
		truth := map[string]bool{}
		for _, o := range b.GroundTruth[q] {
			truth[o] = true
		}
		for _, r := range idx.Query(q, len(truth)) {
			if truth[r.Table] {
				hits++
			} else {
				misses++
			}
		}
	}
	if hits == 0 {
		t.Fatal("santos found no true unionables")
	}
	if hits < misses {
		t.Errorf("santos precision too low: %d hits, %d misses", hits, misses)
	}
}

func TestSantosUnknownQuery(t *testing.T) {
	b := lakeFixture(t)
	idx := santos.Preprocess(b.Tables)
	if res := idx.Query("absent.csv", 5); res != nil {
		t.Errorf("unknown query returned %v", res)
	}
}

func TestStarmieFindsUnionables(t *testing.T) {
	b := lakeFixture(t)
	idx := starmie.Preprocess(b.Tables)
	byName := map[string]*dataframe.DataFrame{}
	for _, df := range b.Tables {
		byName[df.Name] = df
	}
	hits := 0
	for _, q := range b.QueryTables {
		truth := map[string]bool{}
		for _, o := range b.GroundTruth[q] {
			truth[o] = true
		}
		for _, r := range idx.Query(byName[q], len(truth)) {
			if truth[r.Table] {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("starmie found no true unionables")
	}
}

func TestStarmieTextBeatsNumeric(t *testing.T) {
	// Section 6.1.1: Starmie's token-level embeddings fit textual columns
	// better than numeric ones. Two numeric columns drawn from the same
	// distribution but disjoint values should look less similar to
	// Starmie than two textual columns sharing a vocabulary.
	rng := rand.New(rand.NewSource(5))
	mkNum := func(name string, off float64) *dataframe.DataFrame {
		df := dataframe.New(name)
		s := &dataframe.Series{Name: "v"}
		for i := 0; i < 80; i++ {
			s.Cells = append(s.Cells, dataframe.NumberCell(off+rng.Float64()*100))
		}
		df.AddColumn(s)
		return df
	}
	cities := []string{"montreal", "toronto", "vancouver", "ottawa"}
	mkText := func(name string) *dataframe.DataFrame {
		df := dataframe.New(name)
		s := &dataframe.Series{Name: "city"}
		for i := 0; i < 80; i++ {
			s.Cells = append(s.Cells, dataframe.TextCell(cities[rng.Intn(len(cities))]))
		}
		df.AddColumn(s)
		return df
	}
	tables := []*dataframe.DataFrame{mkNum("n1.csv", 0.0001), mkNum("n2.csv", 0.00013), mkText("t1.csv"), mkText("t2.csv")}
	idx := starmie.Preprocess(tables)
	textScore, numScore := 0.0, 0.0
	for _, r := range idx.Query(tables[2], 3) {
		if r.Table == "t2.csv" {
			textScore = r.Score
		}
	}
	for _, r := range idx.Query(tables[0], 3) {
		if r.Table == "n2.csv" {
			numScore = r.Score
		}
	}
	if textScore <= numScore {
		t.Errorf("text similarity %v should exceed numeric %v", textScore, numScore)
	}
}

// TestGoldenQuality pins the exact precision/recall every Discoverer scores
// on the fixed-seed quick evaluation lake. Every randomness source in the
// pipeline is seeded, so these values are bit-reproducible across machines;
// any drift means a behaviour change in a discovery method (or in lakegen)
// that must be reviewed, not absorbed.
func TestGoldenQuality(t *testing.T) {
	golden := map[string]struct {
		k    int
		p, r float64
	}{
		"KGLiDS/unionable":  {3, 10.0 / 24, 15.0 / 32},
		"KGLiDS/joinable":   {4, 23.0 / 32, 0.8},
		"SANTOS/unionable":  {3, 14.0 / 24, 23.0 / 32},
		"Starmie/unionable": {3, 16.0 / 24, 25.0 / 32},
	}
	lake := lakegen.GenerateEval(lakegen.QuickEvalSpec)
	seen := map[string]bool{}
	for _, d := range baselines.All() {
		for _, q := range experiments.RunQuality(lake, d) {
			key := q.Method + "/" + q.Task
			seen[key] = true
			want, ok := golden[key]
			if !ok {
				t.Errorf("unexpected quality row %s", key)
				continue
			}
			if q.K != want.k {
				t.Errorf("%s: k = %d, want %d", key, q.K, want.k)
			}
			if math.Abs(q.Precision-want.p) > 1e-9 {
				t.Errorf("%s: precision = %.9f, want %.9f", key, q.Precision, want.p)
			}
			if math.Abs(q.Recall-want.r) > 1e-9 {
				t.Errorf("%s: recall = %.9f, want %.9f", key, q.Recall, want.r)
			}
		}
	}
	for key := range golden {
		if !seen[key] {
			t.Errorf("quality row %s missing", key)
		}
	}
}

func nullFrame(rows, cols int, seed int64) *dataframe.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	df := dataframe.New("t")
	for c := 0; c < cols; c++ {
		s := &dataframe.Series{Name: strings.Repeat("c", c+1)}
		for r := 0; r < rows; r++ {
			if rng.Float64() < 0.1 {
				s.Cells = append(s.Cells, dataframe.NullCell())
			} else {
				s.Cells = append(s.Cells, dataframe.NumberCell(float64(rng.Intn(50))+float64(c)*100))
			}
		}
		df.AddColumn(s)
	}
	return df
}

func TestHoloCleanRepairs(t *testing.T) {
	df := nullFrame(200, 4, 1)
	out, err := holoclean.New(0).Clean(df)
	if err != nil {
		t.Fatal(err)
	}
	if out.NullCount() != 0 {
		t.Errorf("nulls remain: %d", out.NullCount())
	}
	if df.NullCount() == 0 {
		t.Error("input mutated")
	}
}

func TestHoloCleanOOM(t *testing.T) {
	df := nullFrame(3000, 10, 2)
	_, err := holoclean.New(10_000).Clean(df) // tiny ceiling
	if !errors.Is(err, holoclean.ErrOutOfMemory) {
		t.Errorf("err = %v, want OOM", err)
	}
	// Generous ceiling succeeds.
	if _, err := holoclean.New(1 << 30).Clean(df); err != nil {
		t.Errorf("unexpected err with large ceiling: %v", err)
	}
}

func TestHoloCleanMemoryGrowsWithData(t *testing.T) {
	// Figure 7b: HoloClean's memory grows with dataset size. Find a
	// ceiling that admits the small set but not the large one.
	small := nullFrame(100, 4, 3)
	large := nullFrame(4000, 12, 4)
	const ceiling = 400_000
	if _, err := holoclean.New(ceiling).Clean(small); err != nil {
		t.Errorf("small dataset OOM'd: %v", err)
	}
	if _, err := holoclean.New(ceiling).Clean(large); !errors.Is(err, holoclean.ErrOutOfMemory) {
		t.Errorf("large dataset should OOM, got %v", err)
	}
}

func TestAutoLearnGeneratesFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	df := dataframe.New("t")
	a := &dataframe.Series{Name: "a"}
	b := &dataframe.Series{Name: "b"}
	y := &dataframe.Series{Name: "target"}
	for i := 0; i < 150; i++ {
		v := rng.Float64() * 10
		a.Cells = append(a.Cells, dataframe.NumberCell(v))
		b.Cells = append(b.Cells, dataframe.NumberCell(2*v+rng.NormFloat64()*0.1))
		y.Cells = append(y.Cells, dataframe.NumberCell(float64(i%2)))
	}
	df.AddColumn(a)
	df.AddColumn(b)
	df.AddColumn(y)
	out, err := autolearn.Transform(autolearn.DefaultConfig(), df, "target")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() <= df.NumCols() {
		t.Error("no features generated for correlated pair")
	}
}

func TestAutoLearnTimeout(t *testing.T) {
	df := nullFrame(1500, 14, 8)
	cfg := autolearn.Config{Budget: 1 * time.Millisecond, CorrThreshold: 0.1}
	_, err := autolearn.Transform(cfg, df.DropNullRows(), "c")
	if !errors.Is(err, autolearn.ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestDistanceCorrelation(t *testing.T) {
	x := make([]float64, 100)
	yLin := make([]float64, 100)
	yRand := make([]float64, 100)
	rng := rand.New(rand.NewSource(9))
	for i := range x {
		x[i] = rng.Float64()
		yLin[i] = 3*x[i] + 1
		yRand[i] = rng.Float64()
	}
	if dc := autolearn.DistanceCorrelation(x, yLin); dc < 0.95 {
		t.Errorf("linear dcor = %v", dc)
	}
	if dc := autolearn.DistanceCorrelation(x, yRand); dc > 0.5 {
		t.Errorf("random dcor = %v", dc)
	}
	if dc := autolearn.DistanceCorrelation(x[:1], yLin[:1]); dc != 0 {
		t.Error("degenerate dcor should be 0")
	}
}
