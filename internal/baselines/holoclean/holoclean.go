// Package holoclean reimplements the HoloClean/Aimnet baseline
// (Rekatsinas et al. 2017; Wu et al. 2020), the general data-cleaning
// system of Table 5 / Figure 7. HoloClean materializes cell-level
// co-occurrence statistics across attribute pairs and runs per-cell
// probabilistic inference to repair missing values. Its memory footprint
// grows with rows x attribute-domain sizes ("generates multiple tables
// containing dataset information throughout its cleaning process"), which
// is why the paper observes OOM failures on the three largest datasets;
// MaxBytes models the evaluation VM's memory ceiling at benchmark scale.
package holoclean

import (
	"errors"
	"fmt"
	"math"

	"kglids/internal/dataframe"
)

// ErrOutOfMemory reports that the co-occurrence model exceeded the memory
// ceiling, matching the paper's OOM rows in Table 5.
var ErrOutOfMemory = errors.New("holoclean: out of memory building co-occurrence model")

// Cleaner configures a HoloClean run.
type Cleaner struct {
	// MaxBytes caps the estimated size of the materialized statistics
	// tables (0 means unlimited).
	MaxBytes int64
	// Bins discretizes numeric attributes for co-occurrence counting.
	Bins int
}

// New returns a cleaner with the scaled memory ceiling used by the
// Table 5 reproduction.
func New(maxBytes int64) *Cleaner {
	return &Cleaner{MaxBytes: maxBytes, Bins: 16}
}

// stats is the materialized model: for every attribute pair (a, b), the
// joint distribution of (value_a, value_b).
type stats struct {
	domains [][]string
	// joint[a][b][va][vb] = count.
	joint map[[2]int]map[[2]int]int
	// estBytes is the running memory estimate.
	estBytes int64
}

// Clean repairs all missing cells and returns the cleaned copy, or
// ErrOutOfMemory when the statistics exceed MaxBytes.
func (c *Cleaner) Clean(df *dataframe.DataFrame) (*dataframe.DataFrame, error) {
	out := df.Clone()
	n := out.NumCols()
	st := &stats{joint: map[[2]int]map[[2]int]int{}}
	// Aimnet materializes per-cell feature tensors for the attention
	// model; that term grows linearly with rows x attributes and is what
	// drives the OOM on large datasets.
	st.estBytes += int64(out.NumRows()) * int64(n) * 200
	if c.MaxBytes > 0 && st.estBytes > c.MaxBytes {
		return nil, fmt.Errorf("%w (cell features: %d bytes > limit %d)", ErrOutOfMemory, st.estBytes, c.MaxBytes)
	}
	// Build per-attribute domains (discretized for numerics).
	codes := make([][]int, n) // codes[col][row] = domain code (-1 null)
	for a := 0; a < n; a++ {
		col := out.ColumnAt(a)
		domain, colCodes := c.encode(col)
		st.domains = append(st.domains, domain)
		codes[a] = colCodes
		st.estBytes += int64(len(domain) * 24)
	}
	// Materialize pairwise co-occurrence tables (the memory hog).
	rows := out.NumRows()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			table := map[[2]int]int{}
			for r := 0; r < rows; r++ {
				ca, cb := codes[a][r], codes[b][r]
				if ca < 0 || cb < 0 {
					continue
				}
				table[[2]int{ca, cb}]++
			}
			st.joint[[2]int{a, b}] = table
			st.estBytes += int64(len(table)) * 40
			if c.MaxBytes > 0 && st.estBytes > c.MaxBytes {
				return nil, fmt.Errorf("%w (estimated %d bytes > limit %d)", ErrOutOfMemory, st.estBytes, c.MaxBytes)
			}
		}
	}
	// Inference: for each null cell, pick the domain value maximizing the
	// product of pairwise conditionals given the row's observed values.
	for a := 0; a < n; a++ {
		col := out.ColumnAt(a)
		if len(st.domains[a]) == 0 {
			continue
		}
		for r := 0; r < rows; r++ {
			if !col.Cells[r].IsNull() {
				continue
			}
			bestVal, bestLL := 0, math.Inf(-1)
			for candidate := range st.domains[a] {
				ll := 0.0
				for b := 0; b < n; b++ {
					if b == a || codes[b][r] < 0 {
						continue
					}
					ll += math.Log(st.conditional(a, candidate, b, codes[b][r]))
				}
				if ll > bestLL {
					bestLL, bestVal = ll, candidate
				}
			}
			col.Cells[r] = dataframe.ParseCell(st.domains[a][bestVal])
			codes[a][r] = bestVal
		}
	}
	return out, nil
}

// encode maps a column into a discrete domain: distinct strings for
// categoricals, equi-width bins for numerics.
func (c *Cleaner) encode(col *dataframe.Series) (domain []string, codes []int) {
	codes = make([]int, col.Len())
	if col.IsNumeric() {
		lo, hi := col.MinMax()
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for b := 0; b < c.Bins; b++ {
			mid := lo + span*(float64(b)+0.5)/float64(c.Bins)
			domain = append(domain, dataframe.NumberCell(mid).S)
		}
		for i, cell := range col.Cells {
			if cell.IsNull() {
				codes[i] = -1
				continue
			}
			b := int((cell.F - lo) / span * float64(c.Bins))
			if b >= c.Bins {
				b = c.Bins - 1
			}
			if b < 0 {
				b = 0
			}
			codes[i] = b
		}
		return domain, codes
	}
	index := map[string]int{}
	for i, cell := range col.Cells {
		if cell.IsNull() {
			codes[i] = -1
			continue
		}
		code, ok := index[cell.S]
		if !ok {
			code = len(domain)
			index[cell.S] = code
			domain = append(domain, cell.S)
		}
		codes[i] = code
	}
	return domain, codes
}

// conditional returns the smoothed P(value_a | value_b).
func (st *stats) conditional(a, va, b, vb int) float64 {
	key := [2]int{a, b}
	cell := [2]int{va, vb}
	if a > b {
		key = [2]int{b, a}
		cell = [2]int{vb, va}
	}
	table := st.joint[key]
	num := float64(table[cell]) + 0.1
	den := 0.1 * float64(len(st.domains[a]))
	for pair, cnt := range table {
		match := pair[1] == vb
		if a > b {
			match = pair[0] == vb
		}
		if match {
			den += float64(cnt)
		}
	}
	return num / den
}
