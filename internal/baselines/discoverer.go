// Package baselines ties the vendored comparison systems (SANTOS, Starmie)
// and the KGLiDS platform itself behind one Discoverer interface, so the
// evaluation harness preprocesses and scores every method through exactly
// the same code path — identical queries, identical k, identical
// precision/recall accounting. The paper's Table 2 / Figure 5 comparison
// and the standing `kglids-bench eval` quality section both ride this
// interface.
package baselines

import (
	"kglids/internal/baselines/santos"
	"kglids/internal/baselines/starmie"
	"kglids/internal/core"
	"kglids/internal/dataframe"
	"kglids/internal/lakegen"
	"kglids/internal/rdf"
	"kglids/internal/schema"
)

// Discoverer is one table-discovery method under evaluation. Preprocess
// indexes the lake (the caller times it); Unionable answers a top-k
// unionable-table query by table name. Implementations must treat the lake
// as read-only: the evaluation harness runs methods concurrently over one
// shared lake.
type Discoverer interface {
	Name() string
	Preprocess(b *lakegen.Benchmark)
	Unionable(query string, k int) []string
}

// Joiner is implemented by discoverers that also answer joinable-table
// queries (top-k tables sharing a joinable column with the query table).
type Joiner interface {
	Joinable(query string, k int) []string
}

// All returns every method the evaluation harness compares: the platform
// first, then the vendored baselines.
func All() []Discoverer {
	return []Discoverer{NewKGLiDS(), NewSantos(), NewStarmie()}
}

// santosDiscoverer adapts the SANTOS reimplementation.
type santosDiscoverer struct{ idx *santos.Index }

// NewSantos returns the SANTOS baseline as a Discoverer.
func NewSantos() Discoverer { return &santosDiscoverer{} }

func (d *santosDiscoverer) Name() string { return "SANTOS" }

func (d *santosDiscoverer) Preprocess(b *lakegen.Benchmark) {
	d.idx = santos.Preprocess(b.Tables)
}

func (d *santosDiscoverer) Unionable(query string, k int) []string {
	var names []string
	for _, r := range d.idx.Query(query, k) {
		names = append(names, r.Table)
	}
	return names
}

// starmieDiscoverer adapts the Starmie reimplementation, which queries by
// frame rather than by name.
type starmieDiscoverer struct {
	idx    *starmie.Index
	byName map[string]*dataframe.DataFrame
}

// NewStarmie returns the Starmie baseline as a Discoverer.
func NewStarmie() Discoverer { return &starmieDiscoverer{} }

func (d *starmieDiscoverer) Name() string { return "Starmie" }

func (d *starmieDiscoverer) Preprocess(b *lakegen.Benchmark) {
	d.byName = map[string]*dataframe.DataFrame{}
	for _, df := range b.Tables {
		d.byName[df.Name] = df
	}
	d.idx = starmie.Preprocess(b.Tables)
}

func (d *starmieDiscoverer) Unionable(query string, k int) []string {
	df := d.byName[query]
	if df == nil {
		return nil
	}
	var names []string
	for _, r := range d.idx.Query(df, k) {
		names = append(names, r.Table)
	}
	return names
}

// KGLiDSDiscoverer runs the platform's own discovery paths (materialized
// similarity edges over the knowledge graph) behind the same interface the
// baselines use.
type KGLiDSDiscoverer struct {
	cfg       core.Config
	label     string
	plat      *core.Platform
	tableIRI  map[string]rdf.Term // table name -> graph IRI term
	iriToName map[string]string   // graph IRI value -> table name
}

// NewKGLiDS returns the platform under its default configuration.
func NewKGLiDS() *KGLiDSDiscoverer {
	return NewKGLiDSWith("KGLiDS", core.DefaultConfig())
}

// NewKGLiDSWith returns the platform under an explicit configuration and
// label (the ablation studies score alternative configs this way).
func NewKGLiDSWith(label string, cfg core.Config) *KGLiDSDiscoverer {
	return &KGLiDSDiscoverer{cfg: cfg, label: label}
}

func (d *KGLiDSDiscoverer) Name() string { return d.label }

func (d *KGLiDSDiscoverer) Preprocess(b *lakegen.Benchmark) {
	var tables []core.Table
	for _, df := range b.Tables {
		tables = append(tables, core.Table{Dataset: b.Dataset[df.Name], Frame: df})
	}
	d.plat = core.Bootstrap(d.cfg, tables)
	d.tableIRI = map[string]rdf.Term{}
	d.iriToName = map[string]string{}
	for _, df := range b.Tables {
		id := b.Dataset[df.Name] + "/" + df.Name
		iri := schema.TableIRI(id)
		d.tableIRI[df.Name] = rdf.IRI(iri.Value)
		d.iriToName[iri.Value] = df.Name
	}
}

// Platform exposes the bootstrapped platform for callers that need more
// than the Discoverer surface (e.g. perf probes over the same lake).
func (d *KGLiDSDiscoverer) Platform() *core.Platform { return d.plat }

func (d *KGLiDSDiscoverer) Unionable(query string, k int) []string {
	iri, ok := d.tableIRI[query]
	if !ok {
		return nil
	}
	var names []string
	for _, r := range d.plat.Discovery.UnionableTables(iri, k) {
		names = append(names, d.iriToName[r.Table.Value])
	}
	return names
}

// Joinable answers top-k joinable tables via the content-similarity edges.
func (d *KGLiDSDiscoverer) Joinable(query string, k int) []string {
	iri, ok := d.tableIRI[query]
	if !ok {
		return nil
	}
	var names []string
	for _, r := range d.plat.Discovery.JoinableTables(iri, k) {
		names = append(names, d.iriToName[r.Table.Value])
	}
	return names
}
