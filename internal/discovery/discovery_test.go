package discovery

import (
	"fmt"
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/store"
)

// fixture builds a store with three tables: A and B unionable (label +
// content), B and C joinable (content only), A and C unrelated.
func fixture(t *testing.T) (*store.Store, map[string]rdf.Term) {
	t.Helper()
	st := store.New()
	p := profiler.New()
	mk := func(dataset, table string, cols map[string][]string, order []string) {
		df := dataframe.New(table)
		for _, name := range order {
			s := &dataframe.Series{Name: name}
			for _, v := range cols[name] {
				s.Cells = append(s.Cells, dataframe.ParseCell(v))
			}
			df.AddColumn(s)
		}
		profiles := p.ProfileTable(dataset, df)
		b := schema.NewBuilder()
		_ = b
		allProfiles = append(allProfiles, profiles...)
	}
	allProfiles = nil
	cities := []string{"Montreal", "Toronto", "Vancouver", "Ottawa", "Calgary", "Boston", "Chicago", "Seattle"}
	mk("heartds", "heart_disease_patients.csv", map[string][]string{
		"gender": {"male", "female", "male", "male", "female", "male", "female", "male"},
		"age":    {"63", "37", "41", "56", "57", "44", "52", "57"},
		"city":   cities,
	}, []string{"gender", "age", "city"})
	mk("failure", "heart_failure_clinical.csv", map[string][]string{
		"sex":  {"male", "female", "male", "female", "male", "male", "female", "male"},
		"age":  {"60", "42", "45", "50", "61", "48", "55", "52"},
		"town": cities,
	}, []string{"sex", "age", "town"})
	mk("geo", "city_population.csv", map[string][]string{
		"location":  cities,
		"residents": {"1704694", "2731571", "631486", "934243", "1239220", "675647", "2746388", "737015"},
	}, []string{"location", "residents"})
	b := schema.NewBuilder()
	b.BuildGraph(st, allProfiles)
	tables := map[string]rdf.Term{
		"A": schema.TableIRI("heartds/heart_disease_patients.csv"),
		"B": schema.TableIRI("failure/heart_failure_clinical.csv"),
		"C": schema.TableIRI("geo/city_population.csv"),
	}
	return st, tables
}

var allProfiles []*profiler.ColumnProfile

func TestSearchKeywords(t *testing.T) {
	st, _ := fixture(t)
	e := New(st)
	// Conjunctive: heart AND disease.
	res := e.SearchKeywords([][]string{{"heart", "disease"}})
	if len(res) != 1 || res[0].Name != "heart_disease_patients.csv" {
		t.Fatalf("conjunctive search = %+v", res)
	}
	// Disjunctive: (heart AND disease) OR population.
	res = e.SearchKeywords([][]string{{"heart", "disease"}, {"population"}})
	if len(res) != 2 {
		t.Fatalf("disjunctive search = %+v", res)
	}
	// Column-name match.
	res = e.SearchKeywords([][]string{{"residents"}})
	if len(res) != 1 || res[0].Name != "city_population.csv" {
		t.Errorf("column search = %+v", res)
	}
	if got := e.SearchKeywords([][]string{{"zzzznope"}}); len(got) != 0 {
		t.Errorf("no-match search = %+v", got)
	}
}

func TestUnionableTables(t *testing.T) {
	st, tables := fixture(t)
	e := New(st)
	res := e.UnionableTables(tables["A"], 5)
	if len(res) == 0 {
		t.Fatal("no unionable results")
	}
	if !res[0].Table.Equal(tables["B"]) {
		t.Errorf("top unionable = %v, want B", res[0].Table)
	}
	// C should rank below B for A (only the city column matches).
	for i, r := range res {
		if r.Table.Equal(tables["C"]) && i == 0 {
			t.Error("C ranked above B")
		}
	}
}

func TestFindUnionableColumns(t *testing.T) {
	st, tables := fixture(t)
	e := New(st)
	matches := e.FindUnionableColumns(tables["A"], tables["B"])
	if len(matches) == 0 {
		t.Fatal("no column matches")
	}
	pairs := map[string]string{}
	for _, m := range matches {
		pairs[m.AName] = m.BName
	}
	if pairs["gender"] != "sex" {
		t.Errorf("gender match = %q", pairs["gender"])
	}
	if pairs["age"] != "age" {
		t.Errorf("age match = %q", pairs["age"])
	}
	for _, m := range matches {
		if m.Score <= 0 || m.Score > 1.0001 {
			t.Errorf("match score = %v", m.Score)
		}
	}
}

func TestJoinPath(t *testing.T) {
	st, tables := fixture(t)
	e := New(st)
	// A and C share the city column (content similar) → direct join path.
	paths := e.GetPathToTable(tables["A"], tables["C"], 2)
	if len(paths) == 0 {
		t.Fatal("no join path found")
	}
	if len(paths[0].Tables) != 2 {
		t.Errorf("shortest path length = %d tables", len(paths[0].Tables))
	}
	if !paths[0].Tables[0].Equal(tables["A"]) || !paths[0].Tables[1].Equal(tables["C"]) {
		t.Error("path endpoints wrong")
	}
}

func TestLibraryDiscovery(t *testing.T) {
	st, _ := fixture(t)
	// Add two pipelines calling different libraries.
	a := pipeline.NewAbstractor()
	g := pipeline.NewGraphBuilder(nil)
	src1 := "import pandas as pd\nfrom sklearn.ensemble import RandomForestClassifier\ndf = pd.read_csv('x.csv')\nclf = RandomForestClassifier(50)\nclf.fit(df, df)\n"
	src2 := "import pandas as pd\ndf = pd.read_csv('y.csv')\n"
	abs1 := a.Abstract(pipeline.Script{ID: "p1", Source: src1, Meta: pipeline.Metadata{Votes: 10, Task: "classification"}})
	abs2 := a.Abstract(pipeline.Script{ID: "p2", Source: src2, Meta: pipeline.Metadata{Votes: 99, Task: "classification"}})
	g.BuildGraph(st, abs1)
	g.BuildGraph(st, abs2)

	e := New(st)
	top, err := e.TopKLibraries(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Library != "pandas" || top[0].Pipelines != 2 {
		t.Fatalf("top libraries = %+v", top)
	}
	byTask, err := e.TopUsedLibrariesForTask(5, "classification")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTask) == 0 {
		t.Error("task-filtered libraries empty")
	}
	hits := e.PipelinesCallingLibraries("pandas.read_csv")
	if len(hits) != 2 {
		t.Fatalf("pipelines calling read_csv = %d", len(hits))
	}
	if hits[0].Votes != 99 {
		t.Errorf("hits not sorted by votes: %+v", hits)
	}
	hits = e.PipelinesCallingLibraries("pandas.read_csv", "sklearn.ensemble.RandomForestClassifier")
	if len(hits) != 1 {
		t.Fatalf("conjunctive pipeline query = %d", len(hits))
	}
	if got := e.PipelinesCallingLibraries(); got != nil {
		t.Error("empty query should return nil")
	}
}

func TestAdHocSPARQL(t *testing.T) {
	st, _ := fixture(t)
	e := New(st)
	res, err := e.SPARQL(`SELECT (COUNT(?c) AS ?n) WHERE { ?c a kglids:Column . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0]["n"].AsInt(); n != 8 {
		t.Errorf("columns = %d", n)
	}
}

// pathFixture builds a store whose join graph is exactly the given edges:
// each edge links a dedicated content-similar column pair between two
// tables with the given certainty score.
func pathFixture(t *testing.T, edges []struct {
	a, b  string
	score float64
}) (*store.Store, func(name string) rdf.Term) {
	t.Helper()
	st := store.New()
	seenCols := map[string]int{}
	var simEdges []schema.Edge
	var quads []rdf.Quad
	col := func(table string) string {
		seenCols[table]++
		id := fmt.Sprintf("d/%s/c%d", table, seenCols[table])
		quads = append(quads,
			rdf.Quad{Triple: rdf.T(schema.TableIRI("d/"+table), rdf.PropHasColumn, schema.ColumnIRI(id)), Graph: rdf.DefaultGraph},
			rdf.Quad{Triple: rdf.T(schema.ColumnIRI(id), rdf.PropIsPartOf, schema.TableIRI("d/"+table)), Graph: rdf.DefaultGraph},
		)
		return id
	}
	for _, e := range edges {
		simEdges = append(simEdges, schema.Edge{A: col(e.a), B: col(e.b), Kind: "ContentSimilarity", Score: e.score})
	}
	st.AddBatch(quads)
	st.AddBatch(schema.EdgeQuads(simEdges))
	return st, func(name string) rdf.Term { return schema.TableIRI("d/" + name) }
}

// TestJoinPathHopBound pins the maxHops semantics: a returned path has at
// most maxHops hops (join edges). Regression for the target-append branch
// that skipped the hop budget and returned maxHops+1-hop paths.
func TestJoinPathHopBound(t *testing.T) {
	// 3-hop chain A - B - C - D.
	st, iri := pathFixture(t, []struct {
		a, b  string
		score float64
	}{
		{"A", "B", 0.9}, {"B", "C", 0.9}, {"C", "D", 0.9},
	})
	e := New(st)
	for _, maxHops := range []int{1, 2} {
		if paths := e.GetPathToTable(iri("A"), iri("D"), maxHops); len(paths) != 0 {
			t.Errorf("maxHops=%d: 3-hop chain returned %d paths (first has %d tables), want none",
				maxHops, len(paths), len(paths[0].Tables))
		}
	}
	paths := e.GetPathToTable(iri("A"), iri("D"), 3)
	if len(paths) != 1 || len(paths[0].Tables) != 4 {
		t.Fatalf("maxHops=3: paths = %+v, want one 4-table path", paths)
	}
	// The direct hop still works at the tightest budget.
	if paths := e.GetPathToTable(iri("A"), iri("B"), 1); len(paths) != 1 || len(paths[0].Tables) != 2 {
		t.Fatalf("maxHops=1 direct: paths = %+v", paths)
	}
	// Every returned path respects the budget at any setting.
	for maxHops := 1; maxHops <= 5; maxHops++ {
		for _, p := range e.GetPathToTable(iri("A"), iri("D"), maxHops) {
			if len(p.Tables)-1 > maxHops {
				t.Errorf("maxHops=%d returned %d-hop path %v", maxHops, len(p.Tables)-1, p.Tables)
			}
		}
	}
}

// TestJoinPathSharedHub pins the per-path visited semantics: alternate
// routes through a shared hub table are all returned (the global visited
// map used to drop every route after the first), and equal-length paths
// order by score.
func TestJoinPathSharedHub(t *testing.T) {
	// A - H - C (via the hub), A - B - H - C (longer route through the
	// same hub), and A - G - C (parallel hub with higher scores).
	st, iri := pathFixture(t, []struct {
		a, b  string
		score float64
	}{
		{"A", "H", 0.8}, {"H", "C", 0.8},
		{"A", "B", 0.8}, {"B", "H", 0.8},
		{"A", "G", 0.99}, {"G", "C", 0.99},
	})
	e := New(st)
	paths := e.GetPathToTable(iri("A"), iri("C"), 3)
	var got [][]string
	for _, p := range paths {
		var names []string
		for _, tb := range p.Tables {
			names = append(names, tb.Local())
		}
		got = append(got, names)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %v, want 3 (two hubs + the long route through H)", got)
	}
	// Two 2-hop paths first, the better-scoring hub G leading.
	if len(paths[0].Tables) != 3 || len(paths[1].Tables) != 3 || len(paths[2].Tables) != 4 {
		t.Fatalf("path lengths wrong: %v", got)
	}
	if !paths[0].Tables[1].Equal(iri("G")) {
		t.Errorf("higher-score hub not first: %v", got)
	}
	if !paths[1].Tables[1].Equal(iri("H")) {
		t.Errorf("shared hub route missing from 2-hop paths: %v", got)
	}
	if !paths[2].Tables[1].Equal(iri("B")) || !paths[2].Tables[2].Equal(iri("H")) {
		t.Errorf("alternate route through shared hub dropped: %v", got)
	}
	// No table repeats within any single path.
	for _, p := range paths {
		seen := map[string]bool{}
		for _, tb := range p.Tables {
			if seen[tb.Key()] {
				t.Errorf("cycle within path: %v", got)
			}
			seen[tb.Key()] = true
		}
	}
}

// TestJoinPathDenseGraphBounded pins the enumeration caps: a clique of
// mutually joinable tables has exponentially many simple paths, and
// GetPathToTable must return a bounded, length-ordered subset instead of
// hanging.
func TestJoinPathDenseGraphBounded(t *testing.T) {
	var edges []struct {
		a, b  string
		score float64
	}
	names := make([]string, 12)
	for i := range names {
		names[i] = fmt.Sprintf("T%02d", i)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			edges = append(edges, struct {
				a, b  string
				score float64
			}{names[i], names[j], 0.9})
		}
	}
	st, iri := pathFixture(t, edges)
	e := New(st)
	paths := e.GetPathToTable(iri("T00"), iri("T11"), 6)
	if len(paths) == 0 || len(paths) > maxJoinPaths {
		t.Fatalf("paths = %d, want within (0, %d]", len(paths), maxJoinPaths)
	}
	// Breadth-first truncation keeps the shortest paths: the direct hop
	// must lead.
	if len(paths[0].Tables) != 2 {
		t.Errorf("first path has %d tables, want the direct join", len(paths[0].Tables))
	}
	for i := 1; i < len(paths); i++ {
		if len(paths[i].Tables) < len(paths[i-1].Tables) {
			t.Fatalf("paths not length-ordered at %d", i)
		}
	}
}
