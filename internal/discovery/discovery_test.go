package discovery

import (
	"testing"

	"kglids/internal/dataframe"
	"kglids/internal/pipeline"
	"kglids/internal/profiler"
	"kglids/internal/rdf"
	"kglids/internal/schema"
	"kglids/internal/store"
)

// fixture builds a store with three tables: A and B unionable (label +
// content), B and C joinable (content only), A and C unrelated.
func fixture(t *testing.T) (*store.Store, map[string]rdf.Term) {
	t.Helper()
	st := store.New()
	p := profiler.New()
	mk := func(dataset, table string, cols map[string][]string, order []string) {
		df := dataframe.New(table)
		for _, name := range order {
			s := &dataframe.Series{Name: name}
			for _, v := range cols[name] {
				s.Cells = append(s.Cells, dataframe.ParseCell(v))
			}
			df.AddColumn(s)
		}
		profiles := p.ProfileTable(dataset, df)
		b := schema.NewBuilder()
		_ = b
		allProfiles = append(allProfiles, profiles...)
	}
	allProfiles = nil
	cities := []string{"Montreal", "Toronto", "Vancouver", "Ottawa", "Calgary", "Boston", "Chicago", "Seattle"}
	mk("heartds", "heart_disease_patients.csv", map[string][]string{
		"gender": {"male", "female", "male", "male", "female", "male", "female", "male"},
		"age":    {"63", "37", "41", "56", "57", "44", "52", "57"},
		"city":   cities,
	}, []string{"gender", "age", "city"})
	mk("failure", "heart_failure_clinical.csv", map[string][]string{
		"sex":  {"male", "female", "male", "female", "male", "male", "female", "male"},
		"age":  {"60", "42", "45", "50", "61", "48", "55", "52"},
		"town": cities,
	}, []string{"sex", "age", "town"})
	mk("geo", "city_population.csv", map[string][]string{
		"location":  cities,
		"residents": {"1704694", "2731571", "631486", "934243", "1239220", "675647", "2746388", "737015"},
	}, []string{"location", "residents"})
	b := schema.NewBuilder()
	b.BuildGraph(st, allProfiles)
	tables := map[string]rdf.Term{
		"A": schema.TableIRI("heartds/heart_disease_patients.csv"),
		"B": schema.TableIRI("failure/heart_failure_clinical.csv"),
		"C": schema.TableIRI("geo/city_population.csv"),
	}
	return st, tables
}

var allProfiles []*profiler.ColumnProfile

func TestSearchKeywords(t *testing.T) {
	st, _ := fixture(t)
	e := New(st)
	// Conjunctive: heart AND disease.
	res := e.SearchKeywords([][]string{{"heart", "disease"}})
	if len(res) != 1 || res[0].Name != "heart_disease_patients.csv" {
		t.Fatalf("conjunctive search = %+v", res)
	}
	// Disjunctive: (heart AND disease) OR population.
	res = e.SearchKeywords([][]string{{"heart", "disease"}, {"population"}})
	if len(res) != 2 {
		t.Fatalf("disjunctive search = %+v", res)
	}
	// Column-name match.
	res = e.SearchKeywords([][]string{{"residents"}})
	if len(res) != 1 || res[0].Name != "city_population.csv" {
		t.Errorf("column search = %+v", res)
	}
	if got := e.SearchKeywords([][]string{{"zzzznope"}}); len(got) != 0 {
		t.Errorf("no-match search = %+v", got)
	}
}

func TestUnionableTables(t *testing.T) {
	st, tables := fixture(t)
	e := New(st)
	res := e.UnionableTables(tables["A"], 5)
	if len(res) == 0 {
		t.Fatal("no unionable results")
	}
	if !res[0].Table.Equal(tables["B"]) {
		t.Errorf("top unionable = %v, want B", res[0].Table)
	}
	// C should rank below B for A (only the city column matches).
	for i, r := range res {
		if r.Table.Equal(tables["C"]) && i == 0 {
			t.Error("C ranked above B")
		}
	}
}

func TestFindUnionableColumns(t *testing.T) {
	st, tables := fixture(t)
	e := New(st)
	matches := e.FindUnionableColumns(tables["A"], tables["B"])
	if len(matches) == 0 {
		t.Fatal("no column matches")
	}
	pairs := map[string]string{}
	for _, m := range matches {
		pairs[m.AName] = m.BName
	}
	if pairs["gender"] != "sex" {
		t.Errorf("gender match = %q", pairs["gender"])
	}
	if pairs["age"] != "age" {
		t.Errorf("age match = %q", pairs["age"])
	}
	for _, m := range matches {
		if m.Score <= 0 || m.Score > 1.0001 {
			t.Errorf("match score = %v", m.Score)
		}
	}
}

func TestJoinPath(t *testing.T) {
	st, tables := fixture(t)
	e := New(st)
	// A and C share the city column (content similar) → direct join path.
	paths := e.GetPathToTable(tables["A"], tables["C"], 2)
	if len(paths) == 0 {
		t.Fatal("no join path found")
	}
	if len(paths[0].Tables) != 2 {
		t.Errorf("shortest path length = %d tables", len(paths[0].Tables))
	}
	if !paths[0].Tables[0].Equal(tables["A"]) || !paths[0].Tables[1].Equal(tables["C"]) {
		t.Error("path endpoints wrong")
	}
}

func TestLibraryDiscovery(t *testing.T) {
	st, _ := fixture(t)
	// Add two pipelines calling different libraries.
	a := pipeline.NewAbstractor()
	g := pipeline.NewGraphBuilder(nil)
	src1 := "import pandas as pd\nfrom sklearn.ensemble import RandomForestClassifier\ndf = pd.read_csv('x.csv')\nclf = RandomForestClassifier(50)\nclf.fit(df, df)\n"
	src2 := "import pandas as pd\ndf = pd.read_csv('y.csv')\n"
	abs1 := a.Abstract(pipeline.Script{ID: "p1", Source: src1, Meta: pipeline.Metadata{Votes: 10, Task: "classification"}})
	abs2 := a.Abstract(pipeline.Script{ID: "p2", Source: src2, Meta: pipeline.Metadata{Votes: 99, Task: "classification"}})
	g.BuildGraph(st, abs1)
	g.BuildGraph(st, abs2)

	e := New(st)
	top, err := e.TopKLibraries(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Library != "pandas" || top[0].Pipelines != 2 {
		t.Fatalf("top libraries = %+v", top)
	}
	byTask, err := e.TopUsedLibrariesForTask(5, "classification")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTask) == 0 {
		t.Error("task-filtered libraries empty")
	}
	hits := e.PipelinesCallingLibraries("pandas.read_csv")
	if len(hits) != 2 {
		t.Fatalf("pipelines calling read_csv = %d", len(hits))
	}
	if hits[0].Votes != 99 {
		t.Errorf("hits not sorted by votes: %+v", hits)
	}
	hits = e.PipelinesCallingLibraries("pandas.read_csv", "sklearn.ensemble.RandomForestClassifier")
	if len(hits) != 1 {
		t.Fatalf("conjunctive pipeline query = %d", len(hits))
	}
	if got := e.PipelinesCallingLibraries(); got != nil {
		t.Error("empty query should return nil")
	}
}

func TestAdHocSPARQL(t *testing.T) {
	st, _ := fixture(t)
	e := New(st)
	res, err := e.SPARQL(`SELECT (COUNT(?c) AS ?n) WHERE { ?c a kglids:Column . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0]["n"].AsInt(); n != 8 {
		t.Errorf("columns = %d", n)
	}
}
