// Package discovery implements KGLiDS's data discovery operations (paper
// Sections 3.3 and 5): keyword search over the LiDS graph, unionable- and
// joinable-table search backed by the materialized similarity edges,
// unionable-column matching, and join-path discovery. Per Section 6.1.2,
// discovery queries run as index-backed graph lookups (SPARQL-equivalent)
// rather than raw-data scans, which is why query time stays in
// milliseconds.
package discovery

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kglids/internal/rdf"
	"kglids/internal/sparql"
	"kglids/internal/store"
)

// Engine answers discovery queries against a populated LiDS graph.
type Engine struct {
	st  *store.Store
	eng *sparql.Engine

	// workers is the parallel width for similarTables' per-column scoring
	// fan-out; 0 means the GOMAXPROCS default, 1 keeps it serial. The
	// SPARQL engine's morsel executor is configured to the same width.
	workers atomic.Int32

	// corpusMu guards the memoized keyword-search corpus, rebuilt only
	// when the store generation moves.
	corpusMu  sync.Mutex
	corpus    []corpusEntry
	corpusGen uint64
}

// New returns a discovery engine over st.
func New(st *store.Store) *Engine {
	return &Engine{st: st, eng: sparql.NewEngine(st)}
}

// TableResult is one ranked table hit.
type TableResult struct {
	Table rdf.Term
	Name  string
	Score float64
}

// SearchKeywords finds tables matching keyword conditions, mirroring the
// search_keywords API: each element of conditions is OR'd; an element's
// keywords are AND'd. Keywords match table, dataset, or column names
// case-insensitively.
func (e *Engine) SearchKeywords(conditions [][]string) []TableResult {
	corpus := e.tableCorpus() // shared across OR-conjunctions
	seen := map[string]TableResult{}
	for _, conj := range conditions {
		for _, hit := range searchConjunction(corpus, conj) {
			key := hit.Table.Key()
			if old, ok := seen[key]; !ok || hit.Score > old.Score {
				seen[key] = hit
			}
		}
	}
	out := make([]TableResult, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table.Value < out[j].Table.Value
	})
	return out
}

// searchConjunction returns tables where every keyword matches the table's
// own name, its dataset name, or one of its column names. The searchable
// corpus is assembled from compiled SPARQL queries whose results the engine
// caches per store generation, so steady-state keyword traffic is pure
// in-memory string matching with zero graph traversal.
func searchConjunction(corpus []corpusEntry, keywords []string) []TableResult {
	lowered := make([]string, len(keywords))
	for i, kw := range keywords {
		lowered[i] = strings.ToLower(kw)
	}
	var out []TableResult
	for _, entry := range corpus {
		all := true
		for _, kw := range lowered {
			if !strings.Contains(entry.text, kw) {
				all = false
				break
			}
		}
		if all {
			out = append(out, TableResult{Table: entry.table, Name: entry.name, Score: float64(len(keywords))})
		}
	}
	return out
}

// corpusEntry is one table's searchable text.
type corpusEntry struct {
	table rdf.Term
	name  string
	text  string
}

// corpusQueries fetch, per table, its name, its dataset (with name), and
// its columns (with names). They run on the compiled engine and their
// results are cached until the store generation changes.
const (
	corpusTablesQ  = `SELECT ?t ?n WHERE { ?t a kglids:Table . OPTIONAL { ?t kglids:name ?n . } }`
	corpusDatasetQ = `SELECT ?t ?ds ?dn WHERE { ?t a kglids:Table ; kglids:isPartOf ?ds . OPTIONAL { ?ds kglids:name ?dn . } }`
	corpusColumnsQ = `SELECT ?t ?c ?cn WHERE { ?t a kglids:Table ; kglids:hasColumn ?c . OPTIONAL { ?c kglids:name ?cn . } }`
)

// tableCorpus returns the searchable text of every table, memoized per
// store generation: steady-state keyword traffic costs one generation
// compare, and any live-ingestion mutation rebuilds the corpus on the
// next search. The returned slice is shared — callers must not mutate it.
func (e *Engine) tableCorpus() []corpusEntry {
	gen := e.st.Generation()
	e.corpusMu.Lock()
	defer e.corpusMu.Unlock()
	if e.corpus != nil && e.corpusGen == gen {
		return e.corpus
	}
	corpus := e.buildCorpus()
	// Memoize only if no mutation landed while the three corpus queries
	// ran; a torn corpus may be served once but is never cached.
	if e.st.Generation() == gen {
		e.corpus, e.corpusGen = corpus, gen
	}
	return corpus
}

// buildCorpus assembles the corpus: each table's display name, its
// dataset's display name, its column names, and the table IRI (the
// dataset directory is part of it). Names are deduplicated and sorted so
// the corpus is deterministic regardless of query enumeration order.
func (e *Engine) buildCorpus() []corpusEntry {
	display := func(node, name rdf.Term) string {
		if name.Value != "" {
			return name.Value
		}
		return node.Local()
	}
	type parts struct {
		table    rdf.Term
		name     string
		ds, cols map[string]bool
	}
	byTable := map[string]*parts{}
	order := []string{}
	at := func(t rdf.Term) *parts {
		k := t.Key()
		p := byTable[k]
		if p == nil {
			p = &parts{table: t, ds: map[string]bool{}, cols: map[string]bool{}}
			byTable[k] = p
			order = append(order, k)
		}
		return p
	}
	if res, err := e.eng.Query(corpusTablesQ); err == nil {
		for _, row := range res.Rows {
			p := at(row["t"])
			if n := display(row["t"], row["n"]); p.name == "" || n < p.name {
				p.name = n
			}
		}
	}
	if res, err := e.eng.Query(corpusDatasetQ); err == nil {
		for _, row := range res.Rows {
			at(row["t"]).ds[display(row["ds"], row["dn"])] = true
		}
	}
	if res, err := e.eng.Query(corpusColumnsQ); err == nil {
		for _, row := range res.Rows {
			at(row["t"]).cols[display(row["c"], row["cn"])] = true
		}
	}
	out := make([]corpusEntry, 0, len(order))
	for _, k := range order {
		p := byTable[k]
		var sb strings.Builder
		sb.WriteString(strings.ToLower(p.name))
		sb.WriteByte(' ')
		for _, n := range sortedKeys(p.ds) {
			sb.WriteString(strings.ToLower(n))
			sb.WriteByte(' ')
		}
		for _, n := range sortedKeys(p.cols) {
			sb.WriteString(strings.ToLower(n))
			sb.WriteByte(' ')
		}
		sb.WriteString(strings.ToLower(p.table.Value))
		out = append(out, corpusEntry{table: p.table, name: p.name, text: sb.String()})
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) nameOf(node rdf.Term) string {
	objs := e.st.Objects(node, rdf.PropName, rdf.DefaultGraph)
	if len(objs) > 0 {
		return objs[0].Value
	}
	return node.Local()
}

// similarityKind selects which similarity edges drive a query.
type similarityKind int

const (
	// unionKind uses label OR content edges (Section 3.3: unionable).
	unionKind similarityKind = iota
	// joinKind uses content edges only (joinable).
	joinKind
)

// UnionableTables returns the top-k tables unionable with the query table,
// ranked by the aggregate similarity of their column matches (Section 3.3:
// "based on both the number of similar columns and the similarity scores
// between them").
func (e *Engine) UnionableTables(table rdf.Term, k int) []TableResult {
	return e.similarTables(table, k, unionKind)
}

// JoinableTables returns the top-k tables joinable with the query table
// (content-similar columns).
func (e *Engine) JoinableTables(table rdf.Term, k int) []TableResult {
	return e.similarTables(table, k, joinKind)
}

// similarTables is the ID-space hot path of unionable/joinable search: one
// store view pins a consistent state, every traversal step (columns,
// similarity edges, owning tables, RDF-star certainty annotations) walks
// the encoded indexes, and terms decode only for the final ranked results.
func (e *Engine) similarTables(table rdf.Term, k int, kind similarityKind) []TableResult {
	tid, ok := e.st.EncodeTerm(table)
	if !ok {
		return nil
	}
	hasCol, okCol := e.st.EncodeTerm(rdf.PropHasColumn)
	isPartOf, okPart := e.st.EncodeTerm(rdf.PropIsPartOf)
	if !okCol || !okPart {
		return nil
	}
	certainty, _ := e.st.EncodeTerm(rdf.PropCertainty)
	type simPred struct {
		id   store.TermID
		term rdf.Term
	}
	var preds []simPred
	addPred := func(p rdf.Term) {
		if id, ok := e.st.EncodeTerm(p); ok {
			preds = append(preds, simPred{id: id, term: p})
		}
	}
	switch kind {
	case unionKind:
		addPred(rdf.PropLabelSimilarity)
		addPred(rdf.PropContentSimilarity)
	case joinKind:
		addPred(rdf.PropContentSimilarity)
	}

	v := e.st.AcquireView()
	defer v.Close()
	dict := v.Dict()

	var cols []store.TermID
	v.MatchIDs(tid, hasCol, 0, store.UnionGraph, func(_, _, o store.TermID) bool {
		cols = append(cols, o)
		return true
	})
	if len(cols) == 0 {
		return nil
	}

	// Per-column scoring is independent work over a shared read-only view,
	// so it fans out to the configured worker width: workers claim column
	// indexes through a shared counter and fill a per-column result slot.
	// The merge then accumulates in column order, so every returned score
	// is byte-identical to the serial path regardless of worker count.
	scoreCol := func(col store.TermID) map[store.TermID]float64 {
		colTerm := dict.Term(col)
		best := map[store.TermID]float64{}
		for _, pred := range preds {
			v.MatchIDs(col, pred.id, 0, store.UnionGraph, func(_, _, other store.TermID) bool {
				var ot store.TermID
				v.MatchIDs(other, isPartOf, 0, store.UnionGraph, func(_, _, t store.TermID) bool {
					ot = t
					return false // first (lowest-ID) owner, as the term-space path chose
				})
				if ot == 0 {
					return true
				}
				score := 1.0
				if certainty != 0 {
					// The annotation subject is the quoted similarity triple;
					// its ID comes from the dictionary, not an index walk.
					quoted := rdf.QuotedTriple(rdf.T(colTerm, pred.term, dict.Term(other)))
					if qid, ok := dict.Lookup(quoted); ok {
						v.MatchIDs(qid, certainty, 0, store.UnionGraph, func(_, _, val store.TermID) bool {
							if f, isF := dict.Term(val).AsFloat(); isF {
								score = f
							}
							return false
						})
					}
				}
				if score > best[ot] {
					best[ot] = score
				}
				return true
			})
		}
		return best
	}
	bests := make([]map[store.TermID]float64, len(cols))
	if w := e.scoreWorkers(); w > 1 && len(cols) > 1 {
		if w > len(cols) {
			w = len(cols)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cols) {
						return
					}
					bests[i] = scoreCol(cols[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i, col := range cols {
			bests[i] = scoreCol(col)
		}
	}
	// score[otherTable] = sum over query columns of the best match score.
	scores := map[store.TermID]float64{}
	for _, best := range bests {
		for ot, s := range best {
			scores[ot] += s
		}
	}

	out := make([]TableResult, 0, len(scores))
	norm := float64(len(cols))
	for ot, s := range scores {
		t := dict.Term(ot)
		out = append(out, TableResult{Table: t, Name: e.nameOfID(v, ot), Score: s / norm})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table.Value < out[j].Table.Value
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// nameOfID resolves a node's display name under an already-held view.
func (e *Engine) nameOfID(v *store.View, node store.TermID) string {
	nameID, ok := e.st.EncodeTerm(rdf.PropName)
	if ok {
		var out string
		v.MatchIDs(node, nameID, 0, store.UnionGraph, func(_, _, o store.TermID) bool {
			out = v.Dict().Term(o).Value
			return false
		})
		if out != "" {
			return out
		}
	}
	return v.Dict().Term(node).Local()
}

// ColumnMatch pairs a query-table column with a matched column of another
// table.
type ColumnMatch struct {
	A, B  rdf.Term
	AName string
	BName string
	Kind  string // "label" or "content"
	Score float64
}

// FindUnionableColumns returns the matched (unionable) column pairs
// between two tables, the schema recommendation of the
// find_unionable_columns API.
func (e *Engine) FindUnionableColumns(tableA, tableB rdf.Term) []ColumnMatch {
	var out []ColumnMatch
	for _, colA := range e.st.Objects(tableA, rdf.PropHasColumn, rdf.DefaultGraph) {
		appendMatch := func(pred rdf.Term, kind string) {
			e.st.MatchFunc(colA, pred, store.Wildcard, rdf.DefaultGraph, func(t rdf.Triple) bool {
				parents := e.st.Objects(t.Object, rdf.PropIsPartOf, rdf.DefaultGraph)
				if len(parents) == 0 || !parents[0].Equal(tableB) {
					return true
				}
				score := 1.0
				if ann, ok := e.st.Annotation(t, rdf.PropCertainty); ok {
					if f, isF := ann.AsFloat(); isF {
						score = f
					}
				}
				out = append(out, ColumnMatch{
					A: colA, B: t.Object,
					AName: e.nameOf(colA), BName: e.nameOf(t.Object),
					Kind: kind, Score: score,
				})
				return true
			})
		}
		appendMatch(rdf.PropLabelSimilarity, "label")
		appendMatch(rdf.PropContentSimilarity, "content")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AName != out[j].AName {
			return out[i].AName < out[j].AName
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// JoinPath is a sequence of tables connected by joinable columns.
type JoinPath struct {
	Tables []rdf.Term
	Score  float64
}

// GetPathToTable finds join paths from start to target of at most maxHops
// hops — a hop is one join edge, so a returned path has between 2 and
// maxHops+1 tables (the get_path_to_table API; BFS over content-
// similarity edges).
//
// Cycle prevention is per path, not global: a table may appear in many
// returned paths (alternate routes through a shared hub table are all
// reported, each scored on its own), but never twice within one path.
// Simple paths within the hop budget are enumerated breadth-first,
// ordered by length, then score (descending), then lexicographically by
// table sequence.
//
// Dense join graphs (near-cliques of mutually joinable tables) have
// exponentially many simple paths, so enumeration is bounded: at most
// maxJoinPaths paths are collected and at most maxJoinPathStates partial
// paths expanded. Because the search is breadth-first, truncation drops
// only the longest, most roundabout routes.
func (e *Engine) GetPathToTable(start, target rdf.Term, maxHops int) []JoinPath {
	if maxHops < 1 || start.Equal(target) {
		return nil
	}
	type state struct {
		path  []rdf.Term
		score float64
	}
	var paths []JoinPath
	queue := []state{{path: []rdf.Term{start}, score: 1}}
	expanded := 0
	for len(queue) > 0 && len(paths) < maxJoinPaths && expanded < maxJoinPathStates {
		cur := queue[0]
		queue = queue[1:]
		expanded++
		hops := len(cur.path) - 1
		if hops >= maxHops {
			continue // budget exhausted: cannot take another hop
		}
		for _, next := range e.JoinableTables(cur.path[len(cur.path)-1], 0) {
			if next.Table.Equal(target) {
				if len(paths) < maxJoinPaths {
					paths = append(paths, JoinPath{
						Tables: append(append([]rdf.Term{}, cur.path...), target),
						Score:  cur.score * next.Score,
					})
				}
				continue
			}
			// Extending to an intermediate spends a hop and still needs
			// one more to reach the target.
			if hops+1 >= maxHops || onPath(cur.path, next.Table) {
				continue
			}
			queue = append(queue, state{
				path:  append(append([]rdf.Term{}, cur.path...), next.Table),
				score: cur.score * next.Score,
			})
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i].Tables) != len(paths[j].Tables) {
			return len(paths[i].Tables) < len(paths[j].Tables)
		}
		if paths[i].Score != paths[j].Score {
			return paths[i].Score > paths[j].Score
		}
		return lessTables(paths[i].Tables, paths[j].Tables)
	})
	return paths
}

// Enumeration bounds of GetPathToTable: dense join graphs have
// exponentially many simple paths, and a discovery API must stay bounded.
const (
	// maxJoinPaths caps the number of paths collected.
	maxJoinPaths = 256
	// maxJoinPathStates caps the number of partial paths expanded.
	maxJoinPathStates = 4096
)

// onPath reports whether table already appears in the path (per-path cycle
// guard).
func onPath(path []rdf.Term, table rdf.Term) bool {
	for _, t := range path {
		if t.Equal(table) {
			return true
		}
	}
	return false
}

// lessTables orders equal-length table sequences lexicographically, the
// deterministic tie-break for equal-score paths.
func lessTables(a, b []rdf.Term) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i].Value != b[i].Value {
			return a[i].Value < b[i].Value
		}
	}
	return false
}

// LibraryUsage is one row of the get_top_k_library_used result.
type LibraryUsage struct {
	Library   string
	Pipelines int
}

// TopKLibraries returns the k most-used top-level libraries by number of
// distinct pipelines calling them (Figure 4), via SPARQL over the named
// pipeline graphs.
func (e *Engine) TopKLibraries(k int) ([]LibraryUsage, error) {
	res, err := e.eng.Query(`
		SELECT ?lib (COUNT(DISTINCT ?g) AS ?n) WHERE {
			GRAPH ?g { ?s kglids:callsLibrary ?lib . }
		} GROUP BY ?lib ORDER BY DESC(?n)`)
	if err != nil {
		return nil, err
	}
	var out []LibraryUsage
	for _, row := range res.Rows {
		n, _ := row["n"].AsInt()
		out = append(out, LibraryUsage{Library: row["lib"].Local(), Pipelines: int(n)})
	}
	// Stable secondary order by name for ties.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pipelines != out[j].Pipelines {
			return out[i].Pipelines > out[j].Pipelines
		}
		return out[i].Library < out[j].Library
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// TopUsedLibrariesForTask restricts TopKLibraries to pipelines whose
// metadata task matches (the get_top_used_libraries(k, task) API).
func (e *Engine) TopUsedLibrariesForTask(k int, task string) ([]LibraryUsage, error) {
	res, err := e.eng.Query(`
		SELECT ?lib (COUNT(DISTINCT ?g) AS ?n) WHERE {
			GRAPH ?g {
				?p a kglids:Pipeline ; kglids:task "` + task + `" .
				?s kglids:callsLibrary ?lib .
			}
		} GROUP BY ?lib ORDER BY DESC(?n)`)
	if err != nil {
		return nil, err
	}
	var out []LibraryUsage
	for _, row := range res.Rows {
		n, _ := row["n"].AsInt()
		out = append(out, LibraryUsage{Library: row["lib"].Local(), Pipelines: int(n)})
	}
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// PipelineHit is one pipeline matching a library-usage query.
type PipelineHit struct {
	Pipeline rdf.Term
	Votes    int
	Score    float64
}

// PipelinesCallingLibraries returns pipelines that call every one of the
// given qualified functions (the get_pipelines_calling_libraries API).
func (e *Engine) PipelinesCallingLibraries(qualified ...string) []PipelineHit {
	if len(qualified) == 0 {
		return nil
	}
	counts := map[string]int{}
	terms := map[string]rdf.Term{}
	for _, q := range qualified {
		lib := libraryIRI(q)
		seen := map[string]bool{}
		e.st.MatchFunc(store.Wildcard, rdf.PropCallsFunction, lib, rdf.DefaultGraph, func(t rdf.Triple) bool {
			// Statement IRIs embed the pipeline IRI prefix.
			pipe := pipelineOfStatement(t.Subject)
			if pipe.Value == "" || seen[pipe.Key()] {
				return true
			}
			seen[pipe.Key()] = true
			counts[pipe.Key()]++
			terms[pipe.Key()] = pipe
			return true
		})
	}
	var out []PipelineHit
	for key, n := range counts {
		if n != len(qualified) {
			continue
		}
		pipe := terms[key]
		hit := PipelineHit{Pipeline: pipe}
		for _, v := range e.st.Objects(pipe, rdf.PropVotes, rdf.DefaultGraph) {
			if iv, ok := v.AsInt(); ok {
				hit.Votes = int(iv)
			}
		}
		for _, v := range e.st.Objects(pipe, rdf.PropScore, rdf.DefaultGraph) {
			if fv, ok := v.AsFloat(); ok {
				hit.Score = fv
			}
		}
		out = append(out, hit)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Pipeline.Value < out[j].Pipeline.Value
	})
	return out
}

func libraryIRI(qualified string) rdf.Term {
	return rdf.Resource("library/" + strings.ReplaceAll(qualified, ".", "/"))
}

// pipelineOfStatement recovers the pipeline IRI from a statement IRI of
// the form .../pipeline/<id>/s<k>.
func pipelineOfStatement(stmt rdf.Term) rdf.Term {
	v := stmt.Value
	i := strings.LastIndexByte(v, '/')
	if i < 0 {
		return rdf.Term{}
	}
	return rdf.IRI(v[:i])
}

// SPARQL exposes the underlying engine for ad-hoc queries (the Ad-hoc
// Queries interface of Figure 1). Queries run on the compiled ID-space
// path and repeated queries are served from the generation-keyed cache;
// treat results as read-only.
func (e *Engine) SPARQL(query string) (*sparql.Result, error) { return e.eng.Query(query) }

// SPARQLContext is SPARQL under a context: cancellation or deadline expiry
// stops the evaluation mid-iteration (the per-request timeout path of the
// HTTP server).
func (e *Engine) SPARQLContext(ctx context.Context, query string) (*sparql.Result, error) {
	return e.eng.QueryContext(ctx, query)
}

// CacheStats reports the SPARQL result-cache counters (tests, monitoring).
func (e *Engine) CacheStats() sparql.CacheStats { return e.eng.CacheStats() }

// SetSlowQuery forwards the slow-query log threshold to the SPARQL
// engine; 0 disables the slow-query log.
func (e *Engine) SetSlowQuery(d time.Duration) { e.eng.SetSlowQuery(d) }

// SetWorkers sets the parallel execution width for both the SPARQL
// morsel executor and the discovery scoring fan-out. 0 restores the
// GOMAXPROCS default; 1 forces the serial path (the equivalence oracle).
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
	e.eng.SetWorkers(n)
}

// scoreWorkers resolves the configured width for discovery-side scoring.
func (e *Engine) scoreWorkers() int {
	if w := e.workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// CacheExport returns the current-generation SPARQL result-cache entries
// for snapshot persistence.
func (e *Engine) CacheExport() []sparql.CacheEntry { return e.eng.CacheExport() }

// CacheImport seeds the SPARQL result cache from snapshot entries,
// re-pinning them to the restored store's generation.
func (e *Engine) CacheImport(entries []sparql.CacheEntry) { e.eng.CacheImport(entries) }
