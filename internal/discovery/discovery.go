// Package discovery implements KGLiDS's data discovery operations (paper
// Sections 3.3 and 5): keyword search over the LiDS graph, unionable- and
// joinable-table search backed by the materialized similarity edges,
// unionable-column matching, and join-path discovery. Per Section 6.1.2,
// discovery queries run as index-backed graph lookups (SPARQL-equivalent)
// rather than raw-data scans, which is why query time stays in
// milliseconds.
package discovery

import (
	"sort"
	"strings"

	"kglids/internal/rdf"
	"kglids/internal/sparql"
	"kglids/internal/store"
)

// Engine answers discovery queries against a populated LiDS graph.
type Engine struct {
	st  *store.Store
	eng *sparql.Engine
}

// New returns a discovery engine over st.
func New(st *store.Store) *Engine {
	return &Engine{st: st, eng: sparql.NewEngine(st)}
}

// TableResult is one ranked table hit.
type TableResult struct {
	Table rdf.Term
	Name  string
	Score float64
}

// SearchKeywords finds tables matching keyword conditions, mirroring the
// search_keywords API: each element of conditions is OR'd; an element's
// keywords are AND'd. Keywords match table, dataset, or column names
// case-insensitively.
func (e *Engine) SearchKeywords(conditions [][]string) []TableResult {
	seen := map[string]TableResult{}
	for _, conj := range conditions {
		for _, hit := range e.searchConjunction(conj) {
			key := hit.Table.Key()
			if old, ok := seen[key]; !ok || hit.Score > old.Score {
				seen[key] = hit
			}
		}
	}
	out := make([]TableResult, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table.Value < out[j].Table.Value
	})
	return out
}

// searchConjunction returns tables where every keyword matches the table's
// own name, its dataset name, or one of its column names.
func (e *Engine) searchConjunction(keywords []string) []TableResult {
	var out []TableResult
	for _, table := range e.st.Subjects(rdf.RDFType, rdf.ClassTable, rdf.DefaultGraph) {
		text := e.tableText(table)
		all := true
		for _, kw := range keywords {
			if !strings.Contains(text, strings.ToLower(kw)) {
				all = false
				break
			}
		}
		if all {
			out = append(out, TableResult{Table: table, Name: e.nameOf(table), Score: float64(len(keywords))})
		}
	}
	return out
}

// tableText gathers the lowercase searchable text of a table: its name,
// dataset name, and column names.
func (e *Engine) tableText(table rdf.Term) string {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(e.nameOf(table)))
	sb.WriteByte(' ')
	for _, ds := range e.st.Objects(table, rdf.PropIsPartOf, rdf.DefaultGraph) {
		sb.WriteString(strings.ToLower(e.nameOf(ds)))
		sb.WriteByte(' ')
	}
	for _, col := range e.st.Objects(table, rdf.PropHasColumn, rdf.DefaultGraph) {
		sb.WriteString(strings.ToLower(e.nameOf(col)))
		sb.WriteByte(' ')
	}
	// Dataset directory name is also part of the table IRI.
	sb.WriteString(strings.ToLower(table.Value))
	return sb.String()
}

func (e *Engine) nameOf(node rdf.Term) string {
	objs := e.st.Objects(node, rdf.PropName, rdf.DefaultGraph)
	if len(objs) > 0 {
		return objs[0].Value
	}
	return node.Local()
}

// similarityKind selects which similarity edges drive a query.
type similarityKind int

const (
	// unionKind uses label OR content edges (Section 3.3: unionable).
	unionKind similarityKind = iota
	// joinKind uses content edges only (joinable).
	joinKind
)

// UnionableTables returns the top-k tables unionable with the query table,
// ranked by the aggregate similarity of their column matches (Section 3.3:
// "based on both the number of similar columns and the similarity scores
// between them").
func (e *Engine) UnionableTables(table rdf.Term, k int) []TableResult {
	return e.similarTables(table, k, unionKind)
}

// JoinableTables returns the top-k tables joinable with the query table
// (content-similar columns).
func (e *Engine) JoinableTables(table rdf.Term, k int) []TableResult {
	return e.similarTables(table, k, joinKind)
}

func (e *Engine) similarTables(table rdf.Term, k int, kind similarityKind) []TableResult {
	cols := e.st.Objects(table, rdf.PropHasColumn, rdf.DefaultGraph)
	if len(cols) == 0 {
		return nil
	}
	// score[table] = sum over query columns of the best match score.
	scores := map[string]float64{}
	terms := map[string]rdf.Term{}
	for _, col := range cols {
		best := map[string]float64{}
		collect := func(pred rdf.Term) {
			e.st.MatchFunc(col, pred, store.Wildcard, rdf.DefaultGraph, func(t rdf.Triple) bool {
				other := t.Object
				otherTables := e.st.Objects(other, rdf.PropIsPartOf, rdf.DefaultGraph)
				if len(otherTables) == 0 {
					return true
				}
				ot := otherTables[0]
				score := 1.0
				if ann, ok := e.st.Annotation(t, rdf.PropCertainty); ok {
					if f, isF := ann.AsFloat(); isF {
						score = f
					}
				}
				key := ot.Key()
				terms[key] = ot
				if score > best[key] {
					best[key] = score
				}
				return true
			})
		}
		switch kind {
		case unionKind:
			collect(rdf.PropLabelSimilarity)
			collect(rdf.PropContentSimilarity)
		case joinKind:
			collect(rdf.PropContentSimilarity)
		}
		for key, s := range best {
			scores[key] += s
		}
	}
	out := make([]TableResult, 0, len(scores))
	norm := float64(len(cols))
	for key, s := range scores {
		t := terms[key]
		out = append(out, TableResult{Table: t, Name: e.nameOf(t), Score: s / norm})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Table.Value < out[j].Table.Value
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// ColumnMatch pairs a query-table column with a matched column of another
// table.
type ColumnMatch struct {
	A, B  rdf.Term
	AName string
	BName string
	Kind  string // "label" or "content"
	Score float64
}

// FindUnionableColumns returns the matched (unionable) column pairs
// between two tables, the schema recommendation of the
// find_unionable_columns API.
func (e *Engine) FindUnionableColumns(tableA, tableB rdf.Term) []ColumnMatch {
	var out []ColumnMatch
	for _, colA := range e.st.Objects(tableA, rdf.PropHasColumn, rdf.DefaultGraph) {
		appendMatch := func(pred rdf.Term, kind string) {
			e.st.MatchFunc(colA, pred, store.Wildcard, rdf.DefaultGraph, func(t rdf.Triple) bool {
				parents := e.st.Objects(t.Object, rdf.PropIsPartOf, rdf.DefaultGraph)
				if len(parents) == 0 || !parents[0].Equal(tableB) {
					return true
				}
				score := 1.0
				if ann, ok := e.st.Annotation(t, rdf.PropCertainty); ok {
					if f, isF := ann.AsFloat(); isF {
						score = f
					}
				}
				out = append(out, ColumnMatch{
					A: colA, B: t.Object,
					AName: e.nameOf(colA), BName: e.nameOf(t.Object),
					Kind: kind, Score: score,
				})
				return true
			})
		}
		appendMatch(rdf.PropLabelSimilarity, "label")
		appendMatch(rdf.PropContentSimilarity, "content")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AName != out[j].AName {
			return out[i].AName < out[j].AName
		}
		return out[i].Score > out[j].Score
	})
	return out
}

// JoinPath is a sequence of tables connected by joinable columns.
type JoinPath struct {
	Tables []rdf.Term
	Score  float64
}

// GetPathToTable finds join paths from start to target within maxHops
// intermediate tables (the get_path_to_table API; BFS over content-
// similarity edges).
func (e *Engine) GetPathToTable(start, target rdf.Term, maxHops int) []JoinPath {
	type state struct {
		table rdf.Term
		path  []rdf.Term
		score float64
	}
	var paths []JoinPath
	visited := map[string]bool{start.Key(): true}
	queue := []state{{table: start, path: []rdf.Term{start}, score: 1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.path)-1 > maxHops+1 {
			continue
		}
		for _, next := range e.JoinableTables(cur.table, 0) {
			if next.Table.Equal(target) {
				paths = append(paths, JoinPath{
					Tables: append(append([]rdf.Term{}, cur.path...), target),
					Score:  cur.score * next.Score,
				})
				continue
			}
			if visited[next.Table.Key()] || len(cur.path)-1 >= maxHops {
				continue
			}
			visited[next.Table.Key()] = true
			queue = append(queue, state{
				table: next.Table,
				path:  append(append([]rdf.Term{}, cur.path...), next.Table),
				score: cur.score * next.Score,
			})
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i].Tables) != len(paths[j].Tables) {
			return len(paths[i].Tables) < len(paths[j].Tables)
		}
		return paths[i].Score > paths[j].Score
	})
	return paths
}

// LibraryUsage is one row of the get_top_k_library_used result.
type LibraryUsage struct {
	Library   string
	Pipelines int
}

// TopKLibraries returns the k most-used top-level libraries by number of
// distinct pipelines calling them (Figure 4), via SPARQL over the named
// pipeline graphs.
func (e *Engine) TopKLibraries(k int) ([]LibraryUsage, error) {
	res, err := e.eng.Query(`
		SELECT ?lib (COUNT(DISTINCT ?g) AS ?n) WHERE {
			GRAPH ?g { ?s kglids:callsLibrary ?lib . }
		} GROUP BY ?lib ORDER BY DESC(?n)`)
	if err != nil {
		return nil, err
	}
	var out []LibraryUsage
	for _, row := range res.Rows {
		n, _ := row["n"].AsInt()
		out = append(out, LibraryUsage{Library: row["lib"].Local(), Pipelines: int(n)})
	}
	// Stable secondary order by name for ties.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pipelines != out[j].Pipelines {
			return out[i].Pipelines > out[j].Pipelines
		}
		return out[i].Library < out[j].Library
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// TopUsedLibrariesForTask restricts TopKLibraries to pipelines whose
// metadata task matches (the get_top_used_libraries(k, task) API).
func (e *Engine) TopUsedLibrariesForTask(k int, task string) ([]LibraryUsage, error) {
	res, err := e.eng.Query(`
		SELECT ?lib (COUNT(DISTINCT ?g) AS ?n) WHERE {
			GRAPH ?g {
				?p a kglids:Pipeline ; kglids:task "` + task + `" .
				?s kglids:callsLibrary ?lib .
			}
		} GROUP BY ?lib ORDER BY DESC(?n)`)
	if err != nil {
		return nil, err
	}
	var out []LibraryUsage
	for _, row := range res.Rows {
		n, _ := row["n"].AsInt()
		out = append(out, LibraryUsage{Library: row["lib"].Local(), Pipelines: int(n)})
	}
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// PipelineHit is one pipeline matching a library-usage query.
type PipelineHit struct {
	Pipeline rdf.Term
	Votes    int
	Score    float64
}

// PipelinesCallingLibraries returns pipelines that call every one of the
// given qualified functions (the get_pipelines_calling_libraries API).
func (e *Engine) PipelinesCallingLibraries(qualified ...string) []PipelineHit {
	if len(qualified) == 0 {
		return nil
	}
	counts := map[string]int{}
	terms := map[string]rdf.Term{}
	for _, q := range qualified {
		lib := libraryIRI(q)
		seen := map[string]bool{}
		e.st.MatchFunc(store.Wildcard, rdf.PropCallsFunction, lib, rdf.DefaultGraph, func(t rdf.Triple) bool {
			// Statement IRIs embed the pipeline IRI prefix.
			pipe := pipelineOfStatement(t.Subject)
			if pipe.Value == "" || seen[pipe.Key()] {
				return true
			}
			seen[pipe.Key()] = true
			counts[pipe.Key()]++
			terms[pipe.Key()] = pipe
			return true
		})
	}
	var out []PipelineHit
	for key, n := range counts {
		if n != len(qualified) {
			continue
		}
		pipe := terms[key]
		hit := PipelineHit{Pipeline: pipe}
		for _, v := range e.st.Objects(pipe, rdf.PropVotes, rdf.DefaultGraph) {
			if iv, ok := v.AsInt(); ok {
				hit.Votes = int(iv)
			}
		}
		for _, v := range e.st.Objects(pipe, rdf.PropScore, rdf.DefaultGraph) {
			if fv, ok := v.AsFloat(); ok {
				hit.Score = fv
			}
		}
		out = append(out, hit)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Pipeline.Value < out[j].Pipeline.Value
	})
	return out
}

func libraryIRI(qualified string) rdf.Term {
	return rdf.Resource("library/" + strings.ReplaceAll(qualified, ".", "/"))
}

// pipelineOfStatement recovers the pipeline IRI from a statement IRI of
// the form .../pipeline/<id>/s<k>.
func pipelineOfStatement(stmt rdf.Term) rdf.Term {
	v := stmt.Value
	i := strings.LastIndexByte(v, '/')
	if i < 0 {
		return rdf.Term{}
	}
	return rdf.IRI(v[:i])
}

// SPARQL exposes the underlying engine for ad-hoc queries (the Ad-hoc
// Queries interface of Figure 1).
func (e *Engine) SPARQL(query string) (*sparql.Result, error) { return e.eng.Query(query) }
