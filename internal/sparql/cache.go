package sparql

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity is the query-result cache bound of a new Engine.
const DefaultCacheCapacity = 256

// CacheStats reports cumulative cache behaviour.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// queryCache is a bounded LRU of query results keyed on query text, each
// entry pinned to the store generation it was computed at. A lookup whose
// generation no longer matches is a miss and evicts the stale entry, so
// live ingestion invalidates the whole cache for free — no subscription,
// no epoch scanning, just the comparison that was needed anyway.
type queryCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List               // front = most recently used
	entries   map[string]*list.Element // query text -> element
	hits      uint64
	misses    uint64
	evictions uint64
}

// evict removes one element, counting it in both the local stats and the
// process-wide metrics. Callers hold c.mu.
func (c *queryCache) evict(el *list.Element) {
	c.ll.Remove(el)
	delete(c.entries, el.Value.(*cacheEntry).key)
	c.evictions++
	mCacheEvictions.Inc()
}

type cacheEntry struct {
	key string
	gen uint64
	res *Result
}

// CacheEntry is one persistable query-cache entry: query text and its
// shareable result. The snapshot layer stores current-generation entries
// so a restarted server answers hot discovery queries warm.
type CacheEntry struct {
	Query string
	Res   *Result
}

// export returns the entries computed at gen, least-recently-used first,
// so importing with put() in order reproduces the recency order.
func (c *queryCache) export(gen uint64) []CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*cacheEntry)
		if ent.gen == gen {
			out = append(out, CacheEntry{Query: ent.key, Res: ent.res})
		}
	}
	return out
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{cap: capacity, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *queryCache) get(key string, gen uint64) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		mCacheMisses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		// Stale: computed against a store state that no longer exists.
		c.evict(el)
		c.misses++
		mCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	mCacheHits.Inc()
	return ent.res, true
}

func (c *queryCache) put(key string, gen uint64, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen, ent.res = gen, res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, res: res})
	for c.ll.Len() > c.cap {
		c.evict(c.ll.Back())
	}
}

func (c *queryCache) resize(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	for c.ll.Len() > c.cap {
		c.evict(c.ll.Back())
	}
}

func (c *queryCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}
