package sparql

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kglids/internal/obs"
	"kglids/internal/rdf"
	"kglids/internal/store"
)

// Binding maps variable names to terms for one solution.
type Binding map[string]rdf.Term

// value implements binder for the term-space reference engine.
func (b Binding) value(name string) (rdf.Term, bool) {
	t, ok := b[name]
	return t, ok
}

// Result is the outcome of executing a query: column names and rows of
// terms aligned with the columns. Results returned by Query/QueryContext
// may be served from the engine's cache and shared between callers — treat
// them as read-only.
type Result struct {
	Vars []string
	Rows []Binding
}

// Get returns row i's binding for v (zero Term when unbound).
func (r *Result) Get(i int, v string) rdf.Term { return r.Rows[i][v] }

// Engine executes parsed queries against a store.
//
// The default execution path compiles each query into ID space: constant
// terms resolve to dictionary IDs once, variables become integer slots,
// join order is planned from live store cardinalities, and matching
// streams over the encoded indexes — terms materialize only at projection
// time. A bounded LRU cache keyed on (query text, store generation) serves
// repeated queries without re-execution; any store mutation bumps the
// generation and so invalidates every cached result.
//
// The pre-compilation evaluator is retained as QueryReference/
// ExecReference: it is the semantic oracle the equivalence tests and
// benchmarks compare against.
type Engine struct {
	st    *store.Store
	cache *queryCache
	// slowNanos, when positive, is the slow-query threshold: any query
	// whose wall time reaches it is logged with its per-stage breakdown.
	slowNanos atomic.Int64
	// workers is the morsel-driven parallel execution width; 0 means the
	// GOMAXPROCS default, 1 selects the serial executor.
	workers atomic.Int32
}

// NewEngine returns an engine over st with a DefaultCacheCapacity-sized
// result cache.
func NewEngine(st *store.Store) *Engine {
	return &Engine{st: st, cache: newQueryCache(DefaultCacheCapacity)}
}

// SetCacheCapacity resizes the query-result cache; 0 disables caching.
func (e *Engine) SetCacheCapacity(n int) { e.cache.resize(n) }

// SetSlowQuery sets the slow-query log threshold; 0 disables it.
// Queries at or over the threshold emit one structured warning with the
// query text, total duration, outcome, and parse/compile/plan/execute/
// materialize stage times.
func (e *Engine) SetSlowQuery(d time.Duration) { e.slowNanos.Store(int64(d)) }

// CacheStats reports cumulative cache behaviour (tests and monitoring).
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// SetWorkers sets the morsel-driven parallel execution width: how many
// goroutines a single query may fan out over. 1 selects the serial
// executor (the equivalence oracle); n <= 0 restores the GOMAXPROCS
// default. The width may be changed at any time; in-flight queries keep
// the width they started with.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers.Store(int32(n))
}

// Workers reports the effective parallel execution width.
func (e *Engine) Workers() int {
	if w := e.workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// CacheExport returns the cached results computed at the store's current
// generation, least-recently-used first, so re-importing in order
// reproduces the recency order. Snapshot persistence calls this under the
// platform's ingest lock, where the current generation covers every live
// entry.
func (e *Engine) CacheExport() []CacheEntry {
	return e.cache.export(e.st.Generation())
}

// CacheImport seeds the cache with previously exported entries, pinning
// them to the store's current generation: a restored store re-derives its
// own generation counter, so entries re-key on import rather than
// carrying a stale saved generation.
func (e *Engine) CacheImport(entries []CacheEntry) {
	gen := e.st.Generation()
	for _, ent := range entries {
		if ent.Query == "" || ent.Res == nil {
			continue
		}
		e.cache.put(ent.Query, gen, ent.Res)
	}
}

// Query parses and executes src on the compiled ID-space path, serving
// repeated queries from the generation-keyed result cache.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: cancellation or deadline expiry
// stops the evaluation mid-iteration and returns the context's error.
//
// Evaluation is traced: parse, compile, plan, execute, and materialize
// stage durations land in the process-wide histograms and — when the
// context carries an obs.Trace (the server installs one per request) —
// on the trace, which is what the slow-query log prints.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	slow := time.Duration(e.slowNanos.Load())
	tr := obs.FromContext(ctx)
	if tr == nil && slow > 0 {
		// No caller-supplied trace, but the slow log needs the stage
		// breakdown: open a local one.
		tr = obs.NewTrace("")
		ctx = obs.WithTrace(ctx, tr)
	}
	start := time.Now()
	// Cache lookup and parsing both happen before the view is acquired:
	// hits never parse, and parsing — which doesn't touch the store — never
	// extends the window during which a waiting writer blocks.
	gen := e.st.Generation()
	if res, ok := e.cache.get(src, gen); ok {
		mQueries.WithLabelValues("cache_hit").Inc()
		return res, nil
	}
	parseStart := time.Now()
	q, err := Parse(src)
	parseDur := time.Since(parseStart)
	mStage.WithLabelValues("parse").Observe(parseDur.Seconds())
	tr.AddSpan("parse", parseStart, parseDur)
	if err != nil {
		mQueries.WithLabelValues("parse_error").Inc()
		return nil, err
	}
	v := e.st.AcquireView()
	defer v.Close()
	if g := v.Generation(); g != gen {
		// A mutation landed between the lookup and the view; recheck so a
		// concurrent writer can't make us recompute a cached result.
		gen = g
		if res, ok := e.cache.get(src, gen); ok {
			mQueries.WithLabelValues("cache_hit").Inc()
			return res, nil
		}
	}
	res, err := compileTimed(tr, q, v).execute(ctx, v, e.Workers())
	outcome := "ok"
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		outcome = "cancelled"
		mCancellations.Inc()
	case err != nil:
		outcome = "error"
	}
	mQueries.WithLabelValues(outcome).Inc()
	if total := time.Since(start); slow > 0 && total >= slow {
		logSlow(src, total, outcome, tr)
	}
	if err != nil {
		return nil, err
	}
	e.cache.put(src, gen, res)
	return res, nil
}

// compileTimed lowers and plans q, splitting the wall time between the
// "compile" (lowering: slot assignment, constant resolution) and "plan"
// (cardinality-based join ordering) stages.
func compileTimed(tr *obs.Trace, q *Query, v *store.View) *compiledQuery {
	compileStart := time.Now()
	cq := compile(q, v)
	total := time.Since(compileStart)
	lower := total - cq.planDur
	if lower < 0 {
		lower = 0
	}
	mStage.WithLabelValues("compile").Observe(lower.Seconds())
	mStage.WithLabelValues("plan").Observe(cq.planDur.Seconds())
	tr.AddSpan("compile", compileStart, lower)
	tr.AddSpan("plan", compileStart, cq.planDur)
	return cq
}

// logSlow emits the slow-query warning: total wall time, outcome, the
// originating request (when the trace came from the server), and every
// recorded stage.
func logSlow(src string, total time.Duration, outcome string, tr *obs.Trace) {
	args := []any{
		"duration_ms", float64(total.Microseconds()) / 1e3,
		"outcome", outcome,
		"query", truncateQuery(src),
	}
	if tr != nil {
		if tr.ID != "" {
			args = append(args, "request_id", tr.ID)
		}
		for _, s := range tr.Spans() {
			args = append(args, "stage_"+s.Name+"_ms", float64(s.Dur.Microseconds())/1e3)
		}
	}
	slog.Warn("slow sparql query", args...)
}

// truncateQuery bounds the query text quoted in log lines.
func truncateQuery(src string) string {
	const max = 300
	src = strings.Join(strings.Fields(src), " ")
	if len(src) > max {
		return src[:max] + "..."
	}
	return src
}

// Exec executes a parsed query on the compiled path (uncached: the cache
// keys on query text, which a pre-parsed query no longer carries).
func (e *Engine) Exec(q *Query) (*Result, error) {
	return e.ExecContext(context.Background(), q)
}

// ExecContext is Exec under a context.
func (e *Engine) ExecContext(ctx context.Context, q *Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v := e.st.AcquireView()
	defer v.Close()
	return compileTimed(obs.FromContext(ctx), q, v).execute(ctx, v, e.Workers())
}

// QueryReference parses and executes src on the term-space reference path.
func (e *Engine) QueryReference(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.ExecReference(q)
}

// ExecReference executes a parsed query with the reference evaluator:
// term-space bindings, map-cloning joins, no planning beyond the static
// most-bound-first heuristic. It defines the semantics the compiled engine
// must reproduce.
func (e *Engine) ExecReference(q *Query) (*Result, error) {
	sols, err := e.evalGroup(q.Where, rdf.DefaultGraph, []Binding{{}})
	if err != nil {
		return nil, err
	}
	if len(q.GroupBy) > 0 || hasAggregates(q) {
		sols, err = aggregate(q, sols)
		if err != nil {
			return nil, err
		}
	}
	return finishRows(q, sols), nil
}

// finishRows applies the solution-modifier tail shared by both engines:
// projection, DISTINCT, ORDER BY, OFFSET/LIMIT.
func finishRows(q *Query, sols []Binding) *Result {
	vars := projectionVars(q, sols)
	rows := make([]Binding, 0, len(sols))
	for _, s := range sols {
		row := Binding{}
		for _, v := range vars {
			if t, ok := s[v]; ok {
				row[v] = t
			}
		}
		rows = append(rows, row)
	}
	if q.Distinct {
		rows = distinctRows(vars, rows)
	}
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range q.OrderBy {
				c := compareTerms(rows[i][k.Var], rows[j][k.Var])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}
}

func hasAggregates(q *Query) bool {
	for _, p := range q.Projection {
		if p.Agg != nil {
			return true
		}
	}
	return false
}

func projectionVars(q *Query, sols []Binding) []string {
	if !q.Star {
		vars := make([]string, len(q.Projection))
		for i, p := range q.Projection {
			vars[i] = p.Var
		}
		return vars
	}
	seen := map[string]bool{}
	var vars []string
	for _, s := range sols {
		for v := range s {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	sort.Strings(vars)
	return vars
}

func distinctRows(vars []string, rows []Binding) []Binding {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := r[v]; ok {
				sb.WriteString(t.Key())
			}
			sb.WriteByte(0)
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// evalGroup evaluates a group pattern under the active graph, extending each
// input binding.
func (e *Engine) evalGroup(g *GroupPattern, graph rdf.Term, in []Binding) ([]Binding, error) {
	sols := in
	// Order triple patterns greedily: most-bound (fewest unbound vars given
	// already-seen variables) first. This mirrors index-driven join ordering
	// in RDF engines.
	pats := orderPatterns(g.Triples, in)
	for _, tp := range pats {
		sols = e.evalTriple(tp, graph, sols)
		if len(sols) == 0 {
			break
		}
	}
	// GRAPH blocks.
	for _, gp := range g.Graphs {
		var err error
		sols, err = e.evalGraphPattern(gp, sols)
		if err != nil {
			return nil, err
		}
	}
	// UNION blocks.
	for _, alts := range g.Unions {
		var merged []Binding
		for _, alt := range alts {
			sub, err := e.evalGroup(alt, graph, sols)
			if err != nil {
				return nil, err
			}
			merged = append(merged, sub...)
		}
		sols = merged
	}
	// OPTIONAL blocks (left join).
	for _, opt := range g.Optionals {
		var out []Binding
		for _, b := range sols {
			sub, err := e.evalGroup(opt, graph, []Binding{b})
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				out = append(out, b)
			} else {
				out = append(out, sub...)
			}
		}
		sols = out
	}
	// FILTERs.
	for _, f := range g.Filters {
		var out []Binding
		for _, b := range sols {
			v, err := evalExpr(f, b)
			if err != nil {
				continue // error in filter → row excluded
			}
			if truthy(v) {
				out = append(out, b)
			}
		}
		sols = out
	}
	return sols, nil
}

func (e *Engine) evalGraphPattern(gp *GraphPattern, in []Binding) ([]Binding, error) {
	if !gp.Graph.IsVar() {
		return e.evalGroup(gp.Pattern, gp.Graph.Term, in)
	}
	// Variable graph: if already bound use it, else iterate all graphs.
	var out []Binding
	for _, b := range in {
		if t, ok := b[gp.Graph.Var]; ok {
			sub, err := e.evalGroup(gp.Pattern, t, []Binding{b})
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			continue
		}
		for _, gt := range e.st.Graphs() {
			nb := cloneBinding(b)
			nb[gp.Graph.Var] = gt
			sub, err := e.evalGroup(gp.Pattern, gt, []Binding{nb})
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	return out, nil
}

// orderPatterns sorts triple patterns so that patterns with more bound
// positions (constants or already-bound variables) come first.
func orderPatterns(pats []TriplePattern, in []Binding) []TriplePattern {
	bound := map[string]bool{}
	if len(in) > 0 {
		for v := range in[0] {
			bound[v] = true
		}
	}
	rest := append([]TriplePattern(nil), pats...)
	var ordered []TriplePattern
	for len(rest) > 0 {
		best, bestScore := 0, -1
		for i, tp := range rest {
			score := 0
			for _, n := range []NodePattern{tp.S, tp.P, tp.O} {
				if !n.IsVar() || bound[n.Var] {
					score++
				}
			}
			// Prefer bound subject over bound object over bound predicate,
			// reflecting index selectivity.
			if !tp.S.IsVar() || bound[tp.S.Var] {
				score++
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		tp := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		ordered = append(ordered, tp)
		for _, n := range []NodePattern{tp.S, tp.P, tp.O} {
			if n.IsVar() {
				bound[n.Var] = true
			}
		}
	}
	return ordered
}

func (e *Engine) evalTriple(tp TriplePattern, graph rdf.Term, in []Binding) []Binding {
	var out []Binding
	for _, b := range in {
		s := resolveNode(tp.S, b)
		p := resolveNode(tp.P, b)
		o := resolveNode(tp.O, b)
		e.st.MatchFunc(s, p, o, graph, func(t rdf.Triple) bool {
			nb := cloneBinding(b)
			if tp.S.IsVar() {
				if prev, ok := nb[tp.S.Var]; ok && !prev.Equal(t.Subject) {
					return true
				}
				nb[tp.S.Var] = t.Subject
			}
			if tp.P.IsVar() {
				if prev, ok := nb[tp.P.Var]; ok && !prev.Equal(t.Predicate) {
					return true
				}
				nb[tp.P.Var] = t.Predicate
			}
			if tp.O.IsVar() {
				if prev, ok := nb[tp.O.Var]; ok && !prev.Equal(t.Object) {
					return true
				}
				nb[tp.O.Var] = t.Object
			}
			out = append(out, nb)
			return true
		})
	}
	return out
}

func resolveNode(n NodePattern, b Binding) rdf.Term {
	if !n.IsVar() {
		return n.Term
	}
	if t, ok := b[n.Var]; ok {
		return t
	}
	return store.Wildcard
}

func cloneBinding(b Binding) Binding {
	nb := make(Binding, len(b)+3)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// aggregate implements GROUP BY + aggregates (or a single implicit group).
func aggregate(q *Query, sols []Binding) ([]Binding, error) {
	groups := map[string][]Binding{}
	var orderKeys []string
	for _, s := range sols {
		var sb strings.Builder
		for _, v := range q.GroupBy {
			if t, ok := s[v]; ok {
				sb.WriteString(t.Key())
			}
			sb.WriteByte(0)
		}
		k := sb.String()
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], s)
	}
	if len(sols) == 0 && len(q.GroupBy) == 0 {
		// Implicit single empty group so COUNT(*) over no rows yields 0.
		orderKeys = append(orderKeys, "")
		groups[""] = nil
	}
	var out []Binding
	for _, k := range orderKeys {
		members := groups[k]
		row := Binding{}
		for _, v := range q.GroupBy {
			if len(members) > 0 {
				if t, ok := members[0][v]; ok {
					row[v] = t
				}
			}
		}
		for _, p := range q.Projection {
			if p.Agg == nil {
				continue
			}
			t, err := evalAggregate(p.Agg, members)
			if err != nil {
				return nil, err
			}
			row[p.Var] = t
		}
		out = append(out, row)
	}
	return out, nil
}

func evalAggregate(a *Aggregate, members []Binding) (rdf.Term, error) {
	var values []rdf.Term
	for _, m := range members {
		if a.Var == "*" {
			values = append(values, rdf.Integer(1))
			continue
		}
		if t, ok := m[a.Var]; ok {
			values = append(values, t)
		}
	}
	return aggFromValues(a, values)
}

// aggFromValues computes an aggregate over collected values (shared by the
// reference and ID-space engines; the latter decodes bound IDs to values
// first).
func aggFromValues(a *Aggregate, values []rdf.Term) (rdf.Term, error) {
	if a.Distinct {
		seen := map[string]bool{}
		uniq := values[:0]
		for _, v := range values {
			if !seen[v.Key()] {
				seen[v.Key()] = true
				uniq = append(uniq, v)
			}
		}
		values = uniq
	}
	switch a.Fn {
	case "COUNT":
		return rdf.Integer(int64(len(values))), nil
	case "SUM", "AVG":
		var sum float64
		for _, v := range values {
			f, ok := v.AsFloat()
			if !ok {
				return rdf.Term{}, fmt.Errorf("sparql: %s over non-numeric %v", a.Fn, v)
			}
			sum += f
		}
		if a.Fn == "SUM" {
			return rdf.Float(sum), nil
		}
		if len(values) == 0 {
			return rdf.Float(0), nil
		}
		return rdf.Float(sum / float64(len(values))), nil
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, nil
		}
		best := values[0]
		for _, v := range values[1:] {
			c := compareTerms(v, best)
			if (a.Fn == "MIN" && c < 0) || (a.Fn == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown aggregate %q", a.Fn)
}

// compareTerms orders terms: numerics numerically, otherwise by lexical
// form. Unbound terms sort first.
func compareTerms(a, b rdf.Term) int {
	fa, oka := a.AsFloat()
	fb, okb := b.AsFloat()
	if oka && okb {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.Value, b.Value)
}

// regexCacheMax bounds the compiled-pattern cache; REGEX patterns come from
// user queries, so an unbounded map would grow with adversarial traffic.
// Eviction is a wholesale reset — simpler than LRU bookkeeping and the
// steady-state pattern set of real workloads is far below the bound.
const regexCacheMax = 256

var regexCache = struct {
	sync.Mutex
	m map[string]*regexp.Regexp
}{m: map[string]*regexp.Regexp{}}

func compileRegex(pat string) (*regexp.Regexp, error) {
	regexCache.Lock()
	re, ok := regexCache.m[pat]
	regexCache.Unlock()
	if ok {
		return re, nil
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, err
	}
	regexCache.Lock()
	if len(regexCache.m) >= regexCacheMax {
		regexCache.m = make(map[string]*regexp.Regexp, regexCacheMax)
	}
	regexCache.m[pat] = re
	regexCache.Unlock()
	return re, nil
}
