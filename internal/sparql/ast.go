package sparql

import "kglids/internal/rdf"

// Query is a parsed SELECT query.
type Query struct {
	Prefixes   map[string]string
	Distinct   bool
	Star       bool // SELECT *
	Projection []Projection
	Where      *GroupPattern
	GroupBy    []string
	OrderBy    []OrderKey
	Limit      int // -1 means unset
	Offset     int
}

// Projection is a projected variable or aggregate.
type Projection struct {
	Var string // result name
	Agg *Aggregate
}

// Aggregate is COUNT/SUM/AVG/MIN/MAX over a variable ("*" for COUNT(*)).
type Aggregate struct {
	Fn       string // COUNT, SUM, AVG, MIN, MAX
	Var      string // "*" allowed for COUNT
	Distinct bool
}

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Var  string
	Desc bool
}

// GroupPattern is a { ... } block: triple patterns plus nested blocks.
type GroupPattern struct {
	Triples   []TriplePattern
	Filters   []Expr
	Optionals []*GroupPattern
	Graphs    []*GraphPattern
	Unions    [][]*GroupPattern // each union is a list of alternative groups
}

// GraphPattern is GRAPH <g>/?g { ... }.
type GraphPattern struct {
	Graph   NodePattern
	Pattern *GroupPattern
}

// NodePattern is a term or a variable in a triple pattern position.
type NodePattern struct {
	Var  string // non-empty means variable
	Term rdf.Term
}

// IsVar reports whether the pattern position is a variable.
func (n NodePattern) IsVar() bool { return n.Var != "" }

// TriplePattern is one s-p-o pattern.
type TriplePattern struct {
	S, P, O NodePattern
}

// Expr is a FILTER expression node.
type Expr interface{ isExpr() }

// BinaryExpr applies Op to Left and Right (comparisons, &&, ||, arithmetic).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies Op ("!" or "-") to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// VarExpr references a variable binding.
type VarExpr struct{ Name string }

// LitExpr is a constant term.
type LitExpr struct{ Term rdf.Term }

// CallExpr is a builtin call: CONTAINS, STRSTARTS, REGEX, STR, BOUND,
// LCASE, UCASE.
type CallExpr struct {
	Fn   string
	Args []Expr
}

func (*BinaryExpr) isExpr() {}
func (*UnaryExpr) isExpr()  {}
func (*VarExpr) isExpr()    {}
func (*LitExpr) isExpr()    {}
func (*CallExpr) isExpr()   {}
