package sparql

import (
	"testing"

	"kglids/internal/rdf"
	"kglids/internal/store"
)

// buildFixture creates a small LiDS-like graph: two tables with columns and
// a pipeline graph reading one table.
func buildFixture() *store.Store {
	st := store.New()
	t1 := rdf.Resource("kaggle/titanic/train.csv")
	t2 := rdf.Resource("kaggle/heart-uci/heart.csv")
	st.Add(rdf.T(t1, rdf.RDFType, rdf.ClassTable))
	st.Add(rdf.T(t2, rdf.RDFType, rdf.ClassTable))
	st.Add(rdf.T(t1, rdf.PropName, rdf.String("train.csv")))
	st.Add(rdf.T(t2, rdf.PropName, rdf.String("heart.csv")))
	st.Add(rdf.T(t1, rdf.PropRowCount, rdf.Integer(891)))
	st.Add(rdf.T(t2, rdf.PropRowCount, rdf.Integer(303)))
	cols := map[string]rdf.Term{}
	for _, c := range []struct {
		table rdf.Term
		name  string
		typ   string
	}{
		{t1, "Sex", "named_entity"},
		{t1, "Age", "int"},
		{t1, "Survived", "boolean"},
		{t2, "gender", "named_entity"},
		{t2, "age", "int"},
		{t2, "target", "boolean"},
	} {
		col := rdf.Resource(c.table.Local() + "/" + c.name)
		cols[c.name] = col
		st.Add(rdf.T(col, rdf.RDFType, rdf.ClassColumn))
		st.Add(rdf.T(col, rdf.PropName, rdf.String(c.name)))
		st.Add(rdf.T(col, rdf.PropDataType, rdf.String(c.typ)))
		st.Add(rdf.T(col, rdf.PropIsPartOf, c.table))
	}
	sim := rdf.T(cols["Sex"], rdf.PropLabelSimilarity, cols["gender"])
	st.AddAnnotated(sim, rdf.DefaultGraph, rdf.PropCertainty, rdf.Float(0.92))
	// Pipeline named graph.
	pg := rdf.Resource("pipeline/p1")
	s1 := rdf.Resource("pipeline/p1/s1")
	st.AddToGraph(rdf.T(s1, rdf.RDFType, rdf.ClassStatement), pg)
	st.AddToGraph(rdf.T(s1, rdf.PropReads, t1), pg)
	return st
}

func TestBasicSelect(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`SELECT ?t WHERE { ?t a kglids:Table . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestJoinAndFilter(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?col ?name WHERE {
			?col a kglids:Column ;
			     kglids:name ?name ;
			     kglids:dataType "int" .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("int columns = %d, want 2", len(res.Rows))
	}
	res, err = e.Query(`
		SELECT ?t WHERE {
			?t a kglids:Table ; kglids:rowCount ?n .
			FILTER(?n > 500)
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["t"].Local() != "train.csv" {
		t.Fatalf("filter result = %v", res.Rows)
	}
}

func TestStringFunctions(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?c WHERE {
			?c a kglids:Column ; kglids:name ?n .
			FILTER(CONTAINS(LCASE(?n), "age"))
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // Age, age
		t.Fatalf("CONTAINS matched %d, want 2", len(res.Rows))
	}
	res, err = e.Query(`
		SELECT ?c WHERE {
			?c a kglids:Column ; kglids:name ?n .
			FILTER(REGEX(?n, "^s", "i"))
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // Sex, Survived
		t.Fatalf("REGEX matched %d, want 2", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?typ (COUNT(?c) AS ?n) WHERE {
			?c a kglids:Column ; kglids:dataType ?typ .
		} GROUP BY ?typ ORDER BY DESC(?n)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if n, _ := r["n"].AsInt(); n != 2 {
			t.Errorf("group %v count = %v, want 2", r["typ"], r["n"])
		}
	}
	res, err = e.Query(`SELECT (COUNT(*) AS ?n) (AVG(?rc) AS ?avg) WHERE { ?t kglids:rowCount ?rc . }`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Rows[0]["n"].AsInt(); n != 2 {
		t.Errorf("COUNT(*) = %v", res.Rows[0]["n"])
	}
	if avg, _ := res.Rows[0]["avg"].AsFloat(); avg != 597 {
		t.Errorf("AVG = %v, want 597", avg)
	}
}

func TestCountEmptyIsZero(t *testing.T) {
	e := NewEngine(store.New())
	res, err := e.Query(`SELECT (COUNT(*) AS ?n) WHERE { ?s a kglids:Table . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if n, _ := res.Rows[0]["n"].AsInt(); n != 0 {
		t.Errorf("COUNT over empty = %v", res.Rows[0]["n"])
	}
}

func TestGraphPattern(t *testing.T) {
	e := NewEngine(buildFixture())
	// Named-graph restricted query.
	res, err := e.Query(`
		SELECT ?s ?t WHERE {
			GRAPH ?g { ?s kglids:reads ?t . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("graph rows = %d, want 1", len(res.Rows))
	}
	res, err = e.Query(`
		SELECT ?s WHERE {
			GRAPH <http://kglids.org/resource/pipeline/p1> { ?s a kglids:Statement . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("explicit graph rows = %d, want 1", len(res.Rows))
	}
}

func TestOptional(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?c ?sim WHERE {
			?c a kglids:Column .
			OPTIONAL { ?c kglids:labelSimilarity ?sim . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	withSim := 0
	for _, r := range res.Rows {
		if _, ok := r["sim"]; ok {
			withSim++
		}
	}
	if withSim != 1 {
		t.Errorf("rows with sim = %d, want 1", withSim)
	}
}

func TestUnion(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT DISTINCT ?c WHERE {
			{ ?c kglids:dataType "int" . } UNION { ?c kglids:dataType "boolean" . }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("union rows = %d, want 4", len(res.Rows))
	}
}

func TestOrderLimitOffset(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?n WHERE { ?c a kglids:Column ; kglids:name ?n . }
		ORDER BY ?n LIMIT 2 OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0]["n"].Value != "Sex" || res.Rows[1]["n"].Value != "Survived" {
		t.Errorf("ordered rows = %v %v", res.Rows[0]["n"], res.Rows[1]["n"])
	}
}

func TestDistinct(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`SELECT DISTINCT ?typ WHERE { ?c kglids:dataType ?typ . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("distinct types = %d, want 3", len(res.Rows))
	}
}

func TestSharedVariableJoin(t *testing.T) {
	e := NewEngine(buildFixture())
	// Columns of the table named train.csv.
	res, err := e.Query(`
		SELECT ?col WHERE {
			?t kglids:name "train.csv" .
			?col kglids:isPartOf ?t .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("columns of train.csv = %d, want 3", len(res.Rows))
	}
}

func TestRDFStarAnnotationQuery(t *testing.T) {
	st := buildFixture()
	e := NewEngine(st)
	// The annotation triple's subject is a quoted triple; verify we can
	// find high-certainty similarity edges by querying annotations through
	// the store API and filtering in SPARQL on the pair.
	res, err := e.Query(`
		SELECT ?a ?b WHERE { ?a kglids:labelSimilarity ?b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("similarity edges = %d", len(res.Rows))
	}
	tr := rdf.T(res.Rows[0]["a"], rdf.PropLabelSimilarity, res.Rows[0]["b"])
	score, ok := st.Annotation(tr, rdf.PropCertainty)
	if !ok {
		t.Fatal("no certainty annotation")
	}
	if f, _ := score.AsFloat(); f != 0.92 {
		t.Errorf("certainty = %v", score)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`SELECT WHERE { }`,
		`SELECT ?x WHERE { ?x ?y }`,      // incomplete triple
		`SELECT ?x WHERE { ?x a ?y . `,   // unterminated group
		`SELECT ?x WHERE { FILTER ?x }`,  // filter without parens
		`SELECT ?x WHERE { ?x a foo:y }`, // unknown prefix
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestArithmeticFilter(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?t WHERE {
			?t kglids:rowCount ?n .
			FILTER(?n * 2 > 1000 && ?n - 91 = 800)
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

func TestBoundAndNegation(t *testing.T) {
	e := NewEngine(buildFixture())
	res, err := e.Query(`
		SELECT ?c WHERE {
			?c a kglids:Column .
			OPTIONAL { ?c kglids:labelSimilarity ?s . }
			FILTER(!BOUND(?s))
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("unmatched columns = %d, want 5", len(res.Rows))
	}
}
