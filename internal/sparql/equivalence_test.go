package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"kglids/internal/rdf"
	"kglids/internal/store"
)

// buildSeededStore populates a LiDS-shaped store deterministically from a
// seed: tables with metadata, columns with names/types, RDF-star-annotated
// similarity edges, and pipeline named graphs.
func buildSeededStore(seed int64, nTables int) *store.Store {
	r := rand.New(rand.NewSource(seed))
	st := store.New()
	colNames := []string{"age", "name", "gender", "price", "city", "score", "target", "count"}
	colTypes := []string{"int", "string", "boolean", "float"}
	var allCols []rdf.Term
	var allTables []rdf.Term
	for i := 0; i < nTables; i++ {
		ds := fmt.Sprintf("ds%d", i%5)
		tbl := rdf.Resource(fmt.Sprintf("%s/table%d.csv", ds, i))
		allTables = append(allTables, tbl)
		st.Add(rdf.T(tbl, rdf.RDFType, rdf.ClassTable))
		if r.Intn(10) > 0 {
			st.Add(rdf.T(tbl, rdf.PropName, rdf.String(fmt.Sprintf("table%d.csv", i))))
		}
		st.Add(rdf.T(tbl, rdf.PropRowCount, rdf.Integer(int64(r.Intn(2000)))))
		st.Add(rdf.T(tbl, rdf.PropIsPartOf, rdf.Resource(ds)))
		for j, n := 0, 2+r.Intn(4); j < n; j++ {
			col := rdf.Resource(fmt.Sprintf("%s/table%d.csv/c%d", ds, i, j))
			allCols = append(allCols, col)
			st.Add(rdf.T(col, rdf.RDFType, rdf.ClassColumn))
			st.Add(rdf.T(col, rdf.PropName, rdf.String(colNames[r.Intn(len(colNames))])))
			st.Add(rdf.T(col, rdf.PropDataType, rdf.String(colTypes[r.Intn(len(colTypes))])))
			st.Add(rdf.T(col, rdf.PropIsPartOf, tbl))
			st.Add(rdf.T(tbl, rdf.PropHasColumn, col))
		}
	}
	for k := 0; k < nTables; k++ {
		a, b := allCols[r.Intn(len(allCols))], allCols[r.Intn(len(allCols))]
		if a.Equal(b) {
			continue
		}
		pred := rdf.PropLabelSimilarity
		if r.Intn(2) == 0 {
			pred = rdf.PropContentSimilarity
		}
		st.AddAnnotated(rdf.T(a, pred, b), rdf.DefaultGraph, rdf.PropCertainty,
			rdf.Float(float64(r.Intn(100))/100))
	}
	for k := 0; k < nTables/2; k++ {
		pg := rdf.Resource(fmt.Sprintf("pipeline/p%d", k))
		s1 := rdf.Resource(fmt.Sprintf("pipeline/p%d/s1", k))
		st.AddToGraph(rdf.T(s1, rdf.RDFType, rdf.ClassStatement), pg)
		st.AddToGraph(rdf.T(s1, rdf.PropReads, allTables[r.Intn(len(allTables))]), pg)
		st.AddToGraph(rdf.T(s1, rdf.PropCallsLibrary,
			rdf.Resource(fmt.Sprintf("library/lib%d", r.Intn(4)))), pg)
	}
	return st
}

// randomQuery generates a query string over the seeded vocabulary:
// a connected-ish BGP with optional FILTER, OPTIONAL, GRAPH, GROUP BY,
// ORDER BY, and LIMIT shapes. LIMIT without an ORDER BY over every
// projected variable is intentionally never generated — both engines are
// free to enumerate solutions in different orders, and keying the order on
// all projected variables makes the post-slice row multiset deterministic
// (tied solutions project identically, so any tie-break yields the same
// rows). This is what lets the harness drive the top-k push-down path.
func randomQuery(r *rand.Rand) string {
	patterns := [][2]string{
		{"?t", "?t a kglids:Table ."},
		{"?t ?n", "?t kglids:name ?n ."},
		{"?t ?rc", "?t kglids:rowCount ?rc ."},
		{"?c ?t", "?c kglids:isPartOf ?t ."},
		{"?t ?c", "?t kglids:hasColumn ?c ."},
		{"?c", "?c a kglids:Column ."},
		{"?c ?cn", "?c kglids:name ?cn ."},
		{"?c ?dt", "?c kglids:dataType ?dt ."},
		{"?c", `?c kglids:dataType "int" .`},
		{"?c ?d", "?c kglids:labelSimilarity ?d ."},
		{"?c ?d", "?c kglids:contentSimilarity ?d ."},
	}
	used := map[string]bool{}
	var body []string
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		p := patterns[r.Intn(len(patterns))]
		for _, v := range strings.Fields(p[0]) {
			used[strings.TrimPrefix(v, "?")] = true
		}
		body = append(body, p[1])
	}
	if r.Intn(3) == 0 {
		body = append(body, "OPTIONAL { ?c kglids:labelSimilarity ?sim . }")
		used["sim"] = true
		used["c"] = true
	}
	if r.Intn(4) == 0 {
		body = append(body, "GRAPH ?g { ?s kglids:reads ?rt . }")
		used["g"], used["s"], used["rt"] = true, true, true
	}
	if r.Intn(2) == 0 {
		filters := []string{
			"FILTER(?rc > 500)",
			"FILTER(?rc >= 100 && ?rc < 1500)",
			`FILTER(CONTAINS(LCASE(?cn), "a"))`,
			`FILTER(REGEX(?cn, "^[acs]", "i"))`,
			"FILTER(BOUND(?sim))",
			"FILTER(!BOUND(?sim))",
			`FILTER(STRSTARTS(?dt, "i") || ?rc < 900)`,
		}
		body = append(body, filters[r.Intn(len(filters))])
	}
	vars := make([]string, 0, len(used))
	for v := range used {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	if r.Intn(4) == 0 && len(vars) > 1 {
		g, cnt := vars[r.Intn(len(vars))], vars[r.Intn(len(vars))]
		return fmt.Sprintf("SELECT ?%s (COUNT(?%s) AS ?agg) WHERE { %s } GROUP BY ?%s",
			g, cnt, strings.Join(body, " "), g)
	}
	proj := "*"
	projVars := vars
	if r.Intn(2) == 0 {
		k := 1 + r.Intn(len(vars))
		projVars = vars[:k]
		var sb strings.Builder
		for i := 0; i < k; i++ {
			sb.WriteString("?" + vars[i] + " ")
		}
		proj = strings.TrimSpace(sb.String())
	}
	distinct := ""
	if r.Intn(3) == 0 {
		distinct = "DISTINCT "
	}
	modifiers := ""
	if r.Intn(3) == 0 {
		keys := make([]string, len(projVars))
		for i, v := range projVars {
			if r.Intn(2) == 0 {
				keys[i] = "DESC(?" + v + ")"
			} else {
				keys[i] = "?" + v
			}
		}
		modifiers = " ORDER BY " + strings.Join(keys, " ")
		if r.Intn(2) == 0 {
			modifiers += fmt.Sprintf(" LIMIT %d", 1+r.Intn(12))
			if r.Intn(3) == 0 {
				modifiers += fmt.Sprintf(" OFFSET %d", r.Intn(4))
			}
		}
	}
	return fmt.Sprintf("SELECT %s%s WHERE { %s }%s", distinct, proj, strings.Join(body, " "), modifiers)
}

// canonical renders a result as a sorted multiset of rows, ignoring
// enumeration order.
func canonical(res *Result) []string {
	vars := append([]string(nil), res.Vars...)
	sort.Strings(vars)
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := row[v]; ok {
				sb.WriteString(v + "=" + t.Key())
			}
			sb.WriteByte('|')
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return rows
}

func sameResult(a, b *Result) bool {
	ca, cb := canonical(a), canonical(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// TestCompiledMatchesReference is the randomized equivalence harness: the
// compiled ID-space engine must agree with the term-space reference on
// every generated query shape, at every parallel width. workers=1 is the
// serial oracle; 4 and 8 drive the morsel executor (and, on ordered+limited
// shapes, the top-k push-down) over the same queries.
func TestCompiledMatchesReference(t *testing.T) {
	st := buildSeededStore(7, 30)
	e := NewEngine(st)
	e.SetCacheCapacity(0) // exercise execution, not the cache
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		src := randomQuery(r)
		want, err := e.QueryReference(src)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		for _, workers := range []int{1, 4, 8} {
			e.SetWorkers(workers)
			got, err := e.Query(src)
			if err != nil {
				t.Fatalf("compiled %q at %d workers: %v", src, workers, err)
			}
			if !sameResult(got, want) {
				t.Fatalf("divergence on %q at %d workers:\ncompiled:  %d rows %v\nreference: %d rows %v",
					src, workers, len(got.Rows), canonical(got), len(want.Rows), canonical(want))
			}
		}
	}
}

// TestCompiledMatchesReferenceFixtures pins the hand-written fixture
// queries from sparql_test.go to the same equivalence property, including
// ordered and limited shapes the generator avoids.
func TestCompiledMatchesReferenceFixtures(t *testing.T) {
	st := buildFixture()
	e := NewEngine(st)
	for _, src := range []string{
		`SELECT ?t WHERE { ?t a kglids:Table . }`,
		`SELECT ?col ?name WHERE { ?col a kglids:Column ; kglids:name ?name ; kglids:dataType "int" . }`,
		`SELECT ?t ?n (COUNT(?c) AS ?cnt) WHERE { ?c kglids:isPartOf ?t . ?t kglids:name ?n . } GROUP BY ?t ?n ORDER BY ?n`,
		`SELECT ?n WHERE { ?c a kglids:Column ; kglids:name ?n . } ORDER BY ?n LIMIT 2 OFFSET 1`,
		`SELECT DISTINCT ?typ WHERE { ?c kglids:dataType ?typ . } ORDER BY DESC(?typ)`,
		`SELECT (COUNT(*) AS ?n) (AVG(?rc) AS ?avg) WHERE { ?t kglids:rowCount ?rc . }`,
		`SELECT ?s ?t WHERE { GRAPH ?g { ?s kglids:reads ?t . } }`,
		`SELECT ?c ?sim WHERE { ?c a kglids:Column . OPTIONAL { ?c kglids:labelSimilarity ?sim . } }`,
		`SELECT DISTINCT ?c WHERE { { ?c kglids:dataType "int" . } UNION { ?c kglids:dataType "boolean" . } }`,
		`SELECT ?t WHERE { ?t a kglids:Table . FILTER(?missing > 1) }`,
		`SELECT ?t WHERE { ?t a <http://example.org/not-in-store> . }`,
		`SELECT ?x WHERE { GRAPH <http://example.org/no-such-graph> { ?x a kglids:Statement . } }`,
	} {
		got, err := e.Query(src)
		if err != nil {
			t.Fatalf("compiled %q: %v", src, err)
		}
		want, err := e.QueryReference(src)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		if !sameResult(got, want) {
			t.Errorf("divergence on %q:\ncompiled:  %v\nreference: %v", src, canonical(got), canonical(want))
		}
	}
}

// TestQueryCacheGenerations: repeated identical queries hit the cache, and
// any store mutation (the ingest path) invalidates it via the generation.
func TestQueryCacheGenerations(t *testing.T) {
	st := buildFixture()
	e := NewEngine(st)
	const q = `SELECT ?t WHERE { ?t a kglids:Table . }`

	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first query: %+v", s)
	}
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 1 {
		t.Fatalf("second query should hit: %+v", s)
	}
	if r2 != r1 {
		t.Fatal("cache hit should return the same result object")
	}

	// Ingest-style mutation bumps the generation and invalidates.
	st.Add(rdf.T(rdf.Resource("new/table.csv"), rdf.RDFType, rdf.ClassTable))
	r3, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("after mutation: %+v", s)
	}
	if len(r3.Rows) != len(r1.Rows)+1 {
		t.Fatalf("stale result after ingest: %d rows, want %d", len(r3.Rows), len(r1.Rows)+1)
	}

	// Removal also invalidates.
	st.RemoveQuad(rdf.Q(rdf.Resource("new/table.csv"), rdf.RDFType, rdf.ClassTable, rdf.DefaultGraph))
	r4, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r4.Rows) != len(r1.Rows) {
		t.Fatalf("stale result after removal: %d rows", len(r4.Rows))
	}
}

func TestQueryCacheBounded(t *testing.T) {
	e := NewEngine(buildFixture())
	e.SetCacheCapacity(8)
	for i := 0; i < 40; i++ {
		if _, err := e.Query(fmt.Sprintf(`SELECT ?t WHERE { ?t a kglids:Table . FILTER(1 < %d) }`, i+2)); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.CacheStats(); s.Entries > 8 {
		t.Fatalf("cache exceeded capacity: %+v", s)
	}
}

// TestQueryContextCancellation: a cancelled context stops evaluation
// mid-iteration instead of running the query to completion.
func TestQueryContextCancellation(t *testing.T) {
	st := buildSeededStore(11, 60)
	e := NewEngine(st)
	e.SetCacheCapacity(0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, `SELECT ?t WHERE { ?t a kglids:Table . }`); err == nil {
		t.Fatal("pre-cancelled context should fail")
	}

	// A cross-product query whose full evaluation is enormous must return
	// promptly once the deadline fires.
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryContext(ctx, `
		SELECT (COUNT(*) AS ?n) WHERE {
			?a kglids:name ?n1 . ?b kglids:name ?n2 . ?c kglids:name ?n3 . ?d kglids:name ?n4 .
		}`)
	if err == nil {
		t.Fatal("expected context error from timeout")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, not mid-iteration", elapsed)
	}
}

// TestParallelQueriesDuringIngest runs parallel (multi-worker) queries
// concurrently with live store mutations; under -race this proves the
// morsel executor's view pinning and shared atomics are sound against the
// ingest path. Row counts are also sanity-checked: every result must
// reflect some consistent store generation (between the initial 40 tables
// and the final 40+adds), never a torn read.
func TestParallelQueriesDuringIngest(t *testing.T) {
	st := buildSeededStore(17, 40)
	e := NewEngine(st)
	e.SetCacheCapacity(0)
	e.SetWorkers(8)

	const adds = 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < adds; i++ {
			st.Add(rdf.T(rdf.Resource(fmt.Sprintf("live/t%d.csv", i)), rdf.RDFType, rdf.ClassTable))
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := e.Query(`SELECT ?t ?n WHERE { ?t a kglids:Table . OPTIONAL { ?t kglids:name ?n . } }`)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) < 40 || len(res.Rows) > 40+adds {
					t.Errorf("torn result: %d table rows", len(res.Rows))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentRegexQueries exercises the shared regex cache (and the
// result cache) from many goroutines; run with -race.
func TestConcurrentRegexQueries(t *testing.T) {
	e := NewEngine(buildSeededStore(3, 20))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := fmt.Sprintf(`SELECT ?c WHERE { ?c kglids:name ?n . FILTER(REGEX(?n, "^[a-z]{%d}", "i")) }`, 1+(w+i)%4)
				if _, err := e.Query(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
