package sparql

import "kglids/internal/obs"

// Engine metrics, registered once into the process-wide registry. Stage
// buckets start at 10µs — discovery queries on a warm store routinely
// finish in double-digit microseconds, below the HTTP-layer buckets.
var (
	mQueries = obs.Default.NewCounterVec("kglids_sparql_queries_total",
		"SPARQL queries by outcome: cache_hit, ok, error, parse_error, or cancelled.",
		"outcome")
	mStage = obs.Default.NewHistogramVec("kglids_sparql_stage_seconds",
		"Per-stage duration of SPARQL evaluation: parse, compile (lowering), plan (join ordering), execute (streaming match), materialize (decode + modifiers).",
		obs.ExpBuckets(0.00001, 4, 12), "stage")
	mCancellations = obs.Default.NewCounter("kglids_sparql_cancellations_total",
		"Queries aborted by context cancellation or deadline expiry.")
	mCacheHits = obs.Default.NewCounter("kglids_sparql_cache_hits_total",
		"Result-cache lookups served without re-execution.")
	mCacheMisses = obs.Default.NewCounter("kglids_sparql_cache_misses_total",
		"Result-cache lookups that had to execute (absent or stale entry).")
	mCacheEvictions = obs.Default.NewCounter("kglids_sparql_cache_evictions_total",
		"Result-cache entries dropped: stale generation, capacity, or resize.")
	mMorsels = obs.Default.NewCounter("kglids_sparql_morsels_total",
		"Leading-pattern candidate morsels claimed by parallel query workers.")
	mQueryWorkers = obs.Default.NewHistogram("kglids_sparql_query_workers",
		"Workers engaged per executed query (1 = serial path): worker-pool utilization.",
		obs.ExpBuckets(1, 2, 6))
	mTopKSkipped = obs.Default.NewCounter("kglids_sparql_topk_skipped_total",
		"Rows discarded early by the ORDER BY+LIMIT top-k cutoff push-down.")
)
