package sparql

import (
	"time"

	"kglids/internal/store"
)

// unmatchable is the ID substituted for a constant term that is not in the
// store's dictionary. It can never appear in an index (IDs are dense from
// 1 and 2^32-1 terms would not fit in memory), so every probe constrained
// by it is naturally empty — which is exactly the semantics of matching
// against an unknown term, with no special-casing in the executor.
const unmatchable = ^store.TermID(0)

// cNode is a compiled triple-pattern position: a variable slot or a
// constant resolved to its dictionary ID.
type cNode struct {
	slot int          // >= 0 when variable; -1 for constants
	id   store.TermID // constant ID (possibly unmatchable) when slot < 0
}

// cTriple is a compiled pattern; patterns is stored in planned join order.
type cTriple struct{ s, p, o cNode }

// cGroup mirrors GroupPattern in compiled form. Stage order matches the
// reference engine: patterns, GRAPH blocks, UNIONs, OPTIONALs, FILTERs.
type cGroup struct {
	patterns  []cTriple
	graphs    []*cGraph
	unions    [][]*cGroup
	optionals []*cGroup
	filters   []Expr
}

// cGraph is a compiled GRAPH block.
type cGraph struct {
	node  cNode
	group *cGroup
}

// compiledQuery is one query lowered into ID space against a specific
// store view: slots assigned, constants resolved, joins planned. It is
// rebuilt per execution — compilation is microseconds, and resolving
// constants against the live dictionary is what lets the cache invalidate
// purely on store generation.
type compiledQuery struct {
	q     *Query
	slots map[string]int
	names []string // slot -> variable name
	root  *cGroup
	// planDur accumulates the time spent in planPatterns across all
	// groups, so the "plan" stage can be reported apart from lowering.
	planDur time.Duration
}

// compile lowers q against the view: every variable in the query (patterns,
// filters, projection, GROUP BY, ORDER BY) gets an integer slot, constants
// resolve to term IDs once, and each group's patterns are ordered by
// estimated cardinality from the store's live statistics.
func compile(q *Query, v *store.View) *compiledQuery {
	c := &compiledQuery{q: q, slots: map[string]int{}}
	c.collectGroupVars(q.Where)
	for _, p := range q.Projection {
		c.slotFor(p.Var)
		if p.Agg != nil && p.Agg.Var != "*" {
			c.slotFor(p.Agg.Var)
		}
	}
	for _, v := range q.GroupBy {
		c.slotFor(v)
	}
	for _, k := range q.OrderBy {
		c.slotFor(k.Var)
	}
	c.root = c.compileGroup(q.Where, v, store.UnionGraph, map[int]bool{})
	return c
}

func (c *compiledQuery) slotFor(name string) int {
	if i, ok := c.slots[name]; ok {
		return i
	}
	i := len(c.names)
	c.slots[name] = i
	c.names = append(c.names, name)
	return i
}

// collectGroupVars assigns slots to every variable of a group subtree in
// syntactic order, so slot numbering is deterministic.
func (c *compiledQuery) collectGroupVars(g *GroupPattern) {
	if g == nil {
		return
	}
	for _, tp := range g.Triples {
		for _, n := range []NodePattern{tp.S, tp.P, tp.O} {
			if n.IsVar() {
				c.slotFor(n.Var)
			}
		}
	}
	for _, f := range g.Filters {
		c.collectExprVars(f)
	}
	for _, gp := range g.Graphs {
		if gp.Graph.IsVar() {
			c.slotFor(gp.Graph.Var)
		}
		c.collectGroupVars(gp.Pattern)
	}
	for _, alts := range g.Unions {
		for _, alt := range alts {
			c.collectGroupVars(alt)
		}
	}
	for _, opt := range g.Optionals {
		c.collectGroupVars(opt)
	}
}

func (c *compiledQuery) collectExprVars(e Expr) {
	switch x := e.(type) {
	case *VarExpr:
		c.slotFor(x.Name)
	case *UnaryExpr:
		c.collectExprVars(x.X)
	case *BinaryExpr:
		c.collectExprVars(x.Left)
		c.collectExprVars(x.Right)
	case *CallExpr:
		for _, a := range x.Args {
			c.collectExprVars(a)
		}
	}
}

// compileGroup lowers one group. gid is the statically-known active graph
// (UnionGraph when the group runs under a graph variable), used only for
// cardinality estimation; bound tracks slots bound by enclosing groups so
// the planner can cost join variables realistically.
func (c *compiledQuery) compileGroup(g *GroupPattern, v *store.View, gid store.TermID, bound map[int]bool) *cGroup {
	if g == nil {
		return &cGroup{}
	}
	cg := &cGroup{filters: g.Filters}
	planStart := time.Now()
	cg.patterns = c.planPatterns(g.Triples, v, gid, bound)
	c.planDur += time.Since(planStart)
	for _, ct := range cg.patterns {
		markBound(ct, bound)
	}
	for _, gp := range g.Graphs {
		cgp := &cGraph{node: c.compileNode(gp.Graph, v)}
		innerGid := gid
		if cgp.node.slot < 0 {
			innerGid = cgp.node.id
		} else {
			innerGid = store.UnionGraph
		}
		cgp.group = c.compileGroup(gp.Pattern, v, innerGid, bound)
		if cgp.node.slot >= 0 {
			bound[cgp.node.slot] = true
		}
		cg.graphs = append(cg.graphs, cgp)
	}
	for _, alts := range g.Unions {
		var calts []*cGroup
		for _, alt := range alts {
			calts = append(calts, c.compileGroup(alt, v, gid, cloneBound(bound)))
		}
		// Variables bound by any alternative may be bound downstream.
		for _, alt := range alts {
			c.markGroupVarsBound(alt, bound)
		}
		cg.unions = append(cg.unions, calts)
	}
	for _, opt := range g.Optionals {
		cg.optionals = append(cg.optionals, c.compileGroup(opt, v, gid, cloneBound(bound)))
	}
	return cg
}

func (c *compiledQuery) markGroupVarsBound(g *GroupPattern, bound map[int]bool) {
	for _, tp := range g.Triples {
		for _, n := range []NodePattern{tp.S, tp.P, tp.O} {
			if n.IsVar() {
				bound[c.slots[n.Var]] = true
			}
		}
	}
}

func cloneBound(b map[int]bool) map[int]bool {
	nb := make(map[int]bool, len(b))
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

func (c *compiledQuery) compileNode(n NodePattern, v *store.View) cNode {
	if n.IsVar() {
		return cNode{slot: c.slots[n.Var]}
	}
	id, ok := v.Dict().Lookup(n.Term)
	if !ok {
		id = unmatchable
	}
	return cNode{slot: -1, id: id}
}

// planPatterns orders a group's triple patterns greedily by estimated
// result cardinality: at each step the cheapest pattern given the
// variables bound so far runs next. Estimates come from the store's real
// index sizes and per-predicate statistics rather than the syntactic
// most-bound-first heuristic of the reference engine.
func (c *compiledQuery) planPatterns(pats []TriplePattern, v *store.View, gid store.TermID, bound map[int]bool) []cTriple {
	rest := make([]cTriple, len(pats))
	for i, tp := range pats {
		rest[i] = cTriple{s: c.compileNode(tp.S, v), p: c.compileNode(tp.P, v), o: c.compileNode(tp.O, v)}
	}
	local := cloneBound(bound)
	ordered := make([]cTriple, 0, len(rest))
	for len(rest) > 0 {
		best, bestCost := 0, -1.0
		for i, ct := range rest {
			cost := estimateCost(ct, v, gid, local)
			if bestCost < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		ct := rest[best]
		rest = append(rest[:best], rest[best+1:]...)
		ordered = append(ordered, ct)
		markBound(ct, local)
	}
	return ordered
}

func markBound(ct cTriple, bound map[int]bool) {
	for _, n := range []cNode{ct.s, ct.p, ct.o} {
		if n.slot >= 0 {
			bound[n.slot] = true
		}
	}
}

// estimateCost predicts the number of rows a pattern contributes given the
// slots already bound. Constants probe the indexes directly; a bound join
// variable divides the constant-only estimate by the predicate's distinct
// subject/object count (its average fan-out); unbound predicates or
// missing stats fall back to a generic selectivity discount.
func estimateCost(ct cTriple, v *store.View, gid store.TermID, bound map[int]bool) float64 {
	constID := func(n cNode) store.TermID {
		if n.slot < 0 {
			return n.id
		}
		return 0
	}
	s, p, o := constID(ct.s), constID(ct.p), constID(ct.o)
	est := float64(v.CountIDs(s, p, o, gid))
	if est == 0 {
		return 0
	}
	var ps store.PredicateStats
	if p != 0 && p != unmatchable {
		ps = v.PredStats(p)
	}
	discount := func(n cNode, distinct int) {
		if n.slot < 0 || !bound[n.slot] {
			return
		}
		d := float64(distinct)
		if d <= 0 {
			d = 10 // generic join selectivity when stats are unavailable
		}
		est /= d
	}
	discount(ct.s, ps.Subjects)
	discount(ct.o, ps.Objects)
	discount(ct.p, 10)
	if est < 0.001 {
		est = 0.001 // keep zero reserved for provably-empty patterns
	}
	return est
}

// slotsOf returns the slots of the given variable names (for group-by
// key construction); missing names yield -1.
func (c *compiledQuery) slotsOf(names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		if s, ok := c.slots[n]; ok {
			out[i] = s
		} else {
			out[i] = -1
		}
	}
	return out
}
