package sparql

import (
	"fmt"
	"strings"

	"kglids/internal/rdf"
)

// binder supplies variable values to FILTER evaluation. Binding implements
// it directly; the compiled ID-space engine implements it with a slot row
// that decodes terms lazily (see slotEnv in idexec.go).
type binder interface {
	value(name string) (rdf.Term, bool)
}

// evalExpr evaluates a FILTER expression under a binding. Type errors make
// the enclosing FILTER exclude the row (SPARQL error semantics).
func evalExpr(e Expr, b binder) (rdf.Term, error) {
	switch x := e.(type) {
	case *LitExpr:
		return x.Term, nil
	case *VarExpr:
		t, ok := b.value(x.Name)
		if !ok {
			return rdf.Term{}, fmt.Errorf("unbound variable ?%s", x.Name)
		}
		return t, nil
	case *UnaryExpr:
		v, err := evalExpr(x.X, b)
		if err != nil {
			return rdf.Term{}, err
		}
		switch x.Op {
		case "!":
			return rdf.Bool(!truthy(v)), nil
		case "-":
			f, ok := v.AsFloat()
			if !ok {
				return rdf.Term{}, fmt.Errorf("negating non-numeric %v", v)
			}
			return rdf.Float(-f), nil
		}
		return rdf.Term{}, fmt.Errorf("unknown unary op %q", x.Op)
	case *BinaryExpr:
		return evalBinary(x, b)
	case *CallExpr:
		return evalCall(x, b)
	}
	return rdf.Term{}, fmt.Errorf("unknown expression %T", e)
}

func evalBinary(x *BinaryExpr, b binder) (rdf.Term, error) {
	switch x.Op {
	case "&&":
		l, err := evalExpr(x.Left, b)
		if err != nil || !truthy(l) {
			return rdf.Bool(false), nil
		}
		r, err := evalExpr(x.Right, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(truthy(r)), nil
	case "||":
		l, err := evalExpr(x.Left, b)
		if err == nil && truthy(l) {
			return rdf.Bool(true), nil
		}
		r, err := evalExpr(x.Right, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(truthy(r)), nil
	}
	l, err := evalExpr(x.Left, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := evalExpr(x.Right, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch x.Op {
	case "+", "-", "*", "/":
		fl, okl := l.AsFloat()
		fr, okr := r.AsFloat()
		if !okl || !okr {
			return rdf.Term{}, fmt.Errorf("arithmetic on non-numeric")
		}
		switch x.Op {
		case "+":
			return rdf.Float(fl + fr), nil
		case "-":
			return rdf.Float(fl - fr), nil
		case "*":
			return rdf.Float(fl * fr), nil
		default:
			if fr == 0 {
				return rdf.Term{}, fmt.Errorf("division by zero")
			}
			return rdf.Float(fl / fr), nil
		}
	case "=", "!=":
		eq := termEquals(l, r)
		if x.Op == "!=" {
			eq = !eq
		}
		return rdf.Bool(eq), nil
	case "<", "<=", ">", ">=":
		c := compareTerms(l, r)
		var v bool
		switch x.Op {
		case "<":
			v = c < 0
		case "<=":
			v = c <= 0
		case ">":
			v = c > 0
		case ">=":
			v = c >= 0
		}
		return rdf.Bool(v), nil
	}
	return rdf.Term{}, fmt.Errorf("unknown binary op %q", x.Op)
}

func evalCall(x *CallExpr, b binder) (rdf.Term, error) {
	if x.Fn == "BOUND" {
		v, ok := x.Args[0].(*VarExpr)
		if !ok {
			return rdf.Term{}, fmt.Errorf("BOUND expects a variable")
		}
		_, bound := b.value(v.Name)
		return rdf.Bool(bound), nil
	}
	args := make([]rdf.Term, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(a, b)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	str := func(i int) string {
		if args[i].Kind == rdf.KindIRI {
			return args[i].Value
		}
		return args[i].Value
	}
	switch x.Fn {
	case "STR":
		return rdf.String(str(0)), nil
	case "LCASE":
		return rdf.String(strings.ToLower(str(0))), nil
	case "UCASE":
		return rdf.String(strings.ToUpper(str(0))), nil
	case "CONTAINS":
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("CONTAINS expects 2 args")
		}
		return rdf.Bool(strings.Contains(str(0), str(1))), nil
	case "STRSTARTS":
		if len(args) != 2 {
			return rdf.Term{}, fmt.Errorf("STRSTARTS expects 2 args")
		}
		return rdf.Bool(strings.HasPrefix(str(0), str(1))), nil
	case "REGEX":
		if len(args) < 2 {
			return rdf.Term{}, fmt.Errorf("REGEX expects 2+ args")
		}
		pat := str(1)
		if len(args) == 3 && strings.Contains(str(2), "i") {
			pat = "(?i)" + pat
		}
		re, err := compileRegex(pat)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(re.MatchString(str(0))), nil
	}
	return rdf.Term{}, fmt.Errorf("unknown function %q", x.Fn)
}

// termEquals implements SPARQL value equality: numeric comparison when both
// sides are numeric, otherwise term equality.
func termEquals(a, b rdf.Term) bool {
	fa, oka := a.AsFloat()
	fb, okb := b.AsFloat()
	if oka && okb {
		return fa == fb
	}
	if a.Kind != b.Kind {
		return false
	}
	return a.Value == b.Value
}

// truthy implements SPARQL effective boolean value.
func truthy(t rdf.Term) bool {
	if t.Kind != rdf.KindLiteral {
		return t.Value != ""
	}
	if t.Value == "true" {
		return true
	}
	if t.Value == "false" || t.Value == "" {
		return false
	}
	if f, ok := t.AsFloat(); ok {
		return f != 0
	}
	return true
}
