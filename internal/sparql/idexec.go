package sparql

import (
	"context"
	"errors"
	"sort"
	"time"

	"kglids/internal/obs"
	"kglids/internal/rdf"
	"kglids/internal/store"
)

// errStop is the sentinel the executor uses to unwind once a LIMIT that
// needs no further ordering is satisfied.
var errStop = errors.New("sparql: result limit reached")

// ctxCheckInterval is how many index hits pass between context polls; a
// power of two so the check compiles to a mask.
const ctxCheckInterval = 1024

// execState threads the mutable execution context through the streaming
// operators: the shared slot row (variable bindings as term IDs), the store
// view, and the cancellation bookkeeping. Operators extend row in place and
// restore it on backtrack, so intermediate solutions allocate nothing.
type execState struct {
	ctx      context.Context
	v        *store.View
	c        *compiledQuery
	row      []store.TermID
	ticks    int
	graphIDs []store.TermID // lazily fetched domain of unbound GRAPH ?g
	err      error          // context error latched by tick
}

func (es *execState) tick() bool {
	if es.ticks++; es.ticks&(ctxCheckInterval-1) == 0 {
		if err := es.ctx.Err(); err != nil {
			es.err = err
			return false
		}
	}
	return true
}

// slotEnv adapts a slot row to the binder interface of FILTER evaluation,
// decoding a term only when the expression actually reads the variable.
type slotEnv struct {
	c    *compiledQuery
	row  []store.TermID
	dict *store.Dictionary
}

func (s slotEnv) value(name string) (rdf.Term, bool) {
	i, ok := s.c.slots[name]
	if !ok || s.row[i] == 0 {
		return rdf.Term{}, false
	}
	return s.dict.Term(s.row[i]), true
}

// execute streams the compiled query and materializes the result. Solutions
// stay as []TermID rows until the final projection; only FILTER operands,
// ORDER BY keys, aggregate inputs, and projected columns are ever decoded.
// The streaming match and the materialization are timed as the "execute"
// and "materialize" stages. With workers > 1 and a partitionable leading
// pattern, the streaming phase fans out over candidate morsels (see
// parallel.go); workers == 1 selects the serial iterator unchanged.
func (c *compiledQuery) execute(ctx context.Context, v *store.View, workers int) (*Result, error) {
	q := c.q
	tr := obs.FromContext(ctx)

	// LIMIT push-down: with no modifier that needs the full solution set,
	// evaluation can stop as soon as offset+limit rows exist.
	earlyStop := -1
	if q.Limit >= 0 && len(q.OrderBy) == 0 && len(q.GroupBy) == 0 && !q.Distinct && !hasAggregates(q) {
		earlyStop = q.Offset + q.Limit
	}

	execStart := time.Now()
	var rows [][]store.TermID
	var err error
	if pp := c.planParallel(v, workers); pp != nil {
		rows, err = pp.run(ctx, earlyStop)
	} else {
		mQueryWorkers.Observe(1)
		es := &execState{ctx: ctx, v: v, c: c, row: make([]store.TermID, len(c.names))}
		err = c.root.run(es, store.UnionGraph, func() error {
			rows = append(rows, append([]store.TermID(nil), es.row...))
			if earlyStop >= 0 && len(rows) >= earlyStop {
				return errStop
			}
			return nil
		})
	}
	execDur := time.Since(execStart)
	mStage.WithLabelValues("execute").Observe(execDur.Seconds())
	tr.AddSpan("execute", execStart, execDur)
	if err != nil && !errors.Is(err, errStop) {
		return nil, err
	}
	// Merge/materialize boundary check: the streaming iterators poll the
	// context only every 1024 index hits each, so a parallel fan-out can
	// overshoot a deadline by workers×1024 hits; never start the decode
	// work of an already-dead query.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	matStart := time.Now()
	var res *Result
	if len(q.GroupBy) > 0 || hasAggregates(q) {
		sols, err := c.aggregateIDs(v, rows)
		if err != nil {
			return nil, err
		}
		res = finishRows(q, sols)
	} else {
		res = c.materialize(v, rows)
	}
	matDur := time.Since(matStart)
	mStage.WithLabelValues("materialize").Observe(matDur.Seconds())
	tr.AddSpan("materialize", matStart, matDur)
	return res, nil
}

// run streams the group's solutions, extending es.row; stage order matches
// the reference engine (patterns, GRAPH, UNION, OPTIONAL, FILTER).
func (g *cGroup) run(es *execState, gid store.TermID, emit func() error) error {
	return g.runPatterns(es, gid, 0, func() error {
		return g.runGraphs(es, 0, func() error {
			return g.runUnions(es, gid, 0, func() error {
				return g.runOptionals(es, gid, 0, func() error {
					return g.runFilters(es, emit)
				})
			})
		})
	})
}

func (g *cGroup) runPatterns(es *execState, gid store.TermID, i int, emit func() error) error {
	if i == len(g.patterns) {
		return emit()
	}
	ct := g.patterns[i]
	probe := func(n cNode) store.TermID {
		if n.slot < 0 {
			return n.id
		}
		return es.row[n.slot] // 0 (wildcard) when unbound
	}
	var err error
	es.v.MatchIDs(probe(ct.s), probe(ct.p), probe(ct.o), gid, func(ms, mp, mo store.TermID) bool {
		if !es.tick() {
			err = es.err
			return false
		}
		// Bind this match's variables, tracking which slots to restore; a
		// slot already holding a different ID (shared variable) rejects.
		var set [3]int
		n := 0
		bind := func(nd cNode, val store.TermID) bool {
			if nd.slot < 0 {
				return true
			}
			if cur := es.row[nd.slot]; cur != 0 {
				return cur == val
			}
			es.row[nd.slot] = val
			set[n] = nd.slot
			n++
			return true
		}
		if bind(ct.s, ms) && bind(ct.p, mp) && bind(ct.o, mo) {
			if e := g.runPatterns(es, gid, i+1, emit); e != nil {
				err = e
			}
		}
		for j := 0; j < n; j++ {
			es.row[set[j]] = 0
		}
		return err == nil
	})
	return err
}

func (g *cGroup) runGraphs(es *execState, i int, emit func() error) error {
	if i == len(g.graphs) {
		return emit()
	}
	gp := g.graphs[i]
	next := func() error { return g.runGraphs(es, i+1, emit) }
	if gp.node.slot < 0 {
		return gp.group.run(es, gp.node.id, next)
	}
	if cur := es.row[gp.node.slot]; cur != 0 {
		return gp.group.run(es, cur, next)
	}
	if es.graphIDs == nil {
		es.graphIDs = es.v.GraphIDs()
	}
	var err error
	for _, gid := range es.graphIDs {
		es.row[gp.node.slot] = gid
		if err = gp.group.run(es, gid, next); err != nil {
			break
		}
	}
	es.row[gp.node.slot] = 0
	return err
}

func (g *cGroup) runUnions(es *execState, gid store.TermID, i int, emit func() error) error {
	if i == len(g.unions) {
		return emit()
	}
	for _, alt := range g.unions[i] {
		if err := alt.run(es, gid, func() error { return g.runUnions(es, gid, i+1, emit) }); err != nil {
			return err
		}
	}
	return nil
}

func (g *cGroup) runOptionals(es *execState, gid store.TermID, i int, emit func() error) error {
	if i == len(g.optionals) {
		return emit()
	}
	matched := false
	err := g.optionals[i].run(es, gid, func() error {
		matched = true
		return g.runOptionals(es, gid, i+1, emit)
	})
	if err != nil {
		return err
	}
	if !matched {
		return g.runOptionals(es, gid, i+1, emit)
	}
	return nil
}

func (g *cGroup) runFilters(es *execState, emit func() error) error {
	if len(g.filters) > 0 {
		env := slotEnv{c: es.c, row: es.row, dict: es.v.Dict()}
		for _, f := range g.filters {
			v, err := evalExpr(f, env)
			if err != nil || !truthy(v) {
				return nil // row excluded (SPARQL filter-error semantics)
			}
		}
	}
	return emit()
}

// materialize turns ID rows into the final Result for non-aggregate
// queries: DISTINCT and OFFSET/LIMIT operate on raw IDs, ORDER BY decodes
// only its key columns, and projection decodes only projected slots.
func (c *compiledQuery) materialize(v *store.View, rows [][]store.TermID) *Result {
	q := c.q
	vars := c.resultVars(rows)
	slots := c.slotsOf(vars)

	if q.Distinct {
		seen := make(map[string]bool, len(rows))
		out := rows[:0]
		for _, row := range rows {
			k := idKey(row, slots)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
		rows = out
	}

	if len(q.OrderBy) > 0 {
		// Decode each key column once; non-projected order keys read as
		// unbound, matching the reference engine's projection-first order.
		projected := map[string]bool{}
		for _, v := range vars {
			projected[v] = true
		}
		keys := make([][]rdf.Term, len(rows))
		dict := v.Dict()
		for i, row := range rows {
			ks := make([]rdf.Term, len(q.OrderBy))
			for j, k := range q.OrderBy {
				if !projected[k.Var] {
					continue
				}
				if s, ok := c.slots[k.Var]; ok && row[s] != 0 {
					ks[j] = dict.Term(row[s])
				}
			}
			keys[i] = ks
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for j, k := range q.OrderBy {
				cmp := compareTerms(keys[idx[a]][j], keys[idx[b]][j])
				if cmp == 0 {
					continue
				}
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		sorted := make([][]store.TermID, len(rows))
		for i, j := range idx {
			sorted[i] = rows[j]
		}
		rows = sorted
	}

	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}

	dict := v.Dict()
	out := make([]Binding, len(rows))
	for i, row := range rows {
		b := make(Binding, len(slots))
		for j, s := range slots {
			if s >= 0 && row[s] != 0 {
				b[vars[j]] = dict.Term(row[s])
			}
		}
		out[i] = b
	}
	return &Result{Vars: vars, Rows: out}
}

// resultVars returns the projected column names; SELECT * projects every
// variable bound in at least one solution, sorted.
func (c *compiledQuery) resultVars(rows [][]store.TermID) []string {
	if !c.q.Star {
		vars := make([]string, len(c.q.Projection))
		for i, p := range c.q.Projection {
			vars[i] = p.Var
		}
		return vars
	}
	bound := make([]bool, len(c.names))
	for _, row := range rows {
		for s, id := range row {
			if id != 0 {
				bound[s] = true
			}
		}
	}
	var vars []string
	for s, ok := range bound {
		if ok {
			vars = append(vars, c.names[s])
		}
	}
	sort.Strings(vars)
	return vars
}

// aggregateIDs implements GROUP BY + aggregates over ID rows, grouping by
// raw IDs (term-key equality and ID equality coincide under interning) and
// decoding only aggregate inputs and group keys.
func (c *compiledQuery) aggregateIDs(v *store.View, rows [][]store.TermID) ([]Binding, error) {
	q := c.q
	dict := v.Dict()
	groupSlots := c.slotsOf(q.GroupBy)
	groups := map[string][][]store.TermID{}
	var orderKeys []string
	for _, row := range rows {
		k := idKey(row, groupSlots)
		if _, ok := groups[k]; !ok {
			orderKeys = append(orderKeys, k)
		}
		groups[k] = append(groups[k], row)
	}
	if len(rows) == 0 && len(q.GroupBy) == 0 {
		// Implicit single empty group so COUNT(*) over no rows yields 0.
		orderKeys = append(orderKeys, "")
		groups[""] = nil
	}
	var out []Binding
	for _, k := range orderKeys {
		members := groups[k]
		row := Binding{}
		for i, name := range q.GroupBy {
			if len(members) > 0 && groupSlots[i] >= 0 {
				if id := members[0][groupSlots[i]]; id != 0 {
					row[name] = dict.Term(id)
				}
			}
		}
		for _, p := range q.Projection {
			if p.Agg == nil {
				continue
			}
			var values []rdf.Term
			if p.Agg.Var == "*" {
				for range members {
					values = append(values, rdf.Integer(1))
				}
			} else if s, ok := c.slots[p.Agg.Var]; ok {
				for _, m := range members {
					if m[s] != 0 {
						values = append(values, dict.Term(m[s]))
					}
				}
			}
			t, err := aggFromValues(p.Agg, values)
			if err != nil {
				return nil, err
			}
			row[p.Var] = t
		}
		out = append(out, row)
	}
	return out, nil
}

// idKey packs slot IDs into a map key (little-endian, one separator byte).
func idKey(row []store.TermID, slots []int) string {
	b := make([]byte, 0, len(slots)*5)
	for _, s := range slots {
		var id store.TermID
		if s >= 0 {
			id = row[s]
		}
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), 0xff)
	}
	return string(b)
}
