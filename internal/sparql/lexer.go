// Package sparql implements the SPARQL subset that KGLiDS's predefined
// operations and ad-hoc queries use (paper Sections 2.2 and 5): basic graph
// patterns, GRAPH and OPTIONAL blocks, FILTER expressions, DISTINCT,
// aggregation with GROUP BY, ORDER BY, LIMIT/OFFSET, and PREFIX
// declarations. Queries execute against the index-backed quad store.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar      // ?name
	tokIRI      // <...>
	tokPrefixed // prefix:local
	tokString   // "..."
	tokNumber
	tokPunct // { } ( ) . , ; *
	tokOp    // = != < <= > >= && || ! + - /
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "PREFIX": true, "FILTER": true,
	"OPTIONAL": true, "GRAPH": true, "DISTINCT": true, "ORDER": true,
	"BY": true, "ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"GROUP": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "AS": true, "CONTAINS": true, "STRSTARTS": true,
	"REGEX": true, "STR": true, "BOUND": true, "NOT": true, "A": true,
	"UNION": true, "TRUE": true, "FALSE": true, "LCASE": true, "UCASE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsSpace(rune(c)):
			l.pos++
		case c == '?' || c == '$':
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start {
				return nil, fmt.Errorf("sparql: empty variable name at %d", start)
			}
			l.emit(tokVar, l.src[start:l.pos], start)
		case c == '<':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, "<=", l.pos)
				l.pos += 2
				break
			}
			// IRI if it looks like one, else operator '<'.
			end := strings.IndexByte(l.src[l.pos:], '>')
			if end > 0 && !strings.ContainsAny(l.src[l.pos:l.pos+end], " \t\n") {
				l.emit(tokIRI, l.src[l.pos+1:l.pos+end], l.pos)
				l.pos += end + 1
			} else {
				l.emit(tokOp, "<", l.pos)
				l.pos++
			}
		case c == '"':
			start := l.pos
			l.pos++
			var sb strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
					switch l.src[l.pos] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(l.src[l.pos])
					}
				} else {
					sb.WriteByte(l.src[l.pos])
				}
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("sparql: unterminated string at %d", start)
			}
			l.pos++ // closing quote
			l.emit(tokString, sb.String(), start)
		case strings.ContainsRune("{}().,;*", rune(c)):
			// '.' inside a number is handled in the number branch below.
			l.emit(tokPunct, string(c), l.pos)
			l.pos++
		case c == '=':
			l.emit(tokOp, "=", l.pos)
			l.pos++
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, "!=", l.pos)
				l.pos += 2
			} else {
				l.emit(tokOp, "!", l.pos)
				l.pos++
			}
		case c == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokOp, ">=", l.pos)
				l.pos += 2
			} else {
				l.emit(tokOp, ">", l.pos)
				l.pos++
			}
		case c == '&' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '&':
			l.emit(tokOp, "&&", l.pos)
			l.pos += 2
		case c == '|' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '|':
			l.emit(tokOp, "||", l.pos)
			l.pos += 2
		case c == '+' || c == '/':
			l.emit(tokOp, string(c), l.pos)
			l.pos++
		case c == '-':
			if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				l.lexNumber()
			} else {
				l.emit(tokOp, "-", l.pos)
				l.pos++
			}
		case isDigit(c):
			l.lexNumber()
		case isNameStart(c):
			start := l.pos
			for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			// Trailing dots belong to the triple terminator, not the name.
			for l.pos > start && l.src[l.pos-1] == '.' {
				l.pos--
			}
			word := l.src[start:l.pos]
			if l.pos < len(l.src) && l.src[l.pos] == ':' {
				// prefixed name: prefix:local
				l.pos++
				lstart := l.pos
				for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == '/' || l.src[l.pos] == '.') {
					l.pos++
				}
				for l.pos > lstart && l.src[l.pos-1] == '.' {
					l.pos--
				}
				l.emit(tokPrefixed, word+":"+l.src[lstart:l.pos], start)
				break
			}
			if keywords[strings.ToUpper(word)] {
				l.emit(tokKeyword, strings.ToUpper(word), start)
			} else {
				return nil, fmt.Errorf("sparql: unexpected identifier %q at %d", word, start)
			}
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		// A dot not followed by a digit terminates the number (triple dot).
		if l.src[l.pos] == '.' && (l.pos+1 >= len(l.src) || !isDigit(l.src[l.pos+1])) {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isNameChar(c byte) bool  { return isNameStart(c) || isDigit(c) }
