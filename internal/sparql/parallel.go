package sparql

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"kglids/internal/rdf"
	"kglids/internal/store"
)

// Morsel-driven parallel execution: the leading (most selective) pattern's
// candidate ID domain — the keys of the index level matchEncoded would walk
// for it — is split into fixed-size morsels that a bounded worker pool
// claims through a shared atomic counter (work stealing by increment, so a
// worker that drew cheap morsels simply claims more). Each worker owns a
// private execState but shares the one read-locked store View; it runs the
// unchanged streaming slot-row iterator over the whole root group with the
// partition slot pre-bound to each candidate in turn, so shared variables,
// OPTIONALs, FILTERs, and nested groups need no parallel-specific code.
// Candidates are distinct, and every solution binds the partition variable
// to exactly one of them, so the union over morsels is the exact serial
// solution multiset — the serial executor (workers=1) stays selectable as
// the equivalence oracle.
const (
	// maxMorselSize caps a morsel's candidate count; small domains shrink
	// morsels further so every worker still gets claim opportunities.
	maxMorselSize = 256
	// morselsPerWorker is the claim-opportunity target per worker that the
	// morsel size is derived from: more morsels than workers is what lets
	// the shared counter balance skewed per-candidate work.
	morselsPerWorker = 4
	// minParallelCandidates is the smallest domain worth fanning out;
	// below it, goroutine startup and merge overhead beat any overlap.
	minParallelCandidates = 8
)

// parallelPlan is a query found eligible for morsel-driven execution:
// the candidate domain, the slot each candidate pre-binds, and — for
// ORDER BY + LIMIT queries — the top-k push-down parameters.
type parallelPlan struct {
	c       *compiledQuery
	v       *store.View
	keys    []store.TermID // candidate domain of the partition slot
	slot    int            // slot pre-bound to each candidate
	morsel  int            // candidates per morsel (fixed per execution)
	workers int
	// topK, when >= 0, bounds per-worker heaps at offset+limit rows;
	// orderSlots/orderDesc mirror the ORDER BY spec against slots, with
	// -1 for keys materialize would read as unbound (non-projected).
	topK       int
	orderSlots []int
	orderDesc  []bool
}

// planParallel decides whether the compiled query can fan out: it needs
// more than one worker, a root group with at least one pattern, and a
// partitionable candidate domain for that leading pattern (its variable
// subject or object, per the index matchEncoded would choose).
func (c *compiledQuery) planParallel(v *store.View, workers int) *parallelPlan {
	if workers <= 1 || len(c.root.patterns) == 0 {
		return nil
	}
	ct := c.root.patterns[0]
	constID := func(n cNode) store.TermID {
		if n.slot < 0 {
			return n.id
		}
		return 0
	}
	keys, pos := v.CandidateIDs(constID(ct.s), constID(ct.p), constID(ct.o), store.UnionGraph)
	var node cNode
	switch pos {
	case store.PartitionSubject:
		node = ct.s
	case store.PartitionObject:
		node = ct.o
	default:
		return nil
	}
	if node.slot < 0 || len(keys) < minParallelCandidates || len(keys) < 2*workers {
		return nil
	}
	morsel := len(keys) / (workers * morselsPerWorker)
	if morsel < 1 {
		morsel = 1
	}
	if morsel > maxMorselSize {
		morsel = maxMorselSize
	}
	p := &parallelPlan{c: c, v: v, keys: keys, slot: node.slot, morsel: morsel, workers: workers, topK: -1}
	q := c.q
	if len(q.OrderBy) > 0 && q.Limit >= 0 && q.Offset+q.Limit > 0 &&
		!q.Distinct && len(q.GroupBy) == 0 && !hasAggregates(q) && !q.Star {
		// Top-k push-down computes the same sort keys materialize will:
		// only projected ORDER BY variables participate; the rest read as
		// unbound. SELECT * is excluded — its projection depends on which
		// variables end up bound, unknowable mid-stream.
		projected := map[string]bool{}
		for _, pr := range q.Projection {
			projected[pr.Var] = true
		}
		p.topK = q.Offset + q.Limit
		p.orderSlots = make([]int, len(q.OrderBy))
		p.orderDesc = make([]bool, len(q.OrderBy))
		for j, k := range q.OrderBy {
			p.orderSlots[j] = -1
			if s, ok := c.slots[k.Var]; ok && projected[k.Var] {
				p.orderSlots[j] = s
			}
			p.orderDesc[j] = k.Desc
		}
	}
	return p
}

// cmpKeys compares two decoded ORDER BY key tuples in sort order
// (negative: a sorts before b), honoring per-column DESC.
func (p *parallelPlan) cmpKeys(a, b []rdf.Term) int {
	for j := range a {
		c := compareTerms(a[j], b[j])
		if c == 0 {
			continue
		}
		if p.orderDesc[j] {
			c = -c
		}
		return c
	}
	return 0
}

// run executes the plan and returns the merged ID rows, ready for the
// shared materialization tail. Merging is morsel-order concatenation —
// order-preserving with respect to the claim sequence — or, under top-k
// push-down, the union of the per-worker heaps (at most workers×k rows)
// that materialize's sort then reduces to the final k.
func (p *parallelPlan) run(ctx context.Context, earlyStop int) ([][]store.TermID, error) {
	numMorsels := (len(p.keys) + p.morsel - 1) / p.morsel
	w := p.workers
	if w > numMorsels {
		w = numMorsels
	}
	mQueryWorkers.Observe(float64(w))

	var (
		next    atomic.Int64               // shared morsel claim counter
		stop    atomic.Bool                // LIMIT satisfied: cancel outstanding morsels
		emitted atomic.Int64               // global row count (earlyStop mode)
		cutoff  atomic.Pointer[[]rdf.Term] // tightest published k-th key (top-k mode)
	)
	buckets := make([][][]store.TermID, numMorsels)
	heaps := make([]*topKHeap, w)
	errs := make([]error, w)

	worker := func(wi int) error {
		es := &execState{ctx: ctx, v: p.v, c: p.c, row: make([]store.TermID, len(p.c.names))}
		var heap *topKHeap
		if p.topK >= 0 {
			heap = &topKHeap{k: p.topK, plan: p, dict: p.v.Dict()}
			heaps[wi] = heap
		}
		for {
			if stop.Load() {
				return nil
			}
			// Morsel-granular poll: each iterator ticks only every 1024
			// hits, so a fan-out would otherwise overshoot a deadline by
			// workers×1024 hits before anyone noticed.
			if err := ctx.Err(); err != nil {
				return err
			}
			m := int(next.Add(1)) - 1
			if m >= numMorsels {
				return nil
			}
			mMorsels.Inc()
			lo := m * p.morsel
			hi := lo + p.morsel
			if hi > len(p.keys) {
				hi = len(p.keys)
			}
			var rows [][]store.TermID
			emit := func() error {
				if heap != nil {
					heap.offer(es.row, &cutoff)
					return nil
				}
				rows = append(rows, append([]store.TermID(nil), es.row...))
				if earlyStop >= 0 && emitted.Add(1) >= int64(earlyStop) {
					// offset+limit rows exist globally and no modifier
					// needs more: provably final, stop claiming morsels.
					stop.Store(true)
					return errStop
				}
				return nil
			}
			for _, key := range p.keys[lo:hi] {
				es.row[p.slot] = key
				err := p.c.root.run(es, store.UnionGraph, emit)
				es.row[p.slot] = 0
				if err != nil {
					buckets[m] = rows
					return err
				}
			}
			buckets[m] = rows
		}
	}

	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			errs[wi] = worker(wi)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, errStop) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		// Merge-stage check: a deadline that expired between the workers'
		// last ticks and the join must not start the merge.
		return nil, err
	}
	var out [][]store.TermID
	if p.topK >= 0 {
		for _, h := range heaps {
			if h != nil {
				out = append(out, h.rows...)
			}
		}
		return out, nil
	}
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out, nil
}

// topKHeap is one worker's bounded candidate set for ORDER BY + LIMIT
// push-down: a max-heap of at most k rows keyed on decoded ORDER BY
// columns, worst row at the root. Once full, its worst key is published
// as a global cutoff; any worker's row sorting strictly after the cutoff
// is provably outside the global top-k, because the publisher already
// holds k rows that sort at or before it and will carry them to the
// merge. Ties at the cutoff are kept — which of several equal-key rows
// survives LIMIT is unspecified either way.
type topKHeap struct {
	k    int
	plan *parallelPlan
	dict *store.Dictionary
	rows [][]store.TermID
	keys [][]rdf.Term
}

// key decodes row's ORDER BY columns exactly as materialize does:
// non-projected or unbound columns stay the zero term.
func (h *topKHeap) key(row []store.TermID) []rdf.Term {
	ks := make([]rdf.Term, len(h.plan.orderSlots))
	for j, s := range h.plan.orderSlots {
		if s >= 0 && row[s] != 0 {
			ks[j] = h.dict.Term(row[s])
		}
	}
	return ks
}

// offer considers one streamed row for the worker's top-k.
func (h *topKHeap) offer(row []store.TermID, cutoff *atomic.Pointer[[]rdf.Term]) {
	key := h.key(row)
	if c := cutoff.Load(); c != nil && h.plan.cmpKeys(key, *c) > 0 {
		mTopKSkipped.Inc()
		return
	}
	if len(h.rows) < h.k {
		h.rows = append(h.rows, append([]store.TermID(nil), row...))
		h.keys = append(h.keys, key)
		h.siftUp(len(h.rows) - 1)
		if len(h.rows) == h.k {
			h.publish(cutoff)
		}
		return
	}
	if h.plan.cmpKeys(key, h.keys[0]) >= 0 {
		// Not better than the local worst: the heap already holds k rows
		// sorting at or before this one.
		mTopKSkipped.Inc()
		return
	}
	h.rows[0] = append(h.rows[0][:0], row...)
	h.keys[0] = key
	h.siftDown(0)
	h.publish(cutoff)
}

// publish tightens the shared cutoff to this worker's k-th key when it
// improves on the current bound (CAS loop: cutoffs only ever tighten).
func (h *topKHeap) publish(cutoff *atomic.Pointer[[]rdf.Term]) {
	for {
		cur := cutoff.Load()
		if cur != nil && h.plan.cmpKeys(h.keys[0], *cur) >= 0 {
			return
		}
		worst := append([]rdf.Term(nil), h.keys[0]...)
		if cutoff.CompareAndSwap(cur, &worst) {
			return
		}
	}
}

// worse reports whether element i sorts strictly after element j (the
// max-heap order: the root is the worst kept row).
func (h *topKHeap) worse(i, j int) bool { return h.plan.cmpKeys(h.keys[i], h.keys[j]) > 0 }

func (h *topKHeap) swap(i, j int) {
	h.rows[i], h.rows[j] = h.rows[j], h.rows[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
}

func (h *topKHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *topKHeap) siftDown(i int) {
	n := len(h.rows)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h.worse(l, worst) {
			worst = l
		}
		if r < n && h.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h.swap(i, worst)
		i = worst
	}
}
